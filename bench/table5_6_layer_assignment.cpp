// Reproduces Tables V and VI: characteristics of 50 random layer-assignment
// instances, and the comparison of the maximum-spanning-tree heuristic [4]
// against our k-colorable-subset heuristic for k = 2..5 layers.

#include <iostream>

#include "assign/layer_assign.hpp"
#include "bench_common.hpp"
#include "bench_suite/layer_instance_generator.hpp"
#include "exec/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace mebl;
  bench_common::TelemetryScope telemetry_scope(argc, argv);
  bench_common::ReportScope report_scope("table5_6_layer_assignment", argc,
                                         argv);
  bench_common::QuietLogs quiet;
  exec::ThreadPool pool(bench_common::threads_from_args(argc, argv));

  constexpr int kInstances = 50;
  util::Rng rng(bench_common::kSeed);
  bench_suite::LayerInstanceConfig config;

  std::vector<std::vector<assign::SegmentProfile>> instances;
  instances.reserve(kInstances);
  for (int i = 0; i < kInstances; ++i)
    instances.push_back(bench_suite::generate_layer_instance(config, rng));

  const auto stats = bench_suite::measure_density(instances);
  util::Table table5("#Instance", "SegDens Max", "SegDens Avg", "EndDens Max",
                     "EndDens Avg");
  table5.add_row(std::to_string(kInstances),
                 util::Table::fixed(stats.max_segment_density, 2),
                 util::Table::fixed(stats.avg_segment_density, 2),
                 util::Table::fixed(stats.max_line_end_density, 2),
                 util::Table::fixed(stats.avg_line_end_density, 2));
  std::cout << table5.str(
      "TABLE V: characteristics of the layer assignment instances")
            << "\nPaper values: 11.68 / 5.72 / 6.06 / 2.00\n\n";

  util::Table table6("Heuristic", "k=2", "k=3", "k=4", "k=5");
  std::vector<std::string> mst_row{"Max. Spanning Tree [4]"};
  std::vector<std::string> ours_row{"Ours"};
  std::vector<std::string> improvement{"Improvement"};
  for (int k = 2; k <= 5; ++k) {
    // Instances are independent; per-instance costs are summed in instance
    // order afterwards so the totals are identical for any --threads value.
    struct Costs {
      double mst, ours;
    };
    const auto costs = exec::parallel_map<Costs>(
        pool, instances.size(), [&](std::size_t i) {
          const auto graph = assign::build_conflict_graph(instances[i], true);
          return Costs{assign::assign_layers_mst(graph, k).cost,
                       assign::assign_layers_ours(graph, k).cost};
        });
    double mst_total = 0.0, ours_total = 0.0;
    for (const auto& c : costs) {
      mst_total += c.mst;
      ours_total += c.ours;
    }
    mst_row.push_back(util::Table::fixed(mst_total / kInstances, 2));
    ours_row.push_back(util::Table::fixed(ours_total / kInstances, 2));
    const std::string instance = "k=" + std::to_string(k);
    report_scope.add(instance, "mst",
                     {{"avg_cost", report::Json(mst_total / kInstances)}});
    report_scope.add(instance, "ours",
                     {{"avg_cost", report::Json(ours_total / kInstances)}});
    improvement.push_back(util::Table::fixed(
        mst_total > 0 ? 100.0 * (mst_total - ours_total) / mst_total : 0.0, 2) +
        "%");
  }
  table6.add_row(mst_row);
  table6.add_row(ours_row);
  table6.add_rule();
  table6.add_row(improvement);
  std::cout << table6.str(
      "TABLE VI: average layer assignment cost (lower is better)")
            << "\nPaper shape: improvement grows with k "
               "(13.86% -> 30.31% -> 44.55% -> 59.39%)\n";
  return 0;
}
