#!/bin/sh
# Regression gate against the checked-in bench baselines: re-run the
# eco_reroute, full_scale and serve_throughput harnesses, emit their
# mebl.bench_report JSON, and `mebl_report diff` each against its baseline
# (bench/BENCH_baseline.json, bench/BENCH_baseline_full_scale.json,
# bench/BENCH_baseline_serve.json). Deterministic row metrics (batch_nets,
# dirty_subnets, wirelength, overflow, tiles_materialized, jobs_completed,
# eco_coalesced, reports_identical, ...) are gated — a missing row or a
# changed value fails; wall-clock columns (eco_seconds, full_seconds,
# speedup, qps, latency percentiles, peak_rss_kb) are informational or
# loosely slacked, so the gate cannot flake on machine speed.
#
#   usage: bench/check_baseline.sh [BUILD_DIR]   (default: build)
#
# Exit code: worst `mebl_report diff` outcome across the harnesses
# (0 pass, 1 gated regression, 2 bad invocation/IO, 3 schema mismatch).
set -eu

repo_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_dir/build"}
report="$build_dir/examples/mebl_report"

for binary in "$build_dir/bench/eco_reroute" "$build_dir/bench/full_scale" \
              "$build_dir/bench/serve_throughput" "$report"; do
  if [ ! -x "$binary" ]; then
    echo "check_baseline: missing $binary (build the repo first)" >&2
    exit 2
  fi
done

worst=0
for bench in eco_reroute full_scale serve_throughput; do
  case "$bench" in
    eco_reroute) baseline="$repo_dir/bench/BENCH_baseline.json" ;;
    full_scale) baseline="$repo_dir/bench/BENCH_baseline_full_scale.json" ;;
    serve_throughput) baseline="$repo_dir/bench/BENCH_baseline_serve.json" ;;
  esac
  candidate=$(mktemp "/tmp/BENCH_$bench.XXXXXX.json")
  "$build_dir/bench/$bench" --json "$candidate" > /dev/null
  status=0
  "$report" diff "$baseline" "$candidate" || status=$?
  rm -f "$candidate"
  [ "$status" -gt "$worst" ] && worst=$status || :
done

exit "$worst"
