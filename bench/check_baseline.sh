#!/bin/sh
# Regression gate against the checked-in bench baseline: re-run the
# eco_reroute harness, emit its mebl.bench_report JSON, and `mebl_report
# diff` it against bench/BENCH_baseline.json. Deterministic row metrics
# (batch_nets, dirty_subnets) are gated — a missing row or a changed value
# fails; wall-clock columns (eco_seconds, full_seconds, eco_over_full) are
# informational only, so the gate cannot flake on machine speed.
#
#   usage: bench/check_baseline.sh [BUILD_DIR]   (default: build)
#
# Exit codes follow `mebl_report diff`: 0 pass, 1 gated regression,
# 2 bad invocation/IO, 3 schema mismatch.
set -eu

repo_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_dir/build"}
baseline="$repo_dir/bench/BENCH_baseline.json"
candidate=$(mktemp /tmp/BENCH_eco_reroute.XXXXXX.json)
trap 'rm -f "$candidate"' EXIT

for binary in "$build_dir/bench/eco_reroute" "$build_dir/examples/mebl_report"; do
  if [ ! -x "$binary" ]; then
    echo "check_baseline: missing $binary (build the repo first)" >&2
    exit 2
  fi
done

"$build_dir/bench/eco_reroute" --json "$candidate" > /dev/null
"$build_dir/examples/mebl_report" diff "$baseline" "$candidate"
