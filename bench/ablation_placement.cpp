// The paper's future work (SV): stitch-aware placement to remove the via
// violations caused by fixed pins. This harness quantifies the idea with
// the place::refine_pins pass: circuits are generated with a deliberately
// hazardous pin distribution, then routed with and without the refinement.

#include <iostream>

#include "bench_common.hpp"
#include "core/stitch_router.hpp"
#include "place/pin_refine.hpp"

int main(int argc, char** argv) {
  using namespace mebl;
  bench_common::TelemetryScope telemetry_scope(argc, argv);
  bench_common::ReportScope report_scope("ablation_placement", argc, argv);
  bench_common::QuietLogs quiet;
  const int threads = bench_common::threads_from_args(argc, argv);

  util::Table table("Circuit", "raw #VV", "raw #SP", "raw Rout.(%)",
                    "refined #VV", "refined #SP", "refined Rout.(%)",
                    "pins moved");

  for (const auto& name : {"S5378", "S9234", "S13207"}) {
    const auto spec = *bench_suite::find_spec(name);
    auto config = bench_common::config_for(spec);
    config.pin_on_line_fraction = 0.25;  // a placement that ignored MEBL

    auto raw = bench_suite::generate_circuit(spec, config,
                                             bench_common::kSeed);
    core::StitchAwareRouter raw_router(
        raw.grid, raw.netlist,
        core::RouterConfig::stitch_aware().with_threads(threads));
    const auto raw_result = raw_router.run();

    auto refined = bench_suite::generate_circuit(spec, config,
                                                 bench_common::kSeed);
    const auto stats = place::refine_pins(refined.grid, refined.netlist);
    core::StitchAwareRouter refined_router(
        refined.grid, refined.netlist,
        core::RouterConfig::stitch_aware().with_threads(threads));
    const auto refined_result = refined_router.run();

    report_scope.add(spec.name, "raw",
                     report::QualitySummary::from(raw_result, 0.0));
    {
      auto metrics = report::QualitySummary::from(refined_result, 0.0)
                         .to_metrics();
      metrics["pins_moved"] = report::Json(
          static_cast<std::int64_t>(stats.pins_moved));
      report_scope.add(spec.name, "refined", std::move(metrics));
    }

    table.add_row(spec.name, std::to_string(raw_result.metrics.via_violations),
                  std::to_string(raw_result.metrics.short_polygons),
                  util::Table::fixed(raw_result.metrics.routability_pct(), 2),
                  std::to_string(refined_result.metrics.via_violations),
                  std::to_string(refined_result.metrics.short_polygons),
                  util::Table::fixed(refined_result.metrics.routability_pct(), 2),
                  std::to_string(stats.pins_moved));
  }
  std::cout << table.str(
      "FUTURE-WORK ABLATION: stitch-aware pin refinement before routing "
      "(paper SV)")
            << "\nExpected shape: refinement removes most fixed-pin via "
               "violations and the pin-induced short-polygon pressure.\n";
  return 0;
}
