// Ablation of the two stitch-aware detailed-routing ingredients illustrated
// in Figs. 12-14: the escape/via-in-unfriendly-region costs (eq. 10) and the
// bad-end-driven net ordering. Four configurations on every circuit show
// each ingredient's contribution to short-polygon reduction.

#include <iostream>

#include "bench_common.hpp"
#include "core/stitch_router.hpp"

int main(int argc, char** argv) {
  using namespace mebl;
  bench_common::TelemetryScope telemetry_scope(argc, argv);
  bench_common::ReportScope report_scope("fig12_14_detail_ablation", argc,
                                         argv);
  bench_common::QuietLogs quiet;
  const int threads = bench_common::threads_from_args(argc, argv);

  struct Variant {
    const char* name;
    const char* key;  ///< stable (circuit, variant) key in the JSON artifact
    bool cost;
    bool ordering;
  };
  const Variant variants[] = {
      {"neither", "neither", false, false},
      {"cost only (Fig.12/13)", "cost-only", true, false},
      {"ordering only (Fig.14)", "ordering-only", false, true},
      {"both (full)", "both", true, true},
  };

  util::Table table("Circuit", "neither #SP", "cost #SP", "ordering #SP",
                    "both #SP", "both Rout.(%)");

  std::vector<std::int64_t> totals(4, 0);
  for (const auto& spec : bench_common::selected_specs(bench_common::SuiteWeight::kSmall)) {
    std::vector<std::string> row{spec.name};
    double both_rout = 0.0;
    for (std::size_t v = 0; v < 4; ++v) {
      auto config = core::RouterConfig::stitch_aware().with_threads(threads);
      config.detail.astar.stitch_cost = variants[v].cost;
      config.detail.stitch_net_ordering = variants[v].ordering;
      const auto circuit = bench_common::generate(spec);
      core::StitchAwareRouter router(circuit.grid, circuit.netlist, config);
      const auto result = router.run();
      row.push_back(std::to_string(result.metrics.short_polygons));
      totals[v] += result.metrics.short_polygons;
      report_scope.add(spec.name, variants[v].key,
                       {{"short_polygons",
                         report::Json(result.metrics.short_polygons)},
                        {"routability_pct",
                         report::Json(result.metrics.routability_pct())}});
      if (v == 3) both_rout = result.metrics.routability_pct();
    }
    row.push_back(util::Table::fixed(both_rout, 2));
    table.add_row(row);
  }
  table.add_rule();
  table.add_row("Total", std::to_string(totals[0]), std::to_string(totals[1]),
                std::to_string(totals[2]), std::to_string(totals[3]), "-");

  std::cout << table.str(
      "FIGS. 12-14 ablation: stitch-aware cost terms and net ordering in "
      "detailed routing")
            << "\nExpected shape: 'both' <= each single ingredient <= "
               "'neither' in total #SP.\n";
  return 0;
}
