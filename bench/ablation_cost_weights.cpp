// Ablation of the eq. (10) weights: sweeps the via-in-unfriendly-region
// weight beta and the escape-region weight gamma around the paper's choice
// (alpha=1, beta=10, gamma=5, beta >> gamma) and reports short polygons and
// routability. Demonstrates the paper's claim that beta must dominate.

#include <iostream>

#include "bench_common.hpp"
#include "core/stitch_router.hpp"

int main(int argc, char** argv) {
  using namespace mebl;
  bench_common::TelemetryScope telemetry_scope(argc, argv);
  bench_common::ReportScope report_scope("ablation_cost_weights", argc, argv);
  bench_common::QuietLogs quiet;
  const int threads = bench_common::threads_from_args(argc, argv);

  struct Setting {
    double beta;
    double gamma;
  };
  const Setting settings[] = {
      {0.0, 0.0}, {0.0, 5.0}, {10.0, 0.0}, {5.0, 5.0},
      {10.0, 5.0},  // the paper's setting
      {20.0, 5.0}, {10.0, 10.0},
  };

  const auto specs = {*bench_suite::find_spec("S5378"),
                      *bench_suite::find_spec("S9234"),
                      *bench_suite::find_spec("S13207")};

  util::Table table("beta", "gamma", "#SP total", "Rout.(%) avg", "WL total",
                    "CPU(s)");
  for (const auto& setting : settings) {
    std::int64_t sp = 0, wl = 0;
    double rout = 0.0;
    util::Timer timer;
    for (const auto& spec : specs) {
      const auto circuit = bench_common::generate(spec);
      auto config = core::RouterConfig::stitch_aware().with_threads(threads);
      config.detail.astar.beta = setting.beta;
      config.detail.astar.gamma = setting.gamma;
      core::StitchAwareRouter router(circuit.grid, circuit.netlist, config);
      const auto result = router.run();
      sp += result.metrics.short_polygons;
      wl += result.metrics.wirelength;
      rout += result.metrics.routability_pct();
    }
    const double seconds = timer.seconds();
    table.add_row(util::Table::fixed(setting.beta, 0),
                  util::Table::fixed(setting.gamma, 0), std::to_string(sp),
                  util::Table::fixed(rout / 3.0, 2), std::to_string(wl),
                  util::Table::fixed(seconds, 1));
    const std::string variant = "beta=" + util::Table::fixed(setting.beta, 0) +
                                ",gamma=" +
                                util::Table::fixed(setting.gamma, 0);
    report_scope.add("S5378+S9234+S13207", variant,
                     {{"short_polygons", report::Json(sp)},
                      {"routability_pct", report::Json(rout / 3.0)},
                      {"wirelength", report::Json(wl)},
                      {"seconds", report::Json(seconds)}});
  }
  std::cout << table.str(
      "ABLATION: detailed-routing cost weights (paper: alpha=1, beta=10, "
      "gamma=5)")
            << "\nExpected shape: larger beta lowers #SP; the paper's "
               "beta >> gamma setting is near the knee.\n";
  return 0;
}
