// BM_EcoReroute: incremental (ECO) reroute vs. full-route cost on S5378.
//
// Routes S5378 once through the resident pipeline, then measures ECO
// reroutes of growing net batches against the resident state — the number
// the serving layer's <25%-of-full-route acceptance gate reads. Emits a
// mebl.bench_report row (S5378, eco_reroute) plus one row per batch size,
// so `mebl_report diff` can gate the incremental path like any table.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "serve/resident_design.hpp"

namespace {

/// The first `count` nets with at least two pins (single-pin nets carry no
/// subnets, so an ECO on them would measure nothing).
std::vector<mebl::netlist::NetId> routable_nets(
    const mebl::netlist::Netlist& netlist, std::size_t count) {
  std::vector<mebl::netlist::NetId> nets;
  for (const mebl::netlist::Net& net : netlist.nets()) {
    if (net.degree() < 2) continue;
    nets.push_back(net.id);
    if (nets.size() == count) break;
  }
  return nets;
}

struct EcoSample {
  std::size_t batch = 0;
  std::size_t dirty = 0;
  double seconds = 0.0;
  bool fallback = false;
};

/// One measured configuration: full-route S5378, then ECO `batch` nets.
/// Each sample rebuilds the resident from scratch so every ECO hits the
/// same pre-ECO state (ECOs mutate the resident they run against).
EcoSample BM_EcoReroute(const mebl::bench_suite::BenchmarkSpec& spec,
                        int threads, std::size_t batch,
                        double* full_seconds_out) {
  using namespace mebl;
  auto circuit = bench_common::generate(spec);
  serve::ResidentDesign resident(
      netlist::Design{circuit.grid, std::move(circuit.netlist)},
      core::RouterConfig::stitch_aware().with_threads(threads));

  util::Timer timer;
  const serve::EcoOutcome full = resident.route_full();
  const double full_seconds = timer.seconds();
  if (!full.ok) {
    std::cerr << "[eco_reroute] full route failed: " << full.error << "\n";
    std::exit(1);
  }
  if (full_seconds_out != nullptr) *full_seconds_out = full_seconds;

  serve::EcoRequest request;
  request.nets = routable_nets(resident.design().netlist, batch);
  const serve::EcoOutcome outcome = resident.eco(request);
  if (!outcome.ok) {
    std::cerr << "[eco_reroute] eco failed: " << outcome.error << "\n";
    std::exit(1);
  }
  return {request.nets.size(), outcome.dirty_subnets, outcome.seconds,
          outcome.fallback_full};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mebl;
  bench_common::TelemetryScope telemetry_scope(argc, argv);
  bench_common::ReportScope report_scope("eco_reroute", argc, argv);
  bench_common::QuietLogs quiet;
  const int threads = bench_common::threads_from_args(argc, argv);

  const auto* spec = bench_suite::find_spec("S5378");
  if (spec == nullptr) {
    std::cerr << "[eco_reroute] no S5378 spec\n";
    return 1;
  }

  util::Table table("Batch (nets)", "Dirty subnets", "ECO CPU(s)",
                    "Full CPU(s)", "ECO/Full", "Fallback");

  const std::size_t batches[] = {1, 10, 50};
  double headline_ratio = 0.0;
  for (const std::size_t batch : batches) {
    double full_seconds = 0.0;
    const EcoSample sample =
        BM_EcoReroute(*spec, threads, batch, &full_seconds);
    const double ratio =
        full_seconds > 0.0 ? sample.seconds / full_seconds : 0.0;
    if (batch == 10) headline_ratio = ratio;

    table.add_row(std::to_string(sample.batch),
                  std::to_string(sample.dirty),
                  util::Table::fixed(sample.seconds, 3),
                  util::Table::fixed(full_seconds, 3),
                  util::Table::fixed(ratio, 3),
                  sample.fallback ? "yes" : "no");

    report::Json::Object metrics;
    metrics["batch_nets"] = static_cast<std::int64_t>(sample.batch);
    metrics["dirty_subnets"] = static_cast<std::int64_t>(sample.dirty);
    metrics["eco_seconds"] = sample.seconds;
    metrics["full_seconds"] = full_seconds;
    metrics["eco_over_full"] = ratio;
    report_scope.add(spec->name,
                     batch == 10 ? "eco_reroute"
                                 : "eco_reroute_b" + std::to_string(batch),
                     std::move(metrics));
  }

  std::cout << table.str("BM_EcoReroute: incremental reroute vs. full route "
                         "(S5378)")
            << "\nServing-layer gate: the 10-net ECO must stay under 0.25x "
               "the full route (measured "
            << util::Table::fixed(headline_ratio, 3) << "x)\n";
  return headline_ratio < 0.25 ? 0 : 1;
}
