// Reproduces Table VII: the three track-assignment algorithms inside the
// otherwise stitch-aware pipeline — stitch-oblivious baseline, the exact
// ILP (eqs. 5-9), and the graph-based dogleg heuristic. ILP columns print
// NA when the circuit exceeds the ILP time budget, mirroring the paper's
// >100000 s entries.

#include <iostream>

#include "bench_common.hpp"
#include "core/stitch_router.hpp"

namespace {

struct Row {
  double rout = 0.0;
  int vv = 0;
  int sp = 0;
  double cpu = 0.0;
  bool na = false;
};

Row run(const mebl::bench_suite::GeneratedCircuit& circuit,
        mebl::core::TrackAlgorithm algorithm, int threads) {
  using namespace mebl;
  auto config = core::RouterConfig::stitch_aware()
                    .with_track_algorithm(algorithm)
                    .with_ilp_budget(30.0)
                    .with_threads(threads);
  config.ilp.time_limit_seconds = 5.0;
  util::Timer timer;
  core::StitchAwareRouter router(circuit.grid, circuit.netlist, config);
  const auto result = router.run();
  Row row;
  row.rout = result.metrics.routability_pct();
  row.vv = result.metrics.via_violations;
  row.sp = result.metrics.short_polygons;
  row.cpu = timer.seconds();
  row.na = result.ilp_budget_exceeded;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mebl;
  bench_common::TelemetryScope telemetry_scope(argc, argv);
  bench_common::ReportScope report_scope("table7_track_assignment", argc,
                                         argv);
  bench_common::QuietLogs quiet;
  const int threads = bench_common::threads_from_args(argc, argv);

  util::Table table("Circuit", "w/o Rout.(%)", "w/o #SP", "w/o CPU(s)",
                    "ILP Rout.(%)", "ILP #SP", "ILP CPU(s)", "Graph Rout.(%)",
                    "Graph #SP", "Graph CPU(s)");

  std::int64_t base_sp = 0, graph_sp = 0;
  double base_cpu = 0.0, graph_cpu = 0.0, ilp_cpu = 0.0;
  int ilp_circuits = 0;

  for (const auto& spec : bench_common::selected_specs(bench_common::SuiteWeight::kSmall)) {
    const auto circuit = bench_common::generate(spec);
    const Row baseline = run(circuit, core::TrackAlgorithm::kBaseline, threads);
    const Row ilp = run(circuit, core::TrackAlgorithm::kIlp, threads);
    const Row graph = run(circuit, core::TrackAlgorithm::kGraph, threads);

    const auto row_metrics = [](const Row& row) {
      report::Json::Object metrics;
      metrics["routability_pct"] = row.rout;
      metrics["via_violations"] = row.vv;
      metrics["short_polygons"] = row.sp;
      metrics["seconds"] = row.cpu;
      metrics["budget_exceeded"] = static_cast<std::int64_t>(row.na ? 1 : 0);
      return metrics;
    };
    report_scope.add(spec.name, "baseline", row_metrics(baseline));
    if (!ilp.na) report_scope.add(spec.name, "ilp", row_metrics(ilp));
    report_scope.add(spec.name, "graph", row_metrics(graph));

    table.add_row(spec.name, util::Table::fixed(baseline.rout, 2),
                  std::to_string(baseline.sp),
                  util::Table::fixed(baseline.cpu, 1),
                  ilp.na ? "NA" : util::Table::fixed(ilp.rout, 2),
                  ilp.na ? "NA" : std::to_string(ilp.sp),
                  ilp.na ? "NA" : util::Table::fixed(ilp.cpu, 1),
                  util::Table::fixed(graph.rout, 2), std::to_string(graph.sp),
                  util::Table::fixed(graph.cpu, 1));

    base_sp += baseline.sp;
    graph_sp += graph.sp;
    base_cpu += baseline.cpu;
    graph_cpu += graph.cpu;
    if (!ilp.na) {
      ilp_cpu += ilp.cpu;
      ++ilp_circuits;
    }
  }

  table.add_rule();
  table.add_row("Comp.", "1.000", "1.000", "1.0", "-", "-",
                ilp_circuits > 0 ? util::Table::fixed(ilp_cpu, 1) + "s total"
                                 : "NA",
                "-",
                util::Table::fixed(base_sp > 0
                                       ? static_cast<double>(graph_sp) /
                                             static_cast<double>(base_sp)
                                       : 0.0,
                                   3),
                util::Table::fixed(base_cpu > 0 ? graph_cpu / base_cpu : 1.0, 1));

  std::cout << table.str(
      "TABLE VII: track assignment algorithms (within the stitch-aware flow)")
            << "\nPaper shape: stitch-aware assigners remove >97% of short "
               "polygons; ILP is orders of magnitude slower (NA = budget "
               "exceeded), graph CPU ratio ~1.1\n";
  return 0;
}
