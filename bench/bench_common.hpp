#pragma once

// Shared helpers for the table-reproduction harnesses. Each bench binary
// regenerates one table (or figure) of the paper on the synthetic benchmark
// suites; see DESIGN.md for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_suite/circuit_generator.hpp"
#include "report/report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace mebl::bench_common {

/// Deterministic seed shared by all harnesses so tables are reproducible.
inline constexpr std::uint64_t kSeed = 20130602;  // DAC'13 publication date

/// Generator settings per suite: Faraday circuits are denser 6-layer designs.
inline bench_suite::GeneratorConfig mcnc_config() {
  bench_suite::GeneratorConfig config;
  config.pin_density = 0.05;
  return config;
}

inline bench_suite::GeneratorConfig faraday_config() {
  bench_suite::GeneratorConfig config;
  config.pin_density = 0.10;
  return config;
}

/// How expensive a harness's default circuit set may be. Full-pipeline
/// harnesses on a single core default to the nine MCNC circuits plus the
/// representative Faraday circuit (Dma); MEBL_BENCH_FULL=1 restores every
/// row of Tables I+II, MEBL_BENCH_QUICK=1 keeps the four smallest, and
/// MEBL_BENCH_CIRCUITS=<names> selects explicitly.
enum class SuiteWeight {
  kCheap,   ///< per-circuit cost is seconds: all 14 circuits by default
  kHeavy,   ///< full pipeline runs: MCNC + Dma by default
  kSmall,   ///< multiplied by many configs: the smaller MCNC circuits
};

/// The circuits a harness runs over (see SuiteWeight).
inline std::vector<bench_suite::BenchmarkSpec> selected_specs(
    SuiteWeight weight = SuiteWeight::kCheap) {
  std::vector<bench_suite::BenchmarkSpec> all = bench_suite::mcnc_suite();
  const auto faraday = bench_suite::faraday_suite();
  all.insert(all.end(), faraday.begin(), faraday.end());

  if (const char* names = std::getenv("MEBL_BENCH_CIRCUITS")) {
    std::vector<bench_suite::BenchmarkSpec> picked;
    std::string list = names;
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string name =
          list.substr(pos, comma == std::string::npos ? comma : comma - pos);
      if (const auto* spec = bench_suite::find_spec(name))
        picked.push_back(*spec);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (!picked.empty()) return picked;
  }
  if (const char* quick = std::getenv("MEBL_BENCH_QUICK");
      quick != nullptr && quick[0] == '1') {
    std::vector<bench_suite::BenchmarkSpec> picked;
    for (const auto& name : {"S5378", "S9234", "Primary1", "Struct"})
      picked.push_back(*bench_suite::find_spec(name));
    return picked;
  }
  if (const char* full = std::getenv("MEBL_BENCH_FULL");
      full != nullptr && full[0] == '1')
    return all;

  std::vector<bench_suite::BenchmarkSpec> picked;
  switch (weight) {
    case SuiteWeight::kCheap:
      return all;
    case SuiteWeight::kHeavy:
      picked = bench_suite::mcnc_suite();
      picked.push_back(*bench_suite::find_spec("Dma"));
      return picked;
    case SuiteWeight::kSmall:
      for (const auto& name :
           {"Struct", "Primary1", "Primary2", "S5378", "S9234", "S13207"})
        picked.push_back(*bench_suite::find_spec(name));
      return picked;
  }
  return all;
}

/// Shared `--threads N` handling for the table harnesses: the worker count
/// handed to RouterConfig::with_threads (0 = one worker per hardware
/// thread). The MEBL_THREADS environment variable is the fallback so suite
/// drivers can set it once. Routed metrics are identical for every value;
/// only the CPU columns change.
inline int threads_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--threads") return std::atoi(argv[i + 1]);
  if (const char* env = std::getenv("MEBL_THREADS")) return std::atoi(env);
  return 0;
}

inline bench_suite::GeneratorConfig config_for(
    const bench_suite::BenchmarkSpec& spec) {
  return spec.layers >= 6 ? faraday_config() : mcnc_config();
}

inline bench_suite::GeneratedCircuit generate(
    const bench_suite::BenchmarkSpec& spec) {
  return bench_suite::generate_circuit(spec, config_for(spec), kSeed);
}

/// Keep table output clean: only warnings and errors on stderr.
struct QuietLogs {
  QuietLogs() { util::Log::set_level(util::LogLevel::kWarn); }
};

/// Shared `--trace FILE` / `--stats FILE` handling for the table harnesses:
/// construct at the top of main with (argc, argv); when either flag is
/// present the scope enables tracing up front and writes the machine-
/// readable artifacts when it is destroyed, so every table run can leave a
/// Chrome/Perfetto trace and a counter dump next to its ASCII table.
/// Unrelated arguments are ignored (the harnesses have none of their own).
class TelemetryScope {
 public:
  TelemetryScope(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--trace" && i + 1 < argc)
        trace_path_ = argv[++i];
      else if (arg == "--stats" && i + 1 < argc)
        stats_path_ = argv[++i];
    }
    if (!trace_path_.empty()) telemetry::Tracer::enable();
  }

  ~TelemetryScope() {
    if (!trace_path_.empty()) {
      if (telemetry::Tracer::write_chrome_trace_file(trace_path_))
        std::cerr << "[mebl bench] wrote trace to " << trace_path_ << "\n";
      else
        std::cerr << "[mebl bench] cannot write " << trace_path_ << "\n";
    }
    if (!stats_path_.empty()) {
      if (telemetry::write_stats_file(stats_path_))
        std::cerr << "[mebl bench] wrote stats to " << stats_path_ << "\n";
      else
        std::cerr << "[mebl bench] cannot write " << stats_path_ << "\n";
    }
  }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  std::string trace_path_;
  std::string stats_path_;
};

/// Shared `--json FILE` handling: collect one BenchRow per measured
/// (circuit, variant) configuration and write the machine-readable
/// mebl.bench_report artifact when the scope is destroyed. With no --json
/// flag, setting MEBL_BENCH_JSON=1 writes BENCH_<name>.json into the
/// working directory, so suite drivers can turn every harness into a
/// regression baseline for `mebl_report diff` with one environment
/// variable. Rows keep insertion order (the table's row order).
class ReportScope {
 public:
  ReportScope(std::string bench_name, int argc, char** argv) {
    report_.bench = std::move(bench_name);
    for (int i = 1; i < argc; ++i)
      if (std::string(argv[i]) == "--json" && i + 1 < argc)
        json_path_ = argv[++i];
    if (json_path_.empty()) {
      if (const char* on = std::getenv("MEBL_BENCH_JSON");
          on != nullptr && on[0] == '1')
        json_path_ = "BENCH_" + report_.bench + ".json";
    }
  }

  ~ReportScope() {
    if (json_path_.empty()) return;
    if (report_.write_file(json_path_))
      std::cerr << "[mebl bench] wrote " << json_path_ << "\n";
    else
      std::cerr << "[mebl bench] cannot write " << json_path_ << "\n";
  }

  ReportScope(const ReportScope&) = delete;
  ReportScope& operator=(const ReportScope&) = delete;

  /// True when a JSON artifact will be written (lets a harness skip
  /// collecting when nobody asked).
  [[nodiscard]] bool enabled() const noexcept { return !json_path_.empty(); }

  /// Record one measured configuration with the shared quality columns.
  void add(const std::string& circuit, const std::string& variant,
           const report::QualitySummary& summary) {
    report_.rows.push_back({circuit, variant, summary.to_metrics()});
  }

  /// Record one measured configuration with harness-specific metrics.
  void add(const std::string& circuit, const std::string& variant,
           report::Json::Object metrics) {
    report_.rows.push_back({circuit, variant, std::move(metrics)});
  }

 private:
  report::BenchReport report_;
  std::string json_path_;
};

}  // namespace mebl::bench_common
