// Reproduces Table VIII: detailed routing with vs. without stitch
// consideration (weighted cost of eq. (10) + bad-end net ordering), both on
// top of graph-based track assignment.

#include <iostream>

#include "bench_common.hpp"
#include "core/stitch_router.hpp"

int main(int argc, char** argv) {
  using namespace mebl;
  bench_common::TelemetryScope telemetry_scope(argc, argv);
  bench_common::ReportScope report_scope("table8_detailed_routing", argc,
                                         argv);
  bench_common::QuietLogs quiet;
  const int threads = bench_common::threads_from_args(argc, argv);

  util::Table table("Circuit", "w/o Rout.(%)", "w/o #VV", "w/o #SP",
                    "w/o CPU(s)", "w/ Rout.(%)", "w/ #VV", "w/ #SP",
                    "w/ CPU(s)");

  double wo_rout = 0.0, w_rout = 0.0;
  std::int64_t wo_sp = 0, w_sp = 0;
  double wo_cpu = 0.0, w_cpu = 0.0;
  int circuits = 0;

  for (const auto& spec : bench_common::selected_specs(bench_common::SuiteWeight::kHeavy)) {
    const auto circuit = bench_common::generate(spec);

    auto config_wo = core::RouterConfig::stitch_aware().with_threads(threads);
    config_wo.detail.astar.stitch_cost = false;
    config_wo.detail.stitch_net_ordering = false;
    util::Timer timer;
    core::StitchAwareRouter router_wo(circuit.grid, circuit.netlist, config_wo);
    const auto result_wo = router_wo.run();
    const double seconds_wo = timer.seconds();

    timer.reset();
    core::StitchAwareRouter router_w(
        circuit.grid, circuit.netlist,
        core::RouterConfig::stitch_aware().with_threads(threads));
    const auto result_w = router_w.run();
    const double seconds_w = timer.seconds();

    report_scope.add(spec.name, "stitch-oblivious",
                     report::QualitySummary::from(result_wo, seconds_wo));
    report_scope.add(spec.name, "stitch-aware",
                     report::QualitySummary::from(result_w, seconds_w));

    table.add_row(spec.name,
                  util::Table::fixed(result_wo.metrics.routability_pct(), 2),
                  std::to_string(result_wo.metrics.via_violations),
                  std::to_string(result_wo.metrics.short_polygons),
                  util::Table::fixed(seconds_wo, 1),
                  util::Table::fixed(result_w.metrics.routability_pct(), 2),
                  std::to_string(result_w.metrics.via_violations),
                  std::to_string(result_w.metrics.short_polygons),
                  util::Table::fixed(seconds_w, 1));

    wo_rout += result_wo.metrics.routability_pct();
    w_rout += result_w.metrics.routability_pct();
    wo_sp += result_wo.metrics.short_polygons;
    w_sp += result_w.metrics.short_polygons;
    wo_cpu += seconds_wo;
    w_cpu += seconds_w;
    ++circuits;
  }

  table.add_rule();
  table.add_row("Comp.", "1.000", "-", "1.000", "1.00",
                util::Table::fixed(wo_rout > 0 ? w_rout / wo_rout : 1.0, 3),
                "-",
                util::Table::fixed(wo_sp > 0 ? static_cast<double>(w_sp) /
                                                   static_cast<double>(wo_sp)
                                             : 0.0,
                                   3),
                util::Table::fixed(wo_cpu > 0 ? w_cpu / wo_cpu : 1.0, 2));

  std::cout << table.str(
      "TABLE VIII: detailed routing w/o vs. w/ stitch consideration")
            << "\nPaper shape: #SP ratio ~0.200 (80% reduction), routability "
               "ratio ~0.998, CPU ratio ~1.02\n";
  return 0;
}
