// BM_ServeThroughput: closed-loop serving benchmark for the lane dispatcher
// (DESIGN.md §16).
//
// Spins up an in-process mebl_serve Server, connects one client thread per
// resident design (K designs whose names hash to K distinct lanes), and
// drives a mixed workload over AF_UNIX: load, a full route, a pipelined
// burst of E ECOs (sent in one write so they coalesce into one batched
// rip-up/reroute; the last member asks for a verify replay), a status
// probe, a second full route, and a final verified ECO. The whole workload
// runs twice — --lanes 1 (the PR 6 single-dispatcher shape) and --lanes K —
// and emits mebl.bench_report rows with QPS and client-observed latency
// p50/p95/p99.
//
// Gated vs. informational: jobs_completed, eco_coalesced, eco_verified and
// the cross-lane-count reports_identical bit are functions of the protocol
// alone and gate strictly in bench/check_baseline.sh; wall-clock, QPS and
// the latency percentiles are machine-dependent and stay informational.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "netlist/io.hpp"
#include "serve/client.hpp"
#include "serve/lane_scheduler.hpp"
#include "serve/resident_design.hpp"
#include "serve/server.hpp"
#include "telemetry/keys.hpp"

namespace {

using namespace mebl;

constexpr std::size_t kDesigns = 4;  ///< K: resident designs == max lanes
constexpr std::size_t kEcoBurst = 4;  ///< E: pipelined ECOs per burst
constexpr std::size_t kEcoNets = 6;   ///< nets per ECO request

/// One resident design's share of the workload, fixed up front so both
/// lane configurations replay byte-identical request sequences.
struct DesignWorkload {
  std::string name;
  std::string text;  ///< MEBL1 design, sent inline with the load
  std::vector<std::vector<netlist::NetId>> eco_batches;  ///< E burst members
  std::vector<netlist::NetId> final_nets;
};

/// What one client thread observed.
struct ClientResult {
  bool ok = true;
  std::string error;
  std::size_t terminals = 0;         ///< terminal (done) responses received
  std::vector<double> latencies_ms;  ///< send -> terminal, per queued job
  std::size_t verified = 0;          ///< responses with eco.verified == true
  std::size_t burst_coalesced = 0;   ///< eco.coalesced of the burst's last member
  std::string burst_block;           ///< canonical quality bytes, burst report
  std::string route2_block;          ///< canonical quality bytes, second route
  std::string final_block;           ///< canonical quality bytes, final ECO
};

struct ConfigResult {
  std::vector<ClientResult> clients;
  double wall_seconds = 0.0;
  std::int64_t coalesced_absorbed = 0;  ///< serve.eco.coalesced delta
};

/// First `count` nets with >= 2 pins starting at `offset` (wrapping), so
/// the burst members touch different nets.
std::vector<netlist::NetId> routable_nets(const netlist::Netlist& netlist,
                                          std::size_t count,
                                          std::size_t offset) {
  std::vector<netlist::NetId> routable;
  for (const netlist::Net& net : netlist.nets())
    if (net.degree() >= 2) routable.push_back(net.id);
  std::vector<netlist::NetId> picked;
  if (routable.empty()) return picked;
  for (std::size_t i = 0; i < count; ++i)
    picked.push_back(routable[(offset + i) % routable.size()]);
  std::sort(picked.begin(), picked.end());
  picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
  return picked;
}

/// K mid-size designs (big enough that a route keeps its lane busy while
/// the ECO burst lands in the queue) whose names hash to K distinct lanes,
/// so --lanes K actually runs them K-wide.
std::vector<DesignWorkload> build_workloads() {
  std::vector<DesignWorkload> workloads;
  std::set<std::size_t> lanes_taken;
  for (int candidate = 0; workloads.size() < kDesigns; ++candidate) {
    const std::string name = "mix" + std::to_string(candidate);
    const std::size_t lane = serve::LaneScheduler::lane_for(name, kDesigns);
    if (!lanes_taken.insert(lane).second) continue;

    bench_suite::BenchmarkSpec spec;
    spec.name = name;
    spec.um_width = 100.0;
    spec.um_height = 100.0;
    spec.layers = 3;
    spec.nets = 500;
    spec.pins = 1500;
    auto circuit = bench_suite::generate_circuit(
        spec, bench_common::mcnc_config(),
        bench_common::kSeed + static_cast<std::uint64_t>(candidate));

    DesignWorkload workload;
    workload.name = name;
    for (std::size_t e = 0; e < kEcoBurst; ++e)
      workload.eco_batches.push_back(
          routable_nets(circuit.netlist, kEcoNets, e * kEcoNets));
    workload.final_nets =
        routable_nets(circuit.netlist, kEcoNets, kEcoBurst * kEcoNets);
    std::ostringstream text;
    netlist::write_design(
        text, netlist::Design{circuit.grid, std::move(circuit.netlist)});
    workload.text = text.str();
    workloads.push_back(std::move(workload));
  }
  return workloads;
}

double ms_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Canonical quality bytes of the run report inside a terminal response;
/// empty (and flags the result) when the response carries none.
std::string canonical_block_of(const serve::Response& response,
                               ClientResult& result) {
  const report::Json* json = response.payload.get("report");
  if (json == nullptr) {
    result.ok = false;
    result.error = "terminal response without a report";
    return {};
  }
  const std::optional<report::RunReport> run = report::parse_run_report(*json);
  if (!run) {
    result.ok = false;
    result.error = "unparseable run report";
    return {};
  }
  return serve::canonical_quality_block(*run);
}

void fail(ClientResult& result, std::string message) {
  result.ok = false;
  result.error = std::move(message);
}

/// The per-design client script; one thread per design, closed loop.
ClientResult run_client(const std::string& socket_path,
                        const DesignWorkload& workload) {
  ClientResult result;
  serve::Client client;
  if (!client.connect(socket_path)) {
    fail(result, "cannot connect");
    return result;
  }

  const auto timed_call = [&](serve::Request request) {
    const auto start = std::chrono::steady_clock::now();
    std::optional<serve::Response> response = client.call(std::move(request));
    if (response && response->type == "done") {
      result.latencies_ms.push_back(ms_since(start));
      ++result.terminals;
    }
    return response;
  };

  // load (wait) — the design becomes resident before anything queues.
  serve::Request load;
  load.op = serve::Op::kLoad;
  load.design = workload.name;
  load.design_text = workload.text;
  const std::optional<serve::Response> loaded = timed_call(std::move(load));
  if (!loaded || loaded->type != "done") {
    fail(result, "load failed");
    return result;
  }

  // route + ECO burst, pipelined: the route occupies the lane while the
  // burst (one socket write -> consecutive queue slots) lands behind it,
  // so the dispatcher coalesces the burst into one batched reroute.
  const auto pipeline_start = std::chrono::steady_clock::now();
  serve::Request route;
  route.op = serve::Op::kRoute;
  route.design = workload.name;
  const std::int64_t route_id = client.send(route);
  std::vector<serve::Request> burst;
  for (std::size_t e = 0; e < workload.eco_batches.size(); ++e) {
    serve::Request eco;
    eco.op = serve::Op::kEco;
    eco.design = workload.name;
    eco.nets = workload.eco_batches[e];
    eco.verify = e + 1 == workload.eco_batches.size();
    burst.push_back(std::move(eco));
  }
  const std::vector<std::int64_t> burst_ids =
      client.send_batch(std::move(burst));
  if (route_id < 0 || burst_ids.empty()) {
    fail(result, "pipelined send failed");
    return result;
  }

  std::set<std::int64_t> outstanding(burst_ids.begin(), burst_ids.end());
  outstanding.insert(route_id);
  while (!outstanding.empty()) {
    std::optional<serve::Response> response = client.receive();
    if (!response) {
      fail(result, "connection lost mid-pipeline");
      return result;
    }
    if (response->type == "ack" || response->type == "progress") continue;
    if (outstanding.erase(response->id) == 0) continue;
    if (response->type != "done") {
      fail(result, "pipelined job failed: " + response->error);
      return result;
    }
    result.latencies_ms.push_back(ms_since(pipeline_start));
    ++result.terminals;
    if (response->id == burst_ids.back()) {
      result.burst_block = canonical_block_of(*response, result);
      if (const report::Json* eco = response->payload.get("eco")) {
        if (const report::Json* coalesced = eco->get("coalesced"))
          result.burst_coalesced =
              static_cast<std::size_t>(coalesced->as_int());
        if (const report::Json* verified = eco->get("verified");
            verified != nullptr && verified->as_bool())
          ++result.verified;
      }
    }
  }

  // status probe (inline op, not a queued job) — the mixed-op leg.
  serve::Request status;
  status.op = serve::Op::kStatus;
  if (!client.call(std::move(status))) {
    fail(result, "status failed");
    return result;
  }

  // second full route: resets the resident to a state that only depends on
  // the netlist, so the blocks below compare across lane counts.
  serve::Request route2;
  route2.op = serve::Op::kRoute;
  route2.design = workload.name;
  const std::optional<serve::Response> rerouted = timed_call(std::move(route2));
  if (!rerouted || rerouted->type != "done") {
    fail(result, "second route failed");
    return result;
  }
  result.route2_block = canonical_block_of(*rerouted, result);

  // final ECO, alone and verified: the bit-identity probe.
  serve::Request final_eco;
  final_eco.op = serve::Op::kEco;
  final_eco.design = workload.name;
  final_eco.nets = workload.final_nets;
  final_eco.verify = true;
  const std::optional<serve::Response> finished =
      timed_call(std::move(final_eco));
  if (!finished || finished->type != "done") {
    fail(result, "final eco failed");
    return result;
  }
  result.final_block = canonical_block_of(*finished, result);
  if (const report::Json* eco = finished->payload.get("eco"))
    if (const report::Json* verified = eco->get("verified");
        verified != nullptr && verified->as_bool())
      ++result.verified;
  return result;
}

ConfigResult run_config(int lanes, int threads,
                        const std::vector<DesignWorkload>& workloads) {
  serve::ServerConfig config;
  config.socket_path =
      "/tmp/mebl_bench_serve_" + std::to_string(::getpid()) + "_" +
      std::to_string(lanes) + ".sock";
  config.threads = threads;
  config.lanes = lanes;
  config.cache_capacity = workloads.size();
  serve::Server server(std::move(config));
  if (!server.start()) {
    std::cerr << "[serve_throughput] cannot start server\n";
    std::exit(1);
  }

  const std::int64_t absorbed_before =
      telemetry::counter(telemetry::keys::kServeEcoCoalesced).value();
  ConfigResult result;
  result.clients.resize(workloads.size());
  util::Timer timer;
  std::vector<std::thread> threads_running;
  for (std::size_t i = 0; i < workloads.size(); ++i)
    threads_running.emplace_back([&, i] {
      result.clients[i] = run_client(server.socket_path(), workloads[i]);
    });
  for (std::thread& thread : threads_running) thread.join();
  result.wall_seconds = timer.seconds();
  result.coalesced_absorbed =
      telemetry::counter(telemetry::keys::kServeEcoCoalesced).value() -
      absorbed_before;
  server.stop();
  return result;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  bench_common::TelemetryScope telemetry_scope(argc, argv);
  bench_common::ReportScope report_scope("serve_throughput", argc, argv);
  bench_common::QuietLogs quiet;
  const int threads = bench_common::threads_from_args(argc, argv);

  const std::vector<DesignWorkload> workloads = build_workloads();
  // Every design queues E+4 jobs: load, route, E burst ECOs, a second
  // route, the final ECO. Two verify replays per design must come back
  // verified, and each burst coalesces E-1 follow-ons into its batch.
  const std::size_t expected_jobs = kDesigns * (kEcoBurst + 4);
  const std::size_t expected_verified = kDesigns * 2;
  const std::size_t expected_absorbed = kDesigns * (kEcoBurst - 1);

  util::Table table("Lanes", "Jobs", "Coalesced", "Verified", "Wall(s)",
                    "QPS", "p50(ms)", "p95(ms)", "p99(ms)");
  const int lane_configs[] = {1, static_cast<int>(kDesigns)};
  std::vector<ConfigResult> results;
  bool ok = true;
  for (const int lanes : lane_configs) {
    ConfigResult result = run_config(lanes, threads, workloads);

    std::size_t jobs = 0;
    std::size_t verified = 0;
    std::vector<double> latencies;
    for (const ClientResult& client : result.clients) {
      if (!client.ok) {
        std::cerr << "[serve_throughput] lanes=" << lanes
                  << " client failed: " << client.error << "\n";
        ok = false;
      }
      jobs += client.terminals;
      verified += client.verified;
      latencies.insert(latencies.end(), client.latencies_ms.begin(),
                       client.latencies_ms.end());
    }
    std::sort(latencies.begin(), latencies.end());
    const double qps = result.wall_seconds > 0.0
                           ? static_cast<double>(jobs) / result.wall_seconds
                           : 0.0;
    const double p50 = percentile(latencies, 0.50);
    const double p95 = percentile(latencies, 0.95);
    const double p99 = percentile(latencies, 0.99);
    ok = ok && jobs == expected_jobs && verified == expected_verified &&
         result.coalesced_absorbed ==
             static_cast<std::int64_t>(expected_absorbed);

    table.add_row(std::to_string(lanes), std::to_string(jobs),
                  std::to_string(result.coalesced_absorbed),
                  std::to_string(verified),
                  util::Table::fixed(result.wall_seconds, 3),
                  util::Table::fixed(qps, 1), util::Table::fixed(p50, 1),
                  util::Table::fixed(p95, 1), util::Table::fixed(p99, 1));

    report::Json::Object metrics;
    metrics["jobs_completed"] = static_cast<std::int64_t>(jobs);
    metrics["eco_coalesced"] = result.coalesced_absorbed;
    metrics["eco_verified"] = static_cast<std::int64_t>(verified);
    metrics["wall_seconds"] = result.wall_seconds;
    metrics["qps"] = qps;
    metrics["latency_p50_ms"] = p50;
    metrics["latency_p95_ms"] = p95;
    metrics["latency_p99_ms"] = p99;
    report_scope.add("serve_mix", "lanes" + std::to_string(lanes),
                     std::move(metrics));
    results.push_back(std::move(result));
  }

  // Cross-lane-count identity: the per-design canonical quality blocks of
  // the serialized legs (second route, final verified ECO) must match byte
  // for byte between --lanes 1 and --lanes K. The burst block compares too,
  // but stays informational: its batch composition is timing-sensitive in
  // principle even though the gated coalesce count pins it in practice.
  bool identical = true;
  bool burst_identical = true;
  for (std::size_t i = 0; i < kDesigns; ++i) {
    const ClientResult& a = results[0].clients[i];
    const ClientResult& b = results[1].clients[i];
    identical = identical && !a.route2_block.empty() &&
                a.route2_block == b.route2_block &&
                !a.final_block.empty() && a.final_block == b.final_block;
    burst_identical = burst_identical && !a.burst_block.empty() &&
                      a.burst_block == b.burst_block;
  }
  ok = ok && identical;

  report::Json::Object identity;
  identity["reports_identical"] = identical ? std::int64_t{1} : std::int64_t{0};
  identity["batch_reports_identical"] =
      burst_identical ? std::int64_t{1} : std::int64_t{0};
  identity["designs"] = static_cast<std::int64_t>(kDesigns);
  report_scope.add("serve_mix", "identity", std::move(identity));

  std::cout << table.str("BM_ServeThroughput: " + std::to_string(kDesigns) +
                         " designs x (load + route + " +
                         std::to_string(kEcoBurst) +
                         "-ECO burst + status + route + verified ECO)")
            << "\nCross-lane identity: route/ECO reports "
            << (identical ? "byte-identical" : "DIFFER") << " across lane "
            << "counts; burst batch reports "
            << (burst_identical ? "byte-identical" : "differ") << "\n";
  return ok ? 0 : 1;
}
