// Google-benchmark microbenchmarks of the core algorithmic substrates:
// A* detailed search, the global-routing search kernel, min-cost flow
// (Carlisle-Lloyd), Hungarian matching, layer-assignment heuristics, and the
// graph-based track assigner.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <queue>
#include <vector>

#include "assign/layer_assign.hpp"
#include "assign/panel.hpp"
#include "assign/stage.hpp"
#include "assign/track_assign.hpp"
#include "bench_common.hpp"
#include "bench_suite/layer_instance_generator.hpp"
#include "detail/astar.hpp"
#include "exec/thread_pool.hpp"
#include "global/global_router.hpp"
#include "global/pattern_route.hpp"
#include "graph/bipartite_matching.hpp"
#include "graph/interval_k_coloring.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace mebl;

// Worker count for the exec-pool benchmarks, set by --threads (0 = one
// worker per hardware thread).
int g_threads = 0;

/// Fixed seeded A* kernel workload: a 320x320 3-layer grid cluttered with
/// deterministic foreign wires, then 200 bbox-confined searches. The same
/// workload backs the BM_AStarKernel benchmark and the mebl.bench_report
/// row, so the JSON artifact and the benchmark table measure one thing.
struct KernelStats {
  std::int64_t expansions = 0;
  std::int64_t routed = 0;
  double seconds = 0.0;
};

KernelStats run_astar_kernel_workload() {
  constexpr geom::Coord kSize = 320;
  grid::RoutingGrid rg(kSize, kSize, 3, 30, grid::StitchPlan(kSize, 15));
  detail::GridGraph grid(rg);
  detail::AStarRouter router(grid, {});
  util::Rng rng(bench_common::kSeed);
  // Clutter: foreign horizontal wires on layers 1/3 and vertical on 2, so
  // searches detour and expand realistically instead of walking straight.
  for (int i = 0; i < 400; ++i) {
    const auto x = static_cast<geom::Coord>(rng.uniform_int(0, kSize - 40));
    const auto y = static_cast<geom::Coord>(rng.uniform_int(0, kSize - 40));
    const auto len = static_cast<geom::Coord>(rng.uniform_int(8, 32));
    const netlist::NetId net = 10000 + i;
    if (i % 3 == 1) {
      for (geom::Coord d = 0; d <= len; ++d) grid.claim({x, y + d, 2}, net);
    } else {
      const geom::LayerId l = i % 3 == 0 ? 1 : 3;
      for (geom::Coord d = 0; d <= len; ++d) grid.claim({x + d, y, l}, net);
    }
  }
  KernelStats stats;
  const std::int64_t before = router.nodes_expanded();
  util::Timer timer;
  for (int i = 0; i < 200; ++i) {
    const auto ax = static_cast<geom::Coord>(rng.uniform_int(2, kSize - 3));
    const auto ay = static_cast<geom::Coord>(rng.uniform_int(2, kSize - 3));
    const auto bx = static_cast<geom::Coord>(rng.uniform_int(2, kSize - 3));
    const auto by = static_cast<geom::Coord>(rng.uniform_int(2, kSize - 3));
    const geom::Rect box =
        geom::Rect::bounding({ax, ay}, {bx, by}).inflated(8).intersect(
            rg.extent());
    if (router.route(static_cast<netlist::NetId>(i), {ax, ay}, {bx, by}, box))
      ++stats.routed;
  }
  stats.seconds = timer.seconds();
  stats.expansions = router.nodes_expanded() - before;
  return stats;
}

void BM_AStarKernel(benchmark::State& state) {
  std::int64_t expansions = 0;
  for (auto _ : state) {
    const KernelStats stats = run_astar_kernel_workload();
    expansions += stats.expansions;
    benchmark::DoNotOptimize(stats.routed);
  }
  // items/sec == expanded nodes per second: the kernel's true unit of work.
  state.SetItemsProcessed(expansions);
}
BENCHMARK(BM_AStarKernel);

void BM_AStarRoute(benchmark::State& state) {
  const auto span = static_cast<geom::Coord>(state.range(0));
  grid::RoutingGrid rg(span + 20, span + 20, 3, 30,
                       grid::StitchPlan(span + 20, 15));
  detail::GridGraph grid(rg);
  detail::AStarRouter router(grid, {});
  netlist::NetId net = 0;
  for (auto _ : state) {
    const geom::Coord y = (net * 7) % (span + 10);
    benchmark::DoNotOptimize(
        router.route(net, {2, y}, {span, (y + span / 2) % (span + 10)},
                     rg.extent()));
    ++net;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AStarRoute)->Arg(40)->Arg(120)->Arg(300);

/// The pre-kernel global search, kept verbatim as the BM_GlobalSearch
/// speedup baseline: per-call dist/parent vectors sized to the region, a
/// std::priority_queue open list, psi recomputed with exp2 at every
/// relaxation, and no pattern fast path.
double legacy_psi(int demand, int capacity) {
  if (capacity <= 0) return demand > 0 ? 1e9 : 0.0;
  return std::exp2(static_cast<double>(demand) / capacity) - 1.0;
}

struct LegacyHeapEntry {
  double f;
  double g;
  int state;
  friend bool operator>(const LegacyHeapEntry& a, const LegacyHeapEntry& b) {
    return a.f > b.f;
  }
};

std::vector<grid::GCellId> legacy_global_search(
    const global::RoutingGraph& graph, const global::GlobalSearchParams& params,
    grid::GCellId from, grid::GCellId to, const geom::Rect& region,
    std::int64_t* pops) {
  constexpr int kDirStart = 0;
  constexpr int kDirH = 1;
  constexpr int kDirV = 2;
  using HeapEntry = LegacyHeapEntry;
  if (from == to) return {from};
  const int w = region.width();
  const auto in_region = [&](int tx, int ty) {
    return tx >= region.xlo && tx <= region.xhi && ty >= region.ylo &&
           ty <= region.yhi;
  };
  const auto state_of = [&](int tx, int ty, int dir) {
    return ((ty - region.ylo) * w + (tx - region.xlo)) * 3 + dir;
  };
  const std::size_t num_states =
      static_cast<std::size_t>(w) * region.height() * 3;
  std::vector<double> dist(num_states, std::numeric_limits<double>::infinity());
  std::vector<int> parent(num_states, -1);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  const auto heuristic = [&](int tx, int ty) {
    return static_cast<double>(std::abs(tx - to.tx) + std::abs(ty - to.ty));
  };
  const int start = state_of(from.tx, from.ty, kDirStart);
  dist[static_cast<std::size_t>(start)] = 0.0;
  heap.push({heuristic(from.tx, from.ty), 0.0, start});
  static constexpr int kDx[4] = {1, -1, 0, 0};
  static constexpr int kDy[4] = {0, 0, 1, -1};
  int goal_state = -1;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    ++*pops;
    if (top.g > dist[static_cast<std::size_t>(top.state)]) continue;
    const int cell = top.state / 3;
    const int dir = top.state % 3;
    const int tx = region.xlo + cell % w;
    const int ty = region.ylo + cell / w;
    if (tx == to.tx && ty == to.ty) {
      goal_state = top.state;
      break;
    }
    for (int m = 0; m < 4; ++m) {
      const int nx = tx + kDx[m];
      const int ny = ty + kDy[m];
      if (!in_region(nx, ny)) continue;
      const bool horizontal = m < 2;
      double step = 1.0;
      if (horizontal)
        step += legacy_psi(graph.h_demand(std::min(tx, nx), ty) + 1,
                           graph.h_capacity(std::min(tx, nx), ty));
      else
        step += legacy_psi(graph.v_demand(tx, std::min(ty, ny)) + 1,
                           graph.v_capacity(tx, std::min(ty, ny)));
      if (dir != kDirStart && ((dir == kDirH) != horizontal))
        step += params.turn_cost;
      if (params.vertex_cost) {
        if (!horizontal && dir != kDirV)
          step += params.vertex_weight *
                  legacy_psi(graph.vertex_demand(tx, ty) + 1,
                             graph.vertex_capacity(tx, ty));
        if (horizontal && dir == kDirV)
          step += params.vertex_weight *
                  legacy_psi(graph.vertex_demand(tx, ty) + 1,
                             graph.vertex_capacity(tx, ty));
        if (!horizontal && nx == to.tx && ny == to.ty)
          step += params.vertex_weight *
                  legacy_psi(graph.vertex_demand(nx, ny) + 1,
                             graph.vertex_capacity(nx, ny));
      }
      const int next = state_of(nx, ny, horizontal ? kDirH : kDirV);
      const double ng = top.g + step;
      if (ng < dist[static_cast<std::size_t>(next)]) {
        dist[static_cast<std::size_t>(next)] = ng;
        parent[static_cast<std::size_t>(next)] = top.state;
        heap.push({ng + heuristic(nx, ny), ng, next});
      }
    }
  }
  if (goal_state < 0) return {};
  std::vector<grid::GCellId> tiles;
  for (int s = goal_state; s != -1; s = parent[static_cast<std::size_t>(s)]) {
    const int cell = s / 3;
    const grid::GCellId id{region.xlo + cell % w, region.ylo + cell / w};
    if (tiles.empty() || !(tiles.back() == id)) tiles.push_back(id);
  }
  std::reverse(tiles.begin(), tiles.end());
  return tiles;
}

/// Fixed seeded global-search workload: a 96x96 GCell graph cluttered with
/// deterministic demand stripes, then 400 region-confined searches between
/// random tile pairs — the endpoint sequence is identical for both kernels,
/// so fast vs. legacy time the same set of searches. Backs BM_GlobalSearch,
/// BM_GlobalSearchLegacy, and the mebl.bench_report "global_kernel" row
/// (whose speedup field is the ISSUE's >= 2x acceptance gate).
struct GlobalKernelStats {
  std::int64_t routed = 0;
  std::int64_t pops = 0;
  std::int64_t pattern_hits = 0;
  double seconds = 0.0;
};

GlobalKernelStats run_global_search_workload(bool fast_kernel) {
  constexpr int kTiles = 96;
  constexpr geom::Coord kTileSize = 30;
  constexpr geom::Coord kSpan = kTiles * kTileSize;
  const grid::RoutingGrid rg(kSpan, kSpan, 3, kTileSize,
                             grid::StitchPlan(kSpan, 7 * kTileSize));
  global::RoutingGraph graph(rg, true);
  util::Rng rng(bench_common::kSeed);
  // Clutter: deterministic demand stripes so searches price real congestion
  // detours instead of walking an empty graph. Densities are tuned so the
  // pattern fast path hits at roughly the rate the table-IV circuits show
  // (~2/3 of searches), keeping the fast/legacy ratio representative.
  for (int i = 0; i < 1000; ++i) {
    const int tx = static_cast<int>(rng.uniform_int(0, kTiles - 2));
    const int ty = static_cast<int>(rng.uniform_int(0, kTiles - 2));
    const int len = static_cast<int>(rng.uniform_int(2, 12));
    if (i % 2 == 0) {
      for (int d = 0; d < len && tx + d < kTiles - 1; ++d)
        graph.add_h_demand(tx + d, ty, 1);
    } else {
      for (int d = 0; d < len && ty + d < kTiles - 1; ++d)
        graph.add_v_demand(tx, ty + d, 1);
    }
    if (i % 6 == 0) graph.add_vertex_demand(tx, ty, 1);
  }
  // Both table-IV cost configurations, alternated per search the way the
  // ablation bench runs them: with line-end (vertex) pricing and without.
  const global::GlobalSearchParams with_vertex{0.5, true, 8.0};
  const global::GlobalSearchParams without_vertex{0.5, false, 8.0};
  const geom::Rect full{0, 0, kTiles - 1, kTiles - 1};
  global::GlobalSearchScratch scratch;
  GlobalKernelStats stats;
  util::Timer timer;
  const auto clamp_tile = [](int t) {
    return std::min(std::max(t, 0), kTiles - 1);
  };
  for (int i = 0; i < 2000; ++i) {
    // Subnet spans mirror a decomposed netlist's: mostly a few tiles
    // (where the pattern fast path earns its keep), with a longer span
    // every 16th search to keep the A* fallback honest.
    const int reach = i % 16 == 0 ? 20 : 5;
    const grid::GCellId a{static_cast<int>(rng.uniform_int(0, kTiles - 1)),
                          static_cast<int>(rng.uniform_int(0, kTiles - 1))};
    const grid::GCellId b{
        clamp_tile(a.tx + static_cast<int>(rng.uniform_int(-reach, reach))),
        clamp_tile(a.ty + static_cast<int>(rng.uniform_int(-reach, reach)))};
    const global::GlobalSearchParams& params =
        i % 2 == 0 ? with_vertex : without_vertex;
    const geom::Rect region =
        geom::Rect::bounding({a.tx, a.ty}, {b.tx, b.ty}).inflated(8).intersect(
            full);
    if (fast_kernel) {
      if (global::try_pattern_route(graph, params, a, b, scratch.path)) {
        ++stats.pattern_hits;
        ++stats.routed;
        continue;
      }
      if (global::search_tiles_astar(graph, params, a, b, region, scratch))
        ++stats.routed;
      stats.pops += scratch.last_pops;
    } else {
      if (!legacy_global_search(graph, params, a, b, region, &stats.pops)
               .empty())
        ++stats.routed;
    }
  }
  stats.seconds = timer.seconds();
  return stats;
}

void BM_GlobalSearch(benchmark::State& state) {
  std::int64_t routed = 0;
  for (auto _ : state) {
    const GlobalKernelStats stats = run_global_search_workload(true);
    routed += stats.routed;
    benchmark::DoNotOptimize(stats.pops);
  }
  // items/sec == completed searches per second, commensurable with the
  // legacy baseline below (same endpoint sequence).
  state.SetItemsProcessed(routed);
}
BENCHMARK(BM_GlobalSearch);

void BM_GlobalSearchLegacy(benchmark::State& state) {
  std::int64_t routed = 0;
  for (auto _ : state) {
    const GlobalKernelStats stats = run_global_search_workload(false);
    routed += stats.routed;
    benchmark::DoNotOptimize(stats.pops);
  }
  state.SetItemsProcessed(routed);
}
BENCHMARK(BM_GlobalSearchLegacy);

void BM_GlobalRoutePass(benchmark::State& state) {
  const auto* spec = bench_suite::find_spec("S5378");
  const auto circuit = bench_common::generate(*spec);
  const auto subnets = netlist::decompose_all(circuit.netlist);
  global::GlobalRouterConfig config;
  config.net_batch_size = 32;  // the pipeline's parallel batching default
  for (auto _ : state) {
    global::GlobalRouter router(circuit.grid, config);
    const auto result = router.route(subnets);
    benchmark::DoNotOptimize(result.wirelength);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(subnets.size()));
}
BENCHMARK(BM_GlobalRoutePass);

void BM_IntervalKColoring(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<graph::WeightedInterval> intervals;
  for (int i = 0; i < state.range(0); ++i) {
    const auto lo = static_cast<geom::Coord>(rng.uniform_int(0, 200));
    intervals.push_back(
        {{lo, lo + static_cast<geom::Coord>(rng.uniform_int(1, 40))},
         static_cast<double>(rng.uniform_int(1, 100))});
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::max_weight_k_colorable_subset(intervals, 3));
}
BENCHMARK(BM_IntervalKColoring)->Arg(32)->Arg(128)->Arg(512);

void BM_HungarianMatching(benchmark::State& state) {
  util::Rng rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost)
    for (auto& c : row) c = static_cast<double>(rng.uniform_int(0, 1000));
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::min_weight_perfect_matching(cost));
}
BENCHMARK(BM_HungarianMatching)->Arg(8)->Arg(32)->Arg(128);

void BM_LayerAssignMst(benchmark::State& state) {
  util::Rng rng(3);
  bench_suite::LayerInstanceConfig config;
  config.segments = static_cast<int>(state.range(0));
  const auto segments = bench_suite::generate_layer_instance(config, rng);
  const auto graph = assign::build_conflict_graph(segments, true);
  for (auto _ : state)
    benchmark::DoNotOptimize(assign::assign_layers_mst(graph, 3));
}
BENCHMARK(BM_LayerAssignMst)->Arg(44)->Arg(128);

void BM_LayerAssignOurs(benchmark::State& state) {
  util::Rng rng(3);
  bench_suite::LayerInstanceConfig config;
  config.segments = static_cast<int>(state.range(0));
  const auto segments = bench_suite::generate_layer_instance(config, rng);
  const auto graph = assign::build_conflict_graph(segments, true);
  for (auto _ : state)
    benchmark::DoNotOptimize(assign::assign_layers_ours(graph, 3));
}
BENCHMARK(BM_LayerAssignOurs)->Arg(44)->Arg(128);

void BM_TrackAssignGraph(benchmark::State& state) {
  const grid::StitchPlan stitch(150, 15, 1);
  util::Rng rng(4);
  assign::TrackAssignInstance instance;
  instance.x_span = {30, 59};
  instance.stitch = &stitch;
  for (int i = 0; i < state.range(0); ++i) {
    const auto lo = static_cast<geom::Coord>(rng.uniform_int(0, 10));
    instance.segments.push_back(
        {static_cast<std::size_t>(i),
         {lo, lo + static_cast<geom::Coord>(rng.uniform_int(0, 6))},
         static_cast<int>(rng.uniform_int(-1, 1)),
         static_cast<int>(rng.uniform_int(-1, 1)),
         static_cast<netlist::NetId>(i)});
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(assign::track_assign_graph(instance));
}
BENCHMARK(BM_TrackAssignGraph)->Arg(8)->Arg(20);

void BM_TrackAssignIlp(benchmark::State& state) {
  const grid::StitchPlan stitch(150, 15, 1);
  util::Rng rng(4);
  assign::TrackAssignInstance instance;
  instance.x_span = {30, 44};
  instance.stitch = &stitch;
  for (int i = 0; i < state.range(0); ++i) {
    const auto lo = static_cast<geom::Coord>(rng.uniform_int(0, 4));
    instance.segments.push_back(
        {static_cast<std::size_t>(i),
         {lo, lo + static_cast<geom::Coord>(rng.uniform_int(0, 4))},
         static_cast<int>(rng.uniform_int(-1, 1)),
         static_cast<int>(rng.uniform_int(-1, 1)),
         static_cast<netlist::NetId>(i)});
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(assign::track_assign_ilp(instance));
}
BENCHMARK(BM_TrackAssignIlp)->Arg(3)->Arg(5);

/// Fixed S5378 assignment-stage workload shared by BM_LayerAssign /
/// BM_TrackAssign and their mebl.bench_report rows: one global route + run
/// extraction up front, then the assign::Stage API over a fresh copy of the
/// plan per measurement (the stages annotate runs in place).
struct AssignWorkload {
  bench_suite::GeneratedCircuit circuit;
  assign::RoutePlan plan;          ///< extracted, layers unassigned
  assign::RoutePlan layered_plan;  ///< after LayerAssignStage
};

AssignWorkload make_assign_workload() {
  const auto* spec = bench_suite::find_spec("S5378");
  AssignWorkload w{bench_common::generate(*spec), {}, {}};
  const auto subnets = netlist::decompose_all(w.circuit.netlist);
  global::GlobalRouter router(w.circuit.grid, {});
  const auto global_result = router.route(subnets);
  w.plan = assign::extract_runs(global_result, w.circuit.grid);
  w.layered_plan = w.plan;
  exec::ThreadPool pool(g_threads);
  assign::LayerAssignStage(assign::StageConfig{})
      .run(w.layered_plan, w.circuit.grid, pool);
  return w;
}

void BM_LayerAssign(benchmark::State& state) {
  const AssignWorkload w = make_assign_workload();
  exec::ThreadPool pool(g_threads);
  assign::LayerAssignStage stage{assign::StageConfig{}};
  std::int64_t panels = 0;
  for (auto _ : state) {
    assign::RoutePlan plan = w.plan;
    const auto stats = stage.run(plan, w.circuit.grid, pool);
    panels += stats.panels;
    benchmark::DoNotOptimize(plan.runs.data());
  }
  state.SetItemsProcessed(panels);
}
BENCHMARK(BM_LayerAssign);

void BM_TrackAssign(benchmark::State& state) {
  const AssignWorkload w = make_assign_workload();
  exec::ThreadPool pool(g_threads);
  assign::TrackAssignStage stage{assign::StageConfig{}};
  std::int64_t panels = 0;
  for (auto _ : state) {
    assign::RoutePlan plan = w.layered_plan;
    const auto stats = stage.run(plan, w.circuit.grid, pool);
    panels += stats.panels;
    benchmark::DoNotOptimize(plan.runs.data());
  }
  state.SetItemsProcessed(panels);
}
BENCHMARK(BM_TrackAssign);

/// Fixed seeded ILP solve sequence — the warm sweep's random panel family —
/// solved through the seed path (sequential DFS, cold start) or the
/// overhauled ilp::Solver path (split fan-out + graph-heuristic warm
/// start). Both see the same instances and the same node cap, so the
/// seconds are commensurable; on a single core the speedup measures the
/// warm-start pruning, not parallelism. Backs BM_IlpSolver,
/// BM_IlpSolverSeedPath and the mebl.bench_report "ilp_solver" row.
struct IlpSolverStats {
  std::int64_t nodes = 0;
  int optimal = 0;
  double seconds = 0.0;
};

IlpSolverStats run_ilp_solver_workload(bool overhauled) {
  const grid::StitchPlan stitch(90, 15, 1);
  util::Rng rng(bench_common::kSeed);
  std::vector<assign::TrackAssignInstance> instances(12);
  for (auto& instance : instances) {
    instance.x_span = {30, 44};
    instance.stitch = &stitch;
    const int n = static_cast<int>(rng.uniform_int(4, 8));
    for (int i = 0; i < n; ++i) {
      const auto lo = static_cast<geom::Coord>(rng.uniform_int(0, 5));
      instance.segments.push_back(
          {static_cast<std::size_t>(i),
           {lo, lo + static_cast<geom::Coord>(rng.uniform_int(0, 3))},
           static_cast<int>(rng.uniform_int(-1, 1)),
           static_cast<int>(rng.uniform_int(-1, 1)),
           static_cast<netlist::NetId>(i)});
    }
  }
  assign::IlpTrackOptions options;
  options.max_nodes = 500'000;
  if (overhauled)
    options.warm_start = true;  // split fan-out is the solver default
  else
    options.split_target = 1;  // the seed solver, node for node
  IlpSolverStats stats;
  util::Timer timer;
  for (const auto& instance : instances) {
    const auto result = assign::track_assign_ilp(instance, options);
    stats.nodes += result.ilp_nodes;
    if (result.optimal) ++stats.optimal;
  }
  stats.seconds = timer.seconds();
  return stats;
}

void BM_IlpSolver(benchmark::State& state) {
  std::int64_t nodes = 0;
  for (auto _ : state) {
    const IlpSolverStats stats = run_ilp_solver_workload(true);
    nodes += stats.nodes;
    benchmark::DoNotOptimize(stats.optimal);
  }
  state.SetItemsProcessed(nodes);
}
BENCHMARK(BM_IlpSolver);

void BM_IlpSolverSeedPath(benchmark::State& state) {
  std::int64_t nodes = 0;
  for (auto _ : state) {
    const IlpSolverStats stats = run_ilp_solver_workload(false);
    nodes += stats.nodes;
    benchmark::DoNotOptimize(stats.optimal);
  }
  state.SetItemsProcessed(nodes);
}
BENCHMARK(BM_IlpSolverSeedPath);

void BM_ExecParallelFor(benchmark::State& state) {
  exec::ThreadPool pool(g_threads);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n);
  for (auto _ : state) {
    pool.parallel_for(0, n, [&](std::size_t i) {
      double acc = static_cast<double>(i);
      for (int it = 0; it < 200; ++it) acc = acc * 1.0000001 + 0.5;
      out[i] = acc;
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExecParallelFor)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

// BENCHMARK_MAIN rejects unknown flags, so peel off --threads (and the
// ReportScope's --json, which it consumed already but benchmark would
// reject) by hand before handing the rest to the benchmark library.
int main(int argc, char** argv) {
  mebl::bench_common::ReportScope report_scope("micro_algorithms", argc, argv);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = std::atoi(argv[++i]);
      continue;
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();

  // A* kernel row for the regression-gate artifact: expansions/sec on the
  // fixed seeded workload (median of three runs' rates would be noisy to
  // diff, so the row records the raw totals plus the derived rate).
  if (report_scope.enabled()) {
    const KernelStats stats = run_astar_kernel_workload();
    report_scope.add(
        "synthetic320", "astar_kernel",
        mebl::report::Json::Object{
            {"expansions", stats.expansions},
            {"routed", stats.routed},
            {"seconds", stats.seconds},
            {"expansions_per_sec",
             stats.seconds > 0.0
                 ? static_cast<double>(stats.expansions) / stats.seconds
                 : 0.0},
        });

    // Global-routing kernel row: fast (pattern + scratch A*) vs. legacy
    // (per-call allocation, exp2 per relaxation) on the identical seeded
    // search sequence. The speedup field is the regression gate for the
    // kernel overhaul.
    const GlobalKernelStats fast = run_global_search_workload(true);
    const GlobalKernelStats legacy = run_global_search_workload(false);
    report_scope.add(
        "synthetic96", "global_kernel",
        mebl::report::Json::Object{
            {"searches", fast.routed},
            {"pattern_hits", fast.pattern_hits},
            {"pops", fast.pops},
            {"legacy_pops", legacy.pops},
            {"seconds", fast.seconds},
            {"legacy_seconds", legacy.seconds},
            {"speedup",
             fast.seconds > 0.0 ? legacy.seconds / fast.seconds : 0.0},
        });

    // Global route-pass row: one full batch-synchronous GlobalRouter::route
    // (search + commit + dirty-set rip-up) on a table-IV-sized circuit.
    {
      const auto* spec = mebl::bench_suite::find_spec("S5378");
      const auto circuit = mebl::bench_common::generate(*spec);
      const auto subnets = mebl::netlist::decompose_all(circuit.netlist);
      mebl::global::GlobalRouterConfig config;
      config.net_batch_size = 32;
      mebl::util::Timer timer;
      mebl::global::GlobalRouter router(circuit.grid, config);
      const auto result = router.route(subnets);
      const double seconds = timer.seconds();
      report_scope.add(
          "S5378", "global_route_pass",
          mebl::report::Json::Object{
              {"subnets", static_cast<std::int64_t>(subnets.size())},
              {"wirelength", result.wirelength},
              {"total_vertex_overflow", result.total_vertex_overflow},
              {"total_edge_overflow", result.total_edge_overflow},
              {"seconds", seconds},
          });
    }

    // Assignment-stage rows: the Stage API on S5378's extracted plan, one
    // timed pass per stage on the report pool. Panel counts and bad-end /
    // rip-up totals are deterministic; the seconds field is what the
    // regression diff watches.
    {
      const AssignWorkload w = make_assign_workload();
      mebl::exec::ThreadPool pool(g_threads);
      {
        mebl::assign::RoutePlan plan = w.plan;
        mebl::assign::LayerAssignStage stage{mebl::assign::StageConfig{}};
        mebl::util::Timer timer;
        const auto stats = stage.run(plan, w.circuit.grid, pool);
        std::int64_t assigned = 0;
        for (const auto& run : plan.runs)
          if (run.layer >= 0) ++assigned;
        report_scope.add(
            "S5378", "layer_assign",
            mebl::report::Json::Object{
                {"panels", static_cast<std::int64_t>(stats.panels)},
                {"runs", static_cast<std::int64_t>(plan.runs.size())},
                {"assigned", assigned},
                {"seconds", timer.seconds()},
            });
      }
      {
        mebl::assign::RoutePlan plan = w.layered_plan;
        mebl::assign::TrackAssignStage stage{mebl::assign::StageConfig{}};
        mebl::util::Timer timer;
        const auto stats = stage.run(plan, w.circuit.grid, pool);
        std::int64_t bad_ends = 0, ripped = 0;
        for (const auto& run : plan.runs) {
          bad_ends += run.bad_ends;
          ripped += run.ripped ? 1 : 0;
        }
        report_scope.add(
            "S5378", "track_assign",
            mebl::report::Json::Object{
                {"panels", static_cast<std::int64_t>(stats.panels)},
                {"bad_ends", bad_ends},
                {"ripped", ripped},
                {"seconds", timer.seconds()},
            });
      }
    }

    // ILP solver row: the overhauled Solver path (warm start + split
    // fan-out) vs. the seed sequential DFS on the identical instance
    // sequence. The speedup field is the regression gate for the
    // assignment-stage kernel overhaul.
    {
      const IlpSolverStats overhauled = run_ilp_solver_workload(true);
      const IlpSolverStats seed = run_ilp_solver_workload(false);
      report_scope.add(
          "synthetic_panels", "ilp_solver",
          mebl::report::Json::Object{
              {"nodes", overhauled.nodes},
              {"seed_nodes", seed.nodes},
              {"optimal", static_cast<std::int64_t>(overhauled.optimal)},
              {"seconds", overhauled.seconds},
              {"seed_seconds", seed.seconds},
              {"speedup", overhauled.seconds > 0.0
                              ? seed.seconds / overhauled.seconds
                              : 0.0},
          });
    }
  }
  benchmark::Shutdown();
  return 0;
}
