// Google-benchmark microbenchmarks of the core algorithmic substrates:
// A* detailed search, min-cost flow (Carlisle-Lloyd), Hungarian matching,
// layer-assignment heuristics, and the graph-based track assigner.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "assign/layer_assign.hpp"
#include "assign/track_assign.hpp"
#include "bench_common.hpp"
#include "bench_suite/layer_instance_generator.hpp"
#include "detail/astar.hpp"
#include "exec/thread_pool.hpp"
#include "graph/bipartite_matching.hpp"
#include "graph/interval_k_coloring.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace mebl;

// Worker count for the exec-pool benchmarks, set by --threads (0 = one
// worker per hardware thread).
int g_threads = 0;

/// Fixed seeded A* kernel workload: a 320x320 3-layer grid cluttered with
/// deterministic foreign wires, then 200 bbox-confined searches. The same
/// workload backs the BM_AStarKernel benchmark and the mebl.bench_report
/// row, so the JSON artifact and the benchmark table measure one thing.
struct KernelStats {
  std::int64_t expansions = 0;
  std::int64_t routed = 0;
  double seconds = 0.0;
};

KernelStats run_astar_kernel_workload() {
  constexpr geom::Coord kSize = 320;
  grid::RoutingGrid rg(kSize, kSize, 3, 30, grid::StitchPlan(kSize, 15));
  detail::GridGraph grid(rg);
  detail::AStarRouter router(grid, {});
  util::Rng rng(bench_common::kSeed);
  // Clutter: foreign horizontal wires on layers 1/3 and vertical on 2, so
  // searches detour and expand realistically instead of walking straight.
  for (int i = 0; i < 400; ++i) {
    const auto x = static_cast<geom::Coord>(rng.uniform_int(0, kSize - 40));
    const auto y = static_cast<geom::Coord>(rng.uniform_int(0, kSize - 40));
    const auto len = static_cast<geom::Coord>(rng.uniform_int(8, 32));
    const netlist::NetId net = 10000 + i;
    if (i % 3 == 1) {
      for (geom::Coord d = 0; d <= len; ++d) grid.claim({x, y + d, 2}, net);
    } else {
      const geom::LayerId l = i % 3 == 0 ? 1 : 3;
      for (geom::Coord d = 0; d <= len; ++d) grid.claim({x + d, y, l}, net);
    }
  }
  KernelStats stats;
  const std::int64_t before = router.nodes_expanded();
  util::Timer timer;
  for (int i = 0; i < 200; ++i) {
    const auto ax = static_cast<geom::Coord>(rng.uniform_int(2, kSize - 3));
    const auto ay = static_cast<geom::Coord>(rng.uniform_int(2, kSize - 3));
    const auto bx = static_cast<geom::Coord>(rng.uniform_int(2, kSize - 3));
    const auto by = static_cast<geom::Coord>(rng.uniform_int(2, kSize - 3));
    const geom::Rect box =
        geom::Rect::bounding({ax, ay}, {bx, by}).inflated(8).intersect(
            rg.extent());
    if (router.route(static_cast<netlist::NetId>(i), {ax, ay}, {bx, by}, box))
      ++stats.routed;
  }
  stats.seconds = timer.seconds();
  stats.expansions = router.nodes_expanded() - before;
  return stats;
}

void BM_AStarKernel(benchmark::State& state) {
  std::int64_t expansions = 0;
  for (auto _ : state) {
    const KernelStats stats = run_astar_kernel_workload();
    expansions += stats.expansions;
    benchmark::DoNotOptimize(stats.routed);
  }
  // items/sec == expanded nodes per second: the kernel's true unit of work.
  state.SetItemsProcessed(expansions);
}
BENCHMARK(BM_AStarKernel);

void BM_AStarRoute(benchmark::State& state) {
  const auto span = static_cast<geom::Coord>(state.range(0));
  grid::RoutingGrid rg(span + 20, span + 20, 3, 30,
                       grid::StitchPlan(span + 20, 15));
  detail::GridGraph grid(rg);
  detail::AStarRouter router(grid, {});
  netlist::NetId net = 0;
  for (auto _ : state) {
    const geom::Coord y = (net * 7) % (span + 10);
    benchmark::DoNotOptimize(
        router.route(net, {2, y}, {span, (y + span / 2) % (span + 10)},
                     rg.extent()));
    ++net;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AStarRoute)->Arg(40)->Arg(120)->Arg(300);

void BM_IntervalKColoring(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<graph::WeightedInterval> intervals;
  for (int i = 0; i < state.range(0); ++i) {
    const auto lo = static_cast<geom::Coord>(rng.uniform_int(0, 200));
    intervals.push_back(
        {{lo, lo + static_cast<geom::Coord>(rng.uniform_int(1, 40))},
         static_cast<double>(rng.uniform_int(1, 100))});
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::max_weight_k_colorable_subset(intervals, 3));
}
BENCHMARK(BM_IntervalKColoring)->Arg(32)->Arg(128)->Arg(512);

void BM_HungarianMatching(benchmark::State& state) {
  util::Rng rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost)
    for (auto& c : row) c = static_cast<double>(rng.uniform_int(0, 1000));
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::min_weight_perfect_matching(cost));
}
BENCHMARK(BM_HungarianMatching)->Arg(8)->Arg(32)->Arg(128);

void BM_LayerAssignMst(benchmark::State& state) {
  util::Rng rng(3);
  bench_suite::LayerInstanceConfig config;
  config.segments = static_cast<int>(state.range(0));
  const auto segments = bench_suite::generate_layer_instance(config, rng);
  const auto graph = assign::build_conflict_graph(segments, true);
  for (auto _ : state)
    benchmark::DoNotOptimize(assign::assign_layers_mst(graph, 3));
}
BENCHMARK(BM_LayerAssignMst)->Arg(44)->Arg(128);

void BM_LayerAssignOurs(benchmark::State& state) {
  util::Rng rng(3);
  bench_suite::LayerInstanceConfig config;
  config.segments = static_cast<int>(state.range(0));
  const auto segments = bench_suite::generate_layer_instance(config, rng);
  const auto graph = assign::build_conflict_graph(segments, true);
  for (auto _ : state)
    benchmark::DoNotOptimize(assign::assign_layers_ours(graph, 3));
}
BENCHMARK(BM_LayerAssignOurs)->Arg(44)->Arg(128);

void BM_TrackAssignGraph(benchmark::State& state) {
  const grid::StitchPlan stitch(150, 15, 1);
  util::Rng rng(4);
  assign::TrackAssignInstance instance;
  instance.x_span = {30, 59};
  instance.stitch = &stitch;
  for (int i = 0; i < state.range(0); ++i) {
    const auto lo = static_cast<geom::Coord>(rng.uniform_int(0, 10));
    instance.segments.push_back(
        {static_cast<std::size_t>(i),
         {lo, lo + static_cast<geom::Coord>(rng.uniform_int(0, 6))},
         static_cast<int>(rng.uniform_int(-1, 1)),
         static_cast<int>(rng.uniform_int(-1, 1)),
         static_cast<netlist::NetId>(i)});
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(assign::track_assign_graph(instance));
}
BENCHMARK(BM_TrackAssignGraph)->Arg(8)->Arg(20);

void BM_TrackAssignIlp(benchmark::State& state) {
  const grid::StitchPlan stitch(150, 15, 1);
  util::Rng rng(4);
  assign::TrackAssignInstance instance;
  instance.x_span = {30, 44};
  instance.stitch = &stitch;
  for (int i = 0; i < state.range(0); ++i) {
    const auto lo = static_cast<geom::Coord>(rng.uniform_int(0, 4));
    instance.segments.push_back(
        {static_cast<std::size_t>(i),
         {lo, lo + static_cast<geom::Coord>(rng.uniform_int(0, 4))},
         static_cast<int>(rng.uniform_int(-1, 1)),
         static_cast<int>(rng.uniform_int(-1, 1)),
         static_cast<netlist::NetId>(i)});
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(assign::track_assign_ilp(instance));
}
BENCHMARK(BM_TrackAssignIlp)->Arg(3)->Arg(5);

void BM_ExecParallelFor(benchmark::State& state) {
  exec::ThreadPool pool(g_threads);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n);
  for (auto _ : state) {
    pool.parallel_for(0, n, [&](std::size_t i) {
      double acc = static_cast<double>(i);
      for (int it = 0; it < 200; ++it) acc = acc * 1.0000001 + 0.5;
      out[i] = acc;
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExecParallelFor)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

// BENCHMARK_MAIN rejects unknown flags, so peel off --threads (and the
// ReportScope's --json, which it consumed already but benchmark would
// reject) by hand before handing the rest to the benchmark library.
int main(int argc, char** argv) {
  mebl::bench_common::ReportScope report_scope("micro_algorithms", argc, argv);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = std::atoi(argv[++i]);
      continue;
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();

  // A* kernel row for the regression-gate artifact: expansions/sec on the
  // fixed seeded workload (median of three runs' rates would be noisy to
  // diff, so the row records the raw totals plus the derived rate).
  if (report_scope.enabled()) {
    const KernelStats stats = run_astar_kernel_workload();
    report_scope.add(
        "synthetic320", "astar_kernel",
        mebl::report::Json::Object{
            {"expansions", stats.expansions},
            {"routed", stats.routed},
            {"seconds", stats.seconds},
            {"expansions_per_sec",
             stats.seconds > 0.0
                 ? static_cast<double>(stats.expansions) / stats.seconds
                 : 0.0},
        });
  }
  benchmark::Shutdown();
  return 0;
}
