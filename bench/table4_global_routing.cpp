// Reproduces Table IV: stitch-aware global routing with vs. without
// line-end (vertex) congestion consideration. Reports total/maximum vertex
// overflow, wirelength, and CPU per circuit.

#include <iostream>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "global/global_router.hpp"
#include "netlist/decompose.hpp"

int main(int argc, char** argv) {
  using namespace mebl;
  bench_common::TelemetryScope telemetry_scope(argc, argv);
  bench_common::ReportScope report_scope("table4_global_routing", argc, argv);
  bench_common::QuietLogs quiet;
  exec::ThreadPool pool(bench_common::threads_from_args(argc, argv));

  util::Table table("Circuit", "w/o TVOF", "w/o MVOF", "w/o WL", "w/o CPU(s)",
                    "w/ TVOF", "w/ MVOF", "w/ WL", "w/ CPU(s)");

  std::int64_t wo_tvof = 0, w_tvof = 0;
  std::int64_t wo_wl = 0, w_wl = 0;
  double wo_cpu = 0.0, w_cpu = 0.0;

  for (const auto& spec : bench_common::selected_specs()) {
    const auto circuit = bench_common::generate(spec);
    const auto subnets = netlist::decompose_all(circuit.netlist);

    global::GlobalRouterConfig without;
    without.vertex_cost = false;
    without.net_batch_size = 32;  // the pipeline's parallel batching default
    util::Timer timer;
    global::GlobalRouter router_wo(circuit.grid, without);
    const auto result_wo = router_wo.route(subnets, &pool);
    const double seconds_wo = timer.seconds();

    global::GlobalRouterConfig with;
    with.vertex_cost = true;
    with.net_batch_size = 32;
    timer.reset();
    global::GlobalRouter router_w(circuit.grid, with);
    const auto result_w = router_w.route(subnets, &pool);
    const double seconds_w = timer.seconds();

    const auto global_metrics = [](const global::GlobalResult& result,
                                   double seconds) {
      report::Json::Object metrics;
      metrics["total_vertex_overflow"] = result.total_vertex_overflow;
      metrics["max_vertex_overflow"] = result.max_vertex_overflow;
      metrics["total_edge_overflow"] = result.total_edge_overflow;
      metrics["wirelength"] = result.wirelength;
      metrics["seconds"] = seconds;
      return metrics;
    };
    report_scope.add(spec.name, "no-vertex-cost",
                     global_metrics(result_wo, seconds_wo));
    report_scope.add(spec.name, "vertex-cost",
                     global_metrics(result_w, seconds_w));

    table.add_row(spec.name, std::to_string(result_wo.total_vertex_overflow),
                  std::to_string(result_wo.max_vertex_overflow),
                  std::to_string(result_wo.wirelength),
                  util::Table::fixed(seconds_wo, 3),
                  std::to_string(result_w.total_vertex_overflow),
                  std::to_string(result_w.max_vertex_overflow),
                  std::to_string(result_w.wirelength),
                  util::Table::fixed(seconds_w, 3));

    wo_tvof += result_wo.total_vertex_overflow;
    w_tvof += result_w.total_vertex_overflow;
    wo_wl += result_wo.wirelength;
    w_wl += result_w.wirelength;
    wo_cpu += seconds_wo;
    w_cpu += seconds_w;
  }

  table.add_rule();
  table.add_row("Comp.", "1.000", "1.000", "1.000", "1.000",
                util::Table::fixed(wo_tvof > 0 ? static_cast<double>(w_tvof) /
                                                     static_cast<double>(wo_tvof)
                                               : 0.0,
                                   3),
                "-",
                util::Table::fixed(wo_wl > 0 ? static_cast<double>(w_wl) /
                                                   static_cast<double>(wo_wl)
                                             : 1.0,
                                   3),
                util::Table::fixed(wo_cpu > 0 ? w_cpu / wo_cpu : 1.0, 3));

  std::cout << table.str(
      "TABLE IV: global routing w/o vs. w/ line-end consideration")
            << "\nPaper shape: TVOF ratio ~0.001 (near-zero overflow), WL "
               "ratio ~1.015, CPU ratio ~1.007\n";
  return 0;
}
