// Reproduces the Fig. 3/4 mechanism quantitatively: rasterization (render +
// error-diffusion dithering) of a wire cut by a stripe boundary, sweeping
// the length of the piece left of the boundary. Short polygons suffer a far
// larger error-pixel ratio — the physical justification for the short
// polygon constraint.

#include <iostream>

#include "bench_common.hpp"
#include "raster/defect.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mebl;
  bench_common::ReportScope report_scope("fig4_raster_defects", argc, argv);

  util::Table table("Cut piece (px)", "Pattern px", "Error px",
                    "Error ratio (%)", "Kernel");
  for (const auto kernel : {raster::DitherKernel::kFloydSteinberg,
                            raster::DitherKernel::kRightDown}) {
    const char* name =
        kernel == raster::DitherKernel::kFloydSteinberg ? "Floyd-Steinberg"
                                                        : "Right+Down";
    const char* key =
        kernel == raster::DitherKernel::kFloydSteinberg ? "floyd-steinberg"
                                                        : "right-down";
    for (const int cut : {1, 2, 3, 5, 8, 12, 20, 32}) {
      const auto report = raster::short_polygon_experiment(
          cut, /*length_px=*/64, /*width_px=*/3, /*edge_bias=*/0.0, kernel);
      table.add_row(std::to_string(cut), std::to_string(report.pattern_pixels),
                    std::to_string(report.error_pixels),
                    util::Table::fixed(100.0 * report.error_ratio(), 1), name);
      report_scope.add(
          "cut=" + std::to_string(cut), key,
          {{"pattern_pixels", report::Json(report.pattern_pixels)},
           {"error_pixels", report::Json(report.error_pixels)},
           {"error_ratio", report::Json(report.error_ratio())}});
    }
    table.add_rule();
  }
  std::cout << table.str(
      "FIG. 4: rasterization defect ratio of the piece cut off by a stripe "
      "boundary")
            << "\nPaper shape: the error pixels account for a large share of "
               "a SHORT polygon's area and a negligible share of a long "
               "one's.\n";
  return 0;
}
