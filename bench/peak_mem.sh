#!/bin/sh
# Memory-curve harness for the full-scale bench row: run bench/full_scale
# under /usr/bin/time -v so the OS-observed maximum resident set is recorded
# next to the harness's own getrusage column, and merge it into the bench
# JSON as "external_peak_rss_kb" on every row. When /usr/bin/time is absent
# (minimal containers), the JSON keeps only the getrusage peak_rss_kb column
# the harness always writes — the curve is still tracked, just self-reported.
#
#   usage: bench/peak_mem.sh [BUILD_DIR] [OUT_JSON]
#          (defaults: build, bench JSON next to the baseline as
#           BENCH_full_scale.json in the working directory)
#
# Exit code: the harness's own.
set -eu

repo_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_dir/build"}
out_json=${2:-"BENCH_full_scale.json"}
harness="$build_dir/bench/full_scale"

if [ ! -x "$harness" ]; then
  echo "peak_mem: missing $harness (build the repo first)" >&2
  exit 2
fi

time_log=$(mktemp /tmp/peak_mem.XXXXXX.log)
trap 'rm -f "$time_log"' EXIT

status=0
if [ -x /usr/bin/time ] && /usr/bin/time -v true 2> /dev/null; then
  /usr/bin/time -v "$harness" --json "$out_json" 2> "$time_log" || status=$?
  # GNU time prints: "Maximum resident set size (kbytes): N"
  max_rss=$(sed -n 's/.*Maximum resident set size (kbytes): \([0-9][0-9]*\).*/\1/p' \
            "$time_log" | head -n 1)
  # time -v swallowed the harness's stderr; replay everything that is not
  # part of the time report so warnings stay visible.
  grep -v -e 'Command being timed' -e 'resident set size' -e 'wall clock' \
       -e '(kbytes)' -e 'Exit status' -e 'CPU this job got' -e 'swaps' \
       -e 'context switches' -e 'page faults' -e 'Signals delivered' \
       -e 'Socket messages' -e 'File system' -e 'Page size' \
       -e 'User time (seconds)' -e 'System time (seconds)' \
       "$time_log" >&2 || true
else
  "$harness" --json "$out_json" || status=$?
  max_rss=""
fi

if [ -n "${max_rss:-}" ] && [ -f "$out_json" ]; then
  # Merge the externally observed peak into every row's metrics object. The
  # writer emits "metrics": { ... } on nested lines; inject after each
  # opening brace of a metrics object. Pure-POSIX text edit, no JSON tool
  # needed: the writer's output shape is our own, stable format.
  tmp_json=$(mktemp /tmp/peak_mem.XXXXXX.json)
  awk -v rss="$max_rss" '
    {
      print
      if ($0 ~ /"metrics": \{$/)
        print "        \"external_peak_rss_kb\": " rss ","
    }
  ' "$out_json" > "$tmp_json" && mv "$tmp_json" "$out_json"
  echo "peak_mem: external max RSS ${max_rss} kB merged into $out_json" >&2
fi

exit "$status"
