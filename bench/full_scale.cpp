// Paper-scale global routing (DESIGN.md §15): generate a full-scale
// instance (~16k tracks wide for S38417 — the paper's physical die at a
// two-feature track pitch), route it with the tiled sparse grid plus the
// coarsen–route–refine multilevel pass, and record the memory curve
// (tiles materialized, resident bytes vs the dense estimate, peak RSS)
// alongside runtime and quality. A second row compares multilevel against
// the flat schedule on the same instance.
//
//   full_scale [--threads N] [--json FILE] [--trace FILE] [--stats FILE]
//
// MEBL_FULL_SCALE_CIRCUIT selects the spec (default S38417).

#include <sys/resource.h>

#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "global/global_router.hpp"
#include "netlist/decompose.hpp"
#include "telemetry/keys.hpp"

namespace {

/// Max resident set of this process so far, in kilobytes (getrusage;
/// /usr/bin/time -v reports the same number — bench/peak_mem.sh merges the
/// external measurement when available). -1 when unavailable.
long peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1;
  return usage.ru_maxrss;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mebl;
  bench_common::TelemetryScope telemetry_scope(argc, argv);
  bench_common::ReportScope report_scope("full_scale", argc, argv);
  bench_common::QuietLogs quiet;
  exec::ThreadPool pool(bench_common::threads_from_args(argc, argv));

  const char* circuit_name = std::getenv("MEBL_FULL_SCALE_CIRCUIT");
  const auto* spec =
      bench_suite::find_spec(circuit_name != nullptr ? circuit_name : "S38417");
  if (spec == nullptr) {
    std::cerr << "full_scale: unknown circuit\n";
    return 2;
  }

  const auto generator_config = bench_suite::GeneratorConfig::full_scale();
  const auto circuit =
      bench_suite::generate_circuit(*spec, generator_config, bench_common::kSeed);
  const auto subnets = netlist::decompose_all(circuit.netlist);

  global::GlobalRouterConfig ml_config;
  ml_config.net_batch_size = 32;  // the pipeline's parallel batching default
  ml_config.tiled_grid = true;
  ml_config.multilevel.enabled = true;

  util::Timer timer;
  global::GlobalRouter ml_router(circuit.grid, ml_config);
  const auto ml_result = ml_router.route(subnets, &pool);
  const double ml_seconds = timer.seconds();
  const long rss_kb = peak_rss_kb();

  const auto& graph = ml_router.graph();
  const auto tiles_total = graph.tiles_total();
  const auto tiles_materialized = graph.tiles_materialized();
  const double materialized_fraction =
      tiles_total > 0
          ? static_cast<double>(tiles_materialized) / static_cast<double>(tiles_total)
          : 0.0;
  const auto storage_bytes = graph.storage_bytes();
  const auto dense_bytes = global::RoutingGraph::dense_storage_bytes(
      graph.tiles_x(), graph.tiles_y());
  const double memory_fraction =
      dense_bytes > 0
          ? static_cast<double>(storage_bytes) / static_cast<double>(dense_bytes)
          : 0.0;
  const auto counter_value = [](const char* key) {
    return telemetry::counter(key).value();
  };
  const auto coarse_nets = counter_value(telemetry::keys::kMlCoarseNets);
  const auto corridor_hits = counter_value(telemetry::keys::kMlCorridorHits);
  const auto corridor_fallbacks =
      counter_value(telemetry::keys::kMlCorridorFallbacks);

  {
    report::Json::Object metrics;
    metrics["subnets"] = static_cast<std::int64_t>(subnets.size());
    metrics["wirelength"] = ml_result.wirelength;
    metrics["total_vertex_overflow"] = ml_result.total_vertex_overflow;
    metrics["max_vertex_overflow"] = ml_result.max_vertex_overflow;
    metrics["total_edge_overflow"] = ml_result.total_edge_overflow;
    metrics["seconds"] = ml_seconds;
    metrics["peak_rss_kb"] = static_cast<std::int64_t>(rss_kb);
    metrics["tiles_total"] = static_cast<std::int64_t>(tiles_total);
    metrics["tiles_materialized"] = static_cast<std::int64_t>(tiles_materialized);
    metrics["materialized_fraction"] = materialized_fraction;
    metrics["storage_bytes"] = static_cast<std::int64_t>(storage_bytes);
    metrics["dense_storage_bytes"] = static_cast<std::int64_t>(dense_bytes);
    metrics["memory_fraction"] = memory_fraction;
    metrics["coarse_nets"] = coarse_nets;
    metrics["corridor_hits"] = corridor_hits;
    metrics["corridor_fallbacks"] = corridor_fallbacks;
    report_scope.add(spec->name + "@full_scale", "global_route_pass",
                     std::move(metrics));
  }

  // Flat comparison: same instance, same tiled storage, multilevel off —
  // so the delta isolates the coarsen–route–refine schedule.
  global::GlobalRouterConfig flat_config = ml_config;
  flat_config.multilevel.enabled = false;
  timer.reset();
  global::GlobalRouter flat_router(circuit.grid, flat_config);
  const auto flat_result = flat_router.route(subnets, &pool);
  const double flat_seconds = timer.seconds();

  {
    report::Json::Object metrics;
    metrics["wirelength"] = ml_result.wirelength;
    metrics["flat_wirelength"] = flat_result.wirelength;
    metrics["total_vertex_overflow"] = ml_result.total_vertex_overflow;
    metrics["flat_total_vertex_overflow"] = flat_result.total_vertex_overflow;
    metrics["total_edge_overflow"] = ml_result.total_edge_overflow;
    metrics["flat_total_edge_overflow"] = flat_result.total_edge_overflow;
    metrics["seconds"] = ml_seconds;
    metrics["flat_seconds"] = flat_seconds;
    metrics["speedup"] = ml_seconds > 0.0 ? flat_seconds / ml_seconds : 0.0;
    metrics["coarse_nets"] = coarse_nets;
    metrics["corridor_hits"] = corridor_hits;
    metrics["corridor_fallbacks"] = corridor_fallbacks;
    report_scope.add("full_scale", "multilevel_vs_flat", std::move(metrics));
  }

  util::Table table("Circuit", "Tracks", "Subnets", "WL", "TVOF", "CPU(s)",
                    "RSS(MB)", "Tiles", "Materialized", "TileFrac", "MemFrac");
  table.add_row(
      spec->name + "@full_scale",
      std::to_string(circuit.grid.width()) + "x" +
          std::to_string(circuit.grid.height()),
      std::to_string(subnets.size()), std::to_string(ml_result.wirelength),
      std::to_string(ml_result.total_vertex_overflow),
      util::Table::fixed(ml_seconds, 2),
      std::to_string(rss_kb >= 0 ? rss_kb / 1024 : -1),
      std::to_string(tiles_total), std::to_string(tiles_materialized),
      util::Table::fixed(materialized_fraction, 4),
      util::Table::fixed(memory_fraction, 4));
  std::cout << table.str("Full-scale global routing (tiled + multilevel)")
            << "\nmultilevel " << util::Table::fixed(ml_seconds, 2)
            << " s vs flat " << util::Table::fixed(flat_seconds, 2)
            << " s (speedup "
            << util::Table::fixed(
                   ml_seconds > 0.0 ? flat_seconds / ml_seconds : 0.0, 2)
            << "x); coarse nets " << coarse_nets << ", corridor hits "
            << corridor_hits << ", fallbacks " << corridor_fallbacks << "\n";

  if (memory_fraction >= 0.25) {
    std::cerr << "full_scale: WARNING memory_fraction "
              << util::Table::fixed(memory_fraction, 4)
              << " >= 0.25 of the dense estimate\n";
  }
  return 0;
}
