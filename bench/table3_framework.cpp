// Reproduces Table III: the full stitch-aware routing framework vs. the
// baseline router (conventional objectives at every stage). Columns follow
// the paper: routability, via violations, short polygons, CPU seconds, plus
// the normalized comparison row.

#include <iostream>

#include "bench_common.hpp"
#include "core/stitch_router.hpp"

int main(int argc, char** argv) {
  using namespace mebl;
  bench_common::TelemetryScope telemetry_scope(argc, argv);
  bench_common::ReportScope report_scope("table3_framework", argc, argv);
  bench_common::QuietLogs quiet;
  const int threads = bench_common::threads_from_args(argc, argv);

  util::Table table("Circuit", "Base Rout.(%)", "Base #VV", "Base #SP",
                    "Base CPU(s)", "SA Rout.(%)", "SA #VV", "SA #SP",
                    "SA CPU(s)");

  double base_rout = 0.0, sa_rout = 0.0;
  std::int64_t base_sp = 0, sa_sp = 0;
  double base_cpu = 0.0, sa_cpu = 0.0;
  int circuits = 0;

  for (const auto& spec : bench_common::selected_specs(bench_common::SuiteWeight::kHeavy)) {
    const auto circuit = bench_common::generate(spec);

    util::Timer timer;
    core::StitchAwareRouter baseline(
        circuit.grid, circuit.netlist,
        core::RouterConfig::baseline().with_threads(threads));
    const auto base = baseline.run();
    const double base_seconds = timer.seconds();

    timer.reset();
    core::StitchAwareRouter aware(
        circuit.grid, circuit.netlist,
        core::RouterConfig::stitch_aware().with_threads(threads));
    const auto sa = aware.run();
    const double sa_seconds = timer.seconds();

    report_scope.add(spec.name, "baseline",
                     report::QualitySummary::from(base, base_seconds));
    report_scope.add(spec.name, "stitch-aware",
                     report::QualitySummary::from(sa, sa_seconds));

    table.add_row(spec.name, util::Table::fixed(base.metrics.routability_pct(), 2),
                  std::to_string(base.metrics.via_violations),
                  std::to_string(base.metrics.short_polygons),
                  util::Table::fixed(base_seconds, 1),
                  util::Table::fixed(sa.metrics.routability_pct(), 2),
                  std::to_string(sa.metrics.via_violations),
                  std::to_string(sa.metrics.short_polygons),
                  util::Table::fixed(sa_seconds, 1));

    base_rout += base.metrics.routability_pct();
    sa_rout += sa.metrics.routability_pct();
    base_sp += base.metrics.short_polygons;
    sa_sp += sa.metrics.short_polygons;
    base_cpu += base_seconds;
    sa_cpu += sa_seconds;
    ++circuits;
  }

  table.add_rule();
  table.add_row(
      "Comp.", "1.000", "-",
      "1.000", "1.0",
      util::Table::fixed(circuits > 0 ? sa_rout / base_rout : 1.0, 3), "-",
      util::Table::fixed(
          base_sp > 0 ? static_cast<double>(sa_sp) / static_cast<double>(base_sp)
                      : 0.0,
          3),
      util::Table::fixed(base_cpu > 0 ? sa_cpu / base_cpu : 1.0, 1));

  std::cout << table.str(
      "TABLE III: stitch-aware routing framework vs. baseline router")
            << "\nPaper shape: #SP ratio ~0.023, routability ratio ~1.011, "
               "CPU ratio ~1.1\n";
  return 0;
}
