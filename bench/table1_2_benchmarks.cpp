// Reproduces Tables I and II: benchmark circuit characteristics. The
// synthetic suites carry the paper's exact name / #layers / #nets / #pins
// columns; the Size column reports both the paper's micrometre extent and
// the generated track extent (our substitution, see DESIGN.md).

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

namespace {

void print_suite(const char* title, const char* variant,
                 const std::vector<mebl::bench_suite::BenchmarkSpec>& specs,
                 const mebl::bench_suite::GeneratorConfig& config,
                 mebl::bench_common::ReportScope& report_scope) {
  mebl::util::Table table("Circuit", "Size (um^2)", "Tracks", "#Layers",
                          "#Nets", "#Pins");
  for (const auto& spec : specs) {
    const auto circuit =
        mebl::bench_suite::generate_circuit(spec, config,
                                            mebl::bench_common::kSeed);
    char size[64];
    std::snprintf(size, sizeof size, "%.1fx%.1f", spec.um_width,
                  spec.um_height);
    char tracks[64];
    std::snprintf(tracks, sizeof tracks, "%dx%d", circuit.grid.width(),
                  circuit.grid.height());
    table.add_row(spec.name, size, tracks, spec.layers, spec.nets, spec.pins);

    mebl::report::Json::Object metrics;
    metrics["tracks_x"] = static_cast<std::int64_t>(circuit.grid.width());
    metrics["tracks_y"] = static_cast<std::int64_t>(circuit.grid.height());
    metrics["layers"] = spec.layers;
    metrics["nets"] = spec.nets;
    metrics["pins"] = spec.pins;
    report_scope.add(spec.name, variant, std::move(metrics));
  }
  std::cout << table.str(title) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  mebl::bench_common::TelemetryScope telemetry_scope(argc, argv);
  mebl::bench_common::ReportScope report_scope("table1_2_benchmarks", argc,
                                               argv);
  mebl::bench_common::QuietLogs quiet;
  print_suite("TABLE I: MCNC benchmark circuits", "mcnc",
              mebl::bench_suite::mcnc_suite(),
              mebl::bench_common::mcnc_config(), report_scope);
  print_suite("TABLE II: Faraday benchmark circuits", "faraday",
              mebl::bench_suite::faraday_suite(),
              mebl::bench_common::faraday_config(), report_scope);
  return 0;
}
