// Reproduces Figs. 15-16: route a full benchmark circuit with both routers
// and write SVG plots — the whole chip (Fig. 15) and a zoomed window around
// a stitching line where the dogleg-based short-polygon avoidance is
// visible (Fig. 16). Usage: route_and_plot [circuit-name] [output-dir]

#include <iostream>
#include <string>

#include "bench_suite/circuit_generator.hpp"
#include "core/stitch_router.hpp"
#include "eval/congestion.hpp"
#include "eval/svg_writer.hpp"

int main(int argc, char** argv) {
  using namespace mebl;
  const std::string name = argc > 1 ? argv[1] : "S5378";
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  const auto* spec = bench_suite::find_spec(name);
  if (spec == nullptr) {
    std::cerr << "unknown circuit '" << name << "'; use a Table I/II name\n";
    return 1;
  }
  const auto circuit = bench_suite::generate_circuit(*spec, {}, 20130602);
  std::cout << "routing " << spec->name << " (" << circuit.grid.width() << "x"
            << circuit.grid.height() << " tracks, " << spec->nets
            << " nets)...\n";

  for (const bool stitch_aware : {false, true}) {
    core::StitchAwareRouter router(circuit.grid, circuit.netlist,
                                   stitch_aware
                                       ? core::RouterConfig::stitch_aware()
                                       : core::RouterConfig::baseline());
    const auto result = router.run();
    const std::string tag = stitch_aware ? "stitch_aware" : "baseline";
    std::cout << "  [" << tag << "] routability "
              << result.metrics.routability_pct() << "%, #SP "
              << result.metrics.short_polygons << ", WL "
              << result.metrics.wirelength << "\n";

    // Fig. 15 analogue: the full routed chip.
    eval::SvgOptions full;
    full.pixels_per_track = 2.0;
    const std::string chip_path = out_dir + "/" + name + "_" + tag + ".svg";
    if (!eval::write_svg(*result.grid, chip_path, full)) {
      std::cerr << "cannot write " << chip_path << "\n";
      return 1;
    }

    // Fig. 16 analogue: zoom on the stitching line nearest the chip centre.
    const auto& lines = circuit.grid.stitch().lines();
    const geom::Coord line = lines[lines.size() / 2];
    eval::SvgOptions zoom;
    zoom.pixels_per_track = 12.0;
    zoom.window = geom::Rect{line - 12, circuit.grid.height() / 2 - 20,
                             line + 12, circuit.grid.height() / 2 + 20}
                      .intersect(circuit.grid.extent());
    const std::string zoom_path =
        out_dir + "/" + name + "_" + tag + "_zoom.svg";
    if (!eval::write_svg(*result.grid, zoom_path, zoom)) {
      std::cerr << "cannot write " << zoom_path << "\n";
      return 1;
    }

    // Congestion diagnosis: where the vertical (stitch-sensitive) resources
    // are being consumed.
    const auto congestion = eval::measure_congestion(*result.grid);
    std::cout << "  vertical congestion peak " << congestion.peak()
              << ", mean " << congestion.mean() << "\n";
    std::cout << eval::ascii_heatmap(congestion, /*vertical=*/true);
    std::cout << "  wrote " << chip_path << " and " << zoom_path << "\n";
  }
  return 0;
}
