// Reproduces Figs. 3-4 visually on the terminal: the MEBL data-preparation
// flow (rendering to gray levels, then error-diffusion dithering) applied to
// a wire cut by a stripe boundary. Shows why a short polygon with a landing
// via is dangerous: its few irregular boundary pixels are a large fraction
// of its area.

#include <iostream>

#include "raster/defect.hpp"

namespace {

using namespace mebl::raster;

void print_gray(const GrayBitmap& gray) {
  const char* shades = " .:-=+*#%@";
  for (int y = 0; y < gray.height(); ++y) {
    for (int x = 0; x < gray.width(); ++x) {
      const int level =
          std::min(9, static_cast<int>(gray.at(x, y) * 9.999));
      std::cout << shades[level];
    }
    std::cout << '\n';
  }
}

void print_binary(const BinaryBitmap& bitmap, int cut_x) {
  for (int y = 0; y < bitmap.height(); ++y) {
    for (int x = 0; x < bitmap.width(); ++x) {
      if (x == cut_x)
        std::cout << '|';  // the stitching (stripe) boundary
      std::cout << (bitmap.at(x, y) != 0 ? '#' : ' ');
    }
    std::cout << '\n';
  }
}

}  // namespace

int main() {
  // A 30x3-pixel wire whose horizontal edges fall mid-pixel (the gray rows
  // that make dithering produce irregular pixels, Fig. 3).
  const FeatureRect wire{2.0, 2.35, 32.0, 5.35};
  const int w = 36, h = 9;

  std::cout << "=== Fig. 3(a): rendered gray-level bitmap ===\n";
  const auto gray = render({wire}, w, h);
  print_gray(gray);

  std::cout << "\n=== Fig. 3(b): dithered exposure (error diffusion) ===\n";
  const auto exposed = dither(gray);
  print_binary(exposed, -1);

  std::cout << "\n=== Fig. 4: the same wire cut by a stripe boundary ===\n";
  for (const int cut : {2, 16}) {
    const auto report = short_polygon_experiment(cut, 30, 3);
    std::cout << "piece of length " << cut << " px: " << report.error_pixels
              << " error pixels over " << report.pattern_pixels
              << " pattern pixels -> error ratio "
              << 100.0 * report.error_ratio() << "%\n";
  }
  std::cout << "\nThe short piece's error ratio dwarfs the long piece's — "
               "this is the defect mechanism that motivates the short "
               "polygon constraint (Fig. 5(c)).\n";
  return 0;
}
