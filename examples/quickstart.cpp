// Quickstart: build a tiny netlist by hand, run the stitch-aware router,
// and inspect the result. This is the 30-second tour of the public API.

#include <iostream>

#include "core/stitch_router.hpp"

int main() {
  using namespace mebl;

  // 1. Describe the fabric: a 120x120-track layout, 3 routing layers (HVH),
  //    30-track GCells, stitching lines every 15 tracks (the paper's setup).
  grid::RoutingGrid fabric(120, 120, /*num_routing_layers=*/3,
                           /*tile_size=*/30, grid::StitchPlan(120, 15));

  // 2. Describe the nets. Pins live on the pin layer at track coordinates.
  netlist::Netlist netlist;
  const auto clk = netlist.add_net("clk");
  netlist.add_pin(clk, {5, 5});
  netlist.add_pin(clk, {100, 80});
  netlist.add_pin(clk, {40, 110});
  const auto data = netlist.add_net("data");
  netlist.add_pin(data, {10, 60});
  netlist.add_pin(data, {90, 20});
  const auto rst = netlist.add_net("rst");
  netlist.add_pin(rst, {70, 70});
  netlist.add_pin(rst, {16, 14});  // right next to a stitching line

  // 3. Route with the stitch-aware configuration (alpha=1, beta=10, gamma=5).
  core::StitchAwareRouter router(fabric, netlist,
                                 core::RouterConfig::stitch_aware());
  const auto result = router.run();

  // 4. Inspect the outcome.
  std::cout << "routability  : " << result.metrics.routability_pct() << "%\n"
            << "wirelength   : " << result.metrics.wirelength << " tracks\n"
            << "vias         : " << result.metrics.vias << "\n"
            << "short polygons (soft): " << result.metrics.short_polygons
            << "\n"
            << "via violations (pins on lines): "
            << result.metrics.via_violations << "\n"
            << "vertical-routing violations (must be 0): "
            << result.metrics.vertical_violations << "\n"
            << "stage times  : global " << result.times.global_seconds
            << "s, layer " << result.times.layer_seconds << "s, track "
            << result.times.track_seconds << "s, detail "
            << result.times.detail_seconds << "s\n";

  return result.metrics.vertical_violations == 0 ? 0 : 1;
}
