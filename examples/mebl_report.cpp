// Report inspection and regression gating over the JSON artifacts the
// routing pipeline emits (mebl_route_cli --report, bench --json):
//
//   mebl_report show  run.json                 # human summary
//   mebl_report check run.json                 # schema validation
//   mebl_report diff  baseline.json candidate.json [--threshold-file t.json]
//
// `diff` is the CI gate: exit 0 when the candidate is no worse than the
// baseline under the configured tolerances, 1 on a quality or latency
// regression, 2 on usage/IO errors, 3 when the documents are not
// comparable (different schema or version).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "report/diff.hpp"
#include "report/report.hpp"

namespace {

using namespace mebl::report;

void usage() {
  std::cout <<
      "usage: mebl_report <command> [args]\n"
      "  show  REPORT.json                  print a human-readable summary\n"
      "  check REPORT.json                  validate schema/version (exit 3\n"
      "                                     when unknown)\n"
      "  diff  BASELINE.json CANDIDATE.json [--threshold-file FILE]\n"
      "                                     compare run or bench reports;\n"
      "                                     exit 1 on regression, 3 on\n"
      "                                     schema mismatch\n"
      "\n"
      "Threshold file: {\"tolerances\": {\"wirelength\": {\"rel\": 0.05},\n"
      "\"seconds\": {\"ignore\": true}}}. Metrics keep their built-in\n"
      "tolerance unless overridden.\n";
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int load_json(const std::string& path, Json& out) {
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "cannot read " << path << "\n";
    return kDiffUsage;
  }
  std::optional<Json> json = Json::parse(text);
  if (!json.has_value()) {
    std::cerr << path << ": invalid JSON\n";
    return kDiffUsage;
  }
  out = *std::move(json);
  return kDiffOk;
}

std::string schema_of(const Json& json) {
  const Json* schema = json.get("schema");
  return schema != nullptr && schema->kind() == Json::Kind::kString
             ? schema->as_string()
             : std::string();
}

int cmd_check(const std::string& path) {
  Json json;
  if (const int rc = load_json(path, json); rc != kDiffOk) return rc;
  const std::string schema = schema_of(json);
  if (schema == kRunReportSchema) {
    if (!parse_run_report(json).has_value()) {
      std::cerr << path << ": run report failed validation\n";
      return kDiffSchemaMismatch;
    }
  } else if (schema == kBenchReportSchema) {
    if (!BenchReport::parse(json).has_value()) {
      std::cerr << path << ": bench report failed validation\n";
      return kDiffSchemaMismatch;
    }
  } else {
    std::cerr << path << ": unknown schema '" << schema << "'\n";
    return kDiffSchemaMismatch;
  }
  std::cout << path << ": valid " << schema << " v"
            << (json.get("version") != nullptr ? json.get("version")->as_int()
                                               : -1)
            << "\n";
  return kDiffOk;
}

void show_run_report(const RunReport& report) {
  std::cout << "design   : " << report.design.width << "x"
            << report.design.height << " tracks, "
            << report.design.routing_layers << " layers, "
            << report.design.nets << " nets, " << report.design.stitch_lines
            << " stitching lines\n";
  std::cout << "quality  : routability "
            << format_double(report.metrics.routability_pct()) << "% ("
            << report.metrics.routed_nets << "/" << report.metrics.total_nets
            << "), WL " << report.metrics.wirelength << ", vias "
            << report.metrics.vias << ", #SP "
            << report.metrics.short_polygons << ", #VV "
            << report.metrics.via_violations << ", vertical "
            << report.metrics.vertical_violations << "\n";
  std::cout << "global   : WL " << report.global.wirelength << ", TVOF "
            << report.global.total_vertex_overflow << ", MVOF "
            << report.global.max_vertex_overflow << "\n";
  std::cout << "yield    : " << format_double(report.yield.yield)
            << " (expected defects "
            << format_double(report.yield.expected_defects) << ")\n";
  std::cout << "congest. : H peak "
            << format_double(report.congestion.horizontal_peak) << " mean "
            << format_double(report.congestion.horizontal_mean) << ", V peak "
            << format_double(report.congestion.vertical_peak) << " mean "
            << format_double(report.congestion.vertical_mean) << "\n";
  std::cout << "vias     : " << report.via_density.vias << " total, "
            << report.via_density.unfriendly_vias
            << " in unfriendly regions, peak tile "
            << report.via_density.peak_tile_vias << "\n";
  for (const StageRecord& stage : report.stages) {
    std::cout << "stage    : " << stage.name;
    if (stage.seconds > 0.0)
      std::cout << " (" << format_double(stage.seconds) << " s)";
    std::cout << " — " << stage.counters.counters.size() << " counters\n";
  }
  std::int64_t unrouted = 0, with_bad_ends = 0, with_violations = 0;
  for (const NetAudit& audit : report.nets) {
    if (!audit.routed) ++unrouted;
    if (audit.bad_ends > 0) ++with_bad_ends;
    if (audit.via_violations > 0) ++with_violations;
  }
  std::cout << "nets     : " << report.nets.size() << " audited, " << unrouted
            << " unrouted, " << with_bad_ends << " with bad ends, "
            << with_violations << " with via violations\n";
  if (report.total_seconds > 0.0)
    std::cout << "time     : " << format_double(report.total_seconds)
              << " s total\n";
}

int cmd_show(const std::string& path) {
  Json json;
  if (const int rc = load_json(path, json); rc != kDiffOk) return rc;
  const std::string schema = schema_of(json);
  if (schema == kRunReportSchema) {
    const auto report = parse_run_report(json);
    if (!report.has_value()) {
      std::cerr << path << ": run report failed validation\n";
      return kDiffSchemaMismatch;
    }
    show_run_report(*report);
    return kDiffOk;
  }
  if (schema == kBenchReportSchema) {
    const auto report = BenchReport::parse(json);
    if (!report.has_value()) {
      std::cerr << path << ": bench report failed validation\n";
      return kDiffSchemaMismatch;
    }
    std::cout << "bench    : " << report->bench << ", " << report->rows.size()
              << " rows\n";
    for (const BenchRow& row : report->rows) {
      std::cout << "  " << row.circuit << " / " << row.variant << ":";
      for (const auto& [name, value] : row.metrics) {
        std::cout << " " << name << "=";
        if (value.kind() == Json::Kind::kInt)
          std::cout << value.as_int();
        else if (value.kind() == Json::Kind::kDouble)
          std::cout << format_double(value.as_double());
        else
          std::cout << "?";
      }
      std::cout << "\n";
    }
    return kDiffOk;
  }
  std::cerr << path << ": unknown schema '" << schema << "'\n";
  return kDiffSchemaMismatch;
}

int cmd_diff(const std::string& baseline_path,
             const std::string& candidate_path,
             const std::string& threshold_path) {
  DiffOptions options;
  if (!threshold_path.empty()) {
    std::string text;
    if (!read_file(threshold_path, text)) {
      std::cerr << "cannot read " << threshold_path << "\n";
      return kDiffUsage;
    }
    const auto parsed = parse_thresholds(text);
    if (!parsed.has_value()) {
      std::cerr << threshold_path << ": invalid threshold file\n";
      return kDiffUsage;
    }
    options = *parsed;
  }

  Json baseline, candidate;
  if (const int rc = load_json(baseline_path, baseline); rc != kDiffOk)
    return rc;
  if (const int rc = load_json(candidate_path, candidate); rc != kDiffOk)
    return rc;

  const DiffResult result = diff_reports(baseline, candidate, options);
  print_diff(std::cout, result);
  if (result.exit_code() == kDiffRegression)
    std::cout << "FAIL: candidate regressed vs baseline\n";
  else if (result.exit_code() == kDiffOk)
    std::cout << "PASS: no gated regression\n";
  return result.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return kDiffUsage;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    usage();
    return kDiffOk;
  }
  if (command == "show" && argc == 3) return cmd_show(argv[2]);
  if (command == "check" && argc == 3) return cmd_check(argv[2]);
  if (command == "diff" && argc >= 4) {
    std::string threshold_path;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--threshold-file" && i + 1 < argc) {
        threshold_path = argv[++i];
      } else {
        std::cerr << "unknown option '" << arg << "'\n";
        return kDiffUsage;
      }
    }
    return cmd_diff(argv[2], argv[3], threshold_path);
  }
  usage();
  return kDiffUsage;
}
