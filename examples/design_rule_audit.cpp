// Domain example: an MEBL design-rule audit. Routes a circuit, then walks
// the routed geometry and reports every stitch-related violation with its
// exact location and classification — the kind of signoff report a fab
// would want before committing a layout to a multi-beam writer.
// Usage: design_rule_audit [circuit-name]

#include <iostream>
#include <string>
#include <vector>

#include "bench_suite/circuit_generator.hpp"
#include "core/stitch_router.hpp"
#include "eval/yield.hpp"

namespace {

using namespace mebl;

struct Finding {
  std::string kind;
  geom::Point3 where;
};

std::vector<Finding> audit(const detail::GridGraph& grid) {
  const auto& rg = grid.routing_grid();
  const auto& stitch = rg.stitch();
  std::vector<Finding> findings;

  for (geom::LayerId l = 0; l < rg.num_layers(); ++l) {
    for (geom::Coord y = 0; y < rg.height(); ++y) {
      for (geom::Coord x = 0; x < rg.width(); ++x) {
        const auto net = grid.owner({x, y, l});
        if (net == -1) continue;
        // Via constraint.
        if (l + 1 < rg.num_layers() && stitch.is_stitch_column(x) &&
            grid.owner({x, y, static_cast<geom::LayerId>(l + 1)}) == net)
          findings.push_back({"via-on-stitch-line (fixed pin)", {x, y, l}});
        // Vertical routing constraint (an actual vertical *wire* exists
        // only on vertical layers; stacked horizontal wires on adjacent
        // rows may legally cross a line).
        if (l >= 1 && rg.layer_dir(l) == geom::Orientation::kVertical &&
            stitch.is_stitch_column(x) && y + 1 < rg.height() &&
            grid.owner({x, y + 1, l}) == net)
          findings.push_back({"VERTICAL-WIRE-ON-LINE (hard violation!)",
                              {x, y, l}});
      }
    }
  }

  // Short polygons, reported per wire end.
  for (const auto l : rg.layers_with(geom::Orientation::kHorizontal)) {
    for (geom::Coord y = 0; y < rg.height(); ++y) {
      geom::Coord x = 0;
      while (x < rg.width()) {
        const auto net = grid.owner({x, y, l});
        if (net == -1) {
          ++x;
          continue;
        }
        geom::Coord end = x;
        while (end + 1 < rg.width() && grid.owner({end + 1, y, l}) == net)
          ++end;
        if (end > x) {
          const auto has_via = [&](geom::Coord px) {
            if (l > 0 &&
                grid.owner({px, y, static_cast<geom::LayerId>(l - 1)}) == net)
              return true;
            return l + 1 < rg.num_layers() &&
                   grid.owner({px, y, static_cast<geom::LayerId>(l + 1)}) == net;
          };
          for (const auto s : stitch.lines_cutting({x, end})) {
            if (s - x <= stitch.epsilon() && has_via(x))
              findings.push_back({"short-polygon (soft)", {x, y, l}});
            if (end - s <= stitch.epsilon() && has_via(end))
              findings.push_back({"short-polygon (soft)", {end, y, l}});
          }
        }
        x = end + 1;
      }
    }
  }
  return findings;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "S9234";
  const auto* spec = bench_suite::find_spec(name);
  if (spec == nullptr) {
    std::cerr << "unknown circuit '" << name << "'\n";
    return 1;
  }
  const auto circuit = bench_suite::generate_circuit(*spec, {}, 20130602);

  core::StitchAwareRouter router(circuit.grid, circuit.netlist,
                                 core::RouterConfig::stitch_aware());
  const auto result = router.run();
  const auto findings = audit(*result.grid);

  int hard = 0, vias = 0, shorts = 0;
  for (const auto& f : findings) {
    if (f.kind.rfind("VERTICAL", 0) == 0)
      ++hard;
    else if (f.kind.rfind("via", 0) == 0)
      ++vias;
    else
      ++shorts;
  }

  const auto yield_report = eval::estimate_yield(*result.grid);
  std::cout << "MEBL design-rule audit for " << spec->name << "\n"
            << "  routed nets          : " << result.metrics.routed_nets
            << "/" << result.metrics.total_nets << "\n"
            << "  hard violations      : " << hard << " (must be 0)\n"
            << "  vias on lines (pins) : " << vias << "\n"
            << "  short polygons       : " << shorts << "\n"
            << "  expected defects     : " << yield_report.expected_defects
            << "\n"
            << "  estimated yield      : " << 100.0 * yield_report.yield
            << "%\n";
  const int show = std::min<std::size_t>(10, findings.size());
  for (int i = 0; i < show; ++i)
    std::cout << "    " << findings[static_cast<std::size_t>(i)].kind
              << " at (" << findings[static_cast<std::size_t>(i)].where.x
              << "," << findings[static_cast<std::size_t>(i)].where.y
              << ",L" << findings[static_cast<std::size_t>(i)].where.layer
              << ")\n";
  if (findings.size() > static_cast<std::size_t>(show))
    std::cout << "    ... and " << findings.size() - show << " more\n";
  return hard == 0 ? 0 : 1;
}
