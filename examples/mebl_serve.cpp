// mebl_serve: the routing-as-a-service daemon (DESIGN.md §12).
//
//   mebl_serve --socket /tmp/mebl.sock [--threads 8] [--cache 4] [--baseline]
//
// Listens on a local (AF_UNIX) socket for line-delimited JSON requests:
// load designs, route them, apply incremental (ECO) reroutes against the
// resident routed state, save/load routed state, all multiplexed over a
// priority job queue with per-job cancellation and deadlines. Talk to it
// with `mebl_route_cli --connect /tmp/mebl.sock` or any client that speaks
// the protocol (src/serve/protocol.hpp):
//
//   {"op":"load","id":1,"design":"chip","path":"chip.mebl"}
//   {"op":"route","id":2,"design":"chip"}
//   {"op":"eco","id":3,"design":"chip","nets":[4,17],"verify":true}
//   {"op":"shutdown","id":4}

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "telemetry/flight_recorder.hpp"
#include "util/log.hpp"

namespace {

std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true, std::memory_order_release); }

void usage() {
  std::cout <<
      "usage: mebl_serve --socket PATH [options]\n"
      "  --socket PATH   AF_UNIX socket to listen on (required)\n"
      "  --threads N     router worker threads (0 = one per hardware thread)\n"
      "  --lanes N       dispatch lanes; each design hashes to one lane and\n"
      "                  different designs route concurrently\n"
      "                  (0 = hardware threads / 2, min 1)\n"
      "  --cache N       resident designs kept in memory, LRU beyond (default 4)\n"
      "  --baseline      route with the conventional (stitch-oblivious) flow\n"
      "  --log-level L   logging threshold: debug, info, warn, error\n"
      "  --slow-job S    WARN with a stage breakdown for jobs >= S seconds\n"
      "  --flight-dir D  directory for flight-recorder dumps (crash handler\n"
      "                  and {\"op\":\"dump\"} requests; default: cwd)\n"
      "\n"
      "Scrape metrics with `mebl_route_cli --connect PATH --metrics` or a\n"
      "raw {\"op\":\"metrics\"} request (Prometheus text exposition).\n"
      "\n"
      "Stops on SIGINT/SIGTERM or a {\"op\":\"shutdown\"} request (which\n"
      "drains the queue first).\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mebl;

  serve::ServerConfig config;
  std::string flight_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      config.socket_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      config.threads = std::atoi(argv[++i]);
    } else if (arg == "--lanes" && i + 1 < argc) {
      config.lanes = std::atoi(argv[++i]);
    } else if (arg == "--cache" && i + 1 < argc) {
      config.cache_capacity =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--baseline") {
      config.router = core::RouterConfig::baseline();
    } else if (arg == "--log-level" && i + 1 < argc) {
      const auto level = util::log_level_from_name(argv[++i]);
      if (!level) {
        std::cerr << "bad --log-level '" << argv[i]
                  << "' (debug, info, warn, error)\n";
        return 2;
      }
      util::Log::set_level(*level);
    } else if (arg == "--slow-job" && i + 1 < argc) {
      config.slow_job_seconds = std::atof(argv[++i]);
    } else if (arg == "--flight-dir" && i + 1 < argc) {
      flight_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      usage();
      return 2;
    }
  }
  if (config.socket_path.empty()) {
    std::cerr << "mebl_serve: --socket is required\n";
    usage();
    return 2;
  }
  config.router.with_threads(config.threads);

  // Arm the flight recorder before any worker starts: every span and log
  // line from here on lands in the in-memory ring, and a fatal signal dumps
  // it next to (or into) --flight-dir.
  if (!flight_dir.empty() && flight_dir.back() != '/') flight_dir += '/';
  config.flight_prefix = flight_dir + "mebl_flight";
  telemetry::FlightRecorder::enable();
  telemetry::FlightRecorder::install_crash_handler(config.flight_prefix);

  serve::Server server(std::move(config));
  if (!server.start()) return 1;
  std::cout << "mebl_serve: listening on " << server.socket_path() << " ("
            << server.lanes() << " lane" << (server.lanes() == 1 ? "" : "s")
            << ")\n";

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // The handler only sets a flag (async-signal-safe); this loop does the
  // actual teardown. A shutdown request flips server.stopping() instead.
  while (!g_interrupted.load(std::memory_order_acquire) &&
         !server.stopping())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::cout << "mebl_serve: shutting down ("
            << server.jobs_completed() << " jobs served)\n";
  server.stop();
  return 0;
}
