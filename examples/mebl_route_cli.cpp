// Standalone routing driver: route a design file (the "MEBL1" text format,
// see netlist/io.hpp) and emit metrics, an SVG plot, run reports, and
// spatial heatmaps. This is the adoption path for users with their own
// designs:
//
//   mebl_route_cli design.mebl [--baseline] [--threads 8] [--svg out.svg]
//                  [--report run.json] [--heatmap dir/]
//
// With no file argument a demo design is generated (--demo picks which),
// saved next to the outputs, and routed — so the binary is also a runnable
// example.

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_suite/circuit_generator.hpp"
#include "core/stitch_router.hpp"
#include "eval/congestion.hpp"
#include "eval/svg_writer.hpp"
#include "netlist/io.hpp"
#include "place/pin_refine.hpp"
#include "report/report.hpp"
#include "report/spatial.hpp"
#include "serve/client.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace {

void usage() {
  std::cout <<
      "usage: mebl_route_cli [design.mebl] [options]\n"
      "  --baseline          route with the conventional (stitch-oblivious) flow\n"
      "  --demo NAME         circuit to generate when no design file is given\n"
      "                      (default S9234; e.g. Struct, Primary1, S13207)\n"
      "  --threads N         worker threads (0 = one per hardware thread);\n"
      "                      results are identical for every N\n"
      "  --progress          print per-stage progress while routing\n"
      "  --refine-pins       run stitch-aware pin refinement before routing\n"
      "  --svg PATH          write the routed layout as SVG\n"
      "  --heatmap DIR       write congestion/via-density heatmaps (CSV + SVG)\n"
      "                      into DIR; '-' prints the ASCII congestion map\n"
      "  --report PATH       write the run quality report (JSON) to PATH\n"
      "  --report-canonical  omit wall-clock data from the report, making the\n"
      "                      bytes reproducible across runs and thread counts\n"
      "  --save PATH         write the (possibly refined) design back out\n"
      "  --trace PATH        write a Chrome/Perfetto trace of the routing run\n"
      "  --stats PATH        write the telemetry counters/histograms as JSON\n"
      "\n"
      "Client mode (talk to a running mebl_serve daemon instead of routing\n"
      "in-process; composes with --report and --progress):\n"
      "  --connect SOCK      load + route the design on the daemon at SOCK\n"
      "  --name NAME         resident-design key on the daemon (default:\n"
      "                      the demo name, or 'design' for a file)\n"
      "  --eco LIST          after routing, incrementally reroute the\n"
      "                      comma-separated nets (ids or names)\n"
      "  --eco-verify        run the daemon's bit-identity check on the ECO\n"
      "  --metrics           print the daemon's Prometheus metrics and exit\n"
      "  --dump              ask the daemon to dump its flight recorder and\n"
      "                      print the dump path\n"
      "  --log-level L       logging threshold: debug, info, warn, error\n"
      "\n"
      "All output sinks compose: one routing run feeds --report, --heatmap,\n"
      "--svg, --trace, --stats, and --progress simultaneously. The report's\n"
      "stage counter snapshots are taken at the same stage boundaries the\n"
      "progress observer reports.\n";
}

/// --progress: push-style pipeline reporting on stderr. Also the minimal
/// worked example of the core::ProgressObserver interface.
class StderrProgress final : public mebl::core::ProgressObserver {
 public:
  void on_stage_begin(mebl::core::Stage stage) override {
    std::cerr << "[stage] " << mebl::core::stage_name(stage) << "...\n";
  }
  void on_stage_end(mebl::core::Stage stage, double seconds) override {
    std::cerr << "[stage] " << mebl::core::stage_name(stage) << " done in "
              << seconds << " s\n";
  }
  void on_nets_routed(std::size_t routed, std::size_t total) override {
    // Only print every ~5% so big designs do not flood the terminal.
    if (total == 0) return;
    const std::size_t step = total < 20 ? 1 : total / 20;
    if (routed >= last_reported_ + step || routed == total) {
      last_reported_ = routed;
      std::cerr << "[global] " << routed << "/" << total << " nets\n";
    }
  }

 private:
  std::size_t last_reported_ = 0;
};

/// Print the quality block of a daemon "done" payload.
void print_remote_quality(const mebl::report::Json& payload) {
  const mebl::report::Json* report = payload.get("report");
  const mebl::report::Json* quality =
      report != nullptr ? report->get("quality") : nullptr;
  if (quality == nullptr) return;
  const auto num = [&](const char* key) -> double {
    const mebl::report::Json* v = quality->get(key);
    return v != nullptr ? v->as_double() : 0.0;
  };
  std::cout << "routability        : " << num("routability_pct") << "% ("
            << num("routed_nets") << "/" << num("total_nets") << " nets)\n"
            << "wirelength         : " << num("wirelength") << "\n"
            << "vias               : " << num("vias") << "\n"
            << "short polygons     : " << num("short_polygons") << "\n"
            << "via violations     : " << num("via_violations") << "\n";
  const mebl::report::Json* seconds = payload.get("seconds");
  if (seconds != nullptr)
    std::cout << "server seconds     : " << seconds->as_double() << "\n";
}

/// --metrics / --dump: one inline request against the daemon, print the
/// answer, exit. No design is loaded or routed.
int run_inspect_mode(const std::string& socket_path, bool metrics) {
  using namespace mebl;

  serve::Client client;
  if (!client.connect(socket_path)) {
    std::cerr << "cannot connect to mebl_serve at " << socket_path << "\n";
    return 1;
  }
  serve::Request request;
  request.op = metrics ? serve::Op::kMetrics : serve::Op::kDump;
  const auto response = client.call(std::move(request));
  if (!response || response->type == "error") {
    std::cerr << (metrics ? "metrics" : "dump") << " failed: "
              << (response ? response->error : std::string("connection lost"))
              << "\n";
    return 1;
  }
  if (metrics) {
    const report::Json* text = response->payload.get("text");
    if (text == nullptr) {
      std::cerr << "daemon response carries no metrics text\n";
      return 1;
    }
    std::cout << text->as_string();
  } else {
    const report::Json* path = response->payload.get("path");
    const report::Json* events = response->payload.get("events");
    std::cout << "flight recorder dumped to "
              << (path != nullptr ? path->as_string() : std::string("?"))
              << " (" << (events != nullptr ? events->as_int() : 0)
              << " events)\n";
  }
  return 0;
}

/// Route (and optionally ECO) on a mebl_serve daemon instead of in-process.
int run_connect_mode(const std::string& socket_path, std::string design_name,
                     const mebl::netlist::Design& design,
                     const std::string& eco_list, bool eco_verify,
                     const std::string& report_path, bool progress) {
  using namespace mebl;

  serve::Client client;
  if (!client.connect(socket_path)) {
    std::cerr << "cannot connect to mebl_serve at " << socket_path << "\n";
    return 1;
  }

  const auto progress_fn = [progress](const serve::Response& event) {
    if (!progress || event.type != "progress") return;
    const report::Json* stage = event.payload.get("stage");
    const report::Json* kind = event.payload.get("event");
    if (stage != nullptr && kind != nullptr)
      std::cerr << "[serve] " << kind->as_string() << " "
                << stage->as_string() << "\n";
  };
  const auto fail = [](const char* what,
                       const std::optional<serve::Response>& response) {
    std::cerr << what << " failed: "
              << (response ? (response->error.empty() ? response->type
                                                      : response->error)
                           : std::string("connection lost"))
              << "\n";
    return 1;
  };

  std::ostringstream design_text;
  netlist::write_design(design_text, design);
  serve::Request load;
  load.op = serve::Op::kLoad;
  load.design = design_name;
  load.design_text = design_text.str();
  auto response = client.call(std::move(load));
  if (!response || response->type != "done") return fail("load", response);
  std::cout << "loaded '" << design_name << "' onto the daemon\n";

  serve::Request route;
  route.op = serve::Op::kRoute;
  route.design = design_name;
  response = client.call(std::move(route), progress_fn);
  if (!response || response->type != "done") return fail("route", response);
  std::cout << "routed '" << design_name << "' remotely\n";
  print_remote_quality(response->payload);

  if (!eco_list.empty()) {
    serve::Request eco;
    eco.op = serve::Op::kEco;
    eco.design = design_name;
    eco.verify = eco_verify;
    std::istringstream tokens(eco_list);
    for (std::string token; std::getline(tokens, token, ',');) {
      if (token.empty()) continue;
      const bool numeric = token.find_first_not_of("0123456789") ==
                           std::string::npos;
      if (numeric)
        eco.nets.push_back(static_cast<netlist::NetId>(std::stol(token)));
      else
        eco.net_names.push_back(token);
    }
    response = client.call(std::move(eco), progress_fn);
    if (!response || response->type != "done") return fail("eco", response);
    std::cout << "eco reroute done\n";
    if (const report::Json* summary = response->payload.get("eco")) {
      const report::Json* dirty = summary->get("dirty_subnets");
      if (dirty != nullptr)
        std::cout << "dirty subnets      : " << dirty->as_int() << "\n";
      const report::Json* verified = summary->get("verified");
      if (verified != nullptr)
        std::cout << "bit-identity check : "
                  << (verified->as_bool() ? "ok" : "MISMATCH") << "\n";
    }
    print_remote_quality(response->payload);
  }

  if (!report_path.empty()) {
    const report::Json* report = response->payload.get("report");
    if (report == nullptr) {
      std::cerr << "daemon response carries no report\n";
      return 1;
    }
    std::ofstream out(report_path);
    report->dump(out);
    out << "\n";
    if (!out) {
      std::cerr << "cannot write " << report_path << "\n";
      return 1;
    }
    std::cout << "wrote run report to " << report_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mebl;

  std::string design_path;
  std::string demo_name = "S9234";
  std::string svg_path;
  std::string save_path;
  std::string trace_path;
  std::string stats_path;
  std::string report_path;
  std::string heatmap_dir;
  std::string connect_socket;
  std::string remote_name;
  std::string eco_list;
  bool eco_verify = false;
  bool remote_metrics = false;
  bool remote_dump = false;
  bool baseline = false;
  bool refine = false;
  bool progress = false;
  bool report_canonical = false;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      baseline = true;
    } else if (arg == "--demo" && i + 1 < argc) {
      demo_name = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--refine-pins") {
      refine = true;
    } else if (arg == "--heatmap" && i + 1 < argc) {
      heatmap_dir = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--report-canonical") {
      report_canonical = true;
    } else if (arg == "--svg" && i + 1 < argc) {
      svg_path = argv[++i];
    } else if (arg == "--save" && i + 1 < argc) {
      save_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--stats" && i + 1 < argc) {
      stats_path = argv[++i];
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_socket = argv[++i];
    } else if (arg == "--name" && i + 1 < argc) {
      remote_name = argv[++i];
    } else if (arg == "--eco" && i + 1 < argc) {
      eco_list = argv[++i];
    } else if (arg == "--eco-verify") {
      eco_verify = true;
    } else if (arg == "--metrics") {
      remote_metrics = true;
    } else if (arg == "--dump") {
      remote_dump = true;
    } else if (arg == "--log-level" && i + 1 < argc) {
      const auto level = util::log_level_from_name(argv[++i]);
      if (!level) {
        std::cerr << "bad --log-level '" << argv[i]
                  << "' (debug, info, warn, error)\n";
        return 2;
      }
      util::Log::set_level(*level);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      design_path = arg;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      usage();
      return 2;
    }
  }

  // --metrics / --dump are pure daemon inspection: no design involved.
  if (remote_metrics || remote_dump) {
    if (connect_socket.empty()) {
      std::cerr << "--metrics/--dump need --connect (they query a running "
                   "daemon)\n";
      return 2;
    }
    return run_inspect_mode(connect_socket, remote_metrics);
  }

  // Load the design, or synthesize a demo one.
  std::optional<netlist::Design> design;
  if (!design_path.empty()) {
    design = netlist::load_design(design_path);
    if (!design) {
      std::cerr << "cannot load design from " << design_path << "\n";
      return 1;
    }
    std::cout << "loaded " << design_path << ": " << design->grid.width()
              << "x" << design->grid.height() << " tracks, "
              << design->netlist.num_nets() << " nets\n";
  } else {
    const auto* spec = bench_suite::find_spec(demo_name);
    if (spec == nullptr) {
      std::cerr << "unknown demo circuit '" << demo_name << "'\n";
      return 2;
    }
    std::cout << "no design given; generating the " << demo_name
              << "-like demo circuit\n";
    auto circuit = bench_suite::generate_circuit(*spec, {}, 1);
    design = netlist::Design{circuit.grid, std::move(circuit.netlist)};
  }

  if (!connect_socket.empty()) {
    if (remote_name.empty())
      remote_name = design_path.empty() ? demo_name : "design";
    return run_connect_mode(connect_socket, remote_name, *design, eco_list,
                            eco_verify, report_path, progress);
  }
  if (!eco_list.empty() || eco_verify) {
    std::cerr << "--eco/--eco-verify need --connect (a running daemon keeps "
                 "the resident state)\n";
    return 2;
  }

  if (refine) {
    const auto stats = place::refine_pins(design->grid, design->netlist);
    std::cout << "pin refinement: moved " << stats.pins_moved
              << " pins (on-line " << stats.pins_on_lines_before << " -> "
              << stats.pins_on_lines_after << ", unfriendly "
              << stats.pins_unfriendly_before << " -> "
              << stats.pins_unfriendly_after << ")\n";
  }
  if (!save_path.empty()) {
    if (!netlist::save_design(save_path, *design)) {
      std::cerr << "cannot save design to " << save_path << "\n";
      return 1;
    }
    std::cout << "saved design to " << save_path << "\n";
  }

  if (!trace_path.empty()) telemetry::Tracer::enable();
  auto config = baseline ? core::RouterConfig::baseline()
                         : core::RouterConfig::stitch_aware();
  config.with_threads(threads);
  core::StitchAwareRouter router(design->grid, design->netlist, config);
  StderrProgress reporter;
  if (progress) router.add_observer(&reporter);
  report::RunReportBuilder report_builder;
  if (!report_path.empty()) router.add_observer(&report_builder);
  const auto result = router.run();
  if (!trace_path.empty()) {
    if (!telemetry::Tracer::write_chrome_trace_file(trace_path)) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    std::cout << "wrote trace to " << trace_path
              << " (open in ui.perfetto.dev or chrome://tracing)\n";
  }
  if (!stats_path.empty()) {
    if (!telemetry::write_stats_file(stats_path)) {
      std::cerr << "cannot write " << stats_path << "\n";
      return 1;
    }
    std::cout << "wrote stats to " << stats_path << "\n";
  }
  if (!report_path.empty()) {
    const auto report =
        report_builder.build(result, design->grid, design->netlist);
    report::WriteOptions options;
    options.include_timing = !report_canonical;
    if (!report::write_report_file(report, report_path, options)) {
      std::cerr << "cannot write " << report_path << "\n";
      return 1;
    }
    std::cout << "wrote run report to " << report_path
              << (report_canonical ? " (canonical)" : "") << "\n";
  }

  std::cout << "routability        : " << result.metrics.routability_pct()
            << "% (" << result.metrics.routed_nets << "/"
            << result.metrics.total_nets << " nets)\n"
            << "wirelength         : " << result.metrics.wirelength << "\n"
            << "vias               : " << result.metrics.vias << "\n"
            << "short polygons     : " << result.metrics.short_polygons << "\n"
            << "via violations     : " << result.metrics.via_violations << "\n"
            << "vertical violations: " << result.metrics.vertical_violations
            << "\n"
            << "stage seconds      : G " << result.times.global_seconds
            << " / L " << result.times.layer_seconds << " / T "
            << result.times.track_seconds << " / D "
            << result.times.detail_seconds << "\n";

  if (!svg_path.empty()) {
    if (!eval::write_svg(*result.grid, svg_path)) {
      std::cerr << "cannot write " << svg_path << "\n";
      return 1;
    }
    std::cout << "wrote " << svg_path << "\n";
  }
  if (heatmap_dir == "-") {
    const auto congestion = eval::measure_congestion(*result.grid);
    std::cout << "vertical congestion (peak " << congestion.peak() << "):\n"
              << eval::ascii_heatmap(congestion, /*vertical=*/true);
  } else if (!heatmap_dir.empty()) {
    if (!report::write_heatmap_dir(heatmap_dir, *result.grid)) {
      std::cerr << "cannot write heatmaps into " << heatmap_dir << "\n";
      return 1;
    }
    std::cout << "wrote heatmaps into " << heatmap_dir << "/\n";
  }
  return result.metrics.vertical_violations == 0 ? 0 : 1;
}
