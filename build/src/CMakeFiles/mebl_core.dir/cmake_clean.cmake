file(REMOVE_RECURSE
  "CMakeFiles/mebl_core.dir/core/router_config.cpp.o"
  "CMakeFiles/mebl_core.dir/core/router_config.cpp.o.d"
  "CMakeFiles/mebl_core.dir/core/stitch_router.cpp.o"
  "CMakeFiles/mebl_core.dir/core/stitch_router.cpp.o.d"
  "libmebl_core.a"
  "libmebl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
