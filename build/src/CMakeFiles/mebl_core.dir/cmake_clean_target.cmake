file(REMOVE_RECURSE
  "libmebl_core.a"
)
