# Empty compiler generated dependencies file for mebl_core.
# This may be replaced when dependencies are built.
