# Empty dependencies file for mebl_geom.
# This may be replaced when dependencies are built.
