file(REMOVE_RECURSE
  "CMakeFiles/mebl_geom.dir/geom/interval.cpp.o"
  "CMakeFiles/mebl_geom.dir/geom/interval.cpp.o.d"
  "CMakeFiles/mebl_geom.dir/geom/point.cpp.o"
  "CMakeFiles/mebl_geom.dir/geom/point.cpp.o.d"
  "CMakeFiles/mebl_geom.dir/geom/rect.cpp.o"
  "CMakeFiles/mebl_geom.dir/geom/rect.cpp.o.d"
  "libmebl_geom.a"
  "libmebl_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
