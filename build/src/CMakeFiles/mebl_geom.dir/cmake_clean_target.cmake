file(REMOVE_RECURSE
  "libmebl_geom.a"
)
