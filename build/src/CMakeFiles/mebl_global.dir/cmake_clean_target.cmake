file(REMOVE_RECURSE
  "libmebl_global.a"
)
