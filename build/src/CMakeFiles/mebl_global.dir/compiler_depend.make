# Empty compiler generated dependencies file for mebl_global.
# This may be replaced when dependencies are built.
