file(REMOVE_RECURSE
  "CMakeFiles/mebl_global.dir/global/global_router.cpp.o"
  "CMakeFiles/mebl_global.dir/global/global_router.cpp.o.d"
  "CMakeFiles/mebl_global.dir/global/multilevel.cpp.o"
  "CMakeFiles/mebl_global.dir/global/multilevel.cpp.o.d"
  "CMakeFiles/mebl_global.dir/global/routing_graph.cpp.o"
  "CMakeFiles/mebl_global.dir/global/routing_graph.cpp.o.d"
  "libmebl_global.a"
  "libmebl_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
