file(REMOVE_RECURSE
  "CMakeFiles/mebl_assign.dir/assign/conflict_graph.cpp.o"
  "CMakeFiles/mebl_assign.dir/assign/conflict_graph.cpp.o.d"
  "CMakeFiles/mebl_assign.dir/assign/layer_assign.cpp.o"
  "CMakeFiles/mebl_assign.dir/assign/layer_assign.cpp.o.d"
  "CMakeFiles/mebl_assign.dir/assign/panel.cpp.o"
  "CMakeFiles/mebl_assign.dir/assign/panel.cpp.o.d"
  "CMakeFiles/mebl_assign.dir/assign/track_assign_baseline.cpp.o"
  "CMakeFiles/mebl_assign.dir/assign/track_assign_baseline.cpp.o.d"
  "CMakeFiles/mebl_assign.dir/assign/track_assign_graph.cpp.o"
  "CMakeFiles/mebl_assign.dir/assign/track_assign_graph.cpp.o.d"
  "CMakeFiles/mebl_assign.dir/assign/track_assign_ilp.cpp.o"
  "CMakeFiles/mebl_assign.dir/assign/track_assign_ilp.cpp.o.d"
  "libmebl_assign.a"
  "libmebl_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
