file(REMOVE_RECURSE
  "libmebl_assign.a"
)
