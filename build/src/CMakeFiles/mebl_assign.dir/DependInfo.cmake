
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assign/conflict_graph.cpp" "src/CMakeFiles/mebl_assign.dir/assign/conflict_graph.cpp.o" "gcc" "src/CMakeFiles/mebl_assign.dir/assign/conflict_graph.cpp.o.d"
  "/root/repo/src/assign/layer_assign.cpp" "src/CMakeFiles/mebl_assign.dir/assign/layer_assign.cpp.o" "gcc" "src/CMakeFiles/mebl_assign.dir/assign/layer_assign.cpp.o.d"
  "/root/repo/src/assign/panel.cpp" "src/CMakeFiles/mebl_assign.dir/assign/panel.cpp.o" "gcc" "src/CMakeFiles/mebl_assign.dir/assign/panel.cpp.o.d"
  "/root/repo/src/assign/track_assign_baseline.cpp" "src/CMakeFiles/mebl_assign.dir/assign/track_assign_baseline.cpp.o" "gcc" "src/CMakeFiles/mebl_assign.dir/assign/track_assign_baseline.cpp.o.d"
  "/root/repo/src/assign/track_assign_graph.cpp" "src/CMakeFiles/mebl_assign.dir/assign/track_assign_graph.cpp.o" "gcc" "src/CMakeFiles/mebl_assign.dir/assign/track_assign_graph.cpp.o.d"
  "/root/repo/src/assign/track_assign_ilp.cpp" "src/CMakeFiles/mebl_assign.dir/assign/track_assign_ilp.cpp.o" "gcc" "src/CMakeFiles/mebl_assign.dir/assign/track_assign_ilp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mebl_global.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
