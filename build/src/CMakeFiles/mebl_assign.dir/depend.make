# Empty dependencies file for mebl_assign.
# This may be replaced when dependencies are built.
