file(REMOVE_RECURSE
  "CMakeFiles/mebl_bench_suite.dir/bench_suite/circuit_generator.cpp.o"
  "CMakeFiles/mebl_bench_suite.dir/bench_suite/circuit_generator.cpp.o.d"
  "CMakeFiles/mebl_bench_suite.dir/bench_suite/layer_instance_generator.cpp.o"
  "CMakeFiles/mebl_bench_suite.dir/bench_suite/layer_instance_generator.cpp.o.d"
  "libmebl_bench_suite.a"
  "libmebl_bench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
