file(REMOVE_RECURSE
  "libmebl_bench_suite.a"
)
