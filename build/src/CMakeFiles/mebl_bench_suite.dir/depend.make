# Empty dependencies file for mebl_bench_suite.
# This may be replaced when dependencies are built.
