file(REMOVE_RECURSE
  "CMakeFiles/mebl_eval.dir/eval/congestion.cpp.o"
  "CMakeFiles/mebl_eval.dir/eval/congestion.cpp.o.d"
  "CMakeFiles/mebl_eval.dir/eval/metrics.cpp.o"
  "CMakeFiles/mebl_eval.dir/eval/metrics.cpp.o.d"
  "CMakeFiles/mebl_eval.dir/eval/svg_writer.cpp.o"
  "CMakeFiles/mebl_eval.dir/eval/svg_writer.cpp.o.d"
  "CMakeFiles/mebl_eval.dir/eval/yield.cpp.o"
  "CMakeFiles/mebl_eval.dir/eval/yield.cpp.o.d"
  "libmebl_eval.a"
  "libmebl_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
