file(REMOVE_RECURSE
  "libmebl_eval.a"
)
