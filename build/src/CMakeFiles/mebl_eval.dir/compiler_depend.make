# Empty compiler generated dependencies file for mebl_eval.
# This may be replaced when dependencies are built.
