file(REMOVE_RECURSE
  "CMakeFiles/mebl_place.dir/place/pin_refine.cpp.o"
  "CMakeFiles/mebl_place.dir/place/pin_refine.cpp.o.d"
  "libmebl_place.a"
  "libmebl_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
