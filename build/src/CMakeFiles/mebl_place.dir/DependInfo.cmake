
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/place/pin_refine.cpp" "src/CMakeFiles/mebl_place.dir/place/pin_refine.cpp.o" "gcc" "src/CMakeFiles/mebl_place.dir/place/pin_refine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mebl_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
