file(REMOVE_RECURSE
  "libmebl_place.a"
)
