# Empty compiler generated dependencies file for mebl_place.
# This may be replaced when dependencies are built.
