
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/gcell.cpp" "src/CMakeFiles/mebl_grid.dir/grid/gcell.cpp.o" "gcc" "src/CMakeFiles/mebl_grid.dir/grid/gcell.cpp.o.d"
  "/root/repo/src/grid/routing_grid.cpp" "src/CMakeFiles/mebl_grid.dir/grid/routing_grid.cpp.o" "gcc" "src/CMakeFiles/mebl_grid.dir/grid/routing_grid.cpp.o.d"
  "/root/repo/src/grid/stitch_plan.cpp" "src/CMakeFiles/mebl_grid.dir/grid/stitch_plan.cpp.o" "gcc" "src/CMakeFiles/mebl_grid.dir/grid/stitch_plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mebl_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
