file(REMOVE_RECURSE
  "CMakeFiles/mebl_grid.dir/grid/gcell.cpp.o"
  "CMakeFiles/mebl_grid.dir/grid/gcell.cpp.o.d"
  "CMakeFiles/mebl_grid.dir/grid/routing_grid.cpp.o"
  "CMakeFiles/mebl_grid.dir/grid/routing_grid.cpp.o.d"
  "CMakeFiles/mebl_grid.dir/grid/stitch_plan.cpp.o"
  "CMakeFiles/mebl_grid.dir/grid/stitch_plan.cpp.o.d"
  "libmebl_grid.a"
  "libmebl_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
