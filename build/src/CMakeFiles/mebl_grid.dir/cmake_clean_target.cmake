file(REMOVE_RECURSE
  "libmebl_grid.a"
)
