# Empty dependencies file for mebl_grid.
# This may be replaced when dependencies are built.
