file(REMOVE_RECURSE
  "CMakeFiles/mebl_detail.dir/detail/astar.cpp.o"
  "CMakeFiles/mebl_detail.dir/detail/astar.cpp.o.d"
  "CMakeFiles/mebl_detail.dir/detail/detailed_router.cpp.o"
  "CMakeFiles/mebl_detail.dir/detail/detailed_router.cpp.o.d"
  "CMakeFiles/mebl_detail.dir/detail/grid_graph.cpp.o"
  "CMakeFiles/mebl_detail.dir/detail/grid_graph.cpp.o.d"
  "CMakeFiles/mebl_detail.dir/detail/net_ordering.cpp.o"
  "CMakeFiles/mebl_detail.dir/detail/net_ordering.cpp.o.d"
  "libmebl_detail.a"
  "libmebl_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
