file(REMOVE_RECURSE
  "libmebl_detail.a"
)
