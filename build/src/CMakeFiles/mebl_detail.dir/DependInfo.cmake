
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detail/astar.cpp" "src/CMakeFiles/mebl_detail.dir/detail/astar.cpp.o" "gcc" "src/CMakeFiles/mebl_detail.dir/detail/astar.cpp.o.d"
  "/root/repo/src/detail/detailed_router.cpp" "src/CMakeFiles/mebl_detail.dir/detail/detailed_router.cpp.o" "gcc" "src/CMakeFiles/mebl_detail.dir/detail/detailed_router.cpp.o.d"
  "/root/repo/src/detail/grid_graph.cpp" "src/CMakeFiles/mebl_detail.dir/detail/grid_graph.cpp.o" "gcc" "src/CMakeFiles/mebl_detail.dir/detail/grid_graph.cpp.o.d"
  "/root/repo/src/detail/net_ordering.cpp" "src/CMakeFiles/mebl_detail.dir/detail/net_ordering.cpp.o" "gcc" "src/CMakeFiles/mebl_detail.dir/detail/net_ordering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mebl_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_global.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
