# Empty dependencies file for mebl_detail.
# This may be replaced when dependencies are built.
