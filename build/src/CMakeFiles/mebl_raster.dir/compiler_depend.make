# Empty compiler generated dependencies file for mebl_raster.
# This may be replaced when dependencies are built.
