file(REMOVE_RECURSE
  "libmebl_raster.a"
)
