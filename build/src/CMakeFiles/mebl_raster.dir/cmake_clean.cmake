file(REMOVE_RECURSE
  "CMakeFiles/mebl_raster.dir/raster/bitmap.cpp.o"
  "CMakeFiles/mebl_raster.dir/raster/bitmap.cpp.o.d"
  "CMakeFiles/mebl_raster.dir/raster/defect.cpp.o"
  "CMakeFiles/mebl_raster.dir/raster/defect.cpp.o.d"
  "CMakeFiles/mebl_raster.dir/raster/dither.cpp.o"
  "CMakeFiles/mebl_raster.dir/raster/dither.cpp.o.d"
  "CMakeFiles/mebl_raster.dir/raster/render.cpp.o"
  "CMakeFiles/mebl_raster.dir/raster/render.cpp.o.d"
  "libmebl_raster.a"
  "libmebl_raster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_raster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
