
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raster/bitmap.cpp" "src/CMakeFiles/mebl_raster.dir/raster/bitmap.cpp.o" "gcc" "src/CMakeFiles/mebl_raster.dir/raster/bitmap.cpp.o.d"
  "/root/repo/src/raster/defect.cpp" "src/CMakeFiles/mebl_raster.dir/raster/defect.cpp.o" "gcc" "src/CMakeFiles/mebl_raster.dir/raster/defect.cpp.o.d"
  "/root/repo/src/raster/dither.cpp" "src/CMakeFiles/mebl_raster.dir/raster/dither.cpp.o" "gcc" "src/CMakeFiles/mebl_raster.dir/raster/dither.cpp.o.d"
  "/root/repo/src/raster/render.cpp" "src/CMakeFiles/mebl_raster.dir/raster/render.cpp.o" "gcc" "src/CMakeFiles/mebl_raster.dir/raster/render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mebl_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
