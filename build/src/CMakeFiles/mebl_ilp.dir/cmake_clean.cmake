file(REMOVE_RECURSE
  "CMakeFiles/mebl_ilp.dir/ilp/branch_and_bound.cpp.o"
  "CMakeFiles/mebl_ilp.dir/ilp/branch_and_bound.cpp.o.d"
  "CMakeFiles/mebl_ilp.dir/ilp/model.cpp.o"
  "CMakeFiles/mebl_ilp.dir/ilp/model.cpp.o.d"
  "libmebl_ilp.a"
  "libmebl_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
