# Empty dependencies file for mebl_ilp.
# This may be replaced when dependencies are built.
