file(REMOVE_RECURSE
  "libmebl_ilp.a"
)
