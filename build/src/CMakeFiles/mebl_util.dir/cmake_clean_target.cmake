file(REMOVE_RECURSE
  "libmebl_util.a"
)
