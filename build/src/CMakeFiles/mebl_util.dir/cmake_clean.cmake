file(REMOVE_RECURSE
  "CMakeFiles/mebl_util.dir/util/log.cpp.o"
  "CMakeFiles/mebl_util.dir/util/log.cpp.o.d"
  "CMakeFiles/mebl_util.dir/util/rng.cpp.o"
  "CMakeFiles/mebl_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/mebl_util.dir/util/table.cpp.o"
  "CMakeFiles/mebl_util.dir/util/table.cpp.o.d"
  "CMakeFiles/mebl_util.dir/util/timer.cpp.o"
  "CMakeFiles/mebl_util.dir/util/timer.cpp.o.d"
  "libmebl_util.a"
  "libmebl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
