# Empty dependencies file for mebl_util.
# This may be replaced when dependencies are built.
