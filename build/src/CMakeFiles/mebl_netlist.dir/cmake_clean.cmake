file(REMOVE_RECURSE
  "CMakeFiles/mebl_netlist.dir/netlist/decompose.cpp.o"
  "CMakeFiles/mebl_netlist.dir/netlist/decompose.cpp.o.d"
  "CMakeFiles/mebl_netlist.dir/netlist/io.cpp.o"
  "CMakeFiles/mebl_netlist.dir/netlist/io.cpp.o.d"
  "CMakeFiles/mebl_netlist.dir/netlist/netlist.cpp.o"
  "CMakeFiles/mebl_netlist.dir/netlist/netlist.cpp.o.d"
  "libmebl_netlist.a"
  "libmebl_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
