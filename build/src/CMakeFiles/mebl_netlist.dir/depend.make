# Empty dependencies file for mebl_netlist.
# This may be replaced when dependencies are built.
