file(REMOVE_RECURSE
  "libmebl_netlist.a"
)
