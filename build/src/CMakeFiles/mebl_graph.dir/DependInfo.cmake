
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bipartite_matching.cpp" "src/CMakeFiles/mebl_graph.dir/graph/bipartite_matching.cpp.o" "gcc" "src/CMakeFiles/mebl_graph.dir/graph/bipartite_matching.cpp.o.d"
  "/root/repo/src/graph/dag_longest_path.cpp" "src/CMakeFiles/mebl_graph.dir/graph/dag_longest_path.cpp.o" "gcc" "src/CMakeFiles/mebl_graph.dir/graph/dag_longest_path.cpp.o.d"
  "/root/repo/src/graph/interval_k_coloring.cpp" "src/CMakeFiles/mebl_graph.dir/graph/interval_k_coloring.cpp.o" "gcc" "src/CMakeFiles/mebl_graph.dir/graph/interval_k_coloring.cpp.o.d"
  "/root/repo/src/graph/min_cost_flow.cpp" "src/CMakeFiles/mebl_graph.dir/graph/min_cost_flow.cpp.o" "gcc" "src/CMakeFiles/mebl_graph.dir/graph/min_cost_flow.cpp.o.d"
  "/root/repo/src/graph/shortest_path.cpp" "src/CMakeFiles/mebl_graph.dir/graph/shortest_path.cpp.o" "gcc" "src/CMakeFiles/mebl_graph.dir/graph/shortest_path.cpp.o.d"
  "/root/repo/src/graph/spanning_tree.cpp" "src/CMakeFiles/mebl_graph.dir/graph/spanning_tree.cpp.o" "gcc" "src/CMakeFiles/mebl_graph.dir/graph/spanning_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mebl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
