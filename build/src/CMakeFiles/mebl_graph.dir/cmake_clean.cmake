file(REMOVE_RECURSE
  "CMakeFiles/mebl_graph.dir/graph/bipartite_matching.cpp.o"
  "CMakeFiles/mebl_graph.dir/graph/bipartite_matching.cpp.o.d"
  "CMakeFiles/mebl_graph.dir/graph/dag_longest_path.cpp.o"
  "CMakeFiles/mebl_graph.dir/graph/dag_longest_path.cpp.o.d"
  "CMakeFiles/mebl_graph.dir/graph/interval_k_coloring.cpp.o"
  "CMakeFiles/mebl_graph.dir/graph/interval_k_coloring.cpp.o.d"
  "CMakeFiles/mebl_graph.dir/graph/min_cost_flow.cpp.o"
  "CMakeFiles/mebl_graph.dir/graph/min_cost_flow.cpp.o.d"
  "CMakeFiles/mebl_graph.dir/graph/shortest_path.cpp.o"
  "CMakeFiles/mebl_graph.dir/graph/shortest_path.cpp.o.d"
  "CMakeFiles/mebl_graph.dir/graph/spanning_tree.cpp.o"
  "CMakeFiles/mebl_graph.dir/graph/spanning_tree.cpp.o.d"
  "libmebl_graph.a"
  "libmebl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
