file(REMOVE_RECURSE
  "libmebl_graph.a"
)
