# Empty compiler generated dependencies file for mebl_graph.
# This may be replaced when dependencies are built.
