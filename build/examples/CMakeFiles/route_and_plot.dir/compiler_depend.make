# Empty compiler generated dependencies file for route_and_plot.
# This may be replaced when dependencies are built.
