file(REMOVE_RECURSE
  "CMakeFiles/route_and_plot.dir/route_and_plot.cpp.o"
  "CMakeFiles/route_and_plot.dir/route_and_plot.cpp.o.d"
  "route_and_plot"
  "route_and_plot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_and_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
