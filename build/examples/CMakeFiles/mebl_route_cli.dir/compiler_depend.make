# Empty compiler generated dependencies file for mebl_route_cli.
# This may be replaced when dependencies are built.
