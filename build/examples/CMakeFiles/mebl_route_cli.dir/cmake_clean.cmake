file(REMOVE_RECURSE
  "CMakeFiles/mebl_route_cli.dir/mebl_route_cli.cpp.o"
  "CMakeFiles/mebl_route_cli.dir/mebl_route_cli.cpp.o.d"
  "mebl_route_cli"
  "mebl_route_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mebl_route_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
