# Empty dependencies file for rasterization_demo.
# This may be replaced when dependencies are built.
