file(REMOVE_RECURSE
  "CMakeFiles/rasterization_demo.dir/rasterization_demo.cpp.o"
  "CMakeFiles/rasterization_demo.dir/rasterization_demo.cpp.o.d"
  "rasterization_demo"
  "rasterization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasterization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
