
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/design_rule_audit.cpp" "examples/CMakeFiles/design_rule_audit.dir/design_rule_audit.cpp.o" "gcc" "examples/CMakeFiles/design_rule_audit.dir/design_rule_audit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mebl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_detail.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_bench_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_global.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_place.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
