# Empty dependencies file for design_rule_audit.
# This may be replaced when dependencies are built.
