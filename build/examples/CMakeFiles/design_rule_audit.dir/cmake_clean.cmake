file(REMOVE_RECURSE
  "CMakeFiles/design_rule_audit.dir/design_rule_audit.cpp.o"
  "CMakeFiles/design_rule_audit.dir/design_rule_audit.cpp.o.d"
  "design_rule_audit"
  "design_rule_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_rule_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
