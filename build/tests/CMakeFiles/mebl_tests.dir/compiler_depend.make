# Empty compiler generated dependencies file for mebl_tests.
# This may be replaced when dependencies are built.
