
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_astar.cpp" "tests/CMakeFiles/mebl_tests.dir/test_astar.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_astar.cpp.o.d"
  "/root/repo/tests/test_bipartite_matching.cpp" "tests/CMakeFiles/mebl_tests.dir/test_bipartite_matching.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_bipartite_matching.cpp.o.d"
  "/root/repo/tests/test_circuit_generator.cpp" "tests/CMakeFiles/mebl_tests.dir/test_circuit_generator.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_circuit_generator.cpp.o.d"
  "/root/repo/tests/test_conflict_graph.cpp" "tests/CMakeFiles/mebl_tests.dir/test_conflict_graph.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_conflict_graph.cpp.o.d"
  "/root/repo/tests/test_congestion.cpp" "tests/CMakeFiles/mebl_tests.dir/test_congestion.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_congestion.cpp.o.d"
  "/root/repo/tests/test_dag_longest_path.cpp" "tests/CMakeFiles/mebl_tests.dir/test_dag_longest_path.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_dag_longest_path.cpp.o.d"
  "/root/repo/tests/test_decompose.cpp" "tests/CMakeFiles/mebl_tests.dir/test_decompose.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_decompose.cpp.o.d"
  "/root/repo/tests/test_detailed_router.cpp" "tests/CMakeFiles/mebl_tests.dir/test_detailed_router.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_detailed_router.cpp.o.d"
  "/root/repo/tests/test_geom.cpp" "tests/CMakeFiles/mebl_tests.dir/test_geom.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_geom.cpp.o.d"
  "/root/repo/tests/test_global_router.cpp" "tests/CMakeFiles/mebl_tests.dir/test_global_router.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_global_router.cpp.o.d"
  "/root/repo/tests/test_grid_graph.cpp" "tests/CMakeFiles/mebl_tests.dir/test_grid_graph.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_grid_graph.cpp.o.d"
  "/root/repo/tests/test_ilp.cpp" "tests/CMakeFiles/mebl_tests.dir/test_ilp.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_ilp.cpp.o.d"
  "/root/repo/tests/test_interval_k_coloring.cpp" "tests/CMakeFiles/mebl_tests.dir/test_interval_k_coloring.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_interval_k_coloring.cpp.o.d"
  "/root/repo/tests/test_interval_set.cpp" "tests/CMakeFiles/mebl_tests.dir/test_interval_set.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_interval_set.cpp.o.d"
  "/root/repo/tests/test_layer_assign.cpp" "tests/CMakeFiles/mebl_tests.dir/test_layer_assign.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_layer_assign.cpp.o.d"
  "/root/repo/tests/test_layer_instance_generator.cpp" "tests/CMakeFiles/mebl_tests.dir/test_layer_instance_generator.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_layer_instance_generator.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/mebl_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_min_cost_flow.cpp" "tests/CMakeFiles/mebl_tests.dir/test_min_cost_flow.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_min_cost_flow.cpp.o.d"
  "/root/repo/tests/test_multilevel.cpp" "tests/CMakeFiles/mebl_tests.dir/test_multilevel.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_multilevel.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/mebl_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_netlist_io.cpp" "tests/CMakeFiles/mebl_tests.dir/test_netlist_io.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_netlist_io.cpp.o.d"
  "/root/repo/tests/test_panel.cpp" "tests/CMakeFiles/mebl_tests.dir/test_panel.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_panel.cpp.o.d"
  "/root/repo/tests/test_pin_refine.cpp" "tests/CMakeFiles/mebl_tests.dir/test_pin_refine.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_pin_refine.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/mebl_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/mebl_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_raster.cpp" "tests/CMakeFiles/mebl_tests.dir/test_raster.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_raster.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/mebl_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_routing_graph.cpp" "tests/CMakeFiles/mebl_tests.dir/test_routing_graph.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_routing_graph.cpp.o.d"
  "/root/repo/tests/test_routing_grid.cpp" "tests/CMakeFiles/mebl_tests.dir/test_routing_grid.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_routing_grid.cpp.o.d"
  "/root/repo/tests/test_shortest_path.cpp" "tests/CMakeFiles/mebl_tests.dir/test_shortest_path.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_shortest_path.cpp.o.d"
  "/root/repo/tests/test_spanning_tree.cpp" "tests/CMakeFiles/mebl_tests.dir/test_spanning_tree.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_spanning_tree.cpp.o.d"
  "/root/repo/tests/test_stitch_plan.cpp" "tests/CMakeFiles/mebl_tests.dir/test_stitch_plan.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_stitch_plan.cpp.o.d"
  "/root/repo/tests/test_svg_writer.cpp" "tests/CMakeFiles/mebl_tests.dir/test_svg_writer.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_svg_writer.cpp.o.d"
  "/root/repo/tests/test_sweeps.cpp" "tests/CMakeFiles/mebl_tests.dir/test_sweeps.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_sweeps.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/mebl_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_track_assign.cpp" "tests/CMakeFiles/mebl_tests.dir/test_track_assign.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_track_assign.cpp.o.d"
  "/root/repo/tests/test_track_assign_ilp.cpp" "tests/CMakeFiles/mebl_tests.dir/test_track_assign_ilp.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_track_assign_ilp.cpp.o.d"
  "/root/repo/tests/test_yield.cpp" "tests/CMakeFiles/mebl_tests.dir/test_yield.cpp.o" "gcc" "tests/CMakeFiles/mebl_tests.dir/test_yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mebl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_detail.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_bench_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_global.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_place.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mebl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
