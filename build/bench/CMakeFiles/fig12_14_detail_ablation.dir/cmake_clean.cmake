file(REMOVE_RECURSE
  "CMakeFiles/fig12_14_detail_ablation.dir/fig12_14_detail_ablation.cpp.o"
  "CMakeFiles/fig12_14_detail_ablation.dir/fig12_14_detail_ablation.cpp.o.d"
  "fig12_14_detail_ablation"
  "fig12_14_detail_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_14_detail_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
