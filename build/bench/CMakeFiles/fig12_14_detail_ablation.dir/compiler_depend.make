# Empty compiler generated dependencies file for fig12_14_detail_ablation.
# This may be replaced when dependencies are built.
