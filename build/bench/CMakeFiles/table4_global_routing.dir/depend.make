# Empty dependencies file for table4_global_routing.
# This may be replaced when dependencies are built.
