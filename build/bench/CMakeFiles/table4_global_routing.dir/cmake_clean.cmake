file(REMOVE_RECURSE
  "CMakeFiles/table4_global_routing.dir/table4_global_routing.cpp.o"
  "CMakeFiles/table4_global_routing.dir/table4_global_routing.cpp.o.d"
  "table4_global_routing"
  "table4_global_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_global_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
