file(REMOVE_RECURSE
  "CMakeFiles/table5_6_layer_assignment.dir/table5_6_layer_assignment.cpp.o"
  "CMakeFiles/table5_6_layer_assignment.dir/table5_6_layer_assignment.cpp.o.d"
  "table5_6_layer_assignment"
  "table5_6_layer_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_6_layer_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
