# Empty dependencies file for table5_6_layer_assignment.
# This may be replaced when dependencies are built.
