file(REMOVE_RECURSE
  "CMakeFiles/table3_framework.dir/table3_framework.cpp.o"
  "CMakeFiles/table3_framework.dir/table3_framework.cpp.o.d"
  "table3_framework"
  "table3_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
