# Empty dependencies file for table3_framework.
# This may be replaced when dependencies are built.
