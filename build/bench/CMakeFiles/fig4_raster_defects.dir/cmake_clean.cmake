file(REMOVE_RECURSE
  "CMakeFiles/fig4_raster_defects.dir/fig4_raster_defects.cpp.o"
  "CMakeFiles/fig4_raster_defects.dir/fig4_raster_defects.cpp.o.d"
  "fig4_raster_defects"
  "fig4_raster_defects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_raster_defects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
