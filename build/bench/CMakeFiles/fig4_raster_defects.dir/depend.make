# Empty dependencies file for fig4_raster_defects.
# This may be replaced when dependencies are built.
