# Empty compiler generated dependencies file for table1_2_benchmarks.
# This may be replaced when dependencies are built.
