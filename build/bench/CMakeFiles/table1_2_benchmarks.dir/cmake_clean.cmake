file(REMOVE_RECURSE
  "CMakeFiles/table1_2_benchmarks.dir/table1_2_benchmarks.cpp.o"
  "CMakeFiles/table1_2_benchmarks.dir/table1_2_benchmarks.cpp.o.d"
  "table1_2_benchmarks"
  "table1_2_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_2_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
