# Empty dependencies file for ablation_cost_weights.
# This may be replaced when dependencies are built.
