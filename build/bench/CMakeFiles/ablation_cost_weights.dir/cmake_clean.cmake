file(REMOVE_RECURSE
  "CMakeFiles/ablation_cost_weights.dir/ablation_cost_weights.cpp.o"
  "CMakeFiles/ablation_cost_weights.dir/ablation_cost_weights.cpp.o.d"
  "ablation_cost_weights"
  "ablation_cost_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cost_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
