# Empty compiler generated dependencies file for table7_track_assignment.
# This may be replaced when dependencies are built.
