file(REMOVE_RECURSE
  "CMakeFiles/table7_track_assignment.dir/table7_track_assignment.cpp.o"
  "CMakeFiles/table7_track_assignment.dir/table7_track_assignment.cpp.o.d"
  "table7_track_assignment"
  "table7_track_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_track_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
