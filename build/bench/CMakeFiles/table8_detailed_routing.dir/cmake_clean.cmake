file(REMOVE_RECURSE
  "CMakeFiles/table8_detailed_routing.dir/table8_detailed_routing.cpp.o"
  "CMakeFiles/table8_detailed_routing.dir/table8_detailed_routing.cpp.o.d"
  "table8_detailed_routing"
  "table8_detailed_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_detailed_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
