# Empty dependencies file for table8_detailed_routing.
# This may be replaced when dependencies are built.
