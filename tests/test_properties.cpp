// Parameterized property sweeps over the whole pipeline: for a family of
// random circuits and both router configurations, the hard MEBL constraints
// and structural invariants must always hold.

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "bench_suite/circuit_generator.hpp"
#include "core/stitch_router.hpp"
#include "netlist/decompose.hpp"

namespace mebl::core {
namespace {

struct PropertyParam {
  std::uint64_t seed;
  int layers;
  bool stitch_aware;
};

void PrintTo(const PropertyParam& p, std::ostream* os) {
  *os << "seed" << p.seed << "_L" << p.layers
      << (p.stitch_aware ? "_aware" : "_baseline");
}

class PipelineProperty : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(PipelineProperty, HardConstraintsAndInvariantsHold) {
  const auto param = GetParam();
  bench_suite::BenchmarkSpec spec;
  spec.name = "prop";
  spec.um_width = 90;
  spec.um_height = 70;
  spec.layers = param.layers;
  spec.nets = 90;
  spec.pins = 260;
  const auto circuit = bench_suite::generate_circuit(spec, {}, param.seed);

  StitchAwareRouter router(circuit.grid, circuit.netlist,
                           param.stitch_aware ? RouterConfig::stitch_aware()
                                              : RouterConfig::baseline());
  const auto result = router.run();

  // Property 1: the vertical routing constraint is never violated.
  EXPECT_EQ(result.metrics.vertical_violations, 0);

  // Property 2: every via violation sits at a fixed pin location.
  const auto& grid = *result.grid;
  const auto& stitch = circuit.grid.stitch();
  std::unordered_set<geom::Point> pin_locations;
  for (const auto& pin : circuit.netlist.pins()) pin_locations.insert(pin.pos);
  for (geom::Coord y = 0; y < circuit.grid.height(); ++y) {
    for (const geom::Coord x : stitch.lines()) {
      for (geom::LayerId l = 0; l + 1 < circuit.grid.num_layers(); ++l) {
        const auto net = grid.owner({x, y, l});
        if (net != -1 &&
            grid.owner({x, y, static_cast<geom::LayerId>(l + 1)}) == net) {
          EXPECT_TRUE(pin_locations.count({x, y}))
              << "via violation off-pin at (" << x << "," << y << ")";
        }
      }
    }
  }

  // Property 3: no vertical wire runs along a stitching line — same-net
  // y-adjacency on a vertical layer never occurs on a line column (except
  // through pin via stacks, which claim no two y-adjacent nodes).
  for (const geom::LayerId l :
       circuit.grid.layers_with(geom::Orientation::kVertical)) {
    for (const geom::Coord x : stitch.lines()) {
      for (geom::Coord y = 0; y + 1 < circuit.grid.height(); ++y) {
        const auto net = grid.owner({x, y, l});
        if (net == -1) continue;
        EXPECT_TRUE(grid.owner({x, y + 1, l}) != net ||
                    (pin_locations.count({x, y}) &&
                     pin_locations.count({x, y + 1})))
            << "vertical wire on stitch line at (" << x << "," << y << ",L"
            << l << ")";
      }
    }
  }

  // Property 4: counting consistency.
  EXPECT_EQ(result.metrics.short_polygons,
            eval::count_short_polygons(grid));
  EXPECT_LE(result.metrics.routed_nets, result.metrics.total_nets);

  // Property 5: a routed net's pins are all claimed by that net.
  std::vector<bool> net_ok(circuit.netlist.num_nets(), true);
  const auto subnets = netlist::decompose_all(circuit.netlist);
  for (std::size_t i = 0; i < subnets.size(); ++i)
    if (!result.detail.subnet_routed[i])
      net_ok[static_cast<std::size_t>(subnets[i].net)] = false;
  for (const auto& pin : circuit.netlist.pins()) {
    if (net_ok[static_cast<std::size_t>(pin.net)]) {
      EXPECT_EQ(grid.owner({pin.pos.x, pin.pos.y, 0}), pin.net);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty,
    ::testing::Values(PropertyParam{1, 3, true}, PropertyParam{1, 3, false},
                      PropertyParam{2, 3, true}, PropertyParam{2, 6, true},
                      PropertyParam{3, 6, false}, PropertyParam{4, 4, true},
                      PropertyParam{5, 3, true}, PropertyParam{5, 5, true}),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      std::ostringstream name;
      PrintTo(info.param, &name);
      return name.str();
    });

/// Connectivity property: every routed 2-pin subnet's endpoints are joined
/// by same-net geometry (flood fill over the occupancy grid).
class ConnectivityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConnectivityProperty, RoutedSubnetsAreConnected) {
  bench_suite::BenchmarkSpec spec;
  spec.name = "conn";
  spec.um_width = 70;
  spec.um_height = 70;
  spec.layers = 3;
  spec.nets = 60;
  spec.pins = 150;
  const auto circuit = bench_suite::generate_circuit(spec, {}, GetParam());
  StitchAwareRouter router(circuit.grid, circuit.netlist);
  const auto result = router.run();
  const auto subnets = netlist::decompose_all(circuit.netlist);
  const auto& grid = *result.grid;

  // Flood fill per net over claimed nodes.
  const auto reachable = [&](netlist::NetId net, geom::Point3 from,
                             geom::Point3 to) {
    std::vector<geom::Point3> stack{from};
    std::unordered_set<std::size_t> seen{grid.index(from)};
    while (!stack.empty()) {
      const auto p = stack.back();
      stack.pop_back();
      if (p == to) return true;
      const geom::Point3 neighbors[6] = {
          {static_cast<geom::Coord>(p.x + 1), p.y, p.layer},
          {static_cast<geom::Coord>(p.x - 1), p.y, p.layer},
          {p.x, static_cast<geom::Coord>(p.y + 1), p.layer},
          {p.x, static_cast<geom::Coord>(p.y - 1), p.layer},
          {p.x, p.y, static_cast<geom::LayerId>(p.layer + 1)},
          {p.x, p.y, static_cast<geom::LayerId>(p.layer - 1)}};
      for (const auto q : neighbors) {
        if (!circuit.grid.in_bounds(q)) continue;
        if (grid.owner(q) != net) continue;
        if (seen.insert(grid.index(q)).second) stack.push_back(q);
      }
    }
    return false;
  };

  for (std::size_t i = 0; i < subnets.size(); ++i) {
    if (!result.detail.subnet_routed[i]) continue;
    EXPECT_TRUE(reachable(subnets[i].net, {subnets[i].a.x, subnets[i].a.y, 0},
                          {subnets[i].b.x, subnets[i].b.y, 0}))
        << "subnet " << i << " of net " << subnets[i].net << " disconnected";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConnectivityProperty,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace mebl::core
