#include "netlist/decompose.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mebl::netlist {
namespace {

TEST(Decompose, TwoPinNetYieldsOneSubnet) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.add_pin(a, {0, 0});
  nl.add_pin(a, {5, 5});
  const auto subnets = decompose_net(nl, a);
  ASSERT_EQ(subnets.size(), 1u);
  EXPECT_EQ(subnets[0].net, a);
  EXPECT_EQ(subnets[0].hpwl(), 10);
}

TEST(Decompose, SinglePinNetYieldsNothing) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.add_pin(a, {0, 0});
  EXPECT_TRUE(decompose_net(nl, a).empty());
}

TEST(Decompose, NPinNetYieldsNMinusOneSubnets) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  for (int i = 0; i < 7; ++i)
    nl.add_pin(a, {static_cast<geom::Coord>(i * 3), static_cast<geom::Coord>(i % 2)});
  EXPECT_EQ(decompose_net(nl, a).size(), 6u);
}

TEST(Decompose, CollinearPinsChainAdjacently) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.add_pin(a, {0, 0});
  nl.add_pin(a, {10, 0});
  nl.add_pin(a, {20, 0});
  const auto subnets = decompose_net(nl, a);
  ASSERT_EQ(subnets.size(), 2u);
  // MST must use the two adjacent 10-length edges, not the 20-length one.
  geom::Coord total = 0;
  for (const auto& s : subnets) total += s.hpwl();
  EXPECT_EQ(total, 20);
}

TEST(Decompose, MstIsMinimalAgainstBruteForceOnTriangles) {
  // For any 3 pins, MST total = sum of two smallest pairwise distances.
  util::Rng rng(4);
  for (int round = 0; round < 200; ++round) {
    Netlist nl;
    const NetId a = nl.add_net("a");
    geom::Point pts[3];
    for (auto& p : pts) {
      p = {static_cast<geom::Coord>(rng.uniform_int(0, 30)),
           static_cast<geom::Coord>(rng.uniform_int(0, 30))};
      nl.add_pin(a, p);
    }
    const auto subnets = decompose_net(nl, a);
    ASSERT_EQ(subnets.size(), 2u);
    geom::Coord total = 0;
    for (const auto& s : subnets) total += s.hpwl();
    const geom::Coord d01 = manhattan(pts[0], pts[1]);
    const geom::Coord d02 = manhattan(pts[0], pts[2]);
    const geom::Coord d12 = manhattan(pts[1], pts[2]);
    const geom::Coord expect = d01 + d02 + d12 - std::max({d01, d02, d12});
    EXPECT_EQ(total, expect);
  }
}

TEST(Decompose, AllCoversEveryNet) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.add_pin(a, {0, 0});
  nl.add_pin(a, {1, 1});
  const NetId b = nl.add_net("b");
  nl.add_pin(b, {2, 2});
  nl.add_pin(b, {3, 3});
  nl.add_pin(b, {4, 4});
  const auto all = decompose_all(nl);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].net, a);
  EXPECT_EQ(all[1].net, b);
  EXPECT_EQ(all[2].net, b);
}

}  // namespace
}  // namespace mebl::netlist
