#include <gtest/gtest.h>

#include "geom/interval.hpp"
#include "util/rng.hpp"

namespace mebl::geom {
namespace {

TEST(Interval, DefaultIsEmpty) {
  Interval iv;
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv.length(), 0);
}

TEST(Interval, LengthIsClosed) { EXPECT_EQ((Interval{3, 5}).length(), 3); }

TEST(Interval, OverlapsClosed) {
  EXPECT_TRUE((Interval{0, 5}).overlaps({5, 9}));
  EXPECT_FALSE((Interval{0, 5}).overlaps({6, 9}));
  EXPECT_FALSE(Interval{}.overlaps({0, 9}));
}

TEST(Interval, IntersectAndHull) {
  EXPECT_EQ((Interval{0, 5}).intersect({3, 9}), (Interval{3, 5}));
  EXPECT_TRUE((Interval{0, 2}).intersect({4, 6}).empty());
  EXPECT_EQ((Interval{0, 2}).hull({4, 6}), (Interval{0, 6}));
}

TEST(IntervalSet, InsertMergesAdjacent) {
  IntervalSet set;
  set.insert({0, 2});
  set.insert({3, 5});  // adjacent -> merged
  ASSERT_EQ(set.members().size(), 1u);
  EXPECT_EQ(set.members()[0], (Interval{0, 5}));
}

TEST(IntervalSet, InsertMergesOverlapping) {
  IntervalSet set;
  set.insert({0, 4});
  set.insert({8, 10});
  set.insert({3, 9});  // bridges both
  ASSERT_EQ(set.members().size(), 1u);
  EXPECT_EQ(set.members()[0], (Interval{0, 10}));
}

TEST(IntervalSet, KeepsDisjointSorted) {
  IntervalSet set;
  set.insert({10, 12});
  set.insert({0, 2});
  set.insert({5, 6});
  ASSERT_EQ(set.members().size(), 3u);
  EXPECT_EQ(set.members()[0].lo, 0);
  EXPECT_EQ(set.members()[1].lo, 5);
  EXPECT_EQ(set.members()[2].lo, 10);
}

TEST(IntervalSet, EraseSplits) {
  IntervalSet set;
  set.insert({0, 10});
  set.erase({4, 6});
  ASSERT_EQ(set.members().size(), 2u);
  EXPECT_EQ(set.members()[0], (Interval{0, 3}));
  EXPECT_EQ(set.members()[1], (Interval{7, 10}));
}

TEST(IntervalSet, ContainsAndOverlaps) {
  IntervalSet set;
  set.insert({2, 4});
  set.insert({8, 9});
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(5));
  EXPECT_TRUE(set.overlaps({4, 8}));
  EXPECT_FALSE(set.overlaps({5, 7}));
}

TEST(IntervalSet, TotalLength) {
  IntervalSet set;
  set.insert({0, 4});
  set.insert({10, 11});
  EXPECT_EQ(set.total_length(), 7);
}

/// Property test: the set behaves like a reference bool-vector under a
/// random insert/erase workload.
TEST(IntervalSet, MatchesReferenceModelUnderRandomOps) {
  util::Rng rng(99);
  constexpr Coord kUniverse = 64;
  for (int round = 0; round < 50; ++round) {
    IntervalSet set;
    std::vector<bool> model(kUniverse, false);
    for (int op = 0; op < 60; ++op) {
      const Coord lo = static_cast<Coord>(rng.uniform_int(0, kUniverse - 1));
      const Coord hi =
          static_cast<Coord>(rng.uniform_int(lo, std::min<Coord>(lo + 12, kUniverse - 1)));
      if (rng.chance(0.6)) {
        set.insert({lo, hi});
        for (Coord v = lo; v <= hi; ++v) model[static_cast<std::size_t>(v)] = true;
      } else {
        set.erase({lo, hi});
        for (Coord v = lo; v <= hi; ++v) model[static_cast<std::size_t>(v)] = false;
      }
      for (Coord v = 0; v < kUniverse; ++v)
        ASSERT_EQ(set.contains(v), model[static_cast<std::size_t>(v)])
            << "round " << round << " op " << op << " at " << v;
      // Invariant: members are sorted, disjoint, non-adjacent.
      const auto& m = set.members();
      for (std::size_t i = 0; i + 1 < m.size(); ++i)
        ASSERT_GT(m[i + 1].lo, m[i].hi + 1);
    }
  }
}

}  // namespace
}  // namespace mebl::geom
