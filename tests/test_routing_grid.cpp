#include "grid/routing_grid.hpp"

#include <gtest/gtest.h>

#include "grid/gcell.hpp"

namespace mebl::grid {
namespace {

using geom::Orientation;

RoutingGrid make_grid(geom::Coord w = 90, geom::Coord h = 60, int layers = 3,
                      geom::Coord tile = 30) {
  return RoutingGrid(w, h, layers, tile, StitchPlan(w, 15));
}

TEST(RoutingGrid, LayerDirectionsAlternateStartingHorizontal) {
  const RoutingGrid grid = make_grid(90, 60, 6);
  EXPECT_EQ(grid.layer_dir(1), Orientation::kHorizontal);
  EXPECT_EQ(grid.layer_dir(2), Orientation::kVertical);
  EXPECT_EQ(grid.layer_dir(3), Orientation::kHorizontal);
  EXPECT_EQ(grid.layer_dir(6), Orientation::kVertical);
}

TEST(RoutingGrid, LayersWithDirection) {
  const RoutingGrid grid = make_grid(90, 60, 3);
  const auto h = grid.layers_with(Orientation::kHorizontal);
  const auto v = grid.layers_with(Orientation::kVertical);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 1);
  EXPECT_EQ(h[1], 3);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 2);
}

TEST(RoutingGrid, NumLayersIncludesPinLayer) {
  EXPECT_EQ(make_grid(90, 60, 3).num_layers(), 4);
  EXPECT_EQ(make_grid(90, 60, 6).num_layers(), 7);
}

TEST(RoutingGrid, TileCounts) {
  const RoutingGrid grid = make_grid(90, 60, 3, 30);
  EXPECT_EQ(grid.tiles_x(), 3);
  EXPECT_EQ(grid.tiles_y(), 2);
}

TEST(RoutingGrid, PartialLastTileClipped) {
  const RoutingGrid grid(100, 70, 3, 30, StitchPlan(100, 15));
  EXPECT_EQ(grid.tiles_x(), 4);
  EXPECT_EQ(grid.tile_x_span(3), (geom::Interval{90, 99}));
  EXPECT_EQ(grid.tiles_y(), 3);
  EXPECT_EQ(grid.tile_y_span(2), (geom::Interval{60, 69}));
}

TEST(RoutingGrid, TileOfCoordinates) {
  const RoutingGrid grid = make_grid();
  EXPECT_EQ(grid.tile_of_x(0), 0);
  EXPECT_EQ(grid.tile_of_x(29), 0);
  EXPECT_EQ(grid.tile_of_x(30), 1);
  EXPECT_EQ(grid.tile_of_y(59), 1);
}

TEST(RoutingGrid, InBounds) {
  const RoutingGrid grid = make_grid();
  EXPECT_TRUE(grid.in_bounds(geom::Point{0, 0}));
  EXPECT_TRUE(grid.in_bounds(geom::Point{89, 59}));
  EXPECT_FALSE(grid.in_bounds(geom::Point{90, 0}));
  EXPECT_TRUE(grid.in_bounds(geom::Point3{5, 5, 3}));
  EXPECT_FALSE(grid.in_bounds(geom::Point3{5, 5, 4}));
}

TEST(CapacityModel, HorizontalEdgeCapacityCountsHorizontalLayers) {
  const RoutingGrid grid = make_grid(90, 60, 3, 30);  // H layers: 1 and 3
  const CapacityModel model(grid);
  EXPECT_EQ(model.horizontal_edge_capacity(0, 0), 30 * 2);
}

TEST(CapacityModel, VerticalEdgeCapacityLosesStitchTracks) {
  const RoutingGrid grid = make_grid(90, 60, 3, 30);  // V layer: 2
  const CapacityModel model(grid);
  // Tile column 0 spans x in [0,29] and contains the line x=15.
  EXPECT_EQ(model.vertical_edge_capacity(0, 0), 29);
  EXPECT_EQ(model.vertical_edge_capacity_no_stitch(0, 0), 30);
}

TEST(CapacityModel, LineEndCapacityExcludesUnfriendlyRegions) {
  const RoutingGrid grid = make_grid(90, 60, 3, 30);
  const CapacityModel model(grid);
  // Column 0: x in [0,29]; unfriendly: 14,15,16 (line 15) and 29 (line 30).
  EXPECT_EQ(model.line_end_capacity(0, 0), 26);
}

}  // namespace
}  // namespace mebl::grid
