#include "assign/panel.hpp"

#include <gtest/gtest.h>

namespace mebl::assign {
namespace {

using geom::Orientation;
using grid::GCellId;

global::GlobalResult make_result(std::vector<std::vector<GCellId>> paths) {
  global::GlobalResult result;
  for (auto& tiles : paths) {
    global::TilePath path;
    path.net = static_cast<netlist::NetId>(result.paths.size());
    path.routed = true;
    path.tiles = std::move(tiles);
    result.paths.push_back(std::move(path));
  }
  return result;
}

grid::RoutingGrid make_grid() {
  return grid::RoutingGrid(300, 300, 3, 30, grid::StitchPlan(300, 15));
}

TEST(Panel, ExtractsSingleHorizontalRun) {
  const auto grid = make_grid();
  const auto result = make_result({{{0, 2}, {1, 2}, {2, 2}}});
  const auto plan = extract_runs(result, grid);
  ASSERT_EQ(plan.runs.size(), 1u);
  EXPECT_EQ(plan.runs[0].dir, Orientation::kHorizontal);
  EXPECT_EQ(plan.runs[0].fixed_tile, 2);
  EXPECT_EQ(plan.runs[0].span, (geom::Interval{0, 2}));
}

TEST(Panel, ExtractsLShape) {
  const auto grid = make_grid();
  // Right two tiles, then down two tiles.
  const auto result = make_result({{{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}}});
  const auto plan = extract_runs(result, grid);
  ASSERT_EQ(plan.runs.size(), 2u);
  EXPECT_EQ(plan.runs[0].dir, Orientation::kHorizontal);
  EXPECT_EQ(plan.runs[1].dir, Orientation::kVertical);
  EXPECT_EQ(plan.runs[1].fixed_tile, 2);
  EXPECT_EQ(plan.runs[1].span, (geom::Interval{0, 2}));
  // The vertical run's upper (lo) end connects to a wire that came from the
  // left (continuation toward smaller x); its lower end is terminal.
  EXPECT_EQ(plan.runs[1].lo_continuation, -1);
  EXPECT_EQ(plan.runs[1].hi_continuation, 0);
}

TEST(Panel, ZShapeContinuations) {
  const auto grid = make_grid();
  // down, right, down: the middle horizontal run joins two vertical runs.
  const auto result = make_result(
      {{{0, 0}, {0, 1}, {1, 1}, {2, 1}, {2, 2}}});
  const auto plan = extract_runs(result, grid);
  ASSERT_EQ(plan.runs.size(), 3u);
  const auto& v1 = plan.runs[0];
  const auto& v2 = plan.runs[2];
  EXPECT_EQ(v1.dir, Orientation::kVertical);
  EXPECT_EQ(v1.span, (geom::Interval{0, 1}));
  EXPECT_EQ(v1.lo_continuation, 0);    // starts at the pin
  EXPECT_EQ(v1.hi_continuation, +1);   // wire leaves to larger x
  EXPECT_EQ(v2.dir, Orientation::kVertical);
  EXPECT_EQ(v2.lo_continuation, -1);   // wire arrives from smaller x
  EXPECT_EQ(v2.hi_continuation, 0);
}

TEST(Panel, UpwardVerticalRunMapsEndsCorrectly) {
  const auto grid = make_grid();
  // Path going up (decreasing ty), then right.
  const auto result = make_result({{{1, 3}, {1, 2}, {1, 1}, {2, 1}}});
  const auto plan = extract_runs(result, grid);
  ASSERT_EQ(plan.runs.size(), 2u);
  const auto& run = plan.runs[0];
  EXPECT_EQ(run.dir, Orientation::kVertical);
  EXPECT_EQ(run.span, (geom::Interval{1, 3}));
  // Path-start (pin) end is at ty=3 (span hi); the wire continues to larger
  // x at the ty=1 (span lo) end.
  EXPECT_EQ(run.hi_continuation, 0);
  EXPECT_EQ(run.lo_continuation, +1);
}

TEST(Panel, UnroutedAndTrivialPathsYieldNoRuns) {
  const auto grid = make_grid();
  auto result = make_result({{{0, 0}}});
  global::TilePath unrouted;
  unrouted.net = 9;
  unrouted.routed = false;
  result.paths.push_back(unrouted);
  const auto plan = extract_runs(result, grid);
  EXPECT_TRUE(plan.runs.empty());
  EXPECT_EQ(plan.runs_of_path.size(), 2u);
  EXPECT_TRUE(plan.runs_of_path[0].empty());
}

TEST(Panel, PanelLookups) {
  const auto grid = make_grid();
  const auto result = make_result({
      {{0, 0}, {0, 1}},          // vertical in column 0
      {{2, 0}, {2, 1}, {2, 2}},  // vertical in column 2
      {{0, 3}, {1, 3}},          // horizontal in row 3
  });
  const auto plan = extract_runs(result, grid);
  EXPECT_EQ(runs_in_column_panel(plan, 0).size(), 1u);
  EXPECT_EQ(runs_in_column_panel(plan, 1).size(), 0u);
  EXPECT_EQ(runs_in_column_panel(plan, 2).size(), 1u);
  EXPECT_EQ(runs_in_row_panel(plan, 3).size(), 1u);
}

TEST(Panel, RunsOfPathPreserveOrder) {
  const auto grid = make_grid();
  const auto result =
      make_result({{{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}, {3, 2}}});
  const auto plan = extract_runs(result, grid);
  ASSERT_EQ(plan.runs_of_path[0].size(), plan.runs.size());
  // Alternating H/V runs in path order.
  const auto& ids = plan.runs_of_path[0];
  for (std::size_t i = 0; i + 1 < ids.size(); ++i)
    EXPECT_NE(plan.runs[ids[i]].dir, plan.runs[ids[i + 1]].dir);
}

}  // namespace
}  // namespace mebl::assign
