#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace mebl::netlist {
namespace {

TEST(Netlist, AddNetsAndPins) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  nl.add_pin(a, {1, 2});
  nl.add_pin(a, {3, 4});
  nl.add_pin(b, {5, 6});
  EXPECT_EQ(nl.num_nets(), 2u);
  EXPECT_EQ(nl.num_pins(), 3u);
  EXPECT_EQ(nl.net(a).degree(), 2u);
  EXPECT_EQ(nl.net(b).degree(), 1u);
}

TEST(Netlist, PinsKnowTheirNet) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const PinId p = nl.add_pin(a, {7, 8});
  EXPECT_EQ(nl.pin(p).net, a);
  EXPECT_EQ(nl.pin(p).pos, (geom::Point{7, 8}));
}

TEST(Netlist, NetBbox) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.add_pin(a, {1, 9});
  nl.add_pin(a, {5, 2});
  nl.add_pin(a, {3, 3});
  EXPECT_EQ(nl.net_bbox(a), geom::Rect(1, 2, 5, 9));
}

TEST(Netlist, NetHpwl) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.add_pin(a, {0, 0});
  nl.add_pin(a, {4, 7});
  EXPECT_EQ(nl.net_hpwl(a), 11);
}

TEST(Netlist, HpwlOfSinglePinNetIsZero) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.add_pin(a, {4, 4});
  EXPECT_EQ(nl.net_hpwl(a), 0);
}

TEST(Subnet, BboxAndHpwl) {
  const Subnet s{0, {2, 3}, {7, 1}};
  EXPECT_EQ(s.hpwl(), 7);
  EXPECT_EQ(s.bbox(), geom::Rect(2, 1, 7, 3));
}

}  // namespace
}  // namespace mebl::netlist
