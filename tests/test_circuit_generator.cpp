#include "bench_suite/circuit_generator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <unordered_set>

namespace mebl::bench_suite {
namespace {

TEST(CircuitGenerator, SuitesMatchPaperTables) {
  const auto mcnc = mcnc_suite();
  ASSERT_EQ(mcnc.size(), 9u);
  EXPECT_EQ(mcnc[0].name, "Struct");
  EXPECT_EQ(mcnc[0].nets, 1920);
  EXPECT_EQ(mcnc[0].pins, 5471);
  EXPECT_EQ(mcnc[0].layers, 3);
  EXPECT_EQ(mcnc[8].name, "S38584");
  EXPECT_EQ(mcnc[8].pins, 42931);

  const auto faraday = faraday_suite();
  ASSERT_EQ(faraday.size(), 5u);
  EXPECT_EQ(faraday[0].name, "Dma");
  EXPECT_EQ(faraday[0].layers, 6);
  EXPECT_EQ(faraday[3].nets, 34034);
}

TEST(CircuitGenerator, FindSpecIsCaseInsensitive) {
  EXPECT_NE(find_spec("s38417"), nullptr);
  EXPECT_NE(find_spec("DMA"), nullptr);
  EXPECT_EQ(find_spec("nonexistent"), nullptr);
}

TEST(CircuitGenerator, GeneratesExactCounts) {
  const auto spec = *find_spec("S5378");
  const auto circuit = generate_circuit(spec, {}, 1);
  EXPECT_EQ(circuit.netlist.num_nets(), static_cast<std::size_t>(spec.nets));
  EXPECT_EQ(circuit.netlist.num_pins(), static_cast<std::size_t>(spec.pins));
  EXPECT_EQ(circuit.grid.num_routing_layers(), spec.layers);
}

TEST(CircuitGenerator, PinsAreUniqueAndInBounds) {
  const auto spec = *find_spec("S9234");
  const auto circuit = generate_circuit(spec, {}, 2);
  std::unordered_set<geom::Point> seen;
  for (const auto& pin : circuit.netlist.pins()) {
    EXPECT_TRUE(circuit.grid.in_bounds(pin.pos));
    EXPECT_TRUE(seen.insert(pin.pos).second);
  }
}

TEST(CircuitGenerator, DeterministicForSameSeed) {
  const auto spec = *find_spec("Primary1");
  const auto a = generate_circuit(spec, {}, 7);
  const auto b = generate_circuit(spec, {}, 7);
  ASSERT_EQ(a.netlist.num_pins(), b.netlist.num_pins());
  for (std::size_t i = 0; i < a.netlist.num_pins(); ++i)
    EXPECT_EQ(a.netlist.pins()[i].pos, b.netlist.pins()[i].pos);
}

TEST(CircuitGenerator, DifferentSeedsDiffer) {
  const auto spec = *find_spec("Primary1");
  const auto a = generate_circuit(spec, {}, 7);
  const auto b = generate_circuit(spec, {}, 8);
  int same = 0;
  for (std::size_t i = 0; i < a.netlist.num_pins(); ++i)
    if (a.netlist.pins()[i].pos == b.netlist.pins()[i].pos) ++same;
  EXPECT_LT(same, static_cast<int>(a.netlist.num_pins()) / 10);
}

TEST(CircuitGenerator, EveryNetHasAtLeastTwoPins) {
  const auto spec = *find_spec("S5378");
  const auto circuit = generate_circuit(spec, {}, 3);
  for (const auto& net : circuit.netlist.nets())
    EXPECT_GE(net.degree(), 2u) << net.name;
}

TEST(CircuitGenerator, DegreeCapRespected) {
  GeneratorConfig config;
  const auto spec = *find_spec("Dma");  // high average degree
  const auto circuit = generate_circuit(spec, config, 4);
  for (const auto& net : circuit.netlist.nets())
    EXPECT_LE(net.degree(), static_cast<std::size_t>(config.max_degree));
}

TEST(CircuitGenerator, AspectRatioRoughlyPreserved) {
  const auto spec = *find_spec("Primary2");  // wide circuit (1.6:1)
  const auto circuit = generate_circuit(spec, {}, 5);
  const double got = static_cast<double>(circuit.grid.width()) /
                     static_cast<double>(circuit.grid.height());
  EXPECT_NEAR(got, spec.um_width / spec.um_height, 0.35);
}

TEST(CircuitGeneratorValidation, RejectsDegenerateSpecsWithClearErrors) {
  const BenchmarkSpec good = *find_spec("S5378");

  BenchmarkSpec spec = good;
  spec.nets = 0;
  EXPECT_THROW(generate_circuit(spec, {}, 1), std::invalid_argument);

  spec = good;
  spec.pins = spec.nets;  // fewer than two pins per net on average
  EXPECT_THROW(generate_circuit(spec, {}, 1), std::invalid_argument);

  spec = good;
  spec.layers = 0;
  EXPECT_THROW(generate_circuit(spec, {}, 1), std::invalid_argument);

  spec = good;
  spec.um_width = -1.0;
  EXPECT_THROW(generate_circuit(spec, {}, 1), std::invalid_argument);

  spec = good;
  spec.feature_nm = 0;
  EXPECT_THROW(generate_circuit(spec, {}, 1), std::invalid_argument);
}

TEST(CircuitGeneratorValidation, RejectsDegenerateConfigs) {
  const BenchmarkSpec spec = *find_spec("S5378");

  GeneratorConfig config;
  config.pin_density = 0.0;  // laptop scale derives the area from this
  EXPECT_THROW(generate_circuit(spec, config, 1), std::invalid_argument);

  config = GeneratorConfig{};
  config.tile_size = 1;
  EXPECT_THROW(generate_circuit(spec, config, 1), std::invalid_argument);

  config = GeneratorConfig{};
  config.stitch_epsilon = 8;  // 2e+1 >= pitch leaves no friendly track
  EXPECT_THROW(generate_circuit(spec, config, 1), std::invalid_argument);

  config = GeneratorConfig{};
  config.global_net_fraction = 1.5;
  EXPECT_THROW(generate_circuit(spec, config, 1), std::invalid_argument);

  config = GeneratorConfig{};
  config.local_spread = -2.0;
  EXPECT_THROW(generate_circuit(spec, config, 1), std::invalid_argument);

  config = GeneratorConfig{};
  config.max_degree = 1;
  EXPECT_THROW(generate_circuit(spec, config, 1), std::invalid_argument);
}

TEST(CircuitGeneratorValidation, ErrorNamesTheOffendingParameter) {
  BenchmarkSpec spec = *find_spec("S5378");
  spec.nets = -3;
  try {
    (void)generate_circuit(spec, {}, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nets"), std::string::npos)
        << "message should name the parameter: " << e.what();
  }
}

TEST(CircuitGeneratorFullScale, ExtentsComeFromThePhysicalDie) {
  // A small die keeps the unit test fast while exercising the full-scale
  // extent rule: tracks = um * 1000 / (2 * feature_nm) per axis.
  BenchmarkSpec spec;
  spec.name = "unit_full";
  spec.um_width = 43.2;   // 600 tracks at a 72 nm pitch (whole tiles)
  spec.um_height = 21.6;  // 300 tracks
  spec.layers = 3;
  spec.nets = 40;
  spec.pins = 120;
  spec.feature_nm = 36;
  const auto circuit =
      generate_circuit(spec, GeneratorConfig::full_scale(), 7);
  EXPECT_EQ(circuit.grid.width(), 600);   // 43.2 um / (2 * 36 nm)
  EXPECT_EQ(circuit.grid.height(), 300);  // 21.6 um / (2 * 36 nm)
  EXPECT_EQ(circuit.netlist.num_nets(), 40u);
  EXPECT_EQ(circuit.netlist.num_pins(), 120u);
}

TEST(CircuitGeneratorFullScale, RejectsPinCountsTheDieCannotHold) {
  BenchmarkSpec spec;
  spec.name = "unit_overfull";
  spec.um_width = 1.0;  // rounds up to the 60x60-track floor (two tiles)
  spec.um_height = 1.0;
  spec.layers = 3;
  spec.nets = 100;
  spec.pins = 1000;  // > a quarter of the 3600 track points
  spec.feature_nm = 36;
  EXPECT_THROW(generate_circuit(spec, GeneratorConfig::full_scale(), 7),
               std::invalid_argument);
}

TEST(CircuitGenerator, DensityNearTarget) {
  GeneratorConfig config;
  config.pin_density = 0.06;
  const auto spec = *find_spec("S13207");
  const auto circuit = generate_circuit(spec, config, 6);
  const double density =
      static_cast<double>(circuit.netlist.num_pins()) /
      (static_cast<double>(circuit.grid.width()) * circuit.grid.height());
  EXPECT_NEAR(density, config.pin_density, 0.02);
}

}  // namespace
}  // namespace mebl::bench_suite
