// mebl::report unit tests: deterministic JSON round-trips, run-report
// serialization, spatial maps vs the RoutingGrid geometry, per-net audits,
// and the `mebl_report diff` regression-gate semantics (exit-code matrix).

#include <algorithm>
#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "bench_suite/circuit_generator.hpp"
#include "core/stitch_router.hpp"
#include "netlist/decompose.hpp"
#include "report/diff.hpp"
#include "report/json.hpp"
#include "report/report.hpp"
#include "report/spatial.hpp"
#include "telemetry/keys.hpp"

namespace {

using namespace mebl;
using report::Json;

// ------------------------------------------------------------------ JSON

TEST(ReportJson, DumpParsesBackByteIdentical) {
  Json doc = Json::object();
  doc["int"] = std::int64_t{42};
  doc["negative"] = std::int64_t{-7};
  doc["double"] = 0.1;
  doc["whole_double"] = 2.0;
  doc["bool"] = true;
  doc["null"] = nullptr;
  doc["string"] = "line\nbreak \"quoted\" \\slash\t";
  Json arr = Json::array();
  arr.push_back(std::int64_t{1});
  arr.push_back("two");
  arr.push_back(3.5);
  doc["array"] = std::move(arr);
  doc["nested"]["inner"] = std::int64_t{1};

  const std::string text = doc.dump();
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), text);
  EXPECT_EQ(*parsed, doc);
}

TEST(ReportJson, IntAndDoubleAreDistinctKinds) {
  const auto parsed = Json::parse("{\"a\": 2, \"b\": 2.0}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get("a")->kind(), Json::Kind::kInt);
  EXPECT_EQ(parsed->get("b")->kind(), Json::Kind::kDouble);
  // A whole-valued double keeps its '.0' marker, so the kind survives a
  // second round-trip too.
  EXPECT_EQ(Json::parse(parsed->dump())->dump(), parsed->dump());
}

TEST(ReportJson, MembersDumpNameSorted) {
  Json doc = Json::object();
  doc["zebra"] = std::int64_t{1};
  doc["alpha"] = std::int64_t{2};
  const std::string text = doc.dump();
  EXPECT_LT(text.find("alpha"), text.find("zebra"));
}

TEST(ReportJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
}

TEST(ReportJson, FormatDoubleRoundTrips) {
  for (const double v : {0.1, 1.0 / 3.0, 1e-30, 12345.6789, 2.0, -0.25}) {
    const std::string text = report::format_double(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
    EXPECT_NE(text.find_first_of(".eE"), std::string::npos) << text;
  }
}

// ----------------------------------------------------- routed run fixture

struct RoutedRun {
  bench_suite::GeneratedCircuit circuit;
  core::RoutingResult result;
  report::RunReportBuilder builder;

  explicit RoutedRun(bench_suite::GeneratedCircuit c)
      : circuit(std::move(c)) {}
};

/// Route the smallest circuit once and share it across tests (routing takes
/// ~1 s; every consumer here is read-only).
const RoutedRun& routed_run() {
  static const RoutedRun* run = [] {
    const auto* spec = bench_suite::find_spec("Struct");
    auto* r = new RoutedRun(bench_suite::generate_circuit(*spec, {}, 1));
    core::StitchAwareRouter router(
        r->circuit.grid, r->circuit.netlist,
        core::RouterConfig::stitch_aware().with_threads(0));
    router.add_observer(&r->builder);
    r->result = router.run();
    return r;
  }();
  return *run;
}

// ------------------------------------------------------------ run report

TEST(RunReport, BuilderRecordsEveryStage) {
  const auto& run = routed_run();
  const auto& stages = run.builder.stages();
  ASSERT_EQ(stages.size(), 5u);
  EXPECT_EQ(stages[0].name, "global");
  EXPECT_EQ(stages[1].name, "layer_assign");
  EXPECT_EQ(stages[2].name, "track_assign");
  EXPECT_EQ(stages[3].name, "detail");
  EXPECT_EQ(stages[4].name, "metrics");
}

TEST(RunReport, QualityCountersLandInsideTheirStage) {
  // Regression test: eval.* counters used to be added after the metrics
  // stage boundary, so per-stage observers never saw them.
  const auto& run = routed_run();
  const auto& metrics_stage = run.builder.stages().back();
  EXPECT_EQ(metrics_stage.counters.value(telemetry::keys::kShortPolygons),
            run.result.metrics.short_polygons);
  EXPECT_EQ(metrics_stage.counters.value(telemetry::keys::kWirelength),
            run.result.metrics.wirelength);
  EXPECT_EQ(metrics_stage.counters.value(telemetry::keys::kTotalNets),
            run.result.metrics.total_nets);
  // And the global stage carries its own quality counters.
  const auto& global_stage = run.builder.stages().front();
  EXPECT_EQ(global_stage.counters.value(telemetry::keys::kGlobalWirelength),
            run.result.global.wirelength);
}

TEST(RunReport, SerializationRoundTripsByteIdentical) {
  const auto& run = routed_run();
  const report::RunReport report =
      run.builder.build(run.result, run.circuit.grid, run.circuit.netlist);

  for (const bool timing : {true, false}) {
    report::WriteOptions options;
    options.include_timing = timing;
    const std::string text = report::serialize(report, options);
    const auto parsed = report::parse_run_report_text(text);
    ASSERT_TRUE(parsed.has_value()) << "timing=" << timing;
    EXPECT_EQ(report::serialize(*parsed, options), text)
        << "timing=" << timing;
  }
}

TEST(RunReport, CanonicalFormOmitsWallClockData) {
  const auto& run = routed_run();
  const report::RunReport report =
      run.builder.build(run.result, run.circuit.grid, run.circuit.netlist);
  report::WriteOptions canonical;
  canonical.include_timing = false;
  const std::string text = report::serialize(report, canonical);
  EXPECT_EQ(text.find("_ns"), std::string::npos);
  EXPECT_EQ(text.find("seconds"), std::string::npos);
  EXPECT_NE(report::serialize(report), text);  // timed form differs
}

TEST(RunReport, ZeroCountersAreOmitted) {
  report::RunReport report;
  report.counters.counters.emplace_back("a.zero", 0);
  report.counters.counters.emplace_back("b.nonzero", 3);
  const std::string text = report::serialize(report);
  EXPECT_EQ(text.find("a.zero"), std::string::npos);
  EXPECT_NE(text.find("b.nonzero"), std::string::npos);
}

TEST(RunReport, ParseRejectsWrongSchemaOrVersion) {
  EXPECT_FALSE(
      report::parse_run_report_text("{\"schema\": \"other\"}").has_value());
  EXPECT_FALSE(
      report::parse_run_report_text(
          "{\"schema\": \"mebl.run_report\", \"version\": 999}")
          .has_value());
  EXPECT_FALSE(report::parse_run_report_text("not json").has_value());
}

TEST(RunReport, CapturesDesignAndMetrics) {
  const auto& run = routed_run();
  const report::RunReport report =
      run.builder.build(run.result, run.circuit.grid, run.circuit.netlist);
  EXPECT_EQ(report.design.width, run.circuit.grid.width());
  EXPECT_EQ(report.design.tiles_x, run.circuit.grid.tiles_x());
  EXPECT_EQ(report.design.nets,
            static_cast<std::int64_t>(run.circuit.netlist.num_nets()));
  EXPECT_EQ(report.metrics.short_polygons,
            run.result.metrics.short_polygons);
  EXPECT_EQ(report.nets.size(), run.circuit.netlist.num_nets());
  EXPECT_GT(report.yield.expected_defects, 0.0);
  EXPECT_GT(report.congestion.vertical_peak, 0.0);
}

// --------------------------------------------------------------- spatial

TEST(Spatial, ViaDensityMatchesGridGeometryAndMetrics) {
  const auto& run = routed_run();
  const auto map = report::measure_via_density(*run.result.grid);
  EXPECT_EQ(map.tiles_x, run.circuit.grid.tiles_x());
  EXPECT_EQ(map.tiles_y, run.circuit.grid.tiles_y());
  EXPECT_EQ(map.vias.size(),
            static_cast<std::size_t>(map.tiles_x) * map.tiles_y);

  const std::int64_t total =
      std::accumulate(map.vias.begin(), map.vias.end(), std::int64_t{0});
  EXPECT_EQ(total, run.result.metrics.vias);
  const std::int64_t unfriendly = std::accumulate(
      map.unfriendly_vias.begin(), map.unfriendly_vias.end(), std::int64_t{0});
  EXPECT_LE(unfriendly, total);
  EXPECT_GT(unfriendly, 0);
}

TEST(Spatial, CsvHeatmapHasTileDimensions) {
  const auto& run = routed_run();
  const auto map = report::measure_via_density(*run.result.grid);
  const std::string csv =
      report::csv_heatmap(map.tiles_x, map.tiles_y, map.vias);
  const auto rows =
      static_cast<int>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, map.tiles_y);
  const std::size_t first_row_end = csv.find('\n');
  const auto commas = static_cast<int>(
      std::count(csv.begin(), csv.begin() + first_row_end, ','));
  EXPECT_EQ(commas, map.tiles_x - 1);
}

TEST(Spatial, NetAuditsAreConsistentWithMetrics) {
  const auto& run = routed_run();
  const auto audits = report::collect_net_audits(
      *run.result.grid, run.circuit.netlist, run.result.plan,
      netlist::decompose_all(run.circuit.netlist), run.result.detail);
  ASSERT_EQ(audits.size(), run.circuit.netlist.num_nets());

  int unrouted = 0, via_violations = 0, bad_ends = 0;
  std::int64_t crossings = 0;
  for (const auto& audit : audits) {
    if (!audit.routed) ++unrouted;
    via_violations += audit.via_violations;
    bad_ends += audit.bad_ends;
    crossings += audit.stitch_crossings;
  }
  EXPECT_EQ(unrouted, run.result.metrics.total_nets -
                          run.result.metrics.routed_nets);
  EXPECT_EQ(via_violations, run.result.metrics.via_violations);
  EXPECT_GT(crossings, 0);

  int plan_bad_ends = 0;
  for (const auto& plan_run : run.result.plan.runs)
    plan_bad_ends += plan_run.bad_ends;
  EXPECT_EQ(bad_ends, plan_bad_ends);
}

TEST(Spatial, SvgOverlayEmbedsHeatRects) {
  const auto& run = routed_run();
  const auto map = report::measure_via_density(*run.result.grid);
  const std::string svg = report::svg_via_overlay(*run.result.grid, map);
  EXPECT_NE(svg.find("unfriendly vias"), std::string::npos);
  EXPECT_EQ(svg.rfind("</svg>"), svg.size() - std::string("</svg>\n").size());
}

// ------------------------------------------------------------ bench report

TEST(BenchReport, RoundTripsByteIdentical) {
  report::BenchReport bench;
  bench.bench = "unit";
  report::Json::Object metrics;
  metrics["short_polygons"] = std::int64_t{12};
  metrics["seconds"] = 1.5;
  bench.rows.push_back({"Struct", "stitch-aware", metrics});
  const std::string text = bench.serialize();
  const auto json = Json::parse(text);
  ASSERT_TRUE(json.has_value());
  const auto parsed = report::BenchReport::parse(*json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serialize(), text);
  EXPECT_EQ(parsed->rows.size(), 1u);
}

// ------------------------------------------------------------------ diff

Json bench_doc(std::int64_t sp, double wl, double rout, double seconds) {
  Json doc = Json::object();
  doc["schema"] = report::kBenchReportSchema;
  doc["version"] = report::kSchemaVersion;
  doc["bench"] = "unit";
  Json row = Json::object();
  row["circuit"] = "Struct";
  row["variant"] = "stitch-aware";
  row["metrics"]["short_polygons"] = sp;
  row["metrics"]["wirelength"] = wl;
  row["metrics"]["routability_pct"] = rout;
  row["metrics"]["seconds"] = seconds;
  Json rows = Json::array();
  rows.push_back(std::move(row));
  doc["rows"] = std::move(rows);
  return doc;
}

TEST(Diff, NoChangeAndImprovementPass) {
  const Json base = bench_doc(10, 1000.0, 99.0, 5.0);
  EXPECT_EQ(report::diff_reports(base, base).exit_code(), report::kDiffOk);
  // Strictly better on a lower-better metric is fine.
  const Json better = bench_doc(5, 990.0, 99.5, 5.0);
  const auto result = report::diff_reports(base, better);
  EXPECT_EQ(result.exit_code(), report::kDiffOk);
  EXPECT_FALSE(result.deltas.empty());
}

TEST(Diff, RegressionBeyondToleranceFails) {
  const Json base = bench_doc(10, 1000.0, 99.0, 5.0);
  // One extra short polygon: strict tolerance, regression.
  EXPECT_EQ(report::diff_reports(base, bench_doc(11, 1000.0, 99.0, 5.0))
                .exit_code(),
            report::kDiffRegression);
  // +1% wirelength sits inside the 2% default tolerance...
  EXPECT_EQ(report::diff_reports(base, bench_doc(10, 1010.0, 99.0, 5.0))
                .exit_code(),
            report::kDiffOk);
  // ...+3% does not.
  EXPECT_EQ(report::diff_reports(base, bench_doc(10, 1030.0, 99.0, 5.0))
                .exit_code(),
            report::kDiffRegression);
}

TEST(Diff, HigherBetterMetricsGateDownward) {
  const Json base = bench_doc(10, 1000.0, 99.0, 5.0);
  EXPECT_EQ(report::diff_reports(base, bench_doc(10, 1000.0, 98.0, 5.0))
                .exit_code(),
            report::kDiffRegression);
  EXPECT_EQ(report::diff_reports(base, bench_doc(10, 1000.0, 99.9, 5.0))
                .exit_code(),
            report::kDiffOk);
}

TEST(Diff, SecondsAreLooselyGated) {
  const Json base = bench_doc(10, 1000.0, 99.0, 5.0);
  // +40%: inside the max(2 s abs, 50% rel) slack.
  EXPECT_EQ(report::diff_reports(base, bench_doc(10, 1000.0, 99.0, 7.0))
                .exit_code(),
            report::kDiffOk);
  // 3x: a latency regression.
  EXPECT_EQ(report::diff_reports(base, bench_doc(10, 1000.0, 99.0, 15.0))
                .exit_code(),
            report::kDiffRegression);
}

TEST(Diff, ThresholdOverridesChangeTheGate) {
  const Json base = bench_doc(10, 1000.0, 99.0, 5.0);
  const Json worse = bench_doc(14, 1000.0, 99.0, 5.0);
  EXPECT_EQ(report::diff_reports(base, worse).exit_code(),
            report::kDiffRegression);

  const auto options = report::parse_thresholds(
      "{\"tolerances\": {\"short_polygons\": {\"abs\": 5.0}}}");
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(report::diff_reports(base, worse, *options).exit_code(),
            report::kDiffOk);

  const auto ignore = report::parse_thresholds(
      "{\"short_polygons\": {\"ignore\": true}}");  // wrapper-less form
  ASSERT_TRUE(ignore.has_value());
  EXPECT_EQ(report::diff_reports(base, bench_doc(99, 1000.0, 99.0, 5.0),
                                 *ignore)
                .exit_code(),
            report::kDiffOk);

  EXPECT_FALSE(report::parse_thresholds("[1,2]").has_value());
  EXPECT_FALSE(report::parse_thresholds("{\"a\": 3}").has_value());
}

TEST(Diff, SchemaOrVersionMismatchIsExitThree) {
  const Json bench = bench_doc(10, 1000.0, 99.0, 5.0);
  Json run = Json::object();
  run["schema"] = report::kRunReportSchema;
  run["version"] = report::kSchemaVersion;
  EXPECT_EQ(report::diff_reports(bench, run).exit_code(),
            report::kDiffSchemaMismatch);

  Json other_version = bench;
  other_version["version"] = std::int64_t{2};
  EXPECT_EQ(report::diff_reports(bench, other_version).exit_code(),
            report::kDiffSchemaMismatch);

  Json unknown = bench;
  unknown["schema"] = "who.knows";
  EXPECT_EQ(report::diff_reports(unknown, unknown).exit_code(),
            report::kDiffSchemaMismatch);
}

TEST(Diff, MissingBenchRowIsARegression) {
  const Json base = bench_doc(10, 1000.0, 99.0, 5.0);
  Json missing = base;
  missing["rows"] = Json::array();
  const auto result = report::diff_reports(base, missing);
  EXPECT_EQ(result.exit_code(), report::kDiffRegression);
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_NE(result.missing[0].find("Struct/stitch-aware"), std::string::npos);
}

TEST(Diff, RunReportsGateOnQualityBlock) {
  const auto& run = routed_run();
  const report::RunReport report =
      run.builder.build(run.result, run.circuit.grid, run.circuit.netlist);
  const Json base = report::to_json(report);
  EXPECT_EQ(report::diff_reports(base, base).exit_code(), report::kDiffOk);

  report::RunReport worse = report;
  worse.metrics.short_polygons += 1;
  const auto result = report::diff_reports(base, report::to_json(worse));
  EXPECT_EQ(result.exit_code(), report::kDiffRegression);
  ASSERT_FALSE(result.deltas.empty());
  EXPECT_TRUE(result.deltas.front().regression);
  EXPECT_EQ(result.deltas.front().path, "quality.short_polygons");
}

TEST(Diff, DirectionTableKnowsTheGatedMetrics) {
  EXPECT_EQ(report::metric_direction("short_polygons"),
            report::Direction::kLowerBetter);
  EXPECT_EQ(report::metric_direction("yield"),
            report::Direction::kHigherBetter);
  EXPECT_FALSE(report::metric_direction("made_up_metric").has_value());
  EXPECT_GT(report::default_tolerance("seconds").abs, 0.0);
  EXPECT_EQ(report::default_tolerance("short_polygons").abs, 0.0);
}

// -------------------------------------------------------- observer fanout

TEST(ObserverFanout, MultipleObserversSeeEveryStage) {
  class CountingObserver final : public core::ProgressObserver {
   public:
    int begins = 0;
    int ends = 0;
    void on_stage_begin(core::Stage) override { ++begins; }
    void on_stage_end(core::Stage, double) override { ++ends; }
  };

  const auto* spec = bench_suite::find_spec("Struct");
  const auto circuit = bench_suite::generate_circuit(*spec, {}, 2);
  core::StitchAwareRouter router(
      circuit.grid, circuit.netlist,
      core::RouterConfig::stitch_aware().with_threads(2));
  CountingObserver first, second;
  report::RunReportBuilder builder;
  router.add_observer(&first)
      .add_observer(&second)
      .add_observer(&builder);
  const auto result = router.run();
  EXPECT_EQ(first.begins, 5);
  EXPECT_EQ(first.ends, 5);
  EXPECT_EQ(second.begins, 5);
  EXPECT_EQ(second.ends, 5);
  EXPECT_EQ(builder.stages().size(), 5u);
  EXPECT_FALSE(result.cancelled);
}

}  // namespace
