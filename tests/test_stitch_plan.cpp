#include "grid/stitch_plan.hpp"

#include <gtest/gtest.h>

namespace mebl::grid {
namespace {

using geom::Coord;
using geom::Interval;

TEST(StitchPlan, LinesAtMultiplesOfPitch) {
  StitchPlan plan(60, 15);
  ASSERT_EQ(plan.lines().size(), 3u);
  EXPECT_EQ(plan.lines()[0], 15);
  EXPECT_EQ(plan.lines()[1], 30);
  EXPECT_EQ(plan.lines()[2], 45);
}

TEST(StitchPlan, NoLineAtLayoutEdges) {
  StitchPlan plan(45, 15);  // 45 is the width, so only 15 and 30 fit
  ASSERT_EQ(plan.lines().size(), 2u);
}

TEST(StitchPlan, NonePlanHasNoLines) {
  const StitchPlan plan = StitchPlan::none(100);
  EXPECT_TRUE(plan.lines().empty());
  EXPECT_FALSE(plan.is_stitch_column(50));
  EXPECT_FALSE(plan.in_unfriendly_region(50));
  EXPECT_EQ(plan.free_tracks({0, 99}), 100);
}

TEST(StitchPlan, IsStitchColumn) {
  StitchPlan plan(60, 15);
  EXPECT_TRUE(plan.is_stitch_column(15));
  EXPECT_TRUE(plan.is_stitch_column(30));
  EXPECT_FALSE(plan.is_stitch_column(14));
  EXPECT_FALSE(plan.is_stitch_column(0));
}

TEST(StitchPlan, DistanceToLine) {
  StitchPlan plan(60, 15);
  EXPECT_EQ(plan.distance_to_line(15), 0);
  EXPECT_EQ(plan.distance_to_line(14), 1);
  EXPECT_EQ(plan.distance_to_line(16), 1);
  EXPECT_EQ(plan.distance_to_line(22), 7);
  EXPECT_EQ(plan.distance_to_line(23), 7);  // closer to 30
  EXPECT_EQ(plan.distance_to_line(0), 15);
  EXPECT_EQ(plan.distance_to_line(59), 14);
}

TEST(StitchPlan, UnfriendlyRegionIsEpsilonWide) {
  StitchPlan plan(60, 15, /*epsilon=*/1);
  EXPECT_TRUE(plan.in_unfriendly_region(14));
  EXPECT_TRUE(plan.in_unfriendly_region(15));
  EXPECT_TRUE(plan.in_unfriendly_region(16));
  EXPECT_FALSE(plan.in_unfriendly_region(13));
  EXPECT_FALSE(plan.in_unfriendly_region(17));
}

TEST(StitchPlan, EscapeRegionExcludesLineColumn) {
  StitchPlan plan(60, 15, 1, /*escape_halfwidth=*/2);
  EXPECT_FALSE(plan.in_escape_region(15));  // the line itself
  EXPECT_TRUE(plan.in_escape_region(14));
  EXPECT_TRUE(plan.in_escape_region(13));
  EXPECT_FALSE(plan.in_escape_region(12));
  EXPECT_TRUE(plan.in_escape_region(16));
  EXPECT_TRUE(plan.in_escape_region(17));
  EXPECT_FALSE(plan.in_escape_region(18));
}

TEST(StitchPlan, LinesCuttingIsStrictlyInterior) {
  StitchPlan plan(60, 15);
  // A wire [15, 30] is cut only by... its endpoints lie ON 15 and 30, so no
  // strictly interior line exists.
  EXPECT_TRUE(plan.lines_cutting({15, 30}).empty());
  const auto cut = plan.lines_cutting({10, 40});
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_EQ(cut[0], 15);
  EXPECT_EQ(cut[1], 30);
  EXPECT_TRUE(plan.lines_cutting({16, 29}).empty());
  EXPECT_TRUE(plan.lines_cutting(Interval{}).empty());
}

TEST(StitchPlan, FreeTracksExcludesLineColumns) {
  StitchPlan plan(60, 15);
  EXPECT_EQ(plan.free_tracks({0, 29}), 29);   // line at 15
  EXPECT_EQ(plan.free_tracks({15, 15}), 0);   // exactly the line
  EXPECT_EQ(plan.free_tracks({0, 59}), 57);   // lines at 15, 30, 45
}

TEST(StitchPlan, LineEndCapacityExcludesUnfriendlyTracks) {
  StitchPlan plan(60, 15, 1);
  // Tracks 0..29: unfriendly are 14, 15, 16 and 29 (next to line 30).
  EXPECT_EQ(plan.line_end_capacity({0, 29}), 26);
}


TEST(StitchPlan, FromLinesNonUniform) {
  const auto plan = StitchPlan::from_lines(100, {40, 13, 77, 40}, 2, 3);
  EXPECT_EQ(plan.lines(), (std::vector<Coord>{13, 40, 77}));
  EXPECT_EQ(plan.epsilon(), 2);
  EXPECT_EQ(plan.escape_halfwidth(), 3);
  EXPECT_TRUE(plan.is_stitch_column(40));
  EXPECT_TRUE(plan.in_unfriendly_region(15));   // distance 2 from 13
  EXPECT_FALSE(plan.in_unfriendly_region(16));
}

TEST(StitchPlan, FromLinesDiscardsOutOfRange) {
  const auto plan = StitchPlan::from_lines(50, {0, -3, 25, 50, 60});
  EXPECT_EQ(plan.lines(), (std::vector<Coord>{25}));
}

TEST(StitchPlan, FromLinesEmptyBehavesLikeNone) {
  const auto plan = StitchPlan::from_lines(50, {});
  EXPECT_TRUE(plan.lines().empty());
  EXPECT_EQ(plan.free_tracks({0, 49}), 50);
}

TEST(StitchPlan, FromLinesCapacityQueries) {
  const auto plan = StitchPlan::from_lines(60, {10, 50}, 1, 2);
  EXPECT_EQ(plan.free_tracks({0, 59}), 58);
  const auto cut = plan.lines_cutting({0, 59});
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_EQ(plan.distance_to_line(30), 20);
}

}  // namespace
}  // namespace mebl::grid
