// Detailed-routing parallelism (DESIGN.md §9): the disjoint-batch gatherer
// never co-schedules overlapping search boxes, and the batch-parallel main
// pass is sequential-equivalent — the routed result (headline metrics,
// per-stage detail stats, canonical run-report bytes) is bit-identical for
// every thread count and with parallelism turned off entirely.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_suite/circuit_generator.hpp"
#include "core/stitch_router.hpp"
#include "detail/batch_schedule.hpp"
#include "report/report.hpp"
#include "util/rng.hpp"

namespace {

using namespace mebl;
using detail::gather_disjoint_batches;
using geom::Coord;
using geom::Rect;

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

void expect_valid_batching(const std::vector<std::vector<std::size_t>>& batches,
                           const std::vector<std::size_t>& order,
                           const std::vector<Rect>& boxes,
                           std::size_t max_batch) {
  // The concatenation of the batches is exactly the input order (prefix
  // batching reorders nothing), every batch respects the cap, and the
  // boxes inside one batch are pairwise disjoint.
  std::vector<std::size_t> flattened;
  for (const auto& batch : batches) {
    ASSERT_FALSE(batch.empty());
    EXPECT_LE(batch.size(), max_batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      flattened.push_back(batch[i]);
      for (std::size_t j = i + 1; j < batch.size(); ++j)
        EXPECT_FALSE(boxes[batch[i]].overlaps(boxes[batch[j]]))
            << "boxes " << batch[i] << " and " << batch[j]
            << " overlap but were co-scheduled";
    }
  }
  EXPECT_EQ(flattened, order);
}

TEST(GatherDisjointBatches, OverlappingBoxesNeverCoScheduled) {
  // Three clusters: {0,1} overlap, {2,3} overlap, 4 is disjoint from all.
  const std::vector<Rect> boxes = {
      {0, 0, 10, 10}, {5, 5, 15, 15}, {40, 40, 50, 50},
      {45, 45, 55, 55}, {80, 0, 90, 10},
  };
  const auto order = identity_order(boxes.size());
  const auto batches = gather_disjoint_batches(order, boxes, 8, 64);
  expect_valid_batching(batches, order, boxes, 64);
  // Box 1 overlaps box 0, so the first batch must close before it.
  ASSERT_GE(batches.size(), 2u);
  EXPECT_EQ(batches[0][0], 0u);
  for (const auto& batch : batches)
    for (std::size_t i = 0; i < batch.size(); ++i)
      for (std::size_t j = i + 1; j < batch.size(); ++j)
        EXPECT_FALSE((batch[i] == 0 && batch[j] == 1) ||
                     (batch[i] == 2 && batch[j] == 3));
}

TEST(GatherDisjointBatches, DisjointBoxesShareOneBatch) {
  std::vector<Rect> boxes;
  for (Coord i = 0; i < 16; ++i)
    boxes.push_back({i * 100, 0, i * 100 + 20, 20});
  const auto order = identity_order(boxes.size());
  const auto batches = gather_disjoint_batches(order, boxes, 8, 64);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0], order);
}

TEST(GatherDisjointBatches, CapClosesBatches) {
  std::vector<Rect> boxes;
  for (Coord i = 0; i < 10; ++i)
    boxes.push_back({i * 100, 0, i * 100 + 20, 20});
  const auto order = identity_order(boxes.size());
  const auto batches = gather_disjoint_batches(order, boxes, 8, 4);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 4u);
  EXPECT_EQ(batches[1].size(), 4u);
  EXPECT_EQ(batches[2].size(), 2u);
  expect_valid_batching(batches, order, boxes, 4);
}

TEST(GatherDisjointBatches, IdenticalBoxesDegenerateToSingletons) {
  const std::vector<Rect> boxes(5, Rect{10, 10, 30, 30});
  const auto order = identity_order(boxes.size());
  const auto batches = gather_disjoint_batches(order, boxes, 8, 64);
  ASSERT_EQ(batches.size(), 5u);
  for (const auto& batch : batches) EXPECT_EQ(batch.size(), 1u);
}

TEST(GatherDisjointBatches, RandomSweepInvariants) {
  util::Rng rng(20130602u);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Rect> boxes;
    const int n = static_cast<int>(rng.uniform_int(1, 120));
    for (int i = 0; i < n; ++i) {
      const Coord x = static_cast<Coord>(rng.uniform_int(0, 399));
      const Coord y = static_cast<Coord>(rng.uniform_int(0, 399));
      const Coord w = static_cast<Coord>(rng.uniform_int(0, 59));
      const Coord h = static_cast<Coord>(rng.uniform_int(0, 59));
      boxes.push_back({x, y, x + w, y + h});
    }
    const auto order = identity_order(boxes.size());
    const std::size_t cap = static_cast<std::size_t>(rng.uniform_int(1, 32));
    const Coord bin = static_cast<Coord>(rng.uniform_int(1, 40));
    const auto batches = gather_disjoint_batches(order, boxes, bin, cap);
    expect_valid_batching(batches, order, boxes, cap);
  }
}

// ---------------------------------------------------------------- pipeline

struct Fingerprint {
  eval::RouteMetrics metrics;
  detail::DetailedResult detail;
  std::string canonical_report;
};

Fingerprint route_circuit(const bench_suite::GeneratedCircuit& circuit,
                          const core::RouterConfig& config) {
  core::StitchAwareRouter router(circuit.grid, circuit.netlist, config);
  report::RunReportBuilder builder;
  router.add_observer(&builder);
  const auto result = router.run();
  report::WriteOptions options;
  options.include_timing = false;
  Fingerprint fp;
  fp.metrics = result.metrics;
  fp.detail = result.detail;
  fp.canonical_report = report::serialize(
      builder.build(result, circuit.grid, circuit.netlist), options);
  return fp;
}

void expect_identical(const Fingerprint& a, const Fingerprint& b,
                      const std::string& what) {
  EXPECT_EQ(a.metrics.wirelength, b.metrics.wirelength) << what;
  EXPECT_EQ(a.metrics.vias, b.metrics.vias) << what;
  EXPECT_EQ(a.metrics.via_violations, b.metrics.via_violations) << what;
  EXPECT_EQ(a.metrics.vertical_violations, b.metrics.vertical_violations)
      << what;
  EXPECT_EQ(a.metrics.short_polygons, b.metrics.short_polygons) << what;
  EXPECT_EQ(a.metrics.routed_nets, b.metrics.routed_nets) << what;
  EXPECT_EQ(a.detail.routed, b.detail.routed) << what;
  EXPECT_EQ(a.detail.failed, b.detail.failed) << what;
  EXPECT_EQ(a.detail.planned_realized, b.detail.planned_realized) << what;
  EXPECT_EQ(a.detail.pattern_routed, b.detail.pattern_routed) << what;
  EXPECT_EQ(a.detail.astar_routed, b.detail.astar_routed) << what;
  EXPECT_EQ(a.detail.ripup_rescued, b.detail.ripup_rescued) << what;
  EXPECT_EQ(a.detail.sp_cleanup_nets, b.detail.sp_cleanup_nets) << what;
  EXPECT_EQ(a.detail.subnet_routed, b.detail.subnet_routed) << what;
  EXPECT_EQ(a.canonical_report, b.canonical_report) << what;
}

class DetailParallelDeterminism
    : public ::testing::TestWithParam<const char*> {};

TEST_P(DetailParallelDeterminism, IdenticalAcrossThreadCounts) {
  const auto* spec = bench_suite::find_spec(GetParam());
  ASSERT_NE(spec, nullptr);
  const auto circuit = bench_suite::generate_circuit(*spec, {}, 20130602u);

  const auto with_threads = [&](int threads) {
    return route_circuit(
        circuit, core::RouterConfig::stitch_aware().with_threads(threads));
  };
  const Fingerprint one = with_threads(1);
  for (const int threads : {2, 8})
    expect_identical(one, with_threads(threads),
                     std::string(GetParam()) +
                         " threads=" + std::to_string(threads));

  // Parallelism off must reproduce the batched schedule's result exactly:
  // prefix batching is sequential-equivalent by construction.
  const Fingerprint sequential = route_circuit(
      circuit, core::RouterConfig::stitch_aware().with_threads(8).
                   with_detail_parallelism(false));
  EXPECT_EQ(one.metrics.wirelength, sequential.metrics.wirelength);
  EXPECT_EQ(one.metrics.vias, sequential.metrics.vias);
  EXPECT_EQ(one.metrics.short_polygons, sequential.metrics.short_polygons);
  EXPECT_EQ(one.detail.subnet_routed, sequential.detail.subnet_routed);
  EXPECT_EQ(one.detail.planned_realized, sequential.detail.planned_realized);
  EXPECT_EQ(one.detail.astar_routed, sequential.detail.astar_routed);
}

INSTANTIATE_TEST_SUITE_P(Circuits, DetailParallelDeterminism,
                         ::testing::Values("S5378", "S9234"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
