#include "eval/svg_writer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace mebl::eval {
namespace {

grid::RoutingGrid make_grid() {
  return grid::RoutingGrid(60, 60, 3, 30, grid::StitchPlan(60, 15));
}

TEST(SvgWriter, EmitsWellFormedDocument) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  const std::string svg = render_svg(grid);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgWriter, DrawsWiresAndVias) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  for (geom::Coord x = 2; x <= 6; ++x) grid.claim({x, 5, 1}, 0);
  grid.claim({2, 5, 0}, 0);
  const std::string svg = render_svg(grid);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("<rect x="), std::string::npos);  // via marker
}

TEST(SvgWriter, DrawsStitchLines) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  const std::string svg = render_svg(grid);
  EXPECT_NE(svg.find("stroke='red'"), std::string::npos);
}

TEST(SvgWriter, StitchLinesCanBeDisabled) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  SvgOptions options;
  options.draw_stitch_lines = false;
  const std::string svg = render_svg(grid, options);
  EXPECT_EQ(svg.find("stroke='red'"), std::string::npos);
}

TEST(SvgWriter, WindowClipsContent) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  for (geom::Coord x = 40; x <= 50; ++x) grid.claim({x, 40, 1}, 0);
  SvgOptions options;
  options.window = {0, 0, 20, 20};  // wire is outside
  options.draw_stitch_lines = false;  // their <line> elements would remain
  const std::string svg = render_svg(grid, options);
  EXPECT_EQ(svg.find("<line x1"), std::string::npos);
}

TEST(SvgWriter, WritesFile) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  const std::string path = ::testing::TempDir() + "/mebl_test.svg";
  ASSERT_TRUE(write_svg(grid, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("<svg", 0), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mebl::eval
