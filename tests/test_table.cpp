#include "util/table.hpp"

#include <gtest/gtest.h>

namespace mebl::util {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t("Circuit", "#SP");
  t.add_row("S38417", 122);
  const std::string s = t.str();
  EXPECT_NE(s.find("Circuit"), std::string::npos);
  EXPECT_NE(s.find("#SP"), std::string::npos);
  EXPECT_NE(s.find("S38417"), std::string::npos);
  EXPECT_NE(s.find("122"), std::string::npos);
}

TEST(Table, TitleAppearsFirst) {
  Table t("A");
  t.add_row("x");
  const std::string s = t.str("Table III");
  EXPECT_EQ(s.rfind("Table III", 0), 0u);
}

TEST(Table, CountsRowsAndCols) {
  Table t("a", "b", "c");
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row("1", "2", "3");
  t.add_row("4", "5", "6");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FixedFormatsDigits) {
  EXPECT_EQ(Table::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fixed(1.0, 3), "1.000");
  EXPECT_EQ(Table::fixed(-0.5, 1), "-0.5");
}

TEST(Table, DoubleCellsUseTwoDigits) {
  Table t("v");
  t.add_row(3.14159);
  EXPECT_NE(t.str().find("3.14"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t("name", "n");
  t.add_row("a", 1);
  t.add_row("longer", 22);
  const std::string s = t.str();
  // Every rendered line between rules must have the same length.
  std::size_t expected = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t end = s.find('\n', pos);
    const std::size_t len = end - pos;
    if (expected == 0)
      expected = len;
    else
      EXPECT_EQ(len, expected);
    pos = end + 1;
  }
}

TEST(Table, RuleInsertsSeparator) {
  Table t("x");
  t.add_row("1");
  t.add_rule();
  t.add_row("Comp.");
  const std::string s = t.str();
  // 3 rules around header + 1 mid-table + 1 trailing = 5 dashed lines.
  int dashed = 0;
  std::size_t pos = 0;
  while ((pos = s.find("+-", pos)) != std::string::npos) {
    ++dashed;
    pos = s.find('\n', pos);
  }
  EXPECT_EQ(dashed, 4);
}

}  // namespace
}  // namespace mebl::util
