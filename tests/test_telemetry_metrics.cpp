// Observability-layer tests (ctest label `obs`): histogram quantile
// snapshots, Prometheus text exposition, tracer capacity / drop accounting,
// request-scoped span tagging, the flight recorder (including a real
// crash-handler dump in a forked child), and log-level plumbing.
//
// Like test_telemetry.cpp, these mutate process-global telemetry state
// (clock stubs, enable/disable, capacity overrides), so they live in their
// own binary and never share a process with the pipeline tests.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/keys.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace mebl::telemetry {
namespace {

// Deterministic clock stub: every now_ns() call advances one microsecond.
std::uint64_t g_fake_now_ns = 0;
std::uint64_t fake_clock() { return g_fake_now_ns += 1000; }

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_for_testing();
    FlightRecorder::reset_for_testing();
    g_fake_now_ns = 0;
  }
  void TearDown() override {
    reset_for_testing();
    FlightRecorder::reset_for_testing();
    util::Log::set_level(util::LogLevel::kWarn);
  }
};

// ------------------------------------------------- histogram snapshots

// The worked example from telemetry.hpp's bucket layout: samples land in
// buckets [0,1us) x4, [1us,2us) x4, [2us,4us) x2, and the interpolated
// quantiles are exact, deterministic values.
TEST_F(ObsTest, HistogramSnapshotQuantilesAreExact) {
  Histogram& h = histogram("obs.quantiles_ns");
  for (int i = 0; i < 4; ++i) h.record_ns(500);
  for (int i = 0; i < 4; ++i) h.record_ns(1500);
  for (int i = 0; i < 2; ++i) h.record_ns(3000);

  const HistogramSnapshot snapshot = snapshot_histogram(h);
  EXPECT_EQ(snapshot.count, 10);
  EXPECT_EQ(snapshot.total_ns, 4 * 500u + 4 * 1500u + 2 * 3000u);

  // p50: rank 5 is the 1st of 4 samples in [1000, 2000) -> 1250.
  EXPECT_EQ(snapshot.quantile_ns(0.50), 1250u);
  // p95 and p99: rank 10 is the last of 2 samples in [2000, 4000) -> 4000.
  EXPECT_EQ(snapshot.quantile_ns(0.95), 4000u);
  EXPECT_EQ(snapshot.quantile_ns(0.99), 4000u);
  // Extremes clamp to real ranks: q=0 reads rank 1, q=1 reads rank count.
  EXPECT_EQ(snapshot.quantile_ns(0.0), snapshot.quantile_ns(0.1));
  EXPECT_EQ(snapshot.quantile_ns(1.0), 4000u);
}

TEST_F(ObsTest, EmptyHistogramSnapshotIsAllZero) {
  const HistogramSnapshot snapshot;
  EXPECT_EQ(snapshot.count, 0);
  EXPECT_EQ(snapshot.quantile_ns(0.5), 0u);
  EXPECT_EQ(snapshot.quantile_ns(0.99), 0u);
}

TEST_F(ObsTest, HistogramBucketBoundsMatchDocumentedLayout) {
  EXPECT_EQ(HistogramSnapshot::bucket_lower_ns(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper_ns(0), 1000u);
  EXPECT_EQ(HistogramSnapshot::bucket_lower_ns(1), 1000u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper_ns(1), 2000u);
  EXPECT_EQ(HistogramSnapshot::bucket_lower_ns(5), 16000u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper_ns(5), 32000u);
}

// Snapshots from different "workers" must merge in any order / grouping and
// report the same quantiles as one histogram that saw every sample.
TEST_F(ObsTest, HistogramSnapshotMergeIsAssociativeAndCommutative) {
  Histogram& ha = histogram("obs.merge_a_ns");
  Histogram& hb = histogram("obs.merge_b_ns");
  Histogram& hc = histogram("obs.merge_c_ns");
  Histogram& all = histogram("obs.merge_all_ns");
  const std::vector<std::uint64_t> sa = {500, 500, 900};
  const std::vector<std::uint64_t> sb = {1500, 1700};
  const std::vector<std::uint64_t> sc = {3000, 64000, 64000};
  for (const auto ns : sa) { ha.record_ns(ns); all.record_ns(ns); }
  for (const auto ns : sb) { hb.record_ns(ns); all.record_ns(ns); }
  for (const auto ns : sc) { hc.record_ns(ns); all.record_ns(ns); }

  const HistogramSnapshot a = snapshot_histogram(ha);
  const HistogramSnapshot b = snapshot_histogram(hb);
  const HistogramSnapshot c = snapshot_histogram(hc);

  HistogramSnapshot ab_c = a;   // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  HistogramSnapshot bc = b;     // a + (b + c)
  bc.merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.merge(bc);
  HistogramSnapshot ba = b;     // b + a
  ba.merge(a);
  HistogramSnapshot ab = a;     // a + b
  ab.merge(b);

  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.total_ns, a_bc.total_ns);
  EXPECT_EQ(ab_c.buckets, a_bc.buckets);
  EXPECT_EQ(ab.buckets, ba.buckets);

  const HistogramSnapshot whole = snapshot_histogram(all);
  EXPECT_EQ(ab_c.count, whole.count);
  EXPECT_EQ(ab_c.total_ns, whole.total_ns);
  EXPECT_EQ(ab_c.buckets, whole.buckets);
  for (const double q : {0.5, 0.95, 0.99})
    EXPECT_EQ(ab_c.quantile_ns(q), whole.quantile_ns(q)) << "q=" << q;
}

// --------------------------------------------------- prometheus rendering

TEST_F(ObsTest, PrometheusMetricNamesAreSanitizedAndPrefixed) {
  EXPECT_EQ(prometheus_metric_name("serve.queue.wait_ns"),
            "mebl_serve_queue_wait_ns");
  EXPECT_EQ(prometheus_metric_name("weird-name with spaces"),
            "mebl_weird_name_with_spaces");
  EXPECT_EQ(prometheus_metric_name("ok_name:colons"), "mebl_ok_name:colons");
}

TEST_F(ObsTest, PrometheusLabelEscaping) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("quote\"back\\slash\nnewline"),
            "quote\\\"back\\\\slash\\nnewline");
}

TEST_F(ObsTest, PrometheusRenderingIsDeterministicAndOrdered) {
  // Register deliberately out of order: output must be name-sorted.
  counter("obs.zz.second").add(7);
  counter("obs.aa.first").add(3);
  Histogram& h = histogram("obs.lat_ns");
  for (int i = 0; i < 4; ++i) h.record_ns(500);
  for (int i = 0; i < 4; ++i) h.record_ns(1500);
  for (int i = 0; i < 2; ++i) h.record_ns(3000);

  const std::vector<PrometheusGauge> gauges = {
      {"serve.queue.depth", 5.0, {}},
      {"serve.cache.resident", 1.0, {{"design", "chip\"v2\""}}},
  };
  const std::string text = prometheus_text(gauges);

  EXPECT_NE(text.find("# TYPE mebl_obs_aa_first counter\n"
                      "mebl_obs_aa_first 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("mebl_obs_zz_second 7\n"), std::string::npos);
  EXPECT_LT(text.find("mebl_obs_aa_first"), text.find("mebl_obs_zz_second"));

  // The histogram renders as a summary with the exact worked quantiles.
  EXPECT_NE(text.find("# TYPE mebl_obs_lat_ns summary\n"
                      "mebl_obs_lat_ns{quantile=\"0.5\"} 1250\n"
                      "mebl_obs_lat_ns{quantile=\"0.95\"} 4000\n"
                      "mebl_obs_lat_ns{quantile=\"0.99\"} 4000\n"
                      "mebl_obs_lat_ns_sum 14000\n"
                      "mebl_obs_lat_ns_count 10\n"),
            std::string::npos);

  // Gauges keep caller order and escape label values.
  EXPECT_NE(text.find("# TYPE mebl_serve_queue_depth gauge\n"
                      "mebl_serve_queue_depth 5\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("mebl_serve_cache_resident{design=\"chip\\\"v2\\\"\"} 1\n"),
      std::string::npos);

  // Byte-stable: rendering twice gives identical text.
  EXPECT_EQ(text, prometheus_text(gauges));

  // Every line is either a comment or `name[{labels}] value`.
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE mebl_", 0), 0u) << line;
      continue;
    }
    EXPECT_EQ(line.rfind("mebl_", 0), 0u) << line;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

// --------------------------------------------- tracer capacity + tagging

TEST_F(ObsTest, TracerDropsAtCapacityAndCountsDrops) {
  set_clock_for_testing(&fake_clock);
  Tracer::set_capacity(4);
  Tracer::enable();
  for (int i = 0; i < 7; ++i) Tracer::record_span("span", 1000, 500);

  EXPECT_EQ(Tracer::events().size(), 4u);
  EXPECT_EQ(counter(keys::kTraceDroppedSpans).value(), 3);

  // reset_for_testing restores the default capacity and zeroes the counter.
  reset_for_testing();
  EXPECT_GT(Tracer::capacity(), 4u);
  EXPECT_EQ(counter(keys::kTraceDroppedSpans).value(), 0);
}

TEST_F(ObsTest, RequestScopeTagsSpansAndNests) {
  set_clock_for_testing(&fake_clock);
  Tracer::enable();
  EXPECT_EQ(current_request(), 0u);
  {
    RequestScope outer(42);
    EXPECT_EQ(current_request(), 42u);
    { TELEMETRY_SPAN("tagged.outer"); }
    {
      RequestScope inner(43);
      EXPECT_EQ(current_request(), 43u);
      { TELEMETRY_SPAN("tagged.inner"); }
    }
    EXPECT_EQ(current_request(), 42u);
    Tracer::record_span("tagged.manual", 100, 50);
  }
  EXPECT_EQ(current_request(), 0u);
  { TELEMETRY_SPAN("untagged"); }

  const auto events = Tracer::events();
  ASSERT_EQ(events.size(), 4u);
  for (const SpanEvent& event : events) {
    const std::string name = event.name;
    if (name == "tagged.outer") { EXPECT_EQ(event.req, 42u); }
    if (name == "tagged.inner") { EXPECT_EQ(event.req, 43u); }
    if (name == "tagged.manual") { EXPECT_EQ(event.req, 42u); }
    if (name == "untagged") { EXPECT_EQ(event.req, 0u); }
  }
}

// ------------------------------------------------------- flight recorder

TEST_F(ObsTest, FlightRecorderCapturesSpansAndLogs) {
  set_clock_for_testing(&fake_clock);
  FlightRecorder::enable();
  ASSERT_FALSE(Tracer::enabled());  // recording works with the tracer off
  {
    RequestScope scope(9);
    TELEMETRY_SPAN("flight.span");
  }
  FlightRecorder::record_log("WARN", "something odd");

  const auto events = FlightRecorder::snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FlightRecorder::Event::Kind::kSpan);
  EXPECT_STREQ(events[0].name, "flight.span");
  EXPECT_EQ(events[0].req, 9u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_EQ(events[1].kind, FlightRecorder::Event::Kind::kLog);
  EXPECT_STREQ(events[1].name, "WARN");
  EXPECT_EQ(events[1].text, "something odd");

  // The tracer saw nothing: the two sinks are independent.
  EXPECT_TRUE(Tracer::events().empty());
}

TEST_F(ObsTest, FlightRecorderRingKeepsMostRecentEvents) {
  FlightRecorder::enable();
  const int total = static_cast<int>(FlightRecorder::kSlotsPerThread) + 50;
  for (int i = 0; i < total; ++i)
    FlightRecorder::record_log("INFO", "line " + std::to_string(i));

  const auto events = FlightRecorder::snapshot();
  ASSERT_EQ(events.size(), FlightRecorder::kSlotsPerThread);
  // The survivors are exactly the newest kSlotsPerThread, in order.
  EXPECT_EQ(events.front().text,
            "line " + std::to_string(total -
                                     static_cast<int>(
                                         FlightRecorder::kSlotsPerThread)));
  EXPECT_EQ(events.back().text, "line " + std::to_string(total - 1));
}

TEST_F(ObsTest, FlightRecorderDumpFileIsReadable) {
  set_clock_for_testing(&fake_clock);
  FlightRecorder::enable();
  {
    RequestScope scope(7);
    TELEMETRY_SPAN("dump.span");
  }
  FlightRecorder::record_log("ERROR", "bad thing");

  const std::string path =
      ::testing::TempDir() + "mebl_obs_dump_" + std::to_string(::getpid()) +
      ".log";
  ASSERT_TRUE(FlightRecorder::dump_to_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  EXPECT_EQ(text.rfind("# mebl flight recorder v1", 0), 0u);
  EXPECT_NE(text.find("span dump.span"), std::string::npos);
  EXPECT_NE(text.find("req=7"), std::string::npos);
  EXPECT_NE(text.find("log ERROR"), std::string::npos);
  EXPECT_NE(text.find("bad thing"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, UtilLogLinesReachTheFlightRecorder) {
  FlightRecorder::enable();
  // Route the log sink somewhere quiet; the recorder taps write() upstream.
  std::ostringstream sink;
  util::Log::set_sink(&sink);
  util::log_warn() << "recorded line";
  util::Log::set_level(util::LogLevel::kError);
  util::log_warn() << "below threshold, not recorded";
  util::Log::set_sink(nullptr);
  util::Log::set_level(util::LogLevel::kWarn);

  const auto events = FlightRecorder::snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FlightRecorder::Event::Kind::kLog);
  EXPECT_EQ(events[0].text, "recorded line");
}

TEST_F(ObsTest, TimestampedPathEmbedsPidAndSuffix) {
  const std::string path = FlightRecorder::timestamped_path("/tmp/prefix");
  EXPECT_EQ(path.rfind("/tmp/prefix_", 0), 0u);
  EXPECT_NE(path.find(std::to_string(::getpid())), std::string::npos);
  EXPECT_EQ(path.substr(path.size() - 4), ".log");
}

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MEBL_OBS_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define MEBL_OBS_TSAN 1
#endif

// End-to-end crash path: a forked child arms the crash handler, records a
// few events, and dies on SIGSEGV; the parent finds the dump file and reads
// the header back. Skipped under TSan (fork + signal-handler re-raise trips
// the runtime's interceptors, and the dump path itself is exercised above).
TEST_F(ObsTest, CrashHandlerWritesDumpOnFatalSignal) {
#if defined(MEBL_OBS_TSAN)
  GTEST_SKIP() << "fork+fatal-signal test skipped under ThreadSanitizer";
#else
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("mebl_obs_crash_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string prefix = (dir / "crash").string();

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: no gtest from here on. Die under a live request tag so the
    // dump attributes the spans.
    FlightRecorder::enable();
    FlightRecorder::install_crash_handler(prefix);
    RequestScope scope(1234);
    { TELEMETRY_SPAN("crash.work"); }
    FlightRecorder::record_log("INFO", "about to crash");
    ::raise(SIGSEGV);
    ::_exit(97);  // unreachable
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  std::vector<fs::path> dumps;
  for (const auto& entry : fs::directory_iterator(dir))
    dumps.push_back(entry.path());
  ASSERT_EQ(dumps.size(), 1u);
  std::ifstream in(dumps[0]);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  EXPECT_EQ(text.rfind("# mebl flight recorder v1", 0), 0u);
  EXPECT_NE(text.find("# fatal signal " + std::to_string(SIGSEGV)),
            std::string::npos);
  EXPECT_NE(text.find("span crash.work"), std::string::npos);
  EXPECT_NE(text.find("req=1234"), std::string::npos);
  EXPECT_NE(text.find("about to crash"), std::string::npos);
  fs::remove_all(dir);
#endif
}

// ------------------------------------------------------------- log levels

TEST_F(ObsTest, LogLevelNamesRoundTrip) {
  using util::LogLevel;
  EXPECT_EQ(util::log_level_from_name("debug"), LogLevel::kDebug);
  EXPECT_EQ(util::log_level_from_name("info"), LogLevel::kInfo);
  EXPECT_EQ(util::log_level_from_name("warn"), LogLevel::kWarn);
  EXPECT_EQ(util::log_level_from_name("error"), LogLevel::kError);
  EXPECT_EQ(util::log_level_from_name("off"), LogLevel::kOff);
  EXPECT_FALSE(util::log_level_from_name("verbose").has_value());
  EXPECT_FALSE(util::log_level_from_name("WARN").has_value());
  for (const LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
        LogLevel::kOff})
    EXPECT_EQ(util::log_level_from_name(util::log_level_name(level)), level);
}

}  // namespace
}  // namespace mebl::telemetry
