#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

#include "telemetry/keys.hpp"

namespace mebl::telemetry {
namespace {

// Deterministic clock stub: every now_ns() call advances one microsecond.
std::uint64_t g_fake_now_ns = 0;
std::uint64_t fake_clock() { return g_fake_now_ns += 1000; }

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_for_testing();
    g_fake_now_ns = 0;
  }
  void TearDown() override { reset_for_testing(); }
};

TEST_F(TelemetryTest, SpanNestingAndOrdering) {
  set_clock_for_testing(&fake_clock);
  Tracer::enable();
  {
    TELEMETRY_SPAN("outer");  // starts at 1000
    {
      TELEMETRY_SPAN("inner");  // starts at 2000, ends at 3000
    }
    TELEMETRY_SPAN("inner2");  // starts at 4000, ends at 5000
  }                            // outer ends at 6000

  const auto events = Tracer::events();
  ASSERT_EQ(events.size(), 3u);

  // Sorted by start time: parents before children.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[2].name, "inner2");

  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 1);

  EXPECT_EQ(events[0].start_ns, 1000u);
  EXPECT_EQ(events[0].dur_ns, 5000u);
  EXPECT_EQ(events[1].start_ns, 2000u);
  EXPECT_EQ(events[1].dur_ns, 1000u);
  EXPECT_EQ(events[2].start_ns, 4000u);
  EXPECT_EQ(events[2].dur_ns, 1000u);

  // Children are contained in the parent span.
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);

  // All on the same thread.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(events[0].tid, events[2].tid);
}

TEST_F(TelemetryTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    TELEMETRY_SPAN("ghost");
    TELEMETRY_SPAN("ghost2");
  }
  EXPECT_TRUE(Tracer::events().empty());

  // Spans opened while disabled stay inert even if tracing turns on before
  // they close.
  {
    TELEMETRY_SPAN("opened_while_disabled");
    Tracer::enable();
  }
  EXPECT_TRUE(Tracer::events().empty());

  // Depth bookkeeping survives the disabled period: the next recorded
  // root span is still depth 0.
  {
    TELEMETRY_SPAN("root");
  }
  const auto events = Tracer::events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].depth, 0);
}

TEST_F(TelemetryTest, CountersAccumulateAndSnapshot) {
  Counter& rips = counter("test.rips");
  EXPECT_EQ(rips.value(), 0);
  rips.add(3);
  rips.add();
  EXPECT_EQ(rips.value(), 4);
  // counter() returns the same object for the same name.
  counter("test.rips").add(6);
  EXPECT_EQ(rips.value(), 10);

  // Counters count regardless of tracer state.
  EXPECT_FALSE(Tracer::enabled());

  const StatsSnapshot before = snapshot_counters();
  EXPECT_EQ(before.value("test.rips"), 10);
  EXPECT_EQ(before.value("test.absent"), 0);

  rips.add(5);
  counter("test.other").add(2);
  const StatsSnapshot diff = delta(before, snapshot_counters());
  EXPECT_EQ(diff.value("test.rips"), 5);
  EXPECT_EQ(diff.value("test.other"), 2);
}

TEST_F(TelemetryTest, CountersAreThreadSafe) {
  Counter& shared = counter("test.mt");
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&shared] {
      for (int i = 0; i < kAddsPerThread; ++i) shared.add(1);
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(shared.value(), kThreads * kAddsPerThread);
}

TEST_F(TelemetryTest, HistogramBucketsByLog2Microseconds) {
  Histogram& h = histogram("test.latency");
  h.record_ns(500);        // < 1us -> bucket 0
  h.record_ns(1500);       // 1us  -> bucket 1
  h.record_ns(3'000'000);  // 3000us -> bucket 12 (2^12 = 4096 > 3000)
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.total_ns(), 500u + 1500u + 3'000'000u);
  const auto buckets = h.buckets();
  EXPECT_EQ(buckets[0], 1);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[12], 1);
}

TEST_F(TelemetryTest, ChromeTraceJsonIsByteStableUnderFixedClock) {
  const auto run_once = [] {
    reset_for_testing();
    g_fake_now_ns = 0;
    set_clock_for_testing(&fake_clock);
    Tracer::enable();
    {
      TELEMETRY_SPAN("pipeline.run");
      { TELEMETRY_SPAN("pipeline.global"); }
    }
    std::ostringstream out;
    Tracer::write_chrome_trace(out);
    return out.str();
  };

  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);

  const std::string expected =
      "{\"traceEvents\": [\n"
      "{\"name\": \"pipeline.run\", \"cat\": \"mebl\", \"ph\": \"X\", "
      "\"ts\": 1.000, \"dur\": 3.000, \"pid\": 1, \"tid\": 1, "
      "\"args\": {\"depth\": 0}},\n"
      "{\"name\": \"pipeline.global\", \"cat\": \"mebl\", \"ph\": \"X\", "
      "\"ts\": 2.000, \"dur\": 1.000, \"pid\": 1, \"tid\": 1, "
      "\"args\": {\"depth\": 1}}\n"
      "], \"displayTimeUnit\": \"ms\"}\n";
  EXPECT_EQ(first, expected);
}

TEST_F(TelemetryTest, StatsJsonIsDeterministicAndSorted) {
  counter("zeta").add(26);
  counter("alpha").add(1);

  std::ostringstream out;
  write_stats_json(snapshot_counters(), out);
  const std::string json = out.str();

  // Name-sorted regardless of registration order.
  EXPECT_LT(json.find("\"alpha\": 1"), json.find("\"zeta\": 26"));

  std::ostringstream again;
  write_stats_json(snapshot_counters(), again);
  EXPECT_EQ(json, again.str());
}

TEST_F(TelemetryTest, ResetZeroesButKeepsReferencesValid) {
  Counter& c = counter("test.sticky");
  c.add(7);
  Histogram& h = histogram("test.sticky_ns");
  h.record_ns(10);
  reset_for_testing();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  c.add(2);  // the pre-reset reference still points at the live counter
  EXPECT_EQ(counter("test.sticky").value(), 2);
}

TEST_F(TelemetryTest, SpansCaptureDistinctThreadIds) {
  set_clock_for_testing(&fake_clock);
  Tracer::enable();
  {
    TELEMETRY_SPAN("main_thread");
  }
  std::thread worker([] { TELEMETRY_SPAN("worker_thread"); });
  worker.join();

  const auto events = Tracer::events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

}  // namespace
}  // namespace mebl::telemetry
