#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mebl::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i)
    if (a.next() != b.next()) ++differing;
  EXPECT_GE(differing, 15);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(5);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i)
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 7))];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / 8 * 0.9);
    EXPECT_LT(c, kDraws / 8 * 1.1);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, NormalishMeanNearZero) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.normalish();
  EXPECT_NEAR(sum / kDraws, 0.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng parent_copy(23);
  parent_copy.split();
  int same = 0;
  for (int i = 0; i < 16; ++i)
    if (child.next() == a.next()) ++same;
  EXPECT_LE(same, 1);
}

}  // namespace
}  // namespace mebl::util
