#include "graph/shortest_path.hpp"

#include <gtest/gtest.h>

namespace mebl::graph {
namespace {

TEST(Dijkstra, FindsShortestPathInSmallGraph) {
  AdjacencyGraph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 5.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  const auto tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.dist[2], 2.0);
  EXPECT_DOUBLE_EQ(tree.dist[4], 4.0);
  const auto path = tree.path_to(4);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 4);
}

TEST(Dijkstra, UnreachableNodeHasInfiniteDistance) {
  AdjacencyGraph g(3);
  g.add_edge(0, 1, 1.0);
  const auto tree = dijkstra(g, 0);
  EXPECT_FALSE(tree.reached(2));
  EXPECT_TRUE(tree.path_to(2).empty());
}

TEST(Dijkstra, SourceDistanceIsZero) {
  AdjacencyGraph g(2);
  g.add_edge(0, 1, 3.0);
  const auto tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.dist[0], 0.0);
  const auto path = tree.path_to(0);
  ASSERT_EQ(path.size(), 1u);
}

TEST(Dijkstra, TargetedSearchMatchesFullSearch) {
  AdjacencyGraph g(6);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 2, 1.0);
  g.add_edge(2, 5, 1.0);
  const auto full = dijkstra(g, 0);
  const auto targeted = dijkstra(g, 0, 5);
  EXPECT_DOUBLE_EQ(targeted.dist[5], full.dist[5]);
}

TEST(Dijkstra, DirectedArcsRespectDirection) {
  AdjacencyGraph g(2);
  g.add_arc(0, 1, 1.0);
  const auto from1 = dijkstra(g, 1);
  EXPECT_FALSE(from1.reached(0));
}

TEST(Dijkstra, PrefersCheaperMultiEdge) {
  AdjacencyGraph g(2);
  g.add_arc(0, 1, 5.0);
  g.add_arc(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(dijkstra(g, 0).dist[1], 2.0);
}

}  // namespace
}  // namespace mebl::graph
