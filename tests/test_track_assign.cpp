#include "assign/track_assign.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace mebl::assign {
namespace {

using geom::Coord;
using geom::Interval;

/// Common validity checks for any track-assignment result:
/// pieces cover the segment rows exactly, tracks stay in the panel, never on
/// a stitch column, and no two segments share (row, track).
void expect_valid(const TrackAssignInstance& instance,
                  const TrackAssignResult& result) {
  ASSERT_EQ(result.tracks.size(), instance.segments.size());
  std::map<std::pair<Coord, Coord>, std::size_t> occupancy;
  for (std::size_t i = 0; i < instance.segments.size(); ++i) {
    const auto& seg = instance.segments[i];
    const auto& track = result.tracks[i];
    if (track.ripped) {
      EXPECT_TRUE(track.pieces.empty());
      continue;
    }
    ASSERT_FALSE(track.pieces.empty());
    Coord expect_row = seg.rows.lo;
    for (const auto& [rows, x] : track.pieces) {
      EXPECT_EQ(rows.lo, expect_row);
      expect_row = rows.hi + 1;
      EXPECT_GE(x, instance.x_span.lo);
      EXPECT_LE(x, instance.x_span.hi);
      EXPECT_FALSE(instance.stitch->is_stitch_column(x));
      for (Coord r = rows.lo; r <= rows.hi; ++r) {
        const auto [it, inserted] = occupancy.insert({{r, x}, i});
        EXPECT_TRUE(inserted) << "segments " << it->second << " and " << i
                              << " share row " << r << " track " << x;
      }
    }
    EXPECT_EQ(expect_row, seg.rows.hi + 1);
  }
}

TrackAssignInstance make_instance(const grid::StitchPlan& stitch,
                                  Interval x_span,
                                  std::vector<TrackSegment> segments) {
  TrackAssignInstance instance;
  instance.x_span = x_span;
  instance.stitch = &stitch;
  instance.segments = std::move(segments);
  return instance;
}

TEST(BadEnd, DetectsUnfriendlyEndTowardCrossedLine) {
  const grid::StitchPlan stitch(60, 15, 1);
  // Track 16 is next to line 15; a wire leaving to smaller x crosses it.
  EXPECT_TRUE(is_bad_end(16, -1, stitch));
  // Leaving toward larger x crosses line 30, which is far: not bad.
  EXPECT_FALSE(is_bad_end(16, +1, stitch));
  EXPECT_TRUE(is_bad_end(14, +1, stitch));
  EXPECT_FALSE(is_bad_end(14, -1, stitch));
  // No horizontal continuation -> never bad.
  EXPECT_FALSE(is_bad_end(16, 0, stitch));
  // Far from any line.
  EXPECT_FALSE(is_bad_end(22, -1, stitch));
  EXPECT_FALSE(is_bad_end(22, +1, stitch));
}

TEST(BadEnd, NoLinesMeansNoBadEnds) {
  const auto stitch = grid::StitchPlan::none(60);
  EXPECT_FALSE(is_bad_end(5, -1, stitch));
}

TEST(TrackAssignBaseline, AssignsDisjointSegmentsToSameTrack) {
  const grid::StitchPlan stitch(60, 15, 1);
  auto instance = make_instance(stitch, {0, 13},
                                {{0, {0, 2}, 0, 0, 0}, {1, {4, 6}, 0, 0, 1}});
  const auto result = track_assign_baseline(instance);
  expect_valid(instance, result);
  EXPECT_EQ(result.total_ripped, 0);
  EXPECT_EQ(result.tracks[0].pieces[0].second,
            result.tracks[1].pieces[0].second);
}

TEST(TrackAssignBaseline, RipsSegmentsLandingOnStitchColumns) {
  const grid::StitchPlan stitch(60, 15, 1);
  // Panel covering exactly the line column 15 plus one free track each side:
  // first-fit places the 2nd overlapping segment on x=15 -> ripped.
  auto instance = make_instance(
      stitch, {14, 16}, {{0, {0, 5}, 0, 0, 0}, {1, {0, 5}, 0, 0, 1}});
  const auto result = track_assign_baseline(instance);
  expect_valid(instance, result);
  EXPECT_EQ(result.total_ripped, 1);
}

TEST(TrackAssignBaseline, RipsWhenPanelFull) {
  const grid::StitchPlan stitch(60, 15, 1);
  auto instance = make_instance(
      stitch, {17, 18},
      {{0, {0, 5}, 0, 0, 0}, {1, {0, 5}, 0, 0, 1}, {2, {0, 5}, 0, 0, 2}});
  const auto result = track_assign_baseline(instance);
  expect_valid(instance, result);
  EXPECT_EQ(result.total_ripped, 1);
}

TEST(TrackAssignGraph, AvoidsBadEndWithPlentyOfRoom) {
  const grid::StitchPlan stitch(60, 15, 1);
  // A single segment whose lower end's wire leaves to smaller x: tracks 16
  // (unfriendly next to line 15) must be avoided; any track >= 17 is fine.
  auto instance =
      make_instance(stitch, {16, 29}, {{0, {0, 5}, -1, 0, 0}});
  const auto result = track_assign_graph(instance);
  expect_valid(instance, result);
  EXPECT_EQ(result.total_bad_ends, 0);
  EXPECT_GE(result.tracks[0].pieces.front().second, 17);
}

TEST(TrackAssignGraph, PacksDenselyWithoutConflicts) {
  const grid::StitchPlan stitch(90, 15, 1);
  std::vector<TrackSegment> segments;
  for (int i = 0; i < 12; ++i)
    segments.push_back({static_cast<std::size_t>(i),
                        {static_cast<Coord>(i % 3), static_cast<Coord>(5 + i % 4)},
                        i % 2 ? -1 : +1, i % 3 ? +1 : 0,
                        static_cast<netlist::NetId>(i)});
  auto instance = make_instance(stitch, {30, 59}, std::move(segments));
  const auto result = track_assign_graph(instance);
  expect_valid(instance, result);
  EXPECT_EQ(result.total_ripped, 0);
}

TEST(TrackAssignGraph, OverDensePanelRipsInsteadOfOverlapping) {
  const grid::StitchPlan stitch(60, 15, 1);
  std::vector<TrackSegment> segments;
  for (int i = 0; i < 5; ++i)  // 5 overlapping segments, only 2 free tracks
    segments.push_back({static_cast<std::size_t>(i), {0, 9}, 0, 0,
                        static_cast<netlist::NetId>(i)});
  auto instance = make_instance(stitch, {17, 18}, std::move(segments));
  const auto result = track_assign_graph(instance);
  expect_valid(instance, result);
  EXPECT_EQ(result.total_ripped, 3);
}

TEST(TrackAssignGraph, UsesDoglegToResolveConflictingBadEnds) {
  const grid::StitchPlan stitch(60, 15, 1);
  // Region [16, 20] between lines 15 and 30 (5 tracks, track 16 unfriendly
  // on the left, none on the right within span). Two segments whose low ends
  // both must avoid the left unfriendly track; they overlap partially, so a
  // dogleg (or careful ordering) is needed.
  auto instance = make_instance(
      stitch, {16, 20},
      {{0, {0, 6}, -1, -1, 0}, {1, {4, 9}, -1, 0, 1}, {2, {0, 3}, 0, 0, 2}});
  const auto result = track_assign_graph(instance);
  expect_valid(instance, result);
  EXPECT_EQ(result.total_ripped, 0);
  EXPECT_EQ(result.total_bad_ends, 0);
}

TEST(TrackAssignGraph, CountsUnavoidableBadEnds) {
  const grid::StitchPlan stitch(60, 15, 1);
  // Only unfriendly tracks available: both ends crossing lines -> bad ends
  // are unavoidable but counted.
  auto instance = make_instance(stitch, {16, 16}, {{0, {0, 3}, -1, 0, 0}});
  const auto result = track_assign_graph(instance);
  expect_valid(instance, result);
  EXPECT_EQ(result.total_ripped, 0);
  EXPECT_EQ(result.total_bad_ends, 1);
}

TEST(TrackAssignGraph, RandomInstancesAlwaysValid) {
  const grid::StitchPlan stitch(150, 15, 1);
  util::Rng rng(44);
  for (int round = 0; round < 40; ++round) {
    std::vector<TrackSegment> segments;
    const int n = static_cast<int>(rng.uniform_int(1, 18));
    for (int i = 0; i < n; ++i) {
      const auto lo = static_cast<Coord>(rng.uniform_int(0, 10));
      const auto hi = static_cast<Coord>(rng.uniform_int(lo, 12));
      segments.push_back({static_cast<std::size_t>(i), {lo, hi},
                          static_cast<int>(rng.uniform_int(-1, 1)),
                          static_cast<int>(rng.uniform_int(-1, 1)),
                          static_cast<netlist::NetId>(i)});
    }
    const auto panel_start = static_cast<Coord>(30 * rng.uniform_int(0, 3));
    auto instance = make_instance(stitch, {panel_start, panel_start + 29},
                                  std::move(segments));
    const auto result = track_assign_graph(instance);
    expect_valid(instance, result);
  }
}

TEST(TrackAssignGraph, BadEndCountsMatchRecount) {
  const grid::StitchPlan stitch(150, 15, 1);
  util::Rng rng(45);
  for (int round = 0; round < 20; ++round) {
    std::vector<TrackSegment> segments;
    const int n = static_cast<int>(rng.uniform_int(4, 20));
    for (int i = 0; i < n; ++i) {
      const auto lo = static_cast<Coord>(rng.uniform_int(0, 8));
      const auto hi = static_cast<Coord>(rng.uniform_int(lo, 10));
      segments.push_back({static_cast<std::size_t>(i), {lo, hi},
                          static_cast<int>(rng.uniform_int(-1, 1)),
                          static_cast<int>(rng.uniform_int(-1, 1)),
                          static_cast<netlist::NetId>(i)});
    }
    auto instance = make_instance(stitch, {0, 29}, std::move(segments));
    const auto result = track_assign_graph(instance);
    int recount = 0;
    for (std::size_t i = 0; i < instance.segments.size(); ++i)
      recount += count_bad_ends(instance.segments[i], result.tracks[i], stitch);
    EXPECT_EQ(result.total_bad_ends, recount);
  }
}

}  // namespace
}  // namespace mebl::assign
