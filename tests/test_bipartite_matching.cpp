#include "graph/bipartite_matching.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace mebl::graph {
namespace {

bool is_permutation_matching(const std::vector<std::size_t>& match) {
  std::vector<bool> seen(match.size(), false);
  for (const auto m : match) {
    if (m >= match.size() || seen[m]) return false;
    seen[m] = true;
  }
  return true;
}

TEST(Matching, Identity2x2) {
  const std::vector<std::vector<double>> cost{{0.0, 10.0}, {10.0, 0.0}};
  const auto match = min_weight_perfect_matching(cost);
  EXPECT_EQ(match[0], 0u);
  EXPECT_EQ(match[1], 1u);
  EXPECT_DOUBLE_EQ(matching_weight(cost, match), 0.0);
}

TEST(Matching, CrossIsCheaper) {
  const std::vector<std::vector<double>> cost{{5.0, 1.0}, {1.0, 5.0}};
  const auto match = min_weight_perfect_matching(cost);
  EXPECT_EQ(match[0], 1u);
  EXPECT_EQ(match[1], 0u);
  EXPECT_DOUBLE_EQ(matching_weight(cost, match), 2.0);
}

TEST(Matching, EmptyInput) {
  EXPECT_TRUE(min_weight_perfect_matching({}).empty());
}

TEST(Matching, SingleElement) {
  const auto match = min_weight_perfect_matching({{7.0}});
  ASSERT_EQ(match.size(), 1u);
  EXPECT_EQ(match[0], 0u);
}

TEST(Matching, MatchesBruteForceOnRandom4x4) {
  util::Rng rng(31);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::vector<double>> cost(4, std::vector<double>(4));
    for (auto& row : cost)
      for (auto& c : row) c = static_cast<double>(rng.uniform_int(0, 50));
    const auto match = min_weight_perfect_matching(cost);
    ASSERT_TRUE(is_permutation_matching(match));
    const double got = matching_weight(cost, match);

    std::vector<std::size_t> perm(4);
    std::iota(perm.begin(), perm.end(), 0);
    double best = 1e18;
    do {
      best = std::min(best, matching_weight(cost, perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_DOUBLE_EQ(got, best) << "round " << round;
  }
}

TEST(Matching, HandlesNegativeCosts) {
  const std::vector<std::vector<double>> cost{{-5.0, 0.0}, {0.0, -5.0}};
  const auto match = min_weight_perfect_matching(cost);
  EXPECT_DOUBLE_EQ(matching_weight(cost, match), -10.0);
}

}  // namespace
}  // namespace mebl::graph
