#include "assign/layer_assign.hpp"

#include <gtest/gtest.h>

#include "bench_suite/layer_instance_generator.hpp"
#include "util/rng.hpp"

namespace mebl::assign {
namespace {

void expect_valid_grouping(const LayerAssignment& assignment, std::size_t n,
                           int k) {
  ASSERT_EQ(assignment.group.size(), n);
  for (const int g : assignment.group) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, k);
  }
}

TEST(LayerAssign, TwoOverlappingSegmentsSplitAcrossTwoLayers) {
  const std::vector<SegmentProfile> segments{{{0, 4}, 0}, {{2, 6}, 1}};
  const auto graph = build_conflict_graph(segments, true);
  for (const auto& assignment :
       {assign_layers_mst(graph, 2), assign_layers_ours(graph, 2)}) {
    expect_valid_grouping(assignment, 2, 2);
    EXPECT_NE(assignment.group[0], assignment.group[1]);
    EXPECT_DOUBLE_EQ(assignment.cost, 0.0);
  }
}

TEST(LayerAssign, SingleLayerPutsEverythingTogether) {
  const std::vector<SegmentProfile> segments{{{0, 4}, 0}, {{2, 6}, 1}};
  const auto graph = build_conflict_graph(segments, true);
  const auto assignment = assign_layers_ours(graph, 1);
  expect_valid_grouping(assignment, 2, 1);
  EXPECT_GT(assignment.cost, 0.0);
}

TEST(LayerAssign, EmptyGraph) {
  const ConflictGraph graph;
  EXPECT_TRUE(assign_layers_mst(graph, 3).group.empty());
  EXPECT_TRUE(assign_layers_ours(graph, 3).group.empty());
}

TEST(LayerAssign, CostMatchesColoringCost) {
  util::Rng rng(5);
  bench_suite::LayerInstanceConfig config;
  config.segments = 20;
  const auto segments = bench_suite::generate_layer_instance(config, rng);
  const auto graph = build_conflict_graph(segments, true);
  for (int k = 2; k <= 4; ++k) {
    const auto mst = assign_layers_mst(graph, k);
    EXPECT_DOUBLE_EQ(mst.cost, graph.coloring_cost(mst.group));
    const auto ours = assign_layers_ours(graph, k);
    EXPECT_DOUBLE_EQ(ours.cost, graph.coloring_cost(ours.group));
  }
}

TEST(LayerAssign, OursBeatsOrTiesMstOnAverage) {
  // Table VI's qualitative claim, verified on random instances.
  util::Rng rng(6);
  bench_suite::LayerInstanceConfig config;
  for (int k = 2; k <= 5; ++k) {
    double mst_total = 0.0, ours_total = 0.0;
    for (int i = 0; i < 12; ++i) {
      const auto segments = bench_suite::generate_layer_instance(config, rng);
      const auto graph = build_conflict_graph(segments, true);
      mst_total += assign_layers_mst(graph, k).cost;
      ours_total += assign_layers_ours(graph, k).cost;
    }
    EXPECT_LE(ours_total, mst_total) << "k=" << k;
  }
}

TEST(LayerAssign, MoreLayersNeverHurt) {
  util::Rng rng(8);
  bench_suite::LayerInstanceConfig config;
  const auto segments = bench_suite::generate_layer_instance(config, rng);
  const auto graph = build_conflict_graph(segments, true);
  double prev = std::numeric_limits<double>::infinity();
  for (int k = 2; k <= 5; ++k) {
    const auto ours = assign_layers_ours(graph, k);
    EXPECT_LE(ours.cost, prev) << "k=" << k;
    prev = ours.cost;
  }
}

TEST(LayerAssign, GroupOrderingIsPermutation) {
  util::Rng rng(10);
  bench_suite::LayerInstanceConfig config;
  config.segments = 15;
  const auto segments = bench_suite::generate_layer_instance(config, rng);
  const auto graph = build_conflict_graph(segments, true);
  for (int k = 1; k <= 4; ++k) {
    const auto assignment = assign_layers_ours(graph, k);
    const auto slots = order_groups_for_vias(graph, assignment.group, k);
    ASSERT_EQ(slots.size(), static_cast<std::size_t>(k));
    std::vector<bool> seen(static_cast<std::size_t>(k), false);
    for (const int s : slots) {
      ASSERT_GE(s, 0);
      ASSERT_LT(s, k);
      EXPECT_FALSE(seen[static_cast<std::size_t>(s)]);
      seen[static_cast<std::size_t>(s)] = true;
    }
  }
}

TEST(LayerAssign, PaperFig9StyleInstanceOursWins) {
  // Five mutually structured segments similar to Fig. 8/9: our heuristic
  // must not be worse than the MST tree coloring at k=3.
  const std::vector<SegmentProfile> segments{
      {{0, 3}, 0}, {{2, 5}, 1}, {{4, 9}, 2}, {{5, 8}, 3}, {{7, 11}, 4}};
  const auto graph = build_conflict_graph(segments, true);
  const auto mst = assign_layers_mst(graph, 3);
  const auto ours = assign_layers_ours(graph, 3);
  EXPECT_LE(ours.cost, mst.cost);
}

}  // namespace
}  // namespace mebl::assign
