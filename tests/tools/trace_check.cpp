// trace_check: validate the artifacts written by `mebl_route_cli --trace
// FILE --stats FILE`. Used by the `telemetry` ctest label as the parse half
// of the CLI smoke test:
//
//   trace_check <trace.json> <stats.json>
//
// The trace must be Chrome trace-event JSON with all four pipeline stage
// spans plus nested (depth > 0) per-net/per-panel spans; the stats dump
// must carry the counters the paper's tables are built from. The JSON
// parser below is deliberately minimal but complete (objects, arrays,
// strings with escapes, numbers, bools, null) so the test exercises a real
// parse, not a substring grep.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  const Value* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ValuePtr parse() {
    ValuePtr value = parse_value();
    skip_ws();
    if (value == nullptr || pos_ != text_.size()) return nullptr;
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  ValuePtr parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return nullptr;
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      if (!literal("null")) return nullptr;
      return std::make_shared<Value>();
    }
    return parse_number();
  }

  ValuePtr parse_object() {
    if (!consume('{')) return nullptr;
    auto value = std::make_shared<Value>();
    value->kind = Value::Kind::kObject;
    skip_ws();
    if (consume('}')) return value;
    while (true) {
      ValuePtr key = parse_string();
      if (key == nullptr || !consume(':')) return nullptr;
      ValuePtr member = parse_value();
      if (member == nullptr) return nullptr;
      value->object[key->string] = std::move(member);
      if (consume(',')) continue;
      if (consume('}')) return value;
      return nullptr;
    }
  }

  ValuePtr parse_array() {
    if (!consume('[')) return nullptr;
    auto value = std::make_shared<Value>();
    value->kind = Value::Kind::kArray;
    skip_ws();
    if (consume(']')) return value;
    while (true) {
      ValuePtr element = parse_value();
      if (element == nullptr) return nullptr;
      value->array.push_back(std::move(element));
      if (consume(',')) continue;
      if (consume(']')) return value;
      return nullptr;
    }
  }

  ValuePtr parse_string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return nullptr;
    ++pos_;
    auto value = std::make_shared<Value>();
    value->kind = Value::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return nullptr;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':  // keep it simple: skip the four hex digits
            if (pos_ + 4 > text_.size()) return nullptr;
            pos_ += 4;
            c = '?';
            break;
          default: return nullptr;
        }
      }
      value->string.push_back(c);
    }
    if (pos_ >= text_.size()) return nullptr;
    ++pos_;  // closing quote
    return value;
  }

  ValuePtr parse_bool() {
    auto value = std::make_shared<Value>();
    value->kind = Value::Kind::kBool;
    if (literal("true")) {
      value->boolean = true;
      return value;
    }
    if (literal("false")) return value;
    return nullptr;
  }

  ValuePtr parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return nullptr;
    auto value = std::make_shared<Value>();
    value->kind = Value::Kind::kNumber;
    value->number = std::stod(text_.substr(start, pos_ - start));
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

ValuePtr load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace_check: cannot open " << path << "\n";
    return nullptr;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  ValuePtr value = Parser(text).parse();
  if (value == nullptr)
    std::cerr << "trace_check: " << path << " is not valid JSON\n";
  return value;
}

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) return;
  std::cerr << "trace_check: FAIL: " << what << "\n";
  ++g_failures;
}

void check_trace(const Value& root) {
  const Value* events = root.get("traceEvents");
  check(events != nullptr && events->kind == Value::Kind::kArray,
        "trace has a traceEvents array");
  if (events == nullptr || events->kind != Value::Kind::kArray) return;
  check(!events->array.empty(), "traceEvents is non-empty");

  std::map<std::string, int> span_counts;
  int max_depth = 0;
  for (const auto& event : events->array) {
    const Value* name = event->get("name");
    const Value* ph = event->get("ph");
    const Value* ts = event->get("ts");
    const Value* dur = event->get("dur");
    const Value* pid = event->get("pid");
    const Value* tid = event->get("tid");
    check(name != nullptr && name->kind == Value::Kind::kString,
          "event has a string name");
    check(ph != nullptr && ph->string == "X",
          "event is a complete ('X') span");
    check(ts != nullptr && ts->kind == Value::Kind::kNumber &&
              ts->number >= 0.0,
          "event has a numeric ts");
    check(dur != nullptr && dur->kind == Value::Kind::kNumber &&
              dur->number >= 0.0,
          "event has a numeric dur");
    check(pid != nullptr && pid->kind == Value::Kind::kNumber,
          "event has a pid");
    check(tid != nullptr && tid->kind == Value::Kind::kNumber,
          "event has a tid");
    if (name != nullptr) ++span_counts[name->string];
    if (const Value* args = event->get("args")) {
      if (const Value* depth = args->get("depth"))
        max_depth = std::max(max_depth, static_cast<int>(depth->number));
    }
    if (g_failures > 0) break;  // one malformed event is enough detail
  }

  // All four pipeline stages appear as top-level spans...
  for (const char* stage : {"pipeline.global", "pipeline.layer_assign",
                            "pipeline.track_assign", "pipeline.detail"})
    check(span_counts[stage] == 1,
          std::string("exactly one span named ") + stage);
  // ...with per-net / per-panel work nested below them.
  check(span_counts["detail.subnet"] > 0, "nested detail.subnet spans exist");
  check(span_counts["assign.track.panel"] > 0,
        "nested assign.track.panel spans exist");
  check(max_depth >= 2, "spans nest at least two levels deep");
}

void check_stats(const Value& root) {
  const Value* counters = root.get("counters");
  check(counters != nullptr && counters->kind == Value::Kind::kObject,
        "stats has a counters object");
  if (counters == nullptr) return;
  for (const char* key :
       {"detail.ripup.rescued", "detail.astar.expansions",
        "assign.track.ilp_nodes", "eval.short_polygons"}) {
    const Value* counter = counters->get(key);
    check(counter != nullptr && counter->kind == Value::Kind::kNumber,
          std::string("stats counter present: ") + key);
  }
  const Value* histograms = root.get("histograms");
  check(histograms != nullptr && histograms->kind == Value::Kind::kObject,
        "stats has a histograms object");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: trace_check <trace.json> <stats.json>\n";
    return 2;
  }
  const ValuePtr trace = load_json(argv[1]);
  const ValuePtr stats = load_json(argv[2]);
  if (trace == nullptr || stats == nullptr) return 1;
  check_trace(*trace);
  check_stats(*stats);
  if (g_failures > 0) return 1;
  std::cout << "trace_check: OK (" << argv[1] << ", " << argv[2] << ")\n";
  return 0;
}
