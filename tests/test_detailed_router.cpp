#include "detail/detailed_router.hpp"

#include <gtest/gtest.h>

#include "detail/net_ordering.hpp"

namespace mebl::detail {
namespace {

using geom::Coord;
using geom::Interval;
using geom::Orientation;

grid::RoutingGrid make_grid(Coord w = 120, Coord h = 120) {
  return grid::RoutingGrid(w, h, 3, 30, grid::StitchPlan(w, 15));
}

TEST(NetOrdering, BadEndsFirstThenSmallBbox) {
  assign::RoutePlan plan;
  plan.runs_of_path.resize(3);
  assign::GlobalRun bad_run;
  bad_run.bad_ends = 2;
  plan.runs.push_back(bad_run);
  plan.runs_of_path[2] = {0};  // subnet 2 carries the bad ends

  const std::vector<netlist::Subnet> subnets{
      {0, {0, 0}, {50, 50}},  // big
      {1, {0, 0}, {3, 3}},    // small
      {2, {0, 0}, {90, 90}},  // biggest but has bad ends
  };
  const auto order = order_subnets(subnets, plan, /*stitch_aware=*/true);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 0u);

  const auto baseline = order_subnets(subnets, plan, false);
  EXPECT_EQ(baseline[0], 1u);
  EXPECT_EQ(baseline[2], 2u);
}

TEST(DetailedRouter, RoutesSubnetsWithoutPlan) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  DetailedRouter router(grid);
  const std::vector<netlist::Subnet> subnets{{0, {5, 5}, {40, 40}},
                                             {1, {10, 50}, {70, 20}}};
  assign::RoutePlan plan;
  plan.runs_of_path.resize(subnets.size());
  const auto result = router.route_all(subnets, plan);
  EXPECT_EQ(result.routed, 2);
  EXPECT_EQ(result.failed, 0);
  EXPECT_EQ(result.astar_routed + result.pattern_routed, 2);
  EXPECT_EQ(result.planned_realized, 0);
}

TEST(DetailedRouter, ClaimPinsBlocksForeignNets) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  netlist::Netlist nl;
  const auto a = nl.add_net("a");
  nl.add_pin(a, {5, 5});
  DetailedRouter router(grid);
  router.claim_pins(nl);
  EXPECT_EQ(grid.owner({5, 5, 0}), a);
}

/// Build a one-subnet plan with a vertical run through column panel 1 and
/// verify the router realizes exactly the assigned track.
TEST(DetailedRouter, RealizesPlannedTrack) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  DetailedRouter router(grid);

  // Subnet from (5,5) to (50, 100): global route right then up.
  const std::vector<netlist::Subnet> subnets{{0, {5, 5}, {50, 100}}};
  assign::RoutePlan plan;
  assign::GlobalRun h;
  h.net = 0;
  h.path_index = 0;
  h.dir = Orientation::kHorizontal;
  h.fixed_tile = 0;          // row panel ty=0
  h.span = {0, 1};           // tiles 0..1 in x
  h.layer = 1;
  assign::GlobalRun v;
  v.net = 0;
  v.path_index = 0;
  v.dir = Orientation::kVertical;
  v.fixed_tile = 1;          // column panel tx=1
  v.span = {0, 3};
  v.layer = 2;
  v.pieces = {{Interval{0, 3}, 47}};  // assigned track x=47
  plan.runs.push_back(h);
  plan.runs.push_back(v);
  plan.runs_of_path.push_back({0, 1});

  const auto result = router.route_all(subnets, plan);
  EXPECT_EQ(result.planned_realized, 1);
  // The vertical wire sits on the assigned track x=47, layer 2.
  EXPECT_EQ(grid.owner({47, 50, 2}), 0);
  // And connects to both pins.
  EXPECT_EQ(grid.owner({5, 5, 0}), 0);
  EXPECT_EQ(grid.owner({50, 100, 0}), 0);
}

TEST(DetailedRouter, PlannedDoglegRealized) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  DetailedRouter router(grid);

  const std::vector<netlist::Subnet> subnets{{0, {47, 5}, {50, 100}}};
  assign::RoutePlan plan;
  assign::GlobalRun v;
  v.net = 0;
  v.path_index = 0;
  v.dir = Orientation::kVertical;
  v.fixed_tile = 1;
  v.span = {0, 3};
  v.layer = 2;
  v.pieces = {{Interval{0, 1}, 47}, {Interval{2, 3}, 50}};  // dogleg
  plan.runs.push_back(v);
  plan.runs_of_path.push_back({0});

  const auto result = router.route_all(subnets, plan);
  EXPECT_EQ(result.planned_realized, 1);
  EXPECT_EQ(grid.owner({47, 30, 2}), 0);   // first piece
  EXPECT_EQ(grid.owner({50, 80, 2}), 0);   // second piece
}

TEST(DetailedRouter, FallsBackToAStarWhenPlannedTrackBlocked) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  // Block the planned track with a foreign net.
  for (Coord y = 20; y <= 40; ++y) grid.claim({47, y, 2}, 99);
  DetailedRouter router(grid);

  const std::vector<netlist::Subnet> subnets{{0, {47, 5}, {47, 100}}};
  assign::RoutePlan plan;
  assign::GlobalRun v;
  v.net = 0;
  v.path_index = 0;
  v.dir = Orientation::kVertical;
  v.fixed_tile = 1;
  v.span = {0, 3};
  v.layer = 2;
  v.pieces = {{Interval{0, 3}, 47}};
  plan.runs.push_back(v);
  plan.runs_of_path.push_back({0});

  const auto result = router.route_all(subnets, plan);
  EXPECT_EQ(result.routed, 1);
  EXPECT_EQ(result.planned_realized, 0);
  EXPECT_EQ(result.astar_routed + result.pattern_routed, 1);
}

TEST(DetailedRouter, RippedRunsRouteDirectly) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  DetailedRouter router(grid);
  const std::vector<netlist::Subnet> subnets{{0, {5, 5}, {50, 100}}};
  assign::RoutePlan plan;
  assign::GlobalRun v;
  v.net = 0;
  v.path_index = 0;
  v.dir = Orientation::kVertical;
  v.fixed_tile = 1;
  v.span = {0, 3};
  v.layer = 2;
  v.ripped = true;  // no pieces
  plan.runs.push_back(v);
  plan.runs_of_path.push_back({0});
  const auto result = router.route_all(subnets, plan);
  EXPECT_EQ(result.routed, 1);
  EXPECT_EQ(result.planned_realized, 0);  // ripped plan cannot be realized
  EXPECT_EQ(result.astar_routed + result.pattern_routed, 1);
}

TEST(DetailedRouter, ManyParallelSubnetsAllRouted) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  DetailedRouter router(grid);
  std::vector<netlist::Subnet> subnets;
  for (int i = 0; i < 20; ++i) {
    const auto y = static_cast<Coord>(3 + 5 * i);
    subnets.push_back({i, {2, y}, {110, y}});
  }
  assign::RoutePlan plan;
  plan.runs_of_path.resize(subnets.size());
  const auto result = router.route_all(subnets, plan);
  EXPECT_EQ(result.routed, 20);
  EXPECT_EQ(result.failed, 0);
}

}  // namespace
}  // namespace mebl::detail
