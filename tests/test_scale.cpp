// Paper-scale routing tests (ctest label `scale`, DESIGN.md §15): the tiled
// sparse grid answers exactly like the dense representation (bit-identical
// costs under random demand churn, materializing precisely the touched
// tiles), the global router's results and the whole pipeline's canonical
// report bytes are invariant under the storage switch and the thread count,
// corridor-confined searches refuse paths outside the corridor and the
// router falls back to the full grid, and the multilevel pass routes
// everything deterministically — including through the serving layer's
// incremental-ECO replay gate.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_suite/circuit_generator.hpp"
#include "core/stitch_router.hpp"
#include "exec/thread_pool.hpp"
#include "global/global_router.hpp"
#include "global/search_scratch.hpp"
#include "grid/gcell.hpp"
#include "netlist/decompose.hpp"
#include "report/report.hpp"
#include "serve/resident_design.hpp"
#include "telemetry/keys.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace {

using namespace mebl;
using geom::Rect;
using grid::GCellId;

constexpr std::uint64_t kSeed = 20130602u;

/// The psi formula, restated independently of RoutingGraph (same
/// expression, so IEEE semantics make exact-equality comparisons
/// meaningful).
double direct_psi(int demand, int capacity) {
  if (capacity <= 0) return demand > 0 ? 1e9 : 0.0;
  return std::exp2(static_cast<double>(demand) / capacity) - 1.0;
}

// --------------------------------------------- tiled storage equivalence

/// Mirror random demand churn into a dense and a tiled RoutingGraph over
/// the same grid and require the full read surface — demands, marginal
/// costs, overflow aggregates — to stay bit-identical, while the tiled
/// side materializes exactly the set of tiles that ever took a write.
TEST(TiledGraph, RandomChurnMatchesDenseTwinAndMaterializesTouchedTilesOnly) {
  const geom::Coord tile = 8;
  const grid::RoutingGrid rg(24 * tile, 18 * tile, 3, tile,
                             grid::StitchPlan(24 * tile, 3 * tile));
  global::RoutingGraph dense(rg, true, /*tiled=*/false);
  global::RoutingGraph tiled(rg, true, /*tiled=*/true);
  const int tiles_x = dense.tiles_x();
  const int tiles_y = dense.tiles_y();
  ASSERT_EQ(tiled.tiles_total(), static_cast<std::size_t>(tiles_x) * tiles_y);
  EXPECT_EQ(tiled.tiles_materialized(), 0u);

  const auto verify_all = [&] {
    for (int ty = 0; ty < tiles_y; ++ty)
      for (int tx = 0; tx < tiles_x; ++tx) {
        // Edge accessors are only defined where the edge exists (h: to the
        // right, v: upward), matching the routing kernel's usage.
        if (tx + 1 < tiles_x) {
          ASSERT_EQ(tiled.h_capacity(tx, ty), dense.h_capacity(tx, ty));
          ASSERT_EQ(tiled.h_demand(tx, ty), dense.h_demand(tx, ty));
          ASSERT_EQ(tiled.h_cost(tx, ty), dense.h_cost(tx, ty));
          ASSERT_EQ(tiled.h_cost(tx, ty, 3), dense.h_cost(tx, ty, 3));
        }
        if (ty + 1 < tiles_y) {
          ASSERT_EQ(tiled.v_capacity(tx, ty), dense.v_capacity(tx, ty));
          ASSERT_EQ(tiled.v_demand(tx, ty), dense.v_demand(tx, ty));
          ASSERT_EQ(tiled.v_cost(tx, ty), dense.v_cost(tx, ty));
        }
        ASSERT_EQ(tiled.vertex_capacity(tx, ty), dense.vertex_capacity(tx, ty));
        ASSERT_EQ(tiled.vertex_demand(tx, ty), dense.vertex_demand(tx, ty));
        ASSERT_EQ(tiled.vertex_cost(tx, ty), dense.vertex_cost(tx, ty));
        ASSERT_EQ(tiled.vertex_cost(tx, ty, 2), dense.vertex_cost(tx, ty, 2));
      }
    EXPECT_EQ(tiled.total_edge_overflow(), dense.total_edge_overflow());
    EXPECT_EQ(tiled.total_vertex_overflow(), dense.total_vertex_overflow());
    EXPECT_EQ(tiled.max_vertex_overflow(), dense.max_vertex_overflow());
  };
  verify_all();  // pristine: untouched tiles serve the axis defaults

  util::Rng rng(kSeed);
  std::set<std::size_t> touched;
  std::vector<std::array<int, 3>> applied;
  for (int step = 0; step < 3000; ++step) {
    const bool remove = !applied.empty() && rng.chance(0.25);
    if (remove) {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(applied.size()) - 1));
      const auto [kind, tx, ty] = applied[i];
      applied.erase(applied.begin() + static_cast<std::ptrdiff_t>(i));
      if (kind == 0) {
        dense.add_h_demand(tx, ty, -1);
        tiled.add_h_demand(tx, ty, -1);
      } else if (kind == 1) {
        dense.add_v_demand(tx, ty, -1);
        tiled.add_v_demand(tx, ty, -1);
      } else {
        dense.add_vertex_demand(tx, ty, -1);
        tiled.add_vertex_demand(tx, ty, -1);
      }
    } else {
      const int kind = static_cast<int>(rng.uniform_int(0, 2));
      // Churn a confined band of the grid so a large remainder stays
      // untouched — the sparse side must keep answering defaults for it.
      const int tx = static_cast<int>(rng.uniform_int(0, tiles_x / 2 - 1));
      const int ty = static_cast<int>(rng.uniform_int(0, tiles_y / 2 - 1));
      if (kind == 0 && tx + 1 >= tiles_x) continue;
      if (kind == 1 && ty + 1 >= tiles_y) continue;
      if (kind == 0) {
        dense.add_h_demand(tx, ty, 1);
        tiled.add_h_demand(tx, ty, 1);
      } else if (kind == 1) {
        dense.add_v_demand(tx, ty, 1);
        tiled.add_v_demand(tx, ty, 1);
      } else {
        dense.add_vertex_demand(tx, ty, 1);
        tiled.add_vertex_demand(tx, ty, 1);
      }
      touched.insert(static_cast<std::size_t>(ty) * tiles_x + tx);
      applied.push_back({kind, tx, ty});
    }
    // Rip-up back to zero never un-materializes: the invariant is exact
    // equality with the ever-touched set, not the currently-nonzero set.
    ASSERT_EQ(tiled.tiles_materialized(), touched.size()) << "step " << step;
    if (step % 250 == 0) verify_all();
  }
  verify_all();

  // The churn stayed inside one quadrant, so the sparse representation must
  // be far below the dense footprint of the same grid.
  EXPECT_LE(touched.size(), tiled.tiles_total() / 2);
  EXPECT_LT(tiled.storage_bytes(),
            global::RoutingGraph::dense_storage_bytes(tiles_x, tiles_y));
}

TEST(TiledGraph, UntouchedTileCostsEqualDirectPsiOfDemandOne) {
  const grid::RoutingGrid rg(120, 90, 3, 10, grid::StitchPlan(120, 45));
  global::RoutingGraph tiled(rg, true, /*tiled=*/true);
  tiled.add_h_demand(0, 0, 1);  // materialize one corner tile
  EXPECT_EQ(tiled.tiles_materialized(), 1u);
  const int tx = tiled.tiles_x() - 1;
  const int ty = tiled.tiles_y() - 1;
  EXPECT_EQ(tiled.vertex_demand(tx, ty), 0);
  EXPECT_EQ(tiled.vertex_cost(tx, ty),
            direct_psi(1, tiled.vertex_capacity(tx, ty)));
  EXPECT_EQ(tiled.h_cost(1, ty), direct_psi(1, tiled.h_capacity(1, ty)));
  EXPECT_EQ(tiled.v_cost(tx, 1), direct_psi(1, tiled.v_capacity(tx, 1)));
  // Reads never materialize; only writes do.
  EXPECT_EQ(tiled.tiles_materialized(), 1u);
}

// ------------------------------------------------- storage-switch sweeps

class StorageSwitchEquivalence
    : public ::testing::TestWithParam<const char*> {};

/// The headline contract of the storage switch: for every circuit, thread
/// count and multilevel setting, flipping tiled_grid changes *no routed
/// bit* of the GlobalResult.
TEST_P(StorageSwitchEquivalence, GlobalResultBitIdenticalTiledVsDense) {
  const auto* spec = bench_suite::find_spec(GetParam());
  ASSERT_NE(spec, nullptr);
  const auto circuit = bench_suite::generate_circuit(*spec, {}, kSeed);
  const auto subnets = netlist::decompose_all(circuit.netlist);

  const auto route_with = [&](bool tiled, bool multilevel, int threads) {
    global::GlobalRouterConfig config;
    config.net_batch_size = 32;
    config.tiled_grid = tiled;
    config.multilevel.enabled = multilevel;
    exec::ThreadPool pool(threads);
    global::GlobalRouter router(circuit.grid, config);
    return router.route(subnets, &pool);
  };

  for (const bool multilevel : {false, true}) {
    const global::GlobalResult dense = route_with(false, multilevel, 1);
    EXPECT_GT(dense.wirelength, 0);
    for (const int threads : {1, 8}) {
      const global::GlobalResult tiled = route_with(true, multilevel, threads);
      ASSERT_EQ(tiled.paths.size(), dense.paths.size());
      for (std::size_t i = 0; i < dense.paths.size(); ++i) {
        EXPECT_EQ(tiled.paths[i].routed, dense.paths[i].routed)
            << "subnet " << i << " threads " << threads << " ml "
            << multilevel;
        ASSERT_EQ(tiled.paths[i].tiles, dense.paths[i].tiles)
            << "subnet " << i << " threads " << threads << " ml "
            << multilevel;
      }
      EXPECT_EQ(tiled.wirelength, dense.wirelength);
      EXPECT_EQ(tiled.total_vertex_overflow, dense.total_vertex_overflow);
      EXPECT_EQ(tiled.max_vertex_overflow, dense.max_vertex_overflow);
      EXPECT_EQ(tiled.total_edge_overflow, dense.total_edge_overflow);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, StorageSwitchEquivalence,
                         ::testing::Values("S5378", "S9234"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

/// End-to-end form: the ENTIRE canonical run report (grid.* representation
/// telemetry is execution-dependent and excluded by design) must be
/// byte-identical across the storage switch and every thread count.
TEST(StorageSwitchEquivalence, CanonicalReportBytesInvariant) {
  const auto* spec = bench_suite::find_spec("S5378");
  ASSERT_NE(spec, nullptr);
  const auto circuit = bench_suite::generate_circuit(*spec, {}, kSeed);

  const auto canonical_report = [&](bool tiled, bool multilevel,
                                    int threads) {
    core::StitchAwareRouter router(circuit.grid, circuit.netlist,
                                   core::RouterConfig::stitch_aware()
                                       .with_threads(threads)
                                       .with_tiled_grid(tiled)
                                       .with_multilevel(multilevel));
    report::RunReportBuilder builder;
    router.add_observer(&builder);
    const auto result = router.run();
    report::WriteOptions options;
    options.include_timing = false;
    return report::serialize(
        builder.build(result, circuit.grid, circuit.netlist), options);
  };

  const std::string dense = canonical_report(false, false, 1);
  for (const int threads : {1, 8})
    EXPECT_EQ(dense, canonical_report(true, false, threads))
        << "threads=" << threads;

  // Multilevel refinement may legitimately pick different (corridor-guided)
  // paths than the flat search, so it is not compared against the dense
  // baseline — but its own canonical bytes must be thread-invariant and
  // storage-invariant.
  const std::string ml = canonical_report(false, true, 1);
  for (const int threads : {1, 8})
    EXPECT_EQ(ml, canonical_report(true, true, threads))
        << "threads=" << threads;
}

// ------------------------------------------------------ corridor search

TEST(CorridorSearch, WholeRegionCorridorMatchesUnconfinedSearch) {
  const grid::RoutingGrid rg(160, 160, 3, 10, grid::StitchPlan(160, 60));
  global::RoutingGraph graph(rg, true);
  const int tiles_x = graph.tiles_x();
  const int tiles_y = graph.tiles_y();
  const Rect full{0, 0, tiles_x - 1, tiles_y - 1};
  const GCellId from{1, 1};
  const GCellId to{tiles_x - 2, tiles_y - 2};

  global::GlobalSearchScratch scratch;
  double cost_free = 0.0;
  ASSERT_TRUE(global::search_tiles_astar(graph, {}, from, to, full, scratch,
                                         &cost_free));
  const std::vector<GCellId> free_path = scratch.path;

  scratch.begin_corridor(static_cast<std::size_t>(tiles_x) * tiles_y);
  for (std::size_t t = 0; t < static_cast<std::size_t>(tiles_x) * tiles_y;
       ++t)
    scratch.admit_tile(t);
  double cost_corridor = 0.0;
  ASSERT_TRUE(global::search_tiles_astar(graph, {}, from, to, full, scratch,
                                         &cost_corridor,
                                         /*corridor=*/true));
  EXPECT_EQ(scratch.path, free_path);
  EXPECT_EQ(cost_corridor, cost_free);
}

TEST(CorridorSearch, ExcludingCorridorFailsAndFullGridFallbackSucceeds) {
  const grid::RoutingGrid rg(160, 160, 3, 10, grid::StitchPlan(160, 60));
  global::RoutingGraph graph(rg, true);
  const int tiles_x = graph.tiles_x();
  const int tiles_y = graph.tiles_y();
  const Rect full{0, 0, tiles_x - 1, tiles_y - 1};
  const GCellId from{0, 0};
  const GCellId to{tiles_x - 1, tiles_y - 1};

  global::GlobalSearchScratch scratch;
  // Admit only the start tile's row half: the goal is unreachable inside
  // the corridor even though the region contains it.
  scratch.begin_corridor(static_cast<std::size_t>(tiles_x) * tiles_y);
  for (int tx = 0; tx < tiles_x / 2; ++tx)
    scratch.admit_tile(static_cast<std::size_t>(tx));
  EXPECT_FALSE(global::search_tiles_astar(graph, {}, from, to, full, scratch,
                                          nullptr, /*corridor=*/true));
  // The router's fallback: the same scratch, corridor off.
  ASSERT_TRUE(
      global::search_tiles_astar(graph, {}, from, to, full, scratch));
  EXPECT_EQ(scratch.path.front(), from);
  EXPECT_EQ(scratch.path.back(), to);
}

TEST(CorridorSearch, LShapedCorridorConfinesThePath) {
  const grid::RoutingGrid rg(160, 160, 3, 10, grid::StitchPlan(160, 60));
  global::RoutingGraph graph(rg, true);
  const int tiles_x = graph.tiles_x();
  const int tiles_y = graph.tiles_y();
  const Rect full{0, 0, tiles_x - 1, tiles_y - 1};
  const GCellId from{0, 0};
  const GCellId to{tiles_x - 1, tiles_y - 1};

  // Corridor = bottom row + right column (one L), nothing else.
  global::GlobalSearchScratch scratch;
  scratch.begin_corridor(static_cast<std::size_t>(tiles_x) * tiles_y);
  for (int tx = 0; tx < tiles_x; ++tx)
    scratch.admit_tile(static_cast<std::size_t>(tx));
  for (int ty = 0; ty < tiles_y; ++ty)
    scratch.admit_tile(static_cast<std::size_t>(ty) * tiles_x + tiles_x - 1);
  ASSERT_TRUE(global::search_tiles_astar(graph, {}, from, to, full, scratch,
                                         nullptr, /*corridor=*/true));
  for (const GCellId tile : scratch.path)
    EXPECT_TRUE(scratch.in_corridor(static_cast<std::size_t>(tile.ty) *
                                        tiles_x +
                                    tile.tx))
        << "(" << tile.tx << "," << tile.ty << ") escaped the corridor";
}

// -------------------------------------------------- multilevel telemetry

TEST(Multilevel, PlansCoarseNetsAndEveryCorridorSearchResolves) {
  const auto* spec = bench_suite::find_spec("S9234");
  ASSERT_NE(spec, nullptr);
  const auto circuit = bench_suite::generate_circuit(*spec, {}, kSeed);
  const auto subnets = netlist::decompose_all(circuit.netlist);

  global::GlobalRouterConfig config;
  config.net_batch_size = 32;
  config.tiled_grid = true;
  config.multilevel.enabled = true;
  config.multilevel.min_span = 4;  // plan more of this mid-size circuit

  const auto before = telemetry::snapshot_counters();
  exec::ThreadPool pool(4);
  global::GlobalRouter router(circuit.grid, config);
  const auto result = router.route(subnets, &pool);
  const auto stats = telemetry::delta(before, telemetry::snapshot_counters());

  EXPECT_GT(result.wirelength, 0);
  const auto coarse = stats.value(telemetry::keys::kMlCoarseNets);
  const auto hits = stats.value(telemetry::keys::kMlCorridorHits);
  const auto fallbacks = stats.value(telemetry::keys::kMlCorridorFallbacks);
  EXPECT_GT(coarse, 0) << "multilevel never planned a coarse net";
  // Every planned subnet's fine search resolves through exactly one of the
  // two outcomes (reroute passes may re-search, hence >=).
  EXPECT_GE(hits + fallbacks, coarse);
  // A corridor fallback must never lose a net: the planned subnets route.
  for (std::size_t i = 0; i < result.paths.size(); ++i)
    EXPECT_TRUE(result.paths[i].routed) << "subnet " << i;
}

// ------------------------------------------------------- serving layer

TEST(ScaleServe, EcoVerifyReplayPassesOnTiledMultilevelGrid) {
  const auto* spec = bench_suite::find_spec("S5378");
  ASSERT_NE(spec, nullptr);
  auto circuit = bench_suite::generate_circuit(*spec, {}, kSeed);
  netlist::Design design{circuit.grid, std::move(circuit.netlist)};

  serve::ResidentDesign resident(std::move(design),
                                 core::RouterConfig::stitch_aware()
                                     .with_tiled_grid(true)
                                     .with_multilevel(true));
  ASSERT_TRUE(resident.route_full().ok);

  serve::EcoRequest request;
  for (const netlist::Net& net : resident.design().netlist.nets()) {
    if (net.degree() < 2) continue;
    request.nets.push_back(net.id);
    if (request.nets.size() == 12) break;
  }
  ASSERT_GE(request.nets.size(), 12u);
  request.verify = true;

  const serve::EcoOutcome outcome = resident.eco(request);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.verified)
      << "tiled-grid ECO diverged from the from-scratch replay";
  EXPECT_FALSE(outcome.verify_mismatch);
}

}  // namespace
