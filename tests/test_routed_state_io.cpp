#include "serve/routed_state.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "bench_suite/circuit_generator.hpp"
#include "serve/resident_design.hpp"

namespace mebl::serve {
namespace {

netlist::Design small_design() {
  bench_suite::BenchmarkSpec spec;
  spec.name = "unit";
  spec.um_width = 100;
  spec.um_height = 100;
  spec.layers = 3;
  spec.nets = 60;
  spec.pins = 170;
  auto circuit = bench_suite::generate_circuit(spec, {}, 7);
  return netlist::Design{circuit.grid, std::move(circuit.netlist)};
}

TEST(RoutedStateIo, RoundTripPreservesRoutedState) {
  ResidentDesign resident(small_design());
  ASSERT_TRUE(resident.route_full().ok);

  std::stringstream buffer;
  ASSERT_TRUE(resident.save_state(buffer));
  const auto loaded = read_routed_state(buffer);
  ASSERT_TRUE(loaded.has_value());

  const core::RoutingResult& result = resident.result();
  ASSERT_EQ(loaded->state.global.paths.size(), result.global.paths.size());
  for (std::size_t i = 0; i < result.global.paths.size(); ++i) {
    const global::TilePath& saved = loaded->state.global.paths[i];
    const global::TilePath& live = result.global.paths[i];
    EXPECT_EQ(saved.net, live.net);
    EXPECT_EQ(saved.routed, live.routed);
    ASSERT_EQ(saved.tiles.size(), live.tiles.size());
    for (std::size_t t = 0; t < live.tiles.size(); ++t) {
      EXPECT_EQ(saved.tiles[t].tx, live.tiles[t].tx);
      EXPECT_EQ(saved.tiles[t].ty, live.tiles[t].ty);
    }
  }

  ASSERT_EQ(loaded->state.plan.runs.size(), result.plan.runs.size());
  for (std::size_t i = 0; i < result.plan.runs.size(); ++i) {
    const assign::GlobalRun& saved = loaded->state.plan.runs[i];
    const assign::GlobalRun& live = result.plan.runs[i];
    EXPECT_EQ(saved.net, live.net);
    EXPECT_EQ(saved.dir, live.dir);
    EXPECT_EQ(saved.fixed_tile, live.fixed_tile);
    EXPECT_EQ(saved.span.lo, live.span.lo);
    EXPECT_EQ(saved.span.hi, live.span.hi);
    EXPECT_EQ(saved.layer, live.layer);
    EXPECT_EQ(saved.ripped, live.ripped);
    EXPECT_EQ(saved.bad_ends, live.bad_ends);
    EXPECT_EQ(saved.pieces, live.pieces);
  }
  EXPECT_EQ(loaded->state.plan.runs_of_path, result.plan.runs_of_path);

  ASSERT_EQ(loaded->state.detail.subnet_nodes.size(),
            result.detail.subnet_nodes.size());
  for (std::size_t i = 0; i < result.detail.subnet_nodes.size(); ++i) {
    EXPECT_EQ(loaded->state.detail.subnet_routed[i],
              result.detail.subnet_routed[i]);
    EXPECT_EQ(loaded->state.detail.subnet_method[i],
              result.detail.subnet_method[i]);
    ASSERT_EQ(loaded->state.detail.subnet_nodes[i].size(),
              result.detail.subnet_nodes[i].size());
    for (std::size_t n = 0; n < result.detail.subnet_nodes[i].size(); ++n)
      EXPECT_EQ(loaded->state.detail.subnet_nodes[i][n],
                result.detail.subnet_nodes[i][n]);
  }
  EXPECT_EQ(loaded->state.detail.routed, result.detail.routed);
  EXPECT_EQ(loaded->state.detail.failed, result.detail.failed);
  EXPECT_EQ(loaded->state.global.wirelength, result.global.wirelength);
  EXPECT_EQ(loaded->state.global.total_vertex_overflow,
            result.global.total_vertex_overflow);
}

TEST(RoutedStateIo, SavedBytesAreDeterministic) {
  ResidentDesign resident(small_design());
  ASSERT_TRUE(resident.route_full().ok);
  std::ostringstream first, second;
  ASSERT_TRUE(resident.save_state(first));
  ASSERT_TRUE(resident.save_state(second));
  EXPECT_EQ(first.str(), second.str());
}

TEST(RoutedStateIo, FromStateRebuildsARoutedResident) {
  ResidentDesign resident(small_design());
  ASSERT_TRUE(resident.route_full().ok);
  std::stringstream buffer;
  ASSERT_TRUE(resident.save_state(buffer));

  const auto rebuilt = ResidentDesign::from_state(buffer);
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_TRUE(rebuilt->routed());
  EXPECT_EQ(rebuilt->result().metrics.wirelength,
            resident.result().metrics.wirelength);
  EXPECT_EQ(rebuilt->result().metrics.vias, resident.result().metrics.vias);
  EXPECT_EQ(rebuilt->result().metrics.short_polygons,
            resident.result().metrics.short_polygons);
  EXPECT_EQ(rebuilt->result().metrics.routed_nets,
            resident.result().metrics.routed_nets);

  // The rebuilt resident saves byte-identical state — the strong
  // round-trip the bit-identity contract needs.
  std::ostringstream original, reloaded;
  ASSERT_TRUE(resident.save_state(original));
  ASSERT_TRUE(rebuilt->save_state(reloaded));
  EXPECT_EQ(original.str(), reloaded.str());
}

TEST(RoutedStateIo, RejectsTruncatedDocument) {
  ResidentDesign resident(small_design());
  ASSERT_TRUE(resident.route_full().ok);
  std::ostringstream buffer;
  ASSERT_TRUE(resident.save_state(buffer));
  const std::string text = buffer.str();
  std::istringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_FALSE(read_routed_state(truncated).has_value());
}

TEST(RoutedStateIo, RejectsTamperedDemand) {
  ResidentDesign resident(small_design());
  ASSERT_TRUE(resident.route_full().ok);
  std::ostringstream buffer;
  ASSERT_TRUE(resident.save_state(buffer));
  std::string text = buffer.str();

  // Bump the first demand_h value; the document still parses, but the
  // integrity check against the reseeded graph must reject it.
  const std::size_t section = text.find("demand_h ");
  ASSERT_NE(section, std::string::npos);
  std::size_t value = text.find(' ', section + 9);  // skip the count
  ASSERT_NE(value, std::string::npos);
  ++value;
  text.insert(value, "9");

  std::istringstream tampered(text);
  EXPECT_EQ(ResidentDesign::from_state(tampered), nullptr);
}

}  // namespace
}  // namespace mebl::serve
