#include "core/stitch_router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "bench_suite/circuit_generator.hpp"
#include "telemetry/keys.hpp"
#include "telemetry/telemetry.hpp"

namespace mebl::core {
namespace {

/// A small but non-trivial circuit for end-to-end pipeline tests.
bench_suite::GeneratedCircuit small_circuit() {
  bench_suite::BenchmarkSpec spec;
  spec.name = "unit";
  spec.um_width = 100;
  spec.um_height = 100;
  spec.layers = 3;
  spec.nets = 150;
  spec.pins = 420;
  return bench_suite::generate_circuit(spec, {}, 99);
}

TEST(Pipeline, StitchAwareRunCompletesWithHighRoutability) {
  const auto circuit = small_circuit();
  StitchAwareRouter router(circuit.grid, circuit.netlist,
                           RouterConfig::stitch_aware());
  const auto result = router.run();
  EXPECT_GT(result.metrics.routability_pct(), 90.0);
  EXPECT_EQ(result.metrics.total_nets, 150);
  // Hard constraint: never a vertical wire on a stitching line.
  EXPECT_EQ(result.metrics.vertical_violations, 0);
}

TEST(Pipeline, BaselineRunCompletes) {
  const auto circuit = small_circuit();
  StitchAwareRouter router(circuit.grid, circuit.netlist,
                           RouterConfig::baseline());
  const auto result = router.run();
  EXPECT_GT(result.metrics.routability_pct(), 85.0);
  EXPECT_EQ(result.metrics.vertical_violations, 0);
}

TEST(Pipeline, StitchAwareProducesFewerShortPolygons) {
  const auto circuit = small_circuit();
  StitchAwareRouter aware(circuit.grid, circuit.netlist,
                          RouterConfig::stitch_aware());
  const auto aware_result = aware.run();
  StitchAwareRouter baseline(circuit.grid, circuit.netlist,
                             RouterConfig::baseline());
  const auto baseline_result = baseline.run();
  EXPECT_LE(aware_result.metrics.short_polygons,
            baseline_result.metrics.short_polygons);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto circuit = small_circuit();
  StitchAwareRouter a(circuit.grid, circuit.netlist);
  StitchAwareRouter b(circuit.grid, circuit.netlist);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.metrics.short_polygons, rb.metrics.short_polygons);
  EXPECT_EQ(ra.metrics.wirelength, rb.metrics.wirelength);
  EXPECT_EQ(ra.metrics.vias, rb.metrics.vias);
  EXPECT_EQ(ra.metrics.routed_nets, rb.metrics.routed_nets);
}

TEST(Pipeline, IlpTrackAssignmentWorksOnTinyCircuit) {
  bench_suite::BenchmarkSpec spec;
  spec.name = "tiny";
  spec.um_width = 60;
  spec.um_height = 60;
  spec.layers = 3;
  spec.nets = 25;
  spec.pins = 60;
  const auto circuit = bench_suite::generate_circuit(spec, {}, 5);
  auto config = RouterConfig::stitch_aware();
  config.track_algorithm = TrackAlgorithm::kIlp;
  config.ilp.time_limit_seconds = 5.0;
  StitchAwareRouter router(circuit.grid, circuit.netlist, config);
  const auto result = router.run();
  EXPECT_GT(result.metrics.routability_pct(), 85.0);
}

TEST(Pipeline, RunsOnSixLayerStack) {
  bench_suite::BenchmarkSpec spec;
  spec.name = "six";
  spec.um_width = 80;
  spec.um_height = 80;
  spec.layers = 6;
  spec.nets = 120;
  spec.pins = 420;
  const auto circuit = bench_suite::generate_circuit(spec, {}, 11);
  StitchAwareRouter router(circuit.grid, circuit.netlist);
  const auto result = router.run();
  EXPECT_GT(result.metrics.routability_pct(), 90.0);
  EXPECT_EQ(result.metrics.vertical_violations, 0);
}

TEST(Pipeline, StageTimesPopulated) {
  const auto circuit = small_circuit();
  StitchAwareRouter router(circuit.grid, circuit.netlist);
  const auto result = router.run();
  EXPECT_GE(result.times.global_seconds, 0.0);
  EXPECT_GT(result.times.total(), 0.0);
}

TEST(Pipeline, StatsSnapshotCarriesPerRunCounters) {
  namespace keys = telemetry::keys;
  const auto circuit = small_circuit();
  StitchAwareRouter router(circuit.grid, circuit.netlist);
  const auto result = router.run();

  // The snapshot isolates this run: the short-polygon counter delta equals
  // the run's own metric even though the process counter accumulates.
  EXPECT_EQ(result.stats().value(keys::kShortPolygons),
            result.metrics.short_polygons);
  EXPECT_GT(result.stats().value(keys::kAstarSearches), 0);
  EXPECT_GE(result.stats().value(keys::kAstarExpansions), 0);
  EXPECT_GT(result.stats().value(keys::kLayerPanels), 0);
  EXPECT_GT(result.stats().value(keys::kTrackPanels), 0);
  // Registered even when the run never touched the ILP.
  EXPECT_EQ(result.stats().value(keys::kTrackIlpNodes), 0);

  // A second run's snapshot is again per-run, not cumulative.
  StitchAwareRouter again(circuit.grid, circuit.netlist);
  const auto result2 = again.run();
  EXPECT_EQ(result2.stats().value(keys::kShortPolygons),
            result2.metrics.short_polygons);
}

TEST(Pipeline, TracingEmitsNestedStageSpans) {
  telemetry::Tracer::clear();
  telemetry::Tracer::enable();
  const auto circuit = small_circuit();
  StitchAwareRouter router(circuit.grid, circuit.netlist);
  const auto result = router.run();
  telemetry::Tracer::disable();
  const auto events = telemetry::Tracer::events();
  telemetry::Tracer::clear();

  const auto count_of = [&](const std::string& name) {
    return std::count_if(events.begin(), events.end(),
                         [&](const telemetry::SpanEvent& event) {
                           return name == event.name;
                         });
  };
  // The four top-level pipeline stages, nested under pipeline.run.
  EXPECT_EQ(count_of("pipeline.run"), 1);
  EXPECT_EQ(count_of("pipeline.global"), 1);
  EXPECT_EQ(count_of("pipeline.layer_assign"), 1);
  EXPECT_EQ(count_of("pipeline.track_assign"), 1);
  EXPECT_EQ(count_of("pipeline.detail"), 1);
  // Per-panel and per-subnet spans nest below the stages.
  EXPECT_GT(count_of("assign.track.panel"), 0);
  EXPECT_GT(count_of("detail.subnet"), 0);
  const auto max_depth =
      std::max_element(events.begin(), events.end(),
                       [](const auto& a, const auto& b) {
                         return a.depth < b.depth;
                       })
          ->depth;
  EXPECT_GE(max_depth, 2);
  EXPECT_GT(result.metrics.routed_nets, 0);
}

TEST(Pipeline, GridGeometryMatchesMetrics) {
  const auto circuit = small_circuit();
  StitchAwareRouter router(circuit.grid, circuit.netlist);
  const auto result = router.run();
  ASSERT_NE(result.grid, nullptr);
  EXPECT_EQ(eval::count_short_polygons(*result.grid),
            result.metrics.short_polygons);
  EXPECT_GT(result.grid->occupied_nodes(), 0);
}

}  // namespace
}  // namespace mebl::core
