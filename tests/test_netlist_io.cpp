#include "netlist/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "bench_suite/circuit_generator.hpp"

namespace mebl::netlist {
namespace {

Design make_design() {
  Design design{grid::RoutingGrid(90, 60, 3, 30, grid::StitchPlan(90, 15)),
                Netlist{}};
  const auto a = design.netlist.add_net("clk");
  design.netlist.add_pin(a, {5, 5});
  design.netlist.add_pin(a, {80, 50});
  const auto b = design.netlist.add_net("d0");
  design.netlist.add_pin(b, {40, 10});
  design.netlist.add_pin(b, {41, 11});
  design.netlist.add_pin(b, {42, 12});
  return design;
}

TEST(NetlistIo, RoundTripUniformPlan) {
  const Design original = make_design();
  std::stringstream buffer;
  write_design(buffer, original);
  const auto loaded = read_design(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->grid.width(), 90);
  EXPECT_EQ(loaded->grid.height(), 60);
  EXPECT_EQ(loaded->grid.num_routing_layers(), 3);
  EXPECT_EQ(loaded->grid.tile_size(), 30);
  EXPECT_EQ(loaded->grid.stitch().lines(), original.grid.stitch().lines());
  ASSERT_EQ(loaded->netlist.num_nets(), original.netlist.num_nets());
  ASSERT_EQ(loaded->netlist.num_pins(), original.netlist.num_pins());
  for (std::size_t i = 0; i < original.netlist.num_pins(); ++i)
    EXPECT_EQ(loaded->netlist.pins()[i].pos, original.netlist.pins()[i].pos);
  EXPECT_EQ(loaded->netlist.net(0).name, "clk");
}

TEST(NetlistIo, RoundTripNonUniformPlan) {
  Design design{
      grid::RoutingGrid(100, 50, 4, 25,
                        grid::StitchPlan::from_lines(100, {13, 40, 41, 77}, 2, 3)),
      Netlist{}};
  const auto a = design.netlist.add_net("x");
  design.netlist.add_pin(a, {1, 1});
  std::stringstream buffer;
  write_design(buffer, design);
  const auto loaded = read_design(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->grid.stitch().lines(),
            (std::vector<geom::Coord>{13, 40, 41, 77}));
  EXPECT_EQ(loaded->grid.stitch().epsilon(), 2);
  EXPECT_EQ(loaded->grid.stitch().escape_halfwidth(), 3);
}

TEST(NetlistIo, RejectsBadHeader) {
  std::stringstream buffer("nope 1\n");
  EXPECT_FALSE(read_design(buffer).has_value());
}

TEST(NetlistIo, RejectsUnsupportedVersion) {
  std::stringstream buffer("mebl 2\ngrid 10 10 3 5\nstitch 5 1 2\n");
  EXPECT_FALSE(read_design(buffer).has_value());
}

TEST(NetlistIo, RejectsTruncatedPins) {
  std::stringstream buffer(
      "mebl 1\ngrid 30 30 3 15\nstitch 15 1 2\nnet a 2 1 1\n");
  EXPECT_FALSE(read_design(buffer).has_value());
}

TEST(NetlistIo, RejectsOutOfBoundsPin) {
  std::stringstream buffer(
      "mebl 1\ngrid 30 30 3 15\nstitch 15 1 2\nnet a 1 99 0\n");
  EXPECT_FALSE(read_design(buffer).has_value());
}

TEST(NetlistIo, RejectsMalformedGrid) {
  std::stringstream buffer("mebl 1\ngrid -5 10 3 15\nstitch 15 1 2\n");
  EXPECT_FALSE(read_design(buffer).has_value());
}

TEST(NetlistIo, FileRoundTrip) {
  const Design original = make_design();
  const std::string path = ::testing::TempDir() + "/mebl_io_test.mebl";
  ASSERT_TRUE(save_design(path, original));
  const auto loaded = load_design(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->netlist.num_pins(), original.netlist.num_pins());
  std::remove(path.c_str());
}

TEST(NetlistIo, LoadMissingFileFails) {
  EXPECT_FALSE(load_design("/nonexistent/definitely_missing.mebl").has_value());
}

TEST(NetlistIo, GeneratedCircuitRoundTrips) {
  const auto spec = *bench_suite::find_spec("S9234");
  auto circuit = bench_suite::generate_circuit(spec, {}, 3);
  Design design{circuit.grid, std::move(circuit.netlist)};
  std::stringstream buffer;
  write_design(buffer, design);
  const auto loaded = read_design(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->netlist.num_pins(), design.netlist.num_pins());
  for (std::size_t i = 0; i < design.netlist.num_pins(); ++i) {
    EXPECT_EQ(loaded->netlist.pins()[i].pos, design.netlist.pins()[i].pos);
    EXPECT_EQ(loaded->netlist.pins()[i].net, design.netlist.pins()[i].net);
  }
}

}  // namespace
}  // namespace mebl::netlist
