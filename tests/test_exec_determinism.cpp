// The repo-wide determinism contract, end to end: the full stitch-aware
// pipeline must produce identical routed results for every thread count.
// Parallel phases only read state frozen at a batch/stage boundary and
// write per-index slots merged in index order, so num_threads may change
// wall-clock but never a routed metric (DESIGN.md §7).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_suite/circuit_generator.hpp"
#include "core/stitch_router.hpp"
#include "report/report.hpp"

namespace {

using namespace mebl;

struct Fingerprint {
  eval::RouteMetrics metrics;
  std::int64_t global_wirelength = 0;
  std::int64_t global_overflow = 0;
  std::size_t plan_runs = 0;
};

Fingerprint route_with_threads(const bench_suite::GeneratedCircuit& circuit,
                               int threads) {
  core::StitchAwareRouter router(
      circuit.grid, circuit.netlist,
      core::RouterConfig::stitch_aware().with_threads(threads));
  const auto result = router.run();
  Fingerprint fp;
  fp.metrics = result.metrics;
  fp.global_wirelength = result.global.wirelength;
  fp.global_overflow = result.global.total_vertex_overflow;
  fp.plan_runs = result.plan.runs.size();
  return fp;
}

void expect_identical(const Fingerprint& a, const Fingerprint& b,
                      const std::string& what) {
  EXPECT_EQ(a.metrics.wirelength, b.metrics.wirelength) << what;
  EXPECT_EQ(a.metrics.vias, b.metrics.vias) << what;
  EXPECT_EQ(a.metrics.via_violations, b.metrics.via_violations) << what;
  EXPECT_EQ(a.metrics.vertical_violations, b.metrics.vertical_violations)
      << what;
  EXPECT_EQ(a.metrics.short_polygons, b.metrics.short_polygons) << what;
  EXPECT_EQ(a.metrics.routed_nets, b.metrics.routed_nets) << what;
  EXPECT_EQ(a.metrics.total_nets, b.metrics.total_nets) << what;
  EXPECT_EQ(a.global_wirelength, b.global_wirelength) << what;
  EXPECT_EQ(a.global_overflow, b.global_overflow) << what;
  EXPECT_EQ(a.plan_runs, b.plan_runs) << what;
}

class PipelineDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineDeterminism, MetricsIdenticalAcrossThreadCounts) {
  const auto* spec = bench_suite::find_spec("Struct");
  ASSERT_NE(spec, nullptr);
  const auto circuit =
      bench_suite::generate_circuit(*spec, {}, GetParam());

  const Fingerprint one = route_with_threads(circuit, 1);
  for (const int threads : {2, 8}) {
    const Fingerprint many = route_with_threads(circuit, threads);
    expect_identical(one, many,
                     "threads=1 vs threads=" + std::to_string(threads) +
                         " (seed " + std::to_string(GetParam()) + ")");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineDeterminism,
                         ::testing::Values(20130602u, 7u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

/// The stronger form of the contract: not just the headline metrics but the
/// ENTIRE canonical run report — per-stage counter deltas, per-net audits,
/// heatmap summaries, yield — must be byte-identical for every thread
/// count. (Canonical = WriteOptions::include_timing off, which drops the
/// only legitimately thread-dependent data: wall-clock times.)
TEST(PipelineDeterminism, CanonicalReportBytesIdenticalAcrossThreadCounts) {
  const auto* spec = bench_suite::find_spec("Struct");
  ASSERT_NE(spec, nullptr);
  const auto circuit = bench_suite::generate_circuit(*spec, {}, 20130602u);

  const auto canonical_report = [&](int threads) {
    core::StitchAwareRouter router(
        circuit.grid, circuit.netlist,
        core::RouterConfig::stitch_aware().with_threads(threads));
    report::RunReportBuilder builder;
    router.add_observer(&builder);
    const auto result = router.run();
    report::WriteOptions options;
    options.include_timing = false;
    return report::serialize(
        builder.build(result, circuit.grid, circuit.netlist), options);
  };

  const std::string one = canonical_report(1);
  for (const int threads : {2, 8})
    EXPECT_EQ(one, canonical_report(threads)) << "threads=" << threads;
}

}  // namespace
