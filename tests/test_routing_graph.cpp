#include "global/routing_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mebl::global {
namespace {

grid::RoutingGrid make_grid() {
  return grid::RoutingGrid(90, 90, 3, 30, grid::StitchPlan(90, 15));
}

TEST(RoutingGraph, CapacitiesFromGrid) {
  const auto rg = make_grid();
  RoutingGraph graph(rg, /*stitch_aware=*/true);
  EXPECT_EQ(graph.tiles_x(), 3);
  EXPECT_EQ(graph.tiles_y(), 3);
  EXPECT_EQ(graph.h_capacity(0, 0), 60);  // 30 tracks x 2 horizontal layers
  EXPECT_EQ(graph.v_capacity(0, 0), 29);  // line at x=15 removed
}

TEST(RoutingGraph, StitchObliviousKeepsFullVerticalCapacity) {
  const auto rg = make_grid();
  RoutingGraph graph(rg, /*stitch_aware=*/false);
  EXPECT_EQ(graph.v_capacity(0, 0), 30);
}

TEST(RoutingGraph, DemandAccounting) {
  const auto rg = make_grid();
  RoutingGraph graph(rg, true);
  EXPECT_EQ(graph.h_demand(0, 0), 0);
  graph.add_h_demand(0, 0, 3);
  EXPECT_EQ(graph.h_demand(0, 0), 3);
  graph.add_h_demand(0, 0, -1);
  EXPECT_EQ(graph.h_demand(0, 0), 2);
}

TEST(RoutingGraph, CostGrowsWithDemand) {
  const auto rg = make_grid();
  RoutingGraph graph(rg, true);
  const double empty = graph.h_cost(0, 0);
  graph.add_h_demand(0, 0, 30);
  const double half = graph.h_cost(0, 0);
  graph.add_h_demand(0, 0, 30);
  const double full = graph.h_cost(0, 0);
  EXPECT_LT(empty, half);
  EXPECT_LT(half, full);
  // psi = 2^(d/c) - 1: at demand == capacity the cost approaches 1.
  EXPECT_NEAR(full, std::exp2(61.0 / 60.0) - 1.0, 1e-12);
}

TEST(RoutingGraph, VertexCostUsesLineEndCapacity) {
  const auto rg = make_grid();
  RoutingGraph graph(rg, true);
  EXPECT_EQ(graph.vertex_capacity(0, 0), 26);
  EXPECT_DOUBLE_EQ(graph.vertex_cost(0, 0, 0), 0.0);
  graph.add_vertex_demand(0, 0, 26);
  EXPECT_NEAR(graph.vertex_cost(0, 0, 0), 1.0, 1e-12);
}

TEST(RoutingGraph, OverflowMetrics) {
  const auto rg = make_grid();
  RoutingGraph graph(rg, true);
  EXPECT_EQ(graph.total_vertex_overflow(), 0);
  graph.add_vertex_demand(0, 0, 30);  // capacity 26 -> overflow 4
  graph.add_vertex_demand(1, 0, 27);  // capacity 24 (lines 30,45 + 59) -> 3
  EXPECT_EQ(graph.total_vertex_overflow(), 7);
  EXPECT_EQ(graph.max_vertex_overflow(), 4);
  graph.add_h_demand(0, 0, 61);  // capacity 60 -> overflow 1
  EXPECT_EQ(graph.total_edge_overflow(), 1);
}

TEST(RoutingGraph, ZeroCapacityPricedProhibitively) {
  // A 1-layer-pair grid where a whole column is stitch lines would be
  // degenerate; emulate by checking the psi guard through a tiny grid whose
  // vertical capacity is zero after stitch removal.
  grid::RoutingGrid rg(30, 60, 2, 15, grid::StitchPlan(30, 15));
  RoutingGraph graph(rg, true);
  // Column 1 spans x in [15,29] and contains line 15: capacity 14 (not 0),
  // so instead check the documented behaviour directly via vertex cost on a
  // zero-capacity vertex. Build the degenerate case: pitch 1 makes every
  // track a line.
  grid::RoutingGrid degenerate(4, 8, 2, 4, grid::StitchPlan(4, 1));
  RoutingGraph dgraph(degenerate, true);
  EXPECT_EQ(dgraph.v_capacity(0, 0), 1);  // only x=0 is line-free
  EXPECT_EQ(dgraph.vertex_capacity(0, 0), 0);
  dgraph.add_vertex_demand(0, 0, 1);
  EXPECT_GE(dgraph.vertex_cost(0, 0, 0), 1e8);
}

}  // namespace
}  // namespace mebl::global
