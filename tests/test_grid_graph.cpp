#include "detail/grid_graph.hpp"

#include <gtest/gtest.h>

namespace mebl::detail {
namespace {

grid::RoutingGrid make_grid() {
  return grid::RoutingGrid(60, 60, 3, 30, grid::StitchPlan(60, 15));
}

TEST(GridGraph, StartsEmpty) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  EXPECT_EQ(grid.occupied_nodes(), 0);
  EXPECT_TRUE(grid.is_free({5, 5, 1}));
  EXPECT_EQ(grid.owner({5, 5, 1}), -1);
}

TEST(GridGraph, ClaimAndRelease) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  grid.claim({5, 5, 1}, 7);
  EXPECT_EQ(grid.owner({5, 5, 1}), 7);
  EXPECT_FALSE(grid.is_free({5, 5, 1}));
  EXPECT_TRUE(grid.is_free_or({5, 5, 1}, 7));
  EXPECT_FALSE(grid.is_free_or({5, 5, 1}, 8));
  EXPECT_EQ(grid.occupied_nodes(), 1);
  grid.release({5, 5, 1});
  EXPECT_TRUE(grid.is_free({5, 5, 1}));
  EXPECT_EQ(grid.occupied_nodes(), 0);
}

TEST(GridGraph, ReclaimBySameNetIsIdempotent) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  grid.claim({3, 3, 2}, 1);
  grid.claim({3, 3, 2}, 1);
  EXPECT_EQ(grid.occupied_nodes(), 1);
}

TEST(GridGraph, LayersAreIndependent) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  grid.claim({3, 3, 1}, 1);
  EXPECT_TRUE(grid.is_free({3, 3, 2}));
  EXPECT_TRUE(grid.is_free({3, 3, 0}));
}

TEST(GridGraph, StitchConstraints) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  EXPECT_FALSE(grid.vertical_move_allowed(15));
  EXPECT_FALSE(grid.vertical_move_allowed(30));
  EXPECT_TRUE(grid.vertical_move_allowed(14));
  EXPECT_FALSE(grid.via_allowed(15));
  EXPECT_TRUE(grid.via_allowed(16));
}

TEST(GridGraph, ReleaseFreeNodeIsNoop) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  grid.release({1, 1, 1});
  EXPECT_EQ(grid.occupied_nodes(), 0);
}

}  // namespace
}  // namespace mebl::detail
