#include "bench_suite/layer_instance_generator.hpp"

#include <gtest/gtest.h>

namespace mebl::bench_suite {
namespace {

TEST(LayerInstance, GeneratesRequestedSegmentCount) {
  util::Rng rng(1);
  LayerInstanceConfig config;
  const auto segments = generate_layer_instance(config, rng);
  EXPECT_EQ(segments.size(), static_cast<std::size_t>(config.segments));
}

TEST(LayerInstance, SegmentsWithinPanelRows) {
  util::Rng rng(2);
  LayerInstanceConfig config;
  const auto segments = generate_layer_instance(config, rng);
  for (const auto& s : segments) {
    EXPECT_GE(s.span.lo, 0);
    EXPECT_LT(s.span.hi, config.rows);
    EXPECT_FALSE(s.span.empty());
  }
}

TEST(LayerInstance, Deterministic) {
  util::Rng a(3), b(3);
  LayerInstanceConfig config;
  const auto first = generate_layer_instance(config, a);
  const auto second = generate_layer_instance(config, b);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i].span, second[i].span);
}

TEST(LayerInstance, DensityStatsSane) {
  util::Rng rng(4);
  LayerInstanceConfig config;
  std::vector<std::vector<assign::SegmentProfile>> instances;
  for (int i = 0; i < 50; ++i)
    instances.push_back(generate_layer_instance(config, rng));
  const auto stats = measure_density(instances);
  EXPECT_GT(stats.avg_segment_density, 1.0);
  EXPECT_GE(stats.max_segment_density, stats.avg_segment_density);
  EXPECT_GE(stats.max_line_end_density, stats.avg_line_end_density);
  // Every segment contributes 2 ends over `rows` rows.
  EXPECT_NEAR(stats.avg_line_end_density,
              2.0 * config.segments / config.rows, 0.8);
}

TEST(LayerInstance, StatsInPaperBallpark) {
  // Table V reports max/avg segment density 11.68/5.72 and line-end density
  // 6.06/2.00; the default config must land in the same regime.
  util::Rng rng(5);
  LayerInstanceConfig config;
  std::vector<std::vector<assign::SegmentProfile>> instances;
  for (int i = 0; i < 50; ++i)
    instances.push_back(generate_layer_instance(config, rng));
  const auto stats = measure_density(instances);
  EXPECT_NEAR(stats.avg_segment_density, 5.72, 3.0);
  EXPECT_NEAR(stats.max_segment_density, 11.68, 5.0);
  EXPECT_NEAR(stats.avg_line_end_density, 2.00, 1.5);
  EXPECT_NEAR(stats.max_line_end_density, 6.06, 3.0);
}

TEST(LayerInstance, MeasureDensityEmptyInput) {
  const auto stats = measure_density({});
  EXPECT_DOUBLE_EQ(stats.avg_segment_density, 0.0);
}

}  // namespace
}  // namespace mebl::bench_suite
