#include <gtest/gtest.h>

#include "raster/defect.hpp"

namespace mebl::raster {
namespace {

TEST(Render, FullyCoveredPixelIsOne) {
  const auto gray = render({{1.0, 1.0, 3.0, 3.0}}, 4, 4);
  EXPECT_DOUBLE_EQ(gray.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(gray.at(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(gray.at(0, 0), 0.0);
}

TEST(Render, PartialCoverageIsProportional) {
  const auto gray = render({{0.5, 0.0, 1.0, 1.0}}, 2, 1);
  EXPECT_DOUBLE_EQ(gray.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(gray.at(1, 0), 0.0);
}

TEST(Render, SubPixelFeature) {
  const auto gray = render({{0.25, 0.25, 0.75, 0.75}}, 1, 1);
  EXPECT_DOUBLE_EQ(gray.at(0, 0), 0.25);
}

TEST(Render, OverlappingFeaturesSaturate) {
  const auto gray = render({{0.0, 0.0, 1.0, 1.0}, {0.0, 0.0, 1.0, 1.0}}, 1, 1);
  EXPECT_DOUBLE_EQ(gray.at(0, 0), 1.0);
}

TEST(Render, FeatureOutsideCanvasClipped) {
  const auto gray = render({{-5.0, -5.0, 0.5, 0.5}}, 2, 2);
  EXPECT_DOUBLE_EQ(gray.at(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(gray.at(1, 1), 0.0);
}

TEST(Dither, UniformBlackStaysBlack) {
  const GrayBitmap gray(8, 8, 0.0);
  const auto out = dither(gray);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) EXPECT_EQ(out.at(x, y), 0);
}

TEST(Dither, UniformWhiteStaysWhite) {
  const GrayBitmap gray(8, 8, 1.0);
  const auto out = dither(gray);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) EXPECT_EQ(out.at(x, y), 1);
}

TEST(Dither, HalfGrayPreservesAverageIntensity) {
  const GrayBitmap gray(32, 32, 0.5);
  for (const auto kernel :
       {DitherKernel::kFloydSteinberg, DitherKernel::kRightDown}) {
    const auto out = dither(gray, kernel);
    int on = 0;
    for (int y = 0; y < 32; ++y)
      for (int x = 0; x < 32; ++x) on += out.at(x, y);
    EXPECT_NEAR(static_cast<double>(on) / (32 * 32), 0.5, 0.05);
  }
}

TEST(Dither, GrayEdgeProducesIrregularPixels) {
  // A feature whose top edge sits mid-pixel: the boundary row has gray 0.4
  // and error diffusion must turn some (not all) of its pixels on.
  const auto gray = render({{0.0, 0.6, 16.0, 3.0}}, 16, 4);
  const auto out = dither(gray);
  int boundary_on = 0;
  for (int x = 0; x < 16; ++x) boundary_on += out.at(x, 0);
  EXPECT_GT(boundary_on, 0);
  EXPECT_LT(boundary_on, 16);
}

TEST(Defect, PerfectExposureHasNoErrors) {
  const auto gray = render({{0.0, 0.0, 4.0, 4.0}}, 8, 8);
  const auto out = dither(gray);
  const auto report = analyze(gray, out);
  EXPECT_EQ(report.pattern_pixels, 16);
  EXPECT_EQ(report.error_pixels, 0);
  EXPECT_DOUBLE_EQ(report.error_ratio(), 0.0);
}

TEST(Defect, WindowRestrictsAnalysis) {
  const auto gray = render({{0.0, 0.0, 4.0, 4.0}}, 8, 8);
  const auto out = dither(gray);
  const auto report = analyze_window(gray, out, 0, 0, 2, 2);
  EXPECT_EQ(report.pattern_pixels, 4);
}

TEST(Defect, ShortPolygonHasHigherErrorRatioThanLongOne) {
  // The paper's Fig. 4 mechanism: the piece left of the stripe boundary is
  // tiny, so its few irregular pixels are a large fraction of its area.
  const auto short_piece = short_polygon_experiment(/*cut_px=*/2,
                                                    /*length_px=*/40,
                                                    /*width_px=*/3);
  const auto long_piece = short_polygon_experiment(/*cut_px=*/20,
                                                   /*length_px=*/40,
                                                   /*width_px=*/3);
  EXPECT_GE(short_piece.error_ratio(), long_piece.error_ratio());
  EXPECT_GT(short_piece.error_ratio(), 0.0);
}

TEST(Defect, MissingPlusSpuriousEqualsErrors) {
  const auto report = short_polygon_experiment(3, 30, 3);
  EXPECT_EQ(report.missing_pixels + report.spurious_pixels,
            report.error_pixels);
}

}  // namespace
}  // namespace mebl::raster
