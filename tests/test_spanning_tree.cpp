#include "graph/spanning_tree.hpp"

#include <gtest/gtest.h>

namespace mebl::graph {
namespace {

TEST(DisjointSets, UniteAndFind) {
  DisjointSets sets(4);
  EXPECT_EQ(sets.num_sets(), 4u);
  EXPECT_TRUE(sets.unite(0, 1));
  EXPECT_FALSE(sets.unite(1, 0));
  EXPECT_EQ(sets.find(0), sets.find(1));
  EXPECT_NE(sets.find(0), sets.find(2));
  EXPECT_EQ(sets.num_sets(), 3u);
}

TEST(DisjointSets, TransitiveUnion) {
  DisjointSets sets(5);
  sets.unite(0, 1);
  sets.unite(2, 3);
  sets.unite(1, 2);
  EXPECT_EQ(sets.find(0), sets.find(3));
  EXPECT_EQ(sets.num_sets(), 2u);
}

TEST(MaxSpanningForest, PicksHeaviestEdges) {
  // Triangle: the lightest edge must be dropped.
  const std::vector<WeightedEdge> edges{{0, 1, 5.0}, {1, 2, 3.0}, {0, 2, 1.0}};
  const auto chosen = maximum_spanning_forest(3, edges);
  ASSERT_EQ(chosen.size(), 2u);
  double total = 0.0;
  for (const auto idx : chosen) total += edges[idx].weight;
  EXPECT_DOUBLE_EQ(total, 8.0);
}

TEST(MaxSpanningForest, HandlesForest) {
  // Two disconnected components.
  const std::vector<WeightedEdge> edges{{0, 1, 1.0}, {2, 3, 2.0}};
  const auto chosen = maximum_spanning_forest(4, edges);
  EXPECT_EQ(chosen.size(), 2u);
}

TEST(MaxSpanningForest, EmptyGraph) {
  EXPECT_TRUE(maximum_spanning_forest(3, {}).empty());
}

TEST(MaxSpanningForest, SpanningTreeHasNMinusOneEdges) {
  // Complete graph K5 with arbitrary weights.
  std::vector<WeightedEdge> edges;
  for (NodeId a = 0; a < 5; ++a)
    for (NodeId b = a + 1; b < 5; ++b)
      edges.push_back({a, b, static_cast<double>(a * 7 + b)});
  EXPECT_EQ(maximum_spanning_forest(5, edges).size(), 4u);
}

}  // namespace
}  // namespace mebl::graph
