// Assignment-stage parallelism (DESIGN.md: "Assignment-stage parallelism &
// the Solver API"): the panel-parallel layer/track stages and the parallel
// branch-and-bound behind them keep the routed assignment bit-identical for
// every thread count, the fused panel pipeline reproduces the staged order
// exactly, graph-heuristic warm starts never change the assignment cost,
// and a node-budgeted ILP run is a pure function of the input — including
// its search-effort counters — at any pool size.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "assign/track_assign.hpp"
#include "bench_suite/circuit_generator.hpp"
#include "core/stitch_router.hpp"
#include "report/report.hpp"
#include "telemetry/keys.hpp"
#include "util/rng.hpp"

namespace {

using namespace mebl;
using geom::Coord;

/// Everything layer/track assignment decided, plus the downstream result it
/// produced: per-run assignment fields, headline metrics, canonical report
/// bytes, and the (budget-mode deterministic) ILP effort counters.
struct AssignFingerprint {
  std::vector<geom::LayerId> layers;
  std::vector<std::vector<std::pair<geom::Interval, geom::Coord>>> pieces;
  std::vector<bool> ripped;
  std::vector<int> bad_ends;
  eval::RouteMetrics metrics;
  std::string canonical_report;
  std::int64_t ilp_nodes = 0;
  std::int64_t ilp_budget_hits = 0;
  bool ilp_budget_exceeded = false;
};

AssignFingerprint route_circuit(const bench_suite::GeneratedCircuit& circuit,
                                const core::RouterConfig& config) {
  core::StitchAwareRouter router(circuit.grid, circuit.netlist, config);
  report::RunReportBuilder builder;
  router.add_observer(&builder);
  const auto result = router.run();

  AssignFingerprint fp;
  for (const auto& run : result.plan.runs) {
    fp.layers.push_back(run.layer);
    fp.pieces.push_back(run.pieces);
    fp.ripped.push_back(run.ripped);
    fp.bad_ends.push_back(run.bad_ends);
  }
  fp.metrics = result.metrics;
  report::WriteOptions options;
  options.include_timing = false;
  fp.canonical_report = report::serialize(
      builder.build(result, circuit.grid, circuit.netlist), options);
  fp.ilp_nodes = result.stats().value(telemetry::keys::kTrackIlpNodes);
  fp.ilp_budget_hits =
      result.stats().value(telemetry::keys::kTrackIlpBudgetHits);
  fp.ilp_budget_exceeded = result.ilp_budget_exceeded;
  return fp;
}

/// compare_report = false for staged-vs-fused comparisons: the routed result
/// is identical but the per-stage telemetry split legitimately moves (the
/// fused stage absorbs the layer-assignment counters), so the canonical
/// bytes differ in which stage block carries assign.layer.panels.
void expect_identical(const AssignFingerprint& a, const AssignFingerprint& b,
                      const std::string& what, bool compare_report = true) {
  EXPECT_EQ(a.layers, b.layers) << what;
  EXPECT_EQ(a.pieces, b.pieces) << what;
  EXPECT_EQ(a.ripped, b.ripped) << what;
  EXPECT_EQ(a.bad_ends, b.bad_ends) << what;
  EXPECT_EQ(a.metrics.wirelength, b.metrics.wirelength) << what;
  EXPECT_EQ(a.metrics.vias, b.metrics.vias) << what;
  EXPECT_EQ(a.metrics.short_polygons, b.metrics.short_polygons) << what;
  EXPECT_EQ(a.metrics.routed_nets, b.metrics.routed_nets) << what;
  if (compare_report) {
    EXPECT_EQ(a.canonical_report, b.canonical_report) << what;
  }
}

bench_suite::GeneratedCircuit make_circuit(const char* name) {
  const auto* spec = bench_suite::find_spec(name);
  EXPECT_NE(spec, nullptr);
  return bench_suite::generate_circuit(*spec, {}, 20130602u);
}

class AssignParallelDeterminism : public ::testing::TestWithParam<const char*> {
};

// Node-budgeted ILP track assignment plus the fused panel pipeline at
// --threads 1 and 8: per-run layer + pieces + ripped + bad_ends, the
// headline metrics, and the canonical report bytes must all be identical.
// The same run with the pipeline disabled (staged barrier order) must
// reproduce the fused routed result exactly.
TEST_P(AssignParallelDeterminism, BitIdenticalAcrossThreadCounts) {
  const auto circuit = make_circuit(GetParam());
  const auto base = core::RouterConfig::stitch_aware()
                        .with_track_algorithm(core::TrackAlgorithm::kIlp)
                        .with_ilp_node_budget(512);

  const AssignFingerprint one =
      route_circuit(circuit, core::RouterConfig(base).with_threads(1));
  const AssignFingerprint eight =
      route_circuit(circuit, core::RouterConfig(base).with_threads(8));
  expect_identical(one, eight, std::string(GetParam()) + " threads=8");
  // Budget mode keeps even the search-effort counters thread-invariant.
  EXPECT_EQ(one.ilp_nodes, eight.ilp_nodes);
  EXPECT_EQ(one.ilp_budget_hits, eight.ilp_budget_hits);
  EXPECT_EQ(one.ilp_budget_exceeded, eight.ilp_budget_exceeded);

  const AssignFingerprint staged = route_circuit(
      circuit,
      core::RouterConfig(base).with_threads(8).with_assign_pipeline(false));
  expect_identical(one, staged, std::string(GetParam()) + " staged-vs-fused",
                   /*compare_report=*/false);
}

INSTANTIATE_TEST_SUITE_P(Circuits, AssignParallelDeterminism,
                         ::testing::Values("S5378", "S9234"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// A node budget small enough to truncate nearly every panel is still fully
// deterministic, and the truncation is actually observed (budget hits > 0,
// run flagged for the Table VII NA convention).
TEST(AssignNodeBudget, TruncatedSearchIsDeterministic) {
  const auto circuit = make_circuit("S5378");
  const auto base = core::RouterConfig::stitch_aware()
                        .with_track_algorithm(core::TrackAlgorithm::kIlp)
                        .with_ilp_node_budget(64);

  const AssignFingerprint one =
      route_circuit(circuit, core::RouterConfig(base).with_threads(1));
  const AssignFingerprint eight =
      route_circuit(circuit, core::RouterConfig(base).with_threads(8));

  expect_identical(one, eight, "budget=64");
  EXPECT_EQ(one.ilp_nodes, eight.ilp_nodes);
  EXPECT_EQ(one.ilp_budget_hits, eight.ilp_budget_hits);
  EXPECT_EQ(one.ilp_budget_exceeded, eight.ilp_budget_exceeded);
  // 64 nodes is far below what S5378's dense panels need, so at least one
  // panel must report a truncated solve.
  EXPECT_GT(one.ilp_budget_hits, 0);
}

// Warm starting a panel ILP from the graph heuristic cannot change the
// assignment cost: over a sweep of random panel instances, whenever both
// the cold and the warm solve prove optimality they reach the same bad-end
// count, and across the sweep the heuristic incumbent must cut the total
// node count (the reason the knob exists). Per-instance node counts are not
// individually compared — the warm start also reorders branching via its
// hint, which can locally lose.
TEST(AssignWarmStart, MatchesColdStartCostOnRandomPanels) {
  const grid::StitchPlan stitch(90, 15, 1);
  util::Rng rng(20130602u);

  int optimal_pairs = 0;
  std::int64_t cold_nodes = 0;
  std::int64_t warm_nodes = 0;
  for (int round = 0; round < 25; ++round) {
    assign::TrackAssignInstance instance;
    instance.x_span = {30, 44};
    instance.stitch = &stitch;
    const int n = static_cast<int>(rng.uniform_int(3, 8));
    for (int i = 0; i < n; ++i) {
      const auto lo = static_cast<Coord>(rng.uniform_int(0, 5));
      const auto hi = static_cast<Coord>(rng.uniform_int(lo, 7));
      instance.segments.push_back({static_cast<std::size_t>(i), {lo, hi},
                                   static_cast<int>(rng.uniform_int(-1, 1)),
                                   static_cast<int>(rng.uniform_int(-1, 1)),
                                   static_cast<netlist::NetId>(i)});
    }

    assign::IlpTrackOptions cold_options;
    cold_options.node_budget = 100'000;
    assign::IlpTrackOptions warm_options = cold_options;
    warm_options.warm_start = true;

    const auto cold = assign::track_assign_ilp(instance, cold_options);
    const auto warm = assign::track_assign_ilp(instance, warm_options);
    cold_nodes += cold.ilp_nodes;
    warm_nodes += warm.ilp_nodes;
    EXPECT_EQ(warm.solved, cold.solved) << "round " << round;
    if (cold.optimal && warm.optimal) {
      ++optimal_pairs;
      EXPECT_EQ(warm.total_bad_ends, cold.total_bad_ends)
          << "round " << round;
    }
  }
  // The sweep must actually compare optimal solves, and the warm starts must
  // save work overall, or the knob is dead weight.
  EXPECT_GT(optimal_pairs, 12);
  EXPECT_LT(warm_nodes, cold_nodes);
}

}  // namespace
