// Parameterized invariant sweeps over the stitch-plan geometry, the
// capacity model, the per-stage algorithms, and the end-to-end router —
// the property net that catches regressions an example-based test misses.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <unordered_set>

#include "assign/track_assign.hpp"
#include "bench_suite/circuit_generator.hpp"
#include "core/stitch_router.hpp"
#include "util/rng.hpp"

namespace mebl {
namespace {

// ---------------------------------------------------------------------------
// Stitch-plan geometry invariants over (pitch, epsilon).
// ---------------------------------------------------------------------------

struct PlanParam {
  geom::Coord pitch;
  geom::Coord epsilon;
};

class StitchPlanSweep : public ::testing::TestWithParam<PlanParam> {};

TEST_P(StitchPlanSweep, GeometryInvariants) {
  const auto [pitch, epsilon] = GetParam();
  constexpr geom::Coord kWidth = 120;
  const grid::StitchPlan plan(kWidth, pitch, epsilon);

  // Lines sit strictly inside the layout at pitch multiples.
  for (const auto line : plan.lines()) {
    EXPECT_GT(line, 0);
    EXPECT_LT(line, kWidth);
    EXPECT_EQ(line % pitch, 0);
  }
  // free tracks + line count == width over the full span.
  EXPECT_EQ(plan.free_tracks({0, kWidth - 1}) +
                static_cast<geom::Coord>(plan.lines().size()),
            kWidth);
  // Line-end capacity never exceeds free-track capacity.
  for (geom::Coord lo = 0; lo + 29 < kWidth; lo += 30)
    EXPECT_LE(plan.line_end_capacity({lo, lo + 29}),
              plan.free_tracks({lo, lo + 29}));
  // Unfriendly region contains every line column and is symmetric.
  for (const auto line : plan.lines()) {
    EXPECT_TRUE(plan.in_unfriendly_region(line));
    for (geom::Coord d = 1; d <= epsilon; ++d) {
      if (line - d >= 0) {
        EXPECT_TRUE(plan.in_unfriendly_region(line - d));
      }
      if (line + d < kWidth) {
        EXPECT_TRUE(plan.in_unfriendly_region(line + d));
      }
    }
    if (line - epsilon - 1 >= 0 &&
        plan.distance_to_line(line - epsilon - 1) > epsilon) {
      EXPECT_FALSE(plan.in_unfriendly_region(line - epsilon - 1));
    }
  }
  // distance_to_line is 1-Lipschitz in x.
  for (geom::Coord x = 1; x < kWidth; ++x)
    EXPECT_LE(std::abs(plan.distance_to_line(x) - plan.distance_to_line(x - 1)),
              1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StitchPlanSweep,
    ::testing::Values(PlanParam{15, 1}, PlanParam{15, 2}, PlanParam{10, 1},
                      PlanParam{20, 3}, PlanParam{7, 0}, PlanParam{40, 2}),
    [](const auto& info) {
      std::ostringstream name;
      name << "pitch" << info.param.pitch << "_eps" << info.param.epsilon;
      return name.str();
    });

// ---------------------------------------------------------------------------
// Track assignment cross-validation: on instances both solve, the exact ILP
// never leaves more bad ends than the heuristic, and both stay conflict-free.
// ---------------------------------------------------------------------------

class TrackCrossSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackCrossSweep, IlpNeverWorseThanGraph) {
  util::Rng rng(GetParam());
  const grid::StitchPlan stitch(120, 15, 1);
  for (int round = 0; round < 6; ++round) {
    assign::TrackAssignInstance instance;
    instance.x_span = {30, 44};
    instance.stitch = &stitch;
    const int n = static_cast<int>(rng.uniform_int(2, 5));
    for (int i = 0; i < n; ++i) {
      const auto lo = static_cast<geom::Coord>(rng.uniform_int(0, 4));
      instance.segments.push_back(
          {static_cast<std::size_t>(i),
           {lo, lo + static_cast<geom::Coord>(rng.uniform_int(0, 4))},
           static_cast<int>(rng.uniform_int(-1, 1)),
           static_cast<int>(rng.uniform_int(-1, 1)),
           static_cast<netlist::NetId>(i)});
    }
    const auto graph = assign::track_assign_graph(instance);
    const auto ilp = assign::track_assign_ilp(instance);
    if (!ilp.solved || !ilp.optimal || graph.total_ripped > 0) continue;
    EXPECT_LE(ilp.total_bad_ends, graph.total_bad_ends)
        << "seed " << GetParam() << " round " << round;
    // Bad-end counts agree with an independent recount for both.
    for (const auto* result : {&graph, &ilp}) {
      int recount = 0;
      for (std::size_t i = 0; i < instance.segments.size(); ++i)
        recount += assign::count_bad_ends(instance.segments[i],
                                          result->tracks[i], stitch);
      EXPECT_EQ(result->total_bad_ends, recount);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackCrossSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// End-to-end invariants across stitch geometries (pitch/epsilon variations
// beyond the paper's defaults, including a stitch-free control).
// ---------------------------------------------------------------------------

struct FlowParam {
  geom::Coord pitch;  // 0 = no stitch lines at all
  geom::Coord epsilon;
  int layers;
};

class FlowSweep : public ::testing::TestWithParam<FlowParam> {};

TEST_P(FlowSweep, HardConstraintsAcrossGeometries) {
  const auto param = GetParam();
  constexpr geom::Coord kSize = 120;
  const auto plan = param.pitch > 0
                        ? grid::StitchPlan(kSize, param.pitch, param.epsilon)
                        : grid::StitchPlan::none(kSize);
  const grid::RoutingGrid rg(kSize, kSize, param.layers, 30, plan);

  // Deterministic netlist over this grid.
  util::Rng rng(13 + param.pitch + param.layers);
  netlist::Netlist nl;
  std::unordered_set<geom::Point> used;
  for (int n = 0; n < 60; ++n) {
    const auto id = nl.add_net("n" + std::to_string(n));
    for (int p = 0; p < 3; ++p) {
      geom::Point pos;
      do {
        pos = {static_cast<geom::Coord>(rng.uniform_int(0, kSize - 1)),
               static_cast<geom::Coord>(rng.uniform_int(0, kSize - 1))};
      } while (!used.insert(pos).second);
      nl.add_pin(id, pos);
    }
  }

  core::StitchAwareRouter router(rg, nl);
  const auto result = router.run();

  EXPECT_GT(result.metrics.routability_pct(), 90.0);
  EXPECT_EQ(result.metrics.vertical_violations, 0);
  if (param.pitch == 0) {
    // No stitch lines: by definition no stitch-induced violations exist.
    EXPECT_EQ(result.metrics.short_polygons, 0);
    EXPECT_EQ(result.metrics.via_violations, 0);
  }
  EXPECT_EQ(result.metrics.short_polygons,
            eval::count_short_polygons(*result.grid));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FlowSweep,
    ::testing::Values(FlowParam{15, 1, 3}, FlowParam{15, 2, 3},
                      FlowParam{10, 1, 4}, FlowParam{20, 1, 6},
                      FlowParam{0, 1, 3}, FlowParam{8, 1, 3}),
    [](const auto& info) {
      std::ostringstream name;
      name << "pitch" << info.param.pitch << "_eps" << info.param.epsilon
           << "_L" << info.param.layers;
      return name.str();
    });

// ---------------------------------------------------------------------------
// Global-router demand bookkeeping: committed demands must equal an
// independent recount from the returned paths, across seeds.
// ---------------------------------------------------------------------------

class GlobalDemandSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlobalDemandSweep, DemandsMatchRecount) {
  const grid::RoutingGrid rg(150, 150, 3, 30, grid::StitchPlan(150, 15));
  util::Rng rng(GetParam());
  std::vector<netlist::Subnet> subnets;
  for (int i = 0; i < 80; ++i)
    subnets.push_back(
        {i,
         {static_cast<geom::Coord>(rng.uniform_int(0, 149)),
          static_cast<geom::Coord>(rng.uniform_int(0, 149))},
         {static_cast<geom::Coord>(rng.uniform_int(0, 149)),
          static_cast<geom::Coord>(rng.uniform_int(0, 149))}});
  global::GlobalRouter router(rg);
  const auto result = router.route(subnets);

  std::map<std::tuple<char, int, int>, int> expected;
  for (const auto& path : result.paths) {
    ASSERT_TRUE(path.routed);
    for (std::size_t i = 0; i + 1 < path.tiles.size(); ++i) {
      const auto a = path.tiles[i];
      const auto b = path.tiles[i + 1];
      ASSERT_EQ(std::abs(a.tx - b.tx) + std::abs(a.ty - b.ty), 1)
          << "non-contiguous path";
      if (a.ty == b.ty)
        ++expected[{'h', std::min(a.tx, b.tx), a.ty}];
      else
        ++expected[{'v', a.tx, std::min(a.ty, b.ty)}];
    }
  }
  const auto& graph = router.graph();
  for (int ty = 0; ty < graph.tiles_y(); ++ty) {
    for (int tx = 0; tx + 1 < graph.tiles_x(); ++tx) {
      const auto it = expected.find({'h', tx, ty});
      EXPECT_EQ(graph.h_demand(tx, ty), it == expected.end() ? 0 : it->second);
    }
  }
  for (int ty = 0; ty + 1 < graph.tiles_y(); ++ty) {
    for (int tx = 0; tx < graph.tiles_x(); ++tx) {
      const auto it = expected.find({'v', tx, ty});
      EXPECT_EQ(graph.v_demand(tx, ty), it == expected.end() ? 0 : it->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalDemandSweep,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace mebl
