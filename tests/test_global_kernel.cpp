// Global-routing kernel (DESIGN.md §10): the memoized psi cost rows are
// bit-identical to computing psi directly, the pattern-route fast path only
// accepts paths A* would return (same tiles, same cost, bit-for-bit), the
// commit-time congestion index answers exactly the old full-rescan
// predicate, and the batch-synchronous router's GlobalResult is
// bit-identical for every thread count.

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_suite/circuit_generator.hpp"
#include "exec/thread_pool.hpp"
#include "global/global_router.hpp"
#include "global/pattern_route.hpp"
#include "global/search_scratch.hpp"
#include "grid/gcell.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"

namespace {

using namespace mebl;
using geom::Rect;
using grid::GCellId;

constexpr std::uint64_t kSeed = 20130602u;

/// The psi formula, restated independently of RoutingGraph (same expression,
/// so IEEE semantics make an exact-equality comparison meaningful).
double direct_psi(int demand, int capacity) {
  if (capacity <= 0) return demand > 0 ? 1e9 : 0.0;
  return std::exp2(static_cast<double>(demand) / capacity) - 1.0;
}

// ------------------------------------------------------------- psi cache

class PsiCacheEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PsiCacheEquivalence, CachedCostsMatchDirectPsiUnderRandomMutation) {
  // A dense stitch plan relative to the tile size produces a spread of
  // capacities including near-zero line-end capacities, so the cache's
  // degenerate branches get exercised too.
  const geom::Coord tile = GetParam();
  const grid::RoutingGrid rg(20 * tile, 20 * tile, 3, tile,
                             grid::StitchPlan(20 * tile, 3 * tile));
  global::RoutingGraph graph(rg, true);
  util::Rng rng(kSeed);

  const auto verify_all = [&] {
    int edge_overflow = 0;
    int vertex_overflow = 0;
    int max_vertex = 0;
    for (int ty = 0; ty < graph.tiles_y(); ++ty) {
      for (int tx = 0; tx + 1 < graph.tiles_x(); ++tx) {
        const int d = graph.h_demand(tx, ty);
        const int c = graph.h_capacity(tx, ty);
        ASSERT_EQ(graph.h_cost(tx, ty), direct_psi(d + 1, c));
        ASSERT_EQ(graph.h_cost(tx, ty, 3), direct_psi(d + 3, c));
        edge_overflow += std::max(0, d - c);
      }
    }
    for (int ty = 0; ty + 1 < graph.tiles_y(); ++ty) {
      for (int tx = 0; tx < graph.tiles_x(); ++tx) {
        const int d = graph.v_demand(tx, ty);
        const int c = graph.v_capacity(tx, ty);
        ASSERT_EQ(graph.v_cost(tx, ty), direct_psi(d + 1, c));
        edge_overflow += std::max(0, d - c);
      }
    }
    for (int ty = 0; ty < graph.tiles_y(); ++ty) {
      for (int tx = 0; tx < graph.tiles_x(); ++tx) {
        const int d = graph.vertex_demand(tx, ty);
        const int c = graph.vertex_capacity(tx, ty);
        ASSERT_EQ(graph.vertex_cost(tx, ty), direct_psi(d + 1, c));
        ASSERT_EQ(graph.vertex_cost(tx, ty, 2), direct_psi(d + 2, c));
        vertex_overflow += std::max(0, d - c);
        max_vertex = std::max(max_vertex, d - c);
      }
    }
    EXPECT_EQ(graph.total_edge_overflow(), edge_overflow);
    EXPECT_EQ(graph.total_vertex_overflow(), vertex_overflow);
    EXPECT_EQ(graph.max_vertex_overflow(), std::max(0, max_vertex));
  };

  verify_all();  // pristine graph: rows seeded at construction

  // Random demand churn, including pushes past capacity (overflow) and
  // removals back toward zero, re-verifying the whole surface periodically.
  std::vector<std::array<int, 3>> applied;  // kind, tx, ty of adds
  for (int step = 0; step < 4000; ++step) {
    const bool remove = !applied.empty() && rng.uniform_int(0, 3) == 0;
    if (remove) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(applied.size()) - 1));
      const auto [kind, tx, ty] = applied[pick];
      if (kind == 0)
        graph.add_h_demand(tx, ty, -1);
      else if (kind == 1)
        graph.add_v_demand(tx, ty, -1);
      else
        graph.add_vertex_demand(tx, ty, -1);
      applied[pick] = applied.back();
      applied.pop_back();
    } else {
      const int kind = static_cast<int>(rng.uniform_int(0, 2));
      const int tx = static_cast<int>(
          rng.uniform_int(0, graph.tiles_x() - (kind == 0 ? 2 : 1)));
      const int ty = static_cast<int>(
          rng.uniform_int(0, graph.tiles_y() - (kind == 1 ? 2 : 1)));
      if (kind == 0)
        graph.add_h_demand(tx, ty, 1);
      else if (kind == 1)
        graph.add_v_demand(tx, ty, 1);
      else
        graph.add_vertex_demand(tx, ty, 1);
      applied.push_back({kind, tx, ty});
    }
    if (step % 500 == 499) verify_all();
  }
  verify_all();
}

INSTANTIATE_TEST_SUITE_P(TileSizes, PsiCacheEquivalence,
                         ::testing::Values(8, 30),
                         [](const auto& info) {
                           return "tile" + std::to_string(info.param);
                         });

// --------------------------------------------------------- pattern route

TEST(PatternRoute, AcceptedPathsAreExactlyWhatAStarReturns) {
  const grid::RoutingGrid rg(640, 640, 3, 16, grid::StitchPlan(640, 48));
  global::RoutingGraph graph(rg, true);
  util::Rng rng(kSeed);
  const int tiles_x = graph.tiles_x();
  const int tiles_y = graph.tiles_y();
  const Rect full{0, 0, tiles_x - 1, tiles_y - 1};

  const global::GlobalSearchParams configs[] = {
      {0.5, true, 8.0},    // the router's stitch-aware default
      {0.5, true, 16.0},   // escalated reroute weight
      {0.5, false, 8.0},   // Table IV "w/o line end consideration"
      {0.0, true, 8.0},    // no bend penalty: ties must be rejected
  };

  int accepted = 0;
  int rejected = 0;
  // Three congestion regimes: empty, light clutter, heavy clutter. The
  // demand state changes between sweeps, never inside one (the router only
  // searches against a frozen graph).
  for (int regime = 0; regime < 3; ++regime) {
    if (regime > 0) {
      const int stripes = regime == 1 ? 150 : 1200;
      for (int i = 0; i < stripes; ++i) {
        const int tx = static_cast<int>(rng.uniform_int(0, tiles_x - 2));
        const int ty = static_cast<int>(rng.uniform_int(0, tiles_y - 2));
        if (i % 2 == 0)
          graph.add_h_demand(tx, ty, static_cast<int>(rng.uniform_int(1, 4)));
        else
          graph.add_v_demand(tx, ty, static_cast<int>(rng.uniform_int(1, 4)));
        if (i % 3 == 0)
          graph.add_vertex_demand(tx, ty,
                                  static_cast<int>(rng.uniform_int(1, 3)));
      }
    }
    for (int trial = 0; trial < 400; ++trial) {
      const GCellId a{static_cast<int>(rng.uniform_int(0, tiles_x - 1)),
                      static_cast<int>(rng.uniform_int(0, tiles_y - 1))};
      const int reach = trial % 4 == 0 ? 15 : 4;
      const GCellId b{
          std::clamp(a.tx + static_cast<int>(rng.uniform_int(-reach, reach)),
                     0, tiles_x - 1),
          std::clamp(a.ty + static_cast<int>(rng.uniform_int(-reach, reach)),
                     0, tiles_y - 1)};
      if (a == b) continue;
      const auto& params = configs[trial % 4];
      std::vector<GCellId> pattern;
      double pattern_cost = 0.0;
      if (!global::try_pattern_route(graph, params, a, b, pattern,
                                     &pattern_cost)) {
        ++rejected;
        continue;
      }
      ++accepted;
      // The acceptance proof claims a unique optimum over the *whole*
      // grid, so A* confined to any containing region — here the full
      // grid — must return the identical tile sequence at the identical
      // (bit-for-bit) cost.
      global::GlobalSearchScratch scratch;
      double astar_cost = 0.0;
      ASSERT_TRUE(global::search_tiles_astar(graph, params, a, b, full,
                                             scratch, &astar_cost));
      EXPECT_EQ(scratch.path, pattern)
          << "regime " << regime << " trial " << trial;
      EXPECT_EQ(astar_cost, pattern_cost)
          << "regime " << regime << " trial " << trial;
    }
  }
  // The property is vacuous unless both branches fire across the sweeps.
  EXPECT_GT(accepted, 100);
  EXPECT_GT(rejected, 100);
}

TEST(PatternRoute, RejectsDegenerateAndTieConfigurations) {
  const grid::RoutingGrid rg(320, 320, 3, 16, grid::StitchPlan(320, 48));
  global::RoutingGraph graph(rg, true);
  std::vector<GCellId> out;
  // Same-tile endpoints are the caller's trivial case.
  EXPECT_FALSE(global::try_pattern_route(graph, {0.5, true, 8.0}, {3, 3},
                                         {3, 3}, out));
  // A negative bend weight voids the lower-bound argument entirely.
  EXPECT_FALSE(global::try_pattern_route(graph, {-1.0, true, 8.0}, {1, 1},
                                         {5, 4}, out));
  EXPECT_FALSE(global::try_pattern_route(graph, {0.5, true, -8.0}, {1, 1},
                                         {5, 4}, out));
}

// ------------------------------------------------------ congestion index

/// The seed router's full-rescan congestion predicate, verbatim: does this
/// committed tile path cross any h/v edge over capacity, or (when line ends
/// are priced) touch any tile whose vertex demand exceeds capacity.
bool rescan_is_congested(const global::RoutingGraph& graph,
                         const std::vector<GCellId>& tiles,
                         bool vertex_cost) {
  for (std::size_t i = 0; i + 1 < tiles.size(); ++i) {
    const GCellId a = tiles[i];
    const GCellId b = tiles[i + 1];
    if (a.ty == b.ty) {
      const int tx = std::min(a.tx, b.tx);
      if (graph.h_demand(tx, a.ty) > graph.h_capacity(tx, a.ty)) return true;
    } else {
      const int ty = std::min(a.ty, b.ty);
      if (graph.v_demand(a.tx, ty) > graph.v_capacity(a.tx, ty)) return true;
    }
  }
  if (vertex_cost) {
    for (const GCellId t : tiles)
      if (graph.vertex_demand(t.tx, t.ty) > graph.vertex_capacity(t.tx, t.ty))
        return true;
  }
  return false;
}

/// Monotone L path with a random leg order — the shape every global route
/// is made of (and commit() handles arbitrary 4-connected paths the same).
std::vector<GCellId> random_l_path(util::Rng& rng, GCellId a, GCellId b) {
  std::vector<GCellId> tiles{a};
  const auto walk_h = [&](int to_x) {
    while (tiles.back().tx != to_x) {
      const int step = to_x > tiles.back().tx ? 1 : -1;
      tiles.push_back({tiles.back().tx + step, tiles.back().ty});
    }
  };
  const auto walk_v = [&](int to_y) {
    while (tiles.back().ty != to_y) {
      const int step = to_y > tiles.back().ty ? 1 : -1;
      tiles.push_back({tiles.back().tx, tiles.back().ty + step});
    }
  };
  if (rng.uniform_int(0, 1) == 0) {
    walk_h(b.tx);
    walk_v(b.ty);
  } else {
    walk_v(b.ty);
    walk_h(b.tx);
  }
  return tiles;
}

class CongestionIndexEquivalence : public ::testing::TestWithParam<bool> {};

TEST_P(CongestionIndexEquivalence, MatchesFullRescanUnderChurn) {
  const bool vertex_cost = GetParam();
  const grid::RoutingGrid rg(384, 384, 3, 16, grid::StitchPlan(384, 48));
  global::RoutingGraph graph(rg, true);
  const int tiles_x = graph.tiles_x();
  const int tiles_y = graph.tiles_y();
  util::Rng rng(kSeed);

  constexpr std::size_t kSubnets = 64;
  global::CongestionIndex index;
  index.reset(graph, kSubnets, vertex_cost);

  std::vector<std::vector<GCellId>> committed(kSubnets);
  const auto random_pair = [&](GCellId& a, GCellId& b) {
    a = {static_cast<int>(rng.uniform_int(0, tiles_x - 1)),
         static_cast<int>(rng.uniform_int(0, tiles_y - 1))};
    // Tight spans pile demand onto few resources, forcing overflow
    // transitions in both directions.
    b = {std::clamp(a.tx + static_cast<int>(rng.uniform_int(-3, 3)), 0,
                    tiles_x - 1),
         std::clamp(a.ty + static_cast<int>(rng.uniform_int(-3, 3)), 0,
                    tiles_y - 1)};
  };

  const auto verify_all = [&] {
    for (std::size_t i = 0; i < kSubnets; ++i) {
      const bool expected =
          !committed[i].empty() &&
          rescan_is_congested(graph, committed[i], vertex_cost);
      ASSERT_EQ(index.congested(i), expected) << "subnet " << i;
    }
  };

  // Initial commits, then churn: rip + reroute (the reroute loop's exact
  // op sequence) or plain recommit, verifying the whole index each round.
  for (std::size_t i = 0; i < kSubnets; ++i) {
    GCellId a, b;
    random_pair(a, b);
    committed[i] = random_l_path(rng, a, b);
    index.commit(graph, i, committed[i], +1);
  }
  verify_all();

  for (int op = 0; op < 300; ++op) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kSubnets) - 1));
    index.commit(graph, i, committed[i], -1);
    // Mid-rip state must be consistent too: the reroute loop gathers a
    // whole batch between rips and recommits.
    if (op % 7 == 0) verify_all();
    GCellId a, b;
    random_pair(a, b);
    committed[i] = random_l_path(rng, a, b);
    index.commit(graph, i, committed[i], +1);
    if (op % 5 == 0) verify_all();
  }
  verify_all();
}

INSTANTIATE_TEST_SUITE_P(VertexTracking, CongestionIndexEquivalence,
                         ::testing::Bool(), [](const auto& info) {
                           return info.param ? "with_vertex" : "edges_only";
                         });

// -------------------------------------------------- thread determinism

TEST(GlobalRouterDeterminism, ResultBitIdenticalAcrossThreadCounts) {
  const auto* spec = bench_suite::find_spec("S5378");
  ASSERT_NE(spec, nullptr);
  const auto circuit = bench_suite::generate_circuit(*spec, {}, kSeed);
  const auto subnets = netlist::decompose_all(circuit.netlist);

  global::GlobalRouterConfig config;
  config.net_batch_size = 32;  // the pipeline's parallel batching default

  const auto route_with = [&](int threads) {
    exec::ThreadPool pool(threads);
    global::GlobalRouter router(circuit.grid, config);
    return router.route(subnets, &pool);
  };

  const global::GlobalResult one = route_with(1);
  EXPECT_GT(one.wirelength, 0);
  for (const int threads : {2, 8}) {
    const global::GlobalResult other = route_with(threads);
    ASSERT_EQ(other.paths.size(), one.paths.size()) << threads;
    for (std::size_t i = 0; i < one.paths.size(); ++i) {
      EXPECT_EQ(other.paths[i].routed, one.paths[i].routed)
          << "subnet " << i << " threads " << threads;
      ASSERT_EQ(other.paths[i].tiles, one.paths[i].tiles)
          << "subnet " << i << " threads " << threads;
    }
    EXPECT_EQ(other.wirelength, one.wirelength) << threads;
    EXPECT_EQ(other.total_vertex_overflow, one.total_vertex_overflow)
        << threads;
    EXPECT_EQ(other.max_vertex_overflow, one.max_vertex_overflow) << threads;
    EXPECT_EQ(other.total_edge_overflow, one.total_edge_overflow) << threads;
  }
}

}  // namespace
