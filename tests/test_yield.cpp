#include "eval/yield.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mebl::eval {
namespace {

using geom::Coord;

grid::RoutingGrid make_grid() {
  return grid::RoutingGrid(60, 60, 3, 30, grid::StitchPlan(60, 15));
}

TEST(Yield, EmptyLayoutHasPerfectYield) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  const auto report = estimate_yield(grid);
  EXPECT_TRUE(report.short_polygons.empty());
  EXPECT_EQ(report.via_violations, 0);
  EXPECT_DOUBLE_EQ(report.expected_defects, 0.0);
  EXPECT_DOUBLE_EQ(report.yield, 1.0);
}

TEST(Yield, ShortPolygonContributesRisk) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  // Wire 10..16 on layer 1 cut by line 15, via at the short right end.
  for (Coord x = 10; x <= 16; ++x) grid.claim({x, 5, 1}, 0);
  grid.claim({16, 5, 2}, 0);
  const auto report = estimate_yield(grid);
  ASSERT_EQ(report.short_polygons.size(), 1u);
  EXPECT_EQ(report.short_polygons[0].piece_tracks, 1);
  EXPECT_GT(report.short_polygons[0].error_ratio, 0.0);
  EXPECT_GT(report.expected_defects, 0.0);
  EXPECT_LT(report.yield, 1.0);
}

TEST(Yield, ShorterPieceIsRiskier) {
  const auto rg = grid::RoutingGrid(120, 60, 3, 30,
                                    grid::StitchPlan(120, 15, /*epsilon=*/3));
  detail::GridGraph grid(rg);
  // Two short polygons cut by lines 15 and 45: piece lengths 1 and 3.
  for (Coord x = 10; x <= 16; ++x) grid.claim({x, 5, 1}, 0);
  grid.claim({16, 5, 2}, 0);
  for (Coord x = 40; x <= 48; ++x) grid.claim({x, 9, 1}, 1);
  grid.claim({48, 9, 2}, 1);
  const auto report = estimate_yield(grid);
  ASSERT_EQ(report.short_polygons.size(), 2u);
  const auto& a = report.short_polygons[0];  // scan order: y=5 first
  const auto& b = report.short_polygons[1];
  EXPECT_LT(a.piece_tracks, b.piece_tracks);
  EXPECT_GE(a.defect_prob, b.defect_prob);
}

TEST(Yield, ViaViolationChargedFixedProbability) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  grid.claim({15, 5, 0}, 0);
  grid.claim({15, 5, 1}, 0);  // via stack on the line
  YieldModel model;
  model.via_violation_defect_prob = 0.25;
  const auto report = estimate_yield(grid, model);
  EXPECT_EQ(report.via_violations, 1);
  EXPECT_DOUBLE_EQ(report.expected_defects, 0.25);
  EXPECT_DOUBLE_EQ(report.yield, std::exp(-0.25));
}

TEST(Yield, ExpectedDefectsSumOverHazards) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  grid.claim({15, 5, 0}, 0);
  grid.claim({15, 5, 1}, 0);
  grid.claim({15, 9, 0}, 1);
  grid.claim({15, 9, 1}, 1);
  const auto report = estimate_yield(grid);
  EXPECT_EQ(report.via_violations, 2);
  EXPECT_DOUBLE_EQ(report.expected_defects,
                   2 * YieldModel{}.via_violation_defect_prob);
}

TEST(Yield, DefectProbClampedToOne) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  for (Coord x = 10; x <= 16; ++x) grid.claim({x, 5, 1}, 0);
  grid.claim({16, 5, 2}, 0);
  YieldModel model;
  model.error_ratio_to_defect = 1e9;  // absurd scale
  const auto report = estimate_yield(grid, model);
  ASSERT_EQ(report.short_polygons.size(), 1u);
  EXPECT_DOUBLE_EQ(report.short_polygons[0].defect_prob, 1.0);
}

}  // namespace
}  // namespace mebl::eval
