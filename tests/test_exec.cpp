// Unit tests of the mebl::exec execution layer: exactly-once coverage,
// deterministic merging, exception propagation, cancellation, nesting.

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "exec/cancellation.hpp"
#include "exec/thread_pool.hpp"

namespace {

using mebl::exec::Cancellation;
using mebl::exec::ThreadPool;

class ExecPool : public ::testing::TestWithParam<int> {};

TEST_P(ExecPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(GetParam());
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_P(ExecPool, SubrangeAndEmptyAndSingle) {
  ThreadPool pool(GetParam());
  std::vector<int> hits(100, 0);
  pool.parallel_for(10, 90, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i], i >= 10 && i < 90 ? 1 : 0);

  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  pool.parallel_for(7, 8, [&](std::size_t i) { EXPECT_EQ(i, 7u); ran = true; });
  EXPECT_TRUE(ran);
}

TEST_P(ExecPool, ParallelMapMergesInIndexOrder) {
  ThreadPool pool(GetParam());
  const auto squares = mebl::exec::parallel_map<std::size_t>(
      pool, 1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 1000u);
  for (std::size_t i = 0; i < squares.size(); ++i)
    ASSERT_EQ(squares[i], i * i);
}

TEST_P(ExecPool, ForEachVisitsEveryElement) {
  ThreadPool pool(GetParam());
  std::vector<int> values(257);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<long long> sum{0};
  pool.parallel_for_each(values,
                         [&](int v) { sum.fetch_add(v, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), 257LL * 256 / 2);
}

TEST_P(ExecPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(GetParam());
  EXPECT_THROW(pool.parallel_for(0, 1000,
                                 [&](std::size_t i) {
                                   if (i == 123)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);

  // The pool survives a failed job and runs the next one normally.
  std::atomic<int> ran{0};
  pool.parallel_for(0, 64, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 64);
}

TEST_P(ExecPool, ExceptionStopsSchedulingOfRemainingWork) {
  ThreadPool pool(GetParam());
  constexpr std::size_t kN = 100'000;
  std::atomic<std::size_t> executed{0};
  try {
    pool.parallel_for(0, kN, [&](std::size_t) {
      if (executed.fetch_add(1, std::memory_order_relaxed) == 0)
        throw std::runtime_error("first");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  // Whole chunks are abandoned once the failure flag is up; with the first
  // body throwing, nowhere near the full range can have run.
  EXPECT_LT(executed.load(), kN);
}

TEST_P(ExecPool, PreCancelledRunsNothing) {
  ThreadPool pool(GetParam());
  Cancellation cancel;
  cancel.request_stop();
  std::atomic<int> ran{0};
  pool.parallel_for(
      0, 1000, [&](std::size_t) { ran.fetch_add(1); }, &cancel);
  EXPECT_EQ(ran.load(), 0);
}

TEST_P(ExecPool, CancellationStopsSchedulingUnstartedWork) {
  ThreadPool pool(GetParam());
  Cancellation cancel;
  constexpr std::size_t kN = 100'000;
  std::atomic<std::size_t> executed{0};
  pool.parallel_for(
      0, kN,
      [&](std::size_t) {
        if (executed.fetch_add(1, std::memory_order_relaxed) == 0)
          cancel.request_stop();
      },
      &cancel);
  EXPECT_GE(executed.load(), 1u);
  EXPECT_LT(executed.load(), kN);
}

TEST_P(ExecPool, NestedParallelForRunsInline) {
  ThreadPool pool(GetParam());
  constexpr std::size_t kOuter = 32, kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(0, kOuter, [&](std::size_t o) {
    pool.parallel_for(0, kInner, [&](std::size_t i) {
      hits[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ExecPool, ::testing::Values(1, 2, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(ExecPoolBasics, DefaultConcurrencyIsHardware) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.concurrency(), ThreadPool::hardware_threads());
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ExecPoolBasics, CancellationIsSticky) {
  Cancellation cancel;
  EXPECT_FALSE(cancel.stop_requested());
  cancel.request_stop();
  EXPECT_TRUE(cancel.stop_requested());
  cancel.request_stop();
  EXPECT_TRUE(cancel.stop_requested());
}

}  // namespace
