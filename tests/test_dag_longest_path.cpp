#include "graph/dag_longest_path.hpp"

#include <gtest/gtest.h>

namespace mebl::graph {
namespace {

TEST(DagLongestPath, Chain) {
  Dag dag(4);
  dag.add_arc(0, 1, 2);
  dag.add_arc(1, 2, 3);
  dag.add_arc(2, 3, 4);
  const auto dist = dag.longest_from(0);
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ((*dist)[3].value(), 9);
}

TEST(DagLongestPath, PicksLongerOfTwoBranches) {
  Dag dag(4);
  dag.add_arc(0, 1, 1);
  dag.add_arc(1, 3, 1);
  dag.add_arc(0, 2, 5);
  dag.add_arc(2, 3, 5);
  const auto dist = dag.longest_from(0);
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ((*dist)[3].value(), 10);
}

TEST(DagLongestPath, UnreachableIsNullopt) {
  Dag dag(3);
  dag.add_arc(0, 1, 1);
  const auto dist = dag.longest_from(0);
  ASSERT_TRUE(dist.has_value());
  EXPECT_FALSE((*dist)[2].has_value());
}

TEST(DagLongestPath, CycleDetected) {
  Dag dag(3);
  dag.add_arc(0, 1, 1);
  dag.add_arc(1, 2, 1);
  dag.add_arc(2, 0, 1);
  EXPECT_FALSE(dag.longest_from(0).has_value());
}

TEST(DagLongestPath, CycleOutsideReachableSetIgnored) {
  Dag dag(4);
  dag.add_arc(0, 1, 1);
  dag.add_arc(2, 3, 1);
  dag.add_arc(3, 2, 1);  // cycle, but not reachable from 0
  const auto dist = dag.longest_from(0);
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ((*dist)[1].value(), 1);
}

TEST(DagLongestPath, DiamondTakesMaxOverPaths) {
  Dag dag(4);
  dag.add_arc(0, 1, 1);
  dag.add_arc(0, 2, 2);
  dag.add_arc(1, 3, 10);
  dag.add_arc(2, 3, 1);
  const auto dist = dag.longest_from(0);
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ((*dist)[3].value(), 11);
}

TEST(DagLongestPath, SourceIsZero) {
  Dag dag(1);
  const auto dist = dag.longest_from(0);
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ((*dist)[0].value(), 0);
}

}  // namespace
}  // namespace mebl::graph
