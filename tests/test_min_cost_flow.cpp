#include "graph/min_cost_flow.hpp"

#include <gtest/gtest.h>

namespace mebl::graph {
namespace {

TEST(MinCostFlow, SimplePath) {
  MinCostFlow mcf(3);
  const auto a = mcf.add_arc(0, 1, 5, 2);
  const auto b = mcf.add_arc(1, 2, 5, 3);
  const auto result = mcf.solve(0, 2, 4);
  EXPECT_EQ(result.flow, 4);
  EXPECT_EQ(result.cost, 4 * 5);
  EXPECT_EQ(mcf.flow_on(a), 4);
  EXPECT_EQ(mcf.flow_on(b), 4);
}

TEST(MinCostFlow, PrefersCheaperParallelPath) {
  MinCostFlow mcf(4);
  const auto cheap1 = mcf.add_arc(0, 1, 1, 1);
  const auto cheap2 = mcf.add_arc(1, 3, 1, 1);
  const auto costly = mcf.add_arc(0, 3, 10, 10);
  const auto result = mcf.solve(0, 3, 2);
  EXPECT_EQ(result.flow, 2);
  EXPECT_EQ(result.cost, 2 + 10);
  EXPECT_EQ(mcf.flow_on(cheap1), 1);
  EXPECT_EQ(mcf.flow_on(cheap2), 1);
  EXPECT_EQ(mcf.flow_on(costly), 1);
}

TEST(MinCostFlow, RespectsCapacity) {
  MinCostFlow mcf(2);
  mcf.add_arc(0, 1, 3, 1);
  const auto result = mcf.solve(0, 1, 100);
  EXPECT_EQ(result.flow, 3);
}

TEST(MinCostFlow, NegativeCostsTakenWhenBeneficial) {
  // Two routes: direct cost 0, or a detour "earning" -5.
  MinCostFlow mcf(3);
  const auto direct = mcf.add_arc(0, 2, 1, 0);
  const auto bonus = mcf.add_arc(0, 1, 1, -5);
  const auto tail = mcf.add_arc(1, 2, 1, 0);
  const auto result = mcf.solve(0, 2, 1);
  EXPECT_EQ(result.flow, 1);
  EXPECT_EQ(result.cost, -5);
  EXPECT_EQ(mcf.flow_on(direct), 0);
  EXPECT_EQ(mcf.flow_on(bonus), 1);
  EXPECT_EQ(mcf.flow_on(tail), 1);
}

TEST(MinCostFlow, DisconnectedReturnsZeroFlow) {
  MinCostFlow mcf(3);
  mcf.add_arc(0, 1, 1, 1);
  const auto result = mcf.solve(0, 2, 5);
  EXPECT_EQ(result.flow, 0);
  EXPECT_EQ(result.cost, 0);
}

TEST(MinCostFlow, MinCostNotJustAnyMaxFlow) {
  // Diamond where the max flow is 2 either way but costs differ.
  MinCostFlow mcf(4);
  mcf.add_arc(0, 1, 1, 1);
  mcf.add_arc(0, 2, 1, 4);
  mcf.add_arc(1, 3, 1, 1);
  mcf.add_arc(2, 3, 1, 4);
  const auto result = mcf.solve(0, 3, 1);
  EXPECT_EQ(result.flow, 1);
  EXPECT_EQ(result.cost, 2);
}

TEST(MinCostFlow, SuccessiveAugmentationReachesOptimum) {
  // Requires a "rerouting" residual step to reach the optimum for flow 2.
  MinCostFlow mcf(4);
  mcf.add_arc(0, 1, 2, 1);
  mcf.add_arc(1, 3, 1, 1);
  mcf.add_arc(1, 2, 1, 1);
  mcf.add_arc(0, 2, 1, 5);
  mcf.add_arc(2, 3, 2, 1);
  const auto result = mcf.solve(0, 3, 2);
  EXPECT_EQ(result.flow, 2);
  EXPECT_EQ(result.cost, 2 + 3);  // paths 0-1-3 (2) and 0-1-2-3 (3)
}

}  // namespace
}  // namespace mebl::graph
