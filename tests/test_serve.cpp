// Serving-layer tests (ctest label `serve`): protocol codec round-trips,
// job-queue ordering/cancellation/deadlines, the incremental-ECO
// bit-identity contract on S5378, and an end-to-end daemon smoke over a
// real AF_UNIX socket.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/circuit_generator.hpp"
#include "netlist/io.hpp"
#include "serve/client.hpp"
#include "serve/job_queue.hpp"
#include "serve/protocol.hpp"
#include "serve/resident_design.hpp"
#include "serve/server.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/keys.hpp"
#include "telemetry/telemetry.hpp"

namespace mebl::serve {
namespace {

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, RequestRoundTripsEveryField) {
  Request request;
  request.op = Op::kEco;
  request.id = 42;
  request.design = "chip";
  request.design_text = "mebl 1\ngrid 10 10 3 5\n";
  request.path = "/tmp/state.bin";
  request.priority = 3;
  request.deadline_seconds = 1.5;
  request.nets = {4, 17, 23};
  request.net_names = {"clk", "rst"};
  request.move_pin = 9;
  request.move_to = {12, 34};
  request.moves = {{3, {7, 8}}, {5, {9, 10}}};
  request.verify = true;
  request.cancel_id = 7;

  const std::string line = encode(request);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "wire form must be one line";

  const auto decoded = decode_request(line);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->op, Op::kEco);
  EXPECT_EQ(decoded->id, 42);
  EXPECT_EQ(decoded->design, "chip");
  EXPECT_EQ(decoded->design_text, request.design_text);
  EXPECT_EQ(decoded->path, "/tmp/state.bin");
  EXPECT_EQ(decoded->priority, 3);
  EXPECT_DOUBLE_EQ(decoded->deadline_seconds, 1.5);
  EXPECT_EQ(decoded->nets, request.nets);
  EXPECT_EQ(decoded->net_names, request.net_names);
  EXPECT_EQ(decoded->move_pin, 9);
  EXPECT_EQ(decoded->move_to.x, 12);
  EXPECT_EQ(decoded->move_to.y, 34);
  EXPECT_EQ(decoded->moves, request.moves);
  EXPECT_TRUE(decoded->verify);
  EXPECT_EQ(decoded->cancel_id, 7);
}

TEST(ServeProtocol, EscapesControlAndQuoteCharacters) {
  Request request;
  request.op = Op::kLoad;
  request.design = "q\"uo\\te";
  request.design_text = "line one\nline\ttwo\r\x01 end";

  const std::string line = encode(request);
  EXPECT_EQ(line.find('\n'), line.size() - 1);
  const auto decoded = decode_request(line);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->design, request.design);
  EXPECT_EQ(decoded->design_text, request.design_text);
}

TEST(ServeProtocol, ResponseRoundTripsPayload) {
  Response response;
  response.type = "done";
  response.id = 5;
  response.payload["seconds"] = 1.25;
  response.payload["dirty"] = std::int64_t{12};
  response.payload["names"].push_back("a");
  response.payload["names"].push_back("b");
  response.payload["nested"]["flag"] = true;

  const auto decoded = decode_response(encode(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, "done");
  EXPECT_EQ(decoded->id, 5);
  EXPECT_EQ(decoded->payload, response.payload);
}

TEST(ServeProtocol, ErrorResponseCarriesMessage) {
  Response response;
  response.type = "error";
  response.id = 3;
  response.error = "unknown design 'x'";
  const auto decoded = decode_response(encode(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, "error");
  EXPECT_EQ(decoded->error, "unknown design 'x'");
}

TEST(ServeProtocol, RejectsMalformedLines) {
  EXPECT_FALSE(decode_request("not json").has_value());
  EXPECT_FALSE(decode_request("{\"op\":\"warp\"}").has_value());
  EXPECT_FALSE(decode_response("{").has_value());
}

// --------------------------------------------------------------- job queue

Request make_request(Op op, std::int64_t id, int priority = 0) {
  Request request;
  request.op = op;
  request.id = id;
  request.priority = priority;
  return request;
}

TEST(ServeJobQueue, PriorityDescendingThenFifo) {
  JobQueue queue;
  queue.push(1, make_request(Op::kRoute, 1, 0));
  queue.push(1, make_request(Op::kRoute, 2, 5));
  queue.push(1, make_request(Op::kRoute, 3, 0));
  queue.push(1, make_request(Op::kRoute, 4, 5));

  std::vector<std::int64_t> order;
  for (int i = 0; i < 4; ++i) {
    const auto job = queue.pop();
    ASSERT_TRUE(job.has_value());
    order.push_back(job->request.id);
  }
  EXPECT_EQ(order, (std::vector<std::int64_t>{2, 4, 1, 3}));
}

TEST(ServeJobQueue, CancelStopsQueuedJobToken) {
  JobQueue queue;
  queue.push(1, make_request(Op::kRoute, 10));
  EXPECT_TRUE(queue.cancel(1, 10));
  const auto job = queue.pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_TRUE(job->cancel->stop_requested());
  EXPECT_EQ(job->cancel->reason(), exec::StopReason::kUser);
}

TEST(ServeJobQueue, CancelNeedsMatchingClientAndId) {
  JobQueue queue;
  queue.push(1, make_request(Op::kRoute, 10));
  EXPECT_FALSE(queue.cancel(2, 10)) << "another client's id must not cancel";
  EXPECT_FALSE(queue.cancel(1, 11));
  EXPECT_TRUE(queue.cancel(1, 10));
}

TEST(ServeJobQueue, DeadlineTripsTokenWithDeadlineReason) {
  JobQueue queue;
  Request request = make_request(Op::kRoute, 20);
  request.deadline_seconds = 0.01;
  queue.push(1, request);
  const auto job = queue.pop();
  ASSERT_TRUE(job.has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(job->cancel->stop_requested());
  EXPECT_EQ(job->cancel->reason(), exec::StopReason::kDeadline);
}

TEST(ServeJobQueue, FinishUnregistersCancelTarget) {
  JobQueue queue;
  queue.push(1, make_request(Op::kRoute, 30));
  const auto job = queue.pop();
  ASSERT_TRUE(job.has_value());
  queue.finish(1, 30);
  EXPECT_FALSE(queue.cancel(1, 30));
}

TEST(ServeJobQueue, CancelClientStopsAllItsJobs) {
  JobQueue queue;
  queue.push(1, make_request(Op::kRoute, 1));
  queue.push(1, make_request(Op::kRoute, 2));
  queue.push(2, make_request(Op::kRoute, 1));
  queue.cancel_client(1);
  for (int i = 0; i < 3; ++i) {
    const auto job = queue.pop();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->cancel->stop_requested(), job->client == 1);
  }
}

TEST(ServeJobQueue, CloseDrainsThenReturnsNullopt) {
  JobQueue queue;
  queue.push(1, make_request(Op::kRoute, 1));
  queue.close();
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(ServeJobQueue, PushAfterCloseIsRejected) {
  JobQueue queue;
  EXPECT_TRUE(queue.push(1, make_request(Op::kRoute, 1)));
  queue.close();
  EXPECT_FALSE(queue.push(1, make_request(Op::kRoute, 2)));
  EXPECT_EQ(queue.pending(), 1u) << "a rejected push must not enqueue";
}

Request design_request(Op op, std::int64_t id, std::string design) {
  Request request = make_request(op, id);
  request.design = std::move(design);
  return request;
}

TEST(ServeJobQueue, PopHeadIfNeverSkipsPastANonMatchingHead) {
  JobQueue queue;
  queue.push(1, design_request(Op::kEco, 1, "a"));
  queue.push(1, design_request(Op::kEco, 2, "b"));
  queue.push(1, design_request(Op::kEco, 3, "a"));
  const auto matches_a = [](const Job& job) {
    return job.request.design == "a";
  };

  auto head = queue.pop();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->request.id, 1);
  // Head is now design b: the matcher must come back empty instead of
  // reaching past it for id 3 — coalescing must not reorder a lane.
  EXPECT_FALSE(queue.pop_head_if(matches_a).has_value());
  head = queue.pop();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->request.id, 2);
  const auto tail = queue.pop_head_if(matches_a);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->request.id, 3);
  EXPECT_FALSE(queue.pop_head_if(matches_a).has_value()) << "queue is empty";
}

// ---------------------------------------------------------- lane scheduler

TEST(ServeLaneScheduler, LaneForIsStableAndInRange) {
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{7}}) {
    for (const char* name : {"chip", "s5378", "mix0", "a", ""}) {
      const std::size_t lane = LaneScheduler::lane_for(name, lanes);
      EXPECT_LT(lane, lanes);
      EXPECT_EQ(lane, LaneScheduler::lane_for(name, lanes))
          << "lane_for must be a pure function of (design, lanes)";
    }
    EXPECT_EQ(LaneScheduler::lane_for("", lanes), 0u)
        << "designless ops (shutdown) must land on lane 0";
  }
  EXPECT_EQ(LaneScheduler::lane_for("anything", 1), 0u);
}

TEST(ServeLaneScheduler, PushRoutesEachDesignToItsLaneInFifoOrder) {
  LaneScheduler scheduler(4);
  const std::size_t lane_a = scheduler.lane_for("design_a");
  std::string other = "design_b";
  for (int i = 0; scheduler.lane_for(other) == lane_a; ++i)
    other = "design_b" + std::to_string(i);
  const std::size_t lane_b = scheduler.lane_for(other);

  EXPECT_TRUE(scheduler.push(1, design_request(Op::kEco, 1, "design_a")));
  EXPECT_TRUE(scheduler.push(1, design_request(Op::kEco, 2, other)));
  EXPECT_TRUE(scheduler.push(1, design_request(Op::kEco, 3, "design_a")));
  EXPECT_EQ(scheduler.pending(), 3u);
  EXPECT_EQ(scheduler.pending(lane_a), 2u);
  EXPECT_EQ(scheduler.pending(lane_b), 1u);

  auto first = scheduler.pop(lane_a);
  auto second = scheduler.pop(lane_a);
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_EQ(first->request.id, 1);
  EXPECT_EQ(second->request.id, 3) << "per-design order must be FIFO";
  auto cross = scheduler.pop(lane_b);
  ASSERT_TRUE(cross.has_value());
  EXPECT_EQ(cross->request.id, 2);
}

TEST(ServeLaneScheduler, CancelFindsTheJobAcrossLanes) {
  LaneScheduler scheduler(4);
  EXPECT_TRUE(scheduler.push(1, design_request(Op::kEco, 1, "design_a")));
  EXPECT_TRUE(scheduler.push(1, design_request(Op::kEco, 2, "design_b")));
  EXPECT_TRUE(scheduler.cancel(1, 2));
  EXPECT_FALSE(scheduler.cancel(1, 99));
  EXPECT_FALSE(scheduler.cancel(2, 1)) << "ids are client-scoped";
  const std::size_t lane = scheduler.lane_for("design_b");
  const auto job = scheduler.pop(lane);
  ASSERT_TRUE(job.has_value());
  EXPECT_TRUE(job->cancel->stop_requested());
}

TEST(ServeLaneScheduler, CloseRejectsFurtherPushes) {
  LaneScheduler scheduler(2);
  EXPECT_TRUE(scheduler.push(1, design_request(Op::kEco, 1, "design_a")));
  scheduler.close();
  EXPECT_TRUE(scheduler.closed());
  EXPECT_FALSE(scheduler.push(1, design_request(Op::kEco, 2, "design_a")));
  EXPECT_FALSE(scheduler.push(1, design_request(Op::kEco, 3, "design_b")));
  EXPECT_EQ(scheduler.pending(), 1u);
}

TEST(ServeLaneScheduler, ResolveLanesHonorsConfigAndFloorsAtOne) {
  ServerConfig config;
  config.lanes = 3;
  EXPECT_EQ(resolve_lanes(config), 3u);
  config.lanes = 0;
  EXPECT_GE(resolve_lanes(config), 1u);
  config.lanes = -5;
  EXPECT_GE(resolve_lanes(config), 1u);
}

// ----------------------------------------------------- incremental reroute

constexpr unsigned kSeed = 20130602;

netlist::Design s5378_design() {
  const auto* spec = bench_suite::find_spec("S5378");
  auto circuit = bench_suite::generate_circuit(*spec, {}, kSeed);
  return netlist::Design{circuit.grid, std::move(circuit.netlist)};
}

/// The first `count` nets with at least two pins (single-pin nets have no
/// subnets and nothing to reroute).
std::vector<netlist::NetId> routable_nets(const netlist::Netlist& netlist,
                                          std::size_t count) {
  std::vector<netlist::NetId> nets;
  for (const netlist::Net& net : netlist.nets()) {
    if (net.degree() < 2) continue;
    nets.push_back(net.id);
    if (nets.size() == count) break;
  }
  return nets;
}

TEST(ServeEco, EcoIsBitIdenticalToReplayOnS5378) {
  ResidentDesign resident(s5378_design());
  const EcoOutcome full = resident.route_full();
  ASSERT_TRUE(full.ok);

  EcoRequest request;
  request.nets = routable_nets(resident.design().netlist, 12);
  ASSERT_GE(request.nets.size(), 12u);
  request.verify = true;

  const EcoOutcome outcome = resident.eco(request);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_GE(outcome.dirty_subnets, 10u);
  EXPECT_FALSE(outcome.fallback_full);
  EXPECT_TRUE(outcome.verified)
      << "incremental ECO diverged from the from-scratch replay";
  EXPECT_FALSE(outcome.verify_mismatch);
  // The headline acceptance gate: incremental work well under a quarter of
  // the full route.
  EXPECT_LT(outcome.seconds, 0.25 * full.seconds);
}

TEST(ServeEco, PinMoveReroutesAndStaysConsistent) {
  bench_suite::BenchmarkSpec spec;
  spec.name = "unit";
  spec.um_width = 100;
  spec.um_height = 100;
  spec.layers = 3;
  spec.nets = 80;
  spec.pins = 220;
  auto circuit = bench_suite::generate_circuit(spec, {}, 11);
  netlist::Design design{circuit.grid, std::move(circuit.netlist)};

  ResidentDesign resident(std::move(design));
  ASSERT_TRUE(resident.route_full().ok);

  // Find a pin and a nearby destination no other pin occupies.
  const netlist::Netlist& netlist = resident.design().netlist;
  netlist::PinId pin = -1;
  geom::Point to;
  for (netlist::PinId candidate = 0;
       candidate < static_cast<netlist::PinId>(netlist.num_pins()) &&
       pin < 0;
       ++candidate) {
    if (netlist.net(netlist.pin(candidate).net).degree() < 2) continue;
    for (geom::Coord dx = 1; dx <= 3 && pin < 0; ++dx) {
      const geom::Point p{netlist.pin(candidate).pos.x + dx,
                          netlist.pin(candidate).pos.y};
      if (!resident.design().grid.in_bounds(p)) continue;
      bool taken = false;
      for (const netlist::Pin& other : netlist.pins())
        if (other.pos == p) {
          taken = true;
          break;
        }
      if (!taken) {
        pin = candidate;
        to = p;
      }
    }
  }
  ASSERT_GE(pin, 0) << "no movable pin found";

  EcoRequest request;
  request.move_pin = pin;
  request.move_to = to;
  request.verify = true;
  const EcoOutcome outcome = resident.eco(request);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.verified);
  EXPECT_EQ(resident.design().netlist.pin(pin).pos, to);
}

TEST(ServeEco, MultiPinMoveAppliesMovesInOrder) {
  bench_suite::BenchmarkSpec spec;
  spec.name = "unit";
  spec.um_width = 100;
  spec.um_height = 100;
  spec.layers = 3;
  spec.nets = 80;
  spec.pins = 220;
  auto circuit = bench_suite::generate_circuit(spec, {}, 11);
  ResidentDesign resident(
      netlist::Design{circuit.grid, std::move(circuit.netlist)});
  ASSERT_TRUE(resident.route_full().ok);

  // Two movable pins of distinct multi-pin nets, each with a free
  // destination no pin (original or already-moved) occupies.
  const netlist::Netlist& netlist = resident.design().netlist;
  std::vector<PinMoveSpec> moves;
  std::vector<geom::Point> taken;
  for (const netlist::Pin& pin : netlist.pins()) taken.push_back(pin.pos);
  for (netlist::PinId candidate = 0;
       candidate < static_cast<netlist::PinId>(netlist.num_pins()) &&
       moves.size() < 2;
       ++candidate) {
    if (netlist.net(netlist.pin(candidate).net).degree() < 2) continue;
    if (!moves.empty() &&
        netlist.pin(candidate).net == netlist.pin(moves.front().pin).net)
      continue;
    for (geom::Coord dx = 1; dx <= 3; ++dx) {
      const geom::Point p{netlist.pin(candidate).pos.x + dx,
                          netlist.pin(candidate).pos.y};
      if (!resident.design().grid.in_bounds(p)) continue;
      if (std::find(taken.begin(), taken.end(), p) != taken.end()) continue;
      moves.push_back({candidate, p});
      taken.push_back(p);
      break;
    }
  }
  ASSERT_EQ(moves.size(), 2u) << "no two movable pins found";

  EcoRequest request;
  request.pin_moves = moves;
  request.verify = true;
  const EcoOutcome outcome = resident.eco(request);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.verified);
  for (const PinMoveSpec& move : moves)
    EXPECT_EQ(resident.design().netlist.pin(move.pin).pos, move.to);
}

TEST(ServeEco, MoveToAnOccupiedPositionFailsCleanly) {
  bench_suite::BenchmarkSpec spec;
  spec.name = "unit";
  spec.um_width = 100;
  spec.um_height = 100;
  spec.layers = 3;
  spec.nets = 40;
  spec.pins = 120;
  auto circuit = bench_suite::generate_circuit(spec, {}, 13);
  ResidentDesign resident(
      netlist::Design{circuit.grid, std::move(circuit.netlist)});
  ASSERT_TRUE(resident.route_full().ok);

  const netlist::Netlist& netlist = resident.design().netlist;
  EcoRequest request;
  request.pin_moves = {{0, netlist.pin(1).pos}};
  const EcoOutcome outcome = resident.eco(request);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("already carries"), std::string::npos)
      << outcome.error;
  EXPECT_TRUE(resident.routed()) << "a rejected ECO must not corrupt state";
}

// The coalescing dispatcher unions consecutive same-design ECOs into one
// merged request whose single report fans out to every member. That is
// only honest if the merged apply is deterministic: two identically-
// prepared residents given the same merged batch (member lists unioned in
// request order, overlaps and all) must land on byte-identical canonical
// bytes, and the batch must survive the serialized-state verify replay.
// (Coalescing deliberately changes the apply granularity — a merged batch
// is one rip-up of the union, not its members back to back — so the pinned
// contract is batch determinism + replay identity, not sequential
// equivalence.)
TEST(ServeEco, CoalescedBatchIsBitIdenticalAcrossResidentsOnS5378) {
  ResidentDesign lived(s5378_design());
  ASSERT_TRUE(lived.route_full().ok);
  const std::vector<netlist::NetId> all =
      routable_nets(lived.design().netlist, 12);
  ASSERT_GE(all.size(), 12u);

  // The union the dispatcher builds from two overlapping members, kept in
  // request order with the duplicates intact (resolve_nets dedups).
  EcoRequest merged;
  merged.nets.insert(merged.nets.end(), all.begin(), all.begin() + 8);
  merged.nets.insert(merged.nets.end(), all.begin() + 4, all.end());
  merged.verify = true;
  const EcoOutcome outcome = lived.eco(merged);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.verified)
      << "the merged batch diverged from its serialized-state replay";
  EXPECT_FALSE(outcome.verify_mismatch);

  ResidentDesign fresh(s5378_design());
  ASSERT_TRUE(fresh.route_full().ok);
  EcoRequest replay;
  replay.nets = merged.nets;
  const EcoOutcome again = fresh.eco(replay);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(canonical_quality_block(outcome.report),
            canonical_quality_block(again.report))
      << "the same coalesced batch diverged across residents";
}

// ECO replanning with the exact ILP is only allowed in its deterministic
// node-budget mode (DESIGN.md §12/§13); this pins that such an ECO passes
// the replay gate and that the ILP actually ran (no silent degrade to the
// graph heuristic).
TEST(ServeEco, NodeBudgetedIlpEcoPassesVerifyReplay) {
  auto config = core::RouterConfig::stitch_aware()
                    .with_track_algorithm(core::TrackAlgorithm::kIlp)
                    .with_ilp_node_budget(512);
  ResidentDesign resident(s5378_design(), std::move(config));
  ASSERT_TRUE(resident.route_full().ok);

  EcoRequest request;
  request.nets = routable_nets(resident.design().netlist, 12);
  ASSERT_GE(request.nets.size(), 12u);
  request.verify = true;

  const auto before = telemetry::snapshot_counters();
  const EcoOutcome outcome = resident.eco(request);
  const auto stats = telemetry::delta(before, telemetry::snapshot_counters());

  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.verified)
      << "node-budgeted ILP ECO diverged from the from-scratch replay";
  EXPECT_FALSE(outcome.verify_mismatch);
  // Both the incremental ECO and its replay solve the dirty panels with
  // branch-and-bound; zero nodes would mean the ILP silently degraded.
  EXPECT_GT(stats.value(telemetry::keys::kTrackIlpNodes), 0);
}

TEST(ServeEco, UnknownNetNameFailsCleanly) {
  bench_suite::BenchmarkSpec spec;
  spec.name = "unit";
  spec.um_width = 100;
  spec.um_height = 100;
  spec.layers = 3;
  spec.nets = 20;
  spec.pins = 60;
  auto circuit = bench_suite::generate_circuit(spec, {}, 3);
  ResidentDesign resident(
      netlist::Design{circuit.grid, std::move(circuit.netlist)});
  ASSERT_TRUE(resident.route_full().ok);
  EcoRequest request;
  request.net_names = {"no_such_net"};
  const EcoOutcome outcome = resident.eco(request);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("no_such_net"), std::string::npos);
  EXPECT_TRUE(resident.routed()) << "a rejected ECO must not corrupt state";
}

TEST(ServeEco, EcoBeforeRouteFails) {
  bench_suite::BenchmarkSpec spec;
  spec.name = "unit";
  spec.um_width = 100;
  spec.um_height = 100;
  spec.layers = 3;
  spec.nets = 10;
  spec.pins = 30;
  auto circuit = bench_suite::generate_circuit(spec, {}, 4);
  ResidentDesign resident(
      netlist::Design{circuit.grid, std::move(circuit.netlist)});
  EcoRequest request;
  request.nets = {0};
  EXPECT_FALSE(resident.eco(request).ok);
}

// ----------------------------------------------------------- design cache

TEST(ServeDesignCache, EvictsLeastRecentlyUsed) {
  DesignCache cache(2);
  EXPECT_TRUE(cache.put("a", nullptr).empty());
  EXPECT_TRUE(cache.put("b", nullptr).empty());
  (void)cache.get("a");  // touch: b becomes LRU
  const auto evicted = cache.put("c", nullptr);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted.front(), "b");
  EXPECT_EQ(cache.names(), (std::vector<std::string>{"c", "a"}));
}

// ------------------------------------------------------------- end-to-end

std::string test_socket_path() {
  return "/tmp/mebl_serve_test_" + std::to_string(::getpid()) + ".sock";
}

double payload_seconds(const Response& response) {
  const report::Json* seconds = response.payload.get("seconds");
  return seconds != nullptr ? seconds->as_double() : -1.0;
}

TEST(ServeServer, EndToEndRouteThenEcoOverSocket) {
  ServerConfig config;
  config.socket_path = test_socket_path();
  config.cache_capacity = 2;
  Server server(config);
  ASSERT_TRUE(server.start());

  Client client;
  ASSERT_TRUE(client.connect(config.socket_path));

  // Liveness.
  auto response = client.call(make_request(Op::kPing, 0));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->type, "ack");

  // Load S5378 as inline design text.
  const netlist::Design design = s5378_design();
  std::ostringstream design_text;
  netlist::write_design(design_text, design);
  Request load = make_request(Op::kLoad, 0);
  load.design = "s5378";
  load.design_text = design_text.str();
  response = client.call(std::move(load));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, "done") << response->error;

  // Full route, with streamed progress.
  int stage_events = 0;
  Request route = make_request(Op::kRoute, 0);
  route.design = "s5378";
  response = client.call(std::move(route),
                         [&stage_events](const Response& event) {
                           if (event.type == "progress") ++stage_events;
                         });
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, "done") << response->error;
  EXPECT_GT(stage_events, 0) << "route must stream progress events";
  const double full_seconds = payload_seconds(*response);
  ASSERT_GT(full_seconds, 0.0);
  ASSERT_NE(response->payload.get("report"), nullptr);

  // Incremental reroute of >= 10 nets with the bit-identity check on.
  Request eco = make_request(Op::kEco, 0);
  eco.design = "s5378";
  eco.nets = routable_nets(design.netlist, 12);
  ASSERT_GE(eco.nets.size(), 10u);
  eco.verify = true;
  response = client.call(std::move(eco));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, "done") << response->error;
  const report::Json* summary = response->payload.get("eco");
  ASSERT_NE(summary, nullptr);
  ASSERT_NE(summary->get("verified"), nullptr);
  EXPECT_TRUE(summary->get("verified")->as_bool());
  const double eco_seconds = payload_seconds(*response);
  ASSERT_GT(eco_seconds, 0.0);
  EXPECT_LT(eco_seconds, 0.25 * full_seconds)
      << "ECO must run well under a quarter of the full route";

  // Status sees the resident design and the finished jobs.
  response = client.call(make_request(Op::kStatus, 0));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->type, "ack");
  const report::Json* designs = response->payload.get("designs");
  ASSERT_NE(designs, nullptr);
  ASSERT_EQ(designs->items().size(), 1u);
  EXPECT_EQ(designs->items().front().as_string(), "s5378");

  // Cancelling an unknown id acks with cancelled=false.
  Request cancel = make_request(Op::kCancel, 0);
  cancel.cancel_id = 9999;
  response = client.call(std::move(cancel));
  ASSERT_TRUE(response.has_value());
  ASSERT_NE(response->payload.get("cancelled"), nullptr);
  EXPECT_FALSE(response->payload.get("cancelled")->as_bool());

  // Drain-and-stop shutdown.
  response = client.call(make_request(Op::kShutdown, 0));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->type, "done");
  server.wait();
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ServeServer, SaveAndLoadStateRoundTripOverSocket) {
  ServerConfig config;
  config.socket_path = test_socket_path() + ".b";
  Server server(config);
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(config.socket_path));

  bench_suite::BenchmarkSpec spec;
  spec.name = "unit";
  spec.um_width = 100;
  spec.um_height = 100;
  spec.layers = 3;
  spec.nets = 40;
  spec.pins = 120;
  auto circuit = bench_suite::generate_circuit(spec, {}, 5);
  const netlist::Design design{circuit.grid, std::move(circuit.netlist)};
  std::ostringstream design_text;
  netlist::write_design(design_text, design);

  Request load = make_request(Op::kLoad, 0);
  load.design = "unit";
  load.design_text = design_text.str();
  auto response = client.call(std::move(load));
  ASSERT_TRUE(response && response->type == "done");
  Request route = make_request(Op::kRoute, 0);
  route.design = "unit";
  response = client.call(std::move(route));
  ASSERT_TRUE(response && response->type == "done");

  const std::string state_path = config.socket_path + ".state";
  Request save = make_request(Op::kSaveState, 0);
  save.design = "unit";
  save.path = state_path;
  response = client.call(std::move(save));
  ASSERT_TRUE(response && response->type == "done") << response->error;

  Request reload = make_request(Op::kLoadState, 0);
  reload.design = "unit2";
  reload.path = state_path;
  response = client.call(std::move(reload));
  ASSERT_TRUE(response && response->type == "done") << response->error;
  ASSERT_NE(response->payload.get("routed"), nullptr);
  EXPECT_TRUE(response->payload.get("routed")->as_bool());

  // The reloaded resident accepts an ECO directly — no fresh full route.
  Request eco = make_request(Op::kEco, 0);
  eco.design = "unit2";
  eco.nets = routable_nets(design.netlist, 4);
  response = client.call(std::move(eco));
  ASSERT_TRUE(response && response->type == "done") << response->error;

  ::unlink(state_path.c_str());
  server.stop();
}

// ----------------------------------------------------------- observability

netlist::Design small_design(unsigned seed) {
  bench_suite::BenchmarkSpec spec;
  spec.name = "unit";
  spec.um_width = 100;
  spec.um_height = 100;
  spec.layers = 3;
  spec.nets = 40;
  spec.pins = 120;
  auto circuit = bench_suite::generate_circuit(spec, {}, seed);
  return netlist::Design{circuit.grid, std::move(circuit.netlist)};
}

/// Load `design` onto the daemon as `name` and route it; asserts success.
void load_and_route(Client& client, const std::string& name,
                    const netlist::Design& design) {
  std::ostringstream design_text;
  netlist::write_design(design_text, design);
  Request load = make_request(Op::kLoad, 0);
  load.design = name;
  load.design_text = design_text.str();
  auto response = client.call(std::move(load));
  ASSERT_TRUE(response && response->type == "done") << response->error;
  Request route = make_request(Op::kRoute, 0);
  route.design = name;
  response = client.call(std::move(route));
  ASSERT_TRUE(response && response->type == "done") << response->error;
}

TEST(ServeServer, MetricsRequestRendersValidPrometheusText) {
  ServerConfig config;
  config.socket_path = test_socket_path() + ".m";
  Server server(config);
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(config.socket_path));

  const netlist::Design design = small_design(5);
  load_and_route(client, "unit", design);

  auto response = client.call(make_request(Op::kMetrics, 0));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, "ack") << response->error;
  const report::Json* content_type = response->payload.get("content_type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_EQ(content_type->as_string(), "text/plain; version=0.0.4");
  const report::Json* text_json = response->payload.get("text");
  ASSERT_NE(text_json, nullptr);
  const std::string text = text_json->as_string();

  // The exposition parses: every line is a `# TYPE mebl_* <kind>` comment
  // or `mebl_name[{labels}] <number>`.
  std::istringstream lines(text);
  int metric_lines = 0;
  for (std::string line; std::getline(lines, line);) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE mebl_", 0), 0u) << line;
      continue;
    }
    EXPECT_EQ(line.rfind("mebl_", 0), 0u) << line;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* end = nullptr;
    (void)std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
    ++metric_lines;
  }
  EXPECT_GT(metric_lines, 10);

  // Queue-wait and route-latency summaries with p50/p95/p99 lines, plus the
  // server's own gauges (queue depth, in-flight, per-design residency).
  for (const char* needle :
       {"# TYPE mebl_serve_queue_wait_ns summary",
        "mebl_serve_queue_wait_ns{quantile=\"0.5\"} ",
        "mebl_serve_queue_wait_ns{quantile=\"0.95\"} ",
        "mebl_serve_queue_wait_ns{quantile=\"0.99\"} ",
        "mebl_serve_job_route_ns{quantile=\"0.99\"} ",
        "mebl_serve_job_total_ns_count ",
        "mebl_serve_requests_decoded ",
        "mebl_serve_jobs_route ",
        "mebl_serve_queue_depth 0",
        "mebl_serve_jobs_inflight 0",
        "mebl_serve_lanes 1",
        "mebl_serve_lane_depth{lane=\"0\"} 0",
        "mebl_serve_lane_busy{lane=\"0\"} 0",
        "mebl_serve_lane_jobs{lane=\"0\"} 2",
        "mebl_serve_cache_residents 1",
        "mebl_serve_cache_resident{design=\"unit\"} 1"})
    EXPECT_NE(text.find(needle), std::string::npos)
        << "metrics text lacks: " << needle;

  server.stop();
}

TEST(ServeServer, EcoSpansAllCarryTheRequestId) {
  ServerConfig config;
  config.socket_path = test_socket_path() + ".t";
  Server server(config);
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(config.socket_path));

  const netlist::Design design = small_design(7);
  load_and_route(client, "unit", design);

  // Trace exactly the ECO request's lifetime.
  telemetry::Tracer::enable();
  telemetry::Tracer::clear();
  Request eco = make_request(Op::kEco, 0);
  eco.design = "unit";
  eco.nets = routable_nets(design.netlist, 4);
  ASSERT_GE(eco.nets.size(), 4u);
  auto response = client.call(std::move(eco));
  telemetry::Tracer::disable();
  ASSERT_TRUE(response && response->type == "done") << response->error;
  const std::uint64_t request_id = static_cast<std::uint64_t>(response->id);
  ASSERT_GT(request_id, 0u);

  const auto events = telemetry::Tracer::events();
  ASSERT_FALSE(events.empty());
  bool saw_queue_wait = false;
  bool saw_dispatch = false;
  bool saw_eco = false;
  for (const telemetry::SpanEvent& event : events) {
    EXPECT_EQ(event.req, request_id)
        << "span '" << event.name << "' lost the request tag";
    const std::string name = event.name;
    saw_queue_wait |= name == "serve.queue_wait";
    saw_dispatch |= name == "serve.dispatch";
    saw_eco |= name == "serve.eco";
  }
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_dispatch);
  EXPECT_TRUE(saw_eco);

  telemetry::Tracer::clear();
  server.stop();
}

TEST(ServeServer, DumpRequestWritesFlightRecorderFile) {
  telemetry::FlightRecorder::enable();
  ServerConfig config;
  config.socket_path = test_socket_path() + ".d";
  Server server(config);
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(config.socket_path));

  const netlist::Design design = small_design(9);
  load_and_route(client, "unit", design);

  const std::string dump_path = config.socket_path + ".flight";
  Request dump = make_request(Op::kDump, 0);
  dump.path = dump_path;
  auto response = client.call(std::move(dump));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, "ack") << response->error;
  const report::Json* path_json = response->payload.get("path");
  ASSERT_NE(path_json, nullptr);
  EXPECT_EQ(path_json->as_string(), dump_path);
  const report::Json* events_json = response->payload.get("events");
  ASSERT_NE(events_json, nullptr);
  EXPECT_GT(events_json->as_int(), 0);

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_EQ(text.rfind("# mebl flight recorder v1", 0), 0u);
  EXPECT_NE(text.find(" span serve."), std::string::npos)
      << "dump carries no serve-layer spans";

  telemetry::FlightRecorder::reset_for_testing();
  ::unlink(dump_path.c_str());
  server.stop();
}

// ---------------------------------------------------- lanes and coalescing

/// A design big enough that its route keeps a lane busy for tens of
/// milliseconds — the window the pipelined tests below queue work into.
netlist::Design medium_design(unsigned seed) {
  bench_suite::BenchmarkSpec spec;
  spec.name = "unit";
  spec.um_width = 100;
  spec.um_height = 100;
  spec.layers = 3;
  spec.nets = 300;
  spec.pins = 900;
  auto circuit = bench_suite::generate_circuit(spec, {}, seed);
  return netlist::Design{circuit.grid, std::move(circuit.netlist)};
}

TEST(ServeServer, EcoBurstCoalescesIntoOneBatchOverSocket) {
  ServerConfig config;
  config.socket_path = test_socket_path() + ".c";
  Server server(config);
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(config.socket_path));

  const netlist::Design design = medium_design(17);
  load_and_route(client, "burst", design);

  // Occupy the design's lane with a full route, then land three ECOs in
  // one socket write: they queue consecutively behind the route and must
  // coalesce into a single batched reroute.
  const auto before = telemetry::snapshot_counters();
  Request route = make_request(Op::kRoute, 0);
  route.design = "burst";
  const std::int64_t route_id = client.send(route);
  ASSERT_GE(route_id, 0);
  std::vector<Request> burst;
  for (int i = 0; i < 3; ++i) {
    Request eco = make_request(Op::kEco, 0);
    eco.design = "burst";
    eco.nets = routable_nets(design.netlist, 4);
    eco.verify = i == 2;
    burst.push_back(std::move(eco));
  }
  const std::vector<std::int64_t> burst_ids =
      client.send_batch(std::move(burst));
  ASSERT_EQ(burst_ids.size(), 3u);

  std::set<std::int64_t> outstanding(burst_ids.begin(), burst_ids.end());
  outstanding.insert(route_id);
  while (!outstanding.empty()) {
    const auto response = client.receive();
    ASSERT_TRUE(response.has_value());
    if (response->type == "ack" || response->type == "progress") continue;
    ASSERT_EQ(outstanding.erase(response->id), 1u);
    ASSERT_EQ(response->type, "done") << response->error;
    if (response->id == route_id) continue;
    // Every batch member's response names the batch it rode in.
    const report::Json* summary = response->payload.get("eco");
    ASSERT_NE(summary, nullptr);
    ASSERT_NE(summary->get("coalesced"), nullptr);
    EXPECT_EQ(summary->get("coalesced")->as_int(), 3);
    if (response->id == burst_ids.back()) {
      ASSERT_NE(summary->get("verified"), nullptr);
      EXPECT_TRUE(summary->get("verified")->as_bool())
          << "the merged batch failed its verify replay";
    } else {
      EXPECT_EQ(summary->get("verified"), nullptr)
          << "verified must only fan out to the member that asked";
    }
  }
  const auto stats = telemetry::delta(before, telemetry::snapshot_counters());
  EXPECT_EQ(stats.value(telemetry::keys::kServeEcoCoalesced), 2)
      << "three consecutive ECOs must absorb two into the batch";
  server.stop();
}

TEST(ServeServer, ExpiredDeadlineRejectedBeforeStart) {
  ServerConfig config;
  config.socket_path = test_socket_path() + ".dl";
  config.lanes = 1;
  Server server(config);
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(config.socket_path));

  const netlist::Design design = medium_design(19);
  load_and_route(client, "busy", design);

  // Occupy the lane, then queue an ECO whose deadline expires while it
  // waits: the lane must reject it with a structured error instead of
  // starting and then cancelling it.
  const auto before = telemetry::snapshot_counters();
  Request route = make_request(Op::kRoute, 0);
  route.design = "busy";
  ASSERT_GE(client.send(route), 0);
  Request eco = make_request(Op::kEco, 0);
  eco.design = "busy";
  eco.nets = routable_nets(design.netlist, 4);
  eco.deadline_seconds = 0.001;
  const auto response = client.call(std::move(eco));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, "error");
  EXPECT_EQ(response->error, "deadline exceeded");
  const report::Json* code = response->payload.get("code");
  ASSERT_NE(code, nullptr);
  EXPECT_EQ(code->as_string(), "deadline_exceeded");
  const report::Json* rejected = response->payload.get("rejected_before_start");
  ASSERT_NE(rejected, nullptr);
  EXPECT_TRUE(rejected->as_bool());
  const auto stats = telemetry::delta(before, telemetry::snapshot_counters());
  EXPECT_EQ(stats.value(telemetry::keys::kServeDeadlineRejected), 1);
  server.stop();
}

TEST(ServeServer, CrossLaneConcurrencySmoke) {
  ServerConfig config;
  config.socket_path = test_socket_path() + ".x";
  config.lanes = 2;
  Server server(config);
  ASSERT_TRUE(server.start());

  // Two designs whose names hash to the two different lanes.
  const std::string name_a = "lane_smoke_a";
  const std::size_t lane_a = LaneScheduler::lane_for(name_a, 2);
  std::string name_b = "lane_smoke_b";
  for (int i = 0; LaneScheduler::lane_for(name_b, 2) == lane_a; ++i)
    name_b = "lane_smoke_b" + std::to_string(i);

  // One client thread per design: load, route, ECO, all overlapping with
  // the other design's jobs on the other lane. Collect the lane index of
  // every enqueue ack; the lane-affinity invariant says each design only
  // ever sees its own lane.
  struct Worker {
    bool ok = false;
    std::string error;
    std::set<std::int64_t> lanes_seen;
  };
  Worker workers[2];
  const std::string names[2] = {name_a, name_b};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w)
    threads.emplace_back([&, w] {
      Worker& worker = workers[w];
      Client client;
      if (!client.connect(config.socket_path)) {
        worker.error = "connect failed";
        return;
      }
      const auto lane_collector = [&worker](const Response& event) {
        if (event.type != "ack") return;
        if (const report::Json* lane = event.payload.get("lane"))
          worker.lanes_seen.insert(lane->as_int());
      };
      const netlist::Design design = medium_design(23 + w);
      std::ostringstream design_text;
      netlist::write_design(design_text, design);
      Request load = make_request(Op::kLoad, 0);
      load.design = names[w];
      load.design_text = design_text.str();
      auto response = client.call(std::move(load), lane_collector);
      if (!response || response->type != "done") {
        worker.error = "load failed";
        return;
      }
      Request route = make_request(Op::kRoute, 0);
      route.design = names[w];
      response = client.call(std::move(route), lane_collector);
      if (!response || response->type != "done") {
        worker.error = "route failed";
        return;
      }
      Request eco = make_request(Op::kEco, 0);
      eco.design = names[w];
      eco.nets = routable_nets(design.netlist, 4);
      response = client.call(std::move(eco), lane_collector);
      if (!response || response->type != "done") {
        worker.error = "eco failed";
        return;
      }
      worker.ok = true;
    });
  for (std::thread& thread : threads) thread.join();

  for (int w = 0; w < 2; ++w) {
    EXPECT_TRUE(workers[w].ok) << names[w] << ": " << workers[w].error;
    EXPECT_EQ(workers[w].lanes_seen.size(), 1u)
        << names[w] << " was dispatched on more than one lane";
    EXPECT_EQ(*workers[w].lanes_seen.begin(),
              static_cast<std::int64_t>(LaneScheduler::lane_for(names[w], 2)));
  }
  EXPECT_NE(*workers[0].lanes_seen.begin(), *workers[1].lanes_seen.begin());

  // Status reports the lane count; shutdown drains every lane and stops.
  Client client;
  ASSERT_TRUE(client.connect(config.socket_path));
  auto response = client.call(make_request(Op::kStatus, 0));
  ASSERT_TRUE(response.has_value());
  ASSERT_NE(response->payload.get("lanes"), nullptr);
  EXPECT_EQ(response->payload.get("lanes")->as_int(), 2);
  response = client.call(make_request(Op::kShutdown, 0));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->type, "done");
  server.wait();
  server.stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace mebl::serve
