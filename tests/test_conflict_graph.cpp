#include "assign/conflict_graph.hpp"

#include <gtest/gtest.h>

namespace mebl::assign {
namespace {

TEST(ConflictGraph, NoEdgesForDisjointSegments) {
  const std::vector<SegmentProfile> segments{{{0, 2}, 0}, {{4, 6}, 1}};
  const auto graph = build_conflict_graph(segments, true);
  EXPECT_TRUE(graph.edges.empty());
}

TEST(ConflictGraph, EdgeForOverlappingSegments) {
  const std::vector<SegmentProfile> segments{{{0, 4}, 0}, {{3, 6}, 1}};
  const auto graph = build_conflict_graph(segments, false);
  ASSERT_EQ(graph.edges.size(), 1u);
  // D_segment = max density over overlap rows [3,4] = 2.
  EXPECT_DOUBLE_EQ(graph.edges[0].weight, 2.0);
}

TEST(ConflictGraph, LineEndTermAddedWhenEndsMeet) {
  // Segment 0 ends at row 4; segment 1 starts at row 4: both have a line end
  // in row 4 (end density 2 there).
  const std::vector<SegmentProfile> segments{{{0, 4}, 0}, {{4, 8}, 1}};
  const auto without = build_conflict_graph(segments, false);
  const auto with = build_conflict_graph(segments, true);
  ASSERT_EQ(without.edges.size(), 1u);
  ASSERT_EQ(with.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(without.edges[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(with.edges[0].weight, 4.0);  // D_segment 2 + D_end 2
}

TEST(ConflictGraph, NoEndTermWhenEndsDoNotMeet) {
  const std::vector<SegmentProfile> segments{{{0, 4}, 0}, {{2, 8}, 1}};
  const auto with = build_conflict_graph(segments, true);
  ASSERT_EQ(with.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(with.edges[0].weight, 2.0);  // ends at 0,4 vs 2,8: disjoint
}

TEST(ConflictGraph, DensityCountsAllCoveringSegments) {
  // Three segments all covering row 2.
  const std::vector<SegmentProfile> segments{
      {{0, 4}, 0}, {{2, 6}, 1}, {{1, 3}, 2}};
  const auto graph = build_conflict_graph(segments, false);
  ASSERT_EQ(graph.edges.size(), 3u);
  for (const auto& e : graph.edges) EXPECT_DOUBLE_EQ(e.weight, 3.0);
}

TEST(ConflictGraph, VertexWeightsSumIncidentEdges) {
  const std::vector<SegmentProfile> segments{
      {{0, 4}, 0}, {{2, 6}, 1}, {{1, 3}, 2}};
  const auto graph = build_conflict_graph(segments, false);
  const auto weights = graph.vertex_weights();
  ASSERT_EQ(weights.size(), 3u);
  for (const double w : weights) EXPECT_DOUBLE_EQ(w, 6.0);
}

TEST(ConflictGraph, ColoringCostCountsMonochromaticEdges) {
  const std::vector<SegmentProfile> segments{{{0, 4}, 0}, {{3, 6}, 1}};
  const auto graph = build_conflict_graph(segments, false);
  EXPECT_DOUBLE_EQ(graph.coloring_cost({0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(graph.coloring_cost({0, 1}), 0.0);
}

TEST(ConflictGraph, EmptyInput) {
  const auto graph = build_conflict_graph({}, true);
  EXPECT_TRUE(graph.segments.empty());
  EXPECT_TRUE(graph.edges.empty());
  EXPECT_TRUE(graph.vertex_weights().empty());
}

}  // namespace
}  // namespace mebl::assign
