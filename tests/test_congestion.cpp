#include "eval/congestion.hpp"

#include <gtest/gtest.h>

namespace mebl::eval {
namespace {

using geom::Coord;

grid::RoutingGrid make_grid() {
  return grid::RoutingGrid(60, 60, 3, 30, grid::StitchPlan(60, 15));
}

TEST(Congestion, EmptyGridIsAllZero) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  const auto map = measure_congestion(grid);
  EXPECT_EQ(map.tiles_x, 2);
  EXPECT_EQ(map.tiles_y, 2);
  EXPECT_DOUBLE_EQ(map.peak(), 0.0);
  EXPECT_DOUBLE_EQ(map.mean(), 0.0);
}

TEST(Congestion, HorizontalWireCountsInHorizontalMap) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  for (Coord x = 0; x < 30; ++x) grid.claim({x, 5, 1}, 0);
  const auto map = measure_congestion(grid);
  // 30 nodes over a 30x30 tile with 2 horizontal layers: 30/1800.
  EXPECT_NEAR(map.h_at(0, 0), 30.0 / 1800.0, 1e-12);
  EXPECT_DOUBLE_EQ(map.v_at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(map.h_at(1, 0), 0.0);
}

TEST(Congestion, VerticalWireCountsInVerticalMap) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  for (Coord y = 0; y < 30; ++y) grid.claim({5, y, 2}, 0);
  const auto map = measure_congestion(grid);
  EXPECT_NEAR(map.v_at(0, 0), 30.0 / 900.0, 1e-12);  // one vertical layer
  EXPECT_DOUBLE_EQ(map.h_at(0, 0), 0.0);
}

TEST(Congestion, EscapeUseTracksEscapeRegionOnly) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  // x=14 is in the escape region of line 15; x=5 is not.
  for (Coord y = 0; y < 30; ++y) grid.claim({14, y, 2}, 0);
  for (Coord y = 0; y < 30; ++y) grid.claim({5, y, 2}, 1);
  const auto map = measure_congestion(grid);
  // Tile (0,0) escape columns: {13,14,16,17} around line 15 plus {28,29}
  // from line 30's left side = 6 columns x 30 rows.
  EXPECT_NEAR(map.escape_at(0, 0), 30.0 / 180.0, 1e-12);
}

TEST(Congestion, PeakAndMean) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  for (Coord x = 0; x < 30; ++x)
    for (Coord y = 0; y < 30; ++y) grid.claim({x, y, 1}, 0);
  const auto map = measure_congestion(grid);
  EXPECT_NEAR(map.peak(), 0.5, 1e-12);  // layer 1 full, layer 3 empty
  EXPECT_GT(map.mean(), 0.0);
  EXPECT_LT(map.mean(), map.peak() + 1e-12);
}

TEST(Congestion, AsciiHeatmapShape) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  const auto map = measure_congestion(grid);
  const std::string art = ascii_heatmap(map, false);
  // 2 rows of 2 chars plus newlines.
  EXPECT_EQ(art, "..\n..\n");
}

TEST(Congestion, AsciiHeatmapSaturates) {
  CongestionMap map;
  map.tiles_x = 2;
  map.tiles_y = 1;
  map.horizontal = {0.35, 1.5};
  map.vertical = {0.0, 0.0};
  map.escape_use = {0.0, 0.0};
  EXPECT_EQ(ascii_heatmap(map, false), "3#\n");
}

TEST(Congestion, SvgHeatmapWellFormed) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  const auto map = measure_congestion(grid);
  const std::string svg = svg_heatmap(map, true);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 4 tiles -> 4 rects.
  int rects = 0;
  std::size_t pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_EQ(rects, 4);
}

}  // namespace
}  // namespace mebl::eval
