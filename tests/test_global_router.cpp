#include "global/global_router.hpp"

#include <gtest/gtest.h>

namespace mebl::global {
namespace {

grid::RoutingGrid make_grid(geom::Coord w = 120, geom::Coord h = 120) {
  return grid::RoutingGrid(w, h, 3, 30, grid::StitchPlan(w, 15));
}

bool is_contiguous(const std::vector<grid::GCellId>& tiles) {
  for (std::size_t i = 0; i + 1 < tiles.size(); ++i) {
    const int dx = std::abs(tiles[i].tx - tiles[i + 1].tx);
    const int dy = std::abs(tiles[i].ty - tiles[i + 1].ty);
    if (dx + dy != 1) return false;
  }
  return true;
}

TEST(GlobalRouter, RoutesSimpleSubnet) {
  const auto grid = make_grid();
  GlobalRouter router(grid);
  const std::vector<netlist::Subnet> subnets{{0, {5, 5}, {95, 95}}};
  const auto result = router.route(subnets);
  ASSERT_EQ(result.paths.size(), 1u);
  ASSERT_TRUE(result.paths[0].routed);
  const auto& tiles = result.paths[0].tiles;
  EXPECT_EQ(tiles.front(), (grid::GCellId{0, 0}));
  EXPECT_EQ(tiles.back(), (grid::GCellId{3, 3}));
  EXPECT_TRUE(is_contiguous(tiles));
  // Shortest tile path = 6 hops.
  EXPECT_EQ(result.wirelength, 6);
}

TEST(GlobalRouter, SameTileSubnetIsTrivial) {
  const auto grid = make_grid();
  GlobalRouter router(grid);
  const std::vector<netlist::Subnet> subnets{{0, {2, 2}, {9, 9}}};
  const auto result = router.route(subnets);
  ASSERT_TRUE(result.paths[0].routed);
  EXPECT_EQ(result.paths[0].tiles.size(), 1u);
  EXPECT_EQ(result.wirelength, 0);
}

TEST(GlobalRouter, DemandsRecordedAlongPath) {
  const auto grid = make_grid();
  GlobalRouter router(grid);
  const std::vector<netlist::Subnet> subnets{{0, {5, 5}, {95, 5}}};
  router.route(subnets);
  // A straight horizontal path through tiles (0..3, 0): 3 h-edges.
  int used = 0;
  for (int tx = 0; tx + 1 < 4; ++tx) used += router.graph().h_demand(tx, 0);
  EXPECT_EQ(used, 3);
}

TEST(GlobalRouter, VerticalPathAddsLineEndDemand) {
  const auto grid = make_grid();
  GlobalRouter router(grid);
  const std::vector<netlist::Subnet> subnets{{0, {5, 5}, {5, 95}}};
  router.route(subnets);
  // One maximal vertical run: line ends at both end tiles.
  EXPECT_EQ(router.graph().vertex_demand(0, 0), 1);
  EXPECT_EQ(router.graph().vertex_demand(0, 3), 1);
  EXPECT_EQ(router.graph().vertex_demand(0, 1), 0);
}

TEST(GlobalRouter, ManySubnetsAllRouted) {
  const auto grid = make_grid();
  GlobalRouter router(grid);
  std::vector<netlist::Subnet> subnets;
  for (int i = 0; i < 40; ++i)
    subnets.push_back({i, {static_cast<geom::Coord>(3 * i % 110), 5},
                       {static_cast<geom::Coord>((3 * i + 60) % 110), 95}});
  const auto result = router.route(subnets);
  for (const auto& path : result.paths) EXPECT_TRUE(path.routed);
}

TEST(GlobalRouter, VertexCostSpreadsLineEnds) {
  // Many vertical subnets ending in the same tile: with vertex cost the
  // router spreads their bends; without it they pile up.
  const auto grid = make_grid(240, 240);
  std::vector<netlist::Subnet> subnets;
  for (int i = 0; i < 120; ++i) {
    const auto x = static_cast<geom::Coord>(2 + (i * 2) % 26);
    subnets.push_back({i, {x, static_cast<geom::Coord>(2 + i % 20)},
                       {static_cast<geom::Coord>(200 + i % 30),
                        static_cast<geom::Coord>(100 + (i * 7) % 100)}});
  }

  GlobalRouterConfig with;
  with.vertex_cost = true;
  GlobalRouter aware(grid, with);
  const auto aware_result = aware.route(subnets);

  GlobalRouterConfig without;
  without.vertex_cost = false;
  GlobalRouter oblivious(grid, without);
  const auto oblivious_result = oblivious.route(subnets);

  EXPECT_LE(aware_result.total_vertex_overflow,
            oblivious_result.total_vertex_overflow);
}

TEST(GlobalRouter, PathEndpointsMatchPinTiles) {
  const auto grid = make_grid();
  GlobalRouter router(grid);
  const std::vector<netlist::Subnet> subnets{
      {0, {40, 70}, {100, 10}}, {1, {0, 0}, {119, 119}}};
  const auto result = router.route(subnets);
  for (std::size_t i = 0; i < subnets.size(); ++i) {
    ASSERT_TRUE(result.paths[i].routed);
    EXPECT_EQ(result.paths[i].tiles.front().tx,
              grid.tile_of_x(subnets[i].a.x));
    EXPECT_EQ(result.paths[i].tiles.front().ty,
              grid.tile_of_y(subnets[i].a.y));
    EXPECT_EQ(result.paths[i].tiles.back().tx, grid.tile_of_x(subnets[i].b.x));
    EXPECT_EQ(result.paths[i].tiles.back().ty, grid.tile_of_y(subnets[i].b.y));
    EXPECT_TRUE(is_contiguous(result.paths[i].tiles));
  }
}

}  // namespace
}  // namespace mebl::global
