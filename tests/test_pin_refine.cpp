#include "place/pin_refine.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "bench_suite/circuit_generator.hpp"

namespace mebl::place {
namespace {

grid::RoutingGrid make_grid() {
  return grid::RoutingGrid(90, 90, 3, 30, grid::StitchPlan(90, 15));
}

TEST(PinRefine, MovesPinOffStitchLine) {
  const auto grid = make_grid();
  netlist::Netlist nl;
  const auto a = nl.add_net("a");
  nl.add_pin(a, {15, 10});  // on the line
  const auto stats = refine_pins(grid, nl);
  EXPECT_EQ(stats.pins_on_lines_before, 1);
  EXPECT_EQ(stats.pins_on_lines_after, 0);
  EXPECT_EQ(stats.pins_moved, 1);
  EXPECT_FALSE(grid.stitch().is_stitch_column(nl.pin(0).pos.x));
}

TEST(PinRefine, ClearsUnfriendlyRegionWhenAsked) {
  const auto grid = make_grid();
  netlist::Netlist nl;
  const auto a = nl.add_net("a");
  nl.add_pin(a, {16, 10});  // unfriendly (next to line 15)
  PinRefineConfig config;
  config.clear_unfriendly_regions = true;
  const auto stats = refine_pins(grid, nl, config);
  EXPECT_EQ(stats.pins_unfriendly_before, 1);
  EXPECT_EQ(stats.pins_unfriendly_after, 0);
  EXPECT_FALSE(grid.stitch().in_unfriendly_region(nl.pin(0).pos.x));
}

TEST(PinRefine, LeavesUnfriendlyPinsWhenDisabled) {
  const auto grid = make_grid();
  netlist::Netlist nl;
  const auto a = nl.add_net("a");
  nl.add_pin(a, {16, 10});
  PinRefineConfig config;
  config.clear_unfriendly_regions = false;
  const auto stats = refine_pins(grid, nl, config);
  EXPECT_EQ(stats.pins_moved, 0);
  EXPECT_EQ(nl.pin(0).pos, (geom::Point{16, 10}));
}

TEST(PinRefine, RespectsDisplacementBudget) {
  // All escape destinations within 1 track of x=15 are still hazardous
  // (14 and 16 are unfriendly), so budget 1 cannot fix the pin.
  const auto grid = make_grid();
  netlist::Netlist nl;
  const auto a = nl.add_net("a");
  nl.add_pin(a, {15, 10});
  PinRefineConfig config;
  config.max_displacement = 1;
  const auto stats = refine_pins(grid, nl, config);
  EXPECT_EQ(stats.pins_moved, 0);
  EXPECT_EQ(stats.pins_on_lines_after, 1);
}

TEST(PinRefine, DoesNotStackPins) {
  const auto grid = make_grid();
  netlist::Netlist nl;
  const auto a = nl.add_net("a");
  nl.add_pin(a, {15, 10});
  nl.add_pin(a, {17, 10});  // occupies the natural right-side destination
  nl.add_pin(a, {13, 10});  // and the left-side one
  (void)refine_pins(grid, nl);
  std::unordered_set<geom::Point> seen;
  for (const auto& pin : nl.pins()) EXPECT_TRUE(seen.insert(pin.pos).second);
}

TEST(PinRefine, UntouchedPinsStayPut) {
  const auto grid = make_grid();
  netlist::Netlist nl;
  const auto a = nl.add_net("a");
  nl.add_pin(a, {5, 5});
  const auto stats = refine_pins(grid, nl);
  EXPECT_EQ(stats.pins_moved, 0);
  EXPECT_EQ(nl.pin(0).pos, (geom::Point{5, 5}));
}

TEST(PinRefine, ReducesHazardsOnGeneratedCircuit) {
  auto spec = *bench_suite::find_spec("S9234");
  bench_suite::GeneratorConfig config;
  config.pin_on_line_fraction = 0.2;  // force plenty of hazards
  auto circuit = bench_suite::generate_circuit(spec, config, 7);
  const auto stats = refine_pins(circuit.grid, circuit.netlist);
  EXPECT_GT(stats.pins_on_lines_before, 0);
  EXPECT_LT(stats.pins_on_lines_after, stats.pins_on_lines_before);
  EXPECT_LT(stats.pins_unfriendly_after, stats.pins_unfriendly_before);
  // Pin count unchanged and pins still unique / in bounds.
  std::unordered_set<geom::Point> seen;
  for (const auto& pin : circuit.netlist.pins()) {
    EXPECT_TRUE(circuit.grid.in_bounds(pin.pos));
    EXPECT_TRUE(seen.insert(pin.pos).second);
  }
}

TEST(PinRefine, DisplacementAccounting) {
  const auto grid = make_grid();
  netlist::Netlist nl;
  const auto a = nl.add_net("a");
  nl.add_pin(a, {15, 10});
  const auto stats = refine_pins(grid, nl);
  EXPECT_EQ(stats.total_displacement, manhattan(geom::Point{15, 10},
                                                nl.pin(0).pos));
}

}  // namespace
}  // namespace mebl::place
