#include "detail/astar.hpp"

#include <gtest/gtest.h>

namespace mebl::detail {
namespace {

using geom::Coord;
using geom::Point;
using geom::Point3;
using geom::Rect;

grid::RoutingGrid make_grid(Coord w = 60, Coord h = 60, int layers = 3) {
  return grid::RoutingGrid(w, h, layers, 30, grid::StitchPlan(w, 15));
}

TEST(AStar, RoutesStraightHorizontalConnection) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  AStarRouter router(grid, {});
  ASSERT_TRUE(router.route(0, {2, 5}, {12, 5}, rg.extent()));
  // Path claims the pins' column stacks and the wire on layer 1.
  EXPECT_EQ(grid.owner({2, 5, 0}), 0);
  EXPECT_EQ(grid.owner({12, 5, 0}), 0);
  EXPECT_EQ(grid.owner({7, 5, 1}), 0);
}

TEST(AStar, LShapeUsesVerticalLayer) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  AStarRouter router(grid, {});
  ASSERT_TRUE(router.route(0, {2, 2}, {10, 12}, rg.extent()));
  bool used_vertical_layer = false;
  for (const Point3 p : router.last_path())
    if (p.layer == 2) used_vertical_layer = true;
  EXPECT_TRUE(used_vertical_layer);
}

TEST(AStar, NeverRoutesVerticallyOnStitchColumn) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  AStarRouter router(grid, {});
  // Force vertical movement near the line x=15.
  ASSERT_TRUE(router.route(0, {15, 2}, {15, 25}, rg.extent()));
  for (std::size_t i = 0; i + 1 < router.last_path().size(); ++i) {
    const Point3 a = router.last_path()[i];
    const Point3 b = router.last_path()[i + 1];
    if (a.layer == b.layer && a.x == b.x && a.x == 15)
      FAIL() << "vertical move on stitch column at y " << a.y;
  }
}

TEST(AStar, ViaOnStitchColumnOnlyAtPins) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  AStarRouter router(grid, {});
  ASSERT_TRUE(router.route(0, {15, 2}, {15, 25}, rg.extent()));
  for (std::size_t i = 0; i + 1 < router.last_path().size(); ++i) {
    const Point3 a = router.last_path()[i];
    const Point3 b = router.last_path()[i + 1];
    if (a.layer != b.layer && rg.stitch().is_stitch_column(a.x)) {
      const bool at_pin = (a.x == 15 && (a.y == 2 || a.y == 25));
      EXPECT_TRUE(at_pin) << "via on line at (" << a.x << "," << a.y << ")";
    }
  }
}

TEST(AStar, AvoidsBlockedNodes) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  // Wall on layer 1 at y=5 between the pins (x in [4,8]).
  for (Coord x = 4; x <= 8; ++x) grid.claim({x, 5, 1}, 99);
  AStarRouter router(grid, {});
  ASSERT_TRUE(router.route(0, {2, 5}, {12, 5}, rg.extent()));
  for (const Point3 p : router.last_path()) EXPECT_NE(grid.owner(p), 99);
}

TEST(AStar, FailsWhenFullyBlocked) {
  const auto rg = make_grid(60, 60, 2);  // layers: 1 H, 2 V
  GridGraph grid(rg);
  // Block every node of both routing layers in a box around pin a except
  // the pin column itself.
  for (Coord x = 0; x <= 10; ++x)
    for (Coord y = 0; y <= 10; ++y)
      for (geom::LayerId l = 1; l <= 2; ++l)
        if (!(x == 2 && y == 2)) grid.claim({x, y, l}, 99);
  AStarRouter router(grid, {});
  EXPECT_FALSE(router.route(0, {2, 2}, {8, 8}, Rect{0, 0, 10, 10}));
}

TEST(AStar, FailureLeavesGridUnchanged) {
  const auto rg = make_grid(60, 60, 2);
  GridGraph grid(rg);
  for (Coord x = 0; x <= 10; ++x)
    for (Coord y = 0; y <= 10; ++y)
      for (geom::LayerId l = 1; l <= 2; ++l)
        if (!(x == 2 && y == 2)) grid.claim({x, y, l}, 99);
  const auto before = grid.occupied_nodes();
  AStarRouter router(grid, {});
  EXPECT_FALSE(router.route(0, {2, 2}, {8, 8}, Rect{0, 0, 10, 10}));
  EXPECT_EQ(grid.occupied_nodes(), before);
}

TEST(AStar, ReusesOwnNetGeometry) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  // Pre-existing wire of net 0 along y=5.
  for (Coord x = 2; x <= 20; ++x) grid.claim({x, 5, 1}, 0);
  AStarRouter router(grid, {});
  ASSERT_TRUE(router.route(0, {2, 5}, {20, 5}, rg.extent()));
  // Riding its own wire: only the two pin stacks get claimed in addition.
  EXPECT_EQ(grid.occupied_nodes(), 19 + 2);
}

TEST(AStar, StitchCostSteersViasOutOfUnfriendlyRegions) {
  const auto rg = make_grid(90, 60);
  // Route an L that could bend right next to the line x=15.
  AStarConfig aware;
  aware.stitch_cost = true;
  GridGraph grid_aware(rg);
  AStarRouter router_aware(grid_aware, aware);
  ASSERT_TRUE(router_aware.route(0, {2, 5}, {16, 25}, rg.extent()));
  int aware_vsu = 0;
  for (std::size_t i = 0; i + 1 < router_aware.last_path().size(); ++i) {
    const Point3 a = router_aware.last_path()[i];
    const Point3 b = router_aware.last_path()[i + 1];
    if (a.layer != b.layer && rg.stitch().in_unfriendly_region(b.x) &&
        !(b.x == 16 && b.y == 25))
      ++aware_vsu;  // vias in unfriendly regions away from the target pin
  }
  EXPECT_EQ(aware_vsu, 0);
}

TEST(AStar, ProbeCrossesForeignWithoutClaiming) {
  const auto rg = make_grid(60, 60, 2);
  GridGraph grid(rg);
  // Wall across both routing layers between the pins: normal routing fails.
  for (Coord y = 0; y < 60; ++y)
    for (geom::LayerId l = 1; l <= 2; ++l) grid.claim({6, y, l}, 99);
  AStarRouter router(grid, {});
  EXPECT_FALSE(router.route(0, {2, 5}, {12, 5}, rg.extent()));
  const auto before = grid.occupied_nodes();
  ASSERT_TRUE(router.probe(0, {2, 5}, {12, 5}, rg.extent(), 40.0, nullptr));
  EXPECT_EQ(grid.occupied_nodes(), before);  // probe never claims
  bool crossed_foreign = false;
  for (const Point3 p : router.last_path())
    if (grid.owner(p) == 99) crossed_foreign = true;
  EXPECT_TRUE(crossed_foreign);
}

TEST(AStar, ProbeRespectsHardNodes) {
  const auto rg = make_grid(60, 60, 2);
  GridGraph grid(rg);
  NodeBitmap hard(static_cast<std::size_t>(rg.num_layers()) * rg.width() *
                  rg.height());
  for (Coord y = 0; y < 60; ++y)
    for (geom::LayerId l = 1; l <= 2; ++l) {
      grid.claim({6, y, l}, 99);
      hard.set(grid.index({6, y, l}));
    }
  AStarRouter router(grid, {});
  EXPECT_FALSE(router.probe(0, {2, 5}, {12, 5}, rg.extent(), 40.0, &hard));
}

TEST(AStar, NodePenaltySteersPath) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  AStarRouter router(grid, {});
  // Heavily penalize the straight row on both horizontal layers so the
  // route jogs around it.
  for (Coord x = 3; x <= 11; ++x) {
    router.add_node_penalty({x, 5, 1}, 100.0);
    router.add_node_penalty({x, 5, 3}, 100.0);
  }
  ASSERT_TRUE(router.route(0, {2, 5}, {12, 5}, rg.extent()));
  bool left_row = false;
  for (const Point3 p : router.last_path())
    if (p.layer >= 1 && p.y != 5) left_row = true;
  EXPECT_TRUE(left_row);
}

TEST(AStar, TracksNodesExpanded) {
  const auto rg = make_grid();
  GridGraph grid(rg);
  AStarRouter router(grid, {});
  EXPECT_EQ(router.nodes_expanded(), 0);
  ASSERT_TRUE(router.route(0, {2, 5}, {12, 5}, rg.extent()));
  EXPECT_GT(router.nodes_expanded(), 0);
}

}  // namespace
}  // namespace mebl::detail
