#include "graph/interval_k_coloring.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mebl::graph {
namespace {

using geom::Interval;

/// Check that the coloring is proper: same-colored chosen intervals are
/// pairwise disjoint.
void expect_proper(const std::vector<WeightedInterval>& intervals,
                   const KColorableSubset& subset) {
  for (std::size_t i = 0; i < subset.chosen.size(); ++i) {
    for (std::size_t j = i + 1; j < subset.chosen.size(); ++j) {
      if (subset.color_of_chosen[i] != subset.color_of_chosen[j]) continue;
      EXPECT_FALSE(intervals[subset.chosen[i]].span.overlaps(
          intervals[subset.chosen[j]].span))
          << "same color " << subset.color_of_chosen[i] << " for intervals "
          << subset.chosen[i] << " and " << subset.chosen[j];
    }
  }
}

TEST(KColorable, DisjointIntervalsAllChosen) {
  const std::vector<WeightedInterval> intervals{
      {{0, 1}, 1.0}, {{3, 4}, 2.0}, {{6, 7}, 3.0}};
  const auto subset = max_weight_k_colorable_subset(intervals, 1);
  EXPECT_EQ(subset.chosen.size(), 3u);
  EXPECT_DOUBLE_EQ(subset.total_weight, 6.0);
  expect_proper(intervals, subset);
}

TEST(KColorable, OverlapForcesChoiceAtK1) {
  const std::vector<WeightedInterval> intervals{{{0, 5}, 1.0}, {{3, 9}, 4.0}};
  const auto subset = max_weight_k_colorable_subset(intervals, 1);
  ASSERT_EQ(subset.chosen.size(), 1u);
  EXPECT_EQ(subset.chosen[0], 1u);
  EXPECT_DOUBLE_EQ(subset.total_weight, 4.0);
}

TEST(KColorable, K2TakesBothOverlapping) {
  const std::vector<WeightedInterval> intervals{{{0, 5}, 1.0}, {{3, 9}, 4.0}};
  const auto subset = max_weight_k_colorable_subset(intervals, 2);
  EXPECT_EQ(subset.chosen.size(), 2u);
  expect_proper(intervals, subset);
}

TEST(KColorable, TriplePointWithK2DropsCheapest) {
  // Three intervals sharing the point 5; k=2 keeps the two heaviest.
  const std::vector<WeightedInterval> intervals{
      {{0, 5}, 3.0}, {{5, 9}, 2.0}, {{4, 6}, 1.0}};
  const auto subset = max_weight_k_colorable_subset(intervals, 2);
  EXPECT_EQ(subset.chosen.size(), 2u);
  EXPECT_DOUBLE_EQ(subset.total_weight, 5.0);
  expect_proper(intervals, subset);
}

TEST(KColorable, ClosedIntervalTouchingCounts) {
  // [0,5] and [5,9] share point 5, so k=1 cannot take both.
  const std::vector<WeightedInterval> intervals{{{0, 5}, 1.0}, {{5, 9}, 1.0}};
  const auto subset = max_weight_k_colorable_subset(intervals, 1);
  EXPECT_EQ(subset.chosen.size(), 1u);
}

TEST(KColorable, EmptyInput) {
  const auto subset = max_weight_k_colorable_subset({}, 3);
  EXPECT_TRUE(subset.chosen.empty());
  EXPECT_DOUBLE_EQ(subset.total_weight, 0.0);
}

TEST(KColorable, MatchesBruteForceOnRandomInstances) {
  util::Rng rng(77);
  for (int round = 0; round < 60; ++round) {
    std::vector<WeightedInterval> intervals;
    const int n = static_cast<int>(rng.uniform_int(1, 9));
    for (int i = 0; i < n; ++i) {
      const auto lo = static_cast<geom::Coord>(rng.uniform_int(0, 12));
      const auto hi =
          static_cast<geom::Coord>(rng.uniform_int(lo, std::min(lo + 6, 14)));
      intervals.push_back({{lo, hi}, static_cast<double>(rng.uniform_int(1, 9))});
    }
    const int k = static_cast<int>(rng.uniform_int(1, 3));
    const auto subset = max_weight_k_colorable_subset(intervals, k);
    expect_proper(intervals, subset);

    // Brute force: best subset with max point-coverage <= k.
    double best = 0.0;
    for (int mask = 0; mask < (1 << n); ++mask) {
      int coverage[16] = {};
      double weight = 0.0;
      bool valid = true;
      for (int i = 0; i < n && valid; ++i) {
        if (!(mask & (1 << i))) continue;
        weight += intervals[static_cast<std::size_t>(i)].weight;
        for (geom::Coord p = intervals[static_cast<std::size_t>(i)].span.lo;
             p <= intervals[static_cast<std::size_t>(i)].span.hi; ++p)
          if (++coverage[p] > k) valid = false;
      }
      if (valid) best = std::max(best, weight);
    }
    EXPECT_DOUBLE_EQ(subset.total_weight, best) << "round " << round;
  }
}

}  // namespace
}  // namespace mebl::graph
