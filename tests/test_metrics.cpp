#include "eval/metrics.hpp"

#include <gtest/gtest.h>

namespace mebl::eval {
namespace {

using geom::Coord;
using geom::LayerId;

grid::RoutingGrid make_grid(Coord w = 60, Coord h = 60) {
  return grid::RoutingGrid(w, h, 3, 30, grid::StitchPlan(w, 15));
}

TEST(Metrics, EmptyGridHasNoViolations) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  EXPECT_EQ(count_short_polygons(grid), 0);
}

TEST(Metrics, CountsWirelengthAndVias) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  // A 5-node horizontal wire with a via stack at its left end.
  for (Coord x = 2; x <= 6; ++x) grid.claim({x, 5, 1}, 0);
  grid.claim({2, 5, 0}, 0);
  netlist::Netlist nl;
  nl.add_net("a");
  detail::DetailedResult outcome;
  const auto metrics = compute_metrics(grid, nl, {}, outcome);
  EXPECT_EQ(metrics.wirelength, 4);
  EXPECT_EQ(metrics.vias, 1);
  EXPECT_EQ(metrics.via_violations, 0);
  EXPECT_EQ(metrics.vertical_violations, 0);
}

TEST(Metrics, DetectsShortPolygon) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  // Horizontal wire from x=10..16 at y=5 on layer 1: cut by line 15, right
  // end (16) is within epsilon of the line, with a landing via.
  for (Coord x = 10; x <= 16; ++x) grid.claim({x, 5, 1}, 0);
  grid.claim({16, 5, 2}, 0);  // via to the vertical layer
  EXPECT_EQ(count_short_polygons(grid), 1);
}

TEST(Metrics, NoShortPolygonWithoutVia) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  for (Coord x = 10; x <= 16; ++x) grid.claim({x, 5, 1}, 0);
  EXPECT_EQ(count_short_polygons(grid), 0);
}

TEST(Metrics, NoShortPolygonWhenEndFarFromLine) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  // End at x=20 is 5 tracks past line 15: long piece, fine.
  for (Coord x = 10; x <= 20; ++x) grid.claim({x, 5, 1}, 0);
  grid.claim({20, 5, 2}, 0);
  EXPECT_EQ(count_short_polygons(grid), 0);
}

TEST(Metrics, NoShortPolygonWhenWireNotCut) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  // Wire entirely between lines: ends near nothing it crosses.
  for (Coord x = 16; x <= 20; ++x) grid.claim({x, 5, 1}, 0);
  grid.claim({16, 5, 2}, 0);
  grid.claim({20, 5, 2}, 0);
  EXPECT_EQ(count_short_polygons(grid), 0);
}

TEST(Metrics, LeftEndShortPolygon) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  // Wire 14..20 cut by 15: left piece one track, via at left end.
  for (Coord x = 14; x <= 20; ++x) grid.claim({x, 5, 1}, 0);
  grid.claim({14, 5, 0}, 0);
  EXPECT_EQ(count_short_polygons(grid), 1);
}

TEST(Metrics, ViaViolationOnStitchColumn) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  grid.claim({15, 5, 0}, 0);  // pin on a line
  grid.claim({15, 5, 1}, 0);  // via stack to layer 1
  netlist::Netlist nl;
  nl.add_net("a");
  const auto metrics = compute_metrics(grid, nl, {}, detail::DetailedResult{});
  EXPECT_EQ(metrics.via_violations, 1);
}

TEST(Metrics, VerticalViolationDetected) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  grid.claim({15, 5, 2}, 0);
  grid.claim({15, 6, 2}, 0);  // vertical wire ON the line (illegal geometry)
  netlist::Netlist nl;
  nl.add_net("a");
  const auto metrics = compute_metrics(grid, nl, {}, detail::DetailedResult{});
  EXPECT_EQ(metrics.vertical_violations, 1);
}

TEST(Metrics, RoutabilityCountsFullyRoutedNets) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  netlist::Netlist nl;
  const auto a = nl.add_net("a");
  const auto b = nl.add_net("b");
  const std::vector<netlist::Subnet> subnets{
      {a, {0, 0}, {1, 1}}, {b, {2, 2}, {3, 3}}, {b, {3, 3}, {4, 4}}};
  detail::DetailedResult outcome;
  outcome.subnet_routed = {true, true, false};  // net b partially failed
  const auto metrics = compute_metrics(grid, nl, subnets, outcome);
  EXPECT_EQ(metrics.routed_nets, 1);
  EXPECT_EQ(metrics.total_nets, 2);
  EXPECT_DOUBLE_EQ(metrics.routability_pct(), 50.0);
}

TEST(Metrics, AdjacentDifferentNetsDoNotCount) {
  const auto rg = make_grid();
  detail::GridGraph grid(rg);
  grid.claim({2, 5, 1}, 0);
  grid.claim({3, 5, 1}, 1);  // different net
  netlist::Netlist nl;
  nl.add_net("a");
  nl.add_net("b");
  const auto metrics = compute_metrics(grid, nl, {}, detail::DetailedResult{});
  EXPECT_EQ(metrics.wirelength, 0);
  EXPECT_EQ(metrics.vias, 0);
}

}  // namespace
}  // namespace mebl::eval
