#include "global/multilevel.hpp"

#include <gtest/gtest.h>

namespace mebl::global {
namespace {

TEST(Multilevel, NumLevelsCoversGrid) {
  EXPECT_EQ(MultilevelScheduler(1, 1).num_levels(), 1);
  EXPECT_EQ(MultilevelScheduler(2, 2).num_levels(), 2);
  EXPECT_EQ(MultilevelScheduler(3, 3).num_levels(), 3);   // 4x4 clusters
  EXPECT_EQ(MultilevelScheduler(16, 16).num_levels(), 5);
  EXPECT_EQ(MultilevelScheduler(17, 3).num_levels(), 6);  // max dimension rules
}

TEST(Multilevel, SingleTileBboxIsLevelZero) {
  const MultilevelScheduler s(8, 8);
  EXPECT_EQ(s.level_of({3, 3, 3, 3}), 0);
}

TEST(Multilevel, NeighborTilesAcrossClusterBoundary) {
  const MultilevelScheduler s(8, 8);
  // Tiles 3 and 4 are in different level-1 and level-2 clusters; they share
  // a level-3 cluster (size 8).
  EXPECT_EQ(s.level_of({3, 0, 4, 0}), 3);
  // Tiles 2 and 3 share the level-1 cluster [2,3].
  EXPECT_EQ(s.level_of({2, 0, 3, 0}), 1);
}

TEST(Multilevel, FullSpanIsTopLevel) {
  const MultilevelScheduler s(8, 8);
  EXPECT_EQ(s.level_of({0, 0, 7, 7}), 3);
}

TEST(Multilevel, ClusterRegionContainsBbox) {
  const MultilevelScheduler s(8, 8);
  const geom::Rect bbox{2, 5, 3, 6};
  for (int level = s.level_of(bbox); level < s.num_levels(); ++level) {
    const auto region = s.cluster_region(bbox, level);
    EXPECT_TRUE(region.contains(bbox)) << "level " << level;
    EXPECT_TRUE((geom::Rect{0, 0, 7, 7}).contains(region));
  }
}

TEST(Multilevel, ScheduleBucketsAreCompleteAndDisjoint) {
  const MultilevelScheduler s(8, 8);
  const std::vector<geom::Rect> bboxes{
      {0, 0, 0, 0}, {0, 0, 1, 1}, {0, 0, 7, 7}, {4, 4, 5, 5}, {3, 3, 4, 4}};
  const auto buckets = s.schedule(bboxes);
  std::size_t total = 0;
  std::vector<bool> seen(bboxes.size(), false);
  for (const auto& bucket : buckets) {
    for (const auto idx : bucket) {
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, bboxes.size());
  EXPECT_EQ(buckets[0].size(), 1u);  // only the single-tile bbox
}

TEST(Multilevel, LocalNetsComeBeforeGlobalNets) {
  const MultilevelScheduler s(16, 16);
  const geom::Rect local{5, 5, 5, 5};
  const geom::Rect global{0, 0, 15, 15};
  EXPECT_LT(s.level_of(local), s.level_of(global));
}

}  // namespace
}  // namespace mebl::global
