#include <gtest/gtest.h>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace mebl::geom {
namespace {

TEST(Point, ManhattanDistance) {
  EXPECT_EQ(manhattan(Point{0, 0}, Point{3, 4}), 7);
  EXPECT_EQ(manhattan(Point{3, 4}, Point{0, 0}), 7);
  EXPECT_EQ(manhattan(Point{-2, 5}, Point{2, -5}), 14);
  EXPECT_EQ(manhattan(Point{1, 1}, Point{1, 1}), 0);
}

TEST(Point, Manhattan3DCountsViaCost) {
  EXPECT_EQ(manhattan(Point3{0, 0, 0}, Point3{1, 1, 2}, 3), 1 + 1 + 6);
  EXPECT_EQ(manhattan(Point3{0, 0, 2}, Point3{0, 0, 0}, 5), 10);
}

TEST(Point, OrientationFlip) {
  EXPECT_EQ(flip(Orientation::kHorizontal), Orientation::kVertical);
  EXPECT_EQ(flip(Orientation::kVertical), Orientation::kHorizontal);
}

TEST(Point, HashDistinguishesCoordinates) {
  const std::hash<Point> h;
  EXPECT_NE(h(Point{1, 2}), h(Point{2, 1}));
}

TEST(Rect, EmptyByDefault) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.width(), 0);
  EXPECT_EQ(r.area(), 0);
}

TEST(Rect, BoundingOfTwoPoints) {
  const Rect r = Rect::bounding(Point{5, 1}, Point{2, 7});
  EXPECT_EQ(r, Rect(2, 1, 5, 7));
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 7);
}

TEST(Rect, ContainsPoint) {
  const Rect r{0, 0, 10, 5};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{10, 5}));
  EXPECT_FALSE(r.contains(Point{11, 5}));
  EXPECT_FALSE(r.contains(Point{-1, 0}));
}

TEST(Rect, OverlapsClosedSemantics) {
  EXPECT_TRUE(Rect(0, 0, 5, 5).overlaps(Rect(5, 5, 9, 9)));  // touch counts
  EXPECT_FALSE(Rect(0, 0, 5, 5).overlaps(Rect(6, 0, 9, 5)));
}

TEST(Rect, IntersectAndHull) {
  const Rect a{0, 0, 5, 5}, b{3, 2, 9, 9};
  EXPECT_EQ(a.intersect(b), Rect(3, 2, 5, 5));
  EXPECT_EQ(a.hull(b), Rect(0, 0, 9, 9));
  EXPECT_TRUE(a.intersect(Rect{7, 7, 9, 9}).empty());
}

TEST(Rect, HullWithEmptyIsIdentity) {
  const Rect a{1, 1, 2, 2};
  EXPECT_EQ(a.hull(Rect{}), a);
  EXPECT_EQ(Rect{}.hull(a), a);
}

TEST(Rect, InflatedGrowsEverySide) {
  EXPECT_EQ(Rect(2, 2, 4, 4).inflated(2), Rect(0, 0, 6, 6));
}

TEST(Rect, SpansMatchBounds) {
  const Rect r{1, 2, 7, 9};
  EXPECT_EQ(r.x_span(), (Interval{1, 7}));
  EXPECT_EQ(r.y_span(), (Interval{2, 9}));
}

}  // namespace
}  // namespace mebl::geom
