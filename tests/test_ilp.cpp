#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <vector>

#include "exec/thread_pool.hpp"
#include "ilp/branch_and_bound.hpp"
#include "ilp/solver.hpp"
#include "util/rng.hpp"

namespace mebl::ilp {
namespace {

/// Most tests exercise the Solver API through a throwaway instance; the
/// deprecated free-function shim keeps exactly one dedicated test below.
Solution solve_with(const Model& model, const SolveOptions& options = {}) {
  Solver solver;
  return solver.solve(model, options);
}

TEST(Ilp, EmptyModelIsOptimalZero) {
  Model model;
  const auto solution = solve_with(model);
  EXPECT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(solution.objective, 0.0);
}

TEST(Ilp, UnconstrainedMinimizationSetsPositiveCostVarsToZero) {
  Model model;
  model.add_binary(3.0);
  model.add_binary(-2.0);
  const auto solution = solve_with(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(solution.objective, -2.0);
  EXPECT_EQ(solution.values[0], 0);
  EXPECT_EQ(solution.values[1], 1);
}

TEST(Ilp, ChooseOnePicksCheapest) {
  Model model;
  const VarId a = model.add_binary(5.0);
  const VarId b = model.add_binary(2.0);
  const VarId c = model.add_binary(9.0);
  model.add_sum_constraint({a, b, c}, Sense::kEq, 1.0);
  const auto solution = solve_with(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(solution.objective, 2.0);
  EXPECT_EQ(solution.values[static_cast<std::size_t>(b)], 1);
}

TEST(Ilp, InfeasibleDetected) {
  Model model;
  const VarId a = model.add_binary(1.0);
  model.add_sum_constraint({a}, Sense::kGe, 2.0);  // impossible for binary
  const auto solution = solve_with(model);
  EXPECT_EQ(solution.status, SolveStatus::kInfeasible);
}

TEST(Ilp, ConflictingEqualities) {
  Model model;
  const VarId a = model.add_binary(1.0);
  model.add_sum_constraint({a}, Sense::kEq, 1.0);
  model.add_sum_constraint({a}, Sense::kEq, 0.0);
  EXPECT_EQ(solve_with(model).status, SolveStatus::kInfeasible);
}

TEST(Ilp, NegativeCoefficientConstraint) {
  // x - y >= 0 with objective min(x - 2y) forces x=1,y=1.
  Model model;
  const VarId x = model.add_binary(1.0);
  const VarId y = model.add_binary(-2.0);
  model.add_constraint({{x, 1.0}, {y, -1.0}}, Sense::kGe, 0.0);
  const auto solution = solve_with(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(solution.objective, -1.0);
  EXPECT_EQ(solution.values[static_cast<std::size_t>(x)], 1);
  EXPECT_EQ(solution.values[static_cast<std::size_t>(y)], 1);
}

TEST(Ilp, SetCoverSmall) {
  // Classic weighted set cover as ILP; optimum picks sets {0,2} (cost 4).
  Model model;
  const VarId s0 = model.add_binary(3.0);  // covers {a, b}
  const VarId s1 = model.add_binary(5.0);  // covers {a, b, c}
  const VarId s2 = model.add_binary(1.0);  // covers {c}
  model.add_sum_constraint({s0, s1}, Sense::kGe, 1.0);       // a
  model.add_sum_constraint({s0, s1}, Sense::kGe, 1.0);       // b
  model.add_sum_constraint({s1, s2}, Sense::kGe, 1.0);       // c
  const auto solution = solve_with(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(solution.objective, 4.0);
}

TEST(Ilp, WarmStartActsAsIncumbent) {
  Model model;
  const VarId a = model.add_binary(1.0);
  const VarId b = model.add_binary(2.0);
  model.add_sum_constraint({a, b}, Sense::kGe, 1.0);
  SolveOptions options;
  options.warm_start = std::vector<std::uint8_t>{1, 1};  // feasible, cost 3
  const auto solution = solve_with(model, options);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(solution.objective, 1.0);  // still finds the optimum
}

TEST(Ilp, NodeLimitReportsFeasibleOrLimit) {
  Model model;
  std::vector<VarId> vars;
  for (int i = 0; i < 30; ++i) vars.push_back(model.add_binary(1.0 + i % 3));
  for (int i = 0; i + 3 < 30; i += 2)
    model.add_sum_constraint({vars[static_cast<std::size_t>(i)],
                              vars[static_cast<std::size_t>(i + 1)],
                              vars[static_cast<std::size_t>(i + 3)]},
                             Sense::kGe, 1.0);
  SolveOptions options;
  options.max_nodes = 3;
  const auto solution = solve_with(model, options);
  EXPECT_TRUE(solution.status == SolveStatus::kFeasible ||
              solution.status == SolveStatus::kLimit ||
              solution.status == SolveStatus::kOptimal);
}

TEST(Ilp, MatchesBruteForceOnRandomModels) {
  util::Rng rng(123);
  for (int round = 0; round < 60; ++round) {
    Model model;
    const int n = static_cast<int>(rng.uniform_int(2, 10));
    for (int i = 0; i < n; ++i)
      model.add_binary(static_cast<double>(rng.uniform_int(-5, 9)));
    const int m = static_cast<int>(rng.uniform_int(1, 6));
    for (int c = 0; c < m; ++c) {
      std::vector<Term> terms;
      for (VarId v = 0; v < n; ++v)
        if (rng.chance(0.5))
          terms.push_back({v, static_cast<double>(rng.uniform_int(-2, 3))});
      if (terms.empty()) continue;
      const auto sense = static_cast<Sense>(rng.uniform_int(0, 2));
      model.add_constraint(std::move(terms), sense,
                           static_cast<double>(rng.uniform_int(-2, 4)));
    }

    // Brute force over all assignments.
    double best = std::numeric_limits<double>::infinity();
    for (int mask = 0; mask < (1 << n); ++mask) {
      std::vector<std::uint8_t> assignment(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        assignment[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((mask >> i) & 1);
      if (model.is_feasible(assignment))
        best = std::min(best, model.objective_value(assignment));
    }

    const auto solution = solve_with(model);
    if (best == std::numeric_limits<double>::infinity()) {
      EXPECT_EQ(solution.status, SolveStatus::kInfeasible) << "round " << round;
    } else {
      ASSERT_EQ(solution.status, SolveStatus::kOptimal) << "round " << round;
      EXPECT_NEAR(solution.objective, best, 1e-9) << "round " << round;
      EXPECT_TRUE(model.is_feasible(solution.values));
    }
  }
}

// ---------------------------------------------------------------- Solver API

/// A random model family dense enough that split solves actually branch.
Model random_model(util::Rng& rng, int n) {
  Model model;
  std::vector<VarId> vars;
  for (int i = 0; i < n; ++i)
    vars.push_back(model.add_binary(static_cast<double>(rng.uniform_int(1, 9))));
  for (int i = 0; i + 4 < n; i += 2)
    model.add_sum_constraint({vars[static_cast<std::size_t>(i)],
                              vars[static_cast<std::size_t>(i + 2)],
                              vars[static_cast<std::size_t>(i + 4)]},
                             Sense::kEq, 1.0);
  for (int i = 1; i + 3 < n; i += 3)
    model.add_sum_constraint({vars[static_cast<std::size_t>(i)],
                              vars[static_cast<std::size_t>(i + 3)]},
                             Sense::kLe, 1.0);
  return model;
}

TEST(IlpSolver, DeprecatedSolveShimMatchesSequentialSolver) {
  util::Rng rng(7);
  const Model model = random_model(rng, 18);
  SolveOptions sequential;
  sequential.split_target = 1;
  Solver solver;
  const Solution via_solver = solver.solve(model, sequential);
  const Solution via_shim = solve(model);  // deprecated free function
  EXPECT_EQ(via_shim.status, via_solver.status);
  EXPECT_DOUBLE_EQ(via_shim.objective, via_solver.objective);
  EXPECT_EQ(via_shim.values, via_solver.values);
  EXPECT_EQ(via_shim.nodes_explored, via_solver.nodes_explored);
}

TEST(IlpSolver, SplitSolveMatchesSequentialAtEveryPoolSize) {
  util::Rng rng(41);
  for (int round = 0; round < 8; ++round) {
    const Model model = random_model(rng, 16 + 2 * round);
    SolveOptions sequential;
    sequential.split_target = 1;
    const Solution expect = solve_with(model, sequential);

    for (const int threads : {0, 2, 8}) {
      SolveOptions split;
      split.split_target = 32;
      Solver solver;
      std::optional<exec::ThreadPool> pool;
      if (threads > 0) {
        pool.emplace(threads);
        solver.set_pool(&*pool);
      }
      const Solution got = solver.solve(model, split);
      EXPECT_EQ(got.status, expect.status) << "round " << round;
      if (!expect.values.empty()) {
        EXPECT_DOUBLE_EQ(got.objective, expect.objective) << "round " << round;
        EXPECT_EQ(got.values, expect.values)
            << "round " << round << " threads " << threads;
      }
    }
  }
}

TEST(IlpSolver, NodeBudgetIsDeterministicAcrossPoolSizes) {
  util::Rng rng(99);
  const Model model = random_model(rng, 26);
  SolveOptions options;
  options.node_budget = 60;  // small enough to truncate the search

  std::optional<Solution> reference;
  for (const int threads : {0, 2, 8}) {
    Solver solver;
    std::optional<exec::ThreadPool> pool;
    if (threads > 0) {
      pool.emplace(threads);
      solver.set_pool(&*pool);
    }
    const Solution got = solver.solve(model, options);
    if (!reference) {
      reference = got;
      continue;
    }
    EXPECT_EQ(got.status, reference->status) << "threads " << threads;
    EXPECT_EQ(got.values, reference->values) << "threads " << threads;
    EXPECT_EQ(got.nodes_explored, reference->nodes_explored)
        << "threads " << threads;
    EXPECT_EQ(got.limit_hit, reference->limit_hit) << "threads " << threads;
  }
}

TEST(IlpSolver, SolveWarmedReusesPreviousIncumbent) {
  util::Rng rng(55);
  const Model model = random_model(rng, 20);
  Solver solver;
  const Solution cold = solver.solve(model);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  const Solution warm = solver.solve_warmed(model);
  EXPECT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(warm.objective, cold.objective);
  EXPECT_TRUE(model.is_feasible(warm.values));
}

TEST(IlpSolver, LimitHitFlagSetOnTruncatedSearch) {
  util::Rng rng(31);
  const Model model = random_model(rng, 30);
  SolveOptions options;
  options.node_budget = 2;
  const Solution solution = solve_with(model, options);
  EXPECT_TRUE(solution.limit_hit);

  const Solution full = solve_with(model);
  EXPECT_FALSE(full.limit_hit);
}

}  // namespace
}  // namespace mebl::ilp
