#include <gtest/gtest.h>

#include <map>

#include "assign/track_assign.hpp"
#include "util/rng.hpp"

namespace mebl::assign {
namespace {

using geom::Coord;
using geom::Interval;

TrackAssignInstance make_instance(const grid::StitchPlan& stitch,
                                  Interval x_span,
                                  std::vector<TrackSegment> segments) {
  TrackAssignInstance instance;
  instance.x_span = x_span;
  instance.stitch = &stitch;
  instance.segments = std::move(segments);
  return instance;
}

void expect_valid(const TrackAssignInstance& instance,
                  const TrackAssignResult& result) {
  ASSERT_EQ(result.tracks.size(), instance.segments.size());
  std::map<std::pair<Coord, Coord>, std::size_t> occupancy;
  for (std::size_t i = 0; i < instance.segments.size(); ++i) {
    const auto& seg = instance.segments[i];
    const auto& track = result.tracks[i];
    ASSERT_FALSE(track.ripped);  // the ILP always assigns when it solves
    Coord expect_row = seg.rows.lo;
    for (const auto& [rows, x] : track.pieces) {
      EXPECT_EQ(rows.lo, expect_row);
      expect_row = rows.hi + 1;
      EXPECT_FALSE(instance.stitch->is_stitch_column(x));
      for (Coord r = rows.lo; r <= rows.hi; ++r)
        EXPECT_TRUE(occupancy.insert({{r, x}, i}).second)
            << "vertex conflict at row " << r << " track " << x;
    }
    EXPECT_EQ(expect_row, seg.rows.hi + 1);
  }
}

TEST(TrackAssignIlp, SingleSegmentStraightTrack) {
  const grid::StitchPlan stitch(60, 15, 1);
  auto instance = make_instance(stitch, {0, 13}, {{0, {0, 4}, 0, 0, 0}});
  const auto result = track_assign_ilp(instance);
  ASSERT_TRUE(result.solved);
  EXPECT_TRUE(result.optimal);
  expect_valid(instance, result);
  EXPECT_EQ(result.tracks[0].pieces.size(), 1u);  // no dogleg needed
  EXPECT_EQ(result.total_bad_ends, 0);
}

TEST(TrackAssignIlp, AvoidsBadEndViaTrackChoice) {
  const grid::StitchPlan stitch(60, 15, 1);
  auto instance = make_instance(stitch, {16, 20}, {{0, {0, 4}, -1, 0, 0}});
  const auto result = track_assign_ilp(instance);
  ASSERT_TRUE(result.solved);
  expect_valid(instance, result);
  EXPECT_EQ(result.total_bad_ends, 0);
  EXPECT_GE(result.tracks[0].pieces.front().second, 17);
}

TEST(TrackAssignIlp, UsesDoglegWhenStraightTrackImpossible) {
  const grid::StitchPlan stitch(60, 15, 1);
  // Both segments must avoid the unfriendly track 16 at their low ends
  // (rows 0 and 3), but only track 17 is safe and they overlap at rows 3-5:
  // the only zero-bad-end solution doglegs segment 0 from 17 onto 16.
  auto instance = make_instance(
      stitch, {16, 17}, {{0, {0, 5}, -1, 0, 0}, {1, {3, 5}, -1, 0, 1}});
  const auto result = track_assign_ilp(instance);
  ASSERT_TRUE(result.solved);
  expect_valid(instance, result);
  EXPECT_EQ(result.total_bad_ends, 0);
  EXPECT_GE(result.tracks[0].pieces.size(), 2u);  // dogleg happened
  EXPECT_EQ(result.tracks[0].pieces.front().second, 17);
  EXPECT_EQ(result.tracks[1].pieces.front().second, 17);
}

TEST(TrackAssignIlp, PenalizedBadEndWhenUnavoidable) {
  const grid::StitchPlan stitch(60, 15, 1);
  auto instance = make_instance(stitch, {16, 16}, {{0, {0, 3}, -1, 0, 0}});
  const auto result = track_assign_ilp(instance);
  ASSERT_TRUE(result.solved);
  expect_valid(instance, result);
  EXPECT_EQ(result.total_bad_ends, 1);
}

TEST(TrackAssignIlp, SkipsForbiddenStitchColumns) {
  const grid::StitchPlan stitch(60, 15, 1);
  auto instance = make_instance(
      stitch, {14, 16}, {{0, {0, 3}, 0, 0, 0}, {1, {0, 3}, 0, 0, 1}});
  const auto result = track_assign_ilp(instance);
  ASSERT_TRUE(result.solved);
  expect_valid(instance, result);  // only tracks 14 and 16 usable
}

TEST(TrackAssignIlp, MinimizesDoglegLength) {
  const grid::StitchPlan stitch(60, 15, 1);
  // Nothing forces a dogleg: the optimal solution is straight (weight 0).
  auto instance = make_instance(
      stitch, {0, 13},
      {{0, {0, 3}, 0, 0, 0}, {1, {2, 5}, 0, 0, 1}, {2, {4, 8}, 0, 0, 2}});
  const auto result = track_assign_ilp(instance);
  ASSERT_TRUE(result.solved);
  expect_valid(instance, result);
  for (const auto& track : result.tracks)
    EXPECT_EQ(track.pieces.size(), 1u);
}

TEST(TrackAssignIlp, InfeasibleDensityReportsUnsolved) {
  const grid::StitchPlan stitch(60, 15, 1);
  std::vector<TrackSegment> segments;
  for (int i = 0; i < 3; ++i)  // 3 overlapping segments on 2 tracks
    segments.push_back({static_cast<std::size_t>(i), {0, 4}, 0, 0,
                        static_cast<netlist::NetId>(i)});
  auto instance = make_instance(stitch, {17, 18}, std::move(segments));
  const auto result = track_assign_ilp(instance);
  EXPECT_FALSE(result.solved);
}

TEST(TrackAssignIlp, AgreesWithGraphHeuristicFeasibilityOnRandom) {
  const grid::StitchPlan stitch(90, 15, 1);
  util::Rng rng(321);
  for (int round = 0; round < 12; ++round) {
    std::vector<TrackSegment> segments;
    const int n = static_cast<int>(rng.uniform_int(2, 6));
    for (int i = 0; i < n; ++i) {
      const auto lo = static_cast<Coord>(rng.uniform_int(0, 4));
      const auto hi = static_cast<Coord>(rng.uniform_int(lo, 6));
      segments.push_back({static_cast<std::size_t>(i), {lo, hi},
                          static_cast<int>(rng.uniform_int(-1, 1)),
                          static_cast<int>(rng.uniform_int(-1, 1)),
                          static_cast<netlist::NetId>(i)});
    }
    auto instance = make_instance(stitch, {30, 44}, std::move(segments));
    const auto ilp = track_assign_ilp(instance);
    ASSERT_TRUE(ilp.solved) << "round " << round;
    expect_valid(instance, ilp);
    // The exact ILP never has more bad ends than the heuristic.
    const auto graph = track_assign_graph(instance);
    if (graph.total_ripped == 0) {
      EXPECT_LE(ilp.total_bad_ends, graph.total_bad_ends) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace mebl::assign
