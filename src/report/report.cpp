#include "report/report.hpp"

#include <fstream>
#include <utility>

#include "eval/congestion.hpp"
#include "eval/yield.hpp"
#include "netlist/decompose.hpp"
#include "report/spatial.hpp"
#include "telemetry/keys.hpp"

namespace mebl::report {

namespace {

/// Counters serialize with zero values omitted, so a report's counter set
/// does not depend on which unrelated counters other runs in the same
/// process happened to register. Execution-dependent counters (wall-clock
/// *_ns timings, per-worker scratch reuses — see telemetry::keys) drop out
/// of the canonical (include_timing = false) form: they vary with the
/// thread count, which would break canonical cross-thread byte-identity.
Json counters_to_json(const telemetry::StatsSnapshot& stats,
                      bool include_timing) {
  Json out = Json::object();
  for (const auto& [name, value] : stats.counters) {
    if (value == 0) continue;
    if (!include_timing && telemetry::keys::execution_dependent(name)) continue;
    out[name] = value;
  }
  return out;
}

telemetry::StatsSnapshot counters_from_json(const Json* json) {
  telemetry::StatsSnapshot stats;
  if (json == nullptr || json->kind() != Json::Kind::kObject) return stats;
  // Json objects iterate name-sorted, the order StatsSnapshot::value needs.
  for (const auto& [name, value] : json->members())
    stats.counters.emplace_back(name, value.as_int());
  return stats;
}

std::int64_t get_int(const Json& json, std::string_view key) {
  const Json* value = json.get(key);
  return value != nullptr && value->is_number() ? value->as_int() : 0;
}

double get_double(const Json& json, std::string_view key) {
  const Json* value = json.get(key);
  return value != nullptr && value->is_number() ? value->as_double() : 0.0;
}

bool get_bool(const Json& json, std::string_view key) {
  const Json* value = json.get(key);
  return value != nullptr && value->kind() == Json::Kind::kBool &&
         value->as_bool();
}

std::string get_string(const Json& json, std::string_view key) {
  const Json* value = json.get(key);
  return value != nullptr && value->kind() == Json::Kind::kString
             ? value->as_string()
             : std::string();
}

}  // namespace

Json to_json(const RunReport& report, const WriteOptions& options) {
  Json root = Json::object();
  root["schema"] = kRunReportSchema;
  root["version"] = report.version;

  Json& design = root["design"];
  design["width"] = static_cast<std::int64_t>(report.design.width);
  design["height"] = static_cast<std::int64_t>(report.design.height);
  design["routing_layers"] = report.design.routing_layers;
  design["tile_size"] = static_cast<std::int64_t>(report.design.tile_size);
  design["tiles_x"] = report.design.tiles_x;
  design["tiles_y"] = report.design.tiles_y;
  design["nets"] = report.design.nets;
  design["pins"] = report.design.pins;
  design["stitch_lines"] = report.design.stitch_lines;

  Json stages = Json::array();
  for (const StageRecord& stage : report.stages) {
    Json entry = Json::object();
    entry["name"] = stage.name;
    if (options.include_timing) entry["seconds"] = stage.seconds;
    entry["counters"] = counters_to_json(stage.counters, options.include_timing);
    stages.push_back(std::move(entry));
  }
  root["stages"] = std::move(stages);

  Json& quality = root["quality"];
  quality["routability_pct"] = report.metrics.routability_pct();
  quality["routed_nets"] = report.metrics.routed_nets;
  quality["total_nets"] = report.metrics.total_nets;
  quality["wirelength"] = report.metrics.wirelength;
  quality["vias"] = report.metrics.vias;
  quality["via_violations"] = report.metrics.via_violations;
  quality["vertical_violations"] = report.metrics.vertical_violations;
  quality["short_polygons"] = report.metrics.short_polygons;
  Json& global = quality["global"];
  global["wirelength"] = report.global.wirelength;
  global["total_vertex_overflow"] = report.global.total_vertex_overflow;
  global["max_vertex_overflow"] = report.global.max_vertex_overflow;
  global["total_edge_overflow"] = report.global.total_edge_overflow;
  Json& yield = quality["yield"];
  yield["expected_defects"] = report.yield.expected_defects;
  yield["yield"] = report.yield.yield;

  Json& heatmaps = root["heatmaps"];
  Json& congestion = heatmaps["congestion"];
  congestion["tiles_x"] = report.congestion.tiles_x;
  congestion["tiles_y"] = report.congestion.tiles_y;
  congestion["horizontal_peak"] = report.congestion.horizontal_peak;
  congestion["horizontal_mean"] = report.congestion.horizontal_mean;
  congestion["vertical_peak"] = report.congestion.vertical_peak;
  congestion["vertical_mean"] = report.congestion.vertical_mean;
  congestion["escape_peak"] = report.congestion.escape_peak;
  Json& via_density = heatmaps["via_density"];
  via_density["tiles_x"] = report.via_density.tiles_x;
  via_density["tiles_y"] = report.via_density.tiles_y;
  via_density["vias"] = report.via_density.vias;
  via_density["unfriendly_vias"] = report.via_density.unfriendly_vias;
  via_density["peak_tile_vias"] = report.via_density.peak_tile_vias;

  Json nets = Json::array();
  for (const NetAudit& audit : report.nets) {
    Json entry = Json::object();
    entry["net"] = static_cast<std::int64_t>(audit.net);
    entry["name"] = audit.name;
    entry["routed"] = audit.routed;
    entry["stitch_crossings"] = audit.stitch_crossings;
    entry["bad_ends"] = audit.bad_ends;
    entry["ripped_runs"] = audit.ripped_runs;
    entry["via_violations"] = audit.via_violations;
    entry["escape_nodes"] = audit.escape_nodes;
    nets.push_back(std::move(entry));
  }
  root["nets"] = std::move(nets);

  root["counters"] = counters_to_json(report.counters, options.include_timing);
  root["ilp_budget_exceeded"] = report.ilp_budget_exceeded;
  root["cancelled"] = report.cancelled;
  if (report.cancelled)
    root["cancel_reason"] = exec::stop_reason_name(report.cancel_reason);
  if (options.include_timing)
    root["timing"]["total_seconds"] = report.total_seconds;
  return root;
}

std::string serialize(const RunReport& report, const WriteOptions& options) {
  return to_json(report, options).dump();
}

std::optional<RunReport> parse_run_report(const Json& json) {
  if (get_string(json, "schema") != kRunReportSchema) return std::nullopt;
  if (get_int(json, "version") != kSchemaVersion) return std::nullopt;

  RunReport report;
  report.version = static_cast<int>(get_int(json, "version"));

  if (const Json* design = json.get("design")) {
    report.design.width = static_cast<geom::Coord>(get_int(*design, "width"));
    report.design.height = static_cast<geom::Coord>(get_int(*design, "height"));
    report.design.routing_layers =
        static_cast<int>(get_int(*design, "routing_layers"));
    report.design.tile_size =
        static_cast<geom::Coord>(get_int(*design, "tile_size"));
    report.design.tiles_x = static_cast<int>(get_int(*design, "tiles_x"));
    report.design.tiles_y = static_cast<int>(get_int(*design, "tiles_y"));
    report.design.nets = get_int(*design, "nets");
    report.design.pins = get_int(*design, "pins");
    report.design.stitch_lines = get_int(*design, "stitch_lines");
  }

  if (const Json* stages = json.get("stages");
      stages != nullptr && stages->kind() == Json::Kind::kArray) {
    for (const Json& entry : stages->items()) {
      StageRecord stage;
      stage.name = get_string(entry, "name");
      stage.seconds = get_double(entry, "seconds");
      stage.counters = counters_from_json(entry.get("counters"));
      report.stages.push_back(std::move(stage));
    }
  }

  if (const Json* quality = json.get("quality")) {
    report.metrics.routed_nets =
        static_cast<int>(get_int(*quality, "routed_nets"));
    report.metrics.total_nets =
        static_cast<int>(get_int(*quality, "total_nets"));
    report.metrics.wirelength = get_int(*quality, "wirelength");
    report.metrics.vias = static_cast<int>(get_int(*quality, "vias"));
    report.metrics.via_violations =
        static_cast<int>(get_int(*quality, "via_violations"));
    report.metrics.vertical_violations =
        static_cast<int>(get_int(*quality, "vertical_violations"));
    report.metrics.short_polygons =
        static_cast<int>(get_int(*quality, "short_polygons"));
    if (const Json* global = quality->get("global")) {
      report.global.wirelength = get_int(*global, "wirelength");
      report.global.total_vertex_overflow =
          static_cast<int>(get_int(*global, "total_vertex_overflow"));
      report.global.max_vertex_overflow =
          static_cast<int>(get_int(*global, "max_vertex_overflow"));
      report.global.total_edge_overflow =
          static_cast<int>(get_int(*global, "total_edge_overflow"));
    }
    if (const Json* yield = quality->get("yield")) {
      report.yield.expected_defects = get_double(*yield, "expected_defects");
      report.yield.yield = get_double(*yield, "yield");
    }
  }

  if (const Json* heatmaps = json.get("heatmaps")) {
    if (const Json* congestion = heatmaps->get("congestion")) {
      report.congestion.tiles_x =
          static_cast<int>(get_int(*congestion, "tiles_x"));
      report.congestion.tiles_y =
          static_cast<int>(get_int(*congestion, "tiles_y"));
      report.congestion.horizontal_peak =
          get_double(*congestion, "horizontal_peak");
      report.congestion.horizontal_mean =
          get_double(*congestion, "horizontal_mean");
      report.congestion.vertical_peak =
          get_double(*congestion, "vertical_peak");
      report.congestion.vertical_mean =
          get_double(*congestion, "vertical_mean");
      report.congestion.escape_peak = get_double(*congestion, "escape_peak");
    }
    if (const Json* via_density = heatmaps->get("via_density")) {
      report.via_density.tiles_x =
          static_cast<int>(get_int(*via_density, "tiles_x"));
      report.via_density.tiles_y =
          static_cast<int>(get_int(*via_density, "tiles_y"));
      report.via_density.vias = get_int(*via_density, "vias");
      report.via_density.unfriendly_vias =
          get_int(*via_density, "unfriendly_vias");
      report.via_density.peak_tile_vias =
          get_int(*via_density, "peak_tile_vias");
    }
  }

  if (const Json* nets = json.get("nets");
      nets != nullptr && nets->kind() == Json::Kind::kArray) {
    for (const Json& entry : nets->items()) {
      NetAudit audit;
      audit.net = static_cast<netlist::NetId>(get_int(entry, "net"));
      audit.name = get_string(entry, "name");
      audit.routed = get_bool(entry, "routed");
      audit.stitch_crossings = get_int(entry, "stitch_crossings");
      audit.bad_ends = static_cast<int>(get_int(entry, "bad_ends"));
      audit.ripped_runs = static_cast<int>(get_int(entry, "ripped_runs"));
      audit.via_violations =
          static_cast<int>(get_int(entry, "via_violations"));
      audit.escape_nodes = get_int(entry, "escape_nodes");
      report.nets.push_back(std::move(audit));
    }
  }

  report.counters = counters_from_json(json.get("counters"));
  report.ilp_budget_exceeded = get_bool(json, "ilp_budget_exceeded");
  report.cancelled = get_bool(json, "cancelled");
  if (const std::string reason = get_string(json, "cancel_reason");
      reason == "deadline")
    report.cancel_reason = exec::StopReason::kDeadline;
  else if (reason == "user")
    report.cancel_reason = exec::StopReason::kUser;
  if (const Json* timing = json.get("timing"))
    report.total_seconds = get_double(*timing, "total_seconds");
  return report;
}

std::optional<RunReport> parse_run_report_text(std::string_view text) {
  const std::optional<Json> json = Json::parse(text);
  if (!json.has_value()) return std::nullopt;
  return parse_run_report(*json);
}

bool write_report_file(const RunReport& report, const std::string& path,
                       const WriteOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize(report, options);
  return out.good();
}

RunReport build_run_report(const core::RoutingResult& result,
                           const grid::RoutingGrid& grid,
                           const netlist::Netlist& netlist,
                           std::vector<StageRecord> stages) {
  RunReport report;
  report.design.width = grid.width();
  report.design.height = grid.height();
  report.design.routing_layers = grid.num_routing_layers();
  report.design.tile_size = grid.tile_size();
  report.design.tiles_x = grid.tiles_x();
  report.design.tiles_y = grid.tiles_y();
  report.design.nets = static_cast<std::int64_t>(netlist.num_nets());
  report.design.pins = static_cast<std::int64_t>(netlist.num_pins());
  report.design.stitch_lines =
      static_cast<std::int64_t>(grid.stitch().lines().size());

  if (stages.empty()) {
    // No observer recorded stage boundaries; fall back to the StageTimes
    // breakdown with whole-run counters only.
    report.stages.push_back({"global", result.times.global_seconds, {}});
    report.stages.push_back({"layer_assign", result.times.layer_seconds, {}});
    report.stages.push_back({"track_assign", result.times.track_seconds, {}});
    report.stages.push_back({"detail", result.times.detail_seconds, {}});
  } else {
    report.stages = std::move(stages);
  }
  report.total_seconds = 0.0;
  for (const StageRecord& stage : report.stages)
    report.total_seconds += stage.seconds;

  report.metrics = result.metrics;
  report.global.wirelength = result.global.wirelength;
  report.global.total_vertex_overflow = result.global.total_vertex_overflow;
  report.global.max_vertex_overflow = result.global.max_vertex_overflow;
  report.global.total_edge_overflow = result.global.total_edge_overflow;
  report.counters = result.stats();
  report.ilp_budget_exceeded = result.ilp_budget_exceeded;
  report.cancelled = result.cancelled;
  report.cancel_reason = result.stop_reason;

  if (result.grid != nullptr) {
    const eval::CongestionMap congestion =
        eval::measure_congestion(*result.grid);
    report.congestion.tiles_x = congestion.tiles_x;
    report.congestion.tiles_y = congestion.tiles_y;
    report.congestion.horizontal_mean = 0.0;
    double h_total = 0.0, v_total = 0.0;
    for (const double v : congestion.horizontal) {
      report.congestion.horizontal_peak =
          std::max(report.congestion.horizontal_peak, v);
      h_total += v;
    }
    for (const double v : congestion.vertical) {
      report.congestion.vertical_peak =
          std::max(report.congestion.vertical_peak, v);
      v_total += v;
    }
    for (const double v : congestion.escape_use)
      report.congestion.escape_peak =
          std::max(report.congestion.escape_peak, v);
    if (!congestion.horizontal.empty()) {
      report.congestion.horizontal_mean =
          h_total / static_cast<double>(congestion.horizontal.size());
      report.congestion.vertical_mean =
          v_total / static_cast<double>(congestion.vertical.size());
    }

    report.via_density = measure_via_density(*result.grid).summary();

    const eval::YieldReport yield = eval::estimate_yield(*result.grid);
    report.yield.expected_defects = yield.expected_defects;
    report.yield.yield = yield.yield;

    report.nets =
        collect_net_audits(*result.grid, netlist, result.plan,
                           netlist::decompose_all(netlist), result.detail);
  }
  return report;
}

void RunReportBuilder::on_stage_begin(core::Stage /*stage*/) {
  stage_begin_ = telemetry::snapshot_counters();
}

void RunReportBuilder::on_stage_end(core::Stage stage, double seconds) {
  StageRecord record;
  record.name = core::stage_name(stage);
  record.seconds = seconds;
  record.counters =
      telemetry::delta(stage_begin_, telemetry::snapshot_counters());
  stages_.push_back(std::move(record));
}

RunReport RunReportBuilder::build(const core::RoutingResult& result,
                                  const grid::RoutingGrid& grid,
                                  const netlist::Netlist& netlist) const {
  return build_run_report(result, grid, netlist, stages_);
}

// ------------------------------------------------------- bench artifacts

QualitySummary QualitySummary::from(const core::RoutingResult& result,
                                    double seconds) {
  QualitySummary summary;
  summary.routability_pct = result.metrics.routability_pct();
  summary.routed_nets = result.metrics.routed_nets;
  summary.total_nets = result.metrics.total_nets;
  summary.wirelength = result.metrics.wirelength;
  summary.vias = result.metrics.vias;
  summary.via_violations = result.metrics.via_violations;
  summary.vertical_violations = result.metrics.vertical_violations;
  summary.short_polygons = result.metrics.short_polygons;
  summary.seconds = seconds;
  return summary;
}

Json::Object QualitySummary::to_metrics() const {
  Json::Object metrics;
  metrics["routability_pct"] = routability_pct;
  metrics["routed_nets"] = routed_nets;
  metrics["total_nets"] = total_nets;
  metrics["wirelength"] = wirelength;
  metrics["vias"] = vias;
  metrics["via_violations"] = via_violations;
  metrics["vertical_violations"] = vertical_violations;
  metrics["short_polygons"] = short_polygons;
  metrics["seconds"] = seconds;
  return metrics;
}

Json BenchReport::to_json() const {
  Json root = Json::object();
  root["schema"] = kBenchReportSchema;
  root["version"] = kSchemaVersion;
  root["bench"] = bench;
  Json out_rows = Json::array();
  for (const BenchRow& row : rows) {
    Json entry = Json::object();
    entry["circuit"] = row.circuit;
    entry["variant"] = row.variant;
    entry["metrics"] = Json(row.metrics);
    out_rows.push_back(std::move(entry));
  }
  root["rows"] = std::move(out_rows);
  return root;
}

std::string BenchReport::serialize() const { return to_json().dump(); }

std::optional<BenchReport> BenchReport::parse(const Json& json) {
  if (get_string(json, "schema") != kBenchReportSchema) return std::nullopt;
  if (get_int(json, "version") != kSchemaVersion) return std::nullopt;
  BenchReport report;
  report.bench = get_string(json, "bench");
  const Json* rows = json.get("rows");
  if (rows == nullptr || rows->kind() != Json::Kind::kArray)
    return std::nullopt;
  for (const Json& entry : rows->items()) {
    BenchRow row;
    row.circuit = get_string(entry, "circuit");
    row.variant = get_string(entry, "variant");
    if (const Json* metrics = entry.get("metrics");
        metrics != nullptr && metrics->kind() == Json::Kind::kObject)
      row.metrics = metrics->members();
    report.rows.push_back(std::move(row));
  }
  return report;
}

bool BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize();
  return out.good();
}

}  // namespace mebl::report
