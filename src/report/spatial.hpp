#pragma once

// Spatial observability for routed designs: via-density maps over the
// stitch unfriendly regions, per-net stitch-hazard audits, and the CSV/SVG
// heatmap exports behind `mebl_route_cli --heatmap DIR`. Complements
// eval::CongestionMap (gcell utilization) with the stitch-specific views
// the run reports summarize.

#include <string>
#include <vector>

#include "eval/congestion.hpp"
#include "report/report.hpp"

namespace mebl::report {

/// Per-GCell via counts: all vias per tile, and the subset landing inside a
/// stitch unfriendly region (distance to a line <= epsilon) — where the
/// paper's via violations and short polygons concentrate.
struct ViaDensityMap {
  int tiles_x = 0;
  int tiles_y = 0;
  std::vector<std::int64_t> vias;             ///< row-major tiles_x * tiles_y
  std::vector<std::int64_t> unfriendly_vias;  ///< vias with |x - line| <= eps

  [[nodiscard]] std::int64_t vias_at(int tx, int ty) const {
    return vias[static_cast<std::size_t>(ty) * tiles_x + tx];
  }
  [[nodiscard]] std::int64_t unfriendly_at(int tx, int ty) const {
    return unfriendly_vias[static_cast<std::size_t>(ty) * tiles_x + tx];
  }

  [[nodiscard]] ViaDensitySummary summary() const;
};

[[nodiscard]] ViaDensityMap measure_via_density(const detail::GridGraph& grid);

/// One audit record per net (index = NetId), from the routed occupancy grid
/// and the track-assignment plan. `subnets` / `outcome` give per-net routed
/// status (pass the decomposition the router used; decompose_all is
/// deterministic, so recomputing it yields the same vector).
[[nodiscard]] std::vector<NetAudit> collect_net_audits(
    const detail::GridGraph& grid, const netlist::Netlist& netlist,
    const assign::RoutePlan& plan,
    const std::vector<netlist::Subnet>& subnets,
    const detail::DetailedResult& outcome);

/// Row-major CSV of one tile-indexed channel (one row per tile row, top row
/// = highest y, matching the ASCII/SVG heatmap orientation).
[[nodiscard]] std::string csv_heatmap(int tiles_x, int tiles_y,
                                      const std::vector<double>& values);
[[nodiscard]] std::string csv_heatmap(int tiles_x, int tiles_y,
                                      const std::vector<std::int64_t>& values);

/// The routed layout (eval::render_svg) with translucent per-tile heat
/// rectangles for the unfriendly-via density layered on top — the "where do
/// stitch hazards concentrate" picture.
[[nodiscard]] std::string svg_via_overlay(const detail::GridGraph& grid,
                                          const ViaDensityMap& map,
                                          double pixels_per_track = 2.0);

/// Write the full heatmap set into `dir` (created if missing):
/// congestion_{horizontal,vertical}.{csv,svg}, escape_use.csv,
/// via_density.csv, unfriendly_vias.csv, via_overlay.svg.
/// Returns false on any I/O failure.
bool write_heatmap_dir(const std::string& dir, const detail::GridGraph& grid);

}  // namespace mebl::report
