#include "report/spatial.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "eval/svg_writer.hpp"

namespace mebl::report {

using geom::Coord;
using geom::LayerId;
using geom::Orientation;
using netlist::NetId;

ViaDensitySummary ViaDensityMap::summary() const {
  ViaDensitySummary out;
  out.tiles_x = tiles_x;
  out.tiles_y = tiles_y;
  for (const std::int64_t v : vias) {
    out.vias += v;
    out.peak_tile_vias = std::max(out.peak_tile_vias, v);
  }
  for (const std::int64_t v : unfriendly_vias) out.unfriendly_vias += v;
  return out;
}

ViaDensityMap measure_via_density(const detail::GridGraph& grid) {
  const auto& rg = grid.routing_grid();
  const auto& stitch = rg.stitch();
  ViaDensityMap map;
  map.tiles_x = rg.tiles_x();
  map.tiles_y = rg.tiles_y();
  const std::size_t tiles =
      static_cast<std::size_t>(map.tiles_x) * map.tiles_y;
  map.vias.assign(tiles, 0);
  map.unfriendly_vias.assign(tiles, 0);

  // A via is a same-net adjacency across a layer boundary, counted once
  // toward the layer above (the eval::compute_metrics convention).
  for (LayerId layer = 0; layer + 1 < rg.num_layers(); ++layer) {
    for (Coord y = 0; y < rg.height(); ++y) {
      for (Coord x = 0; x < rg.width(); ++x) {
        const NetId net = grid.owner({x, y, layer});
        if (net == -1 ||
            grid.owner({x, y, static_cast<LayerId>(layer + 1)}) != net)
          continue;
        const std::size_t t =
            static_cast<std::size_t>(rg.tile_of_y(y)) * map.tiles_x +
            rg.tile_of_x(x);
        ++map.vias[t];
        if (stitch.in_unfriendly_region(x)) ++map.unfriendly_vias[t];
      }
    }
  }
  return map;
}

std::vector<NetAudit> collect_net_audits(
    const detail::GridGraph& grid, const netlist::Netlist& netlist,
    const assign::RoutePlan& plan,
    const std::vector<netlist::Subnet>& subnets,
    const detail::DetailedResult& outcome) {
  const auto& rg = grid.routing_grid();
  const auto& stitch = rg.stitch();
  std::vector<NetAudit> audits(netlist.num_nets());
  for (std::size_t i = 0; i < audits.size(); ++i) {
    audits[i].net = static_cast<NetId>(i);
    audits[i].name = netlist.net(static_cast<NetId>(i)).name;
  }

  for (std::size_t i = 0; i < subnets.size(); ++i)
    if (i < outcome.subnet_routed.size() && !outcome.subnet_routed[i])
      audits[static_cast<std::size_t>(subnets[i].net)].routed = false;

  for (const assign::GlobalRun& run : plan.runs) {
    if (run.net < 0) continue;
    NetAudit& audit = audits[static_cast<std::size_t>(run.net)];
    audit.bad_ends += run.bad_ends;
    if (run.ripped) ++audit.ripped_runs;
  }

  for (LayerId layer = 1; layer < rg.num_layers(); ++layer) {
    const bool horizontal = rg.layer_dir(layer) == Orientation::kHorizontal;
    for (Coord y = 0; y < rg.height(); ++y) {
      for (Coord x = 0; x < rg.width(); ++x) {
        const NetId net = grid.owner({x, y, layer});
        if (net == -1) continue;
        NetAudit& audit = audits[static_cast<std::size_t>(net)];
        // A horizontal wire crossing a line occupies the line column.
        if (horizontal && stitch.is_stitch_column(x)) ++audit.stitch_crossings;
        if (!horizontal && stitch.in_escape_region(x)) ++audit.escape_nodes;
      }
    }
  }

  // Vias toward the layer above, on line columns (via violations per net).
  for (LayerId layer = 0; layer + 1 < rg.num_layers(); ++layer) {
    for (Coord y = 0; y < rg.height(); ++y) {
      for (Coord x = 0; x < rg.width(); ++x) {
        if (!stitch.is_stitch_column(x)) continue;
        const NetId net = grid.owner({x, y, layer});
        if (net != -1 &&
            grid.owner({x, y, static_cast<LayerId>(layer + 1)}) == net)
          ++audits[static_cast<std::size_t>(net)].via_violations;
      }
    }
  }
  return audits;
}

namespace {

template <typename T, typename Format>
std::string csv_grid(int tiles_x, int tiles_y, const std::vector<T>& values,
                     Format format) {
  std::ostringstream out;
  for (int ty = tiles_y - 1; ty >= 0; --ty) {  // y grows upward
    for (int tx = 0; tx < tiles_x; ++tx) {
      if (tx > 0) out << ',';
      format(out, values[static_cast<std::size_t>(ty) * tiles_x + tx]);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace

std::string csv_heatmap(int tiles_x, int tiles_y,
                        const std::vector<double>& values) {
  return csv_grid(tiles_x, tiles_y, values, [](std::ostream& out, double v) {
    out << format_double(v);
  });
}

std::string csv_heatmap(int tiles_x, int tiles_y,
                        const std::vector<std::int64_t>& values) {
  return csv_grid(tiles_x, tiles_y, values,
                  [](std::ostream& out, std::int64_t v) { out << v; });
}

std::string svg_via_overlay(const detail::GridGraph& grid,
                            const ViaDensityMap& map,
                            double pixels_per_track) {
  const auto& rg = grid.routing_grid();
  eval::SvgOptions options;
  options.pixels_per_track = pixels_per_track;
  std::string svg = eval::render_svg(grid, options);

  std::int64_t peak = 1;
  for (const std::int64_t v : map.unfriendly_vias) peak = std::max(peak, v);

  std::ostringstream overlay;
  for (int ty = 0; ty < map.tiles_y; ++ty) {
    for (int tx = 0; tx < map.tiles_x; ++tx) {
      const std::int64_t v = map.unfriendly_at(tx, ty);
      if (v == 0) continue;
      const double opacity =
          0.15 + 0.45 * static_cast<double>(v) / static_cast<double>(peak);
      const auto x_span = rg.tile_x_span(tx);
      const auto y_span = rg.tile_y_span(ty);
      overlay << "<rect x='" << x_span.lo * pixels_per_track << "' y='"
              << (rg.height() - 1 - y_span.hi) * pixels_per_track
              << "' width='" << (x_span.length()) * pixels_per_track
              << "' height='" << (y_span.length()) * pixels_per_track
              << "' fill='red' fill-opacity='" << format_double(opacity)
              << "'><title>tile (" << tx << ',' << ty << "): " << v
              << " unfriendly vias</title></rect>\n";
    }
  }

  // Layer the heat rectangles over the rendered layout.
  const std::size_t close = svg.rfind("</svg>");
  if (close != std::string::npos) svg.insert(close, overlay.str());
  return svg;
}

bool write_heatmap_dir(const std::string& dir,
                       const detail::GridGraph& grid) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  const auto write = [&](const std::string& name, const std::string& text) {
    std::ofstream out(dir + "/" + name);
    if (!out) return false;
    out << text;
    return out.good();
  };

  const eval::CongestionMap congestion = eval::measure_congestion(grid);
  const ViaDensityMap vias = measure_via_density(grid);
  const int tx = congestion.tiles_x;
  const int ty = congestion.tiles_y;
  return write("congestion_horizontal.csv",
               csv_heatmap(tx, ty, congestion.horizontal)) &&
         write("congestion_vertical.csv",
               csv_heatmap(tx, ty, congestion.vertical)) &&
         write("escape_use.csv", csv_heatmap(tx, ty, congestion.escape_use)) &&
         write("congestion_horizontal.svg",
               eval::svg_heatmap(congestion, /*vertical=*/false)) &&
         write("congestion_vertical.svg",
               eval::svg_heatmap(congestion, /*vertical=*/true)) &&
         write("via_density.csv", csv_heatmap(tx, ty, vias.vias)) &&
         write("unfriendly_vias.csv",
               csv_heatmap(tx, ty, vias.unfriendly_vias)) &&
         write("via_overlay.svg", svg_via_overlay(grid, vias));
}

}  // namespace mebl::report
