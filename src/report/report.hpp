#pragma once

// mebl::report — per-run quality reports and bench artifacts.
//
// A RunReport is the machine-readable record of one routing run: a
// versioned JSON document carrying per-stage snapshots (telemetry counter
// deltas + wall time for global routing, layer assignment, track
// assignment, detailed routing, and metric evaluation), the paper's quality
// metrics (wirelength, vias, #VV, #SP, routability, overflow), the yield
// model output, spatial heatmap summaries (gcell congestion, via density in
// stitch unfriendly regions), and per-net audit records. `mebl_report diff`
// compares two such documents under configured tolerances, which makes
// run-to-run quality comparison a CI primitive (DESIGN.md §8).
//
// Serialization is deterministic: name-sorted members, kind-stable numbers
// (report/json.hpp), zero-valued counters omitted. With
// WriteOptions::include_timing = false every wall-clock field (stage
// seconds, total seconds, *_ns counters) is dropped, so two runs of the
// same seed produce byte-identical reports for any thread count — the form
// the determinism tests and the CI smoke gate compare.

#include <optional>
#include <string>
#include <vector>

#include "core/stitch_router.hpp"
#include "report/json.hpp"

namespace mebl::report {

inline constexpr char kRunReportSchema[] = "mebl.run_report";
inline constexpr char kBenchReportSchema[] = "mebl.bench_report";
inline constexpr int kSchemaVersion = 1;

struct WriteOptions {
  /// Include wall-clock data (stage/total seconds, counters named *_ns).
  /// Off = the canonical byte-reproducible form.
  bool include_timing = true;
};

/// What one pipeline stage did: its telemetry counter delta and wall time.
struct StageRecord {
  std::string name;
  double seconds = 0.0;
  telemetry::StatsSnapshot counters;
};

/// Static facts about the routed design, so a report is self-describing.
struct DesignInfo {
  geom::Coord width = 0;
  geom::Coord height = 0;
  int routing_layers = 0;
  geom::Coord tile_size = 0;
  int tiles_x = 0;
  int tiles_y = 0;
  std::int64_t nets = 0;
  std::int64_t pins = 0;
  std::int64_t stitch_lines = 0;
};

struct GlobalSummary {
  std::int64_t wirelength = 0;
  int total_vertex_overflow = 0;
  int max_vertex_overflow = 0;
  int total_edge_overflow = 0;
};

struct YieldSummary {
  double expected_defects = 0.0;
  double yield = 1.0;
};

/// Aggregate view of the gcell congestion map (full per-tile data is the
/// CSV/SVG export, see report/spatial.hpp).
struct CongestionSummary {
  int tiles_x = 0;
  int tiles_y = 0;
  double horizontal_peak = 0.0;
  double horizontal_mean = 0.0;
  double vertical_peak = 0.0;
  double vertical_mean = 0.0;
  double escape_peak = 0.0;
};

/// Aggregate view of the via-density map over stitch unfriendly regions.
struct ViaDensitySummary {
  int tiles_x = 0;
  int tiles_y = 0;
  std::int64_t vias = 0;
  std::int64_t unfriendly_vias = 0;
  std::int64_t peak_tile_vias = 0;
};

/// Stitch-hazard audit of one net.
struct NetAudit {
  netlist::NetId net = -1;
  std::string name;
  bool routed = true;
  /// Stitching lines crossed by the net's horizontal wires (occupied nodes
  /// on line columns of horizontal layers).
  std::int64_t stitch_crossings = 0;
  /// Bad ends left by track assignment across the net's runs.
  int bad_ends = 0;
  /// Runs ripped by track assignment (re-routed by the detailed router).
  int ripped_runs = 0;
  /// Vias of this net on stitching-line columns.
  int via_violations = 0;
  /// Escape-region nodes the net occupies — the escape cost it paid.
  std::int64_t escape_nodes = 0;
};

/// The complete per-run quality report; see the schema notes above.
struct RunReport {
  int version = kSchemaVersion;
  DesignInfo design;
  std::vector<StageRecord> stages;
  eval::RouteMetrics metrics;
  GlobalSummary global;
  YieldSummary yield;
  CongestionSummary congestion;
  ViaDensitySummary via_density;
  std::vector<NetAudit> nets;
  /// Whole-run counter delta (RoutingResult::stats()).
  telemetry::StatsSnapshot counters;
  double total_seconds = 0.0;
  bool ilp_budget_exceeded = false;
  bool cancelled = false;
  /// Why the run stopped early ("user" or "deadline"); kNone — and absent
  /// from the serialized form — when the run completed. Only emitted when
  /// cancelled is true, so completed-run reports keep their exact bytes.
  exec::StopReason cancel_reason = exec::StopReason::kNone;
};

[[nodiscard]] Json to_json(const RunReport& report,
                           const WriteOptions& options = {});
[[nodiscard]] std::string serialize(const RunReport& report,
                                    const WriteOptions& options = {});
[[nodiscard]] std::optional<RunReport> parse_run_report(const Json& json);
/// Named differently from the Json overload because a string literal would
/// convert to either Json or string_view ambiguously.
[[nodiscard]] std::optional<RunReport> parse_run_report_text(
    std::string_view text);
[[nodiscard]] bool write_report_file(const RunReport& report,
                                     const std::string& path,
                                     const WriteOptions& options = {});

/// Derive a full RunReport from a finished routing run. `stages` may be
/// empty (e.g. when no builder observed the run); stage wall times then
/// come from RoutingResult::times with whole-run counters only.
[[nodiscard]] RunReport build_run_report(const core::RoutingResult& result,
                                         const grid::RoutingGrid& grid,
                                         const netlist::Netlist& netlist,
                                         std::vector<StageRecord> stages = {});

/// ProgressObserver that records a per-stage counter/time snapshot at every
/// stage boundary of a StitchAwareRouter run. Attach with add_observer(),
/// run the router, then build() the report:
///
///   report::RunReportBuilder builder;
///   router.add_observer(&builder);
///   const auto result = router.run();
///   const auto report = builder.build(result, grid, netlist);
///
/// Stage counter deltas are exact: the callbacks fire on the run() thread
/// after each stage's parallel barrier.
class RunReportBuilder final : public core::ProgressObserver {
 public:
  void on_stage_begin(core::Stage stage) override;
  void on_stage_end(core::Stage stage, double seconds) override;

  [[nodiscard]] RunReport build(const core::RoutingResult& result,
                                const grid::RoutingGrid& grid,
                                const netlist::Netlist& netlist) const;

  [[nodiscard]] const std::vector<StageRecord>& stages() const noexcept {
    return stages_;
  }

 private:
  telemetry::StatsSnapshot stage_begin_;
  std::vector<StageRecord> stages_;
};

// ------------------------------------------------------- bench artifacts

/// The quality columns every full-pipeline bench row shares.
struct QualitySummary {
  double routability_pct = 100.0;
  int routed_nets = 0;
  int total_nets = 0;
  std::int64_t wirelength = 0;
  int vias = 0;
  int via_violations = 0;
  int vertical_violations = 0;
  int short_polygons = 0;
  double seconds = 0.0;

  [[nodiscard]] static QualitySummary from(const core::RoutingResult& result,
                                           double seconds);
  /// Flat numeric metric map, the row payload of a BenchReport.
  [[nodiscard]] Json::Object to_metrics() const;
};

/// One measured configuration of a bench harness: (circuit, variant) plus a
/// flat map of numeric metrics.
struct BenchRow {
  std::string circuit;
  std::string variant;
  Json::Object metrics;
};

/// The machine-readable artifact of one bench harness run
/// (BENCH_<name>.json); `mebl_report diff` compares two of these row by
/// row, matched on (circuit, variant).
struct BenchReport {
  std::string bench;
  std::vector<BenchRow> rows;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static std::optional<BenchReport> parse(const Json& json);
  [[nodiscard]] bool write_file(const std::string& path) const;
};

}  // namespace mebl::report
