#pragma once

// mebl::report JSON value — the carrier for every machine-readable artifact
// the reporting layer emits (run reports, bench artifacts, threshold files).
//
// Deliberately small but complete (objects, arrays, strings with escapes,
// 64-bit integers, doubles, bools, null) and built for *determinism*:
//
//  * objects are std::map, so members always dump name-sorted;
//  * integers and doubles are distinct kinds — counters never lose
//    precision to a double, and a value round-trips with its kind;
//  * doubles print with the shortest decimal form that parses back to the
//    identical bits (and always carry a '.' or exponent so they re-parse as
//    doubles), making dump(parse(dump(x))) byte-identical to dump(x).
//
// This is what lets `mebl_report diff` and the determinism tests compare
// reports as bytes, not just as floats-within-epsilon.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mebl::report {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  Json(int value) : kind_(Kind::kInt), int_(value) {}     // NOLINT
  Json(std::int64_t value) : kind_(Kind::kInt), int_(value) {}  // NOLINT
  Json(double value) : kind_(Kind::kDouble), double_(value) {}  // NOLINT
  Json(const char* value) : kind_(Kind::kString), string_(value) {}  // NOLINT
  Json(std::string value)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kString), string_(std::move(value)) {}
  Json(Array value)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kArray), array_(std::move(value)) {}
  Json(Object value)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kObject), object_(std::move(value)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] std::int64_t as_int() const noexcept {
    return kind_ == Kind::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  [[nodiscard]] double as_double() const noexcept {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  [[nodiscard]] const std::string& as_string() const noexcept {
    return string_;
  }
  [[nodiscard]] const Array& items() const noexcept { return array_; }
  [[nodiscard]] Array& items() noexcept { return array_; }
  [[nodiscard]] const Object& members() const noexcept { return object_; }
  [[nodiscard]] Object& members() noexcept { return object_; }

  /// Member lookup on an object; nullptr when absent or not an object.
  [[nodiscard]] const Json* get(std::string_view key) const;

  /// Object member access, creating the member (and coercing *this to an
  /// object) as std::map does.
  Json& operator[](const std::string& key);

  /// Append to an array (coercing a null value to an array first).
  void push_back(Json value);

  friend bool operator==(const Json& a, const Json& b);
  friend bool operator!=(const Json& a, const Json& b) { return !(a == b); }

  /// Pretty-print with 2-space indentation and deterministic member order /
  /// number formatting; `indent` is the starting depth.
  void dump(std::ostream& out, int indent = 0) const;
  [[nodiscard]] std::string dump() const;

  /// Parse a complete JSON document; std::nullopt on any syntax error or
  /// trailing garbage.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Shortest decimal form of `v` that strtod parses back to identical bits,
/// always containing '.' or an exponent (so it re-parses as a double).
[[nodiscard]] std::string format_double(double v);

}  // namespace mebl::report
