#include "report/diff.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "report/report.hpp"

namespace mebl::report {

namespace {

struct MetricSpec {
  std::string_view name;
  Direction direction;
  Tolerance tolerance;
};

// The gate table: every metric `mebl_report diff` enforces, with its
// improvement direction and default slack. Violation counts are strict —
// one extra short polygon is a regression. Wirelength/vias wander a little
// under legitimate changes, wall-clock a lot.
constexpr double kSizeRel = 0.02;
constexpr double kTimeRel = 0.50;
constexpr double kTimeAbs = 2.0;

const MetricSpec kSpecs[] = {
    {"short_polygons", Direction::kLowerBetter, {}},
    {"via_violations", Direction::kLowerBetter, {}},
    {"vertical_violations", Direction::kLowerBetter, {}},
    {"total_vertex_overflow", Direction::kLowerBetter, {}},
    {"max_vertex_overflow", Direction::kLowerBetter, {}},
    {"total_edge_overflow", Direction::kLowerBetter, {}},
    {"expected_defects", Direction::kLowerBetter, {0.0, kSizeRel}},
    {"wirelength", Direction::kLowerBetter, {0.0, kSizeRel}},
    {"vias", Direction::kLowerBetter, {0.0, kSizeRel}},
    {"seconds", Direction::kLowerBetter, {kTimeAbs, kTimeRel}},
    {"total_seconds", Direction::kLowerBetter, {kTimeAbs, kTimeRel}},
    // Sparse-grid storage gates (DESIGN.md §15): how much of the tile grid
    // the tiled representation materialized, and its resident bytes as a
    // fraction of the dense estimate. Deterministic (thread-invariant), so
    // they gate at the usual size slack; peak_rss_kb stays ungated
    // (machine-dependent).
    {"tiles_materialized", Direction::kLowerBetter, {0.0, kSizeRel}},
    {"materialized_fraction", Direction::kLowerBetter, {0.0, kSizeRel}},
    {"memory_fraction", Direction::kLowerBetter, {0.0, kSizeRel}},
    {"routability_pct", Direction::kHigherBetter, {}},
    {"routed_nets", Direction::kHigherBetter, {}},
    {"yield", Direction::kHigherBetter, {}},
    // Serve-throughput gates (DESIGN.md §16): the deterministic side of the
    // bench — every job answered, every expected ECO absorbed into a batch,
    // per-design reports byte-identical across lane counts, verify replays
    // clean. Strict: one dropped job or one mismatched byte is a
    // regression. Wall-clock QPS / latency stay ungated (machine-
    // dependent, informational rows only).
    {"jobs_completed", Direction::kHigherBetter, {}},
    {"eco_coalesced", Direction::kHigherBetter, {}},
    {"reports_identical", Direction::kHigherBetter, {}},
    {"eco_verified", Direction::kHigherBetter, {}},
};

const MetricSpec* find_spec(std::string_view name) {
  for (const MetricSpec& spec : kSpecs)
    if (spec.name == name) return &spec;
  return nullptr;
}

double tolerance_slack(const Tolerance& tolerance, double baseline) {
  return std::max(tolerance.abs, tolerance.rel * std::abs(baseline));
}

/// Numeric leaves of `json`, flattened to dotted paths under `prefix`.
void flatten_numbers(const Json& json, const std::string& prefix,
                     std::map<std::string, double>& out) {
  switch (json.kind()) {
    case Json::Kind::kInt:
    case Json::Kind::kDouble: out[prefix] = json.as_double(); break;
    case Json::Kind::kObject:
      for (const auto& [key, member] : json.members())
        flatten_numbers(member, prefix.empty() ? key : prefix + "." + key,
                        out);
      break;
    default: break;  // strings/bools/arrays are not metrics
  }
}

std::string_view unqualified(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string_view::npos ? path : path.substr(dot + 1);
}

class Differ {
 public:
  explicit Differ(const DiffOptions& options) : options_(options) {}

  void compare_maps(const std::map<std::string, double>& baseline,
                    const std::map<std::string, double>& candidate,
                    const std::string& context) {
    for (const auto& [path, base_value] : baseline) {
      const auto it = candidate.find(path);
      if (it == candidate.end()) continue;  // absent metric: not comparable
      if (it->second == base_value) continue;
      push_delta(context, path, base_value, it->second);
    }
    // Metrics new in the candidate are informational; record them so a
    // report consumer sees them, but they cannot regress with no baseline.
    for (const auto& [path, cand_value] : candidate)
      if (!baseline.contains(path))
        result_.deltas.push_back(
            {qualify(context, path), std::string(unqualified(path)), 0.0,
             cand_value, false, false});
  }

  void missing(std::string text) {
    result_.missing.push_back(std::move(text));
  }

  DiffResult take() {
    // Worst first: regressions, then other gated changes, then info.
    std::stable_sort(result_.deltas.begin(), result_.deltas.end(),
                     [](const MetricDelta& a, const MetricDelta& b) {
                       if (a.regression != b.regression) return a.regression;
                       return a.gated && !b.gated;
                     });
    return std::move(result_);
  }

 private:
  static std::string qualify(const std::string& context,
                             const std::string& path) {
    return context.empty() ? path : context + "." + path;
  }

  void push_delta(const std::string& context, const std::string& path,
                  double baseline, double candidate) {
    MetricDelta delta;
    delta.path = qualify(context, path);
    delta.metric = std::string(unqualified(path));
    delta.baseline = baseline;
    delta.candidate = candidate;

    const MetricSpec* spec = find_spec(delta.metric);
    Tolerance tolerance = spec != nullptr ? spec->tolerance : Tolerance{};
    if (const auto it = options_.tolerances.find(delta.metric);
        it != options_.tolerances.end())
      tolerance = it->second;

    delta.gated = spec != nullptr && !tolerance.ignore;
    if (delta.gated) {
      const double slack = tolerance_slack(tolerance, baseline);
      delta.regression = spec->direction == Direction::kLowerBetter
                             ? candidate > baseline + slack
                             : candidate < baseline - slack;
    }
    result_.deltas.push_back(std::move(delta));
  }

  const DiffOptions& options_;
  DiffResult result_;
};

std::string doc_schema(const Json& json) {
  const Json* schema = json.get("schema");
  return schema != nullptr && schema->kind() == Json::Kind::kString
             ? schema->as_string()
             : std::string();
}

std::int64_t doc_version(const Json& json) {
  const Json* version = json.get("version");
  return version != nullptr && version->is_number() ? version->as_int() : -1;
}

void diff_run_reports(const Json& baseline, const Json& candidate,
                      Differ& differ) {
  // Gate on the quality block and timing; counters/heatmaps travel along
  // as informational metrics (no direction in the gate table).
  for (const char* section : {"quality", "timing", "heatmaps", "counters"}) {
    std::map<std::string, double> base_flat, cand_flat;
    if (const Json* block = baseline.get(section))
      flatten_numbers(*block, section, base_flat);
    if (const Json* block = candidate.get(section))
      flatten_numbers(*block, section, cand_flat);
    differ.compare_maps(base_flat, cand_flat, "");
  }
}

void diff_bench_reports(const Json& baseline, const Json& candidate,
                        Differ& differ) {
  const Json* base_rows = baseline.get("rows");
  const Json* cand_rows = candidate.get("rows");
  if (base_rows == nullptr || base_rows->kind() != Json::Kind::kArray) return;

  const auto row_key = [](const Json& row) {
    const Json* circuit = row.get("circuit");
    const Json* variant = row.get("variant");
    std::string key =
        circuit != nullptr && circuit->kind() == Json::Kind::kString
            ? circuit->as_string()
            : "?";
    key += '/';
    key += variant != nullptr && variant->kind() == Json::Kind::kString
               ? variant->as_string()
               : "?";
    return key;
  };

  for (const Json& base_row : base_rows->items()) {
    const std::string key = row_key(base_row);
    const Json* match = nullptr;
    if (cand_rows != nullptr && cand_rows->kind() == Json::Kind::kArray)
      for (const Json& cand_row : cand_rows->items())
        if (row_key(cand_row) == key) {
          match = &cand_row;
          break;
        }
    if (match == nullptr) {
      // A configuration the baseline measured vanished — that is a
      // regression in coverage, not a tolerance question.
      differ.missing("row " + key + " missing from candidate");
      continue;
    }
    std::map<std::string, double> base_flat, cand_flat;
    if (const Json* metrics = base_row.get("metrics"))
      flatten_numbers(*metrics, "", base_flat);
    if (const Json* metrics = match->get("metrics"))
      flatten_numbers(*metrics, "", cand_flat);
    differ.compare_maps(base_flat, cand_flat, "rows[" + key + "]");
  }
}

}  // namespace

std::optional<Direction> metric_direction(std::string_view name) {
  const MetricSpec* spec = find_spec(name);
  if (spec == nullptr) return std::nullopt;
  return spec->direction;
}

Tolerance default_tolerance(std::string_view name) {
  const MetricSpec* spec = find_spec(name);
  return spec != nullptr ? spec->tolerance : Tolerance{};
}

std::optional<DiffOptions> parse_thresholds(std::string_view text) {
  const std::optional<Json> json = Json::parse(text);
  if (!json.has_value() || json->kind() != Json::Kind::kObject)
    return std::nullopt;
  const Json* map = json->get("tolerances");
  if (map == nullptr) map = &*json;
  if (map->kind() != Json::Kind::kObject) return std::nullopt;

  DiffOptions options;
  for (const auto& [name, entry] : map->members()) {
    if (entry.kind() != Json::Kind::kObject) return std::nullopt;
    Tolerance tolerance;
    if (const Json* abs = entry.get("abs"); abs != nullptr && abs->is_number())
      tolerance.abs = abs->as_double();
    if (const Json* rel = entry.get("rel"); rel != nullptr && rel->is_number())
      tolerance.rel = rel->as_double();
    if (const Json* ignore = entry.get("ignore");
        ignore != nullptr && ignore->kind() == Json::Kind::kBool)
      tolerance.ignore = ignore->as_bool();
    options.tolerances[name] = tolerance;
  }
  return options;
}

bool DiffResult::regressed() const noexcept {
  if (!missing.empty()) return true;
  return std::any_of(deltas.begin(), deltas.end(),
                     [](const MetricDelta& d) { return d.regression; });
}

int DiffResult::exit_code() const noexcept {
  if (schema_mismatch) return kDiffSchemaMismatch;
  return regressed() ? kDiffRegression : kDiffOk;
}

DiffResult diff_reports(const Json& baseline, const Json& candidate,
                        const DiffOptions& options) {
  const std::string schema = doc_schema(baseline);
  const bool known =
      schema == kRunReportSchema || schema == kBenchReportSchema;
  if (!known || schema != doc_schema(candidate) ||
      doc_version(baseline) != doc_version(candidate)) {
    DiffResult result;
    result.schema_mismatch = true;
    return result;
  }

  Differ differ(options);
  if (schema == kRunReportSchema)
    diff_run_reports(baseline, candidate, differ);
  else
    diff_bench_reports(baseline, candidate, differ);
  return differ.take();
}

void print_diff(std::ostream& out, const DiffResult& result) {
  if (result.schema_mismatch) {
    out << "schema mismatch: documents are not comparable\n";
    return;
  }
  for (const std::string& text : result.missing)
    out << "REGRESSION  " << text << '\n';
  for (const MetricDelta& delta : result.deltas) {
    const char* tag = delta.regression ? "REGRESSION"
                      : delta.gated    ? "ok        "
                                       : "info      ";
    out << tag << "  " << delta.path << ": "
        << format_double(delta.baseline) << " -> "
        << format_double(delta.candidate) << '\n';
  }
  if (result.missing.empty() && result.deltas.empty())
    out << "no metric changes\n";
}

}  // namespace mebl::report
