#pragma once

// Run-diff regression gate: compare two report documents (mebl.run_report
// or mebl.bench_report) metric by metric under configurable tolerances.
// This is the engine behind `mebl_report diff baseline.json candidate.json`,
// which CI uses to fail a build when routing quality or latency regresses.
//
// Each gated metric has a direction (lower-better for #SP/#VV/wirelength/
// seconds, higher-better for routability/yield) and a Tolerance. Defaults
// are strict for violation counts, slightly loose for wirelength/vias, and
// loose for wall-clock seconds; a threshold JSON file overrides any of them
// by metric name. Metrics without a known direction are reported but never
// gate.

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "report/json.hpp"

namespace mebl::report {

/// Exit codes of `mebl_report` (and of DiffResult::exit_code()).
inline constexpr int kDiffOk = 0;          ///< no gated regression
inline constexpr int kDiffRegression = 1;  ///< at least one gated regression
inline constexpr int kDiffUsage = 2;       ///< bad arguments or I/O failure
inline constexpr int kDiffSchemaMismatch = 3;  ///< incomparable documents

/// Allowed slack before a change in the losing direction counts as a
/// regression: candidate may be worse than baseline by up to
/// max(abs, rel * |baseline|).
struct Tolerance {
  double abs = 0.0;
  double rel = 0.0;
  bool ignore = false;  ///< metric never gates (still reported)
};

enum class Direction { kLowerBetter, kHigherBetter };

/// Direction of a gated metric by its (unqualified) name, or nullopt for
/// informational metrics.
[[nodiscard]] std::optional<Direction> metric_direction(std::string_view name);

/// Built-in tolerance of a metric (threshold files override this).
[[nodiscard]] Tolerance default_tolerance(std::string_view name);

struct DiffOptions {
  /// Per-metric overrides, keyed by unqualified metric name (e.g.
  /// "wirelength", "seconds").
  std::map<std::string, Tolerance, std::less<>> tolerances;
};

/// Parse a threshold file: {"tolerances": {"wirelength": {"rel": 0.05},
/// "seconds": {"ignore": true}}} — the top-level wrapper is optional.
[[nodiscard]] std::optional<DiffOptions> parse_thresholds(
    std::string_view text);

/// One compared metric. `path` is the qualified location ("quality.
/// short_polygons", "rows[s9234/stitch-aware].wirelength"), `metric` the
/// unqualified name used for direction/tolerance lookup.
struct MetricDelta {
  std::string path;
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  bool gated = false;       ///< has a direction and is not ignored
  bool regression = false;  ///< gated and worse beyond tolerance
};

struct DiffResult {
  bool schema_mismatch = false;
  std::vector<MetricDelta> deltas;  ///< every metric whose value changed
  /// Structural problems that gate by themselves (e.g. a bench row present
  /// in the baseline but missing from the candidate).
  std::vector<std::string> missing;

  [[nodiscard]] bool regressed() const noexcept;
  [[nodiscard]] int exit_code() const noexcept;
};

/// Compare two parsed report documents. Both must carry the same known
/// schema/version or the result is a schema mismatch.
[[nodiscard]] DiffResult diff_reports(const Json& baseline,
                                      const Json& candidate,
                                      const DiffOptions& options = {});

/// Human-readable summary of a diff (one line per changed metric, worst
/// first), written to `out`.
void print_diff(std::ostream& out, const DiffResult& result);

}  // namespace mebl::report
