#include "report/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace mebl::report {

namespace {

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_indent(std::ostream& out, int depth) {
  for (int i = 0; i < depth; ++i) out << "  ";
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse() {
    std::optional<Json> value = parse_value();
    skip_ws();
    if (!value.has_value() || pos_ != text_.size()) return std::nullopt;
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
        return literal("true") ? std::optional<Json>(Json(true)) : std::nullopt;
      case 'f':
        return literal("false") ? std::optional<Json>(Json(false))
                                : std::nullopt;
      case 'n':
        return literal("null") ? std::optional<Json>(Json()) : std::nullopt;
      default: return parse_number();
    }
  }

  std::optional<Json> parse_object() {
    if (!consume('{')) return std::nullopt;
    Json value = Json::object();
    if (consume('}')) return value;
    while (true) {
      std::optional<Json> key = parse_string();
      if (!key.has_value() || !consume(':')) return std::nullopt;
      std::optional<Json> member = parse_value();
      if (!member.has_value()) return std::nullopt;
      value.members()[key->as_string()] = *std::move(member);
      if (consume(',')) continue;
      if (consume('}')) return value;
      return std::nullopt;
    }
  }

  std::optional<Json> parse_array() {
    if (!consume('[')) return std::nullopt;
    Json value = Json::array();
    if (consume(']')) return value;
    while (true) {
      std::optional<Json> element = parse_value();
      if (!element.has_value()) return std::nullopt;
      value.push_back(*std::move(element));
      if (consume(',')) continue;
      if (consume(']')) return value;
      return std::nullopt;
    }
  }

  std::optional<Json> parse_string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code += static_cast<unsigned>(h - 'A' + 10);
              else
                return std::nullopt;
            }
            // Only the control-character escapes we emit need exactness;
            // anything else degrades to '?' (the reports are ASCII).
            c = code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: return std::nullopt;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return std::nullopt;
    ++pos_;
    return Json(std::move(out));
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size())
        return Json(static_cast<std::int64_t>(v));
      // fall through to double on int64 overflow
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0.0";  // NaN/inf are not valid JSON
  char buf[40];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  std::string out = buf;
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

const Json* Json::get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

Json& Json::operator[](const std::string& key) {
  if (kind_ != Kind::kObject) *this = object();
  return object_[key];
}

void Json::push_back(Json value) {
  if (kind_ != Kind::kArray) *this = array();
  array_.push_back(std::move(value));
}

bool operator==(const Json& a, const Json& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Json::Kind::kNull: return true;
    case Json::Kind::kBool: return a.bool_ == b.bool_;
    case Json::Kind::kInt: return a.int_ == b.int_;
    case Json::Kind::kDouble: return a.double_ == b.double_;
    case Json::Kind::kString: return a.string_ == b.string_;
    case Json::Kind::kArray: return a.array_ == b.array_;
    case Json::Kind::kObject: return a.object_ == b.object_;
  }
  return false;
}

void Json::dump(std::ostream& out, int indent) const {
  switch (kind_) {
    case Kind::kNull: out << "null"; break;
    case Kind::kBool: out << (bool_ ? "true" : "false"); break;
    case Kind::kInt: out << int_; break;
    case Kind::kDouble: out << format_double(double_); break;
    case Kind::kString: write_escaped(out, string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out << "[]";
        break;
      }
      out << "[\n";
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out << ",\n";
        first = false;
        write_indent(out, indent + 1);
        item.dump(out, indent + 1);
      }
      out << '\n';
      write_indent(out, indent);
      out << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out << "{}";
        break;
      }
      out << "{\n";
      bool first = true;
      for (const auto& [key, member] : object_) {
        if (!first) out << ",\n";
        first = false;
        write_indent(out, indent + 1);
        write_escaped(out, key);
        out << ": ";
        member.dump(out, indent + 1);
      }
      out << '\n';
      write_indent(out, indent);
      out << '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::ostringstream out;
  dump(out, 0);
  out << '\n';
  return out.str();
}

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace mebl::report
