#include "geom/point.hpp"

#include <ostream>

namespace mebl::geom {

std::ostream& operator<<(std::ostream& os, Point p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, Point3 p) {
  return os << '(' << p.x << ',' << p.y << ",L" << p.layer << ')';
}

std::ostream& operator<<(std::ostream& os, Orientation o) {
  return os << (o == Orientation::kHorizontal ? 'H' : 'V');
}

}  // namespace mebl::geom
