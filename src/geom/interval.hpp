#pragma once

#include <vector>

#include "geom/point.hpp"

namespace mebl::geom {

/// Closed integer interval [lo, hi] in track units. Intervals with
/// lo > hi are empty. Used for wire segment spans, panel occupancy, and
/// the interval-graph machinery in layer assignment.
struct Interval {
  Coord lo = 0;
  Coord hi = -1;  // default-constructed interval is empty

  [[nodiscard]] constexpr bool empty() const noexcept { return lo > hi; }
  [[nodiscard]] constexpr Coord length() const noexcept {
    return empty() ? 0 : hi - lo + 1;
  }
  [[nodiscard]] constexpr bool contains(Coord v) const noexcept {
    return lo <= v && v <= hi;
  }
  [[nodiscard]] constexpr bool contains(Interval other) const noexcept {
    return other.empty() || (lo <= other.lo && other.hi <= hi);
  }
  /// True when the two closed intervals share at least one integer point.
  [[nodiscard]] constexpr bool overlaps(Interval other) const noexcept {
    return !empty() && !other.empty() && lo <= other.hi && other.lo <= hi;
  }
  [[nodiscard]] constexpr Interval intersect(Interval other) const noexcept {
    return {lo > other.lo ? lo : other.lo, hi < other.hi ? hi : other.hi};
  }
  /// Smallest interval containing both (the hull; gaps are filled).
  [[nodiscard]] constexpr Interval hull(Interval other) const noexcept {
    if (empty()) return other;
    if (other.empty()) return *this;
    return {lo < other.lo ? lo : other.lo, hi > other.hi ? hi : other.hi};
  }

  friend constexpr bool operator==(Interval, Interval) = default;
  friend constexpr auto operator<=>(Interval, Interval) = default;
};

std::ostream& operator<<(std::ostream& os, Interval iv);

/// Sorted set of pairwise-disjoint closed intervals with union/query
/// operations. Used to track free tracks in a panel and the stitch
/// unfriendly regions along the x axis.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Insert an interval, merging with any overlapping or adjacent members.
  void insert(Interval iv);

  /// Remove all points of `iv` from the set, splitting members as needed.
  void erase(Interval iv);

  [[nodiscard]] bool contains(Coord v) const noexcept;
  [[nodiscard]] bool overlaps(Interval iv) const noexcept;

  /// Total number of integer points covered.
  [[nodiscard]] Coord total_length() const noexcept;

  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }
  [[nodiscard]] const std::vector<Interval>& members() const noexcept {
    return members_;
  }

 private:
  std::vector<Interval> members_;  // sorted by lo, disjoint, non-adjacent
};

}  // namespace mebl::geom
