#include "geom/interval.hpp"

#include <algorithm>
#include <ostream>

namespace mebl::geom {

std::ostream& operator<<(std::ostream& os, Interval iv) {
  return os << '[' << iv.lo << ',' << iv.hi << ']';
}

void IntervalSet::insert(Interval iv) {
  if (iv.empty()) return;
  std::vector<Interval> next;
  next.reserve(members_.size() + 1);
  bool placed = false;
  for (const Interval& m : members_) {
    if (m.hi + 1 < iv.lo) {
      next.push_back(m);
    } else if (iv.hi + 1 < m.lo) {
      if (!placed) {
        next.push_back(iv);
        placed = true;
      }
      next.push_back(m);
    } else {
      // Overlapping or adjacent: absorb into iv.
      iv = {std::min(iv.lo, m.lo), std::max(iv.hi, m.hi)};
    }
  }
  if (!placed) next.push_back(iv);
  members_ = std::move(next);
}

void IntervalSet::erase(Interval iv) {
  if (iv.empty()) return;
  std::vector<Interval> next;
  next.reserve(members_.size() + 1);
  for (const Interval& m : members_) {
    if (!m.overlaps(iv)) {
      next.push_back(m);
      continue;
    }
    if (m.lo < iv.lo) next.push_back({m.lo, iv.lo - 1});
    if (iv.hi < m.hi) next.push_back({iv.hi + 1, m.hi});
  }
  members_ = std::move(next);
}

bool IntervalSet::contains(Coord v) const noexcept {
  auto it = std::partition_point(members_.begin(), members_.end(),
                                 [v](const Interval& m) { return m.hi < v; });
  return it != members_.end() && it->contains(v);
}

bool IntervalSet::overlaps(Interval iv) const noexcept {
  if (iv.empty()) return false;
  auto it = std::partition_point(
      members_.begin(), members_.end(),
      [&](const Interval& m) { return m.hi < iv.lo; });
  return it != members_.end() && it->overlaps(iv);
}

Coord IntervalSet::total_length() const noexcept {
  Coord total = 0;
  for (const Interval& m : members_) total += m.length();
  return total;
}

}  // namespace mebl::geom
