#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iosfwd>

namespace mebl::geom {

/// Integer coordinate in routing-track units. One unit == one routing pitch.
using Coord = std::int32_t;

/// Layer index. Layer 0 is the pin layer; layers >= 1 are routing layers.
using LayerId = std::int16_t;

/// 2-D point on a single layer's track grid.
struct Point {
  Coord x = 0;
  Coord y = 0;

  friend constexpr bool operator==(Point, Point) = default;
  friend constexpr auto operator<=>(Point, Point) = default;
};

/// 3-D routing-grid location: (x, y) on layer `layer`.
struct Point3 {
  Coord x = 0;
  Coord y = 0;
  LayerId layer = 0;

  [[nodiscard]] constexpr Point xy() const noexcept { return {x, y}; }

  friend constexpr bool operator==(Point3, Point3) = default;
  friend constexpr auto operator<=>(Point3, Point3) = default;
};

/// Manhattan (L1) distance between two points.
[[nodiscard]] constexpr Coord manhattan(Point a, Point b) noexcept {
  const Coord dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const Coord dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

/// Manhattan distance between 3-D points; each layer hop counts `via_cost`.
[[nodiscard]] constexpr Coord manhattan(Point3 a, Point3 b,
                                        Coord via_cost = 1) noexcept {
  const Coord dl = a.layer > b.layer ? a.layer - b.layer : b.layer - a.layer;
  return manhattan(a.xy(), b.xy()) + via_cost * dl;
}

std::ostream& operator<<(std::ostream& os, Point p);
std::ostream& operator<<(std::ostream& os, Point3 p);

/// Wire direction conventions used throughout the router. Stitching lines
/// are vertical, so kHorizontal wires cross them and kVertical wires can
/// only run *between* them (vertical routing constraint).
enum class Orientation : std::uint8_t { kHorizontal, kVertical };

[[nodiscard]] constexpr Orientation flip(Orientation o) noexcept {
  return o == Orientation::kHorizontal ? Orientation::kVertical
                                       : Orientation::kHorizontal;
}

std::ostream& operator<<(std::ostream& os, Orientation o);

}  // namespace mebl::geom

template <>
struct std::hash<mebl::geom::Point> {
  std::size_t operator()(mebl::geom::Point p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x)) << 32) |
        static_cast<std::uint32_t>(p.y));
  }
};

template <>
struct std::hash<mebl::geom::Point3> {
  std::size_t operator()(mebl::geom::Point3 p) const noexcept {
    std::uint64_t k =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x)) << 32) |
        static_cast<std::uint32_t>(p.y);
    k ^= static_cast<std::uint64_t>(static_cast<std::uint16_t>(p.layer))
         * 0x9e3779b97f4a7c15ULL;
    return std::hash<std::uint64_t>{}(k);
  }
};
