#pragma once

#include "geom/interval.hpp"
#include "geom/point.hpp"

namespace mebl::geom {

/// Closed axis-aligned rectangle [xlo,xhi] x [ylo,yhi] in track units.
/// A degenerate rectangle (xlo==xhi or ylo==yhi) models a wire centerline.
struct Rect {
  Coord xlo = 0, ylo = 0;
  Coord xhi = -1, yhi = -1;  // default-constructed rect is empty

  constexpr Rect() = default;
  constexpr Rect(Coord xl, Coord yl, Coord xh, Coord yh) noexcept
      : xlo(xl), ylo(yl), xhi(xh), yhi(yh) {}

  [[nodiscard]] static constexpr Rect bounding(Point a, Point b) noexcept {
    return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y,
            a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y};
  }

  [[nodiscard]] constexpr bool empty() const noexcept {
    return xlo > xhi || ylo > yhi;
  }
  [[nodiscard]] constexpr Coord width() const noexcept {
    return empty() ? 0 : xhi - xlo + 1;
  }
  [[nodiscard]] constexpr Coord height() const noexcept {
    return empty() ? 0 : yhi - ylo + 1;
  }
  [[nodiscard]] constexpr std::int64_t area() const noexcept {
    return static_cast<std::int64_t>(width()) * height();
  }
  [[nodiscard]] constexpr Interval x_span() const noexcept { return {xlo, xhi}; }
  [[nodiscard]] constexpr Interval y_span() const noexcept { return {ylo, yhi}; }

  [[nodiscard]] constexpr bool contains(Point p) const noexcept {
    return xlo <= p.x && p.x <= xhi && ylo <= p.y && p.y <= yhi;
  }
  [[nodiscard]] constexpr bool contains(const Rect& r) const noexcept {
    return r.empty() || (xlo <= r.xlo && r.xhi <= xhi && ylo <= r.ylo && r.yhi <= yhi);
  }
  [[nodiscard]] constexpr bool overlaps(const Rect& r) const noexcept {
    return !empty() && !r.empty() && xlo <= r.xhi && r.xlo <= xhi &&
           ylo <= r.yhi && r.ylo <= yhi;
  }
  [[nodiscard]] constexpr Rect intersect(const Rect& r) const noexcept {
    return {xlo > r.xlo ? xlo : r.xlo, ylo > r.ylo ? ylo : r.ylo,
            xhi < r.xhi ? xhi : r.xhi, yhi < r.yhi ? yhi : r.yhi};
  }
  [[nodiscard]] constexpr Rect hull(const Rect& r) const noexcept {
    if (empty()) return r;
    if (r.empty()) return *this;
    return {xlo < r.xlo ? xlo : r.xlo, ylo < r.ylo ? ylo : r.ylo,
            xhi > r.xhi ? xhi : r.xhi, yhi > r.yhi ? yhi : r.yhi};
  }
  /// Expand by `margin` tracks on every side (clamping is the caller's job).
  [[nodiscard]] constexpr Rect inflated(Coord margin) const noexcept {
    return {xlo - margin, ylo - margin, xhi + margin, yhi + margin};
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace mebl::geom
