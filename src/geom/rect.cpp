#include "geom/rect.hpp"

#include <ostream>

namespace mebl::geom {

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.xlo << ',' << r.ylo << " .. " << r.xhi << ',' << r.yhi
            << ']';
}

}  // namespace mebl::geom
