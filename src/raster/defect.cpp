#include "raster/defect.hpp"

#include <algorithm>

namespace mebl::raster {

DefectReport analyze_window(const GrayBitmap& gray, const BinaryBitmap& exposure,
                            int x0, int y0, int x1, int y1) {
  DefectReport report;
  x0 = std::max(0, x0);
  y0 = std::max(0, y0);
  x1 = std::min(x1, gray.width());
  y1 = std::min(y1, gray.height());
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      const bool ideal = gray.at(x, y) >= 0.5;
      const bool actual = exposure.at(x, y) != 0;
      if (ideal) ++report.pattern_pixels;
      if (ideal != actual) {
        ++report.error_pixels;
        if (ideal)
          ++report.missing_pixels;
        else
          ++report.spurious_pixels;
      }
    }
  }
  return report;
}

DefectReport analyze(const GrayBitmap& gray, const BinaryBitmap& exposure) {
  return analyze_window(gray, exposure, 0, 0, gray.width(), gray.height());
}

DefectReport short_polygon_experiment(int cut_px, int length_px, int width_px,
                                      double edge_bias, DitherKernel kernel) {
  const int margin = 2;
  const int img_w = length_px + 2 * margin;
  const int img_h = width_px + 2 * margin + 1;

  // One horizontal wire. `edge_bias` (default 0: pixel-aligned edges) can
  // push the long edges mid-pixel to additionally exercise the Fig. 3(b)
  // boundary irregularity.
  const FeatureRect wire{static_cast<double>(margin),
                         margin + edge_bias,
                         static_cast<double>(margin + length_px),
                         margin + edge_bias + width_px};

  // The stripe boundary is not aligned to the beam pixel grid (the overlay
  // error of SII-A): it cuts the wire mid-pixel, `cut_px` pixels plus half
  // a pixel from its left end. Each side is written by a different beam
  // pass — rendered and error-diffused independently — and a pixel is
  // exposed when either pass writes it.
  const double cut_x = margin + cut_px + 0.5;
  FeatureRect left = wire;
  left.xhi = std::min(left.xhi, cut_x);
  FeatureRect right = wire;
  right.xlo = std::max(right.xlo, cut_x);

  const GrayBitmap gray_full = render({wire}, img_w, img_h);
  const BinaryBitmap exposed_left = dither(render({left}, img_w, img_h), kernel);
  const BinaryBitmap exposed_right = dither(render({right}, img_w, img_h), kernel);

  BinaryBitmap combined(img_w, img_h, 0);
  for (int y = 0; y < img_h; ++y)
    for (int x = 0; x < img_w; ++x)
      combined.at(x, y) =
          (exposed_left.at(x, y) != 0 || exposed_right.at(x, y) != 0) ? 1 : 0;

  // Defects of the *short piece* only: the window up to and including the
  // cut pixel. The truncated error diffusion of the left pass concentrates
  // its irregular pixels here; for a short piece they are a large fraction
  // of its area (Fig. 4), for a long piece a negligible one.
  return analyze_window(gray_full, combined, 0, 0,
                        static_cast<int>(cut_x) + 1, img_h);
}

}  // namespace mebl::raster
