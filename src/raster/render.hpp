#pragma once

#include <vector>

#include "raster/bitmap.hpp"

namespace mebl::raster {

/// Axis-aligned rectangle in continuous pixel coordinates (a layout feature
/// to be exposed). Polygons are modeled as unions of such rectangles, which
/// is exact for Manhattan routing shapes.
struct FeatureRect {
  double xlo = 0.0, ylo = 0.0, xhi = 0.0, yhi = 0.0;

  [[nodiscard]] bool valid() const noexcept { return xlo < xhi && ylo < yhi; }
};

/// Rendering: slice the layout into pixels and convert features into
/// gray-level intensity proportional to the pattern coverage of each pixel
/// (paper SII-A, first rasterization step).
///
/// Overlapping feature rects saturate at intensity 1 (they describe the same
/// exposed polygon, not double exposure).
[[nodiscard]] GrayBitmap render(const std::vector<FeatureRect>& features,
                                int width, int height);

}  // namespace mebl::raster
