#include "raster/dither.hpp"

namespace mebl::raster {

BinaryBitmap dither(const GrayBitmap& gray, DitherKernel kernel) {
  const int w = gray.width();
  const int h = gray.height();
  BinaryBitmap out(w, h, 0);
  GrayBitmap work = gray;  // accumulates diffused error

  const auto spread = [&](int x, int y, double err, double fraction) {
    if (work.in_bounds(x, y)) work.at(x, y) += err * fraction;
  };

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double v = work.at(x, y);
      const std::uint8_t on = v >= 0.5 ? 1 : 0;
      out.at(x, y) = on;
      const double err = v - static_cast<double>(on);
      switch (kernel) {
        case DitherKernel::kRightDown:
          spread(x + 1, y, err, 0.5);
          spread(x, y + 1, err, 0.5);
          break;
        case DitherKernel::kFloydSteinberg:
          spread(x + 1, y, err, 7.0 / 16.0);
          spread(x - 1, y + 1, err, 3.0 / 16.0);
          spread(x, y + 1, err, 5.0 / 16.0);
          spread(x + 1, y + 1, err, 1.0 / 16.0);
          break;
      }
    }
  }
  return out;
}

}  // namespace mebl::raster
