#include "raster/render.hpp"

#include <algorithm>
#include <cmath>

namespace mebl::raster {

GrayBitmap render(const std::vector<FeatureRect>& features, int width,
                  int height) {
  GrayBitmap gray(width, height, 0.0);
  for (const FeatureRect& f : features) {
    if (!f.valid()) continue;
    const int x0 = std::max(0, static_cast<int>(std::floor(f.xlo)));
    const int x1 = std::min(width - 1, static_cast<int>(std::ceil(f.xhi)) - 1);
    const int y0 = std::max(0, static_cast<int>(std::floor(f.ylo)));
    const int y1 = std::min(height - 1, static_cast<int>(std::ceil(f.yhi)) - 1);
    for (int y = y0; y <= y1; ++y) {
      const double cover_y =
          std::min<double>(y + 1, f.yhi) - std::max<double>(y, f.ylo);
      for (int x = x0; x <= x1; ++x) {
        const double cover_x =
            std::min<double>(x + 1, f.xhi) - std::max<double>(x, f.xlo);
        gray.at(x, y) += std::max(0.0, cover_x) * std::max(0.0, cover_y);
      }
    }
  }
  // Butt-joined / overlapping rects describe one polygon: saturate.
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x)
      gray.at(x, y) = std::min(1.0, gray.at(x, y));
  return gray;
}

}  // namespace mebl::raster
