#include "raster/bitmap.hpp"

// Bitmap is a header-only template; this translation unit exists so the
// raster library always has at least one object per header group and to
// host explicit instantiations for the common pixel types.

namespace mebl::raster {

template class Bitmap<double>;
template class Bitmap<std::uint8_t>;

}  // namespace mebl::raster
