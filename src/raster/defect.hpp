#pragma once

#include <vector>

#include "raster/dither.hpp"
#include "raster/render.hpp"

namespace mebl::raster {

/// Pixel-level comparison of the dithered exposure against the ideal
/// pattern, quantifying the short-polygon defect mechanism of Fig. 4.
struct DefectReport {
  int pattern_pixels = 0;   ///< pixels that should be exposed (ideal >= 1/2)
  int error_pixels = 0;     ///< pixels where dithered exposure != ideal
  int missing_pixels = 0;   ///< should be on but are off
  int spurious_pixels = 0;  ///< should be off but are on

  /// Fraction of the pattern's pixels that are wrong — the paper's argument
  /// is that for a *short* polygon this ratio is large enough to distort the
  /// pattern and misalign the landing via.
  [[nodiscard]] double error_ratio() const noexcept {
    return pattern_pixels == 0
               ? 0.0
               : static_cast<double>(error_pixels) / pattern_pixels;
  }
};

/// Compare `exposure` to the ideal binarization of `gray` (threshold 1/2)
/// restricted to the pixel window [x0,x1) x [y0,y1).
[[nodiscard]] DefectReport analyze_window(const GrayBitmap& gray,
                                          const BinaryBitmap& exposure, int x0,
                                          int y0, int x1, int y1);

/// Whole-image analysis.
[[nodiscard]] DefectReport analyze(const GrayBitmap& gray,
                                   const BinaryBitmap& exposure);

/// End-to-end simulation of the paper's Fig. 4 experiment: render a
/// horizontal wire of `length_px` x `width_px` cut by a stripe boundary
/// `cut_px` (+1/2, sub-pixel overlay error) pixels from its left end,
/// expose each side in a separate beam pass (independent error diffusion),
/// combine the exposures, and report the defects of the short left piece.
/// Short pieces come out with a much larger error ratio than long ones —
/// the short-polygon failure mechanism. `edge_bias` > 0 additionally
/// un-aligns the wire's long edges from the pixel grid (Fig. 3(b)).
[[nodiscard]] DefectReport short_polygon_experiment(int cut_px, int length_px,
                                                    int width_px,
                                                    double edge_bias = 0.0,
                                                    DitherKernel kernel = DitherKernel::kFloydSteinberg);

}  // namespace mebl::raster
