#pragma once

#include "raster/bitmap.hpp"

namespace mebl::raster {

/// Error-diffusion kernel selection for the dithering step (paper SII-A,
/// second rasterization step).
enum class DitherKernel {
  /// Distribute the quantization error to the right and lower neighbours in
  /// equal halves — the scheme illustrated in Fig. 3 of the paper.
  kRightDown,
  /// Classic Floyd–Steinberg (7/16 right, 3/16 down-left, 5/16 down,
  /// 1/16 down-right), the standard choice in MEBL data-prep flows.
  kFloydSteinberg,
};

/// Transform a gray-level bitmap into an on/off beam bitmap with error
/// diffusion: each pixel is thresholded at 1/2 and its quantization error is
/// diffused to unprocessed neighbours (raster scan order, left-to-right then
/// top-to-bottom).
[[nodiscard]] BinaryBitmap dither(const GrayBitmap& gray,
                                  DitherKernel kernel = DitherKernel::kFloydSteinberg);

}  // namespace mebl::raster
