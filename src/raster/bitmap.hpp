#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace mebl::raster {

/// Dense row-major 2-D image used by the MEBL data-preparation pipeline
/// (rendering produces a Bitmap<double> of gray levels; dithering produces a
/// Bitmap<std::uint8_t> of on/off beam pixels).
template <typename T>
class Bitmap {
 public:
  Bitmap() = default;
  Bitmap(int width, int height, T fill = T{})
      : width_(width), height_(height),
        data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
              fill) {
    assert(width >= 0 && height >= 0);
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] bool in_bounds(int x, int y) const noexcept {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  [[nodiscard]] T& at(int x, int y) {
    assert(in_bounds(x, y));
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  [[nodiscard]] const T& at(int x, int y) const {
    assert(in_bounds(x, y));
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  [[nodiscard]] const std::vector<T>& data() const noexcept { return data_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<T> data_;
};

using GrayBitmap = Bitmap<double>;
using BinaryBitmap = Bitmap<std::uint8_t>;

}  // namespace mebl::raster
