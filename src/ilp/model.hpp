#pragma once

#include <string>
#include <vector>

namespace mebl::ilp {

using VarId = std::int32_t;

/// Comparison sense of a linear constraint.
enum class Sense { kLe, kGe, kEq };

/// One term of a linear expression: coeff * x_var.
struct Term {
  VarId var;
  double coeff;
};

/// A linear constraint: sum(terms) (sense) rhs.
struct Constraint {
  std::vector<Term> terms;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// 0/1 integer linear program (minimization). This is the model interface
/// the track-assignment ILP of the paper (eqs. 5-9) is built against; the
/// exact branch-and-bound solver in branch_and_bound.hpp replaces CPLEX.
class Model {
 public:
  /// Add a binary decision variable with the given objective coefficient.
  VarId add_binary(double objective_coeff, std::string name = {});

  /// Add a linear constraint over previously created variables.
  void add_constraint(std::vector<Term> terms, Sense sense, double rhs);

  /// Convenience: sum of vars (unit coefficients) (sense) rhs.
  void add_sum_constraint(const std::vector<VarId>& vars, Sense sense,
                          double rhs);

  [[nodiscard]] std::size_t num_vars() const noexcept { return obj_.size(); }
  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return constraints_.size();
  }
  [[nodiscard]] double objective_coeff(VarId v) const {
    return obj_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const std::string& var_name(VarId v) const {
    return names_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }

  /// Evaluate the objective for a full assignment.
  [[nodiscard]] double objective_value(
      const std::vector<std::uint8_t>& assignment) const;

  /// Check a full assignment against every constraint (for tests and for
  /// validating incumbents).
  [[nodiscard]] bool is_feasible(
      const std::vector<std::uint8_t>& assignment) const;

 private:
  std::vector<double> obj_;
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
};

}  // namespace mebl::ilp
