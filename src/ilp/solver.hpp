#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "ilp/model.hpp"

namespace mebl::exec {
class ThreadPool;
}

namespace mebl::ilp {

/// Outcome of a branch-and-bound run.
enum class SolveStatus {
  kOptimal,     ///< proven optimal solution found
  kFeasible,    ///< stopped by a limit with an incumbent, optimality unproven
  kInfeasible,  ///< proven infeasible
  kLimit,       ///< stopped by a limit with no incumbent found
};

/// Solver knobs. The defaults are effectively unlimited; the experiment
/// harnesses set a time limit so the Table VII "ILP too slow / NA" behaviour
/// of the paper reproduces in bounded wall-clock time.
struct SolveOptions {
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  std::int64_t max_nodes = std::numeric_limits<std::int64_t>::max();
  /// Absolute wall-clock deadline, typically shared by many solves (the
  /// router's per-circuit ILP budget under parallel panel fan-out). Checked
  /// inside the search alongside time_limit_seconds, so one over-budget
  /// solve stops mid-search instead of blowing past the budget. Unset =
  /// no deadline. Wall-clock limits make the *point where a search is cut
  /// off* machine-dependent; replayable flows should use node_budget.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Deterministic-effort mode: > 0 caps the search at (approximately) this
  /// many branch-and-bound nodes, counted identically on every machine and
  /// at every thread count. When set it takes precedence over the wall-clock
  /// limits above (they are not checked at all), and cross-subproblem
  /// incumbent sharing is disabled, so the full Solution — status,
  /// objective, values and nodes_explored — is a pure function of (model,
  /// options). This is what replayable modes (mebl_serve ECO) use.
  std::int64_t node_budget = 0;
  /// Optional warm-start assignment: must be feasible; used as the initial
  /// incumbent so pruning starts immediately.
  std::optional<std::vector<std::uint8_t>> warm_start;
  /// Optional branching preference: unfixed variables listed here are
  /// branched before the default cover-guided rule kicks in (value 1 first).
  /// Typically the support of a heuristic solution, so the search re-derives
  /// and then improves on it quickly. Unknown/fixed entries are skipped.
  std::vector<VarId> branch_hint;
  /// Number of root subproblems the search is split into before fan-out.
  /// Part of the determinism contract: fixed by the caller, never derived
  /// from the thread count (DESIGN.md §7) — the same split must be used at
  /// every pool size for the merged solution to be bit-identical. 1 runs the
  /// plain sequential DFS of the seed solver; 0 selects the default (32).
  int split_target = 0;
  /// Allow subproblems to prune against the best objective found by any
  /// other subproblem so far (deadline/time-limit mode only; node_budget
  /// forces it off). Sharing never changes the merged solution — only
  /// strictly-worse branches are cut — but nodes_explored then varies with
  /// the execution interleaving.
  bool share_incumbent = true;
};

/// Solve result: status, incumbent (when any), objective and search stats.
struct Solution {
  SolveStatus status = SolveStatus::kLimit;
  double objective = std::numeric_limits<double>::infinity();
  std::vector<std::uint8_t> values;  // empty when no incumbent
  std::int64_t nodes_explored = 0;
  /// True when the search was cut short by any limit (time, deadline,
  /// max_nodes or node_budget) — i.e. status would have been kOptimal or
  /// kInfeasible given unlimited effort. Wall-clock cut-offs are machine-
  /// dependent, so run reports must keep this out of canonical bytes.
  bool limit_hit = false;
};

/// Exact DFS branch-and-bound for 0/1 minimization ILPs, packaged as a
/// stateful, reentrant solver object.
///
/// Kernel techniques (unchanged from the seed solver): bounds-consistency
/// propagation on every constraint, objective lower bounding (fixed cost +
/// negative-coefficient relaxation + a greedy disjoint bound over
/// unsatisfied set-covering constraints), and cover-constraint guided
/// branching (pick the cheapest unfixed variable of a tight "choose one"
/// constraint, try 1 first). Exact but exponential in the worst case — a
/// faithful stand-in for the paper's CPLEX usage, including its blow-up on
/// large panels.
///
/// What the object adds over the retired free function:
///
///  * Parallel subtree exploration. The root is expanded sequentially into
///    a fixed-size frontier of subproblems (split_target — never derived
///    from the thread count), the subproblems are solved on the exec pool,
///    and the incumbents are merged in subproblem-index order with exact
///    comparisons. Under that discipline the merged solution is
///    bit-identical at any pool size, including none (DESIGN.md §7).
///    Cross-subproblem incumbent sharing only ever cuts strictly-worse
///    branches, so it accelerates the search without touching the result.
///  * Warm starts. solve() accepts a feasible assignment as the initial
///    incumbent plus a branch hint; solve_warmed() re-seeds from the
///    previous solve's solution when the model shape matches (adjacent
///    panels share structure, ECO re-solves the same panel).
///  * A deterministic node budget (SolveOptions::node_budget) as the
///    replayable alternative to wall-clock limits.
///
/// A Solver owns reusable search scratch, so keeping one per worker thread
/// and feeding it a sequence of models avoids per-solve allocation. One
/// in-flight solve per Solver: the object is reentrant in the sense that
/// solve() may be called again (and from inside pool workers — nested
/// parallelism degrades to the inline sequential path), but concurrent
/// solves need distinct Solver instances, which are cheap to construct.
class Solver {
 public:
  /// `pool` runs the subproblem fan-out; nullptr (or a pool of 1) solves
  /// them sequentially — same results either way.
  explicit Solver(exec::ThreadPool* pool = nullptr);
  ~Solver();
  Solver(Solver&&) noexcept;
  Solver& operator=(Solver&&) noexcept;
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  void set_pool(exec::ThreadPool* pool);

  /// Solve one model. The result is also retained as last_solution().
  Solution solve(const Model& model, const SolveOptions& options = {});

  /// Like solve(), but seeds options.warm_start / options.branch_hint from
  /// the previous solve's incumbent when that assignment is feasible for
  /// `model` (same variable count and all constraints hold). Falls back to
  /// a cold solve otherwise. Any warm start the caller already put in
  /// `options` wins over the remembered one.
  Solution solve_warmed(const Model& model, SolveOptions options = {});

  /// Result of the most recent solve() on this object (default-constructed
  /// before the first call).
  [[nodiscard]] const Solution& last_solution() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mebl::ilp
