#include "ilp/branch_and_bound.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/timer.hpp"

namespace mebl::ilp {

namespace {

constexpr double kTol = 1e-9;

/// Internal DFS state for the branch-and-bound search.
class Search {
 public:
  Search(const Model& model, const SolveOptions& options)
      : model_(model), options_(options) {
    const std::size_t n = model.num_vars();
    value_.assign(n, -1);
    of_var_.assign(n, {});
    const auto& cons = model.constraints();
    min_lhs_.resize(cons.size());
    max_lhs_.resize(cons.size());
    for (std::size_t c = 0; c < cons.size(); ++c) {
      double lo = 0.0, hi = 0.0;
      bool all_unit = true;
      for (const Term& t : cons[c].terms) {
        lo += std::min(0.0, t.coeff);
        hi += std::max(0.0, t.coeff);
        of_var_[static_cast<std::size_t>(t.var)].push_back(c);
        if (std::abs(t.coeff - 1.0) > kTol) all_unit = false;
      }
      min_lhs_[c] = lo;
      max_lhs_[c] = hi;
      // "Cover" constraints (sum x >= 1 or == 1 with unit coefficients)
      // drive both the branching rule and the disjoint lower bound.
      if (all_unit && cons[c].rhs >= 1.0 - kTol &&
          (cons[c].sense == Sense::kGe || cons[c].sense == Sense::kEq))
        covers_.push_back(c);
    }
    base_bound_ = 0.0;
    for (std::size_t v = 0; v < n; ++v)
      base_bound_ += std::min(0.0, model.objective_coeff(static_cast<VarId>(v)));
    used_mark_.assign(n, 0);
  }

  Solution run() {
    Solution solution;
    if (options_.warm_start) {
      assert(model_.is_feasible(*options_.warm_start));
      incumbent_ = *options_.warm_start;
      incumbent_obj_ = model_.objective_value(incumbent_);
    }
    // Seed the propagation queue with every constraint so trivially
    // infeasible models are detected at the root.
    for (std::size_t c = 0; c < model_.constraints().size(); ++c)
      dirty_.push_back(c);
    const bool complete = dfs();
    solution.nodes_explored = nodes_;
    if (!incumbent_.empty()) {
      solution.values = incumbent_;
      solution.objective = incumbent_obj_;
      solution.status = complete ? SolveStatus::kOptimal : SolveStatus::kFeasible;
    } else {
      solution.status = complete ? SolveStatus::kInfeasible : SolveStatus::kLimit;
    }
    return solution;
  }

 private:
  // --- assignment / trail --------------------------------------------------

  bool assign(VarId var, std::int8_t val) {
    auto& slot = value_[static_cast<std::size_t>(var)];
    if (slot != -1) return slot == val;
    slot = val;
    trail_.push_back(var);
    fixed_cost_ += val == 1 ? model_.objective_coeff(var) : 0.0;
    // The var leaves the relaxation term sum(min(0, c_i) over unfixed).
    relax_gain_ -= std::min(0.0, model_.objective_coeff(var));
    for (std::size_t c : of_var_[static_cast<std::size_t>(var)]) {
      const Constraint& con = model_.constraints()[c];
      // Find this var's coefficient (vars appear once per constraint).
      for (const Term& t : con.terms) {
        if (t.var != var) continue;
        if (t.coeff > 0.0) {
          if (val == 1)
            min_lhs_[c] += t.coeff;  // range [0,c] -> {c}
          else
            max_lhs_[c] -= t.coeff;  // range [0,c] -> {0}
        } else if (t.coeff < 0.0) {
          if (val == 1)
            max_lhs_[c] += t.coeff;  // range [c,0] -> {c}
          else
            min_lhs_[c] -= t.coeff;  // range [c,0] -> {0}
        }
        break;
      }
      dirty_.push_back(c);
    }
    return true;
  }

  void undo_to(std::size_t trail_mark) {
    while (trail_.size() > trail_mark) {
      const VarId var = trail_.back();
      trail_.pop_back();
      const std::int8_t val = value_[static_cast<std::size_t>(var)];
      value_[static_cast<std::size_t>(var)] = -1;
      fixed_cost_ -= val == 1 ? model_.objective_coeff(var) : 0.0;
      relax_gain_ += std::min(0.0, model_.objective_coeff(var));
      for (std::size_t c : of_var_[static_cast<std::size_t>(var)]) {
        const Constraint& con = model_.constraints()[c];
        for (const Term& t : con.terms) {
          if (t.var != var) continue;
          if (t.coeff > 0.0) {
            if (val == 1)
              min_lhs_[c] -= t.coeff;
            else
              max_lhs_[c] += t.coeff;
          } else if (t.coeff < 0.0) {
            if (val == 1)
              max_lhs_[c] -= t.coeff;
            else
              min_lhs_[c] += t.coeff;
          }
          break;
        }
      }
    }
  }

  // --- propagation ---------------------------------------------------------

  /// Bounds-consistency pass over constraints touched since the last call.
  /// Returns false on a detected conflict.
  bool propagate() {
    while (!dirty_.empty()) {
      const std::size_t c = dirty_.back();
      dirty_.pop_back();
      const Constraint& con = model_.constraints()[c];
      const bool need_le = con.sense != Sense::kGe;
      const bool need_ge = con.sense != Sense::kLe;
      if (need_le && min_lhs_[c] > con.rhs + kTol) return false;
      if (need_ge && max_lhs_[c] < con.rhs - kTol) return false;
      for (const Term& t : con.terms) {
        if (value_[static_cast<std::size_t>(t.var)] != -1 || t.coeff == 0.0)
          continue;
        if (t.coeff > 0.0) {
          // Setting to 1 adds coeff to min; setting to 0 removes it from max.
          if (need_le && min_lhs_[c] + t.coeff > con.rhs + kTol) {
            if (!assign(t.var, 0)) return false;
          } else if (need_ge && max_lhs_[c] - t.coeff < con.rhs - kTol) {
            if (!assign(t.var, 1)) return false;
          }
        } else {
          if (need_le && min_lhs_[c] - t.coeff > con.rhs + kTol) {
            if (!assign(t.var, 1)) return false;
          } else if (need_ge && max_lhs_[c] + t.coeff < con.rhs - kTol) {
            if (!assign(t.var, 0)) return false;
          }
        }
      }
    }
    return true;
  }

  // --- bounding ------------------------------------------------------------

  /// Lower bound on any completion of the current partial assignment.
  double lower_bound() {
    double bound = fixed_cost_ + base_bound_ + relax_gain_;
    // Greedy disjoint cover bound: unsatisfied "choose one" constraints with
    // pairwise-disjoint unfixed supports each force at least their cheapest
    // member into the solution.
    ++epoch_;
    for (std::size_t c : covers_) {
      const Constraint& con = model_.constraints()[c];
      double cheapest = std::numeric_limits<double>::infinity();
      bool satisfied = false;
      bool disjoint = true;
      for (const Term& t : con.terms) {
        const auto v = static_cast<std::size_t>(t.var);
        if (value_[v] == 1) {
          satisfied = true;
          break;
        }
        if (value_[v] == 0) continue;
        if (used_mark_[v] == epoch_) disjoint = false;
        cheapest = std::min(cheapest, model_.objective_coeff(t.var));
      }
      if (satisfied || !disjoint || cheapest <= 0.0 ||
          cheapest == std::numeric_limits<double>::infinity())
        continue;
      bound += cheapest;
      for (const Term& t : con.terms) {
        const auto v = static_cast<std::size_t>(t.var);
        if (value_[v] == -1) used_mark_[v] = epoch_;
      }
    }
    return bound;
  }

  // --- branching -----------------------------------------------------------

  /// Choose the next variable to branch on: the cheapest unfixed member of
  /// the first unsatisfied cover constraint, else the first unfixed var.
  [[nodiscard]] VarId pick_branch_var() const {
    for (std::size_t c : covers_) {
      const Constraint& con = model_.constraints()[c];
      VarId best = -1;
      double best_cost = std::numeric_limits<double>::infinity();
      bool satisfied = false;
      for (const Term& t : con.terms) {
        const auto v = static_cast<std::size_t>(t.var);
        if (value_[v] == 1) {
          satisfied = true;
          break;
        }
        if (value_[v] == -1 && model_.objective_coeff(t.var) < best_cost) {
          best_cost = model_.objective_coeff(t.var);
          best = t.var;
        }
      }
      if (!satisfied && best != -1) return best;
    }
    for (std::size_t v = 0; v < value_.size(); ++v)
      if (value_[v] == -1) return static_cast<VarId>(v);
    return -1;
  }

  /// Returns true when the subtree was searched exhaustively (no limit hit).
  bool dfs() {
    ++nodes_;
    if ((nodes_ & 0x3ff) == 0 &&
        (timer_.seconds() > options_.time_limit_seconds ||
         nodes_ > options_.max_nodes ||
         (options_.deadline &&
          std::chrono::steady_clock::now() > *options_.deadline)))
      return false;

    const std::size_t mark = trail_.size();
    if (!propagate()) {
      dirty_.clear();
      undo_to(mark);
      return true;  // conflict: subtree exhausted
    }
    if (!incumbent_.empty() && lower_bound() >= incumbent_obj_ - kTol) {
      undo_to(mark);
      return true;  // pruned
    }

    const VarId var = pick_branch_var();
    if (var == -1) {
      // Full assignment; propagation kept every constraint satisfiable and
      // all bounds are now tight, so it is feasible.
      std::vector<std::uint8_t> values(value_.size());
      for (std::size_t v = 0; v < value_.size(); ++v)
        values[v] = static_cast<std::uint8_t>(value_[v]);
      const double obj = fixed_cost_;
      if (incumbent_.empty() || obj < incumbent_obj_) {
        incumbent_ = std::move(values);
        incumbent_obj_ = obj;
      }
      undo_to(mark);
      return true;
    }

    bool complete = true;
    for (const std::int8_t branch_val : {std::int8_t{1}, std::int8_t{0}}) {
      const std::size_t inner = trail_.size();
      dirty_.clear();
      if (assign(var, branch_val)) {
        if (!dfs()) complete = false;
      }
      undo_to(inner);
      if (!complete) break;  // limit hit; stop immediately
    }
    undo_to(mark);
    return complete;
  }

  const Model& model_;
  const SolveOptions& options_;
  util::Timer timer_;

  std::vector<std::int8_t> value_;               // -1 unknown / 0 / 1
  std::vector<std::vector<std::size_t>> of_var_;  // var -> constraint indices
  std::vector<double> min_lhs_;
  std::vector<double> max_lhs_;
  std::vector<std::size_t> covers_;
  std::vector<std::size_t> dirty_;
  std::vector<VarId> trail_;

  double fixed_cost_ = 0.0;
  double base_bound_ = 0.0;   // sum of min(0, c_i) over all vars
  double relax_gain_ = 0.0;   // correction as vars leave the relaxation
  std::vector<std::uint32_t> used_mark_;
  std::uint32_t epoch_ = 0;

  std::vector<std::uint8_t> incumbent_;
  double incumbent_obj_ = std::numeric_limits<double>::infinity();
  std::int64_t nodes_ = 0;
};

}  // namespace

Solution solve(const Model& model, const SolveOptions& options) {
  if (model.num_vars() == 0) {
    Solution s;
    s.status = SolveStatus::kOptimal;
    s.objective = 0.0;
    return s;
  }
  return Search(model, options).run();
}

}  // namespace mebl::ilp
