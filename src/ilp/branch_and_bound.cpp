#include "ilp/branch_and_bound.hpp"

namespace mebl::ilp {

Solution solve(const Model& model, const SolveOptions& options) {
  SolveOptions sequential = options;
  sequential.split_target = 1;
  Solver solver;
  return solver.solve(model, sequential);
}

}  // namespace mebl::ilp
