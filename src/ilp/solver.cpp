#include "ilp/solver.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <mutex>
#include <utility>

#include "exec/thread_pool.hpp"

namespace mebl::ilp {

namespace {

constexpr double kTol = 1e-9;
constexpr int kDefaultSplit = 32;
constexpr double kInf = std::numeric_limits<double>::infinity();

using Clock = std::chrono::steady_clock;

/// Immutable per-model derived data shared by every subproblem search:
/// var -> constraint incidence, the cover-constraint list, initial
/// constraint activity bounds and the objective's negative-coefficient
/// relaxation. Built once per solve; every SearchCore starts from a copy
/// of the bounds instead of rescanning the model.
struct ModelIndex {
  std::vector<std::vector<std::size_t>> of_var;  // first num_vars slots valid
  std::vector<std::size_t> covers;
  std::vector<double> min_lhs0;
  std::vector<double> max_lhs0;
  double base_bound = 0.0;

  void build(const Model& model) {
    const std::size_t n = model.num_vars();
    if (of_var.size() < n) of_var.resize(n);
    for (std::size_t v = 0; v < n; ++v) of_var[v].clear();
    covers.clear();
    const auto& cons = model.constraints();
    min_lhs0.assign(cons.size(), 0.0);
    max_lhs0.assign(cons.size(), 0.0);
    for (std::size_t c = 0; c < cons.size(); ++c) {
      double lo = 0.0, hi = 0.0;
      bool all_unit = true;
      for (const Term& t : cons[c].terms) {
        lo += std::min(0.0, t.coeff);
        hi += std::max(0.0, t.coeff);
        of_var[static_cast<std::size_t>(t.var)].push_back(c);
        if (std::abs(t.coeff - 1.0) > kTol) all_unit = false;
      }
      min_lhs0[c] = lo;
      max_lhs0[c] = hi;
      // "Cover" constraints (sum x >= 1 or == 1 with unit coefficients)
      // drive both the branching rule and the disjoint lower bound.
      if (all_unit && cons[c].rhs >= 1.0 - kTol &&
          (cons[c].sense == Sense::kGe || cons[c].sense == Sense::kEq))
        covers.push_back(c);
    }
    base_bound = 0.0;
    for (std::size_t v = 0; v < n; ++v)
      base_bound += std::min(0.0, model.objective_coeff(static_cast<VarId>(v)));
  }
};

/// Limits and shared state for one DFS run (whole model or one subproblem).
struct RunLimits {
  std::int64_t max_nodes = std::numeric_limits<std::int64_t>::max();
  bool check_clock = false;
  double time_limit_seconds = kInf;
  std::optional<Clock::time_point> deadline;
  Clock::time_point start{};
  /// Best objective published by any subproblem so far, or nullptr when
  /// cross-subproblem sharing is off. Pruning against it uses a *strict*
  /// comparison with no tolerance: a node is cut only when its bound is
  /// strictly above a real solution's objective, so no branch holding a
  /// solution <= the global optimum is ever lost and the index-ordered
  /// merge stays deterministic under any interleaving.
  std::atomic<double>* shared_best = nullptr;
};

/// One DFS branch-and-bound search over the model (optionally rooted at a
/// subproblem prefix). The kernel — propagation, bounding, branching — is
/// the seed solver's, restructured so the state is resettable (reusable
/// scratch across solves) and seedable (warm-start incumbent, replayed
/// decision prefix, branch hints, shared bound).
class SearchCore {
 public:
  /// A subproblem of the root expansion: the branching decisions that lead
  /// from the root to this subtree.
  struct Subproblem {
    std::vector<std::pair<VarId, std::int8_t>> decisions;
  };

  void reset(const Model& model, const ModelIndex& index) {
    model_ = &model;
    index_ = &index;
    const std::size_t n = model.num_vars();
    value_.assign(n, -1);
    min_lhs_.assign(index.min_lhs0.begin(), index.min_lhs0.end());
    max_lhs_.assign(index.max_lhs0.begin(), index.max_lhs0.end());
    used_mark_.assign(n, 0);
    epoch_ = 0;
    dirty_.clear();
    trail_.clear();
    fixed_cost_ = 0.0;
    relax_gain_ = 0.0;
    incumbent_.clear();
    incumbent_obj_ = kInf;
    nodes_ = 0;
    hint_ = nullptr;
  }

  void set_hint(const std::vector<VarId>* hint) { hint_ = hint; }

  void seed_incumbent(const std::vector<std::uint8_t>& values, double obj) {
    incumbent_ = values;
    incumbent_obj_ = obj;
  }

  /// Seed the propagation queue with every constraint so trivially
  /// infeasible models are detected at the root (seed-solver behaviour:
  /// the root node itself performs the first full propagation pass).
  void seed_all_dirty() {
    for (std::size_t c = 0; c < model_->constraints().size(); ++c)
      dirty_.push_back(c);
  }

  /// Drain the propagation queue; false on conflict.
  bool settle() {
    if (!propagate()) {
      dirty_.clear();
      return false;
    }
    return true;
  }

  /// Replay one branching decision of a subproblem prefix; false when the
  /// prefix is infeasible (the subtree is exhausted trivially).
  bool apply_decision(VarId var, std::int8_t val) {
    dirty_.clear();
    if (!assign(var, val)) return false;
    return settle();
  }

  /// Sequential, deterministic expansion of the root into at most
  /// 2^max_depth subproblems (the first `max_depth` levels of the exact
  /// branching tree). Prefixes that conflict or are bound-pruned die here;
  /// complete assignments found on the way become root incumbents. Callers
  /// seed_all_dirty() first. Never limited: the frontier is a few dozen
  /// nodes, each counted in nodes().
  void expand(int depth, int max_depth, std::vector<Subproblem>& out,
              std::vector<std::pair<VarId, std::int8_t>>& prefix) {
    if (depth == max_depth) {
      out.push_back(Subproblem{prefix});
      return;
    }
    ++nodes_;
    const std::size_t mark = trail_.size();
    if (!settle()) {
      undo_to(mark);
      return;
    }
    if (!incumbent_.empty() && lower_bound() >= incumbent_obj_ - kTol) {
      undo_to(mark);
      return;
    }
    const VarId var = pick_branch_var();
    if (var == -1) {
      accept_leaf();
      undo_to(mark);
      return;
    }
    for (const std::int8_t val : {std::int8_t{1}, std::int8_t{0}}) {
      const std::size_t inner = trail_.size();
      dirty_.clear();
      if (assign(var, val)) {
        prefix.emplace_back(var, val);
        expand(depth + 1, max_depth, out, prefix);
        prefix.pop_back();
      }
      undo_to(inner);
    }
    undo_to(mark);
  }

  /// Exhaustive DFS under `limits`; true when the subtree was searched
  /// completely (no limit hit).
  bool run(const RunLimits& limits) {
    limits_ = limits;
    return dfs();
  }

  [[nodiscard]] std::int64_t nodes() const noexcept { return nodes_; }
  [[nodiscard]] bool has_incumbent() const noexcept {
    return !incumbent_.empty();
  }
  [[nodiscard]] double incumbent_obj() const noexcept { return incumbent_obj_; }
  [[nodiscard]] const std::vector<std::uint8_t>& incumbent() const noexcept {
    return incumbent_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take_incumbent() {
    return std::move(incumbent_);
  }

 private:
  // --- assignment / trail --------------------------------------------------

  bool assign(VarId var, std::int8_t val) {
    auto& slot = value_[static_cast<std::size_t>(var)];
    if (slot != -1) return slot == val;
    slot = val;
    trail_.push_back(var);
    fixed_cost_ += val == 1 ? model_->objective_coeff(var) : 0.0;
    // The var leaves the relaxation term sum(min(0, c_i) over unfixed).
    relax_gain_ -= std::min(0.0, model_->objective_coeff(var));
    for (std::size_t c : index_->of_var[static_cast<std::size_t>(var)]) {
      const Constraint& con = model_->constraints()[c];
      // Find this var's coefficient (vars appear once per constraint).
      for (const Term& t : con.terms) {
        if (t.var != var) continue;
        if (t.coeff > 0.0) {
          if (val == 1)
            min_lhs_[c] += t.coeff;  // range [0,c] -> {c}
          else
            max_lhs_[c] -= t.coeff;  // range [0,c] -> {0}
        } else if (t.coeff < 0.0) {
          if (val == 1)
            max_lhs_[c] += t.coeff;  // range [c,0] -> {c}
          else
            min_lhs_[c] -= t.coeff;  // range [c,0] -> {0}
        }
        break;
      }
      dirty_.push_back(c);
    }
    return true;
  }

  void undo_to(std::size_t trail_mark) {
    while (trail_.size() > trail_mark) {
      const VarId var = trail_.back();
      trail_.pop_back();
      const std::int8_t val = value_[static_cast<std::size_t>(var)];
      value_[static_cast<std::size_t>(var)] = -1;
      fixed_cost_ -= val == 1 ? model_->objective_coeff(var) : 0.0;
      relax_gain_ += std::min(0.0, model_->objective_coeff(var));
      for (std::size_t c : index_->of_var[static_cast<std::size_t>(var)]) {
        const Constraint& con = model_->constraints()[c];
        for (const Term& t : con.terms) {
          if (t.var != var) continue;
          if (t.coeff > 0.0) {
            if (val == 1)
              min_lhs_[c] -= t.coeff;
            else
              max_lhs_[c] += t.coeff;
          } else if (t.coeff < 0.0) {
            if (val == 1)
              max_lhs_[c] -= t.coeff;
            else
              min_lhs_[c] += t.coeff;
          }
          break;
        }
      }
    }
  }

  // --- propagation ---------------------------------------------------------

  /// Bounds-consistency pass over constraints touched since the last call.
  /// Returns false on a detected conflict.
  bool propagate() {
    while (!dirty_.empty()) {
      const std::size_t c = dirty_.back();
      dirty_.pop_back();
      const Constraint& con = model_->constraints()[c];
      const bool need_le = con.sense != Sense::kGe;
      const bool need_ge = con.sense != Sense::kLe;
      if (need_le && min_lhs_[c] > con.rhs + kTol) return false;
      if (need_ge && max_lhs_[c] < con.rhs - kTol) return false;
      for (const Term& t : con.terms) {
        if (value_[static_cast<std::size_t>(t.var)] != -1 || t.coeff == 0.0)
          continue;
        if (t.coeff > 0.0) {
          // Setting to 1 adds coeff to min; setting to 0 removes it from max.
          if (need_le && min_lhs_[c] + t.coeff > con.rhs + kTol) {
            if (!assign(t.var, 0)) return false;
          } else if (need_ge && max_lhs_[c] - t.coeff < con.rhs - kTol) {
            if (!assign(t.var, 1)) return false;
          }
        } else {
          if (need_le && min_lhs_[c] - t.coeff > con.rhs + kTol) {
            if (!assign(t.var, 1)) return false;
          } else if (need_ge && max_lhs_[c] + t.coeff < con.rhs - kTol) {
            if (!assign(t.var, 0)) return false;
          }
        }
      }
    }
    return true;
  }

  // --- bounding ------------------------------------------------------------

  /// Lower bound on any completion of the current partial assignment.
  double lower_bound() {
    double bound = fixed_cost_ + index_->base_bound + relax_gain_;
    // Greedy disjoint cover bound: unsatisfied "choose one" constraints with
    // pairwise-disjoint unfixed supports each force at least their cheapest
    // member into the solution.
    ++epoch_;
    for (std::size_t c : index_->covers) {
      const Constraint& con = model_->constraints()[c];
      double cheapest = kInf;
      bool satisfied = false;
      bool disjoint = true;
      for (const Term& t : con.terms) {
        const auto v = static_cast<std::size_t>(t.var);
        if (value_[v] == 1) {
          satisfied = true;
          break;
        }
        if (value_[v] == 0) continue;
        if (used_mark_[v] == epoch_) disjoint = false;
        cheapest = std::min(cheapest, model_->objective_coeff(t.var));
      }
      if (satisfied || !disjoint || cheapest <= 0.0 || cheapest == kInf)
        continue;
      bound += cheapest;
      for (const Term& t : con.terms) {
        const auto v = static_cast<std::size_t>(t.var);
        if (value_[v] == -1) used_mark_[v] = epoch_;
      }
    }
    return bound;
  }

  // --- branching -----------------------------------------------------------

  /// Choose the next variable to branch on: a hinted unfixed var first (the
  /// support of a heuristic warm start, so the search re-derives it fast),
  /// else the cheapest unfixed member of the first unsatisfied cover
  /// constraint, else the first unfixed var.
  [[nodiscard]] VarId pick_branch_var() const {
    if (hint_ != nullptr) {
      for (const VarId v : *hint_) {
        if (v >= 0 && static_cast<std::size_t>(v) < value_.size() &&
            value_[static_cast<std::size_t>(v)] == -1)
          return v;
      }
    }
    for (std::size_t c : index_->covers) {
      const Constraint& con = model_->constraints()[c];
      VarId best = -1;
      double best_cost = kInf;
      bool satisfied = false;
      for (const Term& t : con.terms) {
        const auto v = static_cast<std::size_t>(t.var);
        if (value_[v] == 1) {
          satisfied = true;
          break;
        }
        if (value_[v] == -1 && model_->objective_coeff(t.var) < best_cost) {
          best_cost = model_->objective_coeff(t.var);
          best = t.var;
        }
      }
      if (!satisfied && best != -1) return best;
    }
    for (std::size_t v = 0; v < value_.size(); ++v)
      if (value_[v] == -1) return static_cast<VarId>(v);
    return -1;
  }

  /// Record the complete assignment at the current node as the incumbent
  /// when it improves (strictly — ties keep the first one found, which the
  /// deterministic merge relies on), and publish the new bound.
  void accept_leaf() {
    const double obj = fixed_cost_;
    if (!incumbent_.empty() && obj >= incumbent_obj_) return;
    incumbent_.resize(value_.size());
    for (std::size_t v = 0; v < value_.size(); ++v)
      incumbent_[v] = static_cast<std::uint8_t>(value_[v]);
    incumbent_obj_ = obj;
    if (limits_.shared_best != nullptr) {
      double seen = limits_.shared_best->load(std::memory_order_relaxed);
      while (obj < seen && !limits_.shared_best->compare_exchange_weak(
                               seen, obj, std::memory_order_relaxed)) {
      }
    }
  }

  [[nodiscard]] bool over_clock() const {
    if (std::chrono::duration<double>(Clock::now() - limits_.start).count() >
        limits_.time_limit_seconds)
      return true;
    return limits_.deadline && Clock::now() > *limits_.deadline;
  }

  /// Returns true when the subtree was searched exhaustively (no limit hit).
  bool dfs() {
    ++nodes_;
    // The node limit is exact — a compare per node costs nothing and keeps
    // tiny budget slices meaningful — while the clock (a syscall) is only
    // consulted every 1024 nodes, as in the seed solver.
    if (nodes_ > limits_.max_nodes ||
        ((nodes_ & 0x3ff) == 0 && limits_.check_clock && over_clock()))
      return false;

    const std::size_t mark = trail_.size();
    if (!settle()) {
      undo_to(mark);
      return true;  // conflict: subtree exhausted
    }
    if (!incumbent_.empty() || limits_.shared_best != nullptr) {
      const double lb = lower_bound();
      if (!incumbent_.empty() && lb >= incumbent_obj_ - kTol) {
        undo_to(mark);
        return true;  // pruned against the local incumbent
      }
      if (limits_.shared_best != nullptr &&
          lb > limits_.shared_best->load(std::memory_order_relaxed)) {
        undo_to(mark);
        return true;  // pruned against another subproblem's incumbent
      }
    }

    const VarId var = pick_branch_var();
    if (var == -1) {
      // Full assignment; propagation kept every constraint satisfiable and
      // all bounds are now tight, so it is feasible.
      accept_leaf();
      undo_to(mark);
      return true;
    }

    bool complete = true;
    for (const std::int8_t branch_val : {std::int8_t{1}, std::int8_t{0}}) {
      const std::size_t inner = trail_.size();
      dirty_.clear();
      if (assign(var, branch_val)) {
        if (!dfs()) complete = false;
      }
      undo_to(inner);
      if (!complete) break;  // limit hit; stop immediately
    }
    undo_to(mark);
    return complete;
  }

  const Model* model_ = nullptr;
  const ModelIndex* index_ = nullptr;
  RunLimits limits_;
  const std::vector<VarId>* hint_ = nullptr;

  std::vector<std::int8_t> value_;  // -1 unknown / 0 / 1
  std::vector<double> min_lhs_;
  std::vector<double> max_lhs_;
  std::vector<std::size_t> dirty_;
  std::vector<VarId> trail_;

  double fixed_cost_ = 0.0;
  double relax_gain_ = 0.0;  // correction as vars leave the relaxation
  std::vector<std::uint32_t> used_mark_;
  std::uint32_t epoch_ = 0;

  std::vector<std::uint8_t> incumbent_;
  double incumbent_obj_ = kInf;
  std::int64_t nodes_ = 0;
};

[[nodiscard]] int split_depth(int split_target) {
  int depth = 0;
  while ((1 << depth) < split_target && depth < 16) ++depth;
  return depth;
}

}  // namespace

struct Solver::Impl {
  exec::ThreadPool* pool = nullptr;
  Solution last;
  ModelIndex index;
  SearchCore root;
  // Reusable subproblem search states, recycled across fan-outs and solves.
  std::mutex core_mutex;
  std::vector<std::unique_ptr<SearchCore>> free_cores;

  std::unique_ptr<SearchCore> acquire_core() {
    const std::lock_guard<std::mutex> lock(core_mutex);
    if (free_cores.empty()) return std::make_unique<SearchCore>();
    auto core = std::move(free_cores.back());
    free_cores.pop_back();
    return core;
  }
  void release_core(std::unique_ptr<SearchCore> core) {
    const std::lock_guard<std::mutex> lock(core_mutex);
    free_cores.push_back(std::move(core));
  }
};

Solver::Solver(exec::ThreadPool* pool) : impl_(std::make_unique<Impl>()) {
  impl_->pool = pool;
}
Solver::~Solver() = default;
Solver::Solver(Solver&&) noexcept = default;
Solver& Solver::operator=(Solver&&) noexcept = default;

void Solver::set_pool(exec::ThreadPool* pool) { impl_->pool = pool; }

const Solution& Solver::last_solution() const noexcept { return impl_->last; }

Solution Solver::solve(const Model& model, const SolveOptions& options) {
  Impl& im = *impl_;
  Solution out;
  if (model.num_vars() == 0) {
    out.status = SolveStatus::kOptimal;
    out.objective = 0.0;
    im.last = out;
    return out;
  }

  const Clock::time_point start = Clock::now();
  im.index.build(model);

  const bool budget_mode = options.node_budget > 0;
  const int split = options.split_target > 0 ? options.split_target
                                             : kDefaultSplit;

  SearchCore& root = im.root;
  root.reset(model, im.index);
  if (!options.branch_hint.empty()) root.set_hint(&options.branch_hint);
  if (options.warm_start) {
    assert(model.is_feasible(*options.warm_start));
    root.seed_incumbent(*options.warm_start,
                        model.objective_value(*options.warm_start));
  }

  RunLimits base;
  base.start = start;
  if (budget_mode) {
    base.max_nodes = std::min(options.node_budget, options.max_nodes);
  } else {
    base.max_nodes = options.max_nodes;
    base.check_clock = options.deadline.has_value() ||
                       std::isfinite(options.time_limit_seconds);
    base.time_limit_seconds = options.time_limit_seconds;
    base.deadline = options.deadline;
  }

  bool complete = true;
  std::vector<std::uint8_t> best_values;
  double best_obj = kInf;

  if (split <= 1) {
    // Plain sequential DFS — the seed solver, node for node.
    root.seed_all_dirty();
    complete = root.run(base);
    out.nodes_explored = root.nodes();
    if (root.has_incumbent()) {
      best_obj = root.incumbent_obj();
      best_values = root.take_incumbent();
    }
  } else {
    // Deterministic root expansion to a frontier of subproblems. The split
    // is fixed by the options — never by the pool size — so the frontier,
    // and with it the merged solution, is identical at every thread count.
    std::vector<SearchCore::Subproblem> subs;
    std::vector<std::pair<VarId, std::int8_t>> prefix;
    root.seed_all_dirty();
    root.expand(0, split_depth(split), subs, prefix);
    const std::int64_t root_nodes = root.nodes();
    out.nodes_explored = root_nodes;

    std::atomic<double> shared_best{
        root.has_incumbent() ? root.incumbent_obj() : kInf};
    RunLimits sub_limits = base;
    bool run_subs = !subs.empty();
    if (budget_mode) {
      // Even, deterministic node slices: each subproblem gets its share of
      // whatever the root expansion left, independent of the interleaving.
      const std::int64_t remaining =
          std::max<std::int64_t>(0, base.max_nodes - root_nodes);
      if (remaining == 0 || subs.empty())
        run_subs = false;
      else
        sub_limits.max_nodes = std::max<std::int64_t>(
            1, remaining / static_cast<std::int64_t>(subs.size()));
    } else {
      if (!subs.empty() &&
          base.max_nodes != std::numeric_limits<std::int64_t>::max())
        sub_limits.max_nodes = std::max<std::int64_t>(
            1, base.max_nodes / static_cast<std::int64_t>(subs.size()));
      if (options.share_incumbent) sub_limits.shared_best = &shared_best;
    }

    struct SubResult {
      std::vector<std::uint8_t> values;
      double obj = kInf;
      std::int64_t nodes = 0;
      bool complete = true;
    };
    std::vector<SubResult> results(subs.size());

    if (run_subs) {
      const std::function<void(std::size_t)> solve_sub = [&](std::size_t i) {
        auto core = im.acquire_core();
        core->reset(model, im.index);
        if (!options.branch_hint.empty()) core->set_hint(&options.branch_hint);
        if (root.has_incumbent())
          core->seed_incumbent(root.incumbent(), root.incumbent_obj());
        SubResult r;
        core->seed_all_dirty();
        bool alive = core->settle();
        for (std::size_t d = 0; alive && d < subs[i].decisions.size(); ++d)
          alive = core->apply_decision(subs[i].decisions[d].first,
                                       subs[i].decisions[d].second);
        // A dead prefix means the subtree is exhausted without search; the
        // root-seeded incumbent it reports back is then just the seed.
        if (alive) r.complete = core->run(sub_limits);
        if (core->has_incumbent()) {
          r.obj = core->incumbent_obj();
          r.values = core->take_incumbent();
        }
        r.nodes = core->nodes();
        im.release_core(std::move(core));
        results[i] = std::move(r);
      };
      if (im.pool != nullptr && subs.size() > 1)
        im.pool->parallel_for(0, subs.size(), solve_sub);
      else
        for (std::size_t i = 0; i < subs.size(); ++i) solve_sub(i);
    } else {
      complete = subs.empty();
    }

    // Index-ordered merge with exact comparisons: the earliest subproblem
    // achieving the best objective wins, bit-identically at any pool size.
    if (root.has_incumbent()) {
      best_obj = root.incumbent_obj();
      best_values = root.take_incumbent();
    }
    if (run_subs) {
      for (SubResult& r : results) {
        if (!r.complete) complete = false;
        out.nodes_explored += r.nodes;
        if (!r.values.empty() && r.obj < best_obj) {
          best_obj = r.obj;
          best_values = std::move(r.values);
        }
      }
    }
  }

  if (!best_values.empty()) {
    out.objective = best_obj;
    out.values = std::move(best_values);
    out.status = complete ? SolveStatus::kOptimal : SolveStatus::kFeasible;
  } else {
    out.status = complete ? SolveStatus::kInfeasible : SolveStatus::kLimit;
  }
  out.limit_hit = !complete;
  im.last = out;
  return out;
}

Solution Solver::solve_warmed(const Model& model, SolveOptions options) {
  const Solution& prev = impl_->last;
  if (!options.warm_start && !prev.values.empty() &&
      prev.values.size() == model.num_vars() &&
      model.is_feasible(prev.values)) {
    options.warm_start = prev.values;
    if (options.branch_hint.empty())
      for (std::size_t v = 0; v < prev.values.size(); ++v)
        if (prev.values[v] != 0)
          options.branch_hint.push_back(static_cast<VarId>(v));
  }
  return solve(model, options);
}

}  // namespace mebl::ilp
