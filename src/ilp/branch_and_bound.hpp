#pragma once

// Deprecated entry point. The branch-and-bound solver now lives behind the
// stateful ilp::Solver object (ilp/solver.hpp), which adds pool-parallel
// subtree exploration, warm starts and a deterministic node budget. This
// header remains for one release so out-of-tree callers keep compiling;
// in-tree code has been migrated.

#include "ilp/solver.hpp"

namespace mebl::ilp {

/// \deprecated Use ilp::Solver. Thin shim: constructs a throwaway Solver
/// and runs the plain sequential DFS (split_target = 1), which preserves
/// the retired free function's behaviour — node counts included.
[[nodiscard]] Solution solve(const Model& model, const SolveOptions& options = {});

}  // namespace mebl::ilp
