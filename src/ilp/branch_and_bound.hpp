#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "ilp/model.hpp"

namespace mebl::ilp {

/// Outcome of a branch-and-bound run.
enum class SolveStatus {
  kOptimal,     ///< proven optimal solution found
  kFeasible,    ///< stopped by a limit with an incumbent, optimality unproven
  kInfeasible,  ///< proven infeasible
  kLimit,       ///< stopped by a limit with no incumbent found
};

/// Solver knobs. The defaults are effectively unlimited; the experiment
/// harnesses set a time limit so the Table VII "ILP too slow / NA" behaviour
/// of the paper reproduces in bounded wall-clock time.
struct SolveOptions {
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  std::int64_t max_nodes = std::numeric_limits<std::int64_t>::max();
  /// Absolute wall-clock deadline, typically shared by many solves (the
  /// router's per-circuit ILP budget under parallel panel fan-out). Checked
  /// inside the search alongside time_limit_seconds, so one over-budget
  /// solve stops mid-search instead of blowing past the budget. Unset =
  /// no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Optional warm-start assignment: must be feasible; used as the initial
  /// incumbent so pruning starts immediately.
  std::optional<std::vector<std::uint8_t>> warm_start;
};

/// Solve result: status, incumbent (when any), objective and search stats.
struct Solution {
  SolveStatus status = SolveStatus::kLimit;
  double objective = std::numeric_limits<double>::infinity();
  std::vector<std::uint8_t> values;  // empty when no incumbent
  std::int64_t nodes_explored = 0;
};

/// Exact DFS branch-and-bound for 0/1 minimization ILPs.
///
/// Techniques: bounds-consistency propagation on every constraint, objective
/// lower bounding (fixed cost + negative-coefficient relaxation + a greedy
/// disjoint bound over unsatisfied set-covering constraints), and cover-
/// constraint guided branching (pick the cheapest unfixed variable of a
/// tight "choose one" constraint, try 1 first). Exact but exponential in the
/// worst case — a faithful stand-in for the paper's CPLEX usage, including
/// its blow-up on large panels.
[[nodiscard]] Solution solve(const Model& model, const SolveOptions& options = {});

}  // namespace mebl::ilp
