#include "ilp/model.hpp"

#include <cassert>
#include <cmath>

namespace mebl::ilp {

VarId Model::add_binary(double objective_coeff, std::string name) {
  obj_.push_back(objective_coeff);
  names_.push_back(std::move(name));
  return static_cast<VarId>(obj_.size() - 1);
}

void Model::add_constraint(std::vector<Term> terms, Sense sense, double rhs) {
  for ([[maybe_unused]] const Term& t : terms)
    assert(t.var >= 0 && static_cast<std::size_t>(t.var) < obj_.size());
  constraints_.push_back(Constraint{std::move(terms), sense, rhs});
}

void Model::add_sum_constraint(const std::vector<VarId>& vars, Sense sense,
                               double rhs) {
  std::vector<Term> terms;
  terms.reserve(vars.size());
  for (VarId v : vars) terms.push_back(Term{v, 1.0});
  add_constraint(std::move(terms), sense, rhs);
}

double Model::objective_value(const std::vector<std::uint8_t>& assignment) const {
  assert(assignment.size() == obj_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < obj_.size(); ++i)
    if (assignment[i] != 0) total += obj_[i];
  return total;
}

bool Model::is_feasible(const std::vector<std::uint8_t>& assignment) const {
  assert(assignment.size() == obj_.size());
  constexpr double kTol = 1e-9;
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const Term& t : c.terms)
      if (assignment[static_cast<std::size_t>(t.var)] != 0) lhs += t.coeff;
    switch (c.sense) {
      case Sense::kLe:
        if (lhs > c.rhs + kTol) return false;
        break;
      case Sense::kGe:
        if (lhs < c.rhs - kTol) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - c.rhs) > kTol) return false;
        break;
    }
  }
  return true;
}

}  // namespace mebl::ilp
