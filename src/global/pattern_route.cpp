#include "global/pattern_route.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace mebl::global {

using grid::GCellId;

namespace {

constexpr int kDirStart = 0;
constexpr int kDirH = 1;
constexpr int kDirV = 2;

/// Guard against double-summation slop: an alternative path's A*-computed
/// cost can round below its real-number lower bound by at most ~n·ulp,
/// orders of magnitude under this margin for any realistic tile grid.
constexpr double kFloatMargin = 1e-6;

int step_toward(int cur, int target) { return target > cur ? 1 : -1; }

/// Walk one axis-aligned leg from (tx,ty) to `target`, accumulating the
/// kernel's per-step cost into `cost` and tracking the entry direction.
/// Passes `goal` for the vertical-arrival line-end charge. When `emit` is
/// non-null the traversed tiles (excluding the leg's start) are appended.
void walk_leg(const RoutingGraph& graph, const GlobalSearchParams& params,
              int& tx, int& ty, int& dir, GCellId target, GCellId goal,
              double& cost, std::vector<GCellId>* emit) {
  while (tx != target.tx || ty != target.ty) {
    const bool horizontal = tx != target.tx;
    const int nx = horizontal ? tx + step_toward(tx, target.tx) : tx;
    const int ny = horizontal ? ty : ty + step_toward(ty, target.ty);
    double step = 1.0;
    if (horizontal)
      step += graph.h_cost(std::min(tx, nx), ty);
    else
      step += graph.v_cost(tx, std::min(ty, ny));
    if (dir != kDirStart && ((dir == kDirH) != horizontal))
      step += params.turn_cost;
    if (params.vertex_cost) {
      if (!horizontal && dir != kDirV)
        step += params.vertex_weight * graph.vertex_cost(tx, ty);
      if (horizontal && dir == kDirV)
        step += params.vertex_weight * graph.vertex_cost(tx, ty);
      if (!horizontal && nx == goal.tx && ny == goal.ty)
        step += params.vertex_weight * graph.vertex_cost(nx, ny);
    }
    cost = cost + step;
    tx = nx;
    ty = ny;
    dir = horizontal ? kDirH : kDirV;
    if (emit != nullptr) emit->push_back({tx, ty});
  }
}

double candidate_cost(const RoutingGraph& graph,
                      const GlobalSearchParams& params, GCellId from,
                      GCellId corner, GCellId to,
                      std::vector<GCellId>* emit) {
  double cost = 0.0;
  int tx = from.tx;
  int ty = from.ty;
  int dir = kDirStart;
  if (emit != nullptr) emit->push_back(from);
  walk_leg(graph, params, tx, ty, dir, corner, to, cost, emit);
  walk_leg(graph, params, tx, ty, dir, to, to, cost, emit);
  return cost;
}

}  // namespace

double pattern_candidate_cost(const RoutingGraph& graph,
                              const GlobalSearchParams& params, GCellId from,
                              GCellId corner, GCellId to) {
  return candidate_cost(graph, params, from, corner, to, nullptr);
}

bool try_pattern_route(const RoutingGraph& graph,
                       const GlobalSearchParams& params, GCellId from,
                       GCellId to, std::vector<GCellId>& out, double* cost) {
  if (from == to) return false;
  // The optimality argument needs every cost term non-negative.
  if (params.turn_cost < 0.0 ||
      (params.vertex_cost && params.vertex_weight < 0.0))
    return false;
  const double manhattan = static_cast<double>(
      std::abs(from.tx - to.tx) + std::abs(from.ty - to.ty));

  if (from.tx == to.tx || from.ty == to.ty) {
    // Unique monotone path; every alternative takes >= 2 extra unit steps.
    const double straight =
        pattern_candidate_cost(graph, params, from, from, to);
    if (!(straight < manhattan + 2.0 - kFloatMargin)) return false;
    out.clear();
    candidate_cost(graph, params, from, from, to, &out);
    if (cost != nullptr) *cost = straight;
    return true;
  }

  const GCellId corner_hv{to.tx, from.ty};  // horizontal leg first
  const GCellId corner_vh{from.tx, to.ty};  // vertical leg first
  const double cost_hv =
      pattern_candidate_cost(graph, params, from, corner_hv, to);
  const double cost_vh =
      pattern_candidate_cost(graph, params, from, corner_vh, to);
  // Any path other than these two L-shapes either is a monotone staircase
  // with >= 2 bends or detours with >= 2 extra steps and >= 1 bend.
  const double bound =
      manhattan +
      std::min(2.0 * params.turn_cost, 2.0 + params.turn_cost) - kFloatMargin;
  const bool hv_wins = cost_hv < cost_vh && cost_hv < bound;
  const bool vh_wins = cost_vh < cost_hv && cost_vh < bound;
  if (!hv_wins && !vh_wins) return false;  // tie or not provably optimal
  out.clear();
  const GCellId corner = hv_wins ? corner_hv : corner_vh;
  candidate_cost(graph, params, from, corner, to, &out);
  if (cost != nullptr) *cost = hv_wins ? cost_hv : cost_vh;
  return true;
}

}  // namespace mebl::global
