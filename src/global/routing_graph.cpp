#include "global/routing_graph.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <type_traits>
#include <utility>

namespace mebl::global {

RoutingGraph::RoutingGraph(const grid::RoutingGrid& grid, bool stitch_aware,
                           bool tiled)
    : tiles_x_(grid.tiles_x()), tiles_y_(grid.tiles_y()), tiled_(tiled) {
  const grid::CapacityModel model(grid);
  int max_cap = 0;

  if (tiled_) {
    // The capacity model is uniform along one axis: a horizontal boundary's
    // capacity is the tile row's track count times the horizontal layers,
    // and a vertical boundary's (and a tile's line-end) capacity counts the
    // stitch-plan-free tracks of the tile *column*. One entry per axis
    // therefore covers the whole grid.
    h_cap_of_ty_.resize(static_cast<std::size_t>(tiles_y_), 0);
    v_cap_of_tx_.resize(static_cast<std::size_t>(tiles_x_), 0);
    vert_cap_of_tx_.resize(static_cast<std::size_t>(tiles_x_), 0);
    for (int ty = 0; ty < tiles_y_; ++ty)
      if (tiles_x_ > 1)
        h_cap_of_ty_[static_cast<std::size_t>(ty)] =
            model.horizontal_edge_capacity(0, ty);
    for (int tx = 0; tx < tiles_x_; ++tx) {
      if (tiles_y_ > 1)
        v_cap_of_tx_[static_cast<std::size_t>(tx)] =
            stitch_aware ? model.vertical_edge_capacity(tx, 0)
                         : model.vertical_edge_capacity_no_stitch(tx, 0);
      vert_cap_of_tx_[static_cast<std::size_t>(tx)] =
          model.line_end_capacity(tx, 0);
    }
#ifndef NDEBUG
    for (int ty = 0; ty < tiles_y_; ++ty)
      for (int tx = 0; tx + 1 < tiles_x_; ++tx)
        assert(model.horizontal_edge_capacity(tx, ty) ==
               h_cap_of_ty_[static_cast<std::size_t>(ty)]);
    for (int ty = 0; ty + 1 < tiles_y_; ++ty)
      for (int tx = 0; tx < tiles_x_; ++tx)
        assert((stitch_aware
                    ? model.vertical_edge_capacity(tx, ty)
                    : model.vertical_edge_capacity_no_stitch(tx, ty)) ==
               v_cap_of_tx_[static_cast<std::size_t>(tx)]);
    for (int ty = 0; ty < tiles_y_; ++ty)
      for (int tx = 0; tx < tiles_x_; ++tx)
        assert(model.line_end_capacity(tx, ty) ==
               vert_cap_of_tx_[static_cast<std::size_t>(tx)]);
#endif
    for (const int c : h_cap_of_ty_) max_cap = std::max(max_cap, c);
    for (const int c : v_cap_of_tx_) max_cap = std::max(max_cap, c);
    for (const int c : vert_cap_of_tx_) max_cap = std::max(max_cap, c);
    seed_psi_memo(max_cap);

    h_cost0_of_ty_.resize(h_cap_of_ty_.size());
    v_cost0_of_tx_.resize(v_cap_of_tx_.size());
    vert_cost0_of_tx_.resize(vert_cap_of_tx_.size());
    for (std::size_t i = 0; i < h_cap_of_ty_.size(); ++i)
      h_cost0_of_ty_[i] = psi_lookup(1, h_cap_of_ty_[i]);
    for (std::size_t i = 0; i < v_cap_of_tx_.size(); ++i)
      v_cost0_of_tx_[i] = psi_lookup(1, v_cap_of_tx_[i]);
    for (std::size_t i = 0; i < vert_cap_of_tx_.size(); ++i)
      vert_cost0_of_tx_[i] = psi_lookup(1, vert_cap_of_tx_[i]);

    slot_of_.assign(tiles_total(), -1);
    return;
  }

  h_cap_.resize(static_cast<std::size_t>(std::max(0, tiles_x_ - 1)) * tiles_y_);
  v_cap_.resize(static_cast<std::size_t>(tiles_x_) * std::max(0, tiles_y_ - 1));
  h_dem_.assign(h_cap_.size(), 0);
  v_dem_.assign(v_cap_.size(), 0);
  vert_cap_.resize(static_cast<std::size_t>(tiles_x_) * tiles_y_);
  vert_dem_.assign(vert_cap_.size(), 0);

  for (int ty = 0; ty < tiles_y_; ++ty)
    for (int tx = 0; tx + 1 < tiles_x_; ++tx)
      h_cap_[h_index(tx, ty)] = model.horizontal_edge_capacity(tx, ty);
  for (int ty = 0; ty + 1 < tiles_y_; ++ty)
    for (int tx = 0; tx < tiles_x_; ++tx)
      v_cap_[v_index(tx, ty)] = stitch_aware
                                    ? model.vertical_edge_capacity(tx, ty)
                                    : model.vertical_edge_capacity_no_stitch(tx, ty);
  for (int ty = 0; ty < tiles_y_; ++ty)
    for (int tx = 0; tx < tiles_x_; ++tx)
      vert_cap_[t_index(tx, ty)] = model.line_end_capacity(tx, ty);

  // Seed the psi memo for every capacity present, then freeze the initial
  // (demand = 0) marginal-cost rows.
  for (const int c : h_cap_) max_cap = std::max(max_cap, c);
  for (const int c : v_cap_) max_cap = std::max(max_cap, c);
  for (const int c : vert_cap_) max_cap = std::max(max_cap, c);
  seed_psi_memo(max_cap);
  h_cost_row_.resize(h_cap_.size());
  v_cost_row_.resize(v_cap_.size());
  vert_cost_row_.resize(vert_cap_.size());
  for (std::size_t i = 0; i < h_cap_.size(); ++i)
    h_cost_row_[i] = psi_lookup(1, h_cap_[i]);
  for (std::size_t i = 0; i < v_cap_.size(); ++i)
    v_cost_row_[i] = psi_lookup(1, v_cap_[i]);
  for (std::size_t i = 0; i < vert_cap_.size(); ++i)
    vert_cost_row_[i] = psi_lookup(1, vert_cap_[i]);
}

RoutingGraph RoutingGraph::with_capacities(int tiles_x, int tiles_y,
                                           std::vector<int> h_cap,
                                           std::vector<int> v_cap,
                                           std::vector<int> vert_cap) {
  RoutingGraph g;
  g.tiles_x_ = tiles_x;
  g.tiles_y_ = tiles_y;
  assert(h_cap.size() ==
         static_cast<std::size_t>(std::max(0, tiles_x - 1)) * tiles_y);
  assert(v_cap.size() ==
         static_cast<std::size_t>(tiles_x) * std::max(0, tiles_y - 1));
  assert(vert_cap.size() == static_cast<std::size_t>(tiles_x) * tiles_y);
  g.h_cap_ = std::move(h_cap);
  g.v_cap_ = std::move(v_cap);
  g.vert_cap_ = std::move(vert_cap);
  g.h_dem_.assign(g.h_cap_.size(), 0);
  g.v_dem_.assign(g.v_cap_.size(), 0);
  g.vert_dem_.assign(g.vert_cap_.size(), 0);

  int max_cap = 0;
  for (const int c : g.h_cap_) max_cap = std::max(max_cap, c);
  for (const int c : g.v_cap_) max_cap = std::max(max_cap, c);
  for (const int c : g.vert_cap_) max_cap = std::max(max_cap, c);
  g.seed_psi_memo(max_cap);
  g.h_cost_row_.resize(g.h_cap_.size());
  g.v_cost_row_.resize(g.v_cap_.size());
  g.vert_cost_row_.resize(g.vert_cap_.size());
  for (std::size_t i = 0; i < g.h_cap_.size(); ++i)
    g.h_cost_row_[i] = g.psi_lookup(1, g.h_cap_[i]);
  for (std::size_t i = 0; i < g.v_cap_.size(); ++i)
    g.v_cost_row_[i] = g.psi_lookup(1, g.v_cap_[i]);
  for (std::size_t i = 0; i < g.vert_cap_.size(); ++i)
    g.vert_cost_row_[i] = g.psi_lookup(1, g.vert_cap_[i]);
  return g;
}

std::size_t RoutingGraph::ensure_slot(int tx, int ty) {
  const std::size_t t = t_index(tx, ty);
  std::int32_t s = slot_of_[t];
  if (s < 0) {
    s = static_cast<std::int32_t>(slots_.size());
    slot_of_[t] = s;
    slots_.emplace_back();
  }
  return static_cast<std::size_t>(s);
}

void RoutingGraph::add_h_demand(int tx, int ty, int delta) {
  if (tiled_) {
    TileSlot& slot = slots_[ensure_slot(tx, ty)];
    const int cap = h_cap_of_ty_[static_cast<std::size_t>(ty)];
    total_edge_overflow_ -= std::max(0, slot.h_dem - cap);
    slot.h_dem += delta;
    assert(slot.h_dem >= 0);
    total_edge_overflow_ += std::max(0, slot.h_dem - cap);
    // Grow the memo row to demand + 1 so memo_cost() can index it without
    // mutation on the frozen read path.
    psi_lookup(slot.h_dem + 1, cap);
    return;
  }
  const std::size_t i = h_index(tx, ty);
  int& d = h_dem_[i];
  const int cap = h_cap_[i];
  total_edge_overflow_ -= std::max(0, d - cap);
  d += delta;
  assert(d >= 0);
  total_edge_overflow_ += std::max(0, d - cap);
  h_cost_row_[i] = psi_lookup(d + 1, cap);
}

void RoutingGraph::add_v_demand(int tx, int ty, int delta) {
  if (tiled_) {
    TileSlot& slot = slots_[ensure_slot(tx, ty)];
    const int cap = v_cap_of_tx_[static_cast<std::size_t>(tx)];
    total_edge_overflow_ -= std::max(0, slot.v_dem - cap);
    slot.v_dem += delta;
    assert(slot.v_dem >= 0);
    total_edge_overflow_ += std::max(0, slot.v_dem - cap);
    psi_lookup(slot.v_dem + 1, cap);  // grow the memo row for memo_cost()
    return;
  }
  const std::size_t i = v_index(tx, ty);
  int& d = v_dem_[i];
  const int cap = v_cap_[i];
  total_edge_overflow_ -= std::max(0, d - cap);
  d += delta;
  assert(d >= 0);
  total_edge_overflow_ += std::max(0, d - cap);
  v_cost_row_[i] = psi_lookup(d + 1, cap);
}

void RoutingGraph::add_vertex_demand(int tx, int ty, int delta) {
  if (tiled_) {
    TileSlot& slot = slots_[ensure_slot(tx, ty)];
    const int cap = vert_cap_of_tx_[static_cast<std::size_t>(tx)];
    total_vertex_overflow_ -= std::max(0, slot.vert_dem - cap);
    slot.vert_dem += delta;
    assert(slot.vert_dem >= 0);
    total_vertex_overflow_ += std::max(0, slot.vert_dem - cap);
    psi_lookup(slot.vert_dem + 1, cap);  // grow the memo row for memo_cost()
    return;
  }
  const std::size_t i = t_index(tx, ty);
  int& d = vert_dem_[i];
  const int cap = vert_cap_[i];
  total_vertex_overflow_ -= std::max(0, d - cap);
  d += delta;
  assert(d >= 0);
  total_vertex_overflow_ += std::max(0, d - cap);
  vert_cost_row_[i] = psi_lookup(d + 1, cap);
}

double RoutingGraph::psi(int demand, int capacity) {
  if (capacity <= 0) return demand > 0 ? 1e9 : 0.0;
  return std::exp2(static_cast<double>(demand) / capacity) - 1.0;
}

double RoutingGraph::psi_lookup(int demand, int capacity) {
  if (capacity <= 0) return demand > 0 ? 1e9 : 0.0;
  if (demand < 0 || static_cast<std::size_t>(capacity) >= psi_memo_.size())
    return psi(demand, capacity);  // outside the memo's domain
  auto& row = psi_memo_[static_cast<std::size_t>(capacity)];
  while (row.size() <= static_cast<std::size_t>(demand))
    row.push_back(psi(static_cast<int>(row.size()), capacity));
  return row[static_cast<std::size_t>(demand)];
}

void RoutingGraph::seed_psi_memo(int max_cap) {
  psi_memo_.resize(static_cast<std::size_t>(max_cap) + 1);
}

int RoutingGraph::max_vertex_overflow() const {
  int best = 0;
  if (tiled_) {
    // One directory scan per finalize; unmaterialized tiles have demand 0.
    for (std::size_t t = 0; t < slot_of_.size(); ++t) {
      const std::int32_t s = slot_of_[t];
      if (s < 0) continue;
      const int tx = static_cast<int>(t) % tiles_x_;
      best = std::max(best, slots_[static_cast<std::size_t>(s)].vert_dem -
                                vert_cap_of_tx_[static_cast<std::size_t>(tx)]);
    }
    return std::max(0, best);
  }
  for (std::size_t i = 0; i < vert_dem_.size(); ++i)
    best = std::max(best, vert_dem_[i] - vert_cap_[i]);
  return std::max(0, best);
}

std::size_t RoutingGraph::storage_bytes() const noexcept {
  const auto bytes = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  if (tiled_)
    return bytes(h_cap_of_ty_) + bytes(v_cap_of_tx_) + bytes(vert_cap_of_tx_) +
           bytes(h_cost0_of_ty_) + bytes(v_cost0_of_tx_) +
           bytes(vert_cost0_of_tx_) + bytes(slot_of_) + bytes(slots_);
  return bytes(h_cap_) + bytes(v_cap_) + bytes(vert_cap_) + bytes(h_dem_) +
         bytes(v_dem_) + bytes(vert_dem_) + bytes(h_cost_row_) +
         bytes(v_cost_row_) + bytes(vert_cost_row_);
}

}  // namespace mebl::global
