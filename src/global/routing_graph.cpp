#include "global/routing_graph.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mebl::global {

RoutingGraph::RoutingGraph(const grid::RoutingGrid& grid, bool stitch_aware)
    : tiles_x_(grid.tiles_x()), tiles_y_(grid.tiles_y()) {
  const grid::CapacityModel model(grid);
  h_cap_.resize(static_cast<std::size_t>(std::max(0, tiles_x_ - 1)) * tiles_y_);
  v_cap_.resize(static_cast<std::size_t>(tiles_x_) * std::max(0, tiles_y_ - 1));
  h_dem_.assign(h_cap_.size(), 0);
  v_dem_.assign(v_cap_.size(), 0);
  vert_cap_.resize(static_cast<std::size_t>(tiles_x_) * tiles_y_);
  vert_dem_.assign(vert_cap_.size(), 0);

  for (int ty = 0; ty < tiles_y_; ++ty)
    for (int tx = 0; tx + 1 < tiles_x_; ++tx)
      h_cap_[h_index(tx, ty)] = model.horizontal_edge_capacity(tx, ty);
  for (int ty = 0; ty + 1 < tiles_y_; ++ty)
    for (int tx = 0; tx < tiles_x_; ++tx)
      v_cap_[v_index(tx, ty)] = stitch_aware
                                    ? model.vertical_edge_capacity(tx, ty)
                                    : model.vertical_edge_capacity_no_stitch(tx, ty);
  for (int ty = 0; ty < tiles_y_; ++ty)
    for (int tx = 0; tx < tiles_x_; ++tx)
      vert_cap_[t_index(tx, ty)] = model.line_end_capacity(tx, ty);

  // Seed the psi memo for every capacity present, then freeze the initial
  // (demand = 0) marginal-cost rows.
  int max_cap = 0;
  for (const int c : h_cap_) max_cap = std::max(max_cap, c);
  for (const int c : v_cap_) max_cap = std::max(max_cap, c);
  for (const int c : vert_cap_) max_cap = std::max(max_cap, c);
  psi_memo_.resize(static_cast<std::size_t>(max_cap) + 1);
  h_cost_row_.resize(h_cap_.size());
  v_cost_row_.resize(v_cap_.size());
  vert_cost_row_.resize(vert_cap_.size());
  for (std::size_t i = 0; i < h_cap_.size(); ++i)
    h_cost_row_[i] = psi_lookup(1, h_cap_[i]);
  for (std::size_t i = 0; i < v_cap_.size(); ++i)
    v_cost_row_[i] = psi_lookup(1, v_cap_[i]);
  for (std::size_t i = 0; i < vert_cap_.size(); ++i)
    vert_cost_row_[i] = psi_lookup(1, vert_cap_[i]);
}

void RoutingGraph::add_h_demand(int tx, int ty, int delta) {
  const std::size_t i = h_index(tx, ty);
  int& d = h_dem_[i];
  const int cap = h_cap_[i];
  total_edge_overflow_ -= std::max(0, d - cap);
  d += delta;
  assert(d >= 0);
  total_edge_overflow_ += std::max(0, d - cap);
  h_cost_row_[i] = psi_lookup(d + 1, cap);
}

void RoutingGraph::add_v_demand(int tx, int ty, int delta) {
  const std::size_t i = v_index(tx, ty);
  int& d = v_dem_[i];
  const int cap = v_cap_[i];
  total_edge_overflow_ -= std::max(0, d - cap);
  d += delta;
  assert(d >= 0);
  total_edge_overflow_ += std::max(0, d - cap);
  v_cost_row_[i] = psi_lookup(d + 1, cap);
}

void RoutingGraph::add_vertex_demand(int tx, int ty, int delta) {
  const std::size_t i = t_index(tx, ty);
  int& d = vert_dem_[i];
  const int cap = vert_cap_[i];
  total_vertex_overflow_ -= std::max(0, d - cap);
  d += delta;
  assert(d >= 0);
  total_vertex_overflow_ += std::max(0, d - cap);
  vert_cost_row_[i] = psi_lookup(d + 1, cap);
}

double RoutingGraph::psi(int demand, int capacity) {
  if (capacity <= 0) return demand > 0 ? 1e9 : 0.0;
  return std::exp2(static_cast<double>(demand) / capacity) - 1.0;
}

double RoutingGraph::psi_lookup(int demand, int capacity) {
  if (capacity <= 0) return demand > 0 ? 1e9 : 0.0;
  if (demand < 0 || static_cast<std::size_t>(capacity) >= psi_memo_.size())
    return psi(demand, capacity);  // outside the memo's domain
  auto& row = psi_memo_[static_cast<std::size_t>(capacity)];
  while (row.size() <= static_cast<std::size_t>(demand))
    row.push_back(psi(static_cast<int>(row.size()), capacity));
  return row[static_cast<std::size_t>(demand)];
}

int RoutingGraph::max_vertex_overflow() const {
  int best = 0;
  for (std::size_t i = 0; i < vert_dem_.size(); ++i)
    best = std::max(best, vert_dem_[i] - vert_cap_[i]);
  return std::max(0, best);
}

}  // namespace mebl::global
