#include "global/routing_graph.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mebl::global {

RoutingGraph::RoutingGraph(const grid::RoutingGrid& grid, bool stitch_aware)
    : tiles_x_(grid.tiles_x()), tiles_y_(grid.tiles_y()) {
  const grid::CapacityModel model(grid);
  h_cap_.resize(static_cast<std::size_t>(std::max(0, tiles_x_ - 1)) * tiles_y_);
  v_cap_.resize(static_cast<std::size_t>(tiles_x_) * std::max(0, tiles_y_ - 1));
  h_dem_.assign(h_cap_.size(), 0);
  v_dem_.assign(v_cap_.size(), 0);
  vert_cap_.resize(static_cast<std::size_t>(tiles_x_) * tiles_y_);
  vert_dem_.assign(vert_cap_.size(), 0);

  for (int ty = 0; ty < tiles_y_; ++ty)
    for (int tx = 0; tx + 1 < tiles_x_; ++tx)
      h_cap_[h_index(tx, ty)] = model.horizontal_edge_capacity(tx, ty);
  for (int ty = 0; ty + 1 < tiles_y_; ++ty)
    for (int tx = 0; tx < tiles_x_; ++tx)
      v_cap_[v_index(tx, ty)] = stitch_aware
                                    ? model.vertical_edge_capacity(tx, ty)
                                    : model.vertical_edge_capacity_no_stitch(tx, ty);
  for (int ty = 0; ty < tiles_y_; ++ty)
    for (int tx = 0; tx < tiles_x_; ++tx)
      vert_cap_[t_index(tx, ty)] = model.line_end_capacity(tx, ty);
}

void RoutingGraph::add_h_demand(int tx, int ty, int delta) {
  auto& d = h_dem_[h_index(tx, ty)];
  d += delta;
  assert(d >= 0);
}

void RoutingGraph::add_v_demand(int tx, int ty, int delta) {
  auto& d = v_dem_[v_index(tx, ty)];
  d += delta;
  assert(d >= 0);
}

void RoutingGraph::add_vertex_demand(int tx, int ty, int delta) {
  auto& d = vert_dem_[t_index(tx, ty)];
  d += delta;
  assert(d >= 0);
}

double RoutingGraph::psi(int demand, int capacity) {
  if (capacity <= 0) return demand > 0 ? 1e9 : 0.0;
  return std::exp2(static_cast<double>(demand) / capacity) - 1.0;
}

int RoutingGraph::total_vertex_overflow() const {
  int total = 0;
  for (std::size_t i = 0; i < vert_dem_.size(); ++i)
    total += std::max(0, vert_dem_[i] - vert_cap_[i]);
  return total;
}

int RoutingGraph::max_vertex_overflow() const {
  int best = 0;
  for (std::size_t i = 0; i < vert_dem_.size(); ++i)
    best = std::max(best, vert_dem_[i] - vert_cap_[i]);
  return std::max(0, best);
}

int RoutingGraph::total_edge_overflow() const {
  int total = 0;
  for (std::size_t i = 0; i < h_dem_.size(); ++i)
    total += std::max(0, h_dem_[i] - h_cap_[i]);
  for (std::size_t i = 0; i < v_dem_.size(); ++i)
    total += std::max(0, v_dem_[i] - v_cap_[i]);
  return total;
}

}  // namespace mebl::global
