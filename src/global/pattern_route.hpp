#pragma once

#include <vector>

#include "global/routing_graph.hpp"
#include "global/search_scratch.hpp"
#include "grid/gcell.hpp"

namespace mebl::global {

/// Cost of the monotone two-leg candidate path from → corner → to (each leg
/// axis-aligned; corner == from degenerates to a single straight leg),
/// accumulated with exactly the kernel's per-step arithmetic in the same
/// term order — an accepted candidate's cost is therefore bit-identical to
/// the g-value A* computes along the same path.
[[nodiscard]] double pattern_candidate_cost(const RoutingGraph& graph,
                                            const GlobalSearchParams& params,
                                            grid::GCellId from,
                                            grid::GCellId corner,
                                            grid::GCellId to);

/// L/Z pattern-route fast path of the global-routing kernel (DESIGN.md §10).
///
/// Evaluates the at-most-two one-bend monotone candidates (straight when the
/// endpoints share a row or column, else the HV and VH L-shapes) and accepts
/// one only when it is *provably the unique optimum* of the search kernel:
/// every step costs >= 1 and every congestion / bend / line-end term is
/// non-negative, so any other tile path costs at least
///   D + 2                 (straight case: all alternatives take >= 2 extra
///                          steps — direction reversals are not charged as
///                          bends, so only the step floor is counted), or
///   D + min(2·turn, 2 + turn)   (L case: a monotone staircase bends >= 2
///                          times, a detour takes >= 2 extra steps and bends
///                          >= 1 time),
/// where D is the Manhattan tile distance. A candidate strictly below that
/// admissible lower bound (minus a 1e-6 float-summation guard, and in the L
/// case strictly cheaper than its sibling) beats every alternative, so A*
/// would return exactly this path — quality is untouched while the heap,
/// and the O(states) scratch touch, are skipped entirely. Ties and
/// negative-weight configurations conservatively fall back to the kernel.
///
/// On acceptance fills `out` with the start-to-goal tile path and returns
/// true; `cost` (optional) receives the candidate cost. `from == to` is the
/// caller's trivial case and is rejected here.
bool try_pattern_route(const RoutingGraph& graph,
                       const GlobalSearchParams& params, grid::GCellId from,
                       grid::GCellId to, std::vector<grid::GCellId>& out,
                       double* cost = nullptr);

}  // namespace mebl::global
