#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "global/multilevel.hpp"
#include "global/routing_graph.hpp"
#include "global/search_scratch.hpp"
#include "netlist/netlist.hpp"

namespace mebl::exec {
class ThreadPool;
class Cancellation;
}  // namespace mebl::exec

namespace mebl::telemetry {
class Counter;
}  // namespace mebl::telemetry

namespace mebl::global {

/// Global-router knobs; the Table III / Table IV ablations toggle these.
struct GlobalRouterConfig {
  /// Derive vertical edge capacities from the stitch plan (tracks on
  /// stitching lines are unusable). Off = conventional-lithography resource
  /// estimation (the baseline router's model).
  bool stitch_aware_capacity = true;
  /// Price line-end (vertex) congestion, eq. (2)-(3). Off = the "w/o line
  /// end consideration" column of Table IV.
  bool vertex_cost = true;
  /// Multiplier on the vertex (line-end) congestion term. Line-end capacity
  /// is scarcer than edge capacity (a handful of safe tracks per tile), so
  /// pricing it at parity lets overflow through; the paper's near-zero TVOF
  /// needs the term to dominate small detours.
  double vertex_cost_weight = 8.0;
  /// Rip-up & reroute passes over subnets crossing overflowed resources.
  int reroute_passes = 6;
  /// Extra cost per bend, to prefer straight global routes.
  double turn_cost = 0.5;
  /// Subnets per batch in the batch-synchronous schedule: each batch is
  /// searched in parallel against the congestion state frozen at the batch
  /// start, then its demands are merged in index order at the batch
  /// barrier. 1 = classic sequential net-by-net routing (every net sees
  /// every earlier net's congestion). Larger batches are the parallel unit
  /// of work; the value changes the routed result slightly (staler
  /// congestion within a batch) but never its determinism — for a fixed
  /// batch size the result is bit-identical for any thread count. Part of
  /// the determinism contract: never derive this from the thread count.
  int net_batch_size = 1;
  /// Tiled/sparse congestion storage (DESIGN.md §15): demand/cost tables
  /// materialize lazily per touched tile. Bit-identical results either way;
  /// flip it on for paper-scale grids where the dense tables dominate
  /// memory.
  bool tiled_grid = false;
  /// Coarsen–route–refine multilevel pass for long subnets (DESIGN.md §15).
  MultilevelConfig multilevel;
};

/// Global route of one 2-pin subnet: a 4-connected GCell path from the tile
/// of pin_a to the tile of pin_b (single tile when both pins share one).
struct TilePath {
  netlist::NetId net = -1;
  geom::Point pin_a;
  geom::Point pin_b;
  std::vector<grid::GCellId> tiles;
  bool routed = false;
};

/// Aggregate result of the global-routing stage.
struct GlobalResult {
  std::vector<TilePath> paths;  ///< parallel to the input subnet vector
  std::int64_t wirelength = 0;  ///< total inter-tile hops
  int total_vertex_overflow = 0;   ///< TVOF, Table IV
  int max_vertex_overflow = 0;     ///< MVOF, Table IV
  int total_edge_overflow = 0;
};

/// Reverse index from overflowed routing resources (h/v edges and line-end
/// vertices) to the committed subnets crossing them, maintained at commit
/// time (DESIGN.md §10). Replaces the rip-up loop's per-pass full rescan:
/// congested(idx) answers in O(1) exactly the predicate the old
/// `is_congested` walk computed — "does subnet idx's committed path cross
/// any resource whose live demand exceeds its capacity" — because every
/// demand change propagates overflow transitions to the crossing subnets'
/// hit counts. Dirty-set selection is therefore bit-identical to the
/// rescan's, in the same index order.
class CongestionIndex {
 public:
  /// Size the index for `graph` and `num_subnets` committed paths, seeding
  /// overflow flags from the graph's current demand state. `track_vertices`
  /// mirrors GlobalRouterConfig::vertex_cost: the rescan only treated
  /// vertex overflow as congestion when line ends were priced.
  void reset(const RoutingGraph& graph, std::size_t num_subnets,
             bool track_vertices);

  /// Apply subnet `idx`'s tile path to `graph` with `sign` (+1 commit,
  /// -1 rip-up): updates edge demands, vertex (line-end) demands at the end
  /// tiles of maximal vertical runs, overflow flags, the reverse index, and
  /// the per-subnet hit counts, in one pass.
  void commit(RoutingGraph& graph, std::size_t idx,
              const std::vector<grid::GCellId>& tiles, int sign);

  /// True iff subnet `idx`'s committed path crosses at least one currently
  /// overflowed resource — the old full-rescan predicate, in O(1).
  [[nodiscard]] bool congested(std::size_t idx) const {
    return hits_[idx] > 0;
  }

 private:
  // Flat resource ids: h-edges, then v-edges, then vertices.
  [[nodiscard]] std::size_t h_id(int tx, int ty) const {
    return static_cast<std::size_t>(ty) * (tiles_x_ - 1) + tx;
  }
  [[nodiscard]] std::size_t v_id(int tx, int ty) const {
    return h_count_ + static_cast<std::size_t>(ty) * tiles_x_ + tx;
  }
  [[nodiscard]] std::size_t vert_id(int tx, int ty) const {
    return h_count_ + v_count_ + static_cast<std::size_t>(ty) * tiles_x_ + tx;
  }

  void set_overflowed(std::size_t resource, bool now);
  void add_membership(std::size_t idx,
                      const std::vector<grid::GCellId>& tiles);
  void remove_membership(std::size_t idx,
                         const std::vector<grid::GCellId>& tiles);

  int tiles_x_ = 0;
  int tiles_y_ = 0;
  std::size_t h_count_ = 0;
  std::size_t v_count_ = 0;
  bool track_vertices_ = false;
  std::vector<std::uint8_t> overflowed_;          ///< per resource
  std::vector<std::vector<std::int32_t>> crossers_;  ///< resource -> subnets
  std::vector<std::int32_t> hits_;  ///< subnet -> overflowed crossings
};

/// Stitch-aware global router (paper SIII-A): congestion-driven path search
/// on the GCell graph pricing both edge congestion and line-end (vertex)
/// congestion, scheduled by the bottom-up multilevel framework, with rip-up
/// and reroute of subnets through overflowed resources.
///
/// The search kernel (DESIGN.md §10) composes the L/Z pattern-route fast
/// path (pattern_route.hpp) with the epoch-stamped scratch A*
/// (search_scratch.hpp); per-worker thread-local scratch makes concurrent
/// batch searches allocation-free and race-free.
class GlobalRouter {
 public:
  GlobalRouter(const grid::RoutingGrid& grid, GlobalRouterConfig config = {});

  /// Reports batch completion during routing: (subnets routed so far,
  /// total subnets).
  using ProgressFn = std::function<void(std::size_t, std::size_t)>;

  /// Route all subnets (produced by netlist::decompose_all). Demands
  /// accumulate in graph(); call once per instance.
  ///
  /// `pool` parallelizes the search phase of each net batch (null = run on
  /// the calling thread; the routed result is identical either way).
  /// `cancel` stops the scheduling of further batches; already-committed
  /// paths are kept and the partial result returned. `progress` fires after
  /// every committed batch.
  GlobalResult route(const std::vector<netlist::Subnet>& subnets,
                     exec::ThreadPool* pool = nullptr,
                     const exec::Cancellation* cancel = nullptr,
                     const ProgressFn& progress = {});

  // --- incremental (ECO) rerouting -----------------------------------------
  // A resident design holds one GlobalRouter whose graph carries the
  // committed demand of the current GlobalResult. An ECO rips up a dirty
  // closure of subnets and reroutes only that closure against the untouched
  // remainder (DESIGN.md §12). Bit-identity contract: seed() followed by
  // rip_dirty_closure() + reroute_subset() produces the same GlobalResult
  // whether the router is long-lived or freshly seeded from a saved state,
  // because both read identical demand and the schedules are index-ordered.

  /// Rebuild the demand state from a previously-routed result: fresh graph,
  /// then commit every routed path in index order. After this the router is
  /// resident for `result` and ready for rip_dirty_closure().
  void seed(const GlobalResult& result);

  /// Rip up the targets and return the dirty closure in ascending index
  /// order: the targets plus every committed subnet still crossing an
  /// overflowed resource after the rip (those must re-negotiate, since the
  /// freed capacity may relieve them — and rerouting them may in turn free
  /// more). Rip-up only lowers demand, so one ascending scan is exact. All
  /// closure paths are off the graph on return; the non-closure remainder
  /// keeps its committed demand.
  [[nodiscard]] std::vector<std::size_t> rip_dirty_closure(
      GlobalResult& result, const std::vector<std::size_t>& targets);

  /// Reroute exactly the (ripped) closure subnets batch-synchronously in
  /// index order against the live demand, run the escalating reroute passes
  /// over the whole result, and recompute the aggregate fields. `dirty`
  /// must be ascending (rip_dirty_closure's order).
  void reroute_subset(const std::vector<netlist::Subnet>& subnets,
                      GlobalResult& result,
                      const std::vector<std::size_t>& dirty,
                      exec::ThreadPool* pool = nullptr,
                      const exec::Cancellation* cancel = nullptr);

  [[nodiscard]] const RoutingGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const grid::RoutingGrid& grid() const noexcept { return *grid_; }

 private:
  /// Shortest-path search for one subnet confined to `region` (in tile
  /// coordinates), pricing line-end congestion at `vertex_weight` (the
  /// reroute passes escalate it per pass without mutating the config, so
  /// concurrent searches of one batch all see the same weight). Tries the
  /// pattern-route fast path, then the scratch A* kernel on the calling
  /// worker's thread-local scratch. Returns an empty vector when no path
  /// exists.
  /// With `corridor = true` the A* kernel is confined to the corridor mask
  /// the caller stamped into this thread's scratch (multilevel refinement);
  /// the pattern fast path still runs first, since an accepted pattern
  /// candidate is a whole-grid optimum.
  [[nodiscard]] std::vector<grid::GCellId> search(grid::GCellId from,
                                                  grid::GCellId to,
                                                  const geom::Rect& region,
                                                  double vertex_weight,
                                                  bool corridor = false) const;

  /// Sequential coarse pass of the multilevel schedule: route every subnet
  /// whose tile bbox spans >= multilevel.min_span on the coarsened graph
  /// (committing coarse demand net by net, in index order, so long nets
  /// spread out), and return the per-subnet coarse paths (empty vector =
  /// not a coarse candidate). Deterministic: runs on the calling thread
  /// against its own coarse graph.
  [[nodiscard]] std::vector<std::vector<grid::GCellId>> plan_coarse(
      const std::vector<netlist::Subnet>& subnets,
      const std::vector<geom::Rect>& tile_bboxes) const;

  /// Commit (+1) or rip up (-1) subnet `idx`'s path: demand bookkeeping and
  /// the congestion index move together.
  void commit(std::size_t idx, const TilePath& path, int sign);

  /// Run `body(i)` for i in [lo, hi) on the pool (or inline when null),
  /// honouring `cancel`. The parallel unit of every batch-synchronous phase.
  void run_phase(exec::ThreadPool* pool, const exec::Cancellation* cancel,
                 std::size_t lo, std::size_t hi,
                 const std::function<void(std::size_t)>& body) const;

  /// The negotiated-congestion rip-up & reroute passes over `result`,
  /// shared by route() and reroute_subset().
  void run_reroute_passes(GlobalResult& result, exec::ThreadPool* pool,
                          const exec::Cancellation* cancel);

  /// Recompute wirelength and the overflow aggregates from the live graph.
  void finalize_totals(GlobalResult& result) const;

  const grid::RoutingGrid* grid_;
  GlobalRouterConfig config_;
  RoutingGraph graph_;
  CongestionIndex congestion_;

  // Telemetry endpoints, resolved once at construction (stable addresses,
  // thread-safe sinks). Written from concurrent batch searches.
  telemetry::Counter* pops_counter_;
  telemetry::Counter* pattern_hits_counter_;
  telemetry::Counter* scratch_reuses_counter_;
  telemetry::Counter* ml_coarse_counter_;
  telemetry::Counter* ml_corridor_hits_counter_;
  telemetry::Counter* ml_corridor_fallbacks_counter_;
};

}  // namespace mebl::global
