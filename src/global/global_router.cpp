#include "global/global_router.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <queue>

#include "exec/cancellation.hpp"
#include "exec/thread_pool.hpp"
#include "telemetry/keys.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace mebl::global {

using geom::Rect;
using grid::GCellId;

GlobalRouter::GlobalRouter(const grid::RoutingGrid& grid,
                           GlobalRouterConfig config)
    : grid_(&grid),
      config_(config),
      graph_(grid, config.stitch_aware_capacity) {}

namespace {

/// Search state: tile plus the orientation of the move that entered it
/// (0 = start, 1 = horizontal, 2 = vertical). Direction matters because
/// line-end (vertex) costs are incurred where vertical runs start and end.
constexpr int kDirStart = 0;
constexpr int kDirH = 1;
constexpr int kDirV = 2;

struct HeapEntry {
  double f;
  double g;
  int state;
  friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
    return a.f > b.f;
  }
};

}  // namespace

std::vector<GCellId> GlobalRouter::search(GCellId from, GCellId to,
                                          const Rect& region,
                                          double vertex_weight) const {
  if (from == to) return {from};
  const int w = region.width();
  const int h = region.height();
  const auto in_region = [&](int tx, int ty) {
    return tx >= region.xlo && tx <= region.xhi && ty >= region.ylo &&
           ty <= region.yhi;
  };
  assert(in_region(from.tx, from.ty) && in_region(to.tx, to.ty));

  const auto state_of = [&](int tx, int ty, int dir) {
    return ((ty - region.ylo) * w + (tx - region.xlo)) * 3 + dir;
  };
  const std::size_t num_states = static_cast<std::size_t>(w) * h * 3;
  std::vector<double> dist(num_states,
                           std::numeric_limits<double>::infinity());
  std::vector<int> parent(num_states, -1);

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  const auto heuristic = [&](int tx, int ty) {
    return static_cast<double>(std::abs(tx - to.tx) + std::abs(ty - to.ty));
  };
  const int start = state_of(from.tx, from.ty, kDirStart);
  dist[static_cast<std::size_t>(start)] = 0.0;
  heap.push({heuristic(from.tx, from.ty), 0.0, start});

  static constexpr int kDx[4] = {1, -1, 0, 0};
  static constexpr int kDy[4] = {0, 0, 1, -1};

  int goal_state = -1;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.g > dist[static_cast<std::size_t>(top.state)]) continue;
    const int cell = top.state / 3;
    const int dir = top.state % 3;
    const int tx = region.xlo + cell % w;
    const int ty = region.ylo + cell / w;
    if (tx == to.tx && ty == to.ty) {
      goal_state = top.state;
      break;
    }
    for (int m = 0; m < 4; ++m) {
      const int nx = tx + kDx[m];
      const int ny = ty + kDy[m];
      if (!in_region(nx, ny)) continue;
      const bool horizontal = m < 2;
      double step = 1.0;
      // Edge congestion.
      if (horizontal)
        step += graph_.h_cost(std::min(tx, nx), ty);
      else
        step += graph_.v_cost(tx, std::min(ty, ny));
      // Bend penalty.
      if (dir != kDirStart && ((dir == kDirH) != horizontal))
        step += config_.turn_cost;
      // Line-end (vertex) congestion: a vertical run starts at the current
      // tile when a vertical move follows a horizontal one (or the start),
      // and ends there when a horizontal move follows a vertical one.
      if (config_.vertex_cost) {
        if (!horizontal && dir != kDirV)
          step += vertex_weight * graph_.vertex_cost(tx, ty);
        if (horizontal && dir == kDirV)
          step += vertex_weight * graph_.vertex_cost(tx, ty);
        // Arriving at the target vertically leaves a line end there.
        if (!horizontal && nx == to.tx && ny == to.ty)
          step += vertex_weight * graph_.vertex_cost(nx, ny);
      }
      const int next = state_of(nx, ny, horizontal ? kDirH : kDirV);
      const double ng = top.g + step;
      if (ng < dist[static_cast<std::size_t>(next)]) {
        dist[static_cast<std::size_t>(next)] = ng;
        parent[static_cast<std::size_t>(next)] = top.state;
        heap.push({ng + heuristic(nx, ny), ng, next});
      }
    }
  }
  if (goal_state < 0) return {};

  std::vector<GCellId> tiles;
  for (int s = goal_state; s != -1; s = parent[static_cast<std::size_t>(s)]) {
    const int cell = s / 3;
    const GCellId id{region.xlo + cell % w, region.ylo + cell / w};
    if (tiles.empty() || !(tiles.back() == id)) tiles.push_back(id);
  }
  std::reverse(tiles.begin(), tiles.end());
  return tiles;
}

void GlobalRouter::commit(const TilePath& path, int sign) {
  const auto& tiles = path.tiles;
  for (std::size_t i = 0; i + 1 < tiles.size(); ++i) {
    const GCellId a = tiles[i];
    const GCellId b = tiles[i + 1];
    if (a.ty == b.ty)
      graph_.add_h_demand(std::min(a.tx, b.tx), a.ty, sign);
    else
      graph_.add_v_demand(a.tx, std::min(a.ty, b.ty), sign);
  }
  // Vertical line ends: both end tiles of every maximal vertical run.
  std::size_t i = 0;
  while (i + 1 < tiles.size()) {
    if (tiles[i].tx == tiles[i + 1].tx) {  // vertical run starts
      const std::size_t run_start = i;
      while (i + 1 < tiles.size() && tiles[i].tx == tiles[i + 1].tx) ++i;
      graph_.add_vertex_demand(tiles[run_start].tx, tiles[run_start].ty, sign);
      graph_.add_vertex_demand(tiles[i].tx, tiles[i].ty, sign);
    } else {
      ++i;
    }
  }
}

GlobalResult GlobalRouter::route(const std::vector<netlist::Subnet>& subnets,
                                 exec::ThreadPool* pool,
                                 const exec::Cancellation* cancel,
                                 const ProgressFn& progress) {
  TELEMETRY_SPAN("global.route");
  GlobalResult result;
  result.paths.resize(subnets.size());

  const auto stop_requested = [&] {
    return cancel != nullptr && cancel->stop_requested();
  };
  // Parallel phase of one batch: body(i) for i in [lo, hi), on the pool
  // when given. The body only reads the congestion graph (frozen at the
  // batch start) and writes per-index slots, so the outcome is identical
  // for any thread count — demands are merged afterwards, in index order,
  // by the sequential barrier code below.
  const auto parallel_phase =
      [&](std::size_t lo, std::size_t hi,
          const std::function<void(std::size_t)>& body) {
        if (pool != nullptr) {
          pool->parallel_for(lo, hi, body, cancel);
        } else {
          for (std::size_t i = lo; i < hi && !stop_requested(); ++i) body(i);
        }
      };
  const std::size_t batch = config_.net_batch_size > 0
                                ? static_cast<std::size_t>(config_.net_batch_size)
                                : 1;

  // Bottom-up multilevel schedule: bucket subnets by the level at which
  // they become local, then route level by level.
  std::vector<Rect> tile_bboxes;
  tile_bboxes.reserve(subnets.size());
  for (const auto& subnet : subnets) {
    const Rect bbox = subnet.bbox();
    tile_bboxes.push_back(Rect{grid_->tile_of_x(bbox.xlo),
                               grid_->tile_of_y(bbox.ylo),
                               grid_->tile_of_x(bbox.xhi),
                               grid_->tile_of_y(bbox.yhi)});
  }
  const MultilevelScheduler scheduler(graph_.tiles_x(), graph_.tiles_y());
  const auto buckets = scheduler.schedule(tile_bboxes);

  const Rect full{0, 0, graph_.tiles_x() - 1, graph_.tiles_y() - 1};
  std::size_t committed = 0;
  for (int level = 0; level < scheduler.num_levels() && !stop_requested();
       ++level) {
    TELEMETRY_SPAN("global.level");
    const auto& bucket = buckets[static_cast<std::size_t>(level)];
    for (std::size_t lo = 0; lo < bucket.size() && !stop_requested();
         lo += batch) {
      const std::size_t hi = std::min(bucket.size(), lo + batch);
      parallel_phase(lo, hi, [&](std::size_t i) {
        const std::size_t idx = bucket[i];
        const auto& subnet = subnets[idx];
        TilePath& path = result.paths[idx];
        path.net = subnet.net;
        path.pin_a = subnet.a;
        path.pin_b = subnet.b;
        // Allow one tile of margin around the cluster for detours.
        const Rect region = scheduler.cluster_region(tile_bboxes[idx], level)
                                .inflated(1)
                                .intersect(full);
        const GCellId from{grid_->tile_of_x(subnet.a.x),
                           grid_->tile_of_y(subnet.a.y)};
        const GCellId to{grid_->tile_of_x(subnet.b.x),
                         grid_->tile_of_y(subnet.b.y)};
        path.tiles = search(from, to, region, config_.vertex_cost_weight);
        if (path.tiles.empty())
          path.tiles = search(from, to, full, config_.vertex_cost_weight);
        path.routed = !path.tiles.empty();
      });
      // Batch barrier: merge the batch's demands in index order.
      for (std::size_t i = lo; i < hi; ++i) {
        const TilePath& path = result.paths[bucket[i]];
        if (path.routed) {
          commit(path, +1);
          ++committed;
        }
      }
      if (progress) progress(committed, subnets.size());
    }
  }

  // Rip-up & reroute subnets crossing overflowed edges or vertices. The
  // congestion weight escalates each pass (negotiated-congestion style) so
  // stubborn overflows eventually justify longer detours.
  const double base_vertex_weight = config_.vertex_cost_weight;
  telemetry::Counter& rerouted_counter =
      telemetry::counter(telemetry::keys::kGlobalRerouted);
  telemetry::Counter& passes_counter =
      telemetry::counter(telemetry::keys::kGlobalReroutePasses);
  const auto is_congested = [&](const TilePath& path) {
    for (std::size_t i = 0; i + 1 < path.tiles.size(); ++i) {
      const GCellId a = path.tiles[i];
      const GCellId b = path.tiles[i + 1];
      if (a.ty == b.ty) {
        const int tx = std::min(a.tx, b.tx);
        if (graph_.h_demand(tx, a.ty) > graph_.h_capacity(tx, a.ty))
          return true;
      } else {
        const int ty = std::min(a.ty, b.ty);
        if (graph_.v_demand(a.tx, ty) > graph_.v_capacity(a.tx, ty))
          return true;
      }
    }
    if (config_.vertex_cost) {
      for (const GCellId t : path.tiles)
        if (graph_.vertex_demand(t.tx, t.ty) > graph_.vertex_capacity(t.tx, t.ty))
          return true;
    }
    return false;
  };

  for (int pass = 0; pass < config_.reroute_passes && !stop_requested();
       ++pass) {
    if (graph_.total_edge_overflow() == 0 &&
        graph_.total_vertex_overflow() == 0)
      break;
    TELEMETRY_SPAN("global.reroute_pass");
    passes_counter.add(1);
    // Escalate the line-end price per pass as a local, not by mutating
    // config_: search() runs concurrently within a batch, and an in-place
    // write would also leak a stale weight on early exit.
    const double pass_vertex_weight = base_vertex_weight * (1 << (pass + 1));
    int rerouted = 0;
    // Batch-synchronous rip-up & reroute: walk the paths in index order,
    // gathering the next `batch` subnets that are congested against the
    // *live* demand state; rip the whole gathered batch up, search its
    // replacements in parallel against the post-rip-up state, then merge
    // the new demands in index order at the barrier. Batch size 1
    // reproduces the classic one-net-at-a-time schedule exactly.
    std::size_t cursor = 0;
    std::vector<std::size_t> gathered;
    std::vector<std::vector<GCellId>> fresh;
    while (cursor < result.paths.size() && !stop_requested()) {
      gathered.clear();
      while (cursor < result.paths.size() && gathered.size() < batch) {
        const TilePath& path = result.paths[cursor];
        if (path.routed && is_congested(path)) gathered.push_back(cursor);
        ++cursor;
      }
      if (gathered.empty()) continue;
      for (const std::size_t idx : gathered) commit(result.paths[idx], -1);
      fresh.assign(gathered.size(), {});
      parallel_phase(0, gathered.size(), [&](std::size_t i) {
        const TilePath& path = result.paths[gathered[i]];
        // Search within the current path's neighbourhood; detours of a few
        // tiles suffice to move line ends out of hot tiles.
        const GCellId seed = path.tiles.front();
        Rect region{seed.tx, seed.ty, seed.tx, seed.ty};
        for (const GCellId t : path.tiles)
          region = region.hull(Rect{t.tx, t.ty, t.tx, t.ty});
        region = region.inflated(4).intersect(full);
        fresh[i] = search(path.tiles.front(), path.tiles.back(), region,
                          pass_vertex_weight);
      });
      for (std::size_t i = 0; i < gathered.size(); ++i) {
        TilePath& path = result.paths[gathered[i]];
        if (!fresh[i].empty()) path.tiles = std::move(fresh[i]);
        commit(path, +1);
        ++rerouted;
      }
    }
    rerouted_counter.add(rerouted);
    util::log_info() << "global reroute pass " << pass << ": " << rerouted
                     << " subnets";
    if (rerouted == 0) break;
  }

  for (const auto& path : result.paths)
    if (path.routed)
      result.wirelength += static_cast<std::int64_t>(path.tiles.size()) - 1;
  result.total_vertex_overflow = graph_.total_vertex_overflow();
  result.max_vertex_overflow = graph_.max_vertex_overflow();
  result.total_edge_overflow = graph_.total_edge_overflow();
  return result;
}

}  // namespace mebl::global
