#include "global/global_router.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>

#include "exec/cancellation.hpp"
#include "exec/thread_pool.hpp"
#include "global/pattern_route.hpp"
#include "telemetry/keys.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace mebl::global {

using geom::Rect;
using grid::GCellId;

namespace {

/// One scratch per pool worker (and one for the calling thread): searches of
/// a batch run concurrently, each on its own thread's scratch, against the
/// congestion rows frozen at the batch barrier.
thread_local GlobalSearchScratch tl_scratch;  // NOLINT(cert-err58-cpp)

/// Walk the h/v edges of a committed tile path.
template <typename Fn>
void for_each_edge(const std::vector<GCellId>& tiles, Fn&& fn) {
  for (std::size_t i = 0; i + 1 < tiles.size(); ++i) {
    const GCellId a = tiles[i];
    const GCellId b = tiles[i + 1];
    if (a.ty == b.ty)
      fn(true, std::min(a.tx, b.tx), a.ty);
    else
      fn(false, a.tx, std::min(a.ty, b.ty));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// CongestionIndex

void CongestionIndex::reset(const RoutingGraph& graph, std::size_t num_subnets,
                            bool track_vertices) {
  tiles_x_ = graph.tiles_x();
  tiles_y_ = graph.tiles_y();
  h_count_ = static_cast<std::size_t>(std::max(0, tiles_x_ - 1)) * tiles_y_;
  v_count_ = static_cast<std::size_t>(tiles_x_) * std::max(0, tiles_y_ - 1);
  track_vertices_ = track_vertices;
  const std::size_t vert_count =
      static_cast<std::size_t>(tiles_x_) * tiles_y_;
  overflowed_.assign(h_count_ + v_count_ + vert_count, 0);
  crossers_.assign(overflowed_.size(), {});
  hits_.assign(num_subnets, 0);
  for (int ty = 0; ty < tiles_y_; ++ty)
    for (int tx = 0; tx + 1 < tiles_x_; ++tx)
      overflowed_[h_id(tx, ty)] =
          graph.h_demand(tx, ty) > graph.h_capacity(tx, ty) ? 1 : 0;
  for (int ty = 0; ty + 1 < tiles_y_; ++ty)
    for (int tx = 0; tx < tiles_x_; ++tx)
      overflowed_[v_id(tx, ty)] =
          graph.v_demand(tx, ty) > graph.v_capacity(tx, ty) ? 1 : 0;
  for (int ty = 0; ty < tiles_y_; ++ty)
    for (int tx = 0; tx < tiles_x_; ++tx)
      overflowed_[vert_id(tx, ty)] =
          graph.vertex_demand(tx, ty) > graph.vertex_capacity(tx, ty) ? 1 : 0;
}

void CongestionIndex::set_overflowed(std::size_t resource, bool now) {
  if (static_cast<bool>(overflowed_[resource]) == now) return;
  overflowed_[resource] = now ? 1 : 0;
  // Every entry is one crossing (a path crossing twice appears twice), so
  // hit counts stay exact under multiplicity.
  for (const std::int32_t subnet : crossers_[resource])
    hits_[static_cast<std::size_t>(subnet)] += now ? 1 : -1;
}

void CongestionIndex::add_membership(std::size_t idx,
                                     const std::vector<GCellId>& tiles) {
  const auto join = [&](std::size_t r) {
    crossers_[r].push_back(static_cast<std::int32_t>(idx));
    if (overflowed_[r] != 0) ++hits_[idx];
  };
  for_each_edge(tiles, [&](bool horizontal, int tx, int ty) {
    join(horizontal ? h_id(tx, ty) : v_id(tx, ty));
  });
  // The rescan tested vertex overflow on *every* tile of the path (not just
  // the line-end tiles where demand was added), so membership covers them
  // all — pass-through tiles included.
  if (track_vertices_)
    for (const GCellId t : tiles) join(vert_id(t.tx, t.ty));
}

void CongestionIndex::remove_membership(std::size_t idx,
                                        const std::vector<GCellId>& tiles) {
  const auto leave = [&](std::size_t r) {
    auto& list = crossers_[r];
    const auto it = std::find(list.begin(), list.end(),
                              static_cast<std::int32_t>(idx));
    assert(it != list.end());
    *it = list.back();  // order is irrelevant: hits_ is a pure count
    list.pop_back();
    if (overflowed_[r] != 0) --hits_[idx];
  };
  for_each_edge(tiles, [&](bool horizontal, int tx, int ty) {
    leave(horizontal ? h_id(tx, ty) : v_id(tx, ty));
  });
  if (track_vertices_)
    for (const GCellId t : tiles) leave(vert_id(t.tx, t.ty));
}

void CongestionIndex::commit(RoutingGraph& graph, std::size_t idx,
                             const std::vector<GCellId>& tiles, int sign) {
  // Rip-up drops membership first so the overflow transitions below no
  // longer touch this subnet's own hit count.
  if (sign < 0) remove_membership(idx, tiles);
  for_each_edge(tiles, [&](bool horizontal, int tx, int ty) {
    if (horizontal) {
      graph.add_h_demand(tx, ty, sign);
      set_overflowed(h_id(tx, ty),
                     graph.h_demand(tx, ty) > graph.h_capacity(tx, ty));
    } else {
      graph.add_v_demand(tx, ty, sign);
      set_overflowed(v_id(tx, ty),
                     graph.v_demand(tx, ty) > graph.v_capacity(tx, ty));
    }
  });
  // Vertical line ends: both end tiles of every maximal vertical run.
  const auto add_vertex = [&](int tx, int ty) {
    graph.add_vertex_demand(tx, ty, sign);
    set_overflowed(vert_id(tx, ty),
                   graph.vertex_demand(tx, ty) > graph.vertex_capacity(tx, ty));
  };
  std::size_t i = 0;
  while (i + 1 < tiles.size()) {
    if (tiles[i].tx == tiles[i + 1].tx) {  // vertical run starts
      const std::size_t run_start = i;
      while (i + 1 < tiles.size() && tiles[i].tx == tiles[i + 1].tx) ++i;
      add_vertex(tiles[run_start].tx, tiles[run_start].ty);
      add_vertex(tiles[i].tx, tiles[i].ty);
    } else {
      ++i;
    }
  }
  if (sign > 0) add_membership(idx, tiles);
}

// ---------------------------------------------------------------------------
// GlobalRouter

GlobalRouter::GlobalRouter(const grid::RoutingGrid& grid,
                           GlobalRouterConfig config)
    : grid_(&grid),
      config_(config),
      graph_(grid, config.stitch_aware_capacity, config.tiled_grid),
      pops_counter_(&telemetry::counter(telemetry::keys::kGlobalSearchPops)),
      pattern_hits_counter_(
          &telemetry::counter(telemetry::keys::kGlobalPatternHits)),
      scratch_reuses_counter_(
          &telemetry::counter(telemetry::keys::kGlobalScratchReuses)),
      ml_coarse_counter_(&telemetry::counter(telemetry::keys::kMlCoarseNets)),
      ml_corridor_hits_counter_(
          &telemetry::counter(telemetry::keys::kMlCorridorHits)),
      ml_corridor_fallbacks_counter_(
          &telemetry::counter(telemetry::keys::kMlCorridorFallbacks)) {}

std::vector<GCellId> GlobalRouter::search(GCellId from, GCellId to,
                                          const Rect& region,
                                          double vertex_weight,
                                          bool corridor) const {
  if (from == to) return {from};
  GlobalSearchScratch& scratch = tl_scratch;
  const GlobalSearchParams params{config_.turn_cost, config_.vertex_cost,
                                  vertex_weight};
  // Fast path: a provably-optimal one-bend candidate skips the heap (and
  // the scratch) entirely. An accepted candidate is a *whole-grid* optimum,
  // so corridor confinement never needs to reject it.
  if (try_pattern_route(graph_, params, from, to, scratch.path)) {
    pattern_hits_counter_->add(1);
    return {scratch.path.begin(), scratch.path.end()};
  }
  const bool found = search_tiles_astar(graph_, params, from, to, region,
                                        scratch, nullptr, corridor);
  pops_counter_->add(scratch.last_pops);
  if (scratch.last_reused) scratch_reuses_counter_->add(1);
  if (!found) return {};
  return {scratch.path.begin(), scratch.path.end()};
}

std::vector<std::vector<GCellId>> GlobalRouter::plan_coarse(
    const std::vector<netlist::Subnet>& subnets,
    const std::vector<Rect>& tile_bboxes) const {
  TELEMETRY_SPAN("global.ml.coarse");
  std::vector<std::vector<GCellId>> corridors(subnets.size());
  const int factor = std::max(2, config_.multilevel.coarsen_factor);
  RoutingGraph coarse = coarsen_graph(graph_, factor);
  const Rect coarse_full{0, 0, coarse.tiles_x() - 1, coarse.tiles_y() - 1};
  const GlobalSearchParams params{config_.turn_cost, config_.vertex_cost,
                                  config_.vertex_cost_weight};
  GlobalSearchScratch scratch;
  std::int64_t coarse_nets = 0;
  for (std::size_t idx = 0; idx < subnets.size(); ++idx) {
    const Rect& bbox = tile_bboxes[idx];
    const auto span =
        std::max(bbox.xhi - bbox.xlo, bbox.yhi - bbox.ylo);
    if (span < config_.multilevel.min_span) continue;
    const auto& subnet = subnets[idx];
    const GCellId cfrom{grid_->tile_of_x(subnet.a.x) / factor,
                        grid_->tile_of_y(subnet.a.y) / factor};
    const GCellId cto{grid_->tile_of_x(subnet.b.x) / factor,
                      grid_->tile_of_y(subnet.b.y) / factor};
    std::vector<GCellId> cells;
    if (try_pattern_route(coarse, params, cfrom, cto, scratch.path)) {
      cells.assign(scratch.path.begin(), scratch.path.end());
    } else if (search_tiles_astar(coarse, params, cfrom, cto, coarse_full,
                                  scratch)) {
      cells.assign(scratch.path.begin(), scratch.path.end());
    }
    if (cells.empty()) continue;
    commit_coarse_path(coarse, cells, +1);
    corridors[idx] = std::move(cells);
    ++coarse_nets;
  }
  ml_coarse_counter_->add(coarse_nets);
  return corridors;
}

void GlobalRouter::commit(std::size_t idx, const TilePath& path, int sign) {
  congestion_.commit(graph_, idx, path.tiles, sign);
}

void GlobalRouter::run_phase(
    exec::ThreadPool* pool, const exec::Cancellation* cancel, std::size_t lo,
    std::size_t hi, const std::function<void(std::size_t)>& body) const {
  // The body only reads the congestion graph (frozen at the batch start)
  // and writes per-index slots, so the outcome is identical for any thread
  // count — demands are merged afterwards, in index order, by the
  // sequential barrier code at each call site.
  if (pool != nullptr) {
    pool->parallel_for(lo, hi, body, cancel);
  } else {
    for (std::size_t i = lo;
         i < hi && !(cancel != nullptr && cancel->stop_requested()); ++i)
      body(i);
  }
}

void GlobalRouter::run_reroute_passes(GlobalResult& result,
                                      exec::ThreadPool* pool,
                                      const exec::Cancellation* cancel) {
  // Rip-up & reroute subnets crossing overflowed edges or vertices. The
  // congestion weight escalates each pass (negotiated-congestion style) so
  // stubborn overflows eventually justify longer detours.
  const auto stop_requested = [&] {
    return cancel != nullptr && cancel->stop_requested();
  };
  const std::size_t batch =
      config_.net_batch_size > 0
          ? static_cast<std::size_t>(config_.net_batch_size)
          : 1;
  const Rect full{0, 0, graph_.tiles_x() - 1, graph_.tiles_y() - 1};
  const double base_vertex_weight = config_.vertex_cost_weight;
  telemetry::Counter& rerouted_counter =
      telemetry::counter(telemetry::keys::kGlobalRerouted);
  telemetry::Counter& passes_counter =
      telemetry::counter(telemetry::keys::kGlobalReroutePasses);

  for (int pass = 0; pass < config_.reroute_passes && !stop_requested();
       ++pass) {
    if (graph_.total_edge_overflow() == 0 &&
        graph_.total_vertex_overflow() == 0)
      break;
    TELEMETRY_SPAN("global.reroute_pass");
    passes_counter.add(1);
    // Escalate the line-end price per pass as a local, not by mutating
    // config_: search() runs concurrently within a batch, and an in-place
    // write would also leak a stale weight on early exit.
    const double pass_vertex_weight = base_vertex_weight * (1 << (pass + 1));
    int rerouted = 0;
    // Batch-synchronous rip-up & reroute: walk the paths in index order,
    // gathering the next `batch` subnets that are congested against the
    // *live* demand state (an O(1) dirty-set lookup: the congestion index
    // tracks overflow transitions as earlier batches commit); rip the whole
    // gathered batch up, search its replacements in parallel against the
    // post-rip-up state, then merge the new demands in index order at the
    // barrier. Batch size 1 reproduces the classic one-net-at-a-time
    // schedule exactly.
    std::size_t cursor = 0;
    std::vector<std::size_t> gathered;
    std::vector<std::vector<GCellId>> fresh;
    while (cursor < result.paths.size() && !stop_requested()) {
      gathered.clear();
      while (cursor < result.paths.size() && gathered.size() < batch) {
        const TilePath& path = result.paths[cursor];
        if (path.routed && congestion_.congested(cursor))
          gathered.push_back(cursor);
        ++cursor;
      }
      if (gathered.empty()) continue;
      for (const std::size_t idx : gathered)
        commit(idx, result.paths[idx], -1);
      fresh.assign(gathered.size(), {});
      run_phase(pool, cancel, 0, gathered.size(), [&](std::size_t i) {
        const TilePath& path = result.paths[gathered[i]];
        // Search within the current path's neighbourhood; detours of a few
        // tiles suffice to move line ends out of hot tiles.
        const GCellId seed = path.tiles.front();
        Rect region{seed.tx, seed.ty, seed.tx, seed.ty};
        for (const GCellId t : path.tiles)
          region = region.hull(Rect{t.tx, t.ty, t.tx, t.ty});
        region = region.inflated(4).intersect(full);
        fresh[i] = search(path.tiles.front(), path.tiles.back(), region,
                          pass_vertex_weight);
        // A hull-region search that fails must not silently re-commit the
        // congested path: fall back to the full grid, exactly like the
        // initial pass.
        if (fresh[i].empty())
          fresh[i] = search(path.tiles.front(), path.tiles.back(), full,
                            pass_vertex_weight);
      });
      for (std::size_t i = 0; i < gathered.size(); ++i) {
        TilePath& path = result.paths[gathered[i]];
        if (!fresh[i].empty()) path.tiles = std::move(fresh[i]);
        commit(gathered[i], path, +1);
        ++rerouted;
      }
    }
    rerouted_counter.add(rerouted);
    util::log_info() << "global reroute pass " << pass << ": " << rerouted
                     << " subnets";
    if (rerouted == 0) break;
  }
}

void GlobalRouter::finalize_totals(GlobalResult& result) const {
  result.wirelength = 0;
  for (const auto& path : result.paths)
    if (path.routed)
      result.wirelength += static_cast<std::int64_t>(path.tiles.size()) - 1;
  result.total_vertex_overflow = graph_.total_vertex_overflow();
  result.max_vertex_overflow = graph_.max_vertex_overflow();
  result.total_edge_overflow = graph_.total_edge_overflow();
}

GlobalResult GlobalRouter::route(const std::vector<netlist::Subnet>& subnets,
                                 exec::ThreadPool* pool,
                                 const exec::Cancellation* cancel,
                                 const ProgressFn& progress) {
  TELEMETRY_SPAN("global.route");
  GlobalResult result;
  result.paths.resize(subnets.size());
  congestion_.reset(graph_, subnets.size(), config_.vertex_cost);

  const auto stop_requested = [&] {
    return cancel != nullptr && cancel->stop_requested();
  };
  const std::size_t batch = config_.net_batch_size > 0
                                ? static_cast<std::size_t>(config_.net_batch_size)
                                : 1;

  // Bottom-up multilevel schedule: bucket subnets by the level at which
  // they become local, then route level by level.
  std::vector<Rect> tile_bboxes;
  tile_bboxes.reserve(subnets.size());
  for (const auto& subnet : subnets) {
    const Rect bbox = subnet.bbox();
    tile_bboxes.push_back(Rect{grid_->tile_of_x(bbox.xlo),
                               grid_->tile_of_y(bbox.ylo),
                               grid_->tile_of_x(bbox.xhi),
                               grid_->tile_of_y(bbox.yhi)});
  }
  const MultilevelScheduler scheduler(graph_.tiles_x(), graph_.tiles_y());
  const auto buckets = scheduler.schedule(tile_bboxes);

  // Coarsen–route–refine (DESIGN.md §15): plan corridors for long subnets
  // on the coarsened graph before the fine schedule starts. The fine pass
  // below refines each planned subnet inside its corridor (full-grid
  // fallback on failure), which bounds the searched area independently of
  // grid extent.
  std::vector<std::vector<GCellId>> corridors;
  if (config_.multilevel.enabled && !stop_requested())
    corridors = plan_coarse(subnets, tile_bboxes);
  const int ml_factor = std::max(2, config_.multilevel.coarsen_factor);
  const int ml_margin = config_.multilevel.corridor_margin;

  const Rect full{0, 0, graph_.tiles_x() - 1, graph_.tiles_y() - 1};
  std::size_t committed = 0;
  for (int level = 0; level < scheduler.num_levels() && !stop_requested();
       ++level) {
    TELEMETRY_SPAN("global.level");
    const auto& bucket = buckets[static_cast<std::size_t>(level)];
    for (std::size_t lo = 0; lo < bucket.size() && !stop_requested();
         lo += batch) {
      const std::size_t hi = std::min(bucket.size(), lo + batch);
      run_phase(pool, cancel, lo, hi, [&](std::size_t i) {
        const std::size_t idx = bucket[i];
        const auto& subnet = subnets[idx];
        TilePath& path = result.paths[idx];
        path.net = subnet.net;
        path.pin_a = subnet.a;
        path.pin_b = subnet.b;
        const GCellId from{grid_->tile_of_x(subnet.a.x),
                           grid_->tile_of_y(subnet.a.y)};
        const GCellId to{grid_->tile_of_x(subnet.b.x),
                         grid_->tile_of_y(subnet.b.y)};
        if (!corridors.empty() && !corridors[idx].empty()) {
          // Refinement: stamp this subnet's corridor into the calling
          // worker's scratch (the mask is thread-local, like the search
          // arrays) and search inside it.
          const Rect corridor_bbox =
              stamp_corridor(corridors[idx], ml_factor, ml_margin,
                             graph_.tiles_x(), graph_.tiles_y(), tl_scratch);
          path.tiles = search(from, to, corridor_bbox,
                              config_.vertex_cost_weight, /*corridor=*/true);
          if (!path.tiles.empty())
            ml_corridor_hits_counter_->add(1);
          else
            ml_corridor_fallbacks_counter_->add(1);
        }
        if (path.tiles.empty()) {
          // Allow one tile of margin around the cluster for detours.
          const Rect region = scheduler.cluster_region(tile_bboxes[idx], level)
                                  .inflated(1)
                                  .intersect(full);
          path.tiles = search(from, to, region, config_.vertex_cost_weight);
        }
        if (path.tiles.empty())
          path.tiles = search(from, to, full, config_.vertex_cost_weight);
        path.routed = !path.tiles.empty();
      });
      // Batch barrier: merge the batch's demands in index order.
      for (std::size_t i = lo; i < hi; ++i) {
        const TilePath& path = result.paths[bucket[i]];
        if (path.routed) {
          commit(bucket[i], path, +1);
          ++committed;
        }
      }
      if (progress) progress(committed, subnets.size());
    }
  }

  run_reroute_passes(result, pool, cancel);
  finalize_totals(result);
  // Storage telemetry (execution-dependent by prefix: the dense and tiled
  // modes produce different values over byte-identical routing).
  telemetry::counter(telemetry::keys::kGridTilesMaterialized)
      .add(static_cast<std::int64_t>(graph_.tiles_materialized()));
  telemetry::counter(telemetry::keys::kGridTilesTotal)
      .add(static_cast<std::int64_t>(graph_.tiles_total()));
  telemetry::counter(telemetry::keys::kGridStorageBytes)
      .add(static_cast<std::int64_t>(graph_.storage_bytes()));
  return result;
}

void GlobalRouter::seed(const GlobalResult& result) {
  TELEMETRY_SPAN("global.seed");
  // Fresh capacities, then replay every committed path in index order. The
  // demand state (and the psi memo it feeds) afterwards is exactly what a
  // route() ending in `result` left behind, which is what makes a reloaded
  // resident design bit-identical to a long-lived one.
  graph_ = RoutingGraph(*grid_, config_.stitch_aware_capacity,
                        config_.tiled_grid);
  congestion_.reset(graph_, result.paths.size(), config_.vertex_cost);
  for (std::size_t idx = 0; idx < result.paths.size(); ++idx)
    if (result.paths[idx].routed)
      congestion_.commit(graph_, idx, result.paths[idx].tiles, +1);
}

std::vector<std::size_t> GlobalRouter::rip_dirty_closure(
    GlobalResult& result, const std::vector<std::size_t>& targets) {
  TELEMETRY_SPAN("global.rip_closure");
  std::vector<std::uint8_t> in_closure(result.paths.size(), 0);
  for (const std::size_t idx : targets) {
    if (idx >= result.paths.size() || in_closure[idx] != 0) continue;
    in_closure[idx] = 1;
    if (result.paths[idx].routed) commit(idx, result.paths[idx], -1);
  }
  // One ascending scan: ripping the targets only lowered demand, so any
  // subnet still congested now stays congested until *it* is ripped —
  // which happens right here, keeping the scan exact without iterating to
  // a fixed point. Ripping a survivor can relieve later subnets; they are
  // then correctly skipped.
  std::vector<std::size_t> closure;
  for (std::size_t idx = 0; idx < result.paths.size(); ++idx) {
    if (in_closure[idx] != 0) {
      closure.push_back(idx);
      continue;
    }
    if (result.paths[idx].routed && congestion_.congested(idx)) {
      in_closure[idx] = 1;
      commit(idx, result.paths[idx], -1);
      closure.push_back(idx);
    }
  }
  return closure;
}

void GlobalRouter::reroute_subset(const std::vector<netlist::Subnet>& subnets,
                                  GlobalResult& result,
                                  const std::vector<std::size_t>& dirty,
                                  exec::ThreadPool* pool,
                                  const exec::Cancellation* cancel) {
  TELEMETRY_SPAN("global.eco");
  const Rect full{0, 0, graph_.tiles_x() - 1, graph_.tiles_y() - 1};
  const std::size_t batch =
      config_.net_batch_size > 0
          ? static_cast<std::size_t>(config_.net_batch_size)
          : 1;
  // Batch-synchronous initial routing of the closure, in ascending index
  // order against the live demand of the untouched remainder. The region
  // policy mirrors the reroute passes (pin-bbox hull plus margin, full-grid
  // fallback); both ECO compare paths run this same code, which is all the
  // bit-identity check needs.
  for (std::size_t lo = 0; lo < dirty.size(); lo += batch) {
    const std::size_t hi = std::min(dirty.size(), lo + batch);
    if (cancel != nullptr && cancel->stop_requested()) break;
    run_phase(pool, cancel, lo, hi, [&](std::size_t i) {
      const std::size_t idx = dirty[i];
      const auto& subnet = subnets[idx];
      TilePath& path = result.paths[idx];
      path.net = subnet.net;
      path.pin_a = subnet.a;
      path.pin_b = subnet.b;
      const GCellId from{grid_->tile_of_x(subnet.a.x),
                         grid_->tile_of_y(subnet.a.y)};
      const GCellId to{grid_->tile_of_x(subnet.b.x),
                       grid_->tile_of_y(subnet.b.y)};
      const Rect region = Rect{std::min(from.tx, to.tx), std::min(from.ty, to.ty),
                               std::max(from.tx, to.tx), std::max(from.ty, to.ty)}
                              .inflated(4)
                              .intersect(full);
      path.tiles = search(from, to, region, config_.vertex_cost_weight);
      if (path.tiles.empty())
        path.tiles = search(from, to, full, config_.vertex_cost_weight);
      path.routed = !path.tiles.empty();
    });
    for (std::size_t i = lo; i < hi; ++i)
      if (result.paths[dirty[i]].routed)
        commit(dirty[i], result.paths[dirty[i]], +1);
  }
  run_reroute_passes(result, pool, cancel);
  finalize_totals(result);
}

}  // namespace mebl::global
