#pragma once

#include <vector>

#include "geom/rect.hpp"
#include "netlist/netlist.hpp"

namespace mebl::global {

/// Bottom-up multilevel schedule (paper SII-B, Fig. 6).
///
/// The coarsening scheme repeatedly merges 2x2 groups of tiles. A subnet is
/// *local at level L* when its GCell bounding box fits inside a single level-L
/// cluster; the two-pass bottom-up framework routes subnets in ascending
/// level order so that local nets are routed before longer ones.
class MultilevelScheduler {
 public:
  /// `tiles_x`/`tiles_y`: GCell grid extent. The number of levels is the
  /// smallest L with 2^L clusters covering the whole grid.
  MultilevelScheduler(int tiles_x, int tiles_y);

  [[nodiscard]] int num_levels() const noexcept { return num_levels_; }

  /// Level at which a subnet whose GCell bbox is `tile_bbox` becomes local.
  [[nodiscard]] int level_of(const geom::Rect& tile_bbox) const;

  /// Cluster region (in tile coordinates, clipped to the grid) containing
  /// `tile_bbox` at the given level. Routing for a local net is confined to
  /// this region (plus any margin the router adds).
  [[nodiscard]] geom::Rect cluster_region(const geom::Rect& tile_bbox,
                                          int level) const;

  /// Bucket subnet indices by routing level: result[L] lists the indices of
  /// `tile_bboxes` that become local at level L.
  [[nodiscard]] std::vector<std::vector<std::size_t>> schedule(
      const std::vector<geom::Rect>& tile_bboxes) const;

 private:
  int tiles_x_;
  int tiles_y_;
  int num_levels_;
};

}  // namespace mebl::global
