#pragma once

#include <vector>

#include "geom/rect.hpp"
#include "global/search_scratch.hpp"
#include "netlist/netlist.hpp"

namespace mebl::global {

/// Bottom-up multilevel schedule (paper SII-B, Fig. 6).
///
/// The coarsening scheme repeatedly merges 2x2 groups of tiles. A subnet is
/// *local at level L* when its GCell bounding box fits inside a single level-L
/// cluster; the two-pass bottom-up framework routes subnets in ascending
/// level order so that local nets are routed before longer ones.
class MultilevelScheduler {
 public:
  /// `tiles_x`/`tiles_y`: GCell grid extent. The number of levels is the
  /// smallest L with 2^L clusters covering the whole grid.
  MultilevelScheduler(int tiles_x, int tiles_y);

  [[nodiscard]] int num_levels() const noexcept { return num_levels_; }

  /// Level at which a subnet whose GCell bbox is `tile_bbox` becomes local.
  [[nodiscard]] int level_of(const geom::Rect& tile_bbox) const;

  /// Cluster region (in tile coordinates, clipped to the grid) containing
  /// `tile_bbox` at the given level. Routing for a local net is confined to
  /// this region (plus any margin the router adds).
  [[nodiscard]] geom::Rect cluster_region(const geom::Rect& tile_bbox,
                                          int level) const;

  /// Bucket subnet indices by routing level: result[L] lists the indices of
  /// `tile_bboxes` that become local at level L.
  [[nodiscard]] std::vector<std::vector<std::size_t>> schedule(
      const std::vector<geom::Rect>& tile_bboxes) const;

 private:
  int tiles_x_;
  int tiles_y_;
  int num_levels_;
};

// ---------------------------------------------------------------------------
// Coarsen–route–refine (DESIGN.md §15)
//
// The scheduler above orders subnets bottom-up; the machinery below adds the
// *top-down* half that makes paper-scale grids tractable: long subnets are
// first routed on a coarsened congestion graph (factor x factor tiles per
// coarse cell, capacities aggregated by summing the fine boundary/vertex
// capacities each coarse edge/cell collapses), the coarse path is committed
// as coarse demand so later long nets spread out, and the fine search is
// then confined to the corridor of fine tiles under the coarse path. A
// corridor search that fails falls back to the full grid, exactly like the
// cluster-region fallback of the flat pass.

/// Knobs of the coarsen–route–refine global pass.
struct MultilevelConfig {
  bool enabled = false;
  /// Fine tiles per coarse cell along each axis (>= 2).
  int coarsen_factor = 8;
  /// Minimum fine-tile bbox span of a subnet for coarse-first routing;
  /// shorter subnets keep the flat cluster-region schedule (a corridor
  /// cannot beat a region that small).
  int min_span = 16;
  /// Fine tiles of margin around each coarse cell when the corridor is
  /// stamped, so refinement can detour around congestion crossing the
  /// corridor boundary.
  int corridor_margin = 2;
};

/// Aggregate `fine` into a dense coarse graph of ceil(X/factor) x
/// ceil(Y/factor) cells: a coarse h-edge's capacity sums the fine h-edge
/// capacities along the collapsed column boundary (v-edges and line-end
/// vertices likewise). Demands start at zero — the coarse pass prices only
/// coarse-level contention.
[[nodiscard]] RoutingGraph coarsen_graph(const RoutingGraph& fine, int factor);

/// Commit (+1) or rip (-1) a coarse tile path's demand onto `coarse`: edge
/// demand per step and line-end demand at both end cells of every maximal
/// vertical run — the same bookkeeping CongestionIndex::commit applies to
/// fine paths, minus the reverse index (the sequential coarse pass needs
/// none).
void commit_coarse_path(RoutingGraph& coarse,
                        const std::vector<grid::GCellId>& cells, int sign);

/// Stamp the fine-tile corridor of `coarse_cells` (margin-inflated, clipped
/// to the fine grid) into `scratch`'s corridor mask and return its bounding
/// box — the region rect of the refinement search. Must run on the thread
/// that will search, since the mask lives in that thread's scratch.
geom::Rect stamp_corridor(const std::vector<grid::GCellId>& coarse_cells,
                          int factor, int margin, int tiles_x, int tiles_y,
                          GlobalSearchScratch& scratch);

}  // namespace mebl::global
