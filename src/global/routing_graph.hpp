#pragma once

#include <cstdint>
#include <vector>

#include "grid/gcell.hpp"

namespace mebl::global {

/// Congestion state of the global-routing graph (paper SIII-A, Fig. 7).
///
/// Vertices are GCells; edges join 4-neighbouring GCells. Each edge carries
/// a capacity (wires that can cross the shared tile boundary — reduced by
/// stitching lines for vertical crossings when `stitch_aware` is set) and a
/// demand. Each vertex additionally carries a *line-end capacity* (vertical
/// tracks outside stitch unfriendly regions) and a line-end demand; the
/// stitch-aware router prices both (eqs. 1-3).
///
/// Costs are served from cached rows (DESIGN.md §10): psi values are
/// memoized per (demand, capacity) and the marginal cost psi(d+1, c) of
/// every edge and vertex is kept in a flat row, updated incrementally by
/// add_*_demand. Demands change only at the router's sequential batch
/// barriers, so the rows are frozen — and race-free to read — during the
/// parallel search phase of a batch; relaxations become table lookups
/// instead of exp2 calls, bit-identical to computing psi directly. Overflow
/// totals are maintained incrementally the same way.
///
/// Storage comes in two bit-identical flavours (DESIGN.md §15):
///
///  * **dense** (default): one flat array slot per edge/vertex, the layout
///    the kernels have always read.
///  * **tiled** (`tiled = true`): capacities are uniform along one axis —
///    horizontal boundary capacity depends only on the tile row, vertical
///    boundary and line-end capacity only on the tile column — so the graph
///    keeps one capacity/default-cost entry *per axis* and materializes a
///    per-tile demand/cost slot lazily on the first demand write to that
///    tile. Untouched tiles answer reads from the shared axis defaults
///    (demand 0, cost psi(1, c)); reads never materialize anything, so the
///    parallel search phase touches no mutable state either way. At paper
///    scale (~150k tiles, a few percent carrying demand) this shrinks the
///    resident graph to the slot directory plus the touched slots.
///
/// Every value served — capacity, demand, cost, overflow — is computed by
/// the identical arithmetic in both modes, so routed results are
/// bit-identical under the storage switch.
class RoutingGraph {
 public:
  RoutingGraph(const grid::RoutingGrid& grid, bool stitch_aware,
               bool tiled = false);

  /// A dense graph over an explicit capacity assignment (no RoutingGrid
  /// behind it) — the constructor the multilevel pass uses for coarsened
  /// graphs whose capacities are aggregates of a finer graph's. Vector
  /// layouts match h_index/v_index/t_index.
  [[nodiscard]] static RoutingGraph with_capacities(
      int tiles_x, int tiles_y, std::vector<int> h_cap,
      std::vector<int> v_cap, std::vector<int> vert_cap);

  [[nodiscard]] int tiles_x() const noexcept { return tiles_x_; }
  [[nodiscard]] int tiles_y() const noexcept { return tiles_y_; }
  [[nodiscard]] bool tiled() const noexcept { return tiled_; }

  // --- edges ---------------------------------------------------------------
  // h-edge (tx,ty): boundary between (tx,ty) and (tx+1,ty), 0 <= tx < X-1.
  // v-edge (tx,ty): boundary between (tx,ty) and (tx,ty+1), 0 <= ty < Y-1.

  [[nodiscard]] int h_capacity(int tx, int ty) const {
    return tiled_ ? h_cap_of_ty_[static_cast<std::size_t>(ty)]
                  : h_cap_[h_index(tx, ty)];
  }
  [[nodiscard]] int v_capacity(int tx, int ty) const {
    return tiled_ ? v_cap_of_tx_[static_cast<std::size_t>(tx)]
                  : v_cap_[v_index(tx, ty)];
  }
  [[nodiscard]] int h_demand(int tx, int ty) const {
    if (!tiled_) return h_dem_[h_index(tx, ty)];
    const std::int32_t s = slot_of_[t_index(tx, ty)];
    return s >= 0 ? slots_[static_cast<std::size_t>(s)].h_dem : 0;
  }
  [[nodiscard]] int v_demand(int tx, int ty) const {
    if (!tiled_) return v_dem_[v_index(tx, ty)];
    const std::int32_t s = slot_of_[t_index(tx, ty)];
    return s >= 0 ? slots_[static_cast<std::size_t>(s)].v_dem : 0;
  }
  void add_h_demand(int tx, int ty, int delta);
  void add_v_demand(int tx, int ty, int delta);

  /// Congestion cost psi_e = 2^(d/c) - 1 of the edge *after* adding `extra`
  /// wires (the router prices the marginal wire with extra = 1, served from
  /// the cached row; other extras compute psi directly).
  [[nodiscard]] double h_cost(int tx, int ty, int extra = 1) const {
    if (extra != 1) return psi(h_demand(tx, ty) + extra, h_capacity(tx, ty));
    if (!tiled_) return h_cost_row_[h_index(tx, ty)];
    const std::int32_t s = slot_of_[t_index(tx, ty)];
    return s >= 0 ? memo_cost(slots_[static_cast<std::size_t>(s)].h_dem,
                              h_cap_of_ty_[static_cast<std::size_t>(ty)])
                  : h_cost0_of_ty_[static_cast<std::size_t>(ty)];
  }
  [[nodiscard]] double v_cost(int tx, int ty, int extra = 1) const {
    if (extra != 1) return psi(v_demand(tx, ty) + extra, v_capacity(tx, ty));
    if (!tiled_) return v_cost_row_[v_index(tx, ty)];
    const std::int32_t s = slot_of_[t_index(tx, ty)];
    return s >= 0 ? memo_cost(slots_[static_cast<std::size_t>(s)].v_dem,
                              v_cap_of_tx_[static_cast<std::size_t>(tx)])
                  : v_cost0_of_tx_[static_cast<std::size_t>(tx)];
  }

  // --- vertices (line ends) --------------------------------------------------

  [[nodiscard]] int vertex_capacity(int tx, int ty) const {
    return tiled_ ? vert_cap_of_tx_[static_cast<std::size_t>(tx)]
                  : vert_cap_[t_index(tx, ty)];
  }
  [[nodiscard]] int vertex_demand(int tx, int ty) const {
    if (!tiled_) return vert_dem_[t_index(tx, ty)];
    const std::int32_t s = slot_of_[t_index(tx, ty)];
    return s >= 0 ? slots_[static_cast<std::size_t>(s)].vert_dem : 0;
  }
  void add_vertex_demand(int tx, int ty, int delta);

  /// Line-end congestion cost psi_v = 2^(d/c) - 1 after `extra` more ends.
  [[nodiscard]] double vertex_cost(int tx, int ty, int extra = 1) const {
    if (extra != 1)
      return psi(vertex_demand(tx, ty) + extra, vertex_capacity(tx, ty));
    if (!tiled_) return vert_cost_row_[t_index(tx, ty)];
    const std::int32_t s = slot_of_[t_index(tx, ty)];
    return s >= 0 ? memo_cost(slots_[static_cast<std::size_t>(s)].vert_dem,
                              vert_cap_of_tx_[static_cast<std::size_t>(tx)])
                  : vert_cost0_of_tx_[static_cast<std::size_t>(tx)];
  }

  // --- overflow metrics (Table IV) -------------------------------------------

  /// Total vertex overflow: sum over tiles of max(0, demand - capacity).
  /// O(1): maintained incrementally by add_vertex_demand.
  [[nodiscard]] int total_vertex_overflow() const noexcept {
    return total_vertex_overflow_;
  }
  /// Maximum vertex overflow over all tiles. Tiled mode scans only the
  /// materialized slots: an untouched tile has demand 0 <= capacity.
  [[nodiscard]] int max_vertex_overflow() const;
  /// Total edge overflow over both edge directions. O(1): maintained
  /// incrementally by add_h_demand / add_v_demand.
  [[nodiscard]] int total_edge_overflow() const noexcept {
    return total_edge_overflow_;
  }

  // --- storage telemetry (DESIGN.md §15) -------------------------------------

  [[nodiscard]] std::size_t tiles_total() const noexcept {
    return static_cast<std::size_t>(tiles_x_) * tiles_y_;
  }
  /// Tiles whose demand/cost slot exists. Dense mode materializes every
  /// tile at construction by definition.
  [[nodiscard]] std::size_t tiles_materialized() const noexcept {
    return tiled_ ? slots_.size() : tiles_total();
  }
  /// Resident bytes of the congestion tables this graph actually holds
  /// (capacity/demand/cost storage; excludes the psi memo, which is shared
  /// and bounded by the distinct capacities present).
  [[nodiscard]] std::size_t storage_bytes() const noexcept;
  /// What the dense layout would hold for a grid of this extent — the
  /// denominator of the bench suite's memory-fraction gate.
  [[nodiscard]] static std::size_t dense_storage_bytes(int tiles_x,
                                                       int tiles_y) noexcept {
    // 3 capacity ints + 3 demand ints + 3 cost doubles per tile (the h/v
    // edge arrays are one row/column short; close enough for an estimate
    // that must only be comparable across runs).
    return static_cast<std::size_t>(tiles_x) * tiles_y *
           (3 * sizeof(int) + 3 * sizeof(int) + 3 * sizeof(double));
  }

 private:
  RoutingGraph() = default;

  [[nodiscard]] std::size_t h_index(int tx, int ty) const {
    return static_cast<std::size_t>(ty) * (tiles_x_ - 1) + tx;
  }
  [[nodiscard]] std::size_t v_index(int tx, int ty) const {
    return static_cast<std::size_t>(ty) * tiles_x_ + tx;
  }
  [[nodiscard]] std::size_t t_index(int tx, int ty) const {
    return static_cast<std::size_t>(ty) * tiles_x_ + tx;
  }

  /// psi = 2^(d/c) - 1; a zero-capacity resource is priced effectively
  /// infinite (but finite, so routing can still complete when forced).
  [[nodiscard]] static double psi(int demand, int capacity);

  /// Memoized psi keyed on (demand, capacity): grows the per-capacity row
  /// on demand, every entry computed by psi() itself so lookups are
  /// bit-identical to the direct call. Only invoked from construction and
  /// add_*_demand (sequential phases), never from the read-only cost path.
  [[nodiscard]] double psi_lookup(int demand, int capacity);

  /// Size the psi memo for the largest capacity present.
  void seed_psi_memo(int max_cap);

  /// Tiled mode's marginal-cost read psi(demand + 1, capacity), served by
  /// direct psi-memo indexing. Safe without growth on the (frozen, const)
  /// read path: construction grows every present capacity's row to index 1
  /// (the axis defaults) and every add_*_demand grows its resource's row to
  /// demand + 1, so a materialized slot's row always covers its demand.
  [[nodiscard]] double memo_cost(int demand, int capacity) const {
    if (capacity <= 0) return 1e9;  // psi(d, c <= 0) with d >= 1
    return psi_memo_[static_cast<std::size_t>(capacity)]
                    [static_cast<std::size_t>(demand) + 1];
  }

  /// Materialized per-tile state of the tiled mode: the demands of the
  /// tile's h-edge (to the right), v-edge (upward) and line-end vertex —
  /// 12 bytes, the costs are served from the shared psi memo. Edge fields
  /// of boundary tiles are simply unused.
  struct TileSlot {
    int h_dem = 0;
    int v_dem = 0;
    int vert_dem = 0;
  };

  /// Tiled mode: index of tile (tx,ty)'s slot, materializing it (seeded
  /// from the axis defaults) on first use.
  [[nodiscard]] std::size_t ensure_slot(int tx, int ty);

  int tiles_x_ = 0;
  int tiles_y_ = 0;
  bool tiled_ = false;

  // Dense storage (tiled_ == false).
  std::vector<int> h_cap_, v_cap_, h_dem_, v_dem_;
  std::vector<int> vert_cap_, vert_dem_;
  /// Frozen marginal-cost rows: psi(demand + 1, capacity) per resource.
  std::vector<double> h_cost_row_, v_cost_row_, vert_cost_row_;

  // Tiled storage (tiled_ == true): per-axis capacities and default costs
  // (the capacity model is uniform along the other axis — asserted at
  // construction), a per-tile slot directory, and the materialized slots.
  std::vector<int> h_cap_of_ty_, v_cap_of_tx_, vert_cap_of_tx_;
  std::vector<double> h_cost0_of_ty_, v_cost0_of_tx_, vert_cost0_of_tx_;
  std::vector<std::int32_t> slot_of_;  ///< per tile; -1 = unmaterialized
  std::vector<TileSlot> slots_;

  /// psi memo, indexed [capacity][demand] (capacities are bounded by the
  /// construction-time maximum; demands grow rows lazily).
  std::vector<std::vector<double>> psi_memo_;
  int total_edge_overflow_ = 0;
  int total_vertex_overflow_ = 0;
};

}  // namespace mebl::global
