#pragma once

#include <vector>

#include "grid/gcell.hpp"

namespace mebl::global {

/// Congestion state of the global-routing graph (paper SIII-A, Fig. 7).
///
/// Vertices are GCells; edges join 4-neighbouring GCells. Each edge carries
/// a capacity (wires that can cross the shared tile boundary — reduced by
/// stitching lines for vertical crossings when `stitch_aware` is set) and a
/// demand. Each vertex additionally carries a *line-end capacity* (vertical
/// tracks outside stitch unfriendly regions) and a line-end demand; the
/// stitch-aware router prices both (eqs. 1-3).
///
/// Costs are served from cached rows (DESIGN.md §10): psi values are
/// memoized per (demand, capacity) and the marginal cost psi(d+1, c) of
/// every edge and vertex is kept in a flat row, updated incrementally by
/// add_*_demand. Demands change only at the router's sequential batch
/// barriers, so the rows are frozen — and race-free to read — during the
/// parallel search phase of a batch; relaxations become table lookups
/// instead of exp2 calls, bit-identical to computing psi directly. Overflow
/// totals are maintained incrementally the same way.
class RoutingGraph {
 public:
  RoutingGraph(const grid::RoutingGrid& grid, bool stitch_aware);

  [[nodiscard]] int tiles_x() const noexcept { return tiles_x_; }
  [[nodiscard]] int tiles_y() const noexcept { return tiles_y_; }

  // --- edges ---------------------------------------------------------------
  // h-edge (tx,ty): boundary between (tx,ty) and (tx+1,ty), 0 <= tx < X-1.
  // v-edge (tx,ty): boundary between (tx,ty) and (tx,ty+1), 0 <= ty < Y-1.

  [[nodiscard]] int h_capacity(int tx, int ty) const {
    return h_cap_[h_index(tx, ty)];
  }
  [[nodiscard]] int v_capacity(int tx, int ty) const {
    return v_cap_[v_index(tx, ty)];
  }
  [[nodiscard]] int h_demand(int tx, int ty) const {
    return h_dem_[h_index(tx, ty)];
  }
  [[nodiscard]] int v_demand(int tx, int ty) const {
    return v_dem_[v_index(tx, ty)];
  }
  void add_h_demand(int tx, int ty, int delta);
  void add_v_demand(int tx, int ty, int delta);

  /// Congestion cost psi_e = 2^(d/c) - 1 of the edge *after* adding `extra`
  /// wires (the router prices the marginal wire with extra = 1, served from
  /// the cached row; other extras compute psi directly).
  [[nodiscard]] double h_cost(int tx, int ty, int extra = 1) const {
    const std::size_t i = h_index(tx, ty);
    return extra == 1 ? h_cost_row_[i] : psi(h_dem_[i] + extra, h_cap_[i]);
  }
  [[nodiscard]] double v_cost(int tx, int ty, int extra = 1) const {
    const std::size_t i = v_index(tx, ty);
    return extra == 1 ? v_cost_row_[i] : psi(v_dem_[i] + extra, v_cap_[i]);
  }

  // --- vertices (line ends) --------------------------------------------------

  [[nodiscard]] int vertex_capacity(int tx, int ty) const {
    return vert_cap_[t_index(tx, ty)];
  }
  [[nodiscard]] int vertex_demand(int tx, int ty) const {
    return vert_dem_[t_index(tx, ty)];
  }
  void add_vertex_demand(int tx, int ty, int delta);

  /// Line-end congestion cost psi_v = 2^(d/c) - 1 after `extra` more ends.
  [[nodiscard]] double vertex_cost(int tx, int ty, int extra = 1) const {
    const std::size_t i = t_index(tx, ty);
    return extra == 1 ? vert_cost_row_[i]
                      : psi(vert_dem_[i] + extra, vert_cap_[i]);
  }

  // --- overflow metrics (Table IV) -------------------------------------------

  /// Total vertex overflow: sum over tiles of max(0, demand - capacity).
  /// O(1): maintained incrementally by add_vertex_demand.
  [[nodiscard]] int total_vertex_overflow() const noexcept {
    return total_vertex_overflow_;
  }
  /// Maximum vertex overflow over all tiles.
  [[nodiscard]] int max_vertex_overflow() const;
  /// Total edge overflow over both edge directions. O(1): maintained
  /// incrementally by add_h_demand / add_v_demand.
  [[nodiscard]] int total_edge_overflow() const noexcept {
    return total_edge_overflow_;
  }

 private:
  [[nodiscard]] std::size_t h_index(int tx, int ty) const {
    return static_cast<std::size_t>(ty) * (tiles_x_ - 1) + tx;
  }
  [[nodiscard]] std::size_t v_index(int tx, int ty) const {
    return static_cast<std::size_t>(ty) * tiles_x_ + tx;
  }
  [[nodiscard]] std::size_t t_index(int tx, int ty) const {
    return static_cast<std::size_t>(ty) * tiles_x_ + tx;
  }

  /// psi = 2^(d/c) - 1; a zero-capacity resource is priced effectively
  /// infinite (but finite, so routing can still complete when forced).
  [[nodiscard]] static double psi(int demand, int capacity);

  /// Memoized psi keyed on (demand, capacity): grows the per-capacity row
  /// on demand, every entry computed by psi() itself so lookups are
  /// bit-identical to the direct call. Only invoked from construction and
  /// add_*_demand (sequential phases), never from the read-only cost path.
  [[nodiscard]] double psi_lookup(int demand, int capacity);

  int tiles_x_;
  int tiles_y_;
  std::vector<int> h_cap_, v_cap_, h_dem_, v_dem_;
  std::vector<int> vert_cap_, vert_dem_;
  /// Frozen marginal-cost rows: psi(demand + 1, capacity) per resource.
  std::vector<double> h_cost_row_, v_cost_row_, vert_cost_row_;
  /// psi memo, indexed [capacity][demand] (capacities are bounded by the
  /// construction-time maximum; demands grow rows lazily).
  std::vector<std::vector<double>> psi_memo_;
  int total_edge_overflow_ = 0;
  int total_vertex_overflow_ = 0;
};

}  // namespace mebl::global
