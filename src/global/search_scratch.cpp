#include "global/search_scratch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace mebl::global {

using geom::Rect;
using grid::GCellId;

namespace {

/// Search state: tile plus the orientation of the move that entered it
/// (0 = start, 1 = horizontal, 2 = vertical). Direction matters because
/// line-end (vertex) costs are incurred where vertical runs start and end.
constexpr int kDirStart = 0;
constexpr int kDirH = 1;
constexpr int kDirV = 2;

/// Min-heap order on f, exactly the comparator of the old
/// std::priority_queue<HeapEntry, vector, std::greater<>> (which compared
/// only f), so pop order — ties included — is bit-for-bit unchanged.
constexpr auto kHeapGreater = [](const GlobalSearchScratch::HeapEntry& a,
                                 const GlobalSearchScratch::HeapEntry& b) {
  return a.f > b.f;
};

}  // namespace

bool GlobalSearchScratch::begin(std::size_t num_states) {
  const bool reused = stamp.size() >= num_states;
  if (!reused) {
    stamp.assign(num_states, 0);
    dist.resize(num_states);
    parent.resize(num_states);
    epoch = 0;
  }
  if (++epoch == 0) {  // wrap-around: stamps from epoch 2^32 ago are stale
    std::fill(stamp.begin(), stamp.end(), 0);
    epoch = 1;
  }
  heap.clear();
  last_pops = 0;
  last_reused = reused;
  return reused;
}

void GlobalSearchScratch::begin_corridor(std::size_t num_tiles) {
  if (corridor_stamp.size() < num_tiles) {
    corridor_stamp.assign(num_tiles, 0);
    corridor_epoch = 0;
  }
  if (++corridor_epoch == 0) {  // wrap-around, as in begin()
    std::fill(corridor_stamp.begin(), corridor_stamp.end(), 0);
    corridor_epoch = 1;
  }
}

bool search_tiles_astar(const RoutingGraph& graph,
                        const GlobalSearchParams& params, GCellId from,
                        GCellId to, const Rect& region,
                        GlobalSearchScratch& scratch, double* cost,
                        bool corridor) {
  scratch.path.clear();
  if (from == to) {
    scratch.path.push_back(from);
    if (cost != nullptr) *cost = 0.0;
    return true;
  }
  const int tiles_x = graph.tiles_x();
  const auto in_region = [&](int tx, int ty) {
    return tx >= region.xlo && tx <= region.xhi && ty >= region.ylo &&
           ty <= region.yhi &&
           (!corridor ||
            scratch.in_corridor(static_cast<std::size_t>(ty) * tiles_x + tx));
  };
  assert(in_region(from.tx, from.ty) && in_region(to.tx, to.ty));

  // Full-grid state indexing, so region searches and the full-grid fallback
  // share one epoch-stamped allocation.
  const auto state_of = [&](int tx, int ty, int dir) {
    return (ty * tiles_x + tx) * 3 + dir;
  };
  const std::size_t num_states =
      static_cast<std::size_t>(tiles_x) * graph.tiles_y() * 3;
  scratch.begin(num_states);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto dist_of = [&](int s) {
    const auto i = static_cast<std::size_t>(s);
    return scratch.stamp[i] == scratch.epoch ? scratch.dist[i] : kInf;
  };
  const auto relax = [&](int s, double g, int par) {
    const auto i = static_cast<std::size_t>(s);
    scratch.stamp[i] = scratch.epoch;
    scratch.dist[i] = g;
    scratch.parent[i] = static_cast<std::int32_t>(par);
  };

  const auto heuristic = [&](int tx, int ty) {
    return static_cast<double>(std::abs(tx - to.tx) + std::abs(ty - to.ty));
  };
  const int start = state_of(from.tx, from.ty, kDirStart);
  relax(start, 0.0, -1);
  auto& heap = scratch.heap;
  heap.push_back({heuristic(from.tx, from.ty), 0.0, start});

  static constexpr int kDx[4] = {1, -1, 0, 0};
  static constexpr int kDy[4] = {0, 0, 1, -1};

  std::int64_t pops = 0;
  int goal_state = -1;
  while (!heap.empty()) {
    const GlobalSearchScratch::HeapEntry top = heap.front();
    std::pop_heap(heap.begin(), heap.end(), kHeapGreater);
    heap.pop_back();
    ++pops;
    if (top.g > dist_of(top.state)) continue;
    const int cell = top.state / 3;
    const int dir = top.state % 3;
    const int tx = cell % tiles_x;
    const int ty = cell / tiles_x;
    if (tx == to.tx && ty == to.ty) {
      goal_state = top.state;
      if (cost != nullptr) *cost = top.g;
      break;
    }
    for (int m = 0; m < 4; ++m) {
      const int nx = tx + kDx[m];
      const int ny = ty + kDy[m];
      if (!in_region(nx, ny)) continue;
      const bool horizontal = m < 2;
      double step = 1.0;
      // Edge congestion: a cached-row lookup, bit-identical to direct psi.
      if (horizontal)
        step += graph.h_cost(std::min(tx, nx), ty);
      else
        step += graph.v_cost(tx, std::min(ty, ny));
      // Bend penalty.
      if (dir != kDirStart && ((dir == kDirH) != horizontal))
        step += params.turn_cost;
      // Line-end (vertex) congestion: a vertical run starts at the current
      // tile when a vertical move follows a horizontal one (or the start),
      // and ends there when a horizontal move follows a vertical one.
      if (params.vertex_cost) {
        if (!horizontal && dir != kDirV)
          step += params.vertex_weight * graph.vertex_cost(tx, ty);
        if (horizontal && dir == kDirV)
          step += params.vertex_weight * graph.vertex_cost(tx, ty);
        // Arriving at the target vertically leaves a line end there.
        if (!horizontal && nx == to.tx && ny == to.ty)
          step += params.vertex_weight * graph.vertex_cost(nx, ny);
      }
      const int next = state_of(nx, ny, horizontal ? kDirH : kDirV);
      const double ng = top.g + step;
      if (ng < dist_of(next)) {
        relax(next, ng, top.state);
        heap.push_back({ng + heuristic(nx, ny), ng, next});
        std::push_heap(heap.begin(), heap.end(), kHeapGreater);
      }
    }
  }
  scratch.last_pops = pops;
  if (goal_state < 0) return false;

  for (int s = goal_state; s != -1;
       s = scratch.parent[static_cast<std::size_t>(s)]) {
    const int cell = s / 3;
    const GCellId id{cell % tiles_x, cell / tiles_x};
    if (scratch.path.empty() || !(scratch.path.back() == id))
      scratch.path.push_back(id);
  }
  std::reverse(scratch.path.begin(), scratch.path.end());
  return true;
}

}  // namespace mebl::global
