#pragma once

#include <cstdint>
#include <vector>

#include "geom/rect.hpp"
#include "global/routing_graph.hpp"
#include "grid/gcell.hpp"

namespace mebl::global {

/// Cost-model knobs of one global-routing search, split out of
/// GlobalRouterConfig so the kernel and the pattern-route fast path are free
/// functions a test or bench can drive against a bare RoutingGraph. The
/// vertex weight is per-search because the reroute passes escalate it
/// without mutating shared config (DESIGN.md §10).
struct GlobalSearchParams {
  double turn_cost = 0.5;
  bool vertex_cost = true;
  double vertex_weight = 8.0;
};

/// Per-search scratch state of the global-routing kernel: epoch-stamped
/// dist/parent arrays sized for the *full* tile grid (region searches and
/// the full-grid fallback share the same storage), reusable open-list
/// storage, and the result path. A search touches no other mutable state,
/// so concurrent searches on one RoutingGraph are race-free as long as each
/// uses its own scratch — the batch-parallel router keeps one per pool
/// worker (thread_local), mirroring detail::SearchScratch.
struct GlobalSearchScratch {
  std::vector<std::uint32_t> stamp;
  std::vector<double> dist;
  std::vector<std::int32_t> parent;
  std::uint32_t epoch = 0;
  /// Open-list storage, reused across searches (std::push_heap/pop_heap
  /// with the same comparator as the old std::priority_queue, so the pop
  /// order — including ties — is unchanged).
  struct HeapEntry {
    double f;
    double g;
    std::int32_t state;
  };
  std::vector<HeapEntry> heap;
  /// Tiles of the most recent successful search, in start-to-goal order.
  std::vector<grid::GCellId> path;

  /// Corridor mask for multilevel refinement (DESIGN.md §15): tiles stamped
  /// with the current corridor epoch are admissible. Epoch-stamped like the
  /// dist arrays, so stamping a new corridor is O(corridor), not O(grid),
  /// and the storage is allocation-free once grown to the fine tile count.
  std::vector<std::uint32_t> corridor_stamp;
  std::uint32_t corridor_epoch = 0;

  /// Start a new (empty) corridor over `num_tiles` tiles; admit tiles with
  /// admit_tile before searching with corridor = true.
  void begin_corridor(std::size_t num_tiles);
  void admit_tile(std::size_t tile) { corridor_stamp[tile] = corridor_epoch; }
  [[nodiscard]] bool in_corridor(std::size_t tile) const {
    return corridor_stamp[tile] == corridor_epoch;
  }

  // Per-call kernel stats, read by the router's telemetry flush.
  std::int64_t last_pops = 0;     ///< heap pops of the last kernel run
  bool last_reused = false;       ///< last kernel run reused the storage

  /// Start a new search epoch over `num_states` states. Returns true when
  /// the existing storage was large enough (zero allocation); on growth (or
  /// epoch wrap-around) the stamp array is re-initialized.
  bool begin(std::size_t num_states);
};

/// Heap A* over the congestion graph: the global router's search kernel
/// (paper §III-A, eqs. 1–3), confined to `region` (tile coordinates, must
/// contain both endpoints). Prices edge congestion, bends, and — when
/// params.vertex_cost — line-end (vertex) congestion at
/// params.vertex_weight. On success fills `scratch.path` with the tile path
/// and returns true; `cost` (optional) receives the goal's g-value. The
/// routed result is identical to the pre-scratch kernel: same expansion
/// order, same tie-breaks, costs read from the RoutingGraph's cached rows
/// which are bit-identical to direct psi.
///
/// With `corridor = true` expansion is additionally confined to the tiles
/// the caller admitted into scratch's corridor mask (which must include
/// both endpoints) — the multilevel refinement path. The cost model is
/// unchanged; only the admissible tile set shrinks.
bool search_tiles_astar(const RoutingGraph& graph,
                        const GlobalSearchParams& params, grid::GCellId from,
                        grid::GCellId to, const geom::Rect& region,
                        GlobalSearchScratch& scratch, double* cost = nullptr,
                        bool corridor = false);

}  // namespace mebl::global
