#include "global/multilevel.hpp"

#include <algorithm>
#include <cassert>

namespace mebl::global {

MultilevelScheduler::MultilevelScheduler(int tiles_x, int tiles_y)
    : tiles_x_(tiles_x), tiles_y_(tiles_y) {
  assert(tiles_x >= 1 && tiles_y >= 1);
  int level = 0;
  while ((1 << level) < std::max(tiles_x, tiles_y)) ++level;
  num_levels_ = level + 1;  // level `level` has a single cluster
}

int MultilevelScheduler::level_of(const geom::Rect& tile_bbox) const {
  assert(!tile_bbox.empty());
  for (int level = 0; level < num_levels_; ++level) {
    const int size = 1 << level;
    if (tile_bbox.xlo / size == tile_bbox.xhi / size &&
        tile_bbox.ylo / size == tile_bbox.yhi / size)
      return level;
  }
  return num_levels_ - 1;
}

geom::Rect MultilevelScheduler::cluster_region(const geom::Rect& tile_bbox,
                                               int level) const {
  const int size = 1 << level;
  const geom::Coord cx = tile_bbox.xlo / size;
  const geom::Coord cy = tile_bbox.ylo / size;
  geom::Rect region{cx * size, cy * size, (cx + 1) * size - 1,
                    (cy + 1) * size - 1};
  // A bbox that straddles clusters at this level (only at the top) is
  // clipped by hulling with itself before clamping to the grid.
  region = region.hull(tile_bbox);
  return region.intersect(
      geom::Rect{0, 0, tiles_x_ - 1, tiles_y_ - 1});
}

std::vector<std::vector<std::size_t>> MultilevelScheduler::schedule(
    const std::vector<geom::Rect>& tile_bboxes) const {
  std::vector<std::vector<std::size_t>> buckets(
      static_cast<std::size_t>(num_levels_));
  for (std::size_t i = 0; i < tile_bboxes.size(); ++i)
    buckets[static_cast<std::size_t>(level_of(tile_bboxes[i]))].push_back(i);
  return buckets;
}

}  // namespace mebl::global
