#include "global/multilevel.hpp"

#include <algorithm>
#include <cassert>

namespace mebl::global {

MultilevelScheduler::MultilevelScheduler(int tiles_x, int tiles_y)
    : tiles_x_(tiles_x), tiles_y_(tiles_y) {
  assert(tiles_x >= 1 && tiles_y >= 1);
  int level = 0;
  while ((1 << level) < std::max(tiles_x, tiles_y)) ++level;
  num_levels_ = level + 1;  // level `level` has a single cluster
}

int MultilevelScheduler::level_of(const geom::Rect& tile_bbox) const {
  assert(!tile_bbox.empty());
  for (int level = 0; level < num_levels_; ++level) {
    const int size = 1 << level;
    if (tile_bbox.xlo / size == tile_bbox.xhi / size &&
        tile_bbox.ylo / size == tile_bbox.yhi / size)
      return level;
  }
  return num_levels_ - 1;
}

geom::Rect MultilevelScheduler::cluster_region(const geom::Rect& tile_bbox,
                                               int level) const {
  const int size = 1 << level;
  const geom::Coord cx = tile_bbox.xlo / size;
  const geom::Coord cy = tile_bbox.ylo / size;
  geom::Rect region{cx * size, cy * size, (cx + 1) * size - 1,
                    (cy + 1) * size - 1};
  // A bbox that straddles clusters at this level (only at the top) is
  // clipped by hulling with itself before clamping to the grid.
  region = region.hull(tile_bbox);
  return region.intersect(
      geom::Rect{0, 0, tiles_x_ - 1, tiles_y_ - 1});
}

std::vector<std::vector<std::size_t>> MultilevelScheduler::schedule(
    const std::vector<geom::Rect>& tile_bboxes) const {
  std::vector<std::vector<std::size_t>> buckets(
      static_cast<std::size_t>(num_levels_));
  for (std::size_t i = 0; i < tile_bboxes.size(); ++i)
    buckets[static_cast<std::size_t>(level_of(tile_bboxes[i]))].push_back(i);
  return buckets;
}

// ---------------------------------------------------------------------------
// Coarsen–route–refine

RoutingGraph coarsen_graph(const RoutingGraph& fine, int factor) {
  assert(factor >= 2);
  const int fx = fine.tiles_x();
  const int fy = fine.tiles_y();
  const int cx_count = (fx + factor - 1) / factor;
  const int cy_count = (fy + factor - 1) / factor;
  const auto lo_of = [&](int c) { return c * factor; };
  const auto hi_of = [&](int c, int fine_count) {
    return std::min((c + 1) * factor, fine_count);  // exclusive
  };

  std::vector<int> h_cap(
      static_cast<std::size_t>(std::max(0, cx_count - 1)) * cy_count, 0);
  std::vector<int> v_cap(
      static_cast<std::size_t>(cx_count) * std::max(0, cy_count - 1), 0);
  std::vector<int> vert_cap(static_cast<std::size_t>(cx_count) * cy_count, 0);

  // A coarse h-edge (cx,cy) collapses the fine h-edges crossing the fine
  // column boundary at tx = (cx+1)*factor - 1, over cy's fine rows.
  for (int cy = 0; cy < cy_count; ++cy)
    for (int cx = 0; cx + 1 < cx_count; ++cx) {
      const int bx = (cx + 1) * factor - 1;
      int sum = 0;
      for (int ty = lo_of(cy); ty < hi_of(cy, fy); ++ty)
        sum += fine.h_capacity(bx, ty);
      h_cap[static_cast<std::size_t>(cy) * (cx_count - 1) + cx] = sum;
    }
  for (int cy = 0; cy + 1 < cy_count; ++cy)
    for (int cx = 0; cx < cx_count; ++cx) {
      const int by = (cy + 1) * factor - 1;
      int sum = 0;
      for (int tx = lo_of(cx); tx < hi_of(cx, fx); ++tx)
        sum += fine.v_capacity(tx, by);
      v_cap[static_cast<std::size_t>(cy) * cx_count + cx] = sum;
    }
  for (int cy = 0; cy < cy_count; ++cy)
    for (int cx = 0; cx < cx_count; ++cx) {
      int sum = 0;
      for (int ty = lo_of(cy); ty < hi_of(cy, fy); ++ty)
        for (int tx = lo_of(cx); tx < hi_of(cx, fx); ++tx)
          sum += fine.vertex_capacity(tx, ty);
      vert_cap[static_cast<std::size_t>(cy) * cx_count + cx] = sum;
    }

  return RoutingGraph::with_capacities(cx_count, cy_count, std::move(h_cap),
                                       std::move(v_cap), std::move(vert_cap));
}

void commit_coarse_path(RoutingGraph& coarse,
                        const std::vector<grid::GCellId>& cells, int sign) {
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
    const grid::GCellId a = cells[i];
    const grid::GCellId b = cells[i + 1];
    if (a.ty == b.ty)
      coarse.add_h_demand(std::min(a.tx, b.tx), a.ty, sign);
    else
      coarse.add_v_demand(a.tx, std::min(a.ty, b.ty), sign);
  }
  // Line ends at both end cells of every maximal vertical run, mirroring
  // CongestionIndex::commit.
  std::size_t i = 0;
  while (i + 1 < cells.size()) {
    if (cells[i].tx == cells[i + 1].tx) {
      const std::size_t run_start = i;
      while (i + 1 < cells.size() && cells[i].tx == cells[i + 1].tx) ++i;
      coarse.add_vertex_demand(cells[run_start].tx, cells[run_start].ty, sign);
      coarse.add_vertex_demand(cells[i].tx, cells[i].ty, sign);
    } else {
      ++i;
    }
  }
}

geom::Rect stamp_corridor(const std::vector<grid::GCellId>& coarse_cells,
                          int factor, int margin, int tiles_x, int tiles_y,
                          GlobalSearchScratch& scratch) {
  assert(!coarse_cells.empty());
  scratch.begin_corridor(static_cast<std::size_t>(tiles_x) * tiles_y);
  geom::Rect bbox{tiles_x, tiles_y, -1, -1};  // empty until the first hull
  bool first = true;
  for (const grid::GCellId cell : coarse_cells) {
    const geom::Rect fine_rect =
        geom::Rect{cell.tx * factor, cell.ty * factor,
                   (cell.tx + 1) * factor - 1, (cell.ty + 1) * factor - 1}
            .inflated(margin)
            .intersect(geom::Rect{0, 0, tiles_x - 1, tiles_y - 1});
    for (geom::Coord ty = fine_rect.ylo; ty <= fine_rect.yhi; ++ty)
      for (geom::Coord tx = fine_rect.xlo; tx <= fine_rect.xhi; ++tx)
        scratch.admit_tile(static_cast<std::size_t>(ty) * tiles_x + tx);
    bbox = first ? fine_rect : bbox.hull(fine_rect);
    first = false;
  }
  return bbox;
}

}  // namespace mebl::global
