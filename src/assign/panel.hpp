#pragma once

#include <vector>

#include "global/global_router.hpp"

namespace mebl::assign {

/// A maximal straight run of a global route inside one panel.
///
/// Vertical runs live in *column panels* (a column of GCells) and are the
/// objects of stitch-aware layer and track assignment; horizontal runs live
/// in row panels and are assigned conventionally. `span` is in tile
/// coordinates along the run; `fixed_tile` is the panel index (tx for
/// vertical runs, ty for horizontal runs).
struct GlobalRun {
  netlist::NetId net = -1;
  std::size_t path_index = 0;  ///< index into GlobalResult::paths
  geom::Orientation dir = geom::Orientation::kVertical;
  int fixed_tile = 0;
  geom::Interval span;  ///< tile interval along the run (length >= 1... 2 tiles min)

  /// Horizontal continuation at each end of a *vertical* run: 0 = none
  /// (terminal pin / via only), -1 = the connected horizontal wire leaves
  /// toward smaller x, +1 = toward larger x. Short-polygon (bad-end)
  /// analysis needs this: an end in a stitch unfriendly region is bad only
  /// when its horizontal wire crosses the adjacent stitching line.
  int lo_continuation = 0;
  int hi_continuation = 0;

  // --- filled by layer assignment ---
  geom::LayerId layer = -1;

  // --- filled by track assignment ---
  /// Per tile-row piece: (tile interval, absolute track coordinate).
  /// Consecutive pieces with different tracks imply a dogleg at the
  /// boundary. Empty when the run was ripped up (assigned directly during
  /// detailed routing).
  std::vector<std::pair<geom::Interval, geom::Coord>> pieces;
  bool ripped = false;
  /// Bad ends left after track assignment (0..2) — drives the stitch-aware
  /// detailed-routing net order.
  int bad_ends = 0;
};

/// All runs extracted from a global-routing result, with per-path indexing
/// so later stages can walk a subnet's runs in path order.
struct RoutePlan {
  std::vector<GlobalRun> runs;
  std::vector<std::vector<std::size_t>> runs_of_path;  ///< path -> run indices
};

/// Split every routed TilePath into maximal straight runs and derive the
/// end-continuation annotations. Single-tile paths produce no runs (they are
/// routed purely by the detailed router).
[[nodiscard]] RoutePlan extract_runs(const global::GlobalResult& result,
                                     const grid::RoutingGrid& grid);

/// Indices of the vertical runs in column panel `tx` (any layer).
[[nodiscard]] std::vector<std::size_t> runs_in_column_panel(
    const RoutePlan& plan, int tx);

/// Indices of the horizontal runs in row panel `ty` (any layer).
[[nodiscard]] std::vector<std::size_t> runs_in_row_panel(const RoutePlan& plan,
                                                         int ty);

}  // namespace mebl::assign
