#include <algorithm>
#include <cassert>
#include <numeric>

#include "assign/track_assign.hpp"
#include "graph/dag_longest_path.hpp"
#include "telemetry/telemetry.hpp"

namespace mebl::assign {

namespace {

using geom::Coord;
using geom::Interval;

/// Tracks at the start (end) of a region that would turn a line end with a
/// left (right) leaving wire into a bad end — the dummy-edge weights of the
/// constraint graphs.
int bad_prefix_len(const Interval& region, const grid::StitchPlan& stitch) {
  int len = 0;
  for (Coord x = region.lo; x <= region.hi && is_bad_end(x, -1, stitch); ++x)
    ++len;
  return len;
}

int bad_suffix_len(const Interval& region, const grid::StitchPlan& stitch) {
  int len = 0;
  for (Coord x = region.hi; x >= region.lo && is_bad_end(x, +1, stitch); --x)
    ++len;
  return len;
}

/// One per-row piece of a segment inside a region.
struct Piece {
  std::size_t seg;  ///< index into the region's segment list
  Coord row;
  bool is_lo_end;
  bool is_hi_end;
};

/// Per-region solver implementing ordering + constraint graphs + greedy
/// dogleg assignment.
class RegionSolver {
 public:
  RegionSolver(const TrackAssignInstance& instance, Interval region,
               std::vector<std::size_t> members)
      : instance_(instance), region_(region), members_(std::move(members)) {}

  void solve(TrackAssignResult& result) {
    if (members_.empty()) return;
    determine_order();
    while (!members_.empty()) {
      build_pieces();
      if (compute_windows(/*with_dummies=*/true)) break;
      // Bad ends unavoidable at this density: drop the unfriendly-region
      // offsets and accept (counted) bad ends.
      if (compute_windows(/*with_dummies=*/false)) break;
      // Still infeasible: density exceeds the region's track count. Rip the
      // shortest segment (cheapest to reroute directly) and retry.
      rip_one(result);
    }
    assign_tracks(result);
  }

 private:
  void determine_order() {
    // Longest segments get the positions adjacent to the stitching lines
    // (they have the most dogleg freedom); then each side prefers a segment
    // that does not overlap the adjacent outer segment's bad-end rows so
    // those bad ends can be resolved with doglegs; the rest fill the middle.
    std::vector<std::size_t> pool = members_;
    std::stable_sort(pool.begin(), pool.end(), [&](std::size_t a, std::size_t b) {
      return instance_.segments[a].rows.length() >
             instance_.segments[b].rows.length();
    });

    std::vector<std::size_t> left, right;
    bool to_left = true;
    while (!pool.empty()) {
      const std::size_t adjacent =
          to_left ? (left.empty() ? SIZE_MAX : left.back())
                  : (right.empty() ? SIZE_MAX : right.back());
      std::size_t pick_pos = 0;
      if (adjacent != SIZE_MAX) {
        const auto& adj = instance_.segments[adjacent];
        // Rows where the adjacent segment risks a bad end toward this side.
        const int toward = to_left ? -1 : +1;
        std::vector<Coord> risk_rows;
        if (adj.lo_continuation == toward) risk_rows.push_back(adj.rows.lo);
        if (adj.hi_continuation == toward) risk_rows.push_back(adj.rows.hi);
        for (std::size_t i = 0; i < pool.size(); ++i) {
          const auto& cand = instance_.segments[pool[i]];
          const bool clear = std::none_of(
              risk_rows.begin(), risk_rows.end(),
              [&](Coord r) { return cand.rows.contains(r); });
          if (clear) {
            pick_pos = i;
            break;
          }
        }
      }
      (to_left ? left : right).push_back(pool[pick_pos]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick_pos));
      to_left = !to_left;
    }
    order_ = std::move(left);
    order_.insert(order_.end(), right.rbegin(), right.rend());
    members_ = order_;  // keep members in order for later passes
  }

  void build_pieces() {
    pieces_.clear();
    piece_of_.clear();
    for (std::size_t m = 0; m < members_.size(); ++m) {
      const auto& seg = instance_.segments[members_[m]];
      std::vector<std::size_t> ids;
      for (Coord r = seg.rows.lo; r <= seg.rows.hi; ++r) {
        ids.push_back(pieces_.size());
        pieces_.push_back(Piece{m, r, r == seg.rows.lo, r == seg.rows.hi});
      }
      piece_of_.push_back(std::move(ids));
    }
  }

  /// Longest-path windows [m, M] per piece. Returns false when some window
  /// is empty (infeasible under the current constraints).
  bool compute_windows(bool with_dummies) {
    const std::size_t n = pieces_.size();
    const int tracks = region_.length();
    // Node layout: 0 = source, 1 = dummy, 2.. = pieces.
    const auto node = [](std::size_t p) {
      return static_cast<graph::NodeId>(p + 2);
    };
    // Rank of each member in the left-to-right order.
    std::vector<std::size_t> rank(members_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) {
      const auto it = std::find(members_.begin(), members_.end(), order_[i]);
      if (it != members_.end())
        rank[static_cast<std::size_t>(it - members_.begin())] = i;
    }

    graph::Dag min_dag(n + 2);
    graph::Dag max_dag(n + 2);
    for (std::size_t p = 0; p < n; ++p) {
      min_dag.add_arc(0, node(p), 1);
      max_dag.add_arc(0, node(p), 1);
    }
    if (with_dummies) {
      min_dag.add_arc(0, 1, bad_prefix_len(region_, *instance_.stitch));
      max_dag.add_arc(0, 1, bad_suffix_len(region_, *instance_.stitch));
      for (std::size_t p = 0; p < n; ++p) {
        const Piece& piece = pieces_[p];
        const auto& seg = instance_.segments[members_[piece.seg]];
        const bool bad_left = (piece.is_lo_end && seg.lo_continuation == -1) ||
                              (piece.is_hi_end && seg.hi_continuation == -1);
        const bool bad_right = (piece.is_lo_end && seg.lo_continuation == +1) ||
                               (piece.is_hi_end && seg.hi_continuation == +1);
        if (bad_left) min_dag.add_arc(1, node(p), 1);
        if (bad_right) max_dag.add_arc(1, node(p), 1);
      }
    }
    // Order arcs between same-row pieces.
    std::vector<std::vector<std::size_t>> by_row;
    for (std::size_t p = 0; p < n; ++p) {
      const auto r = static_cast<std::size_t>(pieces_[p].row - row_lo());
      if (by_row.size() <= r) by_row.resize(r + 1);
      by_row[r].push_back(p);
    }
    for (const auto& row : by_row) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        for (std::size_t j = 0; j < row.size(); ++j) {
          if (i == j) continue;
          if (rank[pieces_[row[i]].seg] < rank[pieces_[row[j]].seg])
            min_dag.add_arc(node(row[i]), node(row[j]), 1);
          else
            max_dag.add_arc(node(row[i]), node(row[j]), 1);
        }
      }
    }

    const auto min_dist = min_dag.longest_from(0);
    const auto max_dist = max_dag.longest_from(0);
    assert(min_dist && max_dist);  // DAGs by construction (order is total)
    min_track_.assign(n, 1);
    max_track_.assign(n, tracks);
    for (std::size_t p = 0; p < n; ++p) {
      const auto lo = (*min_dist)[static_cast<std::size_t>(node(p))];
      const auto hi = (*max_dist)[static_cast<std::size_t>(node(p))];
      min_track_[p] = static_cast<int>(lo.value_or(1));
      max_track_[p] = tracks + 1 - static_cast<int>(hi.value_or(1));
      if (min_track_[p] > max_track_[p]) return false;
    }
    return true;
  }

  void rip_one(TrackAssignResult& result) {
    // Rip the shortest member (fewest tiles to reroute).
    auto it = std::min_element(
        members_.begin(), members_.end(), [&](std::size_t a, std::size_t b) {
          return instance_.segments[a].rows.length() <
                 instance_.segments[b].rows.length();
        });
    result.tracks[*it].ripped = true;
    ++result.total_ripped;
    order_.erase(std::remove(order_.begin(), order_.end(), *it), order_.end());
    members_.erase(it);
  }

  void assign_tracks(TrackAssignResult& result) {
    const int tracks = region_.length();
    std::vector<int> last_used(
        static_cast<std::size_t>(row_hi() - row_lo() + 1), 0);

    for (const std::size_t member : order_) {
      const auto mi = static_cast<std::size_t>(
          std::find(members_.begin(), members_.end(), member) -
          members_.begin());
      if (mi >= members_.size()) continue;  // ripped
      const auto& ids = piece_of_[mi];
      const TrackSegment& seg = instance_.segments[member];
      SegmentTrack& out = result.tracks[member];

      // Prefer a single straight track satisfying every piece's window and
      // the already-used tracks in its rows.
      int straight_lo = 1, straight_hi = tracks;
      for (const std::size_t p : ids) {
        const auto r = static_cast<std::size_t>(pieces_[p].row - row_lo());
        straight_lo = std::max({straight_lo, min_track_[p], last_used[r] + 1});
        straight_hi = std::min(straight_hi, max_track_[p]);
      }
      bool ok = true;
      std::vector<int> track_of_piece(ids.size());
      if (straight_lo <= straight_hi) {
        std::fill(track_of_piece.begin(), track_of_piece.end(), straight_lo);
      } else {
        // Dogleg: walk the pieces, staying as close to the previous track as
        // the window and occupancy allow.
        int prev = -1;
        for (std::size_t k = 0; k < ids.size() && ok; ++k) {
          const std::size_t p = ids[k];
          const auto r = static_cast<std::size_t>(pieces_[p].row - row_lo());
          int lo = std::max(min_track_[p], last_used[r] + 1);
          int hi = max_track_[p];
          if (lo > hi) hi = tracks;  // relax the right window before failing
          if (lo > hi) {
            ok = false;
            break;
          }
          track_of_piece[k] = prev < 0 ? lo : std::clamp(prev, lo, hi);
          prev = track_of_piece[k];
        }
      }
      if (!ok) {
        out.ripped = true;
        ++result.total_ripped;
        continue;
      }
      for (std::size_t k = 0; k < ids.size(); ++k) {
        const std::size_t p = ids[k];
        const auto r = static_cast<std::size_t>(pieces_[p].row - row_lo());
        last_used[r] = std::max(last_used[r], track_of_piece[k]);
        const Coord x = region_.lo + track_of_piece[k] - 1;
        const Interval row{pieces_[p].row, pieces_[p].row};
        if (!out.pieces.empty() && out.pieces.back().second == x)
          out.pieces.back().first = out.pieces.back().first.hull(row);
        else
          out.pieces.emplace_back(row, x);
      }
      out.bad_ends = count_bad_ends(seg, out, *instance_.stitch);
      result.total_bad_ends += out.bad_ends;
    }
  }

  [[nodiscard]] Coord row_lo() const {
    Coord lo = instance_.segments[members_[0]].rows.lo;
    for (const std::size_t m : members_)
      lo = std::min(lo, instance_.segments[m].rows.lo);
    return lo;
  }
  [[nodiscard]] Coord row_hi() const {
    Coord hi = instance_.segments[members_[0]].rows.hi;
    for (const std::size_t m : members_)
      hi = std::max(hi, instance_.segments[m].rows.hi);
    return hi;
  }

  const TrackAssignInstance& instance_;
  Interval region_;
  std::vector<std::size_t> members_;  ///< segment indices, in order
  std::vector<std::size_t> order_;    ///< left-to-right sequence
  std::vector<Piece> pieces_;
  std::vector<std::vector<std::size_t>> piece_of_;  ///< member -> piece ids
  std::vector<int> min_track_;
  std::vector<int> max_track_;
};

}  // namespace

TrackAssignResult track_assign_graph(const TrackAssignInstance& instance) {
  TELEMETRY_SPAN("assign.track.graph");
  assert(instance.stitch != nullptr);
  TrackAssignResult result;
  result.tracks.resize(instance.segments.size());
  if (instance.segments.empty()) return result;

  // Split the panel into regions between stitching lines.
  std::vector<Interval> regions;
  Coord start = instance.x_span.lo;
  for (Coord x = instance.x_span.lo; x <= instance.x_span.hi; ++x) {
    if (!instance.stitch->is_stitch_column(x)) continue;
    if (x > start) regions.push_back({start, x - 1});
    start = x + 1;
  }
  if (start <= instance.x_span.hi) regions.push_back({start, instance.x_span.hi});
  if (regions.empty()) {
    // Degenerate: every track is a stitching line; nothing can be assigned.
    for (auto& t : result.tracks) t.ripped = true;
    result.total_ripped = static_cast<int>(result.tracks.size());
    return result;
  }

  // Distribute segments to regions, longest first, by remaining capacity at
  // the segment's rows.
  const Coord row_min = instance.segments[0].rows.lo;
  Coord row_max = instance.segments[0].rows.hi;
  Coord row_lo = row_min;
  for (const auto& s : instance.segments) {
    row_lo = std::min(row_lo, s.rows.lo);
    row_max = std::max(row_max, s.rows.hi);
  }
  const auto rows = static_cast<std::size_t>(row_max - row_lo + 1);
  std::vector<std::vector<int>> load(regions.size(), std::vector<int>(rows, 0));

  std::vector<std::size_t> order(instance.segments.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return instance.segments[a].rows.length() >
           instance.segments[b].rows.length();
  });

  std::vector<std::vector<std::size_t>> region_members(regions.size());
  for (const std::size_t idx : order) {
    const auto& seg = instance.segments[idx];
    std::size_t best_region = 0;
    int best_slack = std::numeric_limits<int>::min();
    for (std::size_t g = 0; g < regions.size(); ++g) {
      int peak = 0;
      for (Coord r = seg.rows.lo; r <= seg.rows.hi; ++r)
        peak = std::max(peak, load[g][static_cast<std::size_t>(r - row_lo)]);
      const int slack = regions[g].length() - peak;
      if (slack > best_slack) {
        best_slack = slack;
        best_region = g;
      }
    }
    region_members[best_region].push_back(idx);
    for (Coord r = seg.rows.lo; r <= seg.rows.hi; ++r)
      ++load[best_region][static_cast<std::size_t>(r - row_lo)];
  }

  for (std::size_t g = 0; g < regions.size(); ++g) {
    RegionSolver solver(instance, regions[g], std::move(region_members[g]));
    solver.solve(result);
  }
  return result;
}

}  // namespace mebl::assign
