#include <algorithm>
#include <cassert>
#include <numeric>

#include "assign/track_assign.hpp"

namespace mebl::assign {

bool is_bad_end(geom::Coord x, int continuation,
                const grid::StitchPlan& stitch) {
  if (continuation == 0) return false;  // no horizontal wire, no short polygon
  const auto& lines = stitch.lines();
  if (lines.empty()) return false;
  if (continuation < 0) {
    // Wire leaves to smaller x; the first line below x cuts it.
    auto it = std::lower_bound(lines.begin(), lines.end(), x);
    if (it == lines.begin()) return false;
    return x - *std::prev(it) <= stitch.epsilon();
  }
  // Wire leaves to larger x; the first line above x cuts it.
  auto it = std::upper_bound(lines.begin(), lines.end(), x);
  if (it == lines.end()) return false;
  return *it - x <= stitch.epsilon();
}

int count_bad_ends(const TrackSegment& segment, const SegmentTrack& track,
                   const grid::StitchPlan& stitch) {
  if (track.ripped || track.pieces.empty()) return 0;
  int bad = 0;
  // The low end lives on the first piece, the high end on the last.
  if (is_bad_end(track.pieces.front().second, segment.lo_continuation, stitch))
    ++bad;
  if (is_bad_end(track.pieces.back().second, segment.hi_continuation, stitch))
    ++bad;
  return bad;
}

TrackAssignResult track_assign_baseline(const TrackAssignInstance& instance) {
  assert(instance.stitch != nullptr);
  TrackAssignResult result;
  result.tracks.resize(instance.segments.size());

  // Left-edge algorithm: sort by row start, first-fit the lowest free track.
  std::vector<std::size_t> order(instance.segments.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& sa = instance.segments[a];
    const auto& sb = instance.segments[b];
    if (sa.rows.lo != sb.rows.lo) return sa.rows.lo < sb.rows.lo;
    return sa.rows.length() > sb.rows.length();
  });

  // occupied[x - x_span.lo] accumulates the row intervals used per track.
  const auto width = static_cast<std::size_t>(instance.x_span.length());
  std::vector<geom::IntervalSet> occupied(width);

  for (const std::size_t idx : order) {
    const TrackSegment& seg = instance.segments[idx];
    SegmentTrack& out = result.tracks[idx];
    bool placed = false;
    for (std::size_t t = 0; t < width && !placed; ++t) {
      if (occupied[t].overlaps(seg.rows)) continue;
      occupied[t].insert(seg.rows);
      const geom::Coord x = instance.x_span.lo + static_cast<geom::Coord>(t);
      out.pieces.emplace_back(seg.rows, x);
      placed = true;
    }
    if (!placed) {
      out.ripped = true;
      ++result.total_ripped;
      continue;
    }
    // The baseline ignores stitching lines during assignment; segments that
    // ended up on a line column violate the vertical routing constraint and
    // are ripped up for direct detailed routing (paper SIV-A).
    if (instance.stitch->is_stitch_column(out.pieces.front().second)) {
      out.pieces.clear();
      out.ripped = true;
      ++result.total_ripped;
      continue;
    }
    out.bad_ends = count_bad_ends(seg, out, *instance.stitch);
    result.total_bad_ends += out.bad_ends;
  }
  return result;
}

}  // namespace mebl::assign
