#pragma once

// assign::Stage — one uniform entry point per assignment stage: a routing
// plan goes in, the plan's runs are annotated in place, and a small
// telemetry summary comes out. The core router used to own two bespoke
// private methods for layer and track assignment; putting both behind one
// interface lets the orchestrator, the fused panel pipeline and the report
// observer treat the stages uniformly, and keeps the panel decomposition
// at the assign layer where the incremental (ECO) path can reuse it.

#include <string_view>

#include "assign/layer_assign.hpp"
#include "assign/panel_ops.hpp"
#include "grid/routing_grid.hpp"

namespace mebl::exec {
class ThreadPool;
}  // namespace mebl::exec

namespace mebl::assign {

/// Everything the assignment stages need, mapped from the core RouterConfig
/// by the orchestrator (core depends on assign, never the other way).
struct StageConfig {
  LayerMethod layer = LayerMethod::kColorableSubset;
  TrackMethod track = TrackMethod::kGraph;
  /// Per-panel ILP knobs. The track stages overwrite `deadline` (from
  /// ilp_budget_seconds at run start; cleared entirely when node_budget > 0)
  /// and `pool` (with the stage's pool) — everything else passes through.
  IlpTrackOptions ilp;
  /// Wall-clock budget for all ILP panels of one run, converted to one
  /// absolute deadline shared by every worker when the track stage starts.
  /// Ignored in deterministic mode (ilp.node_budget > 0).
  double ilp_budget_seconds = 60.0;
};

/// Telemetry summary of one stage execution. The detailed counters land in
/// the telemetry registry (telemetry/keys.hpp) as the stage runs, so
/// stage-boundary observers see them in the right per-stage delta; this
/// struct carries only what the orchestrator consumes directly.
struct StageStats {
  int panels = 0;  ///< panel (or panel × layer) tasks processed
  /// An ILP panel fell back to the graph heuristic — it started past the
  /// shared deadline or its solve returned no usable assignment (maps to
  /// RoutingResult::ilp_budget_exceeded — the Table VII "NA" flag). Solves
  /// merely truncated by a limit but still usable only bump the budget-hit
  /// counter.
  bool ilp_budget_exceeded = false;
};

/// Uniform stage interface: annotate `plan` in place over `grid`, fanning
/// panel tasks out on `pool`. Implementations write disjoint per-run slots
/// from parallel bodies and commit in deterministic order, so the resulting
/// plan is bit-identical at every pool size (DESIGN.md §7).
class Stage {
 public:
  virtual ~Stage() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  virtual StageStats run(RoutePlan& plan, const grid::RoutingGrid& grid,
                         exec::ThreadPool& pool) = 0;
};

/// Layer assignment of every panel: column panels over the vertical layer
/// list, row panels over the horizontal one, one task per panel.
class LayerAssignStage final : public Stage {
 public:
  explicit LayerAssignStage(const StageConfig& config) : config_(config) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "layer_assign";
  }
  StageStats run(RoutePlan& plan, const grid::RoutingGrid& grid,
                 exec::ThreadPool& pool) override;

 private:
  StageConfig config_;
};

/// Track assignment of every (column panel, vertical layer) task. Expects
/// layers assigned (i.e. LayerAssignStage already ran on the plan).
class TrackAssignStage final : public Stage {
 public:
  explicit TrackAssignStage(const StageConfig& config) : config_(config) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "track_assign";
  }
  StageStats run(RoutePlan& plan, const grid::RoutingGrid& grid,
                 exec::ThreadPool& pool) override;

 private:
  StageConfig config_;
};

/// The panel pipeline: one fused task per column panel runs that panel's
/// layer assignment and then immediately its track assignment, so on the
/// pool the layer work of panel i+1 overlaps the track work of panel i
/// instead of waiting at a global barrier between the stages. Row panels
/// (layer-only) ride along as extra tasks of the same fan-out.
///
/// The fused plan is bit-identical to LayerAssignStage followed by
/// TrackAssignStage: every task touches only its own panel's runs, and a
/// panel's track solve depends on nothing but that panel's layer result.
/// Two observable differences: the per-stage telemetry deltas land in the
/// fused (track) stage rather than split across two stages, and the shared
/// ILP deadline starts ticking before layer work rather than after it.
class FusedAssignStage final : public Stage {
 public:
  explicit FusedAssignStage(const StageConfig& config) : config_(config) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "assign_pipeline";
  }
  StageStats run(RoutePlan& plan, const grid::RoutingGrid& grid,
                 exec::ThreadPool& pool) override;

 private:
  StageConfig config_;
};

}  // namespace mebl::assign
