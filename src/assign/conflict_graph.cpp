#include "assign/conflict_graph.hpp"

#include <algorithm>
#include <cassert>

namespace mebl::assign {

std::vector<double> ConflictGraph::vertex_weights() const {
  std::vector<double> weight(segments.size(), 0.0);
  for (const auto& e : edges) {
    weight[static_cast<std::size_t>(e.a)] += e.weight;
    weight[static_cast<std::size_t>(e.b)] += e.weight;
  }
  return weight;
}

double ConflictGraph::coloring_cost(const std::vector<int>& color) const {
  assert(color.size() == segments.size());
  double cost = 0.0;
  for (const auto& e : edges)
    if (color[static_cast<std::size_t>(e.a)] ==
        color[static_cast<std::size_t>(e.b)])
      cost += e.weight;
  return cost;
}

ConflictGraph build_conflict_graph(const std::vector<SegmentProfile>& segments,
                                   bool include_line_end_term) {
  ConflictGraph graph;
  graph.segments = segments;
  if (segments.empty()) return graph;

  // Row extent of the panel.
  geom::Coord lo = segments[0].span.lo;
  geom::Coord hi = segments[0].span.hi;
  for (const auto& s : segments) {
    assert(!s.span.empty());
    lo = std::min(lo, s.span.lo);
    hi = std::max(hi, s.span.hi);
  }

  // Segment density and line-end density per row.
  const std::size_t rows = static_cast<std::size_t>(hi - lo + 1);
  std::vector<int> density(rows, 0);
  std::vector<int> end_density(rows, 0);
  for (const auto& s : segments) {
    for (geom::Coord r = s.span.lo; r <= s.span.hi; ++r)
      ++density[static_cast<std::size_t>(r - lo)];
    ++end_density[static_cast<std::size_t>(s.span.lo - lo)];
    ++end_density[static_cast<std::size_t>(s.span.hi - lo)];
  }

  for (std::size_t i = 0; i < segments.size(); ++i) {
    for (std::size_t j = i + 1; j < segments.size(); ++j) {
      const geom::Interval overlap =
          segments[i].span.intersect(segments[j].span);
      if (overlap.empty()) continue;
      double w = 0.0;
      for (geom::Coord r = overlap.lo; r <= overlap.hi; ++r)
        w = std::max(w,
                     static_cast<double>(density[static_cast<std::size_t>(r - lo)]));
      if (include_line_end_term) {
        // Rows where both segments have a line end.
        double d_end = 0.0;
        for (const geom::Coord ri :
             {segments[i].span.lo, segments[i].span.hi}) {
          for (const geom::Coord rj :
               {segments[j].span.lo, segments[j].span.hi}) {
            if (ri == rj)
              d_end = std::max(
                  d_end,
                  static_cast<double>(end_density[static_cast<std::size_t>(ri - lo)]));
          }
        }
        w += d_end;
      }
      graph.edges.push_back(graph::WeightedEdge{
          static_cast<graph::NodeId>(i), static_cast<graph::NodeId>(j), w});
    }
  }
  return graph;
}

}  // namespace mebl::assign
