#pragma once

// Per-panel assignment operations, factored out of the full-pipeline
// orchestrator so they can run on any subset of panels. The batch router
// maps them over every panel; the incremental (ECO) path re-runs exactly
// the panels whose run set changed, copying the previous assignment for
// the rest (DESIGN.md §12). Each operation touches only its own panel's
// runs, so calls on distinct panels are safe to run in parallel.

#include <vector>

#include "assign/panel.hpp"
#include "assign/track_assign.hpp"

namespace mebl::assign {

/// Distribute one panel's runs over the panel-direction layer list, writing
/// GlobalRun::layer in place. `column_panel` selects vertical-run conflict
/// handling; `colorable_subset` picks the paper's iterated max-k-colorable-
/// subset heuristic over the MST baseline. Returns false (and does nothing)
/// when the panel has no runs.
bool assign_panel_layers(RoutePlan& plan,
                         const std::vector<std::size_t>& run_ids,
                         const std::vector<geom::LayerId>& layers,
                         bool column_panel, bool colorable_subset);

/// One (column panel, vertical layer) track-assignment problem plus the
/// back-references needed to write the solution onto the plan. `members` is
/// parallel to `instance.segments`.
struct TrackPanelTask {
  int tx = 0;
  geom::LayerId layer = -1;
  TrackAssignInstance instance;
  std::vector<std::size_t> members;
};

/// Build the track tasks of the listed column panels: one task per
/// (panel, vertical layer) pair that has at least one run. Task order is
/// deterministic — ascending (tx, layer) — which downstream index-order
/// commits rely on.
[[nodiscard]] std::vector<TrackPanelTask> build_track_tasks(
    const RoutePlan& plan, const grid::RoutingGrid& grid,
    const std::vector<int>& panels);

/// Write a solved task back onto the plan's runs (pieces / ripped /
/// bad_ends, parallel to task.members).
void apply_track_result(RoutePlan& plan, const TrackPanelTask& task,
                        const TrackAssignResult& solved);

/// What one solve_track_task call did, for the caller's telemetry.
struct TrackTaskStats {
  std::int64_t ilp_nodes = 0;   ///< branch-and-bound nodes (ILP method only)
  bool ilp_fallback = false;    ///< ILP gave up / deadline passed; graph used
  bool ilp_budget_hit = false;  ///< the solve was truncated by its budget
};

/// Solve one track task under `method`. This is the single fallback policy
/// shared by the batch stages and the incremental ECO path: the ILP method
/// skips panels that start past the shared deadline (unless a deterministic
/// node budget is set, in which case the clock is never consulted) and falls
/// back to the graph heuristic whenever the solve returns no usable
/// assignment.
[[nodiscard]] TrackAssignResult solve_track_task(const TrackPanelTask& task,
                                                 TrackMethod method,
                                                 const IlpTrackOptions& options,
                                                 TrackTaskStats& stats);

}  // namespace mebl::assign
