#include "assign/panel.hpp"

#include <cassert>

namespace mebl::assign {

using geom::Orientation;
using grid::GCellId;

RoutePlan extract_runs(const global::GlobalResult& result,
                       const grid::RoutingGrid& grid) {
  (void)grid;
  RoutePlan plan;
  plan.runs_of_path.resize(result.paths.size());

  for (std::size_t p = 0; p < result.paths.size(); ++p) {
    const auto& path = result.paths[p];
    if (!path.routed || path.tiles.size() < 2) continue;
    const auto& tiles = path.tiles;

    std::size_t i = 0;
    while (i + 1 < tiles.size()) {
      const bool vertical = tiles[i].tx == tiles[i + 1].tx;
      const std::size_t run_start = i;
      while (i + 1 < tiles.size() &&
             (tiles[i].tx == tiles[i + 1].tx) == vertical)
        ++i;
      GlobalRun run;
      run.net = path.net;
      run.path_index = p;
      run.dir = vertical ? Orientation::kVertical : Orientation::kHorizontal;
      if (vertical) {
        run.fixed_tile = tiles[run_start].tx;
        const int y0 = tiles[run_start].ty;
        const int y1 = tiles[i].ty;
        run.span = {std::min(y0, y1), std::max(y0, y1)};
        // Continuations: the tile adjacent to each end of the run along the
        // path tells us where the connected horizontal wire goes.
        const auto continuation_at = [&](std::size_t end_index,
                                         bool is_first) -> int {
          if (is_first) {
            if (end_index == 0) return 0;  // terminal (pin via)
            return tiles[end_index - 1].tx > tiles[end_index].tx ? +1 : -1;
          }
          if (end_index + 1 >= tiles.size()) return 0;
          return tiles[end_index + 1].tx > tiles[end_index].tx ? +1 : -1;
        };
        const int first_cont = continuation_at(run_start, true);
        const int last_cont = continuation_at(i, false);
        // Map path-order ends to span lo/hi ends.
        if (tiles[run_start].ty <= tiles[i].ty) {
          run.lo_continuation = first_cont;
          run.hi_continuation = last_cont;
        } else {
          run.lo_continuation = last_cont;
          run.hi_continuation = first_cont;
        }
      } else {
        run.fixed_tile = tiles[run_start].ty;
        const int x0 = tiles[run_start].tx;
        const int x1 = tiles[i].tx;
        run.span = {std::min(x0, x1), std::max(x0, x1)};
      }
      plan.runs_of_path[p].push_back(plan.runs.size());
      plan.runs.push_back(std::move(run));
    }
  }
  return plan;
}

std::vector<std::size_t> runs_in_column_panel(const RoutePlan& plan, int tx) {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < plan.runs.size(); ++r)
    if (plan.runs[r].dir == Orientation::kVertical &&
        plan.runs[r].fixed_tile == tx)
      out.push_back(r);
  return out;
}

std::vector<std::size_t> runs_in_row_panel(const RoutePlan& plan, int ty) {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < plan.runs.size(); ++r)
    if (plan.runs[r].dir == Orientation::kHorizontal &&
        plan.runs[r].fixed_tile == ty)
      out.push_back(r);
  return out;
}

}  // namespace mebl::assign
