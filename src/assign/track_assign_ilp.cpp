#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "assign/track_assign.hpp"
#include "ilp/solver.hpp"
#include "telemetry/telemetry.hpp"

namespace mebl::assign {

namespace {

using geom::Coord;
using geom::Interval;

/// Builder for the multicommodity-flow ILP of paper SIII-C1 (Fig. 10,
/// eqs. 5-9) over one (panel, layer) instance.
class IlpBuilder {
 public:
  IlpBuilder(const TrackAssignInstance& instance, const IlpTrackOptions& options)
      : instance_(instance), options_(options) {
    // Usable tracks: panel columns not occupied by a stitching line
    // (forbidden vertices in the paper's model).
    for (Coord x = instance.x_span.lo; x <= instance.x_span.hi; ++x)
      if (!instance.stitch->is_stitch_column(x)) xs_.push_back(x);
  }

  TrackAssignResult run() {
    TrackAssignResult result;
    result.tracks.resize(instance_.segments.size());
    if (instance_.segments.empty()) return result;
    if (xs_.empty()) {
      for (auto& t : result.tracks) t.ripped = true;
      result.total_ripped = static_cast<int>(result.tracks.size());
      return result;
    }

    build();

    ilp::SolveOptions solve_options;
    solve_options.time_limit_seconds = options_.time_limit_seconds;
    solve_options.max_nodes = options_.max_nodes;
    solve_options.deadline = options_.deadline;
    solve_options.node_budget = options_.node_budget;
    solve_options.split_target = options_.split_target;
    if (options_.warm_start) seed_warm_start(solve_options);

    // One Solver per worker thread: panel solves are synchronous, so the
    // per-worker instance is never re-entered, and its search scratch
    // persists across the panels that worker processes.
    static thread_local ilp::Solver solver;
    solver.set_pool(options_.pool);
    const ilp::Solution solution = solver.solve(model_, solve_options);
    result.ilp_nodes = solution.nodes_explored;
    result.budget_hit = solution.limit_hit;

    if (solution.values.empty()) {
      result.solved = false;  // limit hit or proven infeasible: caller falls back
      return result;
    }
    result.optimal = solution.status == ilp::SolveStatus::kOptimal;
    extract(solution.values, result);
    return result;
  }

 private:
  [[nodiscard]] std::size_t num_tracks() const { return xs_.size(); }

  /// Penalty on a source/target edge whose track makes that end bad.
  [[nodiscard]] double end_weight(std::size_t t, int continuation) const {
    return is_bad_end(xs_[t], continuation, *instance_.stitch)
               ? options_.bad_end_penalty
               : 0.0;
  }

  /// Map the graph heuristic's assignment onto the model as the initial
  /// incumbent plus branching hint. Embedding can fail — a ripped segment, a
  /// dogleg wider than max_dogleg, or (defensively) a constraint violation —
  /// in which case `out` is left cold and the solve starts from +inf.
  void seed_warm_start(ilp::SolveOptions& out) const {
    const TrackAssignResult heur = track_assign_graph(instance_);
    const auto T = num_tracks();
    const auto track_at = [&](Coord x) -> std::size_t {
      const auto it = std::lower_bound(xs_.begin(), xs_.end(), x);
      if (it == xs_.end() || *it != x) return T;  // stitch column or off-panel
      return static_cast<std::size_t>(it - xs_.begin());
    };

    std::vector<std::uint8_t> values(model_.num_vars(), 0);
    for (std::size_t k = 0; k < instance_.segments.size(); ++k) {
      const auto& seg = instance_.segments[k];
      const SegmentTrack& tr = heur.tracks[k];
      if (tr.ripped || tr.pieces.empty()) return;
      std::size_t cur = track_at(tr.pieces.front().second);
      if (cur == T) return;
      values[static_cast<std::size_t>(src_[k][cur])] = 1;
      if (tgt_[k].empty()) continue;  // single-row: occupancy var only
      std::size_t piece = 0;
      for (Coord r = seg.rows.lo + 1; r <= seg.rows.hi; ++r) {
        while (tr.pieces[piece].first.hi < r) {
          ++piece;
          if (piece >= tr.pieces.size()) return;
        }
        const std::size_t next = track_at(tr.pieces[piece].second);
        if (next == T) return;
        const auto g = static_cast<std::size_t>(r - seg.rows.lo - 1);
        ilp::VarId var = -1;
        for (const auto& [j, v] : edge_[k][g][cur])
          if (j == next) {
            var = v;
            break;
          }
        if (var < 0) return;  // dogleg wider than the model allows
        values[static_cast<std::size_t>(var)] = 1;
        cur = next;
      }
      values[static_cast<std::size_t>(tgt_[k][cur])] = 1;
    }
    if (!model_.is_feasible(values)) return;

    out.branch_hint.clear();
    for (std::size_t v = 0; v < values.size(); ++v)
      if (values[v] != 0) out.branch_hint.push_back(static_cast<ilp::VarId>(v));
    out.warm_start = std::move(values);
  }

  void build() {
    const auto T = num_tracks();
    const auto& segments = instance_.segments;

    // Variables. For multi-row segment k: src_[k][t], tgt_[k][t], and
    // edge_[k][r - rows.lo][t][j] for doglegs to nearby tracks. For
    // single-row segments only src_ (occupancy) exists.
    src_.resize(segments.size());
    tgt_.resize(segments.size());
    edge_.resize(segments.size());
    for (std::size_t k = 0; k < segments.size(); ++k) {
      const auto& seg = segments[k];
      src_[k].resize(T);
      const bool single = seg.rows.lo == seg.rows.hi;
      for (std::size_t t = 0; t < T; ++t) {
        double w = end_weight(t, seg.lo_continuation);
        if (single) w += end_weight(t, seg.hi_continuation);
        src_[k][t] = model_.add_binary(w);
      }
      if (single) continue;
      tgt_[k].resize(T);
      for (std::size_t t = 0; t < T; ++t)
        tgt_[k][t] = model_.add_binary(end_weight(t, seg.hi_continuation));
      const auto gaps = static_cast<std::size_t>(seg.rows.length() - 1);
      edge_[k].resize(gaps);
      for (std::size_t g = 0; g < gaps; ++g) {
        edge_[k][g].resize(T);
        for (std::size_t t = 0; t < T; ++t) {
          for (std::size_t j = 0; j < T; ++j) {
            const Coord jump = std::abs(xs_[t] - xs_[j]);
            if (jump > options_.max_dogleg) continue;
            edge_[k][g][t].push_back(
                {j, model_.add_binary(static_cast<double>(jump))});
          }
        }
      }
    }

    // (5)/(6): each segment picks exactly one source and one target edge.
    for (std::size_t k = 0; k < segments.size(); ++k) {
      model_.add_sum_constraint(src_[k], ilp::Sense::kEq, 1.0);
      if (!tgt_[k].empty())
        model_.add_sum_constraint(tgt_[k], ilp::Sense::kEq, 1.0);
      // Redundant strengthening: a path uses exactly one track edge per row
      // gap. Implied by (5)-(7), but stated explicitly these become
      // "choose one" constraints that guide the branch-and-bound's cover
      // branching and tighten its disjoint lower bound.
      for (const auto& gap : edge_[k]) {
        std::vector<ilp::VarId> vars;
        for (const auto& from : gap)
          for (const auto& [j, var] : from) {
            (void)j;
            vars.push_back(var);
          }
        model_.add_sum_constraint(vars, ilp::Sense::kEq, 1.0);
      }
    }

    // (7): flow conservation at every track vertex of every segment.
    for (std::size_t k = 0; k < segments.size(); ++k) {
      if (tgt_[k].empty()) continue;  // single-row: nothing to conserve
      const auto gaps = edge_[k].size();
      for (std::size_t t = 0; t < T; ++t) {
        // Source row: src var feeds the first gap's outgoing edges.
        std::vector<ilp::Term> terms{{src_[k][t], 1.0}};
        for (const auto& [j, var] : edge_[k][0][t]) {
          (void)j;
          terms.push_back({var, -1.0});
        }
        model_.add_constraint(std::move(terms), ilp::Sense::kEq, 0.0);
      }
      for (std::size_t g = 1; g < gaps; ++g) {
        for (std::size_t t = 0; t < T; ++t) {
          // in(previous gap -> t) == out(this gap from t).
          std::vector<ilp::Term> terms;
          for (std::size_t from = 0; from < T; ++from)
            for (const auto& [j, var] : edge_[k][g - 1][from])
              if (j == t) terms.push_back({var, 1.0});
          for (const auto& [j, var] : edge_[k][g][t]) {
            (void)j;
            terms.push_back({var, -1.0});
          }
          model_.add_constraint(std::move(terms), ilp::Sense::kEq, 0.0);
        }
      }
      for (std::size_t t = 0; t < T; ++t) {
        // Target row: last gap's incoming edges feed the target var.
        std::vector<ilp::Term> terms;
        for (std::size_t from = 0; from < T; ++from)
          for (const auto& [j, var] : edge_[k][gaps - 1][from])
            if (j == t) terms.push_back({var, 1.0});
        terms.push_back({tgt_[k][t], -1.0});
        model_.add_constraint(std::move(terms), ilp::Sense::kEq, 0.0);
      }
    }

    // (8): each track vertex hosts at most one segment. The occupancy of
    // (r, t) by segment k is its incoming flow at that vertex.
    Coord row_lo = segments[0].rows.lo, row_hi = segments[0].rows.hi;
    for (const auto& seg : segments) {
      row_lo = std::min(row_lo, seg.rows.lo);
      row_hi = std::max(row_hi, seg.rows.hi);
    }
    for (Coord r = row_lo; r <= row_hi; ++r) {
      for (std::size_t t = 0; t < T; ++t) {
        std::vector<ilp::Term> terms;
        for (std::size_t k = 0; k < segments.size(); ++k) {
          const auto& seg = segments[k];
          if (!seg.rows.contains(r)) continue;
          if (r == seg.rows.lo) {
            terms.push_back({src_[k][t], 1.0});
          } else {
            const auto g = static_cast<std::size_t>(r - seg.rows.lo - 1);
            for (std::size_t from = 0; from < T; ++from)
              for (const auto& [j, var] : edge_[k][g][from])
                if (j == t) terms.push_back({var, 1.0});
          }
        }
        if (terms.size() > 1)
          model_.add_constraint(std::move(terms), ilp::Sense::kLe, 1.0);
      }
    }

    // (9): crossing track-edge pairs are mutually exclusive. Two edges
    // (t1 -> j1) and (t2 -> j2) in the same row gap cross when t1 < t2 but
    // j1 > j2. The constraint sums over every segment covering that gap.
    for (Coord r = row_lo; r < row_hi; ++r) {
      // Segments covering the gap r -> r+1.
      std::vector<std::size_t> active;
      for (std::size_t k = 0; k < segments.size(); ++k)
        if (segments[k].rows.lo <= r && r + 1 <= segments[k].rows.hi &&
            !tgt_[k].empty())
          active.push_back(k);
      if (active.size() < 2) continue;
      for (std::size_t t1 = 0; t1 < T; ++t1) {
        for (std::size_t t2 = t1 + 1; t2 < T; ++t2) {
          if (xs_[t2] - xs_[t1] > 2 * options_.max_dogleg) break;
          for (std::size_t j2 = 0; j2 < T; ++j2) {
            if (std::abs(xs_[t2] - xs_[j2]) > options_.max_dogleg) continue;
            for (std::size_t j1 = j2 + 1; j1 < T; ++j1) {
              if (std::abs(xs_[t1] - xs_[j1]) > options_.max_dogleg) continue;
              // Edge pair (t1->j1, t2->j2) with t1 < t2, j1 > j2: crossing.
              std::vector<ilp::Term> terms;
              for (const std::size_t k : active) {
                const auto g = static_cast<std::size_t>(r - segments[k].rows.lo);
                for (const auto& [j, var] : edge_[k][g][t1])
                  if (j == j1) terms.push_back({var, 1.0});
                for (const auto& [j, var] : edge_[k][g][t2])
                  if (j == j2) terms.push_back({var, 1.0});
              }
              if (terms.size() > 1)
                model_.add_constraint(std::move(terms), ilp::Sense::kLe, 1.0);
            }
          }
        }
      }
    }
  }

  void extract(const std::vector<std::uint8_t>& values,
               TrackAssignResult& result) {
    const auto T = num_tracks();
    for (std::size_t k = 0; k < instance_.segments.size(); ++k) {
      const auto& seg = instance_.segments[k];
      SegmentTrack& out = result.tracks[k];
      std::size_t t = T;
      for (std::size_t i = 0; i < T; ++i)
        if (values[static_cast<std::size_t>(src_[k][i])] != 0) {
          t = i;
          break;
        }
      assert(t < T);
      Coord r = seg.rows.lo;
      out.pieces.emplace_back(Interval{r, r}, xs_[t]);
      for (std::size_t g = 0; g < edge_[k].size(); ++g) {
        std::size_t next = T;
        for (const auto& [j, var] : edge_[k][g][t])
          if (values[static_cast<std::size_t>(var)] != 0) {
            next = j;
            break;
          }
        assert(next < T);
        ++r;
        if (xs_[next] == out.pieces.back().second)
          out.pieces.back().first.hi = r;
        else
          out.pieces.emplace_back(Interval{r, r}, xs_[next]);
        t = next;
      }
      out.bad_ends = count_bad_ends(seg, out, *instance_.stitch);
      result.total_bad_ends += out.bad_ends;
    }
  }

  const TrackAssignInstance& instance_;
  const IlpTrackOptions& options_;
  std::vector<Coord> xs_;
  ilp::Model model_;
  std::vector<std::vector<ilp::VarId>> src_;
  std::vector<std::vector<ilp::VarId>> tgt_;
  // edge_[k][gap][from] = list of (to_track, var).
  std::vector<std::vector<std::vector<std::vector<std::pair<std::size_t, ilp::VarId>>>>>
      edge_;
};

}  // namespace

TrackAssignResult track_assign_ilp(const TrackAssignInstance& instance,
                                   const IlpTrackOptions& options) {
  TELEMETRY_SPAN("assign.track.ilp");
  assert(instance.stitch != nullptr);
  return IlpBuilder(instance, options).run();
}

}  // namespace mebl::assign
