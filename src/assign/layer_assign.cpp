#include "assign/layer_assign.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <queue>

#include "graph/bipartite_matching.hpp"
#include "graph/interval_k_coloring.hpp"

namespace mebl::assign {

namespace {

/// Reusable buffers for assign_layers_ours, kept per worker thread. The
/// iterative heuristic runs several rounds per panel and many panels per
/// worker; memoizing the interval-graph machinery (adjacency, the active
/// vertex set, the Carlisle–Lloyd flow network) turns the per-round cost
/// from "rebuild everything" into "refresh what changed" with zero
/// steady-state allocation. Plain scratch only — every round still computes
/// the exact quantities of the original implementation, in the same
/// floating-point summation order, so results are bit-identical.
struct OursScratch {
  // adj[v] lists (neighbor, edge weight) in edge order — the same order the
  // per-round edge scans visited them, so weight sums round identically.
  std::vector<std::vector<std::pair<graph::NodeId, double>>> adj;
  std::vector<std::size_t> active;  // unassigned vertices, ascending
  std::vector<double> weight;
  std::vector<graph::WeightedInterval> intervals;
  std::vector<std::size_t> owner;  // interval -> segment index
  std::vector<int> round_color;    // -1 outside the using round
  graph::KColoringScratch coloring;
};

OursScratch& ours_scratch() {
  static thread_local OursScratch scratch;
  return scratch;
}

}  // namespace

LayerAssignment assign_layers_mst(const ConflictGraph& graph, int k) {
  assert(k >= 1);
  const std::size_t n = graph.segments.size();
  LayerAssignment out;
  out.group.assign(n, 0);
  if (n == 0 || k == 1) {
    out.cost = k == 1 ? graph.coloring_cost(out.group) : 0.0;
    return out;
  }

  // Maximum spanning forest, then adjacency of the forest.
  const auto chosen = graph::maximum_spanning_forest(n, graph.edges);
  std::vector<std::vector<graph::NodeId>> tree(n);
  for (const std::size_t idx : chosen) {
    tree[static_cast<std::size_t>(graph.edges[idx].a)].push_back(
        graph.edges[idx].b);
    tree[static_cast<std::size_t>(graph.edges[idx].b)].push_back(
        graph.edges[idx].a);
  }

  // Color every tree of the forest by BFS level mod k (the [4] heuristic:
  // vertices on the same tree level share a layer).
  std::vector<int> level(n, -1);
  for (std::size_t root = 0; root < n; ++root) {
    if (level[root] != -1) continue;
    level[root] = 0;
    std::queue<graph::NodeId> queue;
    queue.push(static_cast<graph::NodeId>(root));
    while (!queue.empty()) {
      const graph::NodeId u = queue.front();
      queue.pop();
      for (const graph::NodeId v : tree[static_cast<std::size_t>(u)]) {
        if (level[static_cast<std::size_t>(v)] != -1) continue;
        level[static_cast<std::size_t>(v)] =
            level[static_cast<std::size_t>(u)] + 1;
        queue.push(v);
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) out.group[v] = level[v] % k;
  out.cost = graph.coloring_cost(out.group);
  return out;
}

LayerAssignment assign_layers_ours(const ConflictGraph& graph, int k) {
  assert(k >= 1);
  const std::size_t n = graph.segments.size();
  LayerAssignment out;
  out.group.assign(n, -1);
  if (n == 0) return out;
  if (k == 1) {
    std::fill(out.group.begin(), out.group.end(), 0);
    out.cost = graph.coloring_cost(out.group);
    return out;
  }

  OursScratch& s = ours_scratch();
  // Adjacency once, in edge order. Unassigned vertices read their weight as
  // 1.0 + sum over incident edges with the other endpoint unassigned — the
  // same terms, in the same order, as the original full edge rescans.
  if (s.adj.size() < n) s.adj.resize(n);
  for (std::size_t v = 0; v < n; ++v) s.adj[v].clear();
  for (const auto& e : graph.edges) {
    s.adj[static_cast<std::size_t>(e.a)].emplace_back(e.b, e.weight);
    s.adj[static_cast<std::size_t>(e.b)].emplace_back(e.a, e.weight);
  }
  s.active.resize(n);
  for (std::size_t v = 0; v < n; ++v) s.active[v] = v;
  if (s.weight.size() < n) s.weight.resize(n);
  if (s.round_color.size() < n) s.round_color.resize(n);
  for (std::size_t v = 0; v < n; ++v) s.round_color[v] = -1;

  bool first_round = true;
  while (!s.active.empty()) {
    // Vertex weights over the remaining subgraph. A +1 offset makes every
    // vertex worth selecting so rounds always make progress. Assignment is
    // exactly out.group[v] != -1, so no separate assigned[] bitmap.
    for (const std::size_t v : s.active) {
      double w = 1.0;
      for (const auto& [u, edge_weight] : s.adj[v])
        if (out.group[static_cast<std::size_t>(u)] == -1) w += edge_weight;
      s.weight[v] = w;
    }

    // Max-weight k-colorable subset of the remaining segments.
    s.intervals.clear();
    s.owner.clear();
    for (const std::size_t v : s.active) {
      s.intervals.push_back(
          graph::WeightedInterval{graph.segments[v].span, s.weight[v]});
      s.owner.push_back(v);
    }
    const auto subset =
        graph::max_weight_k_colorable_subset(s.intervals, k, s.coloring);
    assert(!subset.chosen.empty());

    // This round's coloring groups.
    for (std::size_t c = 0; c < subset.chosen.size(); ++c) {
      const std::size_t v = s.owner[subset.chosen[c]];
      s.round_color[v] = subset.color_of_chosen[c];
    }

    if (first_round) {
      for (const std::size_t v : s.active)
        if (s.round_color[v] != -1) out.group[v] = s.round_color[v];
      first_round = false;
    } else {
      // Merge with the accumulated groups: complete bipartite matching where
      // cost(g,h) = conflict weight created by fusing existing group g with
      // this round's group h (pseudo-empty groups cost nothing). Edge
      // weights are integral (conflict densities), so summing per colored
      // vertex instead of per edge is exact.
      std::vector<std::vector<double>> cost(
          static_cast<std::size_t>(k),
          std::vector<double>(static_cast<std::size_t>(k), 0.0));
      for (const std::size_t v : s.active) {
        const int rc = s.round_color[v];
        if (rc == -1) continue;
        for (const auto& [u, edge_weight] : s.adj[v]) {
          const int g = out.group[static_cast<std::size_t>(u)];
          if (g != -1)
            cost[static_cast<std::size_t>(g)][static_cast<std::size_t>(rc)] +=
                edge_weight;
        }
      }
      const auto match = graph::min_weight_perfect_matching(cost);
      // match[g] = round color merged into accumulated group g.
      std::vector<int> group_of_round(static_cast<std::size_t>(k), 0);
      for (int g = 0; g < k; ++g)
        group_of_round[match[static_cast<std::size_t>(g)]] = g;
      for (const std::size_t v : s.active)
        if (s.round_color[v] != -1)
          out.group[v] =
              group_of_round[static_cast<std::size_t>(s.round_color[v])];
    }

    // Retire this round's vertices from the active set, restoring the
    // round_color = -1 invariant for the next round.
    std::size_t kept = 0;
    for (const std::size_t v : s.active) {
      if (s.round_color[v] == -1)
        s.active[kept++] = v;
      else
        s.round_color[v] = -1;
    }
    s.active.resize(kept);
  }

  out.cost = graph.coloring_cost(out.group);
  return out;
}

std::vector<int> order_groups_for_vias(const ConflictGraph& graph,
                                       const std::vector<int>& group, int k) {
  assert(group.size() == graph.segments.size());
  // Affinity(g,h) = number of net pairs shared between groups g and h;
  // groups with high affinity should sit on adjacent layers so the nets'
  // vertical connections span fewer layers.
  std::vector<std::vector<double>> affinity(
      static_cast<std::size_t>(k),
      std::vector<double>(static_cast<std::size_t>(k), 0.0));
  std::map<netlist::NetId, std::vector<int>> groups_of_net;
  for (std::size_t v = 0; v < graph.segments.size(); ++v)
    if (graph.segments[v].net >= 0)
      groups_of_net[graph.segments[v].net].push_back(group[v]);
  for (const auto& [net, gs] : groups_of_net) {
    (void)net;
    for (std::size_t i = 0; i < gs.size(); ++i)
      for (std::size_t j = i + 1; j < gs.size(); ++j)
        if (gs[i] != gs[j]) {
          affinity[static_cast<std::size_t>(gs[i])]
                  [static_cast<std::size_t>(gs[j])] += 1.0;
          affinity[static_cast<std::size_t>(gs[j])]
                  [static_cast<std::size_t>(gs[i])] += 1.0;
        }
  }

  // Greedy chain: start from the highest-affinity pair and repeatedly append
  // the unplaced group with the strongest tie to either chain end.
  std::vector<int> chain;
  std::vector<bool> placed(static_cast<std::size_t>(k), false);
  int best_a = 0, best_b = k > 1 ? 1 : 0;
  double best = -1.0;
  for (int a = 0; a < k; ++a)
    for (int b = a + 1; b < k; ++b)
      if (affinity[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] >
          best) {
        best = affinity[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
        best_a = a;
        best_b = b;
      }
  chain.push_back(best_a);
  placed[static_cast<std::size_t>(best_a)] = true;
  if (k > 1) {
    chain.push_back(best_b);
    placed[static_cast<std::size_t>(best_b)] = true;
  }
  while (static_cast<int>(chain.size()) < k) {
    int pick = -1;
    bool at_front = false;
    double pick_score = -1.0;
    for (int g = 0; g < k; ++g) {
      if (placed[static_cast<std::size_t>(g)]) continue;
      const double front_score =
          affinity[static_cast<std::size_t>(g)]
                  [static_cast<std::size_t>(chain.front())];
      const double back_score =
          affinity[static_cast<std::size_t>(g)]
                  [static_cast<std::size_t>(chain.back())];
      if (front_score > pick_score) {
        pick_score = front_score;
        pick = g;
        at_front = true;
      }
      if (back_score > pick_score) {
        pick_score = back_score;
        pick = g;
        at_front = false;
      }
    }
    assert(pick != -1);
    if (at_front)
      chain.insert(chain.begin(), pick);
    else
      chain.push_back(pick);
    placed[static_cast<std::size_t>(pick)] = true;
  }

  std::vector<int> slot_of_group(static_cast<std::size_t>(k), 0);
  for (int slot = 0; slot < k; ++slot)
    slot_of_group[static_cast<std::size_t>(chain[static_cast<std::size_t>(slot)])] =
        slot;
  return slot_of_group;
}

}  // namespace mebl::assign
