#include "assign/stage.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "exec/thread_pool.hpp"
#include "telemetry/keys.hpp"
#include "telemetry/telemetry.hpp"
#include "util/timer.hpp"

namespace mebl::assign {

namespace {

namespace keys = telemetry::keys;

/// One panel's layer assignment plus its telemetry. Returns whether the
/// panel had runs (the panel counter's unit).
bool layer_assign_panel(RoutePlan& plan,
                        const std::vector<std::size_t>& run_ids,
                        const std::vector<geom::LayerId>& layers,
                        bool column_panel, const StageConfig& config,
                        telemetry::Counter& panels) {
  if (run_ids.empty()) return false;
  TELEMETRY_SPAN("assign.layer.panel");
  assign_panel_layers(plan, run_ids, layers, column_panel,
                      config.layer == LayerMethod::kColorableSubset);
  panels.add(1);
  return true;
}

/// Shared context of one track-assignment fan-out: the resolved per-panel
/// options and the counter handles, created once per stage run so counter
/// registration does not depend on which panels run where.
struct TrackRun {
  IlpTrackOptions options;
  std::atomic<bool> budget_exceeded{false};
  telemetry::Counter& panels = telemetry::counter(keys::kTrackPanels);
  telemetry::Counter& ilp_nodes = telemetry::counter(keys::kTrackIlpNodes);
  telemetry::Counter& ilp_fallbacks =
      telemetry::counter(keys::kTrackIlpFallbacks);
  telemetry::Counter& ilp_budget_hits =
      telemetry::counter(keys::kTrackIlpBudgetHits);
  telemetry::Counter& bad_ends = telemetry::counter(keys::kTrackBadEnds);
  telemetry::Counter& ripped = telemetry::counter(keys::kTrackRipped);
  telemetry::Histogram& panel_ns = telemetry::histogram(keys::kTrackPanelNs);
};

/// Resolve the per-panel ILP options for one stage run: the stage's pool
/// always, and either the deterministic node budget (no wall-clock limits
/// at all) or one absolute deadline shared by every worker — so a single
/// over-budget panel cannot overshoot the circuit budget.
IlpTrackOptions make_track_options(const StageConfig& config,
                                   exec::ThreadPool& pool) {
  IlpTrackOptions options = config.ilp;
  options.pool = &pool;
  if (options.node_budget > 0) {
    options.deadline.reset();
  } else {
    options.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(config.ilp_budget_seconds));
  }
  return options;
}

void track_solve_one(RoutePlan& plan, const TrackPanelTask& task,
                     TrackMethod method, TrackRun& run) {
  TELEMETRY_SPAN("assign.track.panel");
  const std::uint64_t panel_start_ns = telemetry::now_ns();

  TrackTaskStats stats;
  const TrackAssignResult assigned =
      solve_track_task(task, method, run.options, stats);
  apply_track_result(plan, task, assigned);

  run.panels.add(1);
  run.bad_ends.add(assigned.total_bad_ends);
  run.ripped.add(assigned.total_ripped);
  run.ilp_nodes.add(stats.ilp_nodes);
  if (stats.ilp_fallback) run.ilp_fallbacks.add(1);
  if (stats.ilp_budget_hit) run.ilp_budget_hits.add(1);
  // The Table VII "NA" flag means the ILP column no longer describes this
  // circuit: a panel was handed to the heuristic (deadline skip or unsolved
  // fallback). A truncated solve that still produced a usable assignment
  // stays an ILP result — it only bumps the budget-hit counter above.
  if (stats.ilp_fallback)
    run.budget_exceeded.store(true, std::memory_order_relaxed);
  run.panel_ns.record_ns(telemetry::now_ns() - panel_start_ns);
}

}  // namespace

StageStats LayerAssignStage::run(RoutePlan& plan,
                                 const grid::RoutingGrid& grid,
                                 exec::ThreadPool& pool) {
  telemetry::Counter& panels = telemetry::counter(keys::kLayerPanels);
  std::atomic<int> assigned{0};
  // Each panel owns a disjoint set of runs, so panels are independent tasks:
  // a body writes only its own runs' layer slots and the outcome does not
  // depend on the execution order.
  const auto v_layers = grid.layers_with(geom::Orientation::kVertical);
  pool.parallel_for(0, static_cast<std::size_t>(grid.tiles_x()),
                    [&](std::size_t tx) {
                      if (layer_assign_panel(
                              plan,
                              runs_in_column_panel(plan, static_cast<int>(tx)),
                              v_layers, true, config_, panels))
                        assigned.fetch_add(1, std::memory_order_relaxed);
                    });
  const auto h_layers = grid.layers_with(geom::Orientation::kHorizontal);
  pool.parallel_for(0, static_cast<std::size_t>(grid.tiles_y()),
                    [&](std::size_t ty) {
                      if (layer_assign_panel(
                              plan,
                              runs_in_row_panel(plan, static_cast<int>(ty)),
                              h_layers, false, config_, panels))
                        assigned.fetch_add(1, std::memory_order_relaxed);
                    });
  StageStats stats;
  stats.panels = assigned.load(std::memory_order_relaxed);
  return stats;
}

StageStats TrackAssignStage::run(RoutePlan& plan,
                                 const grid::RoutingGrid& grid,
                                 exec::ThreadPool& pool) {
  // Gather every (column panel, vertical layer) instance up front; each is
  // an independent task writing a disjoint set of runs.
  std::vector<int> all_panels(static_cast<std::size_t>(grid.tiles_x()));
  for (int tx = 0; tx < grid.tiles_x(); ++tx)
    all_panels[static_cast<std::size_t>(tx)] = tx;
  const std::vector<TrackPanelTask> tasks =
      build_track_tasks(plan, grid, all_panels);

  TrackRun run{make_track_options(config_, pool)};
  util::Timer stage_timer;
  pool.parallel_for(0, tasks.size(), [&](std::size_t t) {
    track_solve_one(plan, tasks[t], config_.track, run);
  });
  telemetry::counter(keys::kTrackIlpNs)
      .add(static_cast<std::int64_t>(stage_timer.seconds() * 1e9));

  StageStats stats;
  stats.panels = static_cast<int>(tasks.size());
  stats.ilp_budget_exceeded =
      run.budget_exceeded.load(std::memory_order_relaxed);
  return stats;
}

StageStats FusedAssignStage::run(RoutePlan& plan,
                                 const grid::RoutingGrid& grid,
                                 exec::ThreadPool& pool) {
  telemetry::Counter& layer_panels = telemetry::counter(keys::kLayerPanels);
  TrackRun run{make_track_options(config_, pool)};
  const auto v_layers = grid.layers_with(geom::Orientation::kVertical);
  const auto h_layers = grid.layers_with(geom::Orientation::kHorizontal);
  const auto tiles_x = static_cast<std::size_t>(grid.tiles_x());
  const auto tiles_y = static_cast<std::size_t>(grid.tiles_y());
  std::atomic<int> track_tasks{0};

  util::Timer stage_timer;
  pool.parallel_for(0, tiles_x + tiles_y, [&](std::size_t i) {
    if (i < tiles_x) {
      // Fused column-panel task: layers first, then immediately this
      // panel's track solves — nothing outside the panel is read or
      // written, so no barrier is needed between the two.
      const int tx = static_cast<int>(i);
      layer_assign_panel(plan, runs_in_column_panel(plan, tx), v_layers, true,
                         config_, layer_panels);
      const std::vector<TrackPanelTask> tasks =
          build_track_tasks(plan, grid, {tx});
      for (const TrackPanelTask& task : tasks)
        track_solve_one(plan, task, config_.track, run);
      track_tasks.fetch_add(static_cast<int>(tasks.size()),
                            std::memory_order_relaxed);
    } else {
      // Row panels are layer-only; they fill pool gaps between column tasks.
      layer_assign_panel(plan,
                         runs_in_row_panel(plan, static_cast<int>(i - tiles_x)),
                         h_layers, false, config_, layer_panels);
    }
  });
  telemetry::counter(keys::kTrackIlpNs)
      .add(static_cast<std::int64_t>(stage_timer.seconds() * 1e9));

  StageStats stats;
  stats.panels = track_tasks.load(std::memory_order_relaxed);
  stats.ilp_budget_exceeded =
      run.budget_exceeded.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mebl::assign
