#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "grid/stitch_plan.hpp"
#include "netlist/netlist.hpp"

namespace mebl::exec {
class ThreadPool;
}  // namespace mebl::exec

namespace mebl::assign {

/// Track-assignment algorithm selection (Table VII comparison). Defined at
/// the assign layer so stage configs, panel helpers and the core router
/// share one vocabulary (core::TrackAlgorithm aliases this).
enum class TrackMethod {
  kBaseline,  ///< stitch-oblivious first-fit (baseline router)
  kIlp,       ///< exact multicommodity-flow ILP (eqs. 5-9)
  kGraph,     ///< graph-based dogleg heuristic (SIII-C2)
};

/// One vertical segment to be given an exact track inside a column panel.
struct TrackSegment {
  std::size_t run_index = 0;  ///< caller's back-reference (e.g. RoutePlan run)
  geom::Interval rows;        ///< tile rows the segment spans
  /// Horizontal continuation at the low/high end: 0 none, -1 the connected
  /// horizontal wire leaves toward smaller x, +1 toward larger x.
  int lo_continuation = 0;
  int hi_continuation = 0;
  netlist::NetId net = -1;
};

/// Track-assignment problem for one (column panel, vertical layer) pair.
struct TrackAssignInstance {
  geom::Interval x_span;  ///< absolute track range of the panel
  const grid::StitchPlan* stitch = nullptr;
  std::vector<TrackSegment> segments;
};

/// Assigned geometry of one segment: per tile-row piece, the absolute track.
/// Consecutive pieces on different tracks form a dogleg.
struct SegmentTrack {
  std::vector<std::pair<geom::Interval, geom::Coord>> pieces;
  bool ripped = false;  ///< not assigned; detailed routing routes it directly
  int bad_ends = 0;     ///< line ends left in stitch unfriendly regions (0..2)
};

/// Result of one instance. `tracks` is parallel to `instance.segments`.
struct TrackAssignResult {
  std::vector<SegmentTrack> tracks;
  int total_bad_ends = 0;
  int total_ripped = 0;
  bool solved = true;     ///< false when the ILP hit its limits (caller falls back)
  bool optimal = false;   ///< ILP proved optimality
  std::int64_t ilp_nodes = 0;  ///< branch-and-bound nodes (ILP only)
  /// True when the branch-and-bound was cut short by any limit — the node
  /// budget in replayable mode, wall clock otherwise — even if a usable
  /// (feasible, unproven) assignment was still returned.
  bool budget_hit = false;
};

/// True when a vertical line end on track `x` whose horizontal wire leaves
/// in direction `continuation` (+1/-1) creates a bad end: the end lies in
/// the stitch unfriendly region of the line the wire crosses.
[[nodiscard]] bool is_bad_end(geom::Coord x, int continuation,
                              const grid::StitchPlan& stitch);

/// Shared post-pass: count bad ends of an assigned segment.
[[nodiscard]] int count_bad_ends(const TrackSegment& segment,
                                 const SegmentTrack& track,
                                 const grid::StitchPlan& stitch);

/// Stitch-oblivious baseline (the conventional track assigner of the
/// baseline router): left-edge first-fit over the full panel width,
/// straight tracks only. Segments that land on a stitching-line column are
/// ripped up afterwards (routed directly in detailed routing), exactly as
/// the paper describes for the baseline flow.
[[nodiscard]] TrackAssignResult track_assign_baseline(
    const TrackAssignInstance& instance);

/// Graph-based short-polygon-avoiding heuristic (paper SIII-C2, Fig. 11):
/// stitch-aware segment ordering, min/max track constraint graphs with
/// dummy-vertex unfriendly-region offsets, longest-path feasible windows,
/// then greedy dogleg-aware assignment.
[[nodiscard]] TrackAssignResult track_assign_graph(
    const TrackAssignInstance& instance);

/// Options for the exact ILP formulation (eqs. 5-9).
struct IlpTrackOptions {
  double time_limit_seconds = 10.0;
  std::int64_t max_nodes = 2'000'000;
  /// Maximum dogleg jump between adjacent tile rows, in tracks. Bounds the
  /// track-edge count (the paper's model is O(T^2) per row gap; real panels
  /// never need jumps wider than a few tracks).
  int max_dogleg = 3;
  /// Weight of a source/target edge that creates a bad end. The paper
  /// removes such edges; a large finite penalty keeps the model feasible in
  /// over-dense panels while still minimizing bad ends first.
  double bad_end_penalty = 1000.0;
  /// Absolute deadline shared by every panel of one circuit (the router's
  /// ilp_budget_seconds converted at stage start). The solver aborts
  /// mid-search once it passes; unset = only the per-panel limits apply.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Deterministic per-panel effort: > 0 caps the branch-and-bound at this
  /// many nodes and disables every wall-clock limit (time_limit_seconds and
  /// deadline are ignored), making the result a pure function of the
  /// instance. Replayable flows — the mebl_serve ECO path and its verify
  /// replay gate — use this instead of a deadline.
  std::int64_t node_budget = 0;
  /// Seed the solver with the graph heuristic's assignment as the initial
  /// incumbent and branching hint (ilp::SolveOptions::warm_start). Pruning
  /// then starts at the heuristic cost instead of +inf, which typically cuts
  /// the node count sharply. The objective value is unaffected, but when
  /// several optima tie the returned geometry may differ from a cold solve,
  /// so this defaults off; the router's stage config turns it on.
  bool warm_start = false;
  /// Pool for the solver's parallel subproblem fan-out. nullptr solves
  /// sequentially. Calls from inside pool workers degrade gracefully (nested
  /// fan-out runs inline), so the batch router passes its pool unconditionally
  /// and the sequential ECO path gets real speedup from it.
  exec::ThreadPool* pool = nullptr;
  /// ilp::SolveOptions::split_target passthrough: root subproblem count,
  /// fixed per configuration, never thread-derived. 0 = solver default.
  int split_target = 0;
};

/// Exact ILP-based short-polygon-avoiding track assignment (paper SIII-C1):
/// multicommodity-flow model over track vertices with vertex-capacity and
/// edge-crossing constraints, solved by the branch-and-bound solver. When a
/// limit is hit, `solved` is false and the caller is expected to fall back.
[[nodiscard]] TrackAssignResult track_assign_ilp(
    const TrackAssignInstance& instance, const IlpTrackOptions& options = {});

}  // namespace mebl::assign
