#include "assign/panel_ops.hpp"

#include <chrono>

#include "assign/conflict_graph.hpp"
#include "assign/layer_assign.hpp"

namespace mebl::assign {

bool assign_panel_layers(RoutePlan& plan,
                         const std::vector<std::size_t>& run_ids,
                         const std::vector<geom::LayerId>& layers,
                         bool column_panel, bool colorable_subset) {
  if (run_ids.empty()) return false;
  const int k = static_cast<int>(layers.size());
  if (k == 1) {
    for (const std::size_t id : run_ids) plan.runs[id].layer = layers[0];
    return true;
  }
  std::vector<SegmentProfile> profiles;
  profiles.reserve(run_ids.size());
  for (const std::size_t id : run_ids)
    profiles.push_back(SegmentProfile{plan.runs[id].span, plan.runs[id].net});
  const auto graph = build_conflict_graph(profiles, column_panel);
  const auto assignment = colorable_subset ? assign_layers_ours(graph, k)
                                           : assign_layers_mst(graph, k);
  const auto slot = order_groups_for_vias(graph, assignment.group, k);
  for (std::size_t i = 0; i < run_ids.size(); ++i)
    plan.runs[run_ids[i]].layer = layers[static_cast<std::size_t>(
        slot[static_cast<std::size_t>(assignment.group[i])])];
  return true;
}

std::vector<TrackPanelTask> build_track_tasks(const RoutePlan& plan,
                                              const grid::RoutingGrid& grid,
                                              const std::vector<int>& panels) {
  std::vector<TrackPanelTask> tasks;
  const auto v_layers = grid.layers_with(geom::Orientation::kVertical);
  for (const int tx : panels) {
    const auto panel_runs = runs_in_column_panel(plan, tx);
    if (panel_runs.empty()) continue;
    for (const geom::LayerId layer : v_layers) {
      TrackPanelTask task;
      task.tx = tx;
      task.layer = layer;
      task.instance.x_span = grid.tile_x_span(tx);
      task.instance.stitch = &grid.stitch();
      for (const std::size_t id : panel_runs) {
        const auto& run = plan.runs[id];
        if (run.layer != layer) continue;
        task.members.push_back(id);
        task.instance.segments.push_back(TrackSegment{
            id, run.span, run.lo_continuation, run.hi_continuation, run.net});
      }
      if (!task.instance.segments.empty()) tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

void apply_track_result(RoutePlan& plan, const TrackPanelTask& task,
                        const TrackAssignResult& solved) {
  for (std::size_t i = 0; i < task.members.size(); ++i) {
    auto& run = plan.runs[task.members[i]];
    run.pieces = solved.tracks[i].pieces;
    run.ripped = solved.tracks[i].ripped;
    run.bad_ends = solved.tracks[i].bad_ends;
  }
}

TrackAssignResult solve_track_task(const TrackPanelTask& task,
                                   TrackMethod method,
                                   const IlpTrackOptions& options,
                                   TrackTaskStats& stats) {
  stats = {};
  switch (method) {
    case TrackMethod::kBaseline:
      return track_assign_baseline(task.instance);
    case TrackMethod::kGraph:
      return track_assign_graph(task.instance);
    case TrackMethod::kIlp:
      break;
  }
  // Replayable node-budget mode never consults the clock; deadline mode
  // falls back immediately on panels that start past the shared deadline.
  if (options.node_budget <= 0 && options.deadline &&
      std::chrono::steady_clock::now() >= *options.deadline) {
    stats.ilp_fallback = true;
    return track_assign_graph(task.instance);
  }
  TrackAssignResult assigned = track_assign_ilp(task.instance, options);
  stats.ilp_nodes = assigned.ilp_nodes;
  stats.ilp_budget_hit = assigned.budget_hit;
  if (!assigned.solved) {
    stats.ilp_fallback = true;
    assigned = track_assign_graph(task.instance);
  }
  return assigned;
}

}  // namespace mebl::assign
