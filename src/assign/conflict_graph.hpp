#pragma once

#include <vector>

#include "geom/interval.hpp"
#include "graph/spanning_tree.hpp"
#include "netlist/netlist.hpp"

namespace mebl::assign {

/// Abstract segment for layer assignment: its tile-row span inside one
/// panel and the owning net. Line ends sit at span.lo and span.hi.
struct SegmentProfile {
  geom::Interval span;
  netlist::NetId net = -1;
};

/// Segment conflict graph of one panel (paper SIII-B, Fig. 8): vertices are
/// segments, an edge joins two segments that intersect in some tile, and the
/// edge weight follows eq. (4):
///   w(i,j) = D_segment(i,j) + D_end(i,j)
/// where D_segment is the maximum segment density over the rows where i and
/// j overlap and D_end the maximum line-end density over the rows where both
/// have line ends (column panels only — row panels drop the end term).
struct ConflictGraph {
  std::vector<SegmentProfile> segments;
  std::vector<graph::WeightedEdge> edges;

  /// Sum of incident edge weights per vertex (the vertex weight used by our
  /// k-colorable-subset heuristic).
  [[nodiscard]] std::vector<double> vertex_weights() const;

  /// Cost of a coloring = total weight of monochromatic edges (smaller is
  /// better; equivalent to maximizing the k-cut).
  [[nodiscard]] double coloring_cost(const std::vector<int>& color) const;
};

/// Build the conflict graph of a panel. `include_line_end_term` is true for
/// column panels (stitch-aware) and false for row panels.
[[nodiscard]] ConflictGraph build_conflict_graph(
    const std::vector<SegmentProfile>& segments, bool include_line_end_term);

}  // namespace mebl::assign
