#pragma once

#include "assign/conflict_graph.hpp"

namespace mebl::assign {

/// Layer-assignment heuristic selection (Table VI comparison). Defined at
/// the assign layer so stage configs and the core router share one
/// vocabulary (core::LayerAlgorithm aliases this).
enum class LayerMethod {
  kMaxSpanningTree,  ///< baseline of [4]
  kColorableSubset,  ///< ours (iterative max-weight k-colorable subsets)
};

/// Result of distributing the segments of one panel over k same-direction
/// layers: a group (color) in [0,k) per segment and the coloring cost
/// (total weight of monochromatic conflict edges; smaller = better
/// max-cut k-coloring).
struct LayerAssignment {
  std::vector<int> group;
  double cost = 0.0;
};

/// Baseline heuristic of [4]: build a maximum spanning tree of the conflict
/// graph and k-color it by tree level (depth mod k).
[[nodiscard]] LayerAssignment assign_layers_mst(const ConflictGraph& graph,
                                                int k);

/// Our heuristic (paper SIII-B, Fig. 9(c)-(e)): iteratively extract the
/// maximum-total-vertex-weight k-colorable subset (exact on interval graphs
/// via Carlisle-Lloyd min-cost flow), then merge each round's coloring
/// groups into the accumulated groups with a minimum-weight perfect
/// bipartite matching over conflict weights.
[[nodiscard]] LayerAssignment assign_layers_ours(const ConflictGraph& graph,
                                                 int k);

/// Map coloring groups to physical layers so that groups sharing many nets
/// land on adjacent layers (the via-minimizing assignment adopted from [4]).
/// Returns a permutation: slot_of_group[g] is the index into the panel's
/// layer list for group g.
[[nodiscard]] std::vector<int> order_groups_for_vias(
    const ConflictGraph& graph, const std::vector<int>& group, int k);

}  // namespace mebl::assign
