#pragma once

#include <string>
#include <vector>

#include "detail/grid_graph.hpp"

namespace mebl::eval {

/// Per-GCell utilization of a routed design: how full each tile's routing
/// resources are, split by direction, plus stitch-specific pressure (use of
/// escape-region tracks). Useful for diagnosing where short polygons and
/// routing failures concentrate (the hotspots of Fig. 15).
struct CongestionMap {
  int tiles_x = 0;
  int tiles_y = 0;
  /// Horizontal / vertical wire nodes per tile, normalized by that tile's
  /// track capacity (0 = empty, 1 = every track fully used).
  std::vector<double> horizontal;  ///< size tiles_x * tiles_y, row-major
  std::vector<double> vertical;
  /// Fraction of the tile's escape-region nodes (vertical layers) in use.
  std::vector<double> escape_use;

  [[nodiscard]] double h_at(int tx, int ty) const {
    return horizontal[static_cast<std::size_t>(ty) * tiles_x + tx];
  }
  [[nodiscard]] double v_at(int tx, int ty) const {
    return vertical[static_cast<std::size_t>(ty) * tiles_x + tx];
  }
  [[nodiscard]] double escape_at(int tx, int ty) const {
    return escape_use[static_cast<std::size_t>(ty) * tiles_x + tx];
  }

  /// Maximum utilization over all tiles and both directions.
  [[nodiscard]] double peak() const;
  /// Mean utilization over all tiles and both directions.
  [[nodiscard]] double mean() const;
};

/// Measure utilization of the routed occupancy grid.
[[nodiscard]] CongestionMap measure_congestion(const detail::GridGraph& grid);

/// Render the map as an ASCII heat grid ('.' empty .. '9'/'#' saturated),
/// one character per tile; `vertical` selects the direction.
[[nodiscard]] std::string ascii_heatmap(const CongestionMap& map,
                                        bool vertical);

/// Render as an SVG heatmap (red intensity = utilization).
[[nodiscard]] std::string svg_heatmap(const CongestionMap& map, bool vertical,
                                      double pixels_per_tile = 8.0);

}  // namespace mebl::eval
