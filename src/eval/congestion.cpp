#include "eval/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mebl::eval {

using geom::Coord;
using geom::LayerId;
using geom::Orientation;

double CongestionMap::peak() const {
  double best = 0.0;
  for (const double v : horizontal) best = std::max(best, v);
  for (const double v : vertical) best = std::max(best, v);
  return best;
}

double CongestionMap::mean() const {
  if (horizontal.empty()) return 0.0;
  double total = 0.0;
  for (const double v : horizontal) total += v;
  for (const double v : vertical) total += v;
  return total / static_cast<double>(horizontal.size() + vertical.size());
}

CongestionMap measure_congestion(const detail::GridGraph& grid) {
  const auto& rg = grid.routing_grid();
  const auto& stitch = rg.stitch();
  CongestionMap map;
  map.tiles_x = rg.tiles_x();
  map.tiles_y = rg.tiles_y();
  const std::size_t tiles =
      static_cast<std::size_t>(map.tiles_x) * map.tiles_y;
  map.horizontal.assign(tiles, 0.0);
  map.vertical.assign(tiles, 0.0);
  map.escape_use.assign(tiles, 0.0);

  std::vector<std::int64_t> h_used(tiles, 0), v_used(tiles, 0),
      esc_used(tiles, 0), esc_cap(tiles, 0);

  const int h_layers =
      static_cast<int>(rg.layers_with(Orientation::kHorizontal).size());
  const int v_layers =
      static_cast<int>(rg.layers_with(Orientation::kVertical).size());

  for (LayerId l = 1; l < rg.num_layers(); ++l) {
    const bool horizontal = rg.layer_dir(l) == Orientation::kHorizontal;
    for (Coord y = 0; y < rg.height(); ++y) {
      for (Coord x = 0; x < rg.width(); ++x) {
        const std::size_t t =
            static_cast<std::size_t>(rg.tile_of_y(y)) * map.tiles_x +
            rg.tile_of_x(x);
        const bool used = grid.owner({x, y, l}) != -1;
        if (!horizontal && stitch.in_escape_region(x)) {
          ++esc_cap[t];
          if (used) ++esc_used[t];
        }
        if (!used) continue;
        if (horizontal)
          ++h_used[t];
        else
          ++v_used[t];
      }
    }
  }

  for (int ty = 0; ty < map.tiles_y; ++ty) {
    for (int tx = 0; tx < map.tiles_x; ++tx) {
      const std::size_t t = static_cast<std::size_t>(ty) * map.tiles_x + tx;
      const double area = static_cast<double>(rg.tile_x_span(tx).length()) *
                          rg.tile_y_span(ty).length();
      if (area > 0.0) {
        map.horizontal[t] = static_cast<double>(h_used[t]) / (area * h_layers);
        map.vertical[t] = static_cast<double>(v_used[t]) / (area * v_layers);
      }
      if (esc_cap[t] > 0)
        map.escape_use[t] =
            static_cast<double>(esc_used[t]) / static_cast<double>(esc_cap[t]);
    }
  }
  return map;
}

std::string ascii_heatmap(const CongestionMap& map, bool vertical) {
  const auto& data = vertical ? map.vertical : map.horizontal;
  std::ostringstream out;
  for (int ty = map.tiles_y - 1; ty >= 0; --ty) {  // y grows upward
    for (int tx = 0; tx < map.tiles_x; ++tx) {
      const double v = data[static_cast<std::size_t>(ty) * map.tiles_x + tx];
      if (v <= 0.0)
        out << '.';
      else if (v >= 1.0)
        out << '#';
      else
        out << static_cast<char>('0' + std::min(9, static_cast<int>(v * 10.0)));
    }
    out << '\n';
  }
  return out.str();
}

std::string svg_heatmap(const CongestionMap& map, bool vertical,
                        double pixels_per_tile) {
  const auto& data = vertical ? map.vertical : map.horizontal;
  std::ostringstream out;
  out << "<svg xmlns='http://www.w3.org/2000/svg' width='"
      << map.tiles_x * pixels_per_tile << "' height='"
      << map.tiles_y * pixels_per_tile << "'>\n";
  for (int ty = 0; ty < map.tiles_y; ++ty) {
    for (int tx = 0; tx < map.tiles_x; ++tx) {
      const double v = std::clamp(
          data[static_cast<std::size_t>(ty) * map.tiles_x + tx], 0.0, 1.0);
      const int red = static_cast<int>(std::lround(255 * v));
      out << "<rect x='" << tx * pixels_per_tile << "' y='"
          << (map.tiles_y - 1 - ty) * pixels_per_tile << "' width='"
          << pixels_per_tile << "' height='" << pixels_per_tile
          << "' fill='rgb(255," << 255 - red << ',' << 255 - red << ")'/>\n";
    }
  }
  out << "</svg>\n";
  return out.str();
}

}  // namespace mebl::eval
