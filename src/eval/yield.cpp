#include "eval/yield.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace mebl::eval {

using geom::Coord;
using geom::LayerId;
using geom::Orientation;
using netlist::NetId;

namespace {

bool has_via(const detail::GridGraph& grid, geom::Point3 p, NetId net) {
  const auto& rg = grid.routing_grid();
  if (p.layer > 0 &&
      grid.owner({p.x, p.y, static_cast<LayerId>(p.layer - 1)}) == net)
    return true;
  return p.layer + 1 < rg.num_layers() &&
         grid.owner({p.x, p.y, static_cast<LayerId>(p.layer + 1)}) == net;
}

}  // namespace

YieldReport estimate_yield(const detail::GridGraph& grid,
                           const YieldModel& model) {
  const auto& rg = grid.routing_grid();
  const auto& stitch = rg.stitch();
  YieldReport report;

  // Memoize the rasterization curve per piece length (in pixels).
  std::map<int, double> error_ratio_of_length;
  const auto error_ratio = [&](Coord piece_tracks) {
    const int px = std::max(1, static_cast<int>(piece_tracks) *
                                   model.pixels_per_track);
    const auto it = error_ratio_of_length.find(px);
    if (it != error_ratio_of_length.end()) return it->second;
    const auto defect = raster::short_polygon_experiment(
        px, /*length_px=*/px + 16 * model.pixels_per_track,
        model.wire_width_px);
    const double ratio = defect.error_ratio();
    error_ratio_of_length.emplace(px, ratio);
    return ratio;
  };

  // Short polygons with their piece lengths.
  for (const LayerId layer : rg.layers_with(Orientation::kHorizontal)) {
    for (Coord y = 0; y < rg.height(); ++y) {
      Coord x = 0;
      while (x < rg.width()) {
        const NetId net = grid.owner({x, y, layer});
        if (net == -1) {
          ++x;
          continue;
        }
        Coord end = x;
        while (end + 1 < rg.width() && grid.owner({end + 1, y, layer}) == net)
          ++end;
        if (end > x) {
          for (const Coord s : stitch.lines_cutting({x, end})) {
            const auto record = [&](geom::Point3 p, Coord piece) {
              ShortPolygonRisk risk;
              risk.end = p;
              risk.piece_tracks = piece;
              risk.error_ratio = error_ratio(piece);
              risk.defect_prob = std::clamp(
                  risk.error_ratio * model.error_ratio_to_defect, 0.0, 1.0);
              report.expected_defects += risk.defect_prob;
              report.short_polygons.push_back(risk);
            };
            if (s - x <= stitch.epsilon() && has_via(grid, {x, y, layer}, net))
              record({x, y, layer}, s - x);
            if (end - s <= stitch.epsilon() &&
                has_via(grid, {end, y, layer}, net))
              record({end, y, layer}, end - s);
          }
        }
        x = end + 1;
      }
    }
  }

  // Via violations (vias on line columns).
  for (const Coord line : stitch.lines()) {
    for (Coord y = 0; y < rg.height(); ++y) {
      for (LayerId l = 0; l + 1 < rg.num_layers(); ++l) {
        const NetId net = grid.owner({line, y, l});
        if (net != -1 &&
            grid.owner({line, y, static_cast<LayerId>(l + 1)}) == net) {
          ++report.via_violations;
          report.expected_defects += model.via_violation_defect_prob;
        }
      }
    }
  }

  report.yield = std::exp(-report.expected_defects);
  return report;
}

}  // namespace mebl::eval
