#include "eval/metrics.hpp"

#include <algorithm>

namespace mebl::eval {

using geom::Coord;
using geom::LayerId;
using geom::Orientation;
using geom::Point3;
using netlist::NetId;

namespace {

/// True when (x, y, layer) has a same-net neighbour across a layer
/// boundary, i.e. a via lands there.
bool has_via(const detail::GridGraph& grid, Point3 p, NetId net) {
  const auto& rg = grid.routing_grid();
  if (p.layer > 0) {
    const Point3 below{p.x, p.y, static_cast<LayerId>(p.layer - 1)};
    if (grid.owner(below) == net) return true;
  }
  if (p.layer + 1 < rg.num_layers()) {
    const Point3 above{p.x, p.y, static_cast<LayerId>(p.layer + 1)};
    if (grid.owner(above) == net) return true;
  }
  return false;
}

}  // namespace

int count_short_polygons(const detail::GridGraph& grid) {
  const auto& rg = grid.routing_grid();
  const auto& stitch = rg.stitch();
  int count = 0;
  for (const LayerId layer : rg.layers_with(Orientation::kHorizontal)) {
    for (Coord y = 0; y < rg.height(); ++y) {
      Coord x = 0;
      while (x < rg.width()) {
        const NetId net = grid.owner({x, y, layer});
        if (net == -1) {
          ++x;
          continue;
        }
        Coord end = x;
        while (end + 1 < rg.width() && grid.owner({end + 1, y, layer}) == net)
          ++end;
        if (end > x) {  // an actual wire, not an isolated via landing
          for (const Coord s : stitch.lines_cutting({x, end})) {
            // Left piece short with a landing via?
            if (s - x <= stitch.epsilon() && has_via(grid, {x, y, layer}, net))
              ++count;
            // Right piece short with a landing via?
            if (end - s <= stitch.epsilon() &&
                has_via(grid, {end, y, layer}, net))
              ++count;
          }
        }
        x = end + 1;
      }
    }
  }
  return count;
}

RouteMetrics compute_metrics(const detail::GridGraph& grid,
                             const netlist::Netlist& netlist,
                             const std::vector<netlist::Subnet>& subnets,
                             const detail::DetailedResult& outcome) {
  const auto& rg = grid.routing_grid();
  const auto& stitch = rg.stitch();
  RouteMetrics metrics;

  for (LayerId layer = 0; layer < rg.num_layers(); ++layer) {
    for (Coord y = 0; y < rg.height(); ++y) {
      for (Coord x = 0; x < rg.width(); ++x) {
        const NetId net = grid.owner({x, y, layer});
        if (net == -1) continue;
        // Wire adjacencies (count each once: toward +x / +y).
        if (layer >= 1) {
          if (x + 1 < rg.width() && grid.owner({x + 1, y, layer}) == net)
            ++metrics.wirelength;
          if (y + 1 < rg.height() && grid.owner({x, y + 1, layer}) == net) {
            ++metrics.wirelength;
            // An actual vertical *wire* exists only on vertical layers;
            // same-net y-adjacency on a horizontal layer is two stacked
            // horizontal wires, which may legally cross a line.
            if (stitch.is_stitch_column(x) &&
                rg.layer_dir(layer) == Orientation::kVertical)
              ++metrics.vertical_violations;
          }
        }
        // Vias (count each once: toward the layer above).
        if (layer + 1 < rg.num_layers() &&
            grid.owner({x, y, static_cast<LayerId>(layer + 1)}) == net) {
          ++metrics.vias;
          if (stitch.is_stitch_column(x)) ++metrics.via_violations;
        }
      }
    }
  }

  metrics.short_polygons = count_short_polygons(grid);

  metrics.total_nets = static_cast<int>(netlist.num_nets());
  std::vector<bool> net_ok(netlist.num_nets(), true);
  for (std::size_t i = 0; i < subnets.size(); ++i)
    if (i < outcome.subnet_routed.size() && !outcome.subnet_routed[i])
      net_ok[static_cast<std::size_t>(subnets[i].net)] = false;
  metrics.routed_nets =
      static_cast<int>(std::count(net_ok.begin(), net_ok.end(), true));
  return metrics;
}

}  // namespace mebl::eval
