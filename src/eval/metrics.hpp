#pragma once

#include "detail/detailed_router.hpp"

namespace mebl::eval {

/// Quality metrics of a routed design — the columns of the paper's tables.
struct RouteMetrics {
  std::int64_t wirelength = 0;  ///< same-layer same-net grid adjacencies
  int vias = 0;                 ///< same-net cross-layer adjacencies
  int via_violations = 0;       ///< #VV: vias on stitching-line columns
  int vertical_violations = 0;  ///< vertical wires on stitching lines (must be 0)
  int short_polygons = 0;       ///< #SP: Fig. 5(c) soft-constraint violations
  int routed_nets = 0;
  int total_nets = 0;

  [[nodiscard]] double routability_pct() const noexcept {
    return total_nets == 0
               ? 100.0
               : 100.0 * static_cast<double>(routed_nets) / total_nets;
  }
};

/// Scan the occupancy grid and the per-subnet routing outcomes into the
/// table metrics. A net counts as routed when every one of its subnets
/// routed (single-pin nets are trivially routed).
[[nodiscard]] RouteMetrics compute_metrics(
    const detail::GridGraph& grid, const netlist::Netlist& netlist,
    const std::vector<netlist::Subnet>& subnets,
    const detail::DetailedResult& outcome);

/// Count only the short polygons of a grid (used by unit tests and the
/// detailed ablation bench): a horizontal wire cut by a stitching line whose
/// line end lies within epsilon of that line with a landing via.
[[nodiscard]] int count_short_polygons(const detail::GridGraph& grid);

}  // namespace mebl::eval
