#include "eval/svg_writer.hpp"

#include <fstream>
#include <sstream>

namespace mebl::eval {

using geom::Coord;
using geom::LayerId;
using geom::Rect;

namespace {
const char* layer_color(LayerId layer) {
  static const char* kColors[] = {"#888888", "#1f77b4", "#d62728", "#2ca02c",
                                  "#9467bd", "#ff7f0e", "#17becf"};
  return kColors[static_cast<std::size_t>(layer) % std::size(kColors)];
}
}  // namespace

std::string render_svg(const detail::GridGraph& grid,
                       const SvgOptions& options) {
  const auto& rg = grid.routing_grid();
  Rect window = options.window;
  if (window.empty()) window = rg.extent();
  const double s = options.pixels_per_track;

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='"
      << window.width() * s << "' height='" << window.height() * s << "'>\n";
  svg << "<rect width='100%' height='100%' fill='white'/>\n";

  const auto px = [&](Coord x) { return (x - window.xlo) * s; };
  const auto py = [&](Coord y) { return (window.yhi - y) * s; };  // y up

  // Wires: draw same-net adjacencies as line segments per layer.
  for (LayerId layer = 1; layer < rg.num_layers(); ++layer) {
    svg << "<g stroke='" << layer_color(layer) << "' stroke-width='"
        << 0.6 * s << "' stroke-linecap='square' opacity='0.8'>\n";
    for (Coord y = window.ylo; y <= window.yhi; ++y) {
      for (Coord x = window.xlo; x <= window.xhi; ++x) {
        const netlist::NetId net = grid.owner({x, y, layer});
        if (net == -1) continue;
        if (x + 1 <= window.xhi && grid.owner({x + 1, y, layer}) == net)
          svg << "<line x1='" << px(x) << "' y1='" << py(y) << "' x2='"
              << px(x + 1) << "' y2='" << py(y) << "'/>\n";
        if (y + 1 <= window.yhi && grid.owner({x, y + 1, layer}) == net)
          svg << "<line x1='" << px(x) << "' y1='" << py(y) << "' x2='"
              << px(x) << "' y2='" << py(y + 1) << "'/>\n";
      }
    }
    svg << "</g>\n";
  }

  if (options.draw_vias) {
    svg << "<g fill='black'>\n";
    for (Coord y = window.ylo; y <= window.yhi; ++y) {
      for (Coord x = window.xlo; x <= window.xhi; ++x) {
        for (LayerId layer = 0; layer + 1 < rg.num_layers(); ++layer) {
          const netlist::NetId net = grid.owner({x, y, layer});
          if (net != -1 &&
              grid.owner({x, y, static_cast<LayerId>(layer + 1)}) == net) {
            svg << "<rect x='" << px(x) - 0.45 * s << "' y='"
                << py(y) - 0.45 * s << "' width='" << 0.9 * s << "' height='"
                << 0.9 * s << "'/>\n";
            break;
          }
        }
      }
    }
    svg << "</g>\n";
  }

  if (options.draw_stitch_lines) {
    svg << "<g stroke='red' stroke-width='" << 0.3 * s
        << "' stroke-dasharray='" << 2 * s << "," << s << "'>\n";
    for (const Coord line : rg.stitch().lines()) {
      if (line < window.xlo || line > window.xhi) continue;
      svg << "<line x1='" << px(line) << "' y1='0' x2='" << px(line)
          << "' y2='" << window.height() * s << "'/>\n";
    }
    svg << "</g>\n";
  }

  svg << "</svg>\n";
  return svg.str();
}

bool write_svg(const detail::GridGraph& grid, const std::string& path,
               const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  out << render_svg(grid, options);
  return static_cast<bool>(out);
}

}  // namespace mebl::eval
