#pragma once

#include "detail/grid_graph.hpp"
#include "raster/defect.hpp"

namespace mebl::eval {

/// MEBL yield model: connects the routed geometry's stitch-induced hazards
/// to the rasterization defect mechanism of SII-A.
///
/// The paper motivates the short-polygon constraint with yield: a short
/// polygon's irregular pixels are a large fraction of its area, so each one
/// carries a defect probability that falls with the cut piece's length.
/// This model walks the routed layout, measures every short polygon's
/// actual piece length, converts it to a defect probability through the
/// `raster::short_polygon_experiment` curve (calibrated once per call), and
/// combines them Poisson-style into a chip kill probability. Via violations
/// (vias cut by lines) are charged a fixed, higher probability.
struct YieldModel {
  /// Defect probability of a via cut by a stitching line (severe pattern
  /// distortion per Fig. 1(b)).
  double via_violation_defect_prob = 0.20;
  /// Scale from a short polygon's pixel error ratio to its defect
  /// probability (error pixels misalign the landing via; not every
  /// misalignment kills the connection).
  double error_ratio_to_defect = 0.5;
  /// Rasterization pixels per routing track (beam grid resolution).
  int pixels_per_track = 4;
  /// Wire width in pixels for the calibration raster.
  int wire_width_px = 3;
};

/// One short polygon found in the layout with its modeled defect risk.
struct ShortPolygonRisk {
  geom::Point3 end;          ///< the hazardous wire end
  geom::Coord piece_tracks;  ///< length of the cut-off piece in tracks
  double error_ratio;        ///< rasterized error-pixel share of the piece
  double defect_prob;        ///< modeled probability this SP kills the net
};

/// Full yield report of a routed design.
struct YieldReport {
  std::vector<ShortPolygonRisk> short_polygons;
  int via_violations = 0;
  /// Expected number of stitch-induced defects (sum of probabilities).
  double expected_defects = 0.0;
  /// Poisson-style chip yield estimate: exp(-expected_defects).
  double yield = 1.0;
};

/// Analyze the routed occupancy grid under the given model. Deterministic;
/// the rasterization curve is computed once per distinct piece length.
[[nodiscard]] YieldReport estimate_yield(const detail::GridGraph& grid,
                                         const YieldModel& model = {});

}  // namespace mebl::eval
