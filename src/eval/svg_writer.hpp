#pragma once

#include <string>

#include "detail/grid_graph.hpp"

namespace mebl::eval {

/// Options for the SVG layout plotter (Figs. 15-16 of the paper).
struct SvgOptions {
  double pixels_per_track = 2.0;
  /// Clip window in track coordinates; empty = whole layout.
  geom::Rect window;
  bool draw_stitch_lines = true;
  bool draw_vias = true;
};

/// Render the routed occupancy grid as an SVG document: one colour per
/// layer, dashed red stitching lines, black via markers. Returns the SVG
/// text (callers write it to disk).
[[nodiscard]] std::string render_svg(const detail::GridGraph& grid,
                                     const SvgOptions& options = {});

/// Convenience: render and write to `path`. Returns false on I/O failure.
bool write_svg(const detail::GridGraph& grid, const std::string& path,
               const SvgOptions& options = {});

}  // namespace mebl::eval
