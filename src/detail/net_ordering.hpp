#pragma once

#include <vector>

#include "assign/panel.hpp"

namespace mebl::detail {

/// Stitch-aware net ordering (paper SIII-D2): subnets whose planned runs
/// carry more bad ends are routed first so they can still grab the routing
/// resources that avoid short polygons; ties (and the non-stitch-aware
/// baseline) fall back to the bottom-up rule of routing smaller-bbox subnets
/// first.
[[nodiscard]] std::vector<std::size_t> order_subnets(
    const std::vector<netlist::Subnet>& subnets, const assign::RoutePlan& plan,
    bool stitch_aware);

/// Bad ends accumulated over all runs of one subnet's planned route.
[[nodiscard]] int subnet_bad_ends(const assign::RoutePlan& plan,
                                  std::size_t path_index);

}  // namespace mebl::detail
