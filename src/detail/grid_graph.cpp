#include "detail/grid_graph.hpp"

#include <cassert>

namespace mebl::detail {

GridGraph::GridGraph(const grid::RoutingGrid& grid)
    : grid_(&grid),
      owner_(static_cast<std::size_t>(grid.num_layers()) * grid.width() *
                 grid.height(),
             -1) {}

void GridGraph::claim(geom::Point3 p, netlist::NetId net) {
  assert(grid_->in_bounds(p));
  assert(net >= 0);
  netlist::NetId& slot = owner_[index(p)];
  assert(slot == -1 || slot == net);
  if (slot == -1) {
    slot = net;
    ++occupied_;
  }
}

void GridGraph::release(geom::Point3 p) {
  assert(grid_->in_bounds(p));
  netlist::NetId& slot = owner_[index(p)];
  if (slot != -1) {
    slot = -1;
    --occupied_;
  }
}

}  // namespace mebl::detail
