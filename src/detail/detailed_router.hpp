#pragma once

#include <functional>

#include "assign/panel.hpp"
#include "detail/astar.hpp"
#include "detail/node_bitmap.hpp"

namespace mebl::exec {
class ThreadPool;
class Cancellation;
}  // namespace mebl::exec

namespace mebl::detail {

/// Detailed-routing stage configuration (Table VIII ablations toggle the
/// stitch pieces).
struct DetailedConfig {
  AStarConfig astar;
  /// Order subnets by planned bad ends (paper SIII-D2). Off = baseline
  /// bottom-up (smallest bbox first) ordering.
  bool stitch_net_ordering = true;
  /// Margin in tracks added around a subnet's bbox for the first A* attempt.
  geom::Coord base_margin = 8;
  /// Each retry multiplies the margin by 4; after the last retry the subnet
  /// goes to the rip-up pass.
  int max_retries = 1;
  /// Rip-up & reroute rounds for subnets that could not be routed — part of
  /// the second bottom-up pass of the framework (Fig. 6).
  int ripup_rounds = 2;
  /// Maximum number of blocking nets ripped to rescue one failed subnet.
  int ripup_max_blockers = 4;
  /// Per-node price of crossing a foreign wire in the rip-up probe.
  double ripup_foreign_penalty = 40.0;
  /// Short-polygon cleanup iterations: nets owning short polygons are
  /// ripped and rerouted with a stricter (scaled-beta) cost. Runs only when
  /// the stitch costs are enabled.
  int sp_cleanup_rounds = 3;
  double sp_cleanup_beta_scale = 8.0;
  /// Route batches of subnets with pairwise-disjoint search boxes
  /// concurrently on the caller's thread pool (prefix batching is
  /// sequential-equivalent, so the routed result is bit-identical to the
  /// one-at-a-time schedule for every thread count — DESIGN.md §9). Off =
  /// the strictly sequential loop.
  bool parallel = true;
  /// Upper bound on one disjoint batch (bounds commit latency and progress
  /// granularity; must never depend on the thread count).
  int parallel_batch_cap = 64;
};

/// How one subnet's committed geometry was produced. kRealized geometry
/// follows the track assignment verbatim; kSearch geometry came from the
/// pattern probe, the A* search, or a rescue.
enum class RouteMethod : std::uint8_t { kNone, kRealized, kSearch };

/// Per-stage statistics of a detailed-routing run, plus the per-subnet
/// geometry itself — the state a resident design needs to rip up and
/// reroute nets incrementally (and what routed-state serialization saves).
struct DetailedResult {
  std::vector<bool> subnet_routed;
  /// Committed grid nodes per subnet (empty when unrouted).
  std::vector<std::vector<geom::Point3>> subnet_nodes;
  /// Per-subnet provenance; the short-polygon cleanup only reroutes
  /// search-routed geometry.
  std::vector<RouteMethod> subnet_method;
  std::int64_t routed = 0;
  std::int64_t failed = 0;
  /// Subnets realized directly from their layer/track assignment.
  std::int64_t planned_realized = 0;
  /// Subnets routed by the cheap L-shape pattern probe.
  std::int64_t pattern_routed = 0;
  /// Subnets that needed the A* search (no plan, ripped runs, or conflicts).
  std::int64_t astar_routed = 0;
  /// Subnets rescued (or re-routed) by the rip-up pass.
  std::int64_t ripup_rescued = 0;
  /// Nets rerouted by the short-polygon cleanup.
  std::int64_t sp_cleanup_nets = 0;
};

/// Second-pass detailed router: realizes each subnet's assigned segments as
/// grid geometry when conflict-free, falls back to the stitch-aware A*
/// search, rescues failed subnets by ripping up and rerouting blocking nets,
/// and finally reroutes nets that still own short polygons with a stricter
/// cost (the framework's failed-net rip-up/reroute pass).
///
/// The main pass is batch-parallel: subnets whose conservative search boxes
/// are pairwise disjoint are searched concurrently against the grid state
/// frozen at the batch start, then claimed in index order at the batch
/// barrier. Disjointness makes the schedule sequential-equivalent, so the
/// routed result is identical to the one-subnet-at-a-time loop for every
/// thread count (including the no-pool fallback).
class DetailedRouter {
 public:
  DetailedRouter(GridGraph& grid, DetailedConfig config = {});

  /// Reports batch completion during the main pass: (subnets processed so
  /// far, total subnets).
  using ProgressFn = std::function<void(std::size_t, std::size_t)>;

  /// Claim every pin's pin-layer node and its via-access node on layer 1,
  /// and install the short-polygon guard penalties for pins inside stitch
  /// unfriendly regions. Call once before routing.
  void claim_pins(const netlist::Netlist& netlist);

  /// Route all subnets. `plan` carries the layer/track assignment; runs
  /// without assignment (or with ripped tracks) are routed directly.
  ///
  /// `pool` parallelizes the disjoint-batch searches of the main pass (null
  /// = run them on the calling thread; the routed result is identical
  /// either way). `cancel` stops the scheduling of further batches and
  /// skips the rescue/cleanup passes; already-committed subnets are kept.
  /// `progress` fires after every committed batch.
  DetailedResult route_all(const std::vector<netlist::Subnet>& subnets,
                           const assign::RoutePlan& plan,
                           exec::ThreadPool* pool = nullptr,
                           const exec::Cancellation* cancel = nullptr,
                           const ProgressFn& progress = {});

  // --- incremental (ECO) rerouting -----------------------------------------

  /// Bind this router to a previously-routed result and claim the result's
  /// geometry onto the grid. Pins must be claimed first (claim_pins); grid
  /// claims are idempotent per net, so restoring onto a grid that already
  /// carries the geometry (the long-lived resident case) is a no-op there
  /// and only rebinds the pointers. `subnets`, `plan`, and `result` must
  /// outlive subsequent reroute_nets() calls.
  void restore(const std::vector<netlist::Subnet>& subnets,
               const assign::RoutePlan& plan, DetailedResult& result);

  /// One pin relocation applied between the rip and route phases of
  /// reroute_nets. The owning net — and any net whose wires occupy the
  /// destination nodes — must be in the reroute set, so the destination is
  /// free by the time the claims move.
  struct PinMove {
    netlist::NetId net = -1;
    geom::Point from;
    geom::Point to;
  };

  /// Incremental reroute of whole nets against the untouched remainder: rip
  /// every listed net's geometry, apply the pin moves, route the ripped
  /// subnets through the ordinary deterministic main pass (the full
  /// stitch-aware order filtered to the ripped set), then run the rescue
  /// and short-polygon cleanup passes. Requires a prior restore(). Updates
  /// the bound result's routed/failed totals in place.
  void reroute_nets(const std::vector<netlist::NetId>& nets,
                    exec::ThreadPool* pool = nullptr,
                    const exec::Cancellation* cancel = nullptr,
                    const ProgressFn& progress = {},
                    const std::vector<PinMove>& pin_moves = {});

  /// Move one pin's reservations from `from` to `to`: release the old pad
  /// and via-access nodes and their short-polygon guards, then claim and
  /// guard the new location. The caller must rip the owning net first (its
  /// geometry may pass through the old nodes) and any foreign net whose
  /// wires occupy the new nodes.
  void move_pin_claims(netlist::NetId net, geom::Point from, geom::Point to);

  [[nodiscard]] const GridGraph& grid() const noexcept { return *grid_; }
  [[nodiscard]] AStarRouter& astar() noexcept { return astar_; }

 private:
  /// One computed (not yet committed) routing attempt for a subnet.
  struct Attempt {
    enum class Kind : std::uint8_t { kNone, kRealized, kPattern, kAstar };
    Kind kind = Kind::kNone;
    std::vector<geom::Point3> nodes;
  };

  /// Collect the nodes of the planned runs of subnet `idx` without claiming
  /// anything. Returns false (and clears `out`) when any needed node is
  /// blocked, the plan is incomplete, or the geometry would create a short
  /// polygon the A* cost model could avoid.
  bool collect_realize(std::size_t idx, bool prefer_high,
                       std::vector<geom::Point3>& out) const;

  /// L-shape pattern probe: collect one of the two one-bend routes on fixed
  /// layers without claiming. Returns false when neither fits.
  bool collect_pattern(std::size_t idx, std::vector<geom::Point3>& out) const;

  /// First attempt of one subnet (realize, pattern, A* at the base margin)
  /// against the current grid, read-only. Used concurrently by the batch
  /// phase; `scratch` must be private to the calling thread.
  Attempt compute_first_attempt(std::size_t idx, bool allow_realize,
                                SearchScratch& scratch) const;

  /// Claim a successful attempt's nodes and update the per-subnet
  /// bookkeeping and stage counters.
  void commit_attempt(std::size_t idx, Attempt&& attempt);

  /// Escalating A* retries (margin *= 4 per retry) starting at retry
  /// `first_retry`; claims and books on success.
  bool route_subnet_escalated(std::size_t idx, int first_retry);

  /// Route one subnet start to finish (realization first, then A* with
  /// growing windows). Updates occupancy, bookkeeping, and the counters.
  bool route_subnet(std::size_t idx, bool allow_realize);

  /// The batch-parallel main pass over `order` (see class comment).
  void route_main_parallel(const std::vector<std::size_t>& order,
                           exec::ThreadPool* pool,
                           const exec::Cancellation* cancel,
                           const ProgressFn& progress);

  /// Release all geometry of `net` (sparing pin reservations) and mark its
  /// subnets unrouted. Returns the ripped subnet indices.
  std::vector<std::size_t> rip_net(netlist::NetId net);

  /// Rip-up & reroute pass for currently failed subnets.
  void rescue_failed(const std::vector<netlist::Subnet>& subnets);

  /// Reroute nets owning short polygons with scaled beta.
  void cleanup_short_polygons();

  /// Point the working pointers at a (subnets, plan, result) triple and
  /// rebuild the net -> subnet index.
  void bind(const std::vector<netlist::Subnet>& subnets,
            const assign::RoutePlan& plan, DetailedResult& result);

  /// Claim (or release) one pin's pad and via-access nodes together with
  /// its short-polygon guard penalties.
  void reserve_pin(netlist::NetId net, geom::Point pos);
  void release_pin(geom::Point pos);

  GridGraph* grid_;
  DetailedConfig config_;
  AStarRouter astar_;

  const std::vector<netlist::Subnet>* subnets_ = nullptr;
  const assign::RoutePlan* plan_ = nullptr;
  /// Owns the per-subnet geometry/method state the router mutates; bound by
  /// route_all() (to its own local) or restore() (to a resident result).
  DetailedResult* result_ = nullptr;
  std::vector<std::vector<std::size_t>> subnets_of_net_;
  /// Pin pad / via-access reservations, by grid node index.
  NodeBitmap pin_nodes_;
};

}  // namespace mebl::detail
