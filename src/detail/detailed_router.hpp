#pragma once

#include <unordered_set>

#include "assign/panel.hpp"
#include "detail/astar.hpp"

namespace mebl::detail {

/// Detailed-routing stage configuration (Table VIII ablations toggle the
/// stitch pieces).
struct DetailedConfig {
  AStarConfig astar;
  /// Order subnets by planned bad ends (paper SIII-D2). Off = baseline
  /// bottom-up (smallest bbox first) ordering.
  bool stitch_net_ordering = true;
  /// Margin in tracks added around a subnet's bbox for the first A* attempt.
  geom::Coord base_margin = 8;
  /// Each retry multiplies the margin by 4; after the last retry the subnet
  /// goes to the rip-up pass.
  int max_retries = 1;
  /// Rip-up & reroute rounds for subnets that could not be routed — part of
  /// the second bottom-up pass of the framework (Fig. 6).
  int ripup_rounds = 2;
  /// Maximum number of blocking nets ripped to rescue one failed subnet.
  int ripup_max_blockers = 4;
  /// Per-node price of crossing a foreign wire in the rip-up probe.
  double ripup_foreign_penalty = 40.0;
  /// Short-polygon cleanup iterations: nets owning short polygons are
  /// ripped and rerouted with a stricter (scaled-beta) cost. Runs only when
  /// the stitch costs are enabled.
  int sp_cleanup_rounds = 3;
  double sp_cleanup_beta_scale = 8.0;
};

/// Per-stage statistics of a detailed-routing run.
struct DetailedResult {
  std::vector<bool> subnet_routed;
  std::int64_t routed = 0;
  std::int64_t failed = 0;
  /// Subnets realized directly from their layer/track assignment.
  std::int64_t planned_realized = 0;
  /// Subnets routed by the cheap L-shape pattern probe.
  std::int64_t pattern_routed = 0;
  /// Subnets that needed the A* search (no plan, ripped runs, or conflicts).
  std::int64_t astar_routed = 0;
  /// Subnets rescued (or re-routed) by the rip-up pass.
  std::int64_t ripup_rescued = 0;
  /// Nets rerouted by the short-polygon cleanup.
  std::int64_t sp_cleanup_nets = 0;
};

/// Second-pass detailed router: realizes each subnet's assigned segments as
/// grid geometry when conflict-free, falls back to the stitch-aware A*
/// search, rescues failed subnets by ripping up and rerouting blocking nets,
/// and finally reroutes nets that still own short polygons with a stricter
/// cost (the framework's failed-net rip-up/reroute pass).
class DetailedRouter {
 public:
  DetailedRouter(GridGraph& grid, DetailedConfig config = {});

  /// Claim every pin's pin-layer node and its via-access node on layer 1,
  /// and install the short-polygon guard penalties for pins inside stitch
  /// unfriendly regions. Call once before routing.
  void claim_pins(const netlist::Netlist& netlist);

  /// Route all subnets. `plan` carries the layer/track assignment; runs
  /// without assignment (or with ripped tracks) are routed directly.
  DetailedResult route_all(const std::vector<netlist::Subnet>& subnets,
                           const assign::RoutePlan& plan);

  [[nodiscard]] const GridGraph& grid() const noexcept { return *grid_; }
  [[nodiscard]] AStarRouter& astar() noexcept { return astar_; }

 private:
  /// L-shape pattern probe: try the two one-bend routes on fixed layers.
  bool try_pattern(std::size_t idx);

  /// Attempt to realize the planned runs of subnet `idx` directly as
  /// geometry. Returns false (leaving the grid untouched) when any needed
  /// node is blocked, the plan is incomplete, or the geometry would create
  /// a short polygon the A* cost model could avoid.
  bool try_realize(std::size_t idx, bool prefer_high = true);

  /// Route one subnet (realization first, then A* with growing windows).
  /// Updates occupancy, bookkeeping, and the result counters.
  bool route_subnet(std::size_t idx, bool allow_realize);

  /// Release all geometry of `net` (sparing pin reservations) and mark its
  /// subnets unrouted. Returns the ripped subnet indices.
  std::vector<std::size_t> rip_net(netlist::NetId net);

  /// Rip-up & reroute pass for currently failed subnets.
  void rescue_failed(const std::vector<netlist::Subnet>& subnets);

  /// Reroute nets owning short polygons with scaled beta.
  void cleanup_short_polygons();

  GridGraph* grid_;
  DetailedConfig config_;
  AStarRouter astar_;

  const std::vector<netlist::Subnet>* subnets_ = nullptr;
  const assign::RoutePlan* plan_ = nullptr;
  DetailedResult* result_ = nullptr;
  enum class RouteMethod : std::uint8_t { kNone, kRealized, kSearch };
  std::vector<RouteMethod> method_;
  std::vector<std::vector<geom::Point3>> nodes_of_subnet_;
  std::vector<std::vector<std::size_t>> subnets_of_net_;
  std::unordered_set<std::size_t> pin_nodes_;
};

}  // namespace mebl::detail
