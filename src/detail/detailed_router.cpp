#include "detail/detailed_router.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "detail/batch_schedule.hpp"
#include "detail/net_ordering.hpp"
#include "exec/thread_pool.hpp"
#include "telemetry/keys.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace mebl::detail {

using geom::Coord;
using geom::LayerId;
using geom::Orientation;
using geom::Point;
using geom::Point3;
using geom::Rect;

namespace {

/// Per-thread A* scratch: pool workers are long-lived, so each keeps its
/// arrays warm across batches; the sequential passes reuse the caller
/// thread's instance.
thread_local SearchScratch tl_scratch;  // NOLINT(cert-err58-cpp)

/// The line-column nodes guarded for a pin inside a stitch unfriendly
/// region (claim_pins installs penalties there; move_pin_claims removes
/// them again, so both walk the identical node set).
template <typename Fn>
void for_each_pin_guard_node(const grid::RoutingGrid& rg, Point pos, Fn&& fn) {
  const auto& stitch = rg.stitch();
  const Coord d = stitch.distance_to_line(pos.x);
  if (d <= 0 || d > stitch.epsilon()) return;
  for (const Coord line : stitch.lines()) {
    if (std::abs(line - pos.x) != d) continue;
    for (const LayerId l : rg.layers_with(Orientation::kHorizontal))
      fn(Point3{line, pos.y, l});
  }
}

}  // namespace

DetailedRouter::DetailedRouter(GridGraph& grid, DetailedConfig config)
    : grid_(&grid), config_(config), astar_(grid, config.astar) {}

void DetailedRouter::reserve_pin(netlist::NetId net, Point pos) {
  const Point3 pad{pos.x, pos.y, 0};
  const Point3 access{pos.x, pos.y, 1};
  grid_->claim(pad, net);
  // Reserve the via-access node on the first routing layer: a foreign
  // wire crossing it would permanently seal the pin off.
  grid_->claim(access, net);
  pin_nodes_.set(grid_->index(pad));
  pin_nodes_.set(grid_->index(access));

  // Short-polygon guard: the pin's via is fixed. If the pin sits inside a
  // stitch unfriendly region, a horizontal wire leaving it *across* the
  // adjacent line becomes a short polygon — penalize the line-column
  // nodes in the pin's row so the search prefers leaving the other way.
  // The guard must beat the typical avoidance detour (a via pair plus a
  // few tracks), so it is priced well above a single beta.
  for_each_pin_guard_node(grid_->routing_grid(), pos, [&](Point3 p) {
    astar_.add_node_penalty(p, 4.0 * config_.astar.beta);
  });
}

void DetailedRouter::release_pin(Point pos) {
  const Point3 pad{pos.x, pos.y, 0};
  const Point3 access{pos.x, pos.y, 1};
  grid_->release(pad);
  grid_->release(access);
  pin_nodes_.unset(grid_->index(pad));
  pin_nodes_.unset(grid_->index(access));
  // Penalties are cumulative, so the negative exactly cancels the guard.
  for_each_pin_guard_node(grid_->routing_grid(), pos, [&](Point3 p) {
    astar_.add_node_penalty(p, -4.0 * config_.astar.beta);
  });
}

void DetailedRouter::claim_pins(const netlist::Netlist& netlist) {
  const auto& rg = grid_->routing_grid();
  pin_nodes_.reset(static_cast<std::size_t>(rg.num_layers()) * rg.width() *
                   rg.height());
  for (const auto& pin : netlist.pins()) reserve_pin(pin.net, pin.pos);
}

void DetailedRouter::move_pin_claims(netlist::NetId net, Point from, Point to) {
  release_pin(from);
  reserve_pin(net, to);
}

namespace {

/// True when a horizontal wire running from `from_x` to `end_x` (with a via
/// landing at `end_x`) would be a short polygon: it crosses a stitching line
/// whose unfriendly region contains `end_x`.
bool leg_end_is_bad(Coord end_x, Coord from_x, const grid::StitchPlan& stitch) {
  if (end_x == from_x) return false;
  const Coord d = stitch.distance_to_line(end_x);
  if (d == 0 || d > stitch.epsilon()) return false;
  for (const Coord line : stitch.lines()) {
    if (std::abs(line - end_x) != d) continue;
    // Crossing: the line lies strictly between the leg's endpoints.
    if ((from_x < line && line < end_x) || (end_x < line && line < from_x))
      return true;
  }
  return false;
}

/// Collects the nodes of a planned route, validating availability and the
/// hard stitch constraints; the caller claims them only if every leg fits.
/// Horizontal legs whose via-landing endpoints would create short polygons
/// abort the realization (the A* fallback's cost model avoids them).
class LegBuilder {
 public:
  LegBuilder(const GridGraph& grid, netlist::NetId net, Point pin_a,
             Point pin_b, bool check_bad_ends)
      : grid_(&grid),
        net_(net),
        pin_a_(pin_a),
        pin_b_(pin_b),
        check_bad_ends_(check_bad_ends) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const std::vector<Point3>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] std::vector<Point3> take_nodes() noexcept {
    return std::move(nodes_);
  }

  void add(Point3 p) {
    if (!ok_) return;
    if (!grid_->routing_grid().in_bounds(p) || !grid_->is_free_or(p, net_))
      ok_ = false;
    else
      nodes_.push_back(p);
  }

  /// Horizontal wire from x0 to x1; both endpoints land vias (junctions,
  /// stacks, or pins). `check` asks for the short-polygon test — used only
  /// for legs whose position the *realizer* chose; legs dictated by the
  /// track assignment are followed verbatim so the assignment's quality
  /// (good or bad) flows through to the final geometry, as in the paper's
  /// flow where detailed routing never overrides assigned tracks.
  void add_horizontal(Coord x0, Coord x1, Coord y, LayerId layer,
                      bool check = false) {
    if (check_bad_ends_ && x0 != x1) {
      const auto& stitch = grid_->routing_grid().stitch();
      // Leg ends landing on the subnet's pins are always checked: the pin
      // via is fixed, but the *approach direction* is the realizer's
      // choice (a search can reach the pin without crossing the line).
      const auto end_checked = [&](Coord end, Coord from) {
        const bool at_pin = (end == pin_a_.x && y == pin_a_.y) ||
                            (end == pin_b_.x && y == pin_b_.y);
        return (check || at_pin) && leg_end_is_bad(end, from, stitch);
      };
      if (end_checked(x0, x1) || end_checked(x1, x0)) {
        ok_ = false;
        return;
      }
    }
    for (Coord x = std::min(x0, x1); x <= std::max(x0, x1) && ok_; ++x)
      add({x, y, layer});
  }

  void add_vertical(Coord y0, Coord y1, Coord x, LayerId layer) {
    if (y0 != y1 && !grid_->vertical_move_allowed(x)) {
      ok_ = false;
      return;
    }
    for (Coord y = std::min(y0, y1); y <= std::max(y0, y1) && ok_; ++y)
      add({x, y, layer});
  }

  /// Via stack between two layers at (x, y). Stacks on stitching columns
  /// are legal only at this subnet's pins (tolerated via violations).
  void add_stack(Coord x, Coord y, LayerId l0, LayerId l1) {
    if (l0 == l1) return;
    const bool at_pin = (x == pin_a_.x && y == pin_a_.y) ||
                        (x == pin_b_.x && y == pin_b_.y);
    if (!grid_->via_allowed(x) && !at_pin) {
      ok_ = false;
      return;
    }
    for (LayerId l = std::min(l0, l1); l <= std::max(l0, l1) && ok_; ++l)
      add({x, y, l});
  }

 private:
  const GridGraph* grid_;
  netlist::NetId net_;
  Point pin_a_;
  Point pin_b_;
  bool check_bad_ends_;
  std::vector<Point3> nodes_;
  bool ok_ = true;
};

/// Track of a vertical run at a given tile row (rows outside the run's span
/// clamp to the nearest piece).
Coord piece_track(const assign::GlobalRun& run, Coord row) {
  assert(!run.pieces.empty());
  for (const auto& [rows, x] : run.pieces)
    if (rows.contains(row)) return x;
  return row < run.pieces.front().first.lo ? run.pieces.front().second
                                           : run.pieces.back().second;
}

/// Nearest routing layer with the given orientation to `layer`.
/// `prefer_high` breaks ties upward (layer 1 carries the pin via-access
/// reservations, so routing above it conflicts less); the realizer retries
/// with the opposite preference when the first attempt is blocked.
LayerId nearest_layer(const grid::RoutingGrid& rg, LayerId layer,
                      Orientation dir, bool prefer_high = true) {
  LayerId best = -1;
  for (const LayerId l : rg.layers_with(dir)) {
    if (best == -1) {
      best = l;
      continue;
    }
    const int dl = std::abs(l - layer);
    const int db = std::abs(best - layer);
    if (dl < db || (dl == db && prefer_high)) best = l;
  }
  return best;
}

}  // namespace

bool DetailedRouter::collect_realize(std::size_t idx, bool prefer_high,
                                     std::vector<Point3>& out) const {
  out.clear();
  const assign::RoutePlan& plan = *plan_;
  const netlist::Subnet& subnet = (*subnets_)[idx];
  if (idx >= plan.runs_of_path.size()) return false;
  const auto& run_ids = plan.runs_of_path[idx];
  if (run_ids.empty()) return false;
  for (const std::size_t id : run_ids) {
    const auto& run = plan.runs[id];
    if (run.layer < 1) return false;  // layer assignment incomplete
    if (run.dir == Orientation::kVertical && (run.ripped || run.pieces.empty()))
      return false;  // ripped segment: route directly with A*
  }

  const auto& rg = grid_->routing_grid();
  LegBuilder legs(*grid_, subnet.net, subnet.a, subnet.b,
                  config_.astar.stitch_cost);
  Point cur = subnet.a;
  LayerId cur_layer = 0;

  for (std::size_t i = 0; i < run_ids.size() && legs.ok(); ++i) {
    const auto& run = plan.runs[run_ids[i]];
    if (run.dir == Orientation::kVertical) {
      const LayerId lv = run.layer;
      const Coord entry_row = std::clamp<Coord>(rg.tile_of_y(cur.y),
                                                run.span.lo, run.span.hi);
      const Coord x_entry = piece_track(run, entry_row);
      if (cur.x != x_entry) {
        const LayerId lh =
            nearest_layer(rg, lv, Orientation::kHorizontal, prefer_high);
        legs.add_stack(cur.x, cur.y, cur_layer, lh);
        legs.add_horizontal(cur.x, x_entry, cur.y, lh);
        cur_layer = lh;
        cur.x = x_entry;
      }
      legs.add_stack(cur.x, cur.y, cur_layer, lv);
      cur_layer = lv;

      // Exit row: toward the next horizontal run's panel, or the pin.
      Coord y_exit;
      if (i + 1 < run_ids.size()) {
        const auto& next = plan.runs[run_ids[i + 1]];
        const geom::Interval span = rg.tile_y_span(next.fixed_tile);
        y_exit = std::clamp(subnet.b.y, span.lo, span.hi);
      } else {
        y_exit = subnet.b.y;
      }
      const int step = y_exit > cur.y ? 1 : -1;
      while (cur.y != y_exit && legs.ok()) {
        const Coord ny = cur.y + step;
        const Coord nx = piece_track(
            run, std::clamp<Coord>(rg.tile_of_y(ny), run.span.lo, run.span.hi));
        if (nx != cur.x) {
          // Dogleg: jog horizontally on the nearest horizontal layer.
          const LayerId lh =
              nearest_layer(rg, lv, Orientation::kHorizontal, prefer_high);
          legs.add_stack(cur.x, cur.y, lv, lh);
          legs.add_horizontal(cur.x, nx, cur.y, lh);
          legs.add_stack(nx, cur.y, lh, lv);
          cur.x = nx;
        }
        legs.add_vertical(cur.y, ny, cur.x, lv);
        cur.y = ny;
      }
    } else {
      const LayerId lh = run.layer;
      Coord x_target;
      if (i + 1 < run_ids.size()) {
        const auto& next = plan.runs[run_ids[i + 1]];  // vertical
        const Coord row =
            std::clamp<Coord>(run.fixed_tile, next.span.lo, next.span.hi);
        x_target = piece_track(next, row);
      } else {
        x_target = subnet.b.x;
      }
      legs.add_stack(cur.x, cur.y, cur_layer, lh);
      legs.add_horizontal(cur.x, x_target, cur.y, lh);
      cur_layer = lh;
      cur.x = x_target;
    }
  }

  // Final L to the target pin: horizontal first, then vertical at b.x.
  // These legs are the realizer's own choice, so they are SP-checked.
  if (legs.ok() && cur.x != subnet.b.x) {
    const LayerId lh =
        nearest_layer(rg, cur_layer, Orientation::kHorizontal, prefer_high);
    legs.add_stack(cur.x, cur.y, cur_layer, lh);
    legs.add_horizontal(cur.x, subnet.b.x, cur.y, lh, /*check=*/true);
    cur_layer = lh;
    cur.x = subnet.b.x;
  }
  if (legs.ok() && cur.y != subnet.b.y) {
    const LayerId lv =
        nearest_layer(rg, cur_layer, Orientation::kVertical, prefer_high);
    legs.add_stack(cur.x, cur.y, cur_layer, lv);
    legs.add_vertical(cur.y, subnet.b.y, cur.x, lv);
    cur_layer = lv;
    cur.y = subnet.b.y;
  }
  if (legs.ok()) legs.add_stack(subnet.b.x, subnet.b.y, cur_layer, 0);
  if (!legs.ok()) {
    out.clear();
    return false;
  }
  out = legs.take_nodes();
  return true;
}

bool DetailedRouter::collect_pattern(std::size_t idx,
                                     std::vector<Point3>& out) const {
  out.clear();
  const auto& subnet = (*subnets_)[idx];
  const auto& rg = grid_->routing_grid();
  const LayerId lh = nearest_layer(rg, 2, Orientation::kHorizontal);
  const LayerId lv = nearest_layer(rg, lh, Orientation::kVertical);

  for (const bool horizontal_first : {true, false}) {
    LegBuilder legs(*grid_, subnet.net, subnet.a, subnet.b,
                    config_.astar.stitch_cost);
    if (horizontal_first) {
      legs.add_stack(subnet.a.x, subnet.a.y, 0, lh);
      legs.add_horizontal(subnet.a.x, subnet.b.x, subnet.a.y, lh,
                          /*check=*/true);
      if (subnet.a.y != subnet.b.y) {
        legs.add_stack(subnet.b.x, subnet.a.y, lh, lv);
        legs.add_vertical(subnet.a.y, subnet.b.y, subnet.b.x, lv);
        legs.add_stack(subnet.b.x, subnet.b.y, lv, 0);
      } else {
        legs.add_stack(subnet.b.x, subnet.b.y, lh, 0);
      }
    } else {
      legs.add_stack(subnet.a.x, subnet.a.y, 0, lv);
      legs.add_vertical(subnet.a.y, subnet.b.y, subnet.a.x, lv);
      if (subnet.a.x != subnet.b.x) {
        legs.add_stack(subnet.a.x, subnet.b.y, lv, lh);
        legs.add_horizontal(subnet.a.x, subnet.b.x, subnet.b.y, lh,
                            /*check=*/true);
        legs.add_stack(subnet.b.x, subnet.b.y, lh, 0);
      } else {
        legs.add_stack(subnet.b.x, subnet.b.y, lv, 0);
      }
    }
    if (!legs.ok()) continue;
    out = legs.take_nodes();
    return true;
  }
  return false;
}

DetailedRouter::Attempt DetailedRouter::compute_first_attempt(
    std::size_t idx, bool allow_realize, SearchScratch& scratch) const {
  TELEMETRY_SPAN("detail.subnet");
  Attempt attempt;
  if (allow_realize &&
      (collect_realize(idx, /*prefer_high=*/true, attempt.nodes) ||
       collect_realize(idx, /*prefer_high=*/false, attempt.nodes))) {
    attempt.kind = Attempt::Kind::kRealized;
    return attempt;
  }
  // Cheap L-shape pattern attempt before the full search (the LegBuilder
  // enforces every hard constraint and rejects would-be short polygons).
  if (collect_pattern(idx, attempt.nodes)) {
    attempt.kind = Attempt::Kind::kPattern;
    return attempt;
  }
  const auto& subnet = (*subnets_)[idx];
  const Rect box = subnet.bbox()
                       .inflated(config_.base_margin)
                       .intersect(grid_->routing_grid().extent());
  if (astar_.search_path(scratch, subnet.net, subnet.a, subnet.b, box)) {
    attempt.kind = Attempt::Kind::kAstar;
    attempt.nodes = scratch.path;
  }
  return attempt;
}

void DetailedRouter::commit_attempt(std::size_t idx, Attempt&& attempt) {
  assert(attempt.kind != Attempt::Kind::kNone);
  const netlist::NetId net = (*subnets_)[idx].net;
  for (const Point3 p : attempt.nodes) grid_->claim(p, net);
  result_->subnet_nodes[idx] = std::move(attempt.nodes);
  result_->subnet_routed[idx] = true;
  switch (attempt.kind) {
    case Attempt::Kind::kRealized:
      result_->subnet_method[idx] = RouteMethod::kRealized;
      ++result_->planned_realized;
      break;
    case Attempt::Kind::kPattern:
      result_->subnet_method[idx] = RouteMethod::kSearch;
      ++result_->pattern_routed;
      break;
    default:
      result_->subnet_method[idx] = RouteMethod::kSearch;
      ++result_->astar_routed;
      break;
  }
}

bool DetailedRouter::route_subnet_escalated(std::size_t idx, int first_retry) {
  const auto& subnet = (*subnets_)[idx];
  const Rect extent = grid_->routing_grid().extent();
  Coord margin = config_.base_margin;
  for (int attempt = 0; attempt < first_retry; ++attempt) margin *= 4;
  for (int attempt = first_retry; attempt <= config_.max_retries; ++attempt) {
    const Rect box = subnet.bbox().inflated(margin).intersect(extent);
    if (astar_.route(subnet.net, subnet.a, subnet.b, box)) {
      result_->subnet_nodes[idx] = astar_.last_path();
      result_->subnet_routed[idx] = true;
      result_->subnet_method[idx] = RouteMethod::kSearch;
      ++result_->astar_routed;
      return true;
    }
    margin *= 4;
  }
  result_->subnet_routed[idx] = false;
  return false;
}

bool DetailedRouter::route_subnet(std::size_t idx, bool allow_realize) {
  Attempt attempt = compute_first_attempt(idx, allow_realize, tl_scratch);
  if (attempt.kind != Attempt::Kind::kNone) {
    commit_attempt(idx, std::move(attempt));
    return true;
  }
  return route_subnet_escalated(idx, /*first_retry=*/1);
}

void DetailedRouter::route_main_parallel(const std::vector<std::size_t>& order,
                                         exec::ThreadPool* pool,
                                         const exec::Cancellation* cancel,
                                         const ProgressFn& progress) {
  TELEMETRY_SPAN("detail.main_pass");
  const auto& rg = grid_->routing_grid();
  namespace keys = telemetry::keys;

  if (!config_.parallel) {
    std::size_t done = 0;
    for (const std::size_t idx : order) {
      if (cancel != nullptr && cancel->stop_requested()) return;
      route_subnet(idx, /*allow_realize=*/true);
      ++done;
      if (progress) progress(done, order.size());
    }
    return;
  }

  // Conservative first-attempt boxes, one per subnet in the order.
  std::vector<Rect> boxes(subnets_->size());
  for (const std::size_t idx : order)
    boxes[idx] =
        subnet_search_box((*subnets_)[idx], *plan_, idx, rg, config_.base_margin);
  const auto batches = gather_disjoint_batches(
      order, boxes, std::max<Coord>(rg.tile_size(), 1),
      static_cast<std::size_t>(std::max(config_.parallel_batch_cap, 1)));

  // Schedule-shape telemetry. Everything here is a pure function of the
  // order and the boxes, so the canonical run-report deltas stay identical
  // for every thread count.
  telemetry::counter(keys::kDetailBatches)
      .add(static_cast<std::int64_t>(batches.size()));
  std::int64_t batched = 0;
  for (const auto& batch : batches)
    if (batch.size() > 1) batched += static_cast<std::int64_t>(batch.size());
  telemetry::counter(keys::kDetailBatchedSubnets).add(batched);
  telemetry::counter(keys::kDetailSequentialSubnets)
      .add(static_cast<std::int64_t>(order.size()) - batched);
  telemetry::Counter& escalations = telemetry::counter(keys::kDetailEscalations);
  telemetry::Counter& recomputed = telemetry::counter(keys::kDetailRecomputed);
  telemetry::Histogram& batch_ns = telemetry::histogram(keys::kDetailBatchNs);

  std::vector<Attempt> attempts;
  std::size_t done = 0;
  for (const auto& batch : batches) {
    if (cancel != nullptr && cancel->stop_requested()) return;
    TELEMETRY_SPAN("detail.batch");
    const std::uint64_t t0 = telemetry::now_ns();

    // Parallel phase: first attempts only, read-only against the grid
    // frozen at the batch start. Box disjointness makes each attempt
    // independent of its siblings, so any execution order gives the same
    // per-index results as the strictly sequential schedule.
    attempts.assign(batch.size(), Attempt{});
    if (pool != nullptr && batch.size() > 1) {
      pool->parallel_for(
          0, batch.size(),
          [&](std::size_t i) {
            attempts[i] =
                compute_first_attempt(batch[i], /*allow_realize=*/true,
                                      tl_scratch);
          },
          cancel);
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i)
        attempts[i] = compute_first_attempt(batch[i], /*allow_realize=*/true,
                                            tl_scratch);
    }

    // Barrier: commit in batch (= sequential) order. A member that failed
    // its first attempt escalates *here*, at its exact sequential position;
    // its widened search box may spill outside its disjointness box, so
    // later members whose boxes the spill touches recompute their first
    // attempt against the now-current grid instead of using the frozen one.
    Rect spill;  // hull of escalated claims so far (empty = none)
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::size_t idx = batch[i];
      if (cancel != nullptr && cancel->stop_requested()) return;
      const bool stale = !spill.empty() && spill.overlaps(boxes[idx]);
      if (stale) {
        recomputed.add(1);
        attempts[i] = compute_first_attempt(idx, /*allow_realize=*/true,
                                            tl_scratch);
      }
      if (attempts[i].kind != Attempt::Kind::kNone) {
        commit_attempt(idx, std::move(attempts[i]));
        continue;
      }
      escalations.add(1);
      if (route_subnet_escalated(idx, /*first_retry=*/1)) {
        for (const Point3 p : result_->subnet_nodes[idx])
          spill = spill.hull(Rect{p.x, p.y, p.x, p.y});
      }
    }

    done += batch.size();
    batch_ns.record_ns(telemetry::now_ns() - t0);
    if (progress) progress(done, order.size());
  }
}

std::vector<std::size_t> DetailedRouter::rip_net(netlist::NetId net) {
  std::vector<std::size_t> ripped;
  for (const std::size_t idx :
       subnets_of_net_[static_cast<std::size_t>(net)]) {
    if (!result_->subnet_routed[idx] && result_->subnet_nodes[idx].empty()) {
      ripped.push_back(idx);  // failed subnet: nothing to release
      continue;
    }
    for (const Point3 p : result_->subnet_nodes[idx])
      if (!pin_nodes_.test(grid_->index(p))) grid_->release(p);
    result_->subnet_nodes[idx].clear();
    result_->subnet_routed[idx] = false;
    ripped.push_back(idx);
  }
  return ripped;
}

void DetailedRouter::rescue_failed(const std::vector<netlist::Subnet>& subnets) {
  TELEMETRY_SPAN("detail.rescue");
  telemetry::Counter& rescued =
      telemetry::counter(telemetry::keys::kRipupRescued);
  telemetry::Counter& victims_count =
      telemetry::counter(telemetry::keys::kRipupVictims);
  const Rect extent = grid_->routing_grid().extent();
  for (int round = 0; round < config_.ripup_rounds; ++round) {
    std::vector<std::size_t> failed;
    for (std::size_t i = 0; i < subnets.size(); ++i)
      if (!result_->subnet_routed[i]) failed.push_back(i);
    if (failed.empty()) return;

    bool progress = false;
    for (const std::size_t idx : failed) {
      if (result_->subnet_routed[idx]) continue;  // rescued as a rip victim
      const auto& subnet = subnets[idx];
      const Rect box = subnet.bbox()
                           .inflated(config_.base_margin * 8)
                           .intersect(extent);
      if (!astar_.probe(subnet.net, subnet.a, subnet.b, box,
                        config_.ripup_foreign_penalty, &pin_nodes_))
        continue;
      const std::vector<Point3> path = astar_.last_path();
      std::unordered_set<netlist::NetId> blockers;
      for (const Point3 p : path) {
        const netlist::NetId owner = grid_->owner(p);
        if (owner != -1 && owner != subnet.net) blockers.insert(owner);
      }
      if (blockers.empty() ||
          static_cast<int>(blockers.size()) > config_.ripup_max_blockers)
        continue;

      std::vector<std::size_t> victims;
      for (const netlist::NetId net : blockers) {
        const auto ripped = rip_net(net);
        victims.insert(victims.end(), ripped.begin(), ripped.end());
      }
      for (const Point3 p : path) grid_->claim(p, subnet.net);
      result_->subnet_nodes[idx] = path;
      result_->subnet_routed[idx] = true;
      result_->subnet_method[idx] = RouteMethod::kSearch;
      ++result_->ripup_rescued;
      rescued.add(1);
      victims_count.add(static_cast<std::int64_t>(victims.size()));
      progress = true;
      // Reroute the victims immediately, smallest first.
      std::stable_sort(victims.begin(), victims.end(),
                       [&](std::size_t a, std::size_t b) {
                         return subnets[a].bbox().area() <
                                subnets[b].bbox().area();
                       });
      for (const std::size_t victim : victims)
        route_subnet(victim, /*allow_realize=*/true);
    }
    if (!progress) return;
  }
}

namespace {

/// A short-polygon end site: the wire-end node and its owning net.
struct SpSite {
  Point3 node;
  netlist::NetId net;
};

/// All short-polygon end sites in the current occupancy.
std::vector<SpSite> short_polygon_sites(const GridGraph& grid) {
  const auto& rg = grid.routing_grid();
  const auto& stitch = rg.stitch();
  std::vector<SpSite> sites;
  const auto has_via = [&](Point3 p, netlist::NetId net) {
    if (p.layer > 0 &&
        grid.owner({p.x, p.y, static_cast<LayerId>(p.layer - 1)}) == net)
      return true;
    return p.layer + 1 < rg.num_layers() &&
           grid.owner({p.x, p.y, static_cast<LayerId>(p.layer + 1)}) == net;
  };
  for (const LayerId layer : rg.layers_with(Orientation::kHorizontal)) {
    for (Coord y = 0; y < rg.height(); ++y) {
      Coord x = 0;
      while (x < rg.width()) {
        const netlist::NetId net = grid.owner({x, y, layer});
        if (net == -1) {
          ++x;
          continue;
        }
        Coord end = x;
        while (end + 1 < rg.width() && grid.owner({end + 1, y, layer}) == net)
          ++end;
        if (end > x) {
          for (const Coord s : stitch.lines_cutting({x, end})) {
            if (s - x <= stitch.epsilon() && has_via({x, y, layer}, net))
              sites.push_back({{x, y, layer}, net});
            if (end - s <= stitch.epsilon() && has_via({end, y, layer}, net))
              sites.push_back({{end, y, layer}, net});
          }
        }
        x = end + 1;
      }
    }
  }
  return sites;
}

}  // namespace

void DetailedRouter::cleanup_short_polygons() {
  if (!config_.astar.stitch_cost) return;
  TELEMETRY_SPAN("detail.sp_cleanup");
  for (int round = 0; round < config_.sp_cleanup_rounds; ++round) {
    const auto sites = short_polygon_sites(*grid_);
    if (sites.empty()) return;
    // A net is cleaned only when at least one of its short-polygon ends
    // lies on *search-routed* geometry. Realized geometry follows the track
    // assignment verbatim; the detailed stage does not override it (its
    // quality is the assignment stage's responsibility, as in the paper).
    std::unordered_set<netlist::NetId> eligible;
    for (const SpSite& site : sites) {
      for (const std::size_t idx :
           subnets_of_net_[static_cast<std::size_t>(site.net)]) {
        if (result_->subnet_method[idx] != RouteMethod::kSearch) continue;
        const auto& nodes = result_->subnet_nodes[idx];
        if (std::find(nodes.begin(), nodes.end(), site.node) != nodes.end()) {
          eligible.insert(site.net);
          break;
        }
      }
    }
    if (eligible.empty()) return;
    std::vector<netlist::NetId> offenders(eligible.begin(), eligible.end());
    std::sort(offenders.begin(), offenders.end());  // deterministic order
    astar_.set_beta_scale(config_.sp_cleanup_beta_scale);
    for (const netlist::NetId net : offenders) {
      // Save the net's geometry so a failed reroute can be undone.
      std::vector<std::pair<std::size_t, std::vector<Point3>>> saved;
      for (const std::size_t idx :
           subnets_of_net_[static_cast<std::size_t>(net)])
        if (result_->subnet_routed[idx])
          saved.emplace_back(idx, result_->subnet_nodes[idx]);

      std::vector<RouteMethod> prior_method(result_->subnet_method);

      const auto victims = rip_net(net);
      bool ok = true;
      for (const std::size_t idx : victims)
        // Realized subnets re-realize their assigned geometry verbatim;
        // only the search-routed ones get a fresh, stricter search.
        if (!route_subnet(idx, /*allow_realize=*/prior_method[idx] ==
                                   RouteMethod::kRealized))
          ok = false;

      if (!ok) {
        // Restore the original geometry and bookkeeping.
        rip_net(net);
        for (auto& [idx, nodes] : saved) {
          for (const Point3 p : nodes) grid_->claim(p, net);
          result_->subnet_nodes[idx] = std::move(nodes);
          result_->subnet_routed[idx] = true;
          result_->subnet_method[idx] = prior_method[idx];
        }
      } else {
        ++result_->sp_cleanup_nets;
      }
    }
    astar_.set_beta_scale(1.0);
  }
}

void DetailedRouter::bind(const std::vector<netlist::Subnet>& subnets,
                          const assign::RoutePlan& plan,
                          DetailedResult& result) {
  subnets_ = &subnets;
  plan_ = &plan;
  result_ = &result;
  netlist::NetId max_net = -1;
  for (const auto& subnet : subnets) max_net = std::max(max_net, subnet.net);
  subnets_of_net_.assign(static_cast<std::size_t>(max_net + 1), {});
  for (std::size_t i = 0; i < subnets.size(); ++i)
    subnets_of_net_[static_cast<std::size_t>(subnets[i].net)].push_back(i);
}

void DetailedRouter::restore(const std::vector<netlist::Subnet>& subnets,
                             const assign::RoutePlan& plan,
                             DetailedResult& result) {
  bind(subnets, plan, result);
  result.subnet_routed.resize(subnets.size(), false);
  result.subnet_nodes.resize(subnets.size());
  result.subnet_method.resize(subnets.size(), RouteMethod::kNone);
  // Re-claim the committed geometry. Claims are idempotent per net, so a
  // grid that already carries it (the long-lived resident) is untouched and
  // a freshly-loaded grid ends up in the identical occupancy state.
  for (std::size_t i = 0; i < subnets.size(); ++i)
    for (const Point3 p : result.subnet_nodes[i])
      grid_->claim(p, subnets[i].net);
}

void DetailedRouter::reroute_nets(const std::vector<netlist::NetId>& nets,
                                  exec::ThreadPool* pool,
                                  const exec::Cancellation* cancel,
                                  const ProgressFn& progress,
                                  const std::vector<PinMove>& pin_moves) {
  TELEMETRY_SPAN("detail.eco");
  assert(subnets_ != nullptr && result_ != nullptr);
  // Rip whole nets, never single subnets: subnets of one net share junction
  // nodes, so per-subnet rip-up could release a sibling's geometry.
  std::vector<netlist::NetId> order_nets = nets;
  std::sort(order_nets.begin(), order_nets.end());
  order_nets.erase(std::unique(order_nets.begin(), order_nets.end()),
                   order_nets.end());
  std::vector<std::uint8_t> ripped(subnets_->size(), 0);
  for (const netlist::NetId net : order_nets) {
    if (net < 0 || static_cast<std::size_t>(net) >= subnets_of_net_.size())
      continue;
    for (const std::size_t idx : rip_net(net)) ripped[idx] = 1;
  }
  // Pin claims move only after every involved net's geometry is off the
  // grid, so the destination nodes are free to reserve.
  for (const PinMove& move : pin_moves)
    move_pin_claims(move.net, move.from, move.to);
  // The ripped subnets route in their positions of the *full* deterministic
  // order — the same relative schedule on every ECO compare path.
  const auto full_order =
      order_subnets(*subnets_, *plan_, config_.stitch_net_ordering);
  std::vector<std::size_t> order;
  for (const std::size_t idx : full_order)
    if (ripped[idx] != 0) order.push_back(idx);
  route_main_parallel(order, pool, cancel, progress);
  if (cancel == nullptr || !cancel->stop_requested()) {
    rescue_failed(*subnets_);
    cleanup_short_polygons();
  }
  result_->routed = std::count(result_->subnet_routed.begin(),
                               result_->subnet_routed.end(), true);
  result_->failed =
      static_cast<std::int64_t>(subnets_->size()) - result_->routed;
}

DetailedResult DetailedRouter::route_all(
    const std::vector<netlist::Subnet>& subnets, const assign::RoutePlan& plan,
    exec::ThreadPool* pool, const exec::Cancellation* cancel,
    const ProgressFn& progress) {
  TELEMETRY_SPAN("detail.route_all");
  DetailedResult result;
  result.subnet_routed.assign(subnets.size(), false);
  result.subnet_nodes.assign(subnets.size(), {});
  result.subnet_method.assign(subnets.size(), RouteMethod::kNone);
  bind(subnets, plan, result);

  const auto order = order_subnets(subnets, plan, config_.stitch_net_ordering);
  route_main_parallel(order, pool, cancel, progress);

  if (cancel == nullptr || !cancel->stop_requested()) {
    rescue_failed(subnets);
    cleanup_short_polygons();
  }

  result.routed = std::count(result.subnet_routed.begin(),
                             result.subnet_routed.end(), true);
  result.failed = static_cast<std::int64_t>(subnets.size()) - result.routed;

  namespace keys = telemetry::keys;
  telemetry::counter(keys::kSubnetsRealized).add(result.planned_realized);
  telemetry::counter(keys::kSubnetsPattern).add(result.pattern_routed);
  telemetry::counter(keys::kSubnetsAstar).add(result.astar_routed);
  telemetry::counter(keys::kSubnetsFailed).add(result.failed);
  telemetry::counter(keys::kSpCleanupNets).add(result.sp_cleanup_nets);
  util::log_info() << "detailed routing: " << result.routed << "/"
                   << subnets.size() << " subnets (realized "
                   << result.planned_realized << ", A* "
                   << result.astar_routed << ", rescued "
                   << result.ripup_rescued << ", SP-cleaned nets "
                   << result.sp_cleanup_nets << ")";
  return result;
}

}  // namespace mebl::detail
