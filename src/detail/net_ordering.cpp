#include "detail/net_ordering.hpp"

#include <algorithm>
#include <numeric>

namespace mebl::detail {

int subnet_bad_ends(const assign::RoutePlan& plan, std::size_t path_index) {
  int bad = 0;
  if (path_index >= plan.runs_of_path.size()) return 0;
  for (const std::size_t r : plan.runs_of_path[path_index])
    bad += plan.runs[r].bad_ends;
  return bad;
}

std::vector<std::size_t> order_subnets(
    const std::vector<netlist::Subnet>& subnets, const assign::RoutePlan& plan,
    bool stitch_aware) {
  std::vector<std::size_t> order(subnets.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<int> bad(subnets.size(), 0);
  if (stitch_aware)
    for (std::size_t i = 0; i < subnets.size(); ++i)
      bad[i] = subnet_bad_ends(plan, i);

  std::vector<std::int64_t> area(subnets.size());
  for (std::size_t i = 0; i < subnets.size(); ++i)
    area[i] = subnets[i].bbox().area();

  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (bad[a] != bad[b]) return bad[a] > bad[b];
                     return area[a] < area[b];
                   });
  return order;
}

}  // namespace mebl::detail
