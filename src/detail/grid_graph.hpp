#pragma once

#include <vector>

#include "grid/routing_grid.hpp"
#include "netlist/netlist.hpp"

namespace mebl::detail {

/// Occupancy model of the full 3-D detailed-routing grid.
///
/// A node is (x, y, layer); layer 0 is the pin layer. Each node is either
/// free (owner -1) or owned by exactly one net. Routed geometry is the set
/// of owned nodes: same-net adjacency along a layer's preferred direction is
/// wire, same-net adjacency across layers is a via.
class GridGraph {
 public:
  explicit GridGraph(const grid::RoutingGrid& grid);

  [[nodiscard]] const grid::RoutingGrid& routing_grid() const noexcept {
    return *grid_;
  }

  [[nodiscard]] netlist::NetId owner(geom::Point3 p) const {
    return owner_[index(p)];
  }
  [[nodiscard]] bool is_free(geom::Point3 p) const { return owner(p) == -1; }
  [[nodiscard]] bool is_free_or(geom::Point3 p, netlist::NetId net) const {
    const netlist::NetId o = owner(p);
    return o == -1 || o == net;
  }

  /// Claim a node for a net. Claiming a node already owned by the same net
  /// is a no-op; claiming another net's node is a programming error.
  void claim(geom::Point3 p, netlist::NetId net);

  /// Release a node (rip-up). Releasing a free node is a no-op.
  void release(geom::Point3 p);

  /// Number of nodes currently owned by any net.
  [[nodiscard]] std::int64_t occupied_nodes() const noexcept {
    return occupied_;
  }

  // --- stitch-constraint queries (hard constraints of SII-A) ---------------

  /// A wire may move vertically at x only off stitching-line columns.
  [[nodiscard]] bool vertical_move_allowed(geom::Coord x) const {
    return !grid_->stitch().is_stitch_column(x);
  }

  /// A via at x is allowed off stitching lines; on a line it is a via
  /// violation, tolerated only at fixed pin locations.
  [[nodiscard]] bool via_allowed(geom::Coord x) const {
    return !grid_->stitch().is_stitch_column(x);
  }

  [[nodiscard]] std::size_t index(geom::Point3 p) const {
    return (static_cast<std::size_t>(p.layer) * grid_->height() + p.y) *
               grid_->width() +
           p.x;
  }

 private:
  const grid::RoutingGrid* grid_;
  std::vector<netlist::NetId> owner_;
  std::int64_t occupied_ = 0;
};

}  // namespace mebl::detail
