#pragma once

#include <cstddef>
#include <vector>

#include "assign/panel.hpp"
#include "geom/rect.hpp"
#include "grid/routing_grid.hpp"
#include "netlist/netlist.hpp"

namespace mebl::detail {

/// Conservative bounding box of every grid node that routing subnet `idx`'s
/// *first attempt* may read or write: the pin bbox inflated by the A*
/// margin, hulled with the x-tracks of every planned vertical run's pieces
/// and the y-rows of every planned horizontal run's panel (the realizer's
/// legs are axis-aligned segments between points of that hull, so the whole
/// realized path stays inside it). Two subnets with disjoint boxes can be
/// routed in either order — or concurrently against a frozen grid — with
/// bit-identical results.
[[nodiscard]] geom::Rect subnet_search_box(const netlist::Subnet& subnet,
                                           const assign::RoutePlan& plan,
                                           std::size_t idx,
                                           const grid::RoutingGrid& rg,
                                           geom::Coord margin);

/// Greedy prefix batching for the parallel detailed router: walk `order`
/// front to back, extending the current batch while the next subnet's box
/// is disjoint from every box already gathered (tested conservatively on a
/// uniform bin grid of `bin_size` tracks), and closing it at the first
/// conflict or at `max_batch` members. The concatenation of the returned
/// batches is exactly `order`, and the boxes within one batch are pairwise
/// disjoint — so executing batches in sequence, with any serialization (or
/// parallelization) inside a batch, reproduces the strictly sequential
/// schedule node for node. Subnets whose boxes overlap everything simply
/// degenerate to singleton batches: the sequential tail.
///
/// Deterministic: depends only on `order` and `boxes`, never on thread
/// count or timing.
[[nodiscard]] std::vector<std::vector<std::size_t>> gather_disjoint_batches(
    const std::vector<std::size_t>& order,
    const std::vector<geom::Rect>& boxes, geom::Coord bin_size,
    std::size_t max_batch);

}  // namespace mebl::detail
