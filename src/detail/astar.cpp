#include "detail/astar.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "telemetry/keys.hpp"

namespace mebl::detail {

using geom::Coord;
using geom::Orientation;
using geom::Point;
using geom::Point3;
using geom::Rect;

AStarRouter::AStarRouter(GridGraph& grid, AStarConfig config)
    : grid_(&grid),
      config_(config),
      searches_counter_(&telemetry::counter(telemetry::keys::kAstarSearches)),
      expansions_counter_(
          &telemetry::counter(telemetry::keys::kAstarExpansions)),
      search_ns_histogram_(
          &telemetry::histogram(telemetry::keys::kAstarSearchNs)) {
  // Prefix sums of escape columns: any route from x1 to x2 must enter at
  // least one node in every escape column strictly between them (stitching
  // lines span the full layout height), paying gamma each — an admissible
  // heuristic term that keeps A* focused despite the escape costs.
  const auto& rg = grid.routing_grid();
  escape_prefix_.assign(static_cast<std::size_t>(rg.width()) + 1, 0);
  for (Coord x = 0; x < rg.width(); ++x)
    escape_prefix_[static_cast<std::size_t>(x) + 1] =
        escape_prefix_[static_cast<std::size_t>(x)] +
        (rg.stitch().in_escape_region(x) ? 1 : 0);
}

double AStarRouter::escape_between(Coord x1, Coord x2) const {
  const Coord lo = std::min(x1, x2);
  const Coord hi = std::max(x1, x2);
  if (hi - lo <= 1) return 0.0;
  return static_cast<double>(escape_prefix_[static_cast<std::size_t>(hi)] -
                             escape_prefix_[static_cast<std::size_t>(lo) + 1]);
}

namespace {
struct HeapEntry {
  double f;
  double g;
  std::int32_t state;
  friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
    return a.f > b.f;
  }
};
}  // namespace

void AStarRouter::add_node_penalty(Point3 node, double penalty) {
  node_penalty_[grid_->index(node)] += penalty;
}

bool AStarRouter::route(netlist::NetId net, Point a, Point b, const Rect& box) {
  return search(net, a, b, box, /*foreign_penalty=*/-1.0, nullptr,
                /*claim=*/true);
}

bool AStarRouter::probe(netlist::NetId net, Point a, Point b, const Rect& box,
                        double foreign_penalty,
                        const std::unordered_set<std::size_t>* hard) {
  assert(foreign_penalty > 0.0);
  return search(net, a, b, box, foreign_penalty, hard, /*claim=*/false);
}

bool AStarRouter::search(netlist::NetId net, Point a, Point b, const Rect& box,
                         double foreign_penalty,
                         const std::unordered_set<std::size_t>* hard,
                         bool claim) {
  TELEMETRY_SPAN("detail.astar");
  // Flush this search's expansion delta and latency on every return path.
  struct Flush {
    AStarRouter* self;
    std::uint64_t start_ns;
    std::int64_t expanded_before;
    ~Flush() {
      self->searches_counter_->add(1);
      self->expansions_counter_->add(self->nodes_expanded_ - expanded_before);
      self->search_ns_histogram_->record_ns(telemetry::now_ns() - start_ns);
    }
  } flush{this, telemetry::now_ns(), nodes_expanded_};
  const auto& rg = grid_->routing_grid();
  const auto& stitch = rg.stitch();
  assert(box.contains(a) && box.contains(b));
  const int w = box.width();
  const int h = box.height();
  const int layers = rg.num_layers();

  const std::size_t num_states =
      static_cast<std::size_t>(w) * h * static_cast<std::size_t>(layers);
  if (stamp_.size() < num_states) {
    stamp_.assign(num_states, 0);
    g_cost_.resize(num_states);
    parent_.resize(num_states);
    epoch_ = 0;
  }
  ++epoch_;

  const auto state_of = [&](Point3 p) {
    return static_cast<std::int32_t>(
        (static_cast<std::size_t>(p.layer) * h + (p.y - box.ylo)) * w +
        (p.x - box.xlo));
  };
  const auto point_of = [&](std::int32_t s) {
    const auto u = static_cast<std::size_t>(s);
    return Point3{static_cast<Coord>(box.xlo + u % w),
                  static_cast<Coord>(box.ylo + (u / w) % h),
                  static_cast<geom::LayerId>(u / (static_cast<std::size_t>(w) * h))};
  };
  const auto visit = [&](std::int32_t s) -> bool {
    auto& st = stamp_[static_cast<std::size_t>(s)];
    if (st == epoch_) return false;
    st = epoch_;
    return true;
  };
  const auto heuristic = [&](Point3 p) {
    double est =
        config_.alpha * (manhattan(p.xy(), b) +
                         config_.via_length * static_cast<double>(p.layer));
    if (config_.stitch_cost)
      est += config_.gamma * escape_between(p.x, b.x);
    return est;
  };

  const Point3 start{a.x, a.y, 0};
  const Point3 goal{b.x, b.y, 0};

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  const std::int32_t start_state = state_of(start);
  stamp_[static_cast<std::size_t>(start_state)] = epoch_;
  g_cost_[static_cast<std::size_t>(start_state)] = 0.0;
  parent_[static_cast<std::size_t>(start_state)] = -1;
  heap.push({heuristic(start), 0.0, start_state});

  const auto is_pin_xy = [&](Coord x, Coord y) {
    return (x == a.x && y == a.y) || (x == b.x && y == b.y);
  };

  std::int32_t goal_state = -1;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.g > g_cost_[static_cast<std::size_t>(top.state)]) continue;
    ++nodes_expanded_;
    const Point3 p = point_of(top.state);
    if (p == goal) {
      goal_state = top.state;
      break;
    }

    // Enumerate legal moves from p.
    Point3 next[4];
    int count = 0;
    if (p.layer >= 1) {
      const Orientation dir = rg.layer_dir(p.layer);
      if (dir == Orientation::kHorizontal) {
        next[count++] = {static_cast<Coord>(p.x - 1), p.y, p.layer};
        next[count++] = {static_cast<Coord>(p.x + 1), p.y, p.layer};
      } else if (grid_->vertical_move_allowed(p.x)) {
        next[count++] = {p.x, static_cast<Coord>(p.y - 1), p.layer};
        next[count++] = {p.x, static_cast<Coord>(p.y + 1), p.layer};
      }
    }
    // Layer hops (vias). Vias on a stitching column are allowed only at the
    // fixed pin positions (tolerated via violations).
    if (grid_->via_allowed(p.x) || is_pin_xy(p.x, p.y)) {
      if (p.layer + 1 < layers)
        next[count++] = {p.x, p.y, static_cast<geom::LayerId>(p.layer + 1)};
      if (p.layer >= 1)
        next[count++] = {p.x, p.y, static_cast<geom::LayerId>(p.layer - 1)};
    }

    for (int m = 0; m < count; ++m) {
      const Point3 q = next[m];
      if (q.x < box.xlo || q.x > box.xhi || q.y < box.ylo || q.y > box.yhi)
        continue;
      // The pin layer is only enterable at this subnet's own pins.
      if (q.layer == 0 && !is_pin_xy(q.x, q.y)) continue;

      const netlist::NetId owner = grid_->owner(q);
      const bool foreign = owner != -1 && owner != net;
      if (foreign) {
        if (foreign_penalty < 0.0) continue;  // normal mode: blocked
        // Probe mode: pin-layer nodes and designated hard nodes stay
        // blocked; everything else is rip-up-able at a price.
        if (q.layer == 0) continue;
        if (hard != nullptr && hard->count(grid_->index(q)) != 0) continue;
      }

      const bool z_move = q.layer != p.layer;
      double step;
      if (owner == net) {
        step = config_.own_net_step;  // ride existing wire
      } else {
        step = config_.alpha * (z_move ? config_.via_length : 1.0);
        if (config_.stitch_cost) {
          if (z_move && stitch.in_unfriendly_region(q.x))
            step += beta_scale_ * config_.beta;  // C_vsu
          if (stitch.in_escape_region(q.x))
            step += config_.gamma;  // C_esc
          if (!node_penalty_.empty()) {
            const auto it = node_penalty_.find(grid_->index(q));
            if (it != node_penalty_.end()) step += beta_scale_ * it->second;
          }
        }
        if (foreign) step += foreign_penalty;
      }

      const std::int32_t qs = state_of(q);
      const double ng = top.g + step;
      if (visit(qs) || ng < g_cost_[static_cast<std::size_t>(qs)]) {
        g_cost_[static_cast<std::size_t>(qs)] = ng;
        parent_[static_cast<std::size_t>(qs)] = top.state;
        heap.push({ng + heuristic(q), ng, qs});
      }
    }
  }

  if (goal_state < 0) return false;

  last_path_.clear();
  for (std::int32_t s = goal_state; s != -1;
       s = parent_[static_cast<std::size_t>(s)])
    last_path_.push_back(point_of(s));
  std::reverse(last_path_.begin(), last_path_.end());
  if (claim)
    for (const Point3 p : last_path_) grid_->claim(p, net);
  return true;
}

}  // namespace mebl::detail
