#include "detail/astar.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "telemetry/keys.hpp"

namespace mebl::detail {

using geom::Coord;
using geom::Orientation;
using geom::Point;
using geom::Point3;
using geom::Rect;

AStarRouter::AStarRouter(GridGraph& grid, AStarConfig config)
    : grid_(&grid),
      config_(config),
      searches_counter_(&telemetry::counter(telemetry::keys::kAstarSearches)),
      expansions_counter_(
          &telemetry::counter(telemetry::keys::kAstarExpansions)),
      search_ns_histogram_(
          &telemetry::histogram(telemetry::keys::kAstarSearchNs)) {
  const auto& rg = grid.routing_grid();
  const auto& stitch = rg.stitch();

  // Per-column cost/legality table: everything the expansion loop asks about
  // a neighbor's column is a pure function of x, so precompute it once and
  // make the inner loop straight array indexing.
  columns_.resize(static_cast<std::size_t>(rg.width()));
  for (Coord x = 0; x < rg.width(); ++x) {
    Column& col = columns_[static_cast<std::size_t>(x)];
    const bool on_line = stitch.is_stitch_column(x);
    col.via_ok = on_line ? 0 : 1;
    col.vmove_ok = on_line ? 0 : 1;
    if (config_.stitch_cost) {
      col.escape_cost = stitch.in_escape_region(x) ? config_.gamma : 0.0;
      col.unfriendly = stitch.in_unfriendly_region(x) ? 1.0 : 0.0;
    }
  }

  layer_horizontal_.resize(static_cast<std::size_t>(rg.num_layers()), 0);
  for (geom::LayerId l = 1; l < rg.num_layers(); ++l)
    layer_horizontal_[static_cast<std::size_t>(l)] =
        rg.layer_dir(l) == Orientation::kHorizontal ? 1 : 0;

  // Prefix sums of escape columns: any route from x1 to x2 must enter at
  // least one node in every escape column strictly between them (stitching
  // lines span the full layout height), paying gamma each — an admissible
  // heuristic term that keeps A* focused despite the escape costs.
  escape_prefix_.assign(static_cast<std::size_t>(rg.width()) + 1, 0);
  for (Coord x = 0; x < rg.width(); ++x)
    escape_prefix_[static_cast<std::size_t>(x) + 1] =
        escape_prefix_[static_cast<std::size_t>(x)] +
        (stitch.in_escape_region(x) ? 1 : 0);
}

double AStarRouter::escape_between(Coord x1, Coord x2) const {
  const Coord lo = std::min(x1, x2);
  const Coord hi = std::max(x1, x2);
  if (hi - lo <= 1) return 0.0;
  return static_cast<double>(escape_prefix_[static_cast<std::size_t>(hi)] -
                             escape_prefix_[static_cast<std::size_t>(lo) + 1]);
}

namespace {

/// Min-f ordering with an admissibility-preserving tie-break on *higher* g:
/// among equal-f entries the deeper node (smaller heuristic remainder) pops
/// first, which reaches the goal before re-expanding shallow plateaus.
struct HeapWorse {
  bool operator()(const SearchScratch::HeapEntry& a,
                  const SearchScratch::HeapEntry& b) const {
    return a.f > b.f || (a.f == b.f && a.g < b.g);
  }
};

}  // namespace

void AStarRouter::add_node_penalty(Point3 node, double penalty) {
  if (node_penalty_.empty())
    node_penalty_.assign(
        static_cast<std::size_t>(grid_->routing_grid().num_layers()) *
            grid_->routing_grid().width() * grid_->routing_grid().height(),
        0.0);
  node_penalty_[grid_->index(node)] += penalty;
}

bool AStarRouter::route(netlist::NetId net, Point a, Point b, const Rect& box) {
  if (!search(scratch_, net, a, b, box, /*foreign_penalty=*/-1.0, nullptr))
    return false;
  for (const Point3 p : scratch_.path) grid_->claim(p, net);
  return true;
}

bool AStarRouter::probe(netlist::NetId net, Point a, Point b, const Rect& box,
                        double foreign_penalty, const NodeBitmap* hard) {
  assert(foreign_penalty > 0.0);
  return search(scratch_, net, a, b, box, foreign_penalty, hard);
}

bool AStarRouter::search_path(SearchScratch& scratch, netlist::NetId net,
                              Point a, Point b, const Rect& box) const {
  return search(scratch, net, a, b, box, /*foreign_penalty=*/-1.0, nullptr);
}

bool AStarRouter::search(SearchScratch& scratch, netlist::NetId net, Point a,
                         Point b, const Rect& box, double foreign_penalty,
                         const NodeBitmap* hard) const {
  TELEMETRY_SPAN("detail.astar");
  const std::uint64_t start_ns = telemetry::now_ns();
  const auto& rg = grid_->routing_grid();
  assert(box.contains(a) && box.contains(b));
  const int w = box.width();
  const int h = box.height();
  const int layers = rg.num_layers();

  const std::size_t num_states =
      static_cast<std::size_t>(w) * h * static_cast<std::size_t>(layers);
  if (scratch.stamp.size() < num_states) {
    scratch.stamp.assign(num_states, 0);
    scratch.g_cost.resize(num_states);
    scratch.parent.resize(num_states);
    scratch.epoch = 0;
  }
  ++scratch.epoch;
  const std::uint32_t epoch = scratch.epoch;
  std::uint32_t* const stamp = scratch.stamp.data();
  double* const g_cost = scratch.g_cost.data();
  std::int32_t* const parent = scratch.parent.data();

  const auto state_of = [&](Point3 p) {
    return static_cast<std::int32_t>(
        (static_cast<std::size_t>(p.layer) * h + (p.y - box.ylo)) * w +
        (p.x - box.xlo));
  };
  const auto point_of = [&](std::int32_t s) {
    const auto u = static_cast<std::size_t>(s);
    return Point3{static_cast<Coord>(box.xlo + u % w),
                  static_cast<Coord>(box.ylo + (u / w) % h),
                  static_cast<geom::LayerId>(u / (static_cast<std::size_t>(w) * h))};
  };
  const auto heuristic = [&](Point3 p) {
    double est =
        config_.alpha * (manhattan(p.xy(), b) +
                         config_.via_length * static_cast<double>(p.layer));
    if (config_.stitch_cost)
      est += config_.gamma * escape_between(p.x, b.x);
    return est;
  };

  const Point3 start{a.x, a.y, 0};
  const Point3 goal{b.x, b.y, 0};

  auto& heap = scratch.heap;
  heap.clear();
  const HeapWorse worse;
  const std::int32_t start_state = state_of(start);
  stamp[static_cast<std::size_t>(start_state)] = epoch;
  g_cost[static_cast<std::size_t>(start_state)] = 0.0;
  parent[static_cast<std::size_t>(start_state)] = -1;
  heap.push_back({heuristic(start), 0.0, start_state});

  const auto is_pin_xy = [&](Coord x, Coord y) {
    return (x == a.x && y == a.y) || (x == b.x && y == b.y);
  };

  const Column* const columns = columns_.data();
  // Static node penalties apply only with the stitch costs on (they guard
  // short-polygon sites, a stitch-only concern).
  const double* const penalties =
      config_.stitch_cost && !node_penalty_.empty() ? node_penalty_.data()
                                                    : nullptr;
  const double via_step = config_.alpha * config_.via_length;
  const double wire_step = config_.alpha;
  const double beta_scaled = beta_scale_ * config_.beta;

  // Hot-node plateau bypass. The heuristic is consistent, so a child whose
  // f does not exceed the just-popped f is guaranteed to be the next pop:
  // no heap entry has smaller f, and among equal-f entries the child's g
  // (parent g + a positive step) is strictly the largest, which is exactly
  // what the tie-break prefers. Carrying that child in a register instead
  // of pushing it makes plateau walks heap-free — without this, the
  // higher-g tie-break would sift every plateau child to the heap root.
  std::int64_t expanded = 0;
  std::int32_t goal_state = -1;
  SearchScratch::HeapEntry hot{};
  bool have_hot = false;
  while (have_hot || !heap.empty()) {
    SearchScratch::HeapEntry top;
    if (have_hot) {
      top = hot;
      have_hot = false;
    } else {
      std::pop_heap(heap.begin(), heap.end(), worse);
      top = heap.back();
      heap.pop_back();
    }
    if (top.g > g_cost[static_cast<std::size_t>(top.state)]) continue;
    ++expanded;
    const Point3 p = point_of(top.state);
    if (p == goal) {
      goal_state = top.state;
      break;
    }

    // Enumerate legal moves from p.
    Point3 next[4];
    int count = 0;
    const Column& pc = columns[p.x];
    if (p.layer >= 1) {
      if (layer_horizontal_[static_cast<std::size_t>(p.layer)] != 0) {
        next[count++] = {static_cast<Coord>(p.x - 1), p.y, p.layer};
        next[count++] = {static_cast<Coord>(p.x + 1), p.y, p.layer};
      } else if (pc.vmove_ok != 0) {
        next[count++] = {p.x, static_cast<Coord>(p.y - 1), p.layer};
        next[count++] = {p.x, static_cast<Coord>(p.y + 1), p.layer};
      }
    }
    // Layer hops (vias). Vias on a stitching column are allowed only at the
    // fixed pin positions (tolerated via violations).
    if (pc.via_ok != 0 || is_pin_xy(p.x, p.y)) {
      if (p.layer + 1 < layers)
        next[count++] = {p.x, p.y, static_cast<geom::LayerId>(p.layer + 1)};
      if (p.layer >= 1)
        next[count++] = {p.x, p.y, static_cast<geom::LayerId>(p.layer - 1)};
    }

    for (int m = 0; m < count; ++m) {
      const Point3 q = next[m];
      if (q.x < box.xlo || q.x > box.xhi || q.y < box.ylo || q.y > box.yhi)
        continue;
      // The pin layer is only enterable at this subnet's own pins.
      if (q.layer == 0 && !is_pin_xy(q.x, q.y)) continue;

      const netlist::NetId owner = grid_->owner(q);
      const bool foreign = owner != -1 && owner != net;
      if (foreign) {
        if (foreign_penalty < 0.0) continue;  // normal mode: blocked
        // Probe mode: pin-layer nodes and designated hard nodes stay
        // blocked; everything else is rip-up-able at a price.
        if (q.layer == 0) continue;
        if (hard != nullptr && hard->test(grid_->index(q))) continue;
      }

      const bool z_move = q.layer != p.layer;
      double step;
      if (owner == net) {
        step = config_.own_net_step;  // ride existing wire
      } else {
        const Column& qc = columns[q.x];
        step = z_move ? via_step + beta_scaled * qc.unfriendly  // C_vsu
                      : wire_step;
        step += qc.escape_cost;  // C_esc
        if (penalties != nullptr) {
          const double pen = penalties[grid_->index(q)];
          if (pen != 0.0) step += beta_scale_ * pen;
        }
        if (foreign) step += foreign_penalty;
      }

      const std::int32_t qs = state_of(q);
      const auto uqs = static_cast<std::size_t>(qs);
      const double ng = top.g + step;
      if (stamp[uqs] != epoch || ng < g_cost[uqs]) {
        stamp[uqs] = epoch;
        g_cost[uqs] = ng;
        parent[uqs] = top.state;
        const SearchScratch::HeapEntry entry{ng + heuristic(q), ng, qs};
        if (entry.f <= top.f && (!have_hot || worse(hot, entry))) {
          if (have_hot) {
            heap.push_back(hot);
            std::push_heap(heap.begin(), heap.end(), worse);
          }
          hot = entry;
          have_hot = true;
        } else {
          heap.push_back(entry);
          std::push_heap(heap.begin(), heap.end(), worse);
        }
      }
    }
  }

  nodes_expanded_.fetch_add(expanded, std::memory_order_relaxed);
  searches_counter_->add(1);
  expansions_counter_->add(expanded);
  search_ns_histogram_->record_ns(telemetry::now_ns() - start_ns);

  if (goal_state < 0) return false;

  scratch.path.clear();
  for (std::int32_t s = goal_state; s != -1;
       s = parent[static_cast<std::size_t>(s)])
    scratch.path.push_back(point_of(s));
  std::reverse(scratch.path.begin(), scratch.path.end());
  return true;
}

}  // namespace mebl::detail
