#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "detail/grid_graph.hpp"
#include "detail/node_bitmap.hpp"
#include "telemetry/telemetry.hpp"

namespace mebl::detail {

/// Cost weights for the stitch-aware detailed-routing search (paper
/// eq. (10)): C_grid(j) = C_grid(i) + alpha*C_wl + beta*C_vsu + gamma*C_esc.
/// The paper's experiments use alpha=1, beta=10, gamma=5 with beta >> gamma.
struct AStarConfig {
  double alpha = 1.0;  ///< wirelength weight
  double beta = 10.0;  ///< via-in-stitch-unfriendly-region cost
  double gamma = 5.0;  ///< escape-region cost
  /// Wirelength equivalent of one layer hop (via).
  double via_length = 2.0;
  /// Master switch for the beta/gamma stitch terms (the Table VIII
  /// "w/o stitch consideration" ablation turns them off).
  bool stitch_cost = true;
  /// Cost of stepping along nodes the net already owns (wire reuse).
  double own_net_step = 0.01;
};

/// Per-search scratch state of one A* search: the epoch-stamped visited /
/// g-cost / parent arrays, the reusable open-list storage, and the result
/// path. Owning the scratch makes a search reentrant — concurrent searches
/// on one AStarRouter are race-free as long as each uses its own scratch
/// (the parallel detailed router keeps one per pool worker).
struct SearchScratch {
  std::vector<std::uint32_t> stamp;
  std::vector<double> g_cost;
  std::vector<std::int32_t> parent;
  std::uint32_t epoch = 0;
  /// Open-list storage, reused across searches (std::push_heap/pop_heap).
  struct HeapEntry {
    double f;
    double g;
    std::int32_t state;
  };
  std::vector<HeapEntry> heap;
  /// Nodes of the most recent successful search using this scratch, in
  /// start-to-goal order.
  std::vector<geom::Point3> path;
};

/// Grid-level A* router. Hard MEBL constraints are enforced structurally:
/// no vertical move on a stitching-line column (wires cross lines only in
/// the x-direction) and no via on a line except at the subnet's fixed pin
/// positions.
///
/// The expansion kernel is branch-light: escape cost, unfriendly-region
/// surcharge, and the via / vertical-move legality flags are pure functions
/// of the column x, precomputed into one per-column table at construction;
/// static node penalties live in a flat array indexed by grid node. The
/// open list breaks f-ties toward higher g (deeper nodes), which preserves
/// admissibility but cuts re-expansions markedly.
class AStarRouter {
 public:
  AStarRouter(GridGraph& grid, AStarConfig config);

  /// Route `net` from pin `a` to pin `b` (both on the pin layer), confined
  /// to `box` (track coordinates). On success the path's nodes are claimed
  /// for the net and true is returned; on failure the grid is unchanged.
  bool route(netlist::NetId net, geom::Point a, geom::Point b,
             const geom::Rect& box);

  /// Rip-up probing mode: like route(), but nodes owned by *other* nets are
  /// passable at `foreign_penalty` per node (except pin-layer nodes and the
  /// nodes in `hard`, which stay blocked). Nothing is claimed; the caller
  /// reads last_path(), rips the blockers, and re-claims. Returns true when
  /// a path exists.
  bool probe(netlist::NetId net, geom::Point a, geom::Point b,
             const geom::Rect& box, double foreign_penalty,
             const NodeBitmap* hard);

  /// Reentrant search: compute a path into `scratch.path` without claiming
  /// anything or touching the router's internal scratch. Safe to call
  /// concurrently from multiple threads (each with its own scratch) while
  /// nobody mutates the grid — the parallel detailed router's contract.
  bool search_path(SearchScratch& scratch, netlist::NetId net, geom::Point a,
                   geom::Point b, const geom::Rect& box) const;

  /// Add a static extra cost on a node (e.g. the line-crossing positions
  /// next to stitch-unfriendly pins, where a crossing wire would become a
  /// short polygon). Cumulative.
  void add_node_penalty(geom::Point3 node, double penalty);

  /// Temporarily scale the beta (via-in-unfriendly-region) term; the SP
  /// cleanup pass uses this to reroute offenders more strictly. Sequential
  /// phases only — never call while searches run on other threads.
  void set_beta_scale(double scale) noexcept { beta_scale_ = scale; }

  /// Nodes claimed by the most recent successful route() call.
  [[nodiscard]] const std::vector<geom::Point3>& last_path() const noexcept {
    return scratch_.path;
  }

  /// Total nodes expanded over the router's lifetime (performance metric).
  [[nodiscard]] std::int64_t nodes_expanded() const noexcept {
    return nodes_expanded_.load(std::memory_order_relaxed);
  }

 private:
  bool search(SearchScratch& scratch, netlist::NetId net, geom::Point a,
              geom::Point b, const geom::Rect& box, double foreign_penalty,
              const NodeBitmap* hard) const;

  /// Escape-region columns strictly between x1 and x2 (heuristic term).
  [[nodiscard]] double escape_between(geom::Coord x1, geom::Coord x2) const;

  /// Everything the expansion loop needs that is a pure function of the
  /// column x, folded to one cache line's worth of loads per neighbor.
  struct Column {
    double escape_cost = 0.0;  ///< gamma when in an escape region (stitch on)
    double unfriendly = 0.0;   ///< 1.0 when in an unfriendly region (stitch on)
    std::uint8_t via_ok = 1;   ///< via legal here (off stitching lines)
    std::uint8_t vmove_ok = 1; ///< vertical move legal here
  };

  GridGraph* grid_;
  AStarConfig config_;
  std::vector<Column> columns_;
  std::vector<int> escape_prefix_;
  /// True when routing layer `l` runs horizontally (index 0 = pin layer).
  std::vector<std::uint8_t> layer_horizontal_;
  double beta_scale_ = 1.0;
  /// Static per-node penalties, flat-indexed by GridGraph::index. Allocated
  /// on the first add_node_penalty so penalty-free runs pay nothing.
  std::vector<double> node_penalty_;

  // Telemetry endpoints, resolved once at construction (stable addresses,
  // thread-safe sinks).
  telemetry::Counter* searches_counter_;
  telemetry::Counter* expansions_counter_;
  telemetry::Histogram* search_ns_histogram_;

  /// Scratch of the sequential route()/probe() entry points.
  SearchScratch scratch_;
  /// mutable: search() is const (reentrant, read-only on the router) but
  /// still accounts its expansions; relaxed atomic, stats only.
  mutable std::atomic<std::int64_t> nodes_expanded_{0};
};

}  // namespace mebl::detail
