#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "detail/grid_graph.hpp"
#include "telemetry/telemetry.hpp"

namespace mebl::detail {

/// Cost weights for the stitch-aware detailed-routing search (paper
/// eq. (10)): C_grid(j) = C_grid(i) + alpha*C_wl + beta*C_vsu + gamma*C_esc.
/// The paper's experiments use alpha=1, beta=10, gamma=5 with beta >> gamma.
struct AStarConfig {
  double alpha = 1.0;  ///< wirelength weight
  double beta = 10.0;  ///< via-in-stitch-unfriendly-region cost
  double gamma = 5.0;  ///< escape-region cost
  /// Wirelength equivalent of one layer hop (via).
  double via_length = 2.0;
  /// Master switch for the beta/gamma stitch terms (the Table VIII
  /// "w/o stitch consideration" ablation turns them off).
  bool stitch_cost = true;
  /// Cost of stepping along nodes the net already owns (wire reuse).
  double own_net_step = 0.01;
};

/// Grid-level A* router. Hard MEBL constraints are enforced structurally:
/// no vertical move on a stitching-line column (wires cross lines only in
/// the x-direction) and no via on a line except at the subnet's fixed pin
/// positions.
class AStarRouter {
 public:
  AStarRouter(GridGraph& grid, AStarConfig config);

  /// Route `net` from pin `a` to pin `b` (both on the pin layer), confined
  /// to `box` (track coordinates). On success the path's nodes are claimed
  /// for the net and true is returned; on failure the grid is unchanged.
  bool route(netlist::NetId net, geom::Point a, geom::Point b,
             const geom::Rect& box);

  /// Rip-up probing mode: like route(), but nodes owned by *other* nets are
  /// passable at `foreign_penalty` per node (except pin-layer nodes and the
  /// nodes in `hard`, which stay blocked). Nothing is claimed; the caller
  /// reads last_path(), rips the blockers, and re-claims. Returns true when
  /// a path exists.
  bool probe(netlist::NetId net, geom::Point a, geom::Point b,
             const geom::Rect& box, double foreign_penalty,
             const std::unordered_set<std::size_t>* hard);

  /// Add a static extra cost on a node (e.g. the line-crossing positions
  /// next to stitch-unfriendly pins, where a crossing wire would become a
  /// short polygon). Cumulative.
  void add_node_penalty(geom::Point3 node, double penalty);

  /// Temporarily scale the beta (via-in-unfriendly-region) term; the SP
  /// cleanup pass uses this to reroute offenders more strictly.
  void set_beta_scale(double scale) noexcept { beta_scale_ = scale; }

  /// Nodes claimed by the most recent successful route() call.
  [[nodiscard]] const std::vector<geom::Point3>& last_path() const noexcept {
    return last_path_;
  }

  /// Total nodes expanded over the router's lifetime (performance metric).
  [[nodiscard]] std::int64_t nodes_expanded() const noexcept {
    return nodes_expanded_;
  }

 private:
  bool search(netlist::NetId net, geom::Point a, geom::Point b,
              const geom::Rect& box, double foreign_penalty,
              const std::unordered_set<std::size_t>* hard, bool claim);

  /// Escape-region columns strictly between x1 and x2 (heuristic term).
  [[nodiscard]] double escape_between(geom::Coord x1, geom::Coord x2) const;

  GridGraph* grid_;
  AStarConfig config_;
  std::vector<int> escape_prefix_;
  double beta_scale_ = 1.0;
  std::unordered_map<std::size_t, double> node_penalty_;

  // Telemetry endpoints, resolved once at construction (stable addresses).
  telemetry::Counter* searches_counter_;
  telemetry::Counter* expansions_counter_;
  telemetry::Histogram* search_ns_histogram_;

  // Epoch-stamped scratch buffers reused across searches.
  std::vector<std::uint32_t> stamp_;
  std::vector<double> g_cost_;
  std::vector<std::int32_t> parent_;
  std::uint32_t epoch_ = 0;
  std::vector<geom::Point3> last_path_;
  std::int64_t nodes_expanded_ = 0;
};

}  // namespace mebl::detail
