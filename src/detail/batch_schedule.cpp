#include "detail/batch_schedule.hpp"

#include <algorithm>
#include <cassert>

namespace mebl::detail {

using geom::Coord;
using geom::Orientation;
using geom::Rect;

Rect subnet_search_box(const netlist::Subnet& subnet,
                       const assign::RoutePlan& plan, std::size_t idx,
                       const grid::RoutingGrid& rg, Coord margin) {
  Rect box = subnet.bbox().inflated(margin);
  if (idx < plan.runs_of_path.size()) {
    for (const std::size_t id : plan.runs_of_path[idx]) {
      const assign::GlobalRun& run = plan.runs[id];
      if (run.dir == Orientation::kVertical) {
        // The realizer rides the run's assigned tracks: cover every piece's
        // x column (doglegs jog between piece tracks, never beyond them).
        for (const auto& [rows, x] : run.pieces)
          box = box.hull(Rect{x, subnet.a.y, x, subnet.a.y});
      } else {
        // Horizontal legs run at rows clamped into the run's panel; their x
        // extents are bounded by the piece tracks and pins covered above.
        const geom::Interval ys = rg.tile_y_span(run.fixed_tile);
        box = box.hull(Rect{subnet.a.x, ys.lo, subnet.a.x, ys.hi});
      }
    }
  }
  return box.intersect(rg.extent());
}

std::vector<std::vector<std::size_t>> gather_disjoint_batches(
    const std::vector<std::size_t>& order, const std::vector<Rect>& boxes,
    Coord bin_size, std::size_t max_batch) {
  assert(bin_size > 0);
  if (max_batch == 0) max_batch = 1;

  // Uniform-bin conservative overlap test: a batch stamps the bins its
  // boxes touch; a candidate conflicts when any of its bins is stamped.
  // Rect overlap implies bin-range overlap, so an unstamped candidate is
  // guaranteed disjoint from the whole batch (the converse may spuriously
  // close a batch early, which costs parallelism but never correctness).
  Coord max_x = 0, max_y = 0;
  for (const std::size_t idx : order) {
    const Rect& r = boxes[idx];
    if (!r.empty()) {
      max_x = std::max(max_x, r.xhi);
      max_y = std::max(max_y, r.yhi);
    }
  }
  const auto bin_of = [bin_size](Coord c) {
    return c <= 0 ? Coord{0} : c / bin_size;
  };
  const std::size_t bins_x = static_cast<std::size_t>(bin_of(max_x)) + 1;
  const std::size_t bins_y = static_cast<std::size_t>(bin_of(max_y)) + 1;
  std::vector<std::uint32_t> bin_stamp(bins_x * bins_y, 0);
  std::uint32_t epoch = 0;

  const auto scan = [&](const Rect& r, bool mark) {
    // mark=false: return true on conflict. mark=true: stamp the bins.
    const std::size_t bx0 = static_cast<std::size_t>(bin_of(r.xlo));
    const std::size_t bx1 = static_cast<std::size_t>(bin_of(r.xhi));
    const std::size_t by0 = static_cast<std::size_t>(bin_of(r.ylo));
    const std::size_t by1 = static_cast<std::size_t>(bin_of(r.yhi));
    for (std::size_t by = by0; by <= by1; ++by)
      for (std::size_t bx = bx0; bx <= bx1; ++bx) {
        std::uint32_t& s = bin_stamp[by * bins_x + bx];
        if (mark)
          s = epoch;
        else if (s == epoch)
          return true;
      }
    return false;
  };

  std::vector<std::vector<std::size_t>> batches;
  std::size_t pos = 0;
  while (pos < order.size()) {
    ++epoch;
    std::vector<std::size_t> batch;
    batch.push_back(order[pos]);
    scan(boxes[order[pos]], /*mark=*/true);
    ++pos;
    while (pos < order.size() && batch.size() < max_batch) {
      const Rect& candidate = boxes[order[pos]];
      if (scan(candidate, /*mark=*/false)) break;
      scan(candidate, /*mark=*/true);
      batch.push_back(order[pos]);
      ++pos;
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace mebl::detail
