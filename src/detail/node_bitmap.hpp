#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mebl::detail {

/// Epoch-stamped membership bitmap over grid-node indices.
///
/// Replaces unordered_set<std::size_t> on the detailed-routing hot paths:
/// test() is one array load instead of a hash probe, and clear() is O(1)
/// (bumping the epoch invalidates every stamp at once). Memory is one
/// uint32 per grid node, sized once by reset().
class NodeBitmap {
 public:
  NodeBitmap() = default;
  explicit NodeBitmap(std::size_t size) { reset(size); }

  /// Size the bitmap to `size` nodes and clear it.
  void reset(std::size_t size) {
    stamp_.assign(size, 0);
    epoch_ = 1;
    count_ = 0;
  }

  /// Remove every member in O(1).
  void clear() {
    ++epoch_;
    count_ = 0;
    if (epoch_ == 0) {  // stamp wrap-around: start a fresh generation
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  void set(std::size_t index) {
    auto& s = stamp_[index];
    if (s != epoch_) {
      s = epoch_;
      ++count_;
    }
  }

  /// Remove one member; no-op when absent. (Stamp 0 is never the current
  /// epoch, so zeroing is an unambiguous "not set".)
  void unset(std::size_t index) {
    if (index < stamp_.size() && stamp_[index] == epoch_) {
      stamp_[index] = 0;
      --count_;
    }
  }

  /// Out-of-range indices read as not-set, so an unsized bitmap behaves
  /// like an empty set (matching the unordered_set it replaced).
  [[nodiscard]] bool test(std::size_t index) const {
    return index < stamp_.size() && stamp_[index] == epoch_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return stamp_.size(); }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 1;
  std::size_t count_ = 0;
};

}  // namespace mebl::detail
