#include "core/stitch_router.hpp"

#include <algorithm>
#include <optional>

#include "assign/stage.hpp"
#include "exec/cancellation.hpp"
#include "exec/thread_pool.hpp"
#include "netlist/decompose.hpp"
#include "telemetry/keys.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mebl::core {

StitchAwareRouter::StitchAwareRouter(const grid::RoutingGrid& grid,
                                     const netlist::Netlist& netlist,
                                     RouterConfig config)
    : grid_(&grid), netlist_(&netlist), config_(std::move(config)) {}

assign::StageConfig StitchAwareRouter::make_stage_config() const {
  assign::StageConfig stage;
  stage.layer = config_.layer_algorithm;
  stage.track = config_.track_algorithm;
  stage.ilp = config_.ilp;
  stage.ilp.node_budget = config_.ilp_node_budget;
  stage.ilp.warm_start = config_.ilp_warm_start;
  stage.ilp_budget_seconds = config_.ilp_budget_seconds;
  return stage;
}

void StitchAwareRouter::assign_layers(assign::RoutePlan& plan,
                                      exec::ThreadPool& pool) const {
  assign::LayerAssignStage stage(make_stage_config());
  stage.run(plan, *grid_, pool);
}

void StitchAwareRouter::assign_tracks(assign::RoutePlan& plan,
                                      RoutingResult& result,
                                      exec::ThreadPool& pool) const {
  const assign::StageConfig config = make_stage_config();
  const assign::StageStats stats =
      config_.assign_pipeline
          ? assign::FusedAssignStage(config).run(plan, *grid_, pool)
          : assign::TrackAssignStage(config).run(plan, *grid_, pool);
  if (stats.ilp_budget_exceeded) result.ilp_budget_exceeded = true;
}

RoutingResult StitchAwareRouter::run() {
  TELEMETRY_SPAN("pipeline.run");
  namespace keys = telemetry::keys;
  const telemetry::StatsSnapshot stats_before = telemetry::snapshot_counters();

  RoutingResult result;
  const auto subnets = netlist::decompose_all(*netlist_);

  // A service shares one pool and one token across jobs (set_pool /
  // set_cancellation); a batch run builds both locally.
  std::optional<exec::ThreadPool> local_pool;
  if (pool_ == nullptr) local_pool.emplace(config_.num_threads);
  exec::ThreadPool& pool = pool_ != nullptr ? *pool_ : *local_pool;
  exec::Cancellation local_cancel;
  exec::Cancellation& cancel = cancel_ != nullptr ? *cancel_ : local_cancel;
  const auto begin_stage = [&](Stage stage) {
    for (ProgressObserver* observer : observers_)
      observer->on_stage_begin(stage);
  };
  const auto end_stage = [&](Stage stage, double seconds) {
    for (ProgressObserver* observer : observers_)
      observer->on_stage_end(stage, seconds);
  };
  const auto any_wants_cancel = [&] {
    return std::any_of(
        observers_.begin(), observers_.end(),
        [](ProgressObserver* observer) { return observer->should_cancel(); });
  };
  // Polled at stage boundaries (and, via the global router's progress hook,
  // between net batches). Sticky through the Cancellation token.
  const auto cancelled = [&] {
    if (any_wants_cancel()) cancel.request_stop();
    return cancel.stop_requested();
  };
  const auto finalize = [&](bool was_cancelled) -> RoutingResult& {
    result.cancelled = was_cancelled;
    if (was_cancelled) {
      // The token's reason was set by whichever stop landed first; observer
      // cancels without an explicit reason read as user cancels.
      result.stop_reason = cancel.reason() == exec::StopReason::kNone
                               ? exec::StopReason::kUser
                               : cancel.reason();
    }
    result.stats_ =
        telemetry::delta(stats_before, telemetry::snapshot_counters());
    return result;
  };

  // The spans and the StageTimes struct report the same boundaries; the
  // struct stays populated for API compatibility with existing harnesses.
  util::Timer timer;
  {
    TELEMETRY_SPAN("pipeline.global");
    begin_stage(Stage::kGlobal);
    global::GlobalRouter global_router(*grid_, config_.global);
    global::GlobalRouter::ProgressFn progress;
    if (!observers_.empty())
      progress = [&](std::size_t routed, std::size_t total) {
        for (ProgressObserver* observer : observers_)
          observer->on_nets_routed(routed, total);
        if (any_wants_cancel()) cancel.request_stop();
      };
    result.global = global_router.route(subnets, &pool, &cancel, progress);
    // Record the global-stage quality counters before the stage boundary so
    // per-stage report snapshots carry them.
    telemetry::counter(keys::kGlobalWirelength).add(result.global.wirelength);
    telemetry::counter(keys::kGlobalVertexOverflow)
        .add(result.global.total_vertex_overflow);
    telemetry::counter(keys::kGlobalVertexOverflowMax)
        .add(result.global.max_vertex_overflow);
    telemetry::counter(keys::kGlobalEdgeOverflow)
        .add(result.global.total_edge_overflow);
  }
  result.times.global_seconds = timer.seconds();
  end_stage(Stage::kGlobal, result.times.global_seconds);
  if (cancelled()) return finalize(true);

  timer.reset();
  {
    TELEMETRY_SPAN("pipeline.layer_assign");
    begin_stage(Stage::kLayerAssign);
    result.plan = assign::extract_runs(result.global, *grid_);
    // In fused-pipeline mode layer assignment runs inside the track stage
    // (assign::FusedAssignStage), so this stage only extracts the runs and
    // its counters land in the fused stage's delta.
    if (!config_.assign_pipeline) assign_layers(result.plan, pool);
  }
  result.times.layer_seconds = timer.seconds();
  end_stage(Stage::kLayerAssign, result.times.layer_seconds);
  if (cancelled()) return finalize(true);

  timer.reset();
  {
    TELEMETRY_SPAN("pipeline.track_assign");
    begin_stage(Stage::kTrackAssign);
    assign_tracks(result.plan, result, pool);
  }
  result.times.track_seconds = timer.seconds();
  end_stage(Stage::kTrackAssign, result.times.track_seconds);
  if (cancelled()) return finalize(true);

  timer.reset();
  {
    TELEMETRY_SPAN("pipeline.detail");
    begin_stage(Stage::kDetail);
    result.grid = std::make_shared<detail::GridGraph>(*grid_);
    detail::DetailedRouter detailed(*result.grid, config_.detail);
    detailed.claim_pins(*netlist_);
    detail::DetailedRouter::ProgressFn progress;
    if (!observers_.empty())
      progress = [&](std::size_t routed, std::size_t total) {
        for (ProgressObserver* observer : observers_)
          observer->on_nets_routed(routed, total);
        if (any_wants_cancel()) cancel.request_stop();
      };
    result.detail =
        detailed.route_all(subnets, result.plan, &pool, &cancel, progress);
  }
  result.times.detail_seconds = timer.seconds();
  end_stage(Stage::kDetail, result.times.detail_seconds);
  if (cancelled()) return finalize(true);

  timer.reset();
  {
    TELEMETRY_SPAN("pipeline.metrics");
    begin_stage(Stage::kMetrics);
    result.metrics =
        eval::compute_metrics(*result.grid, *netlist_, subnets, result.detail);
    // Counters must land before end_stage fires: stage-boundary observers
    // (report::RunReportBuilder) snapshot the registry at the boundary, so
    // anything added later would be missing from the metrics-stage delta.
    telemetry::counter(keys::kShortPolygons)
        .add(result.metrics.short_polygons);
    telemetry::counter(keys::kViaViolations)
        .add(result.metrics.via_violations);
    telemetry::counter(keys::kVerticalViolations)
        .add(result.metrics.vertical_violations);
    telemetry::counter(keys::kWirelength).add(result.metrics.wirelength);
    telemetry::counter(keys::kVias).add(result.metrics.vias);
    telemetry::counter(keys::kRoutedNets).add(result.metrics.routed_nets);
    telemetry::counter(keys::kTotalNets).add(result.metrics.total_nets);
    end_stage(Stage::kMetrics, timer.seconds());
  }

  util::log_info() << "routed " << result.metrics.routed_nets << "/"
                   << result.metrics.total_nets << " nets, #SP="
                   << result.metrics.short_polygons << ", #VV="
                   << result.metrics.via_violations << ", WL="
                   << result.metrics.wirelength;
  return finalize(false);
}

}  // namespace mebl::core
