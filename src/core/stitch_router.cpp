#include "core/stitch_router.hpp"

#include <algorithm>

#include "assign/conflict_graph.hpp"
#include "assign/layer_assign.hpp"
#include "netlist/decompose.hpp"
#include "telemetry/keys.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mebl::core {

using geom::LayerId;
using geom::Orientation;

StitchAwareRouter::StitchAwareRouter(const grid::RoutingGrid& grid,
                                     const netlist::Netlist& netlist,
                                     RouterConfig config)
    : grid_(&grid), netlist_(&netlist), config_(std::move(config)) {}

void StitchAwareRouter::assign_layers(assign::RoutePlan& plan) const {
  telemetry::Counter& panels = telemetry::counter(telemetry::keys::kLayerPanels);
  const auto assign_panel = [&](const std::vector<std::size_t>& run_ids,
                                const std::vector<LayerId>& layers,
                                bool column_panel) {
    if (run_ids.empty()) return;
    TELEMETRY_SPAN("assign.layer.panel");
    panels.add(1);
    const int k = static_cast<int>(layers.size());
    if (k == 1) {
      for (const std::size_t id : run_ids) plan.runs[id].layer = layers[0];
      return;
    }
    std::vector<assign::SegmentProfile> profiles;
    profiles.reserve(run_ids.size());
    for (const std::size_t id : run_ids)
      profiles.push_back(
          assign::SegmentProfile{plan.runs[id].span, plan.runs[id].net});
    const auto graph = assign::build_conflict_graph(profiles, column_panel);
    const auto assignment =
        config_.layer_algorithm == LayerAlgorithm::kColorableSubset
            ? assign::assign_layers_ours(graph, k)
            : assign::assign_layers_mst(graph, k);
    const auto slot = assign::order_groups_for_vias(graph, assignment.group, k);
    for (std::size_t i = 0; i < run_ids.size(); ++i)
      plan.runs[run_ids[i]].layer =
          layers[static_cast<std::size_t>(slot[static_cast<std::size_t>(
              assignment.group[i])])];
  };

  const auto v_layers = grid_->layers_with(Orientation::kVertical);
  for (int tx = 0; tx < grid_->tiles_x(); ++tx)
    assign_panel(assign::runs_in_column_panel(plan, tx), v_layers, true);
  const auto h_layers = grid_->layers_with(Orientation::kHorizontal);
  for (int ty = 0; ty < grid_->tiles_y(); ++ty)
    assign_panel(assign::runs_in_row_panel(plan, ty), h_layers, false);
}

void StitchAwareRouter::assign_tracks(assign::RoutePlan& plan,
                                      RoutingResult& result) const {
  using telemetry::counter;
  namespace keys = telemetry::keys;
  telemetry::Counter& panels = counter(keys::kTrackPanels);
  telemetry::Counter& ilp_nodes = counter(keys::kTrackIlpNodes);
  telemetry::Counter& ilp_fallbacks = counter(keys::kTrackIlpFallbacks);
  telemetry::Counter& bad_ends = counter(keys::kTrackBadEnds);
  telemetry::Counter& ripped = counter(keys::kTrackRipped);
  telemetry::Histogram& panel_ns = telemetry::histogram(keys::kTrackPanelNs);

  const auto v_layers = grid_->layers_with(Orientation::kVertical);
  util::Timer ilp_timer;

  for (int tx = 0; tx < grid_->tiles_x(); ++tx) {
    const auto panel_runs = assign::runs_in_column_panel(plan, tx);
    if (panel_runs.empty()) continue;
    for (const LayerId layer : v_layers) {
      TELEMETRY_SPAN("assign.track.panel");
      const std::uint64_t panel_start_ns = telemetry::now_ns();
      assign::TrackAssignInstance instance;
      instance.x_span = grid_->tile_x_span(tx);
      instance.stitch = &grid_->stitch();
      std::vector<std::size_t> members;
      for (const std::size_t id : panel_runs) {
        const auto& run = plan.runs[id];
        if (run.layer != layer) continue;
        members.push_back(id);
        instance.segments.push_back(assign::TrackSegment{
            id, run.span, run.lo_continuation, run.hi_continuation, run.net});
      }
      if (instance.segments.empty()) continue;

      assign::TrackAssignResult assigned;
      switch (config_.track_algorithm) {
        case TrackAlgorithm::kBaseline:
          assigned = assign::track_assign_baseline(instance);
          break;
        case TrackAlgorithm::kGraph:
          assigned = assign::track_assign_graph(instance);
          break;
        case TrackAlgorithm::kIlp: {
          if (ilp_timer.seconds() > config_.ilp_budget_seconds) {
            result.ilp_budget_exceeded = true;
            ilp_fallbacks.add(1);
            assigned = assign::track_assign_graph(instance);
          } else {
            assigned = assign::track_assign_ilp(instance, config_.ilp);
            ilp_nodes.add(assigned.ilp_nodes);
            if (!assigned.solved) {
              result.ilp_budget_exceeded = true;
              ilp_fallbacks.add(1);
              assigned = assign::track_assign_graph(instance);
            }
          }
          break;
        }
      }

      for (std::size_t i = 0; i < members.size(); ++i) {
        auto& run = plan.runs[members[i]];
        run.pieces = assigned.tracks[i].pieces;
        run.ripped = assigned.tracks[i].ripped;
        run.bad_ends = assigned.tracks[i].bad_ends;
      }
      panels.add(1);
      bad_ends.add(assigned.total_bad_ends);
      ripped.add(assigned.total_ripped);
      panel_ns.record_ns(telemetry::now_ns() - panel_start_ns);
    }
  }
  counter(keys::kTrackIlpNs)
      .add(static_cast<std::int64_t>(ilp_timer.seconds() * 1e9));
}

RoutingResult StitchAwareRouter::run() {
  TELEMETRY_SPAN("pipeline.run");
  namespace keys = telemetry::keys;
  const telemetry::StatsSnapshot stats_before = telemetry::snapshot_counters();

  RoutingResult result;
  const auto subnets = netlist::decompose_all(*netlist_);

  // The spans and the StageTimes struct report the same boundaries; the
  // struct stays populated for API compatibility with existing harnesses.
  util::Timer timer;
  {
    TELEMETRY_SPAN("pipeline.global");
    global::GlobalRouter global_router(*grid_, config_.global);
    result.global = global_router.route(subnets);
  }
  result.times.global_seconds = timer.seconds();

  timer.reset();
  {
    TELEMETRY_SPAN("pipeline.layer_assign");
    result.plan = assign::extract_runs(result.global, *grid_);
    assign_layers(result.plan);
  }
  result.times.layer_seconds = timer.seconds();

  timer.reset();
  {
    TELEMETRY_SPAN("pipeline.track_assign");
    assign_tracks(result.plan, result);
  }
  result.times.track_seconds = timer.seconds();

  timer.reset();
  {
    TELEMETRY_SPAN("pipeline.detail");
    result.grid = std::make_shared<detail::GridGraph>(*grid_);
    detail::DetailedRouter detailed(*result.grid, config_.detail);
    detailed.claim_pins(*netlist_);
    result.detail = detailed.route_all(subnets, result.plan);
  }
  result.times.detail_seconds = timer.seconds();

  {
    TELEMETRY_SPAN("pipeline.metrics");
    result.metrics =
        eval::compute_metrics(*result.grid, *netlist_, subnets, result.detail);
  }
  telemetry::counter(keys::kShortPolygons).add(result.metrics.short_polygons);
  telemetry::counter(keys::kViaViolations).add(result.metrics.via_violations);
  result.stats_ =
      telemetry::delta(stats_before, telemetry::snapshot_counters());

  util::log_info() << "routed " << result.metrics.routed_nets << "/"
                   << result.metrics.total_nets << " nets, #SP="
                   << result.metrics.short_polygons << ", #VV="
                   << result.metrics.via_violations << ", WL="
                   << result.metrics.wirelength;
  return result;
}

}  // namespace mebl::core
